// Package presence simulates an internet presence service (paper §2.2 —
// "presence information (e.g., IM status …) from the Internet"): per-user
// status with timestamps and notes, watcher callbacks, and export of the
// GUP <presence> component. It is the dynamic, high-churn profile source
// in the converged testbed, and the one driving benchmark E8 (push versus
// poll).
package presence

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"gupster/internal/xmltree"
)

// Status enumerates IM-style presence states.
type Status string

// Presence states.
const (
	Available Status = "available"
	Busy      Status = "busy"
	Away      Status = "away"
	Offline   Status = "offline"
)

// ErrNoUser is returned for users never seen by the service.
var ErrNoUser = errors.New("presence: unknown user")

// State is one user's presence record.
type State struct {
	User   string
	Status Status
	Since  time.Time
	Note   string
}

// Server is the presence service. Safe for concurrent use.
type Server struct {
	mu       sync.RWMutex
	states   map[string]State
	watchers map[string][]func(State)
	now      func() time.Time
	updates  uint64
}

// New returns an empty presence server.
func New() *Server {
	return &Server{
		states:   make(map[string]State),
		watchers: make(map[string][]func(State)),
		now:      time.Now,
	}
}

// WithClock injects a clock for tests.
func (s *Server) WithClock(now func() time.Time) *Server {
	s.now = now
	return s
}

// Set publishes a user's presence and fans out to watchers.
func (s *Server) Set(user string, status Status, note string) {
	s.mu.Lock()
	st := State{User: user, Status: status, Since: s.now(), Note: note}
	s.states[user] = st
	s.updates++
	var ws []func(State)
	ws = append(ws, s.watchers[user]...)
	s.mu.Unlock()
	for _, w := range ws {
		w(st)
	}
}

// Get reads a user's presence.
func (s *Server) Get(user string) (State, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	st, ok := s.states[user]
	if !ok {
		return State{}, fmt.Errorf("%w: %s", ErrNoUser, user)
	}
	return st, nil
}

// Watch registers a callback for a user's presence changes. Callbacks run
// on the publisher's goroutine and must not block.
func (s *Server) Watch(user string, fn func(State)) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.watchers[user] = append(s.watchers[user], fn)
}

// Updates reports the number of Set calls (benchmark bookkeeping).
func (s *Server) Updates() uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.updates
}

// Component exports the GUP <presence> component for a user; nil when the
// user was never seen.
func (s *Server) Component(user string) *xmltree.Node {
	s.mu.RLock()
	defer s.mu.RUnlock()
	st, ok := s.states[user]
	if !ok {
		return nil
	}
	n := xmltree.New("presence").
		SetAttr("status", string(st.Status)).
		SetAttr("since", st.Since.UTC().Format(time.RFC3339))
	if st.Note != "" {
		n.Add(xmltree.NewText("note", st.Note))
	}
	return n
}
