package presence

import (
	"errors"
	"sync"
	"testing"
	"time"
)

var t0 = time.Date(2026, 7, 6, 9, 30, 0, 0, time.UTC)

func TestSetGet(t *testing.T) {
	s := New().WithClock(func() time.Time { return t0 })
	if _, err := s.Get("alice"); !errors.Is(err, ErrNoUser) {
		t.Errorf("err = %v", err)
	}
	s.Set("alice", Available, "at desk")
	st, err := s.Get("alice")
	if err != nil || st.Status != Available || st.Note != "at desk" || !st.Since.Equal(t0) {
		t.Errorf("state = %+v, %v", st, err)
	}
	s.Set("alice", Busy, "")
	st, _ = s.Get("alice")
	if st.Status != Busy {
		t.Errorf("update lost: %+v", st)
	}
	if s.Updates() != 2 {
		t.Errorf("updates = %d", s.Updates())
	}
}

func TestWatchers(t *testing.T) {
	s := New()
	var mu sync.Mutex
	var seen []Status
	s.Watch("alice", func(st State) {
		mu.Lock()
		seen = append(seen, st.Status)
		mu.Unlock()
	})
	s.Set("alice", Available, "")
	s.Set("alice", Away, "")
	s.Set("bob", Busy, "") // different user: no callback
	mu.Lock()
	defer mu.Unlock()
	if len(seen) != 2 || seen[0] != Available || seen[1] != Away {
		t.Errorf("seen = %v", seen)
	}
}

func TestComponent(t *testing.T) {
	s := New().WithClock(func() time.Time { return t0 })
	if s.Component("ghost") != nil {
		t.Error("ghost component should be nil")
	}
	s.Set("alice", Available, "wfh")
	c := s.Component("alice")
	if c.Name != "presence" {
		t.Fatalf("component = %s", c)
	}
	if v, _ := c.Attr("status"); v != "available" {
		t.Errorf("status = %q", v)
	}
	if v, _ := c.Attr("since"); v != "2026-07-06T09:30:00Z" {
		t.Errorf("since = %q", v)
	}
	if c.ChildText("note") != "wfh" {
		t.Errorf("note = %q", c.ChildText("note"))
	}
	// No note → no child.
	s.Set("alice", Offline, "")
	if s.Component("alice").Child("note") != nil {
		t.Error("empty note serialized")
	}
}

func TestConcurrentPresence(t *testing.T) {
	s := New()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 200; j++ {
				s.Set("u", Status([]Status{Available, Busy, Away, Offline}[j%4]), "")
				s.Get("u")
				s.Component("u")
			}
		}(i)
	}
	wg.Wait()
	if s.Updates() != 1600 {
		t.Errorf("updates = %d", s.Updates())
	}
}
