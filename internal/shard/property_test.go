package shard

import (
	"fmt"
	"math/rand"
	"testing"

	"gupster/internal/wire"
)

// Property: for any valid shard map, routing is a total partition of the
// owner keyspace — every owner maps to exactly one shard, that shard is a
// member of the map, and the answer is stable across repeated lookups.
func TestShardRoutingIsTotalPartition(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		nShards := 1 + rng.Intn(12)
		m := wire.ShardMap{Version: 1 + uint64(rng.Intn(1000))}
		members := make(map[string]bool, nShards)
		for i := 0; i < nShards; i++ {
			id := fmt.Sprintf("shard-%d-%d", trial, i)
			m.Shards = append(m.Shards, wire.ShardInfo{ID: id, Addr: "addr:" + id})
			members[id] = true
		}
		r, err := BuildRing(m)
		if err != nil {
			t.Fatalf("trial %d: BuildRing: %v", trial, err)
		}
		for i := 0; i < 500; i++ {
			owner := randOwner(rng)
			first := r.Owner(owner)
			if !members[first.ID] {
				t.Fatalf("trial %d: owner %q routed to %q, which is not in the map", trial, owner, first.ID)
			}
			if again := r.Owner(owner); again.ID != first.ID {
				t.Fatalf("trial %d: owner %q routed to %q then %q — lookup not stable", trial, owner, first.ID, again.ID)
			}
		}
	}
}

func randOwner(rng *rand.Rand) string {
	const alphabet = "abcdefghijklmnopqrstuvwxyz0123456789.-_@"
	n := 1 + rng.Intn(24)
	b := make([]byte, n)
	for i := range b {
		b[i] = alphabet[rng.Intn(len(alphabet))]
	}
	return string(b)
}

// FuzzShardMap feeds arbitrary shard maps to the ring builder: it must
// either reject the map or produce a ring that routes any owner to a map
// member — never panic, never route into the void.
func FuzzShardMap(f *testing.F) {
	f.Add(uint64(1), "a\x00addr-a", "owner")
	f.Add(uint64(7), "a\x00x\x1fb\x00y\x1fc\x00z", "alice")
	f.Add(uint64(0), "", "")
	f.Add(uint64(2), "dup\x00x\x1fdup\x00y", "bob")
	f.Fuzz(func(t *testing.T, version uint64, packed string, owner string) {
		m := wire.ShardMap{Version: version}
		for _, entry := range splitPacked(packed) {
			m.Shards = append(m.Shards, entry)
		}
		r, err := BuildRing(m)
		if err != nil {
			return // rejected: fine, as long as it didn't panic
		}
		members := make(map[string]bool, len(m.Shards))
		for _, s := range m.Shards {
			members[s.ID] = true
		}
		got := r.Owner(owner)
		if !members[got.ID] {
			t.Fatalf("owner %q routed to %q, not a member of the accepted map %+v", owner, got.ID, m)
		}
		if r.Owner(owner).ID != got.ID {
			t.Fatalf("owner %q routing unstable", owner)
		}
	})
}

// splitPacked decodes "id\x00addr\x1fid\x00addr..." into shard infos,
// letting the fuzzer shape arbitrary maps from flat strings.
func splitPacked(packed string) []wire.ShardInfo {
	if packed == "" {
		return nil
	}
	var out []wire.ShardInfo
	start := 0
	emit := func(entry string) {
		id, addr := entry, ""
		for i := 0; i < len(entry); i++ {
			if entry[i] == 0 {
				id, addr = entry[:i], entry[i+1:]
				break
			}
		}
		out = append(out, wire.ShardInfo{ID: id, Addr: addr})
	}
	for i := 0; i < len(packed); i++ {
		if packed[i] == 0x1f {
			emit(packed[start:i])
			start = i + 1
		}
	}
	emit(packed[start:])
	return out
}
