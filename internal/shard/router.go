package shard

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"time"

	"gupster/internal/wire"
)

// Router is a data-less shard front-end: it holds no directory state,
// only the shard map, and forwards every frame to the owning shard. It
// lets shard-unaware clients (old tooling, store registrars, federation
// mirrors) address a sharded directory as a single endpoint, at the cost
// of one extra network hop per call. Shard-aware clients should route
// themselves with Client instead.
type Router struct {
	cfg RouterConfig

	mu   sync.Mutex
	ring *Ring

	connMu sync.Mutex
	conns  map[string]*wire.Client
}

// RouterConfig parameterizes a Router.
type RouterConfig struct {
	// ForwardTimeout bounds forwarded calls that carry no budget of their
	// own. Zero means 10s.
	ForwardTimeout time.Duration
	// Logf, when set, receives routing events.
	Logf func(format string, args ...any)
}

// NewRouter builds a router over an initial shard map.
func NewRouter(m wire.ShardMap, cfg RouterConfig) (*Router, error) {
	ring, err := BuildRing(m)
	if err != nil {
		return nil, err
	}
	if cfg.ForwardTimeout == 0 {
		cfg.ForwardTimeout = 10 * time.Second
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	return &Router{cfg: cfg, ring: ring, conns: make(map[string]*wire.Client)}, nil
}

// Install adopts a new shard map. The router holds no owners, so installs
// are plain: any mode is accepted and only the map matters.
func (r *Router) Install(req *wire.ShardInstallRequest) (uint64, error) {
	ring, err := BuildRing(req.Map)
	if err != nil {
		return 0, err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.ring != nil {
		switch CompareMaps(ring.Map(), r.ring.Map()) {
		case -1:
			return 0, errStaleMap(ring, r.ring)
		case 0:
			if !sameMapContent(ring.Map(), r.ring.Map()) {
				return 0, errDivergentMap(ring)
			}
		}
	}
	r.ring = ring
	r.cfg.Logf("router: shard map v%d@e%d installed (%d shards)", ring.Version(), ring.Epoch(), len(ring.Shards()))
	return ring.Version(), nil
}

// NoShardAvailableError reports that every shard named by the router's
// current map refused a connection. It carries the map coordinates so the
// caller can tell a dead constellation from a stale map, and wraps the
// last dial error for diagnostics.
type NoShardAvailableError struct {
	MapVersion uint64
	MapEpoch   uint64
	LastErr    error
}

func (e *NoShardAvailableError) Error() string {
	return fmt.Sprintf("shard: no shard available (map v%d@e%d): %v", e.MapVersion, e.MapEpoch, e.LastErr)
}

func (e *NoShardAvailableError) Unwrap() error { return e.LastErr }

// ServeWire implements wire.Handler.
func (r *Router) ServeWire(c *wire.ServerConn, m *wire.Message) {
	switch m.Type {
	case wire.TypeShardMap:
		r.mu.Lock()
		mp := r.ring.Map()
		r.mu.Unlock()
		_ = c.Reply(m, mp)
		return
	case wire.TypeShardInstall:
		var req wire.ShardInstallRequest
		if err := json.Unmarshal(m.Payload, &req); err != nil {
			_ = c.ReplyError(m, err)
			return
		}
		v, err := r.Install(&req)
		if err != nil {
			_ = c.ReplyError(m, err)
			return
		}
		_ = c.Reply(m, wire.ShardInstallResponse{Version: v})
		return
	}

	r.mu.Lock()
	ring := r.ring
	r.mu.Unlock()

	owners, scoped := ownersOfMessage(m.Type, m.Payload)
	var target wire.ShardInfo
	if scoped && len(owners) > 0 {
		target = ring.Owner(owners[0])
		// Cross-shard batches are split-routed by shard-aware clients; a
		// router keeps the single-endpoint illusion only for single-owner
		// frames and sends mixed batches to the first owner's shard, which
		// redirects the rest.
	} else {
		// Ownerless traffic (stats, trace reports, heartbeat frames with no
		// scoped owner) goes to the first shard deterministically.
		target = ring.Shards()[0]
	}
	r.forward(c, m, target, ring)
}

func (r *Router) forward(c *wire.ServerConn, m *wire.Message, target wire.ShardInfo, ring *Ring) {
	ctx, cancel := wire.BudgetContext(context.Background(), m)
	if _, has := ctx.Deadline(); !has {
		ctx, cancel = context.WithTimeout(ctx, r.cfg.ForwardTimeout)
	}
	defer cancel()

	conn, err := r.shardConn(target.Addr)
	if err != nil {
		// The owner's shard refused the dial. Any other live map member can
		// still make progress (a redirect carrying a newer post-repair map,
		// or direct service once the repair moved the owner), so fail over
		// across the ring — and when every member is down, answer with the
		// typed no-shard verdict instead of burning the caller's deadline on
		// repeat dials of a dead constellation.
		conn, err = r.failover(ctx, ring, target.Addr, err)
		if err != nil {
			if m.ID != 0 {
				_ = c.ReplyError(m, err)
			}
			return
		}
	}
	if m.ID == 0 {
		_ = conn.Send(ctx, m.Type, json.RawMessage(m.Payload))
		return
	}
	var raw json.RawMessage
	err = conn.Call(ctx, m.Type, json.RawMessage(m.Payload), &raw)
	if err != nil {
		var nl *wire.NotLeaderError
		if errors.As(err, &nl) && nl.LeaderAddr != "" && nl.LeaderAddr != target.Addr {
			if lc, derr := r.shardConn(nl.LeaderAddr); derr == nil {
				if err2 := lc.Call(ctx, m.Type, json.RawMessage(m.Payload), &raw); err2 == nil {
					_ = c.Reply(m, raw)
					return
				}
			}
		}
		var ws *wire.WrongShardError
		if errors.As(err, &ws) {
			// The target knows better than we do; pass its redirect through
			// so the caller (or we, on its next call) can adopt the map.
			_ = c.ReplyWrongShard(m, wire.WrongShardPayload{
				Owner: ws.Owner, ShardID: ws.ShardID, Addr: ws.Addr,
				Members: ws.Members, Map: ws.Map,
			})
			if ws.Map != nil {
				if ring, berr := BuildRing(*ws.Map); berr == nil {
					r.mu.Lock()
					if CompareMaps(ring.Map(), r.ring.Map()) > 0 {
						r.ring = ring
					}
					r.mu.Unlock()
				}
			}
			return
		}
		var re *wire.RemoteError
		if !errors.As(err, &re) {
			r.dropConn(target.Addr)
		}
		_ = c.ReplyError(m, err)
		return
	}
	_ = c.Reply(m, raw)
}

// failover tries every other shard in the map once. It returns the first
// connection that dials, or a NoShardAvailableError when the whole ring is
// unreachable (bounded further by ctx between attempts).
func (r *Router) failover(ctx context.Context, ring *Ring, failedAddr string, firstErr error) (*wire.Client, error) {
	lastErr := firstErr
	for _, s := range ring.Shards() {
		if s.Addr == failedAddr {
			continue
		}
		if ctx.Err() != nil {
			break
		}
		conn, err := r.shardConn(s.Addr)
		if err == nil {
			return conn, nil
		}
		lastErr = err
	}
	return nil, &NoShardAvailableError{MapVersion: ring.Version(), MapEpoch: ring.Epoch(), LastErr: lastErr}
}

func (r *Router) shardConn(addr string) (*wire.Client, error) {
	r.connMu.Lock()
	defer r.connMu.Unlock()
	if conn, ok := r.conns[addr]; ok {
		return conn, nil
	}
	conn, err := wire.Dial(addr)
	if err != nil {
		return nil, err
	}
	r.conns[addr] = conn
	return conn, nil
}

func (r *Router) dropConn(addr string) {
	r.connMu.Lock()
	if conn, ok := r.conns[addr]; ok {
		conn.Close()
		delete(r.conns, addr)
	}
	r.connMu.Unlock()
}

// Close releases the router's shard connections.
func (r *Router) Close() {
	r.connMu.Lock()
	defer r.connMu.Unlock()
	for addr, conn := range r.conns {
		conn.Close()
		delete(r.conns, addr)
	}
}
