package shard

import (
	"fmt"
	"math/rand"
	"testing"

	"gupster/internal/wire"
)

// FuzzRepairEpoch throws arbitrary install schedules — random (epoch,
// version) coordinates, shard sets and install modes — at a node and
// checks the epoch-fencing invariant: the installed map's (epoch,
// version) never moves backwards, an accepted install lands exactly the
// offered coordinates, and a rejected one leaves the ring untouched.
// This is the property that keeps a partitioned minority from rewinding
// routing when it replays a stale map after the heal.
func FuzzRepairEpoch(f *testing.F) {
	f.Add(int64(1), uint8(16))
	f.Add(int64(42), uint8(48))
	f.Add(int64(-7), uint8(3))
	f.Add(int64(1<<40), uint8(255))
	f.Fuzz(func(t *testing.T, seed int64, steps uint8) {
		rng := rand.New(rand.NewSource(seed))
		n := NewNode(NodeConfig{ShardID: "s0"})
		defer n.Close()
		modes := []string{"", "fence", "handoff", "drain"}
		var prev wire.ShardMap
		havePrev := false
		for i := 0; i < int(steps%64); i++ {
			m := wire.ShardMap{
				Version: uint64(1 + rng.Intn(6)),
				Epoch:   uint64(rng.Intn(6)),
			}
			nShards := 1 + rng.Intn(4)
			for j := 0; j < nShards; j++ {
				id := fmt.Sprintf("s%d", j)
				m.Shards = append(m.Shards, wire.ShardInfo{ID: id, Addr: "addr:" + id})
			}
			_, err := n.Install(&wire.ShardInstallRequest{Map: m, Mode: modes[rng.Intn(len(modes))], ForwardMillis: 1})
			ring := n.Ring()
			if ring == nil {
				t.Fatalf("step %d: no ring after an install attempt (first install must succeed)", i)
			}
			cur := ring.Map()
			if havePrev && CompareMaps(cur, prev) < 0 {
				t.Fatalf("step %d: ring went backwards: held v%d@e%d, now v%d@e%d",
					i, prev.Version, prev.Epoch, cur.Version, cur.Epoch)
			}
			if err == nil && (cur.Epoch != m.Epoch || cur.Version != m.Version) {
				t.Fatalf("step %d: accepted install of v%d@e%d but ring holds v%d@e%d",
					i, m.Version, m.Epoch, cur.Version, cur.Epoch)
			}
			if err != nil && havePrev && CompareMaps(cur, prev) != 0 {
				t.Fatalf("step %d: rejected install still changed the ring", i)
			}
			prev, havePrev = cur, true
		}
	})
}

// The divergent-equal rule: a map with the same (epoch, version) but
// different content is a split-brain artifact and must be refused, while
// identical content re-installs freely (handoff→drain chains depend on
// it).
func TestInstallRejectsDivergentEqualMap(t *testing.T) {
	n := NewNode(NodeConfig{ShardID: "a"})
	defer n.Close()
	base := wire.ShardMap{Version: 3, Epoch: 2, Shards: []wire.ShardInfo{
		{ID: "a", Addr: "addr:a"}, {ID: "b", Addr: "addr:b"},
	}}
	if _, err := n.Install(&wire.ShardInstallRequest{Map: base}); err != nil {
		t.Fatalf("base install: %v", err)
	}
	if _, err := n.Install(&wire.ShardInstallRequest{Map: base}); err != nil {
		t.Fatalf("identical re-install refused: %v", err)
	}
	divergent := wire.ShardMap{Version: 3, Epoch: 2, Shards: []wire.ShardInfo{
		{ID: "a", Addr: "addr:a"}, {ID: "c", Addr: "addr:c"},
	}}
	if _, err := n.Install(&wire.ShardInstallRequest{Map: divergent}); err == nil {
		t.Fatal("node accepted a divergent map at the same (epoch, version)")
	}
	// Epoch outranks version: e3 wins over any version at e2…
	newer := wire.ShardMap{Version: 1, Epoch: 3, Shards: []wire.ShardInfo{{ID: "a", Addr: "addr:a"}}}
	if _, err := n.Install(&wire.ShardInstallRequest{Map: newer}); err != nil {
		t.Fatalf("higher-epoch install refused: %v", err)
	}
	// …and the fenced-out epoch cannot come back, whatever its version.
	stale := wire.ShardMap{Version: 99, Epoch: 2, Shards: []wire.ShardInfo{{ID: "a", Addr: "addr:a"}}}
	if _, err := n.Install(&wire.ShardInstallRequest{Map: stale}); err == nil {
		t.Fatal("node accepted a stale-epoch map with a high version")
	}
}
