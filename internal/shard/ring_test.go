package shard

import (
	"fmt"
	"testing"

	"gupster/internal/wire"
)

func mapOf(version uint64, ids ...string) wire.ShardMap {
	m := wire.ShardMap{Version: version}
	for _, id := range ids {
		m.Shards = append(m.Shards, wire.ShardInfo{ID: id, Addr: "addr-" + id})
	}
	return m
}

func TestBuildRingValidation(t *testing.T) {
	cases := []struct {
		name string
		m    wire.ShardMap
	}{
		{"unversioned", mapOf(0, "a")},
		{"empty", mapOf(3)},
		{"blank id", wire.ShardMap{Version: 1, Shards: []wire.ShardInfo{{ID: "", Addr: "x"}}}},
		{"blank addr", wire.ShardMap{Version: 1, Shards: []wire.ShardInfo{{ID: "a"}}}},
		{"duplicate id", wire.ShardMap{Version: 1, Shards: []wire.ShardInfo{
			{ID: "a", Addr: "x"}, {ID: "a", Addr: "y"},
		}}},
	}
	for _, tc := range cases {
		if _, err := BuildRing(tc.m); err == nil {
			t.Errorf("%s: BuildRing accepted an invalid map", tc.name)
		}
	}
	if _, err := BuildRing(mapOf(1, "a")); err != nil {
		t.Fatalf("one-shard map rejected: %v", err)
	}
}

// Two rings built from the same map must route every owner identically —
// the whole scheme rests on "which shard owns alice" being a pure
// function of the map.
func TestRingDeterministic(t *testing.T) {
	m := mapOf(7, "a", "b", "c", "d")
	r1, err := BuildRing(m)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := BuildRing(m)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5000; i++ {
		owner := fmt.Sprintf("user-%d", i)
		if got, want := r2.Owner(owner).ID, r1.Owner(owner).ID; got != want {
			t.Fatalf("owner %q routes to %q on one ring and %q on its twin", owner, got, want)
		}
	}
	// Shard order in the map must not matter either.
	r3, err := BuildRing(wire.ShardMap{Version: 7, Shards: []wire.ShardInfo{
		{ID: "d", Addr: "addr-d"}, {ID: "b", Addr: "addr-b"},
		{ID: "a", Addr: "addr-a"}, {ID: "c", Addr: "addr-c"},
	}})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5000; i++ {
		owner := fmt.Sprintf("user-%d", i)
		if got, want := r3.Owner(owner).ID, r1.Owner(owner).ID; got != want {
			t.Fatalf("owner %q routes differently when the map lists shards in another order: %q vs %q", owner, got, want)
		}
	}
}

// The ring should spread owners roughly evenly: with 64 virtual points
// per shard no shard should see more than ~2x its fair share.
func TestRingDistribution(t *testing.T) {
	const owners = 20000
	for _, shards := range []int{2, 4, 8} {
		ids := make([]string, shards)
		for i := range ids {
			ids[i] = fmt.Sprintf("s%d", i)
		}
		r, err := BuildRing(mapOf(1, ids...))
		if err != nil {
			t.Fatal(err)
		}
		counts := make(map[string]int)
		for i := 0; i < owners; i++ {
			counts[r.Owner(fmt.Sprintf("user-%d", i)).ID]++
		}
		fair := owners / shards
		for id, got := range counts {
			if got > 2*fair || got < fair/3 {
				t.Errorf("%d shards: shard %s holds %d owners (fair share %d) — distribution too skewed", shards, id, got, fair)
			}
		}
		if len(counts) != shards {
			t.Errorf("%d shards: only %d received owners", shards, len(counts))
		}
	}
}

// Adding one shard must only move owners TO the new shard: an owner that
// stays in the old shard set keeps its home. This is the property that
// makes rebalances cheap (only the new shard's slice migrates).
func TestRingMinimalMovement(t *testing.T) {
	old, err := BuildRing(mapOf(1, "a", "b", "c"))
	if err != nil {
		t.Fatal(err)
	}
	next, err := BuildRing(mapOf(2, "a", "b", "c", "d"))
	if err != nil {
		t.Fatal(err)
	}
	moved := 0
	for i := 0; i < 10000; i++ {
		owner := fmt.Sprintf("user-%d", i)
		was, is := old.Owner(owner).ID, next.Owner(owner).ID
		if was != is {
			if is != "d" {
				t.Fatalf("owner %q moved %s→%s although only shard d joined", owner, was, is)
			}
			moved++
		}
	}
	if moved == 0 {
		t.Fatal("no owner moved to the joining shard")
	}
	if moved > 10000/2 {
		t.Fatalf("%d of 10000 owners moved for one joining shard — far beyond its fair slice", moved)
	}
}
