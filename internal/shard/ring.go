// Package shard partitions the directory's owner keyspace across a
// constellation of MDM shards. Owners map to shards through a
// deterministic consistent-hash ring built from a versioned shard map
// (wire.ShardMap): any two nodes holding the same map version route every
// owner identically, so "which shard owns alice" is a pure function of
// the map — no coordination on the request path.
//
// The package supplies four pieces: the Ring (the pure routing function),
// the Node (a shard-aware wrapper around an MDM's wire dispatch that
// serves its own slice, forwards or redirects the rest, and runs the
// live-rebalance handoff state machine), the Router (a data-less
// front-end that lets clients address "the directory" as one endpoint),
// and the Client (a shard-map-aware caller that routes client-side and
// chases wrong-shard redirects).
package shard

import (
	"fmt"
	"hash/fnv"
	"sort"

	"gupster/internal/wire"
)

// vpoints is the number of virtual points each shard contributes to the
// ring. 64 keeps the expected imbalance between shards under a few
// percent at the shard counts the directory targets (2–64) while the ring
// stays small enough to rebuild on every map install.
const vpoints = 64

type point struct {
	hash  uint64
	shard int // index into Ring.shards
}

// Ring is an immutable consistent-hash routing table built from one shard
// map version. Build once per install; lookups are lock-free.
type Ring struct {
	version uint64
	epoch   uint64
	shards  []wire.ShardInfo
	points  []point // sorted by hash
}

// CompareMaps orders two shard maps by (Epoch, Version), lexicographically:
// negative when a is older than b, zero when the coordinates are equal,
// positive when a is newer. Repair bumps the epoch, operator rebalances
// bump the version within an epoch, so the pair totally orders every
// legitimate map lineage; equal coordinates with different content mean a
// split-brain and are the installer's job to reject.
func CompareMaps(a, b wire.ShardMap) int {
	switch {
	case a.Epoch < b.Epoch:
		return -1
	case a.Epoch > b.Epoch:
		return 1
	case a.Version < b.Version:
		return -1
	case a.Version > b.Version:
		return 1
	}
	return 0
}

// BuildRing validates a shard map and builds its ring. A valid map has a
// non-zero version and at least one shard, every shard a non-empty unique
// ID and a non-empty address.
func BuildRing(m wire.ShardMap) (*Ring, error) {
	if m.Version == 0 {
		return nil, fmt.Errorf("shard: map version 0 (unversioned)")
	}
	if len(m.Shards) == 0 {
		return nil, fmt.Errorf("shard: map v%d names no shards", m.Version)
	}
	seen := make(map[string]bool, len(m.Shards))
	r := &Ring{
		version: m.Version,
		epoch:   m.Epoch,
		shards:  append([]wire.ShardInfo(nil), m.Shards...),
		points:  make([]point, 0, vpoints*len(m.Shards)),
	}
	for i, s := range r.shards {
		if s.ID == "" {
			return nil, fmt.Errorf("shard: map v%d has a shard with no ID", m.Version)
		}
		if s.Addr == "" {
			return nil, fmt.Errorf("shard: map v%d shard %q has no address", m.Version, s.ID)
		}
		if seen[s.ID] {
			return nil, fmt.Errorf("shard: map v%d names shard %q twice", m.Version, s.ID)
		}
		seen[s.ID] = true
		for v := 0; v < vpoints; v++ {
			r.points = append(r.points, point{hash: hash64(fmt.Sprintf("%s#%d", s.ID, v)), shard: i})
		}
	}
	sort.Slice(r.points, func(a, b int) bool {
		if r.points[a].hash != r.points[b].hash {
			return r.points[a].hash < r.points[b].hash
		}
		// Ties (astronomically rare) break deterministically by shard ID so
		// every holder of the map still agrees.
		return r.shards[r.points[a].shard].ID < r.shards[r.points[b].shard].ID
	})
	return r, nil
}

func hash64(s string) uint64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(s))
	x := h.Sum64()
	// Raw FNV-1a clusters similar short keys ("user-1", "user-2", …) into
	// a narrow arc of the ring, which collapses the partition onto one
	// shard. A 64-bit avalanche finalizer spreads them uniformly while
	// staying a pure function of the input.
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// Owner returns the shard owning an owner ID: the first ring point at or
// after the owner's hash, wrapping. Total by construction — every owner
// maps to exactly one shard for any valid map.
func (r *Ring) Owner(owner string) wire.ShardInfo {
	h := hash64(owner)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return r.shards[r.points[i].shard]
}

// Version returns the map version the ring was built from.
func (r *Ring) Version() uint64 { return r.version }

// Epoch returns the repair epoch the ring was built from.
func (r *Ring) Epoch() uint64 { return r.epoch }

// Map re-exports the ring's shard map in wire form.
func (r *Ring) Map() wire.ShardMap {
	return wire.ShardMap{
		Version: r.version,
		Epoch:   r.epoch,
		Shards:  append([]wire.ShardInfo(nil), r.shards...),
	}
}

// Shards lists the ring's members.
func (r *Ring) Shards() []wire.ShardInfo {
	return append([]wire.ShardInfo(nil), r.shards...)
}
