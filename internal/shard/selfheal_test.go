package shard_test

import (
	"context"
	"errors"
	"net"
	"strings"
	"testing"
	"time"

	"gupster/internal/policy"
	"gupster/internal/shard"
	"gupster/internal/token"
	"gupster/internal/wire"
)

// deadAddr reserves a loopback address and immediately releases it, so
// dials to it are refused.
func deadAddr(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

func serveRouter(t *testing.T, m wire.ShardMap) *wire.Server {
	t.Helper()
	r, err := shard.NewRouter(m, shard.RouterConfig{ForwardTimeout: 2 * time.Second, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ws := wire.ServeListener(ln, r)
	t.Cleanup(func() {
		ws.Close()
		r.Close()
	})
	return ws
}

// When every shard in the map refuses connections the router must answer
// with the typed no-shard verdict — naming the map coordinates — instead
// of burning the caller's deadline on one doomed dial per request.
func TestRouterNoShardAvailable(t *testing.T) {
	m := wire.ShardMap{Version: 7, Epoch: 2, Shards: []wire.ShardInfo{
		{ID: "a", Addr: deadAddr(t)},
		{ID: "b", Addr: deadAddr(t)},
	}}
	ws := serveRouter(t, m)

	conn, err := wire.Dial(ws.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	start := time.Now()
	var resp wire.ResolveResponse
	err = conn.Call(ctx, wire.TypeResolve, &wire.ResolveRequest{
		Path:    "/user[@id='user-0']/presence",
		Context: policy.Context{Requester: "user-0"},
		Verb:    token.VerbFetch,
	}, &resp)
	if err == nil {
		t.Fatal("resolve against an all-dead map succeeded")
	}
	var re *wire.RemoteError
	if !errors.As(err, &re) {
		t.Fatalf("got %v, want a remote error carrying the no-shard verdict", err)
	}
	if !strings.Contains(err.Error(), "no shard available (map v7@e2)") {
		t.Fatalf("no-shard verdict does not name the map coordinates: %v", err)
	}
	if d := time.Since(start); d > 3*time.Second {
		t.Fatalf("no-shard verdict took %v — the router kept the caller waiting", d)
	}
}

// When only the owner's shard is down, the router fails over to another
// map member, which can still answer — here with a wrong-shard redirect
// that proves a live shard handled the frame.
func TestRouterFailsOverToLiveShard(t *testing.T) {
	b := startShard(t, "b")
	m := wire.ShardMap{Version: 1, Shards: []wire.ShardInfo{
		{ID: "x", Addr: deadAddr(t)},
		{ID: "b", Addr: b.addr()},
	}}
	installMap(t, m, "", b)
	ws := serveRouter(t, m)

	ring, err := shard.BuildRing(m)
	if err != nil {
		t.Fatal(err)
	}
	owner := ""
	for i := 0; i < 10000; i++ {
		cand := "user-" + string(rune('0'+i%10)) + string(rune('a'+i/10%26))
		if ring.Owner(cand).ID == "x" {
			owner = cand
			break
		}
	}
	if owner == "" {
		t.Fatal("no owner homed on the dead shard in the sample")
	}

	conn, err := wire.Dial(ws.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	err = registerOwner(t, conn, owner)
	var wse *wire.WrongShardError
	if !errors.As(err, &wse) {
		t.Fatalf("got %v, want a wrong-shard redirect relayed from the failover shard", err)
	}
	if wse.ShardID != "x" {
		t.Fatalf("failover redirect names shard %q, want x", wse.ShardID)
	}
}

// Bootstrap must rotate past a dead first seed instead of giving up.
func TestDialSkipsDeadSeed(t *testing.T) {
	solo := startShard(t, "solo")
	cli, err := shard.Dial(deadAddr(t), solo.addr())
	if err != nil {
		t.Fatalf("bootstrap with a dead first seed: %v", err)
	}
	defer cli.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	conn, err := wire.Dial(solo.addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := registerOwner(t, conn, "user-1"); err != nil {
		t.Fatal(err)
	}
	if err := resolveOwnerVia(ctx, cli, "user-1"); err != nil {
		t.Fatalf("resolve through seed-rotated client: %v", err)
	}
}

// After a shard dies and a repair installs a higher-epoch map on the
// survivors, a client still holding the old map must refresh from the
// ring on transport failure and retry at the owner's new home.
func TestClientRebootstrapAfterShardDeath(t *testing.T) {
	a, b := startShard(t, "a"), startShard(t, "b")
	v1 := mapFor(1, a, b)
	installMap(t, v1, "", a, b)

	byHome := ownersBy(t, v1, 64)
	if len(byHome["b"]) == 0 {
		t.Fatal("owner sample has no b-homed owner")
	}
	ownerB := byHome["b"][0]

	cli, err := shard.DialMap(v1)
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	// Shard b dies; a repair would install a fenced successor map on the
	// survivor. Close is idempotent, so the t.Cleanup re-close is fine.
	b.ws.Close()
	v2 := mapFor(2, a)
	v2.Epoch = 1
	installMap(t, v2, "fence", a)

	connA, err := wire.Dial(a.addr())
	if err != nil {
		t.Fatal(err)
	}
	defer connA.Close()
	if err := registerOwner(t, connA, ownerB); err != nil {
		t.Fatalf("re-register at survivor: %v", err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := resolveOwnerVia(ctx, cli, ownerB); err != nil {
		t.Fatalf("resolve for the dead shard's owner after repair: %v", err)
	}
	if got := cli.Map(); got.Epoch != 1 || got.Version != 2 {
		t.Fatalf("client holds map v%d@e%d after rebootstrap, want v2@e1", got.Version, got.Epoch)
	}
}
