package shard_test

import (
	"context"
	"errors"
	"fmt"
	"net"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"gupster/internal/core"
	"gupster/internal/policy"
	"gupster/internal/schema"
	"gupster/internal/shard"
	"gupster/internal/token"
	"gupster/internal/wire"
)

var testKey = []byte("shard-integration-test-key")

type testShard struct {
	id   string
	mdm  *core.MDM
	node *shard.Node
	ws   *wire.Server
}

func (s *testShard) addr() string { return s.ws.Addr() }

// startShard runs a full MDM behind shard routing on a loopback listener.
func startShard(t *testing.T, id string) *testShard {
	t.Helper()
	m := core.New(core.Config{Signer: token.NewSigner(testKey), Schema: schema.GUP()})
	srv := core.NewServer(m)
	node := shard.NewNode(shard.NodeConfig{
		ShardID: id, MDM: m, Inner: wire.HandlerFunc(srv.Handle),
		Logf: t.Logf,
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ws := wire.ServeListener(ln, node)
	t.Cleanup(func() {
		ws.Close()
		node.Close()
		m.Close()
	})
	return &testShard{id: id, mdm: m, node: node, ws: ws}
}

func installMap(t *testing.T, m wire.ShardMap, mode string, shards ...*testShard) {
	t.Helper()
	for _, s := range shards {
		if _, err := s.node.Install(&wire.ShardInstallRequest{Map: m, Mode: mode}); err != nil {
			t.Fatalf("install v%d on %s: %v", m.Version, s.id, err)
		}
	}
}

func mapFor(version uint64, shards ...*testShard) wire.ShardMap {
	m := wire.ShardMap{Version: version}
	for _, s := range shards {
		m.Shards = append(m.Shards, wire.ShardInfo{ID: s.id, Addr: s.addr()})
	}
	return m
}

// ownersBy buckets generated owner IDs by their home shard under a map.
func ownersBy(t *testing.T, m wire.ShardMap, n int) map[string][]string {
	t.Helper()
	r, err := shard.BuildRing(m)
	if err != nil {
		t.Fatal(err)
	}
	out := make(map[string][]string)
	for i := 0; i < n; i++ {
		owner := fmt.Sprintf("user-%d", i)
		home := r.Owner(owner).ID
		out[home] = append(out[home], owner)
	}
	return out
}

func registerOwner(t *testing.T, conn *wire.Client, owner string) error {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
	defer cancel()
	return conn.Call(ctx, wire.TypeRegister, &wire.RegisterRequest{
		Store:   "store-" + owner,
		Address: "127.0.0.1:19999",
		Path:    fmt.Sprintf("/user[@id='%s']/presence", owner),
	}, nil)
}

func resolveOwnerVia(ctx context.Context, cli *shard.Client, owner string) error {
	var resp wire.ResolveResponse
	err := cli.Call(ctx, owner, wire.TypeResolve, &wire.ResolveRequest{
		Path:    fmt.Sprintf("/user[@id='%s']/presence", owner),
		Context: policy.Context{Requester: owner},
		Verb:    token.VerbFetch,
	}, &resp)
	if err != nil {
		return err
	}
	if len(resp.Alternatives) == 0 {
		return fmt.Errorf("resolve for %s returned no alternatives", owner)
	}
	return nil
}

// A two-shard constellation must serve each owner at its home shard and
// answer the rest with wrong-shard redirects carrying the full map; the
// shard-aware client must route around both without the caller noticing.
func TestNodeRoutesAndRedirects(t *testing.T) {
	a, b := startShard(t, "a"), startShard(t, "b")
	m := mapFor(1, a, b)
	installMap(t, m, "", a, b)

	byHome := ownersBy(t, m, 64)
	if len(byHome["a"]) == 0 || len(byHome["b"]) == 0 {
		t.Fatalf("owner sample did not hit both shards: %v", map[string]int{"a": len(byHome["a"]), "b": len(byHome["b"])})
	}
	ownerA, ownerB := byHome["a"][0], byHome["b"][0]

	connA, err := wire.Dial(a.addr())
	if err != nil {
		t.Fatal(err)
	}
	defer connA.Close()

	// Registration for shard a's owner lands when sent to a...
	if err := registerOwner(t, connA, ownerA); err != nil {
		t.Fatalf("register %s at home shard: %v", ownerA, err)
	}
	// ...and bounces with a redirect when sent for shard b's owner.
	err = registerOwner(t, connA, ownerB)
	var ws *wire.WrongShardError
	if !errors.As(err, &ws) {
		t.Fatalf("register for %s at shard a: got %v, want a wrong-shard redirect", ownerB, err)
	}
	if ws.ShardID != "b" || ws.Addr != b.addr() {
		t.Fatalf("redirect points at %s/%s, want b/%s", ws.ShardID, ws.Addr, b.addr())
	}
	if ws.Map == nil || ws.Map.Version != 1 {
		t.Fatalf("redirect carries map %+v, want the full v1 map", ws.Map)
	}
	if ws.Owner != ownerB {
		t.Fatalf("redirect names owner %q, want %q", ws.Owner, ownerB)
	}

	// Old clients that only look at the error string still get a hint.
	var re *wire.RemoteError
	if errors.As(err, &re) {
		t.Fatalf("redirect decoded as a plain remote error: %v", err)
	}
	if !strings.Contains(err.Error(), "b") {
		t.Fatalf("redirect error text %q names no shard", err.Error())
	}

	connB, err := wire.Dial(b.addr())
	if err != nil {
		t.Fatal(err)
	}
	defer connB.Close()
	if err := registerOwner(t, connB, ownerB); err != nil {
		t.Fatalf("register %s at shard b: %v", ownerB, err)
	}

	// The shard-aware client reaches both owners regardless of seed.
	cli, err := shard.DialMap(m)
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	for _, owner := range []string{ownerA, ownerB} {
		if err := resolveOwnerVia(ctx, cli, owner); err != nil {
			t.Fatalf("sharded resolve for %s: %v", owner, err)
		}
	}

	// A stale-map client chases the redirect: point everything at shard a.
	stale, err := shard.DialMap(wire.ShardMap{Version: 1, Shards: []wire.ShardInfo{{ID: "a", Addr: a.addr()}}})
	if err != nil {
		t.Fatal(err)
	}
	defer stale.Close()
	if err := resolveOwnerVia(ctx, stale, ownerB); err != nil {
		t.Fatalf("stale client did not chase the redirect for %s: %v", ownerB, err)
	}
}

// A node with no installed map is an unsharded directory: everything is
// served locally, nothing redirects.
func TestNodeWithoutMapServesEverything(t *testing.T) {
	a := startShard(t, "solo")
	conn, err := wire.Dial(a.addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	for i := 0; i < 8; i++ {
		if err := registerOwner(t, conn, fmt.Sprintf("user-%d", i)); err != nil {
			t.Fatalf("register on mapless node: %v", err)
		}
	}
}

// Stale installs must be refused — a coordinator replaying an old map
// would otherwise rewind routing on one shard and split the namespace.
func TestNodeRefusesStaleMap(t *testing.T) {
	a := startShard(t, "a")
	installMap(t, mapFor(3, a), "", a)
	if _, err := a.node.Install(&wire.ShardInstallRequest{Map: mapFor(2, a)}); err == nil {
		t.Fatal("node accepted a map older than the one it holds")
	}
	// Same-version reinstall is allowed (handoff→drain chains reuse it).
	if _, err := a.node.Install(&wire.ShardInstallRequest{Map: mapFor(3, a)}); err != nil {
		t.Fatalf("same-version reinstall refused: %v", err)
	}
}

// The satellite property: a live rebalance never opens a window where a
// moved owner fails to resolve. Resolves run continuously before, during
// and after Rebalance(); every one must succeed.
func TestRebalanceNoResolveGap(t *testing.T) {
	a, b := startShard(t, "a"), startShard(t, "b")
	v1 := mapFor(1, a, b)
	installMap(t, v1, "", a, b)

	const ownerCount = 48
	byHome := ownersBy(t, v1, ownerCount)
	conns := map[string]*wire.Client{}
	for _, s := range []*testShard{a, b} {
		conn, err := wire.Dial(s.addr())
		if err != nil {
			t.Fatal(err)
		}
		defer conn.Close()
		conns[s.id] = conn
		for _, owner := range byHome[s.id] {
			if err := registerOwner(t, conn, owner); err != nil {
				t.Fatalf("seed register %s at %s: %v", owner, s.id, err)
			}
		}
	}

	// Shard c joins; work out which owners v2 moves to it.
	c := startShard(t, "c")
	v2 := mapFor(2, a, b, c)
	oldRing, err := shard.BuildRing(v1)
	if err != nil {
		t.Fatal(err)
	}
	newRing, err := shard.BuildRing(v2)
	if err != nil {
		t.Fatal(err)
	}
	var moved []string
	for i := 0; i < ownerCount; i++ {
		owner := fmt.Sprintf("user-%d", i)
		if oldRing.Owner(owner).ID != newRing.Owner(owner).ID {
			if newRing.Owner(owner).ID != "c" {
				t.Fatalf("owner %s moved between surviving shards", owner)
			}
			moved = append(moved, owner)
		}
	}
	if len(moved) == 0 {
		t.Fatal("no owners move to the joining shard — widen the sample")
	}
	t.Logf("%d of %d owners move to shard c", len(moved), ownerCount)

	// Hammer the moved owners from a client that starts on the old map and
	// must ride redirects/forwards across the whole transition.
	cli, err := shard.DialMap(v1)
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	var failures atomic.Int64
	var attempts atomic.Int64
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			select {
			case <-stop:
				return
			default:
			}
			for _, owner := range moved {
				ctx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
				err := resolveOwnerVia(ctx, cli, owner)
				cancel()
				attempts.Add(1)
				if err != nil {
					failures.Add(1)
					t.Errorf("resolve for moved owner %s failed mid-rebalance: %v", owner, err)
				}
			}
		}
	}()

	time.Sleep(50 * time.Millisecond) // let the pre-rebalance baseline run
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	if err := shard.Rebalance(ctx, v1, v2, shard.RebalanceOptions{ForwardMillis: 300, Logf: t.Logf}); err != nil {
		t.Fatalf("Rebalance: %v", err)
	}
	time.Sleep(900 * time.Millisecond) // ride through the drain flip
	close(stop)
	<-done

	if got := failures.Load(); got != 0 {
		t.Fatalf("%d of %d resolves for moved owners failed across the rebalance", got, attempts.Load())
	}
	if attempts.Load() == 0 {
		t.Fatal("resolver made no attempts")
	}

	// The drain completed: sources dropped the moved slice and redirect.
	for _, owner := range moved {
		src := oldRing.Owner(owner)
		ctx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
		var resp wire.ResolveResponse
		err := conns[src.ID].Call(ctx, wire.TypeResolve, &wire.ResolveRequest{
			Path:    fmt.Sprintf("/user[@id='%s']/presence", owner),
			Context: policy.Context{Requester: owner},
			Verb:    token.VerbFetch,
		}, &resp)
		cancel()
		var ws *wire.WrongShardError
		if !errors.As(err, &ws) {
			t.Fatalf("post-drain resolve for %s at old home %s: got %v, want a wrong-shard redirect", owner, src.ID, err)
		}
		if ws.ShardID != "c" {
			t.Fatalf("post-drain redirect for %s points at %s, want c", owner, ws.ShardID)
		}
	}
	for _, s := range []*testShard{a, b} {
		for _, reg := range s.mdm.CoverageSnapshot() {
			for _, owner := range moved {
				if strings.Contains(reg.Path, "'"+owner+"'") {
					t.Fatalf("shard %s still holds moved owner %s after the drain: %s", s.id, owner, reg.Path)
				}
			}
		}
	}
	for _, owner := range moved {
		found := false
		for _, reg := range c.mdm.CoverageSnapshot() {
			if strings.Contains(reg.Path, "'"+owner+"'") {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("moved owner %s never arrived on shard c", owner)
		}
	}
}

// Mutations issued during the handoff window must land on the new owner,
// not evaporate with the source's dropped slice.
func TestHandoffForwardsMutations(t *testing.T) {
	a, b := startShard(t, "a"), startShard(t, "b")
	v1 := mapFor(1, a, b)
	installMap(t, v1, "", a, b)

	c := startShard(t, "c")
	v2 := mapFor(2, a, b, c)
	oldRing, _ := shard.BuildRing(v1)
	newRing, _ := shard.BuildRing(v2)
	var owner string
	for i := 0; ; i++ {
		cand := fmt.Sprintf("user-%d", i)
		if oldRing.Owner(cand).ID != newRing.Owner(cand).ID {
			owner = cand
			break
		}
		if i > 10000 {
			t.Fatal("no moving owner found")
		}
	}
	src := oldRing.Owner(owner).ID
	shards := map[string]*testShard{"a": a, "b": b}
	installMap(t, v2, "", c)
	installMap(t, v2, "handoff", a, b)

	// A registration sent to the source mid-handoff must reach shard c.
	conn, err := wire.Dial(shards[src].addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := registerOwner(t, conn, owner); err != nil {
		t.Fatalf("register during handoff: %v", err)
	}
	found := false
	for _, reg := range c.mdm.CoverageSnapshot() {
		if strings.Contains(reg.Path, "'"+owner+"'") {
			found = true
		}
	}
	if !found {
		t.Fatalf("registration for %s forwarded during handoff never reached shard c", owner)
	}
	if len(shards[src].mdm.CoverageSnapshot()) != 0 {
		t.Fatalf("forwarded registration also landed on the source")
	}

	// Subscriptions are never forwarded: the source redirects them even
	// mid-handoff so the notification stream is born on the owning shard.
	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
	defer cancel()
	var sresp wire.SubscribeResponse
	err = conn.Call(ctx, wire.TypeSubscribe, &wire.SubscribeRequest{
		Path:    fmt.Sprintf("/user[@id='%s']/presence", owner),
		Context: policy.Context{Requester: owner},
	}, &sresp)
	var ws *wire.WrongShardError
	if !errors.As(err, &ws) || ws.ShardID != "c" {
		t.Fatalf("subscribe during handoff: got %v, want a redirect to shard c", err)
	}
}
