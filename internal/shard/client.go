package shard

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"gupster/internal/wire"
)

// Client routes wire calls across a sharded directory client-side: it
// holds the shard map, picks the owning shard per request, and chases
// wrong-shard redirects (adopting any newer map they carry) when its copy
// is stale. One Client multiplexes connections to every shard.
type Client struct {
	mu    sync.Mutex
	ring  *Ring
	conns map[string]*wire.Client // addr → connection
	seeds []string
}

// DialMap connects with a known shard map (in-process rigs, tests).
func DialMap(m wire.ShardMap) (*Client, error) {
	ring, err := BuildRing(m)
	if err != nil {
		return nil, err
	}
	return &Client{ring: ring, conns: make(map[string]*wire.Client)}, nil
}

// Dial bootstraps from any directory address: the first reachable seed is
// asked for its shard map. A seed answering with an empty map (an
// unsharded directory) yields a client that routes everything there.
func Dial(seeds ...string) (*Client, error) {
	c := &Client{conns: make(map[string]*wire.Client), seeds: append([]string(nil), seeds...)}
	var lastErr error
	for _, addr := range seeds {
		conn, err := c.conn(addr)
		if err != nil {
			lastErr = err
			continue
		}
		ctx, cancel := context.WithTimeout(context.Background(), 5e9)
		var m wire.ShardMap
		err = conn.Call(ctx, wire.TypeShardMap, wire.Empty{}, &m)
		cancel()
		if err != nil {
			lastErr = err
			c.drop(addr)
			continue
		}
		if len(m.Shards) == 0 {
			// Unsharded: synthesize a one-shard map around the seed.
			m = wire.ShardMap{Version: 1, Shards: []wire.ShardInfo{{ID: "solo", Addr: addr}}}
		}
		ring, err := BuildRing(m)
		if err != nil {
			return nil, err
		}
		c.ring = ring
		return c, nil
	}
	if lastErr == nil {
		lastErr = errors.New("shard: no seed addresses")
	}
	return nil, fmt.Errorf("shard: bootstrap failed: %w", lastErr)
}

// Map returns the client's current shard map.
func (c *Client) Map() wire.ShardMap {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ring.Map()
}

// Call routes one owner-scoped call to the owning shard, following up to
// three wrong-shard redirects (each may carry a newer map, which the
// client adopts for every subsequent call) and one not-leader redirect
// inside the target constellation.
func (c *Client) Call(ctx context.Context, owner, msgType string, req, resp any) error {
	c.mu.Lock()
	target := c.ring.Owner(owner)
	c.mu.Unlock()

	rebootstrapped := false
	var err error
	for hops := 0; hops < 4; hops++ {
		err = c.callAddr(ctx, target.Addr, msgType, req, resp)
		if err == nil {
			return nil
		}
		var ws *wire.WrongShardError
		if errors.As(err, &ws) {
			if ws.Map != nil {
				c.adopt(*ws.Map)
			}
			if ws.Addr == "" || ws.Addr == target.Addr {
				return err
			}
			target = wire.ShardInfo{ID: ws.ShardID, Addr: ws.Addr, Members: ws.Members}
			continue
		}
		// A dead shard sends no redirect — the dial (or the stream) just
		// fails. The map may have moved on without us (auto-repair installs
		// a new epoch on the survivors), so refresh it once from the seeds
		// and the other known shards, and retry only if the owner now routes
		// somewhere else.
		if isTransportErr(err) && !rebootstrapped && ctx.Err() == nil {
			rebootstrapped = true
			if c.rebootstrap(ctx, target.Addr) {
				c.mu.Lock()
				next := c.ring.Owner(owner)
				c.mu.Unlock()
				if next.Addr != target.Addr {
					target = next
					continue
				}
			}
		}
		return err
	}
	return err
}

// rebootstrap re-fetches the shard map from the first reachable seed or
// known shard other than deadAddr, adopting anything newer. It reports
// whether any probe answered.
func (c *Client) rebootstrap(ctx context.Context, deadAddr string) bool {
	c.mu.Lock()
	cands := append([]string(nil), c.seeds...)
	if c.ring != nil {
		for _, s := range c.ring.Shards() {
			cands = append(cands, s.Addr)
		}
	}
	c.mu.Unlock()
	seen := map[string]bool{deadAddr: true}
	for _, addr := range cands {
		if seen[addr] || ctx.Err() != nil {
			continue
		}
		seen[addr] = true
		conn, err := c.conn(addr)
		if err != nil {
			continue
		}
		pctx, cancel := context.WithTimeout(ctx, 2*time.Second)
		var m wire.ShardMap
		err = conn.Call(pctx, wire.TypeShardMap, wire.Empty{}, &m)
		cancel()
		if err != nil {
			if isTransportErr(err) {
				c.drop(addr)
			}
			continue
		}
		if len(m.Shards) > 0 {
			c.adopt(m)
		}
		return true
	}
	return false
}

// callAddr issues one call, chasing a single not-leader hop.
func (c *Client) callAddr(ctx context.Context, addr, msgType string, req, resp any) error {
	conn, err := c.conn(addr)
	if err != nil {
		return err
	}
	err = conn.Call(ctx, msgType, req, resp)
	if err == nil {
		return nil
	}
	var nl *wire.NotLeaderError
	if errors.As(err, &nl) && nl.LeaderAddr != "" && nl.LeaderAddr != addr {
		lc, derr := c.conn(nl.LeaderAddr)
		if derr != nil {
			return err
		}
		return lc.Call(ctx, msgType, req, resp)
	}
	// Only a genuine transport failure warrants discarding the connection:
	// it is multiplexed, so closing it kills every other in-flight call.
	// Typed replies mean the shard answered (the link is healthy), and the
	// caller's own budget expiring says nothing about the link either.
	if isTransportErr(err) {
		c.drop(addr) // transport failure; redial next time
	}
	return err
}

// isTransportErr distinguishes a dead link from a healthy shard saying no:
// typed protocol replies and the caller's own context expiry are not
// transport failures.
func isTransportErr(err error) bool {
	var re *wire.RemoteError
	var wse *wire.WrongShardError
	var nle *wire.NotLeaderError
	var ove *wire.OverloadedError
	switch {
	case errors.As(err, &re), errors.As(err, &wse), errors.As(err, &nle), errors.As(err, &ove):
		return false
	case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
		return false
	}
	return true
}

// adopt installs a newer shard map learned from a redirect or refresh.
// Ordering is by (epoch, version): a repair epoch outranks any number of
// version bumps inside a stale epoch.
func (c *Client) adopt(m wire.ShardMap) {
	ring, err := BuildRing(m)
	if err != nil {
		return
	}
	c.mu.Lock()
	if c.ring == nil || CompareMaps(ring.Map(), c.ring.Map()) > 0 {
		c.ring = ring
	}
	c.mu.Unlock()
}

func (c *Client) conn(addr string) (*wire.Client, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if conn, ok := c.conns[addr]; ok {
		return conn, nil
	}
	conn, err := wire.Dial(addr)
	if err != nil {
		return nil, err
	}
	c.conns[addr] = conn
	return conn, nil
}

func (c *Client) drop(addr string) {
	c.mu.Lock()
	if conn, ok := c.conns[addr]; ok {
		conn.Close()
		delete(c.conns, addr)
	}
	c.mu.Unlock()
}

// Close releases every shard connection.
func (c *Client) Close() {
	c.mu.Lock()
	defer c.mu.Unlock()
	for addr, conn := range c.conns {
		conn.Close()
		delete(c.conns, addr)
	}
}
