package shard

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"time"

	"gupster/internal/core"
	"gupster/internal/coverage"
	"gupster/internal/wire"
	"gupster/internal/xpath"
)

// NodeConfig parameterizes a shard node.
type NodeConfig struct {
	// ShardID is this node's identity in the shard map. A node serves an
	// owner exactly when the installed map's ring assigns the owner to
	// this ID.
	ShardID string
	// MDM is the local directory slice (used for coverage dumps and the
	// post-drain cleanup; the serving path goes through Inner).
	MDM *core.MDM
	// Inner is the unsharded dispatch the node wraps: a core.Server's
	// Handle for a plain shard, a replication.Node's Handle when the
	// shard is itself a quorum constellation.
	Inner wire.Handler
	// ForwardTimeout bounds one shard-to-shard forward when the inbound
	// frame carries no budget; 0 means 5s.
	ForwardTimeout time.Duration
	// Logf, when set, receives install/rebalance events.
	Logf func(format string, args ...any)
}

// handoffState tracks a live rebalance on the losing side. While present,
// owners this node held under prev but lost under the current ring are
// not redirected outright: in "handoff" mode their reads are still served
// locally (the replay to the new shard is in flight) while their
// mutations forward to the new owner so nothing lands in a directory
// slice about to be dropped; in "drain" mode everything forwards until
// the window closes, after which the node flips to wrong-shard redirects
// and drops the moved owners' local state.
type handoffState struct {
	mode  string // "handoff" | "drain"
	until time.Time
	prev  *Ring
	timer *time.Timer
}

// Node wraps an MDM's wire dispatch with shard routing. Requests for
// owners this shard holds fall through to Inner untouched; requests for
// owners held elsewhere are redirected (TypeWrongShard, carrying the full
// map) or — during a rebalance window — transparently forwarded.
type Node struct {
	cfg NodeConfig

	mu      sync.Mutex
	ring    *Ring
	handoff *handoffState

	connMu sync.Mutex
	conns  map[string]*wire.Client // addr → forwarding connection
}

// NewNode wraps inner with shard routing. With no map installed the node
// serves everything locally — a one-shard directory needs no map.
func NewNode(cfg NodeConfig) *Node {
	return &Node{cfg: cfg, conns: make(map[string]*wire.Client)}
}

// Install adopts a shard map in-process (the wire path arrives via
// TypeShardInstall). See ShardInstallRequest for the mode semantics.
func (n *Node) Install(req *wire.ShardInstallRequest) (*wire.ShardInstallResponse, error) {
	ring, err := BuildRing(req.Map)
	if err != nil {
		return nil, err
	}
	resp, err := n.install(ring, req)
	if err != nil {
		return nil, err
	}
	if req.Mode == "fence" && n.cfg.MDM != nil {
		// The fencing drop runs outside n.mu: RetainOwners walks the whole
		// directory and must not stall dispatch. The ring captured above is
		// the one just installed, so a racing newer install only makes the
		// retain predicate stricter, never wrong.
		dropped := n.cfg.MDM.RetainOwners(func(owner string) bool {
			return ring.Owner(owner).ID == n.cfg.ShardID
		})
		n.logf("shard %s: fenced to map v%d@e%d, dropped %d stale registrations", n.cfg.ShardID, ring.Version(), ring.Epoch(), dropped)
	}
	return resp, nil
}

// install is Install's locked core: fencing checks, handoff-state
// bookkeeping, and the ring swap.
func (n *Node) install(ring *Ring, req *wire.ShardInstallRequest) (*wire.ShardInstallResponse, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.ring != nil {
		switch CompareMaps(ring.Map(), n.ring.Map()) {
		case -1:
			return nil, errStaleMap(ring, n.ring)
		case 0:
			// Same coordinates re-arrive legitimately (handoff→drain chains
			// reinstall the same map), but only with identical content: two
			// different maps at one (epoch, version) mean a split-brain
			// repair and neither side may silently win.
			if !sameMapContent(ring.Map(), n.ring.Map()) {
				return nil, errDivergentMap(ring)
			}
		}
	}
	// The outgoing state machine: the previous ring (against which this
	// node may still hold moved owners) survives a handoff→drain install
	// chain; a plain install ends any window.
	prev := n.ring
	if n.handoff != nil {
		prev = n.handoff.prev
		if n.handoff.timer != nil {
			n.handoff.timer.Stop()
		}
		n.handoff = nil
	}
	n.ring = ring
	switch req.Mode {
	case "":
		// Adopted outright.
	case "fence":
		// Adopted outright; the caller drops stale slices after unlock.
	case "handoff":
		if prev != nil {
			n.handoff = &handoffState{mode: "handoff", prev: prev}
		}
	case "drain":
		if prev != nil {
			window := time.Duration(req.ForwardMillis) * time.Millisecond
			if window <= 0 {
				window = 500 * time.Millisecond
			}
			h := &handoffState{mode: "drain", prev: prev, until: time.Now().Add(window)}
			h.timer = time.AfterFunc(window, n.finishDrain)
			n.handoff = h
		}
	default:
		return nil, errUnknownMode(req.Mode)
	}
	n.logf("shard %s: installed map v%d@e%d (%d shards, mode=%q)", n.cfg.ShardID, ring.Version(), ring.Epoch(), len(ring.Shards()), req.Mode)
	return &wire.ShardInstallResponse{Version: ring.Version()}, nil
}

func errStaleMap(got, have *Ring) error {
	return fmt.Errorf("shard: refusing stale map v%d@e%d (holding v%d@e%d)", got.Version(), got.Epoch(), have.Version(), have.Epoch())
}

func errDivergentMap(got *Ring) error {
	return fmt.Errorf("shard: refusing divergent map v%d@e%d (same coordinates, different shards)", got.Version(), got.Epoch())
}

// sameMapContent reports whether two maps name the same shards in the same
// order. JSON field order is deterministic, so byte equality of the
// marshaled forms is content equality.
func sameMapContent(a, b wire.ShardMap) bool {
	ab, err1 := json.Marshal(a)
	bb, err2 := json.Marshal(b)
	return err1 == nil && err2 == nil && string(ab) == string(bb)
}

func errUnknownMode(mode string) error {
	return fmt.Errorf("shard: unknown install mode %q", mode)
}

// finishDrain ends the drain window: the node stops forwarding, answers
// moved owners with wrong-shard redirects, and drops their registrations,
// shield rules, cached components and subscriptions locally (tombstoned
// subscribers re-home to the owning shard).
func (n *Node) finishDrain() {
	n.mu.Lock()
	h := n.handoff
	ring := n.ring
	if h == nil || h.mode != "drain" {
		n.mu.Unlock()
		return
	}
	n.handoff = nil
	n.mu.Unlock()
	if n.cfg.MDM != nil {
		dropped := n.cfg.MDM.RetainOwners(func(owner string) bool {
			return ring.Owner(owner).ID == n.cfg.ShardID
		})
		n.logf("shard %s: drain complete, dropped %d moved registrations", n.cfg.ShardID, dropped)
	}
}

// Ring returns the node's current routing table (nil before any install).
func (n *Node) Ring() *Ring {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.ring
}

func (n *Node) logf(format string, args ...any) {
	if n.cfg.Logf != nil {
		n.cfg.Logf(format, args...)
	}
}

// Handle implements wire.Handler: shard administration is answered here,
// owner-scoped traffic is routed, everything else falls through.
func (n *Node) Handle(c *wire.ServerConn, m *wire.Message) {
	switch m.Type {
	case wire.TypeShardMap:
		n.mu.Lock()
		var mp wire.ShardMap
		if n.ring != nil {
			mp = n.ring.Map()
		}
		n.mu.Unlock()
		_ = c.Reply(m, mp)
		return
	case wire.TypeShardInstall:
		var req wire.ShardInstallRequest
		if err := wire.Unmarshal(m.Payload, &req); err != nil {
			_ = c.ReplyError(m, err)
			return
		}
		resp, err := n.Install(&req)
		if err != nil {
			_ = c.ReplyError(m, err)
			return
		}
		_ = c.Reply(m, resp)
		return
	case wire.TypeShardCoverage:
		if n.cfg.MDM == nil {
			_ = c.ReplyError(m, fmt.Errorf("shard: node has no local directory to dump"))
			return
		}
		_ = c.Reply(m, wire.ShardCoverageResponse{
			Coverage: n.cfg.MDM.CoverageSnapshot(),
			Shields:  n.cfg.MDM.ShieldSnapshot(),
		})
		return
	}

	owners, scoped := ownersOfMessage(m.Type, m.Payload)
	if !scoped || len(owners) == 0 {
		n.cfg.Inner.ServeWire(c, m)
		return
	}

	n.mu.Lock()
	ring := n.ring
	h := n.handoff
	if h != nil && h.mode == "drain" && time.Now().After(h.until) {
		// The timer callback flips the state; don't serve a stale window
		// if dispatch races it.
		h = nil
	}
	n.mu.Unlock()
	if ring == nil {
		n.cfg.Inner.ServeWire(c, m)
		return
	}

	// A multi-owner frame (batch resolve) is served locally only when
	// every owner routes here; a mixed batch is redirected on the first
	// foreign owner — the shard-aware client splits batches by owner and
	// never sends one.
	for _, owner := range owners {
		target := ring.Owner(owner)
		if target.ID == n.cfg.ShardID {
			continue
		}
		movedAway := h != nil && h.prev.Owner(owner).ID == n.cfg.ShardID
		switch {
		case movedAway && h.mode == "drain":
			n.forward(c, m, target)
			return
		case movedAway && h.mode == "handoff":
			if m.Type == wire.TypeSubscribe {
				// Subscriptions are never forwarded (the notification
				// stream would need relaying); the new shard already has
				// the map and serves them directly.
				n.redirect(c, m, owner, target, ring)
				return
			}
			if isMutation(m.Type) {
				n.forward(c, m, target)
				return
			}
			if m.Type == wire.TypeChanged {
				// The new shard notifies its subscribers; this node still
				// serves reads for the owner, so its cache must hear the
				// change too.
				n.applyChangedLocally(m)
				n.forward(c, m, target)
				return
			}
			// Reads stay local until the drain: the replay to the new
			// shard is still in flight and this replica is complete.
			continue
		default:
			n.redirect(c, m, owner, target, ring)
			return
		}
	}
	n.cfg.Inner.ServeWire(c, m)
}

// ServeWire implements wire.Handler.
func (n *Node) ServeWire(c *wire.ServerConn, m *wire.Message) { n.Handle(c, m) }

func (n *Node) redirect(c *wire.ServerConn, m *wire.Message, owner string, target wire.ShardInfo, ring *Ring) {
	if m.ID == 0 {
		return // one-way frame: nothing to redirect
	}
	mp := ring.Map()
	_ = c.ReplyWrongShard(m, wire.WrongShardPayload{
		Owner: owner, ShardID: target.ID, Addr: target.Addr,
		Members: target.Members, Map: &mp,
	})
}

// applyChangedLocally feeds a change notice into the local MDM (cache
// invalidation and local subscribers) without replying.
func (n *Node) applyChangedLocally(m *wire.Message) {
	if n.cfg.MDM == nil {
		return
	}
	var cn wire.ChangedNotice
	if err := wire.Unmarshal(m.Payload, &cn); err != nil {
		return
	}
	n.cfg.MDM.HandleChanged(&cn)
}

// forward relays a frame to another shard and relays the raw reply back,
// chasing one not-leader hop inside the target constellation. Forwarding
// exists only inside rebalance windows; steady-state cross-shard traffic
// is redirected so clients learn the map instead of taxing two shards per
// call.
func (n *Node) forward(c *wire.ServerConn, m *wire.Message, target wire.ShardInfo) {
	timeout := n.cfg.ForwardTimeout
	if timeout <= 0 {
		timeout = 5 * time.Second
	}
	ctx, cancel := wire.BudgetContext(context.Background(), m)
	defer cancel()
	if _, ok := ctx.Deadline(); !ok {
		var tcancel context.CancelFunc
		ctx, tcancel = context.WithTimeout(ctx, timeout)
		defer tcancel()
	}

	if m.ID == 0 {
		if conn, err := n.shardConn(target.Addr); err == nil {
			if err := conn.Send(ctx, m.Type, json.RawMessage(m.Payload)); err != nil {
				n.dropConn(target.Addr)
			}
		}
		return
	}

	var raw json.RawMessage
	var err error
	// During the coordinator's install sweep the destination may not hold
	// the new map yet and bounce the frame back with a redirect; the
	// window is one install round-trip wide, so retry briefly before
	// surfacing anything.
	for attempt := 0; attempt < 5; attempt++ {
		err = n.callShard(ctx, target.Addr, m.Type, json.RawMessage(m.Payload), &raw)
		var ws *wire.WrongShardError
		if err == nil || !errors.As(err, &ws) || ctx.Err() != nil {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if err != nil {
		var ws *wire.WrongShardError
		if errors.As(err, &ws) {
			// The target knows better (a newer map): propagate its verdict.
			_ = c.ReplyWrongShard(m, wire.WrongShardPayload{
				Owner: ws.Owner, ShardID: ws.ShardID, Addr: ws.Addr,
				Members: ws.Members, Map: ws.Map,
			})
			return
		}
		_ = c.ReplyError(m, err)
		return
	}
	_ = c.Reply(m, raw)
}

// callShard issues one call to a shard address, chasing a single
// not-leader redirect (the shard is a constellation and the address we
// hold is a follower's).
func (n *Node) callShard(ctx context.Context, addr, typ string, req, resp any) error {
	conn, err := n.shardConn(addr)
	if err != nil {
		return err
	}
	err = conn.Call(ctx, typ, req, resp)
	if err == nil {
		return nil
	}
	var nl *wire.NotLeaderError
	if errors.As(err, &nl) && nl.LeaderAddr != "" && nl.LeaderAddr != addr {
		lc, derr := n.shardConn(nl.LeaderAddr)
		if derr != nil {
			return err
		}
		return lc.Call(ctx, typ, req, resp)
	}
	var re *wire.RemoteError
	if !errors.As(err, &re) {
		// Transport-level failure: drop the pooled conn so the next
		// forward redials.
		n.dropConn(addr)
	}
	return err
}

func (n *Node) shardConn(addr string) (*wire.Client, error) {
	n.connMu.Lock()
	defer n.connMu.Unlock()
	if c, ok := n.conns[addr]; ok {
		return c, nil
	}
	c, err := wire.Dial(addr)
	if err != nil {
		return nil, err
	}
	n.conns[addr] = c
	return c, nil
}

func (n *Node) dropConn(addr string) {
	n.connMu.Lock()
	if c, ok := n.conns[addr]; ok {
		c.Close()
		delete(n.conns, addr)
	}
	n.connMu.Unlock()
}

// Close releases forwarding connections and stops any drain timer.
func (n *Node) Close() {
	n.mu.Lock()
	if n.handoff != nil && n.handoff.timer != nil {
		n.handoff.timer.Stop()
	}
	n.handoff = nil
	n.mu.Unlock()
	n.connMu.Lock()
	for addr, c := range n.conns {
		c.Close()
		delete(n.conns, addr)
	}
	n.connMu.Unlock()
}

// isMutation reports whether a message type mutates the directory.
func isMutation(typ string) bool {
	switch typ {
	case wire.TypeRegister, wire.TypeUnregister, wire.TypePutRule, wire.TypeDeleteRule:
		return true
	}
	return false
}

// ownersOfMessage extracts the profile owner(s) a frame is scoped to.
// Types with no owner scope (stats, traces, heartbeats, replication
// traffic) report scoped=false and are always served locally.
func ownersOfMessage(typ string, payload []byte) (owners []string, scoped bool) {
	switch typ {
	case wire.TypeResolve:
		var req wire.ResolveRequest
		if err := wire.Unmarshal(payload, &req); err != nil {
			return nil, false
		}
		if o, ok := resolveOwner(req.Owner, req.Path); ok {
			return []string{o}, true
		}
		return nil, true
	case wire.TypeBatchResolve:
		var req wire.BatchResolveRequest
		if err := wire.Unmarshal(payload, &req); err != nil {
			return nil, false
		}
		for _, r := range req.Requests {
			if o, ok := resolveOwner(r.Owner, r.Path); ok {
				owners = append(owners, o)
			}
		}
		return owners, true
	case wire.TypeRegister:
		var req wire.RegisterRequest
		if err := wire.Unmarshal(payload, &req); err != nil {
			return nil, false
		}
		if o, ok := pathOwner(req.Path); ok {
			return []string{o}, true
		}
		return nil, true
	case wire.TypeUnregister:
		var req wire.UnregisterRequest
		if err := wire.Unmarshal(payload, &req); err != nil {
			return nil, false
		}
		if o, ok := pathOwner(req.Path); ok {
			return []string{o}, true
		}
		return nil, true
	case wire.TypeSubscribe:
		var req wire.SubscribeRequest
		if err := wire.Unmarshal(payload, &req); err != nil {
			return nil, false
		}
		if o, ok := resolveOwner(req.Owner, req.Path); ok {
			return []string{o}, true
		}
		return nil, true
	case wire.TypePutRule:
		var req wire.PutRuleRequest
		if err := wire.Unmarshal(payload, &req); err != nil {
			return nil, false
		}
		if req.Owner != "" {
			return []string{req.Owner}, true
		}
		return nil, true
	case wire.TypeDeleteRule:
		var req wire.DeleteRuleRequest
		if err := wire.Unmarshal(payload, &req); err != nil {
			return nil, false
		}
		if req.Owner != "" {
			return []string{req.Owner}, true
		}
		return nil, true
	case wire.TypeChanged:
		var cn wire.ChangedNotice
		if err := wire.Unmarshal(payload, &cn); err != nil {
			return nil, false
		}
		if cn.User != "" {
			return []string{cn.User}, true
		}
		return nil, true
	}
	return nil, false
}

func resolveOwner(owner, path string) (string, bool) {
	if owner != "" {
		return owner, true
	}
	return pathOwner(path)
}

func pathOwner(path string) (string, bool) {
	p, err := xpath.Parse(path)
	if err != nil {
		return "", false
	}
	return coverage.UserOf(p)
}
