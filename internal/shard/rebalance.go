package shard

import (
	"context"
	"fmt"

	"gupster/internal/wire"
)

// RebalanceOptions parameterizes a live rebalance.
type RebalanceOptions struct {
	// ForwardMillis is the drain window length installed on losing shards;
	// 0 means the node-side default (500ms).
	ForwardMillis int64
	// DeadShards names source shards that are confirmed dead, keyed by
	// shard ID, each with the coordinator's last cached coverage snapshot.
	// A dead source is never dialed: its installs are skipped and its
	// moved owners are replayed from the snapshot instead of a live dump.
	// This is the auto-repair entry point — the rebalance machinery is
	// identical, only the source of truth for the dead slice changes.
	DeadShards map[string]wire.ShardCoverageResponse
	// Logf, when set, receives progress events.
	Logf func(format string, args ...any)
}

// Rebalance moves the directory from shard map old to shard map next
// without dropping in-flight resolves, in three phases:
//
//  1. Every shard in next that is not in old adopts the map outright (it
//     holds no owners yet, so there is nothing to hand off).
//  2. Every shard in old installs next in "handoff" mode: it keeps
//     serving reads for owners it just lost (its replica is still the
//     complete one) while forwarding their mutations to the new owner so
//     nothing lands in a slice about to be dropped. The coordinator then
//     replays each moved owner's coverage registrations and shield rules
//     source-to-destination over the destinations' normal durable
//     mutation path.
//  3. Every shard in old installs next in "drain" mode: everything for
//     moved owners forwards for the window, after which the source flips
//     to wrong-shard redirects and drops the moved state locally.
//
// The guarantee: a resolve for a moved owner succeeds at every moment —
// before the rebalance (old shard serves), during replay (old shard still
// serves reads), during drain (old shard forwards), and after (new shard
// serves, stragglers are redirected). Mutations are never lost: they
// either land on the source before handoff (and are replayed) or are
// forwarded to the destination from the moment the handoff installs.
func Rebalance(ctx context.Context, old, next wire.ShardMap, opts RebalanceOptions) error {
	oldRing, err := BuildRing(old)
	if err != nil {
		return fmt.Errorf("shard: rebalance: bad old map: %w", err)
	}
	nextRing, err := BuildRing(next)
	if err != nil {
		return fmt.Errorf("shard: rebalance: bad new map: %w", err)
	}
	if CompareMaps(next, old) <= 0 {
		return fmt.Errorf("shard: rebalance: new map v%d@e%d must supersede v%d@e%d", next.Version, next.Epoch, old.Version, old.Epoch)
	}
	logf := opts.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}

	conns := make(map[string]*wire.Client)
	defer func() {
		for _, c := range conns {
			c.Close()
		}
	}()
	conn := func(addr string) (*wire.Client, error) {
		if c, ok := conns[addr]; ok {
			return c, nil
		}
		c, err := wire.Dial(addr)
		if err != nil {
			return nil, err
		}
		conns[addr] = c
		return c, nil
	}
	install := func(addr, mode string) error {
		c, err := conn(addr)
		if err != nil {
			return err
		}
		var resp wire.ShardInstallResponse
		return c.Call(ctx, wire.TypeShardInstall, &wire.ShardInstallRequest{
			Map: next, Mode: mode, ForwardMillis: opts.ForwardMillis,
		}, &resp)
	}

	oldIDs := make(map[string]wire.ShardInfo, len(old.Shards))
	for _, s := range old.Shards {
		oldIDs[s.ID] = s
	}

	// Phase 1: joining shards adopt the map first, so from the instant a
	// source starts forwarding there is a destination that routes
	// correctly.
	for _, s := range next.Shards {
		if _, existed := oldIDs[s.ID]; existed {
			continue
		}
		if _, dead := opts.DeadShards[s.ID]; dead {
			continue // defensive: a dead shard cannot join
		}
		if err := install(s.Addr, ""); err != nil {
			return fmt.Errorf("shard: rebalance: install on joining shard %s: %w", s.ID, err)
		}
		logf("rebalance: shard %s adopted map v%d", s.ID, next.Version)
	}

	// Phase 2: sources enter the handoff window, then the moved owners'
	// state is replayed to its new homes. Dead sources get no install and
	// no live dump — the coordinator's cached snapshot stands in for the
	// corpse's slice.
	for _, s := range old.Shards {
		if _, dead := opts.DeadShards[s.ID]; dead {
			continue
		}
		if err := install(s.Addr, "handoff"); err != nil {
			return fmt.Errorf("shard: rebalance: handoff install on shard %s: %w", s.ID, err)
		}
	}
	moved := 0
	for _, src := range old.Shards {
		var dump wire.ShardCoverageResponse
		if snap, dead := opts.DeadShards[src.ID]; dead {
			dump = snap
		} else {
			c, err := conn(src.Addr)
			if err != nil {
				return fmt.Errorf("shard: rebalance: dial source %s: %w", src.ID, err)
			}
			if err := c.Call(ctx, wire.TypeShardCoverage, wire.Empty{}, &dump); err != nil {
				return fmt.Errorf("shard: rebalance: coverage dump from %s: %w", src.ID, err)
			}
		}
		for _, reg := range dump.Coverage {
			owner, ok := pathOwner(reg.Path)
			if !ok || oldRing.Owner(owner).ID != src.ID {
				continue // not this source's to move (or ownerless)
			}
			dest := nextRing.Owner(owner)
			if dest.ID == src.ID {
				continue // stays put
			}
			dc, err := conn(dest.Addr)
			if err != nil {
				return fmt.Errorf("shard: rebalance: dial destination %s: %w", dest.ID, err)
			}
			if err := dc.Call(ctx, wire.TypeRegister, &reg, nil); err != nil {
				return fmt.Errorf("shard: rebalance: replay registration %s→%s (%s): %w", src.ID, dest.ID, reg.Path, err)
			}
			moved++
		}
		for _, pr := range dump.Shields {
			if oldRing.Owner(pr.Owner).ID != src.ID {
				continue
			}
			dest := nextRing.Owner(pr.Owner)
			if dest.ID == src.ID {
				continue
			}
			dc, err := conn(dest.Addr)
			if err != nil {
				return fmt.Errorf("shard: rebalance: dial destination %s: %w", dest.ID, err)
			}
			if err := dc.Call(ctx, wire.TypePutRule, &pr, nil); err != nil {
				return fmt.Errorf("shard: rebalance: replay shield rule %s→%s (owner %s): %w", src.ID, dest.ID, pr.Owner, err)
			}
			moved++
		}
	}
	logf("rebalance: replayed %d moved records to map v%d homes", moved, next.Version)

	// Phase 3: sources drain — forward for the window, then flip to
	// redirects and drop the moved slice.
	for _, s := range old.Shards {
		if _, dead := opts.DeadShards[s.ID]; dead {
			continue
		}
		if err := install(s.Addr, "drain"); err != nil {
			return fmt.Errorf("shard: rebalance: drain install on shard %s: %w", s.ID, err)
		}
	}
	logf("rebalance: map v%d@e%d live on all shards", next.Version, next.Epoch)
	return nil
}
