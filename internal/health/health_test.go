package health

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"gupster/internal/core"
	"gupster/internal/coverage"
	"gupster/internal/policy"
	"gupster/internal/schema"
	"gupster/internal/shard"
	"gupster/internal/token"
	"gupster/internal/wire"
	"gupster/internal/xpath"
)

var testKey = []byte("health-integration-test-key")

// member is one constellation node: a full MDM behind shard routing, with
// a health agent wrapped in front of the wire dispatch.
type member struct {
	info  wire.ShardInfo
	mdm   *core.MDM
	node  *shard.Node
	agent *Agent
	ws    *wire.Server
	ln    net.Listener
}

// startConstellation brings up n full members. Agents are built but not
// started; tests tune Config via mut before Start.
func startConstellation(t *testing.T, n int, mut func(i int, cfg *Config)) []*member {
	t.Helper()
	ms := make([]*member, n)
	for i := range ms {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		ms[i] = &member{
			info: wire.ShardInfo{ID: fmt.Sprintf("s%d", i), Addr: ln.Addr().String()},
			ln:   ln,
		}
	}
	infos := make([]wire.ShardInfo, n)
	for i, m := range ms {
		infos[i] = m.info
	}
	for i, m := range ms {
		mdm := core.New(core.Config{Signer: token.NewSigner(testKey), Schema: schema.GUP()})
		srv := core.NewServer(mdm)
		node := shard.NewNode(shard.NodeConfig{
			ShardID: m.info.ID, MDM: mdm, Inner: wire.HandlerFunc(srv.Handle), Logf: t.Logf,
		})
		cfg := Config{
			Self:    m.info,
			Members: infos,
			Map: func() wire.ShardMap {
				if r := node.Ring(); r != nil {
					return r.Map()
				}
				return wire.ShardMap{}
			},
			SelfInstall:    node.Install,
			Interval:       25 * time.Millisecond,
			SuspectTimeout: 100 * time.Millisecond,
			Logf:           t.Logf,
		}
		if mut != nil {
			mut(i, &cfg)
		}
		agent := New(cfg)
		m.mdm, m.node, m.agent = mdm, node, agent
		m.ws = wire.ServeListener(m.ln, Wrap(agent, node))
		t.Cleanup(func() {
			agent.Close()
			m.ws.Close()
			node.Close()
			mdm.Close()
		})
	}
	return ms
}

func infosOf(ms []*member) []wire.ShardInfo {
	out := make([]wire.ShardInfo, len(ms))
	for i, m := range ms {
		out[i] = m.info
	}
	return out
}

// awaitState polls one agent's view of one member until it reaches want.
func awaitState(t *testing.T, a *Agent, id string, want State, within time.Duration) {
	t.Helper()
	deadline := time.Now().Add(within)
	for time.Now().Before(deadline) {
		if a.StateOf(id) == want {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("agent %s never saw %s as %s (still %s after %v)",
		a.cfg.Self.ID, id, want, a.StateOf(id), within)
}

// A killed member must walk alive → suspect → dead at every peer, and the
// confirmation must wait out the suspect timeout rather than firing on the
// first missed probe.
func TestDetectorConfirmsDeadMember(t *testing.T) {
	ms := startConstellation(t, 3, nil)
	for _, m := range ms {
		m.agent.Start()
	}
	awaitState(t, ms[0].agent, "s2", StateAlive, time.Second)

	ms[2].agent.Close()
	ms[2].ws.Close()
	killed := time.Now()
	awaitState(t, ms[0].agent, "s2", StateDead, 3*time.Second)
	awaitState(t, ms[1].agent, "s2", StateDead, 3*time.Second)
	if elapsed := time.Since(killed); elapsed < ms[0].agent.cfg.SuspectTimeout {
		t.Fatalf("s2 confirmed dead after %v, before the %v suspect timeout",
			elapsed, ms[0].agent.cfg.SuspectTimeout)
	}
	// The survivors keep seeing each other through it all.
	if got := ms[0].agent.StateOf("s1"); got != StateAlive {
		t.Fatalf("s0 sees live peer s1 as %s", got)
	}
	// Membership reports the view for operators.
	view := ms[0].agent.Membership()
	states := map[string]string{}
	for _, mh := range view.Members {
		states[mh.ID] = mh.State
	}
	if states["s2"] != "dead" || states["s1"] != "alive" || states["s0"] != "alive" {
		t.Fatalf("membership view %v, want s2 dead and the rest alive", states)
	}
}

// blockSet is a Dial hook that refuses a mutable set of addresses —
// the unit-test stand-in for a partial partition.
type blockSet struct {
	mu      sync.Mutex
	blocked map[string]bool
}

func (b *blockSet) dial(addr string) (*wire.Client, error) {
	b.mu.Lock()
	bad := b.blocked[addr]
	b.mu.Unlock()
	if bad {
		return nil, errors.New("blockSet: partitioned")
	}
	return wire.Dial(addr)
}

func (b *blockSet) set(addr string, on bool) {
	b.mu.Lock()
	b.blocked[addr] = on
	b.mu.Unlock()
}

// A partial partition — s0 cannot reach s1 directly, but s2 can — must
// NOT produce a false positive: the indirect ping-req through s2
// witnesses s1's round trip and keeps it alive at s0.
func TestPartialPartitionRefutesViaRelay(t *testing.T) {
	block := &blockSet{blocked: map[string]bool{}}
	ms := startConstellation(t, 3, func(i int, cfg *Config) {
		if i == 0 {
			cfg.Dial = block.dial
		}
	})
	block.set(ms[1].info.Addr, true) // s0 ↛ s1 from the first probe on
	for _, m := range ms {
		m.agent.Start()
	}

	// Ten suspect timeouts of settling: plenty of rounds to misfire in.
	time.Sleep(time.Second)
	if got := ms[0].agent.StateOf("s1"); got != StateAlive {
		t.Fatalf("s0 sees s1 as %s behind a partial partition with a live relay, want alive", got)
	}
	if got := ms[1].agent.StateOf("s0"); got != StateAlive {
		t.Fatalf("s1 sees s0 as %s, want alive (that direction is unimpaired)", got)
	}
}

// A transient full partition must resolve through refutation: the cut-off
// peers are confirmed dead, and the first post-heal ack pulls them
// straight back to alive.
func TestRefutationAfterPartitionHeals(t *testing.T) {
	block := &blockSet{blocked: map[string]bool{}}
	ms := startConstellation(t, 3, func(i int, cfg *Config) {
		if i == 0 {
			cfg.Dial = block.dial
		}
	})
	for _, m := range ms {
		m.agent.Start()
	}
	awaitState(t, ms[0].agent, "s1", StateAlive, time.Second)

	// Cut s0 off from everyone; pooled connections must go too, or the
	// hook never sees another dial.
	block.set(ms[1].info.Addr, true)
	block.set(ms[2].info.Addr, true)
	ms[0].agent.dropConn(ms[1].info.Addr)
	ms[0].agent.dropConn(ms[2].info.Addr)
	awaitState(t, ms[0].agent, "s1", StateDead, 3*time.Second)
	awaitState(t, ms[0].agent, "s2", StateDead, 3*time.Second)

	block.set(ms[1].info.Addr, false)
	block.set(ms[2].info.Addr, false)
	awaitState(t, ms[0].agent, "s1", StateAlive, 3*time.Second)
	awaitState(t, ms[0].agent, "s2", StateAlive, 3*time.Second)
}

// A node whose entire outbound path is broken sees the whole map dead —
// and must NOT repair: its alive view (itself) is a minority of the map,
// and the majority gate keeps the partitioned node from seizing the
// namespace. Meanwhile the healthy majority, whose probes still round-trip
// through the broken node's intact inbound path, keeps it alive and does
// not repair either.
func TestMinorityViewDoesNotRepair(t *testing.T) {
	repairs := make(chan RepairEvent, 8)
	dead := &blockSet{blocked: map[string]bool{}}
	ms := startConstellation(t, 3, func(i int, cfg *Config) {
		cfg.AutoRepair = true
		cfg.OnRepair = func(ev RepairEvent) { repairs <- ev }
		if i == 1 {
			cfg.Dial = dead.dial // s1's outbound is fully broken…
		}
	})
	dead.set(ms[0].info.Addr, true)
	dead.set(ms[2].info.Addr, true)
	m := wire.ShardMap{Version: 1, Shards: infosOf(ms)}
	for _, mm := range ms {
		if _, err := mm.node.Install(&wire.ShardInstallRequest{Map: m}); err != nil {
			t.Fatal(err)
		}
	}
	for _, mm := range ms {
		mm.agent.Start()
	}

	// …so s1 confirms everyone dead, while staying alive at the majority:
	// its server still answers the probes it can hear.
	awaitState(t, ms[1].agent, "s0", StateDead, 3*time.Second)
	awaitState(t, ms[1].agent, "s2", StateDead, 3*time.Second)
	time.Sleep(500 * time.Millisecond) // many armed ticks on all three
	select {
	case ev := <-repairs:
		t.Fatalf("repair fired to v%d@e%d (dead %v) — a minority view repaired, or a false positive killed a live node",
			ev.Version, ev.Epoch, ev.Dead)
	default:
	}
	if got := ms[0].agent.StateOf("s1"); got != StateAlive {
		t.Fatalf("majority sees the inbound-intact node as %s, want alive", got)
	}
	if got := ms[1].node.Ring().Map(); got.Epoch != 0 || got.Version != 1 {
		t.Fatalf("minority node moved the map to v%d@e%d", got.Version, got.Epoch)
	}
}

// The tentpole end-to-end: kill one shard of three with a spare standing
// by. The constellation must confirm the death, promote the spare into a
// fenced (epoch-bumped) map, replay the dead shard's owners from the
// coverage snapshot, and leave every owner resolvable — including through
// a client still holding the pre-repair map.
func TestAutoRepairPromotesSpare(t *testing.T) {
	repairs := make(chan RepairEvent, 8)
	ms := startConstellation(t, 4, func(i int, cfg *Config) {
		cfg.AutoRepair = true
		cfg.ForwardMillis = 50
		cfg.OnRepair = func(ev RepairEvent) { repairs <- ev }
	})
	v1 := wire.ShardMap{Version: 1, Shards: infosOf(ms[:3])} // s3 is the spare
	for _, mm := range ms[:3] {
		if _, err := mm.node.Install(&wire.ShardInstallRequest{Map: v1}); err != nil {
			t.Fatal(err)
		}
	}

	// Seed owners at their home shards before any gossip starts.
	ring, err := shard.BuildRing(v1)
	if err != nil {
		t.Fatal(err)
	}
	byID := map[string]*member{}
	for _, mm := range ms {
		byID[mm.info.ID] = mm
	}
	owners := map[string][]string{}
	for i := 0; i < 48; i++ {
		owner := fmt.Sprintf("user-%d", i)
		home := ring.Owner(owner).ID
		owners[home] = append(owners[home], owner)
		conn, err := wire.Dial(byID[home].info.Addr)
		if err != nil {
			t.Fatal(err)
		}
		ctx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
		err = conn.Call(ctx, wire.TypeRegister, &wire.RegisterRequest{
			Store:   "store-" + owner,
			Address: "127.0.0.1:19999",
			Path:    fmt.Sprintf("/user[@id='%s']/presence", owner),
		}, nil)
		cancel()
		conn.Close()
		if err != nil {
			t.Fatalf("seed register %s at %s: %v", owner, home, err)
		}
	}
	if len(owners["s1"]) == 0 {
		t.Fatal("owner sample has no s1-homed owner")
	}

	for _, mm := range ms {
		mm.agent.Start()
	}
	// Wait for the coordinator (s0, first in map order) to cache s1's
	// coverage snapshot — the repair replays the dead shard from it.
	deadline := time.Now().Add(3 * time.Second)
	for {
		ms[0].agent.mu.Lock()
		haveSnap := ms[0].agent.members["s1"].snapshot != nil
		ms[0].agent.mu.Unlock()
		if haveSnap {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("coordinator never cached s1's coverage snapshot")
		}
		time.Sleep(10 * time.Millisecond)
	}

	ms[1].agent.Close()
	ms[1].ws.Close()

	var ev RepairEvent
	select {
	case ev = <-repairs:
	case <-time.After(10 * time.Second):
		t.Fatal("no repair within 10s of the shard death")
	}
	if len(ev.Dead) != 1 || ev.Dead[0] != "s1" {
		t.Fatalf("repair removed %v, want [s1]", ev.Dead)
	}
	if len(ev.Promoted) != 1 || ev.Promoted[0] != "s3" {
		t.Fatalf("repair promoted %v, want the spare [s3]", ev.Promoted)
	}
	if ev.Epoch != 1 || ev.Version != 2 {
		t.Fatalf("repair installed v%d@e%d, want v2@e1", ev.Version, ev.Epoch)
	}
	got := ms[0].node.Ring().Map()
	if got.Epoch != 1 {
		t.Fatalf("coordinator holds v%d@e%d after repair", got.Version, got.Epoch)
	}
	for _, s := range got.Shards {
		if s.ID == "s1" {
			t.Fatal("repaired map still names the dead shard")
		}
	}

	// A client still on the pre-repair map reaches every owner, including
	// the dead shard's, by refreshing off the survivors mid-call.
	cli, err := shard.DialMap(v1)
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	for home, list := range owners {
		for _, owner := range list {
			var resp wire.ResolveResponse
			err := cli.Call(ctx, owner, wire.TypeResolve, &wire.ResolveRequest{
				Path:    fmt.Sprintf("/user[@id='%s']/presence", owner),
				Context: policy.Context{Requester: owner},
				Verb:    token.VerbFetch,
			}, &resp)
			if err != nil {
				t.Fatalf("post-repair resolve for %s (was homed on %s): %v", owner, home, err)
			}
			if len(resp.Alternatives) == 0 {
				t.Fatalf("post-repair resolve for %s (was homed on %s) lost the registration", owner, home)
			}
		}
	}
}

// A newer map learned through anti-entropy must fence only a node the
// map EVICTED. A member the map retains adopts it outright instead: the
// repair rebalance still owes its moved owners a dump-and-replay, and
// fencing them away first would destroy the only copy of their coverage
// before the replay could read it.
func TestAntiEntropyFencesOnlyEvictedNodes(t *testing.T) {
	ms := startConstellation(t, 3, nil)
	v1 := wire.ShardMap{Version: 1, Shards: infosOf(ms[:2])} // s2 is the spare
	for _, mm := range ms {
		if _, err := mm.node.Install(&wire.ShardInstallRequest{Map: v1}); err != nil {
			t.Fatal(err)
		}
	}
	// v2 is a repair-shaped successor: epoch-bumped, s1 evicted, the
	// spare s2 promoted in its place.
	v2 := wire.ShardMap{Version: 2, Epoch: 1, Shards: []wire.ShardInfo{ms[0].info, ms[2].info}}
	ring1, err := shard.BuildRing(v1)
	if err != nil {
		t.Fatal(err)
	}
	ring2, err := shard.BuildRing(v2)
	if err != nil {
		t.Fatal(err)
	}
	// movedOwner lives on the survivor s0 under v1 but belongs to s2
	// under v2 — exactly the coverage a premature fence would destroy.
	// evictedOwner is part of s1's slice, which s1 must drop on fencing.
	var movedOwner, evictedOwner string
	for i := 0; i < 4096 && (movedOwner == "" || evictedOwner == ""); i++ {
		o := fmt.Sprintf("user-%d", i)
		if movedOwner == "" && ring1.Owner(o).ID == "s0" && ring2.Owner(o).ID == "s2" {
			movedOwner = o
		}
		if evictedOwner == "" && ring1.Owner(o).ID == "s1" {
			evictedOwner = o
		}
	}
	if movedOwner == "" || evictedOwner == "" {
		t.Fatalf("owner search found moved=%q evicted=%q", movedOwner, evictedOwner)
	}
	register := func(mm *member, owner string) string {
		p := fmt.Sprintf("/user[@id='%s']/presence", owner)
		if err := mm.mdm.Register(coverage.StoreID("store-"+owner), "127.0.0.1:19999", xpath.MustParse(p)); err != nil {
			t.Fatal(err)
		}
		return p
	}
	register(ms[0], movedOwner)
	register(ms[1], evictedOwner)

	// s2 (newly promoted, in the map) adopts v2; it is the anti-entropy
	// source the stale members fetch from.
	if _, err := ms[2].node.Install(&wire.ShardInstallRequest{Map: v2}); err != nil {
		t.Fatal(err)
	}
	awaitMap := func(mm *member) {
		t.Helper()
		deadline := time.Now().Add(3 * time.Second)
		for {
			if m := mm.node.Ring().Map(); m.Epoch == v2.Epoch && m.Version == v2.Version {
				return
			}
			if time.Now().After(deadline) {
				m := mm.node.Ring().Map()
				t.Fatalf("%s never adopted v%d@e%d (still v%d@e%d)", mm.info.ID, v2.Version, v2.Epoch, m.Version, m.Epoch)
			}
			time.Sleep(5 * time.Millisecond)
		}
	}
	holds := func(mm *member, owner string) bool {
		for _, reg := range mm.mdm.CoverageSnapshot() {
			if o, ok := coverage.UserOf(xpath.MustParse(reg.Path)); ok && o == owner {
				return true
			}
		}
		return false
	}

	// The survivor s0 learns v2: adopt, do not fence. Its moved owner's
	// coverage must survive for the rebalance to replay.
	ms[0].agent.learnMap(v2.Epoch, v2.Version, ms[2].info.Addr)
	awaitMap(ms[0])
	if !holds(ms[0], movedOwner) {
		t.Fatalf("survivor s0 dropped %s's coverage on anti-entropy adopt — fenced a member the map retains", movedOwner)
	}

	// The evicted s1 learns v2: it must fence, dropping the slice the
	// repair moved away — the split-brain stopper.
	ms[1].agent.learnMap(v2.Epoch, v2.Version, ms[2].info.Addr)
	awaitMap(ms[1])
	deadline := time.Now().Add(3 * time.Second)
	for holds(ms[1], evictedOwner) {
		if time.Now().After(deadline) {
			t.Fatalf("evicted s1 still holds %s's coverage after fencing to v%d@e%d", evictedOwner, v2.Version, v2.Epoch)
		}
		time.Sleep(5 * time.Millisecond)
	}
}
