// Package health is the shard constellation's self-awareness layer: a
// gossip-style failure detector (SWIM-shaped direct ping plus indirect
// ping-req, with a suspicion state machine) running between shard nodes,
// and an epoch-fenced repair planner that turns a confirmed shard death
// into an automatic three-phase rebalance onto a spare or across the
// survivors.
//
// Two design points carry the correctness weight:
//
//   - Only a delivered ack refutes suspicion. Receiving a probe proves the
//     peer's inbound path works, but a node that can hear and not be heard
//     is unavailable to every client — the request→reply round trip is the
//     availability-relevant path, and it is exactly what a probe measures.
//
//   - Every repair bumps the shard map's epoch, and every map carrier
//     (node installs, router adoption, client adoption) orders maps by
//     (epoch, version). A partitioned minority that still believes in the
//     old map is fenced by ordinary install rejection instead of
//     split-braining the namespace, and learns the winning map through the
//     (epoch, version) pair piggybacked on every ping and ack.
package health

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"time"

	"gupster/internal/shard"
	"gupster/internal/wire"
)

// State is a member's position in the suspicion state machine.
type State int

const (
	StateAlive State = iota
	StateSuspect
	StateDead
)

func (s State) String() string {
	switch s {
	case StateAlive:
		return "alive"
	case StateSuspect:
		return "suspect"
	case StateDead:
		return "dead"
	}
	return fmt.Sprintf("state(%d)", int(s))
}

// RepairEvent describes one completed auto-repair.
type RepairEvent struct {
	// Epoch/Version are the installed map's new coordinates.
	Epoch   uint64
	Version uint64
	// Dead lists the shard IDs the repair removed; Promoted the spares it
	// pulled into the map (empty on a survivor re-partition).
	Dead     []string
	Promoted []string
}

// Config parameterizes an Agent.
type Config struct {
	// Self is this node's identity and dialable address.
	Self wire.ShardInfo
	// Members is the full constellation — every node that gossips,
	// including Self and spares. Spares are derived, not declared: a member
	// the current map does not name is promotion-eligible.
	Members []wire.ShardInfo
	// Map returns the node's currently installed shard map (zero value
	// when none is installed yet).
	Map func() wire.ShardMap
	// SelfInstall installs a map on the local node directly, bypassing the
	// wire. The agent uses it for anti-entropy self-fencing: a node behind
	// an asymmetric partition can learn a newer epoch (its outbound path
	// works) but could never complete a round trip through its own
	// published address.
	SelfInstall func(*wire.ShardInstallRequest) (*wire.ShardInstallResponse, error)
	// Interval is the probe period; every tick probes every member. 0
	// means 250ms.
	Interval time.Duration
	// PingTimeout bounds one direct or relayed probe. 0 means Interval.
	PingTimeout time.Duration
	// SuspectTimeout is how long a member stays suspect before it is
	// confirmed dead. 0 means 4×Interval.
	SuspectTimeout time.Duration
	// IndirectProbes is how many alive members are asked to ping-req a
	// directly unreachable target before it is counted missed. 0 means 2.
	IndirectProbes int
	// AutoRepair arms the repair planner. Off, the agent only observes.
	AutoRepair bool
	// ForwardMillis is the drain window passed to repair rebalances.
	ForwardMillis int64
	// OnRepair, when set, is called after each completed repair.
	OnRepair func(RepairEvent)
	// Dial overrides the connection factory (tests simulate partial
	// partitions with it). Nil means wire.Dial.
	Dial func(addr string) (*wire.Client, error)
	// Logf, when set, receives detector and repair events.
	Logf func(format string, args ...any)
}

// memberView is the detector's bookkeeping for one peer.
type memberView struct {
	info     wire.ShardInfo
	state    State
	since    time.Time
	probing  bool // a probe for this member is in flight this tick
	snapshot *wire.ShardCoverageResponse
}

// Agent runs the failure detector and (when armed) the repair planner for
// one shard node.
type Agent struct {
	cfg Config

	mu       sync.Mutex
	members  map[string]*memberView // by ID, Self excluded
	conns    map[string]*wire.Client
	fetching bool // anti-entropy map fetch in flight
	repair   bool // repair in flight
	closed   bool

	stop chan struct{}
	wg   sync.WaitGroup
}

// New builds an agent; Start arms it.
func New(cfg Config) *Agent {
	if cfg.Interval <= 0 {
		cfg.Interval = 250 * time.Millisecond
	}
	if cfg.PingTimeout <= 0 {
		cfg.PingTimeout = cfg.Interval
	}
	if cfg.SuspectTimeout <= 0 {
		cfg.SuspectTimeout = 4 * cfg.Interval
	}
	if cfg.IndirectProbes <= 0 {
		cfg.IndirectProbes = 2
	}
	if cfg.Dial == nil {
		cfg.Dial = wire.Dial
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	a := &Agent{
		cfg:     cfg,
		members: make(map[string]*memberView),
		conns:   make(map[string]*wire.Client),
		stop:    make(chan struct{}),
	}
	now := time.Now()
	for _, m := range cfg.Members {
		if m.ID == cfg.Self.ID {
			continue
		}
		a.members[m.ID] = &memberView{info: m, state: StateAlive, since: now}
	}
	return a
}

// Start launches the gossip and snapshot loops.
func (a *Agent) Start() {
	a.wg.Add(2)
	go a.gossipLoop()
	go a.snapshotLoop()
}

// Close stops the loops and releases connections.
func (a *Agent) Close() {
	a.mu.Lock()
	if a.closed {
		a.mu.Unlock()
		return
	}
	a.closed = true
	a.mu.Unlock()
	close(a.stop)
	a.wg.Wait()
	a.mu.Lock()
	for addr, c := range a.conns {
		c.Close()
		delete(a.conns, addr)
	}
	a.mu.Unlock()
}

// StateOf reports the agent's view of one member (Self is always alive).
func (a *Agent) StateOf(id string) State {
	if id == a.cfg.Self.ID {
		return StateAlive
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if v, ok := a.members[id]; ok {
		return v.state
	}
	return StateDead
}

// Membership dumps the agent's view for TypeMembership / gupctl.
func (a *Agent) Membership() wire.MembershipResponse {
	m := a.currentMap()
	inMap := make(map[string]bool, len(m.Shards))
	for _, s := range m.Shards {
		inMap[s.ID] = true
	}
	resp := wire.MembershipResponse{
		Self:       a.cfg.Self.ID,
		MapEpoch:   m.Epoch,
		MapVersion: m.Version,
		AutoRepair: a.cfg.AutoRepair,
	}
	now := time.Now()
	resp.Members = append(resp.Members, wire.MemberHealth{
		ID: a.cfg.Self.ID, Addr: a.cfg.Self.Addr, State: StateAlive.String(),
		Spare: len(m.Shards) > 0 && !inMap[a.cfg.Self.ID],
	})
	a.mu.Lock()
	ids := make([]string, 0, len(a.members))
	for id := range a.members {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		v := a.members[id]
		resp.Members = append(resp.Members, wire.MemberHealth{
			ID: id, Addr: v.info.Addr, State: v.state.String(),
			SinceMillis: now.Sub(v.since).Milliseconds(),
			Spare:       len(m.Shards) > 0 && !inMap[id],
		})
	}
	a.mu.Unlock()
	return resp
}

func (a *Agent) currentMap() wire.ShardMap {
	if a.cfg.Map == nil {
		return wire.ShardMap{}
	}
	return a.cfg.Map()
}

func (a *Agent) gossipLoop() {
	defer a.wg.Done()
	t := time.NewTicker(a.cfg.Interval)
	defer t.Stop()
	for {
		select {
		case <-a.stop:
			return
		case <-t.C:
		}
		a.tick()
	}
}

// tick probes every member not already being probed, then (when armed)
// considers repair. The constellation is small (single-digit shards), so
// probing everyone each interval costs a handful of tiny frames and buys
// detection latency independent of gossip fan-out luck.
func (a *Agent) tick() {
	a.mu.Lock()
	targets := make([]*memberView, 0, len(a.members))
	for _, v := range a.members {
		if v.probing {
			continue
		}
		v.probing = true
		targets = append(targets, v)
	}
	a.mu.Unlock()
	var wg sync.WaitGroup
	for _, v := range targets {
		wg.Add(1)
		go func(v *memberView) {
			defer wg.Done()
			a.probe(v.info)
			a.mu.Lock()
			v.probing = false
			a.mu.Unlock()
		}(v)
	}
	wg.Wait()
	if a.cfg.AutoRepair {
		a.maybeRepair()
	}
}

// probe runs one failure-detection round for a member: a direct ping,
// then — on failure — ping-reqs through up to IndirectProbes other alive
// members. Any delivered ack refutes; a fully failed round is a miss.
func (a *Agent) probe(target wire.ShardInfo) {
	if ack, err := a.ping(target.Addr); err == nil {
		a.observeAck(target.ID, ack)
		return
	}
	for _, relay := range a.relaysFor(target.ID) {
		if ack, err := a.pingReq(relay, target); err == nil {
			a.observeAck(target.ID, ack)
			return
		}
	}
	a.observeMiss(target.ID)
}

// relaysFor picks up to IndirectProbes alive members other than the
// target, in sorted ID order so runs are deterministic.
func (a *Agent) relaysFor(targetID string) []wire.ShardInfo {
	a.mu.Lock()
	defer a.mu.Unlock()
	ids := make([]string, 0, len(a.members))
	for id, v := range a.members {
		if id != targetID && v.state == StateAlive {
			ids = append(ids, id)
		}
	}
	sort.Strings(ids)
	if len(ids) > a.cfg.IndirectProbes {
		ids = ids[:a.cfg.IndirectProbes]
	}
	out := make([]wire.ShardInfo, 0, len(ids))
	for _, id := range ids {
		out = append(out, a.members[id].info)
	}
	return out
}

// ping sends one direct probe and returns the target's ack.
func (a *Agent) ping(addr string) (*wire.GossipAck, error) {
	m := a.currentMap()
	req := wire.GossipPing{
		FromID: a.cfg.Self.ID, FromAddr: a.cfg.Self.Addr,
		MapEpoch: m.Epoch, MapVersion: m.Version,
	}
	ctx, cancel := context.WithTimeout(context.Background(), a.cfg.PingTimeout)
	defer cancel()
	var ack wire.GossipAck
	if err := a.call(ctx, addr, wire.TypeGossipPing, &req, &ack); err != nil {
		return nil, err
	}
	return &ack, nil
}

// pingReq asks relay to probe target on our behalf; the reply is the
// target's own ack, relayed.
func (a *Agent) pingReq(relay, target wire.ShardInfo) (*wire.GossipAck, error) {
	req := wire.GossipPingReq{
		FromID: a.cfg.Self.ID, TargetID: target.ID, TargetAddr: target.Addr,
		TimeoutMillis: a.cfg.PingTimeout.Milliseconds(),
	}
	// The relay needs its own probe window on top of ours.
	ctx, cancel := context.WithTimeout(context.Background(), 2*a.cfg.PingTimeout)
	defer cancel()
	var ack wire.GossipAck
	if err := a.call(ctx, relay.Addr, wire.TypeGossipPingReq, &req, &ack); err != nil {
		return nil, err
	}
	return &ack, nil
}

// call issues one gossip call on the pooled connection for addr, dropping
// the connection on transport failure so the next tick redials.
func (a *Agent) call(ctx context.Context, addr, msgType string, req, resp any) error {
	a.mu.Lock()
	if a.closed {
		a.mu.Unlock()
		return fmt.Errorf("health: agent closed")
	}
	conn, ok := a.conns[addr]
	a.mu.Unlock()
	if !ok {
		c, err := a.cfg.Dial(addr)
		if err != nil {
			return err
		}
		a.mu.Lock()
		if a.closed {
			a.mu.Unlock()
			c.Close()
			return fmt.Errorf("health: agent closed")
		}
		if existing, dup := a.conns[addr]; dup {
			a.mu.Unlock()
			c.Close()
			conn = existing
		} else {
			a.conns[addr] = c
			a.mu.Unlock()
			conn = c
		}
	}
	err := conn.Call(ctx, msgType, req, resp)
	if err != nil {
		// Gossip frames are tiny and answered from memory: any failure —
		// including a timeout, which on this traffic means the reply path
		// is gone — warrants a fresh dial next round.
		a.dropConn(addr)
	}
	return err
}

func (a *Agent) dropConn(addr string) {
	a.mu.Lock()
	if c, ok := a.conns[addr]; ok {
		c.Close()
		delete(a.conns, addr)
	}
	a.mu.Unlock()
}

// observeAck refutes any suspicion of the member and learns the map
// coordinates the ack piggybacked.
func (a *Agent) observeAck(id string, ack *wire.GossipAck) {
	a.mu.Lock()
	if v, ok := a.members[id]; ok && v.state != StateAlive {
		a.cfg.Logf("health %s: member %s refuted %s → alive", a.cfg.Self.ID, id, v.state)
		v.state = StateAlive
		v.since = time.Now()
	}
	var addr string
	if v, ok := a.members[id]; ok {
		addr = v.info.Addr
	}
	a.mu.Unlock()
	a.learnMap(ack.MapEpoch, ack.MapVersion, addr)
}

// observeMiss advances the member one step down the suspicion machine.
func (a *Agent) observeMiss(id string) {
	a.mu.Lock()
	defer a.mu.Unlock()
	v, ok := a.members[id]
	if !ok {
		return
	}
	now := time.Now()
	switch v.state {
	case StateAlive:
		v.state = StateSuspect
		v.since = now
		a.cfg.Logf("health %s: member %s alive → suspect", a.cfg.Self.ID, id)
	case StateSuspect:
		if now.Sub(v.since) >= a.cfg.SuspectTimeout {
			v.state = StateDead
			v.since = now
			a.cfg.Logf("health %s: member %s suspect → dead (confirm timeout)", a.cfg.Self.ID, id)
		}
	}
}

// learnMap triggers anti-entropy when a peer advertises newer map
// coordinates than ours: fetch its map and self-fence onto it. fromAddr
// is where to fetch; empty means unknown (skip).
func (a *Agent) learnMap(epoch, version uint64, fromAddr string) {
	if fromAddr == "" || a.cfg.SelfInstall == nil {
		return
	}
	cur := a.currentMap()
	if shard.CompareMaps(wire.ShardMap{Epoch: epoch, Version: version}, cur) <= 0 {
		return
	}
	a.mu.Lock()
	if a.fetching || a.closed {
		a.mu.Unlock()
		return
	}
	a.fetching = true
	a.mu.Unlock()
	a.wg.Add(1)
	go func() {
		defer a.wg.Done()
		defer func() {
			a.mu.Lock()
			a.fetching = false
			a.mu.Unlock()
		}()
		ctx, cancel := context.WithTimeout(context.Background(), 2*a.cfg.PingTimeout)
		defer cancel()
		var m wire.ShardMap
		if err := a.call(ctx, fromAddr, wire.TypeShardMap, wire.Empty{}, &m); err != nil {
			return
		}
		if shard.CompareMaps(m, a.currentMap()) <= 0 {
			return
		}
		// Fence mode — adopt and immediately drop every owner the new map
		// assigns elsewhere — is only for a node the new map EVICTED: it
		// may be a partitioned minority still serving a slice the majority
		// repaired away. A member the new map retains adopts outright
		// instead; its moved owners are the repair rebalance's to dump,
		// replay and drain, and fencing them here would destroy coverage
		// before the rebalance could copy it out. The install bypasses the
		// wire — a node behind an asymmetric partition could never answer
		// itself.
		mode := "fence"
		for _, s := range m.Shards {
			if s.ID == a.cfg.Self.ID {
				mode = ""
				break
			}
		}
		if _, err := a.cfg.SelfInstall(&wire.ShardInstallRequest{Map: m, Mode: mode}); err != nil {
			a.cfg.Logf("health %s: self-install of v%d@e%d refused: %v", a.cfg.Self.ID, m.Version, m.Epoch, err)
			return
		}
		if mode == "fence" {
			a.cfg.Logf("health %s: self-fenced to map v%d@e%d", a.cfg.Self.ID, m.Version, m.Epoch)
		} else {
			a.cfg.Logf("health %s: adopted map v%d@e%d via anti-entropy", a.cfg.Self.ID, m.Version, m.Epoch)
		}
	}()
}

// HandlePing answers a direct probe: ack with our map coordinates, and
// learn the sender's. Receiving a ping deliberately does NOT mark the
// sender alive — its inbound path provably works, but clients need its
// replies, and only its acks witness those.
func (a *Agent) HandlePing(c *wire.ServerConn, m *wire.Message) {
	var req wire.GossipPing
	if err := wire.Unmarshal(m.Payload, &req); err != nil {
		_ = c.ReplyError(m, err)
		return
	}
	cur := a.currentMap()
	_ = c.Reply(m, wire.GossipAck{FromID: a.cfg.Self.ID, MapEpoch: cur.Epoch, MapVersion: cur.Version})
	a.learnMap(req.MapEpoch, req.MapVersion, req.FromAddr)
}

// HandlePingReq probes the named target on the requester's behalf and
// relays the target's ack. The probe runs on its own goroutine: handlers
// are sequential per connection and a relay blocking for a ping timeout
// must not stall the requester's other gossip frames.
func (a *Agent) HandlePingReq(c *wire.ServerConn, m *wire.Message) {
	var req wire.GossipPingReq
	if err := wire.Unmarshal(m.Payload, &req); err != nil {
		_ = c.ReplyError(m, err)
		return
	}
	a.mu.Lock()
	if a.closed {
		a.mu.Unlock()
		_ = c.ReplyError(m, fmt.Errorf("health: agent closed"))
		return
	}
	a.wg.Add(1)
	a.mu.Unlock()
	go func() {
		defer a.wg.Done()
		timeout := time.Duration(req.TimeoutMillis) * time.Millisecond
		if timeout <= 0 {
			timeout = a.cfg.PingTimeout
		}
		cur := a.currentMap()
		ping := wire.GossipPing{
			FromID: a.cfg.Self.ID, FromAddr: a.cfg.Self.Addr,
			MapEpoch: cur.Epoch, MapVersion: cur.Version,
		}
		ctx, cancel := context.WithTimeout(context.Background(), timeout)
		defer cancel()
		var ack wire.GossipAck
		if err := a.call(ctx, req.TargetAddr, wire.TypeGossipPing, &ping, &ack); err != nil {
			_ = c.ReplyError(m, fmt.Errorf("health: indirect probe of %s failed: %w", req.TargetID, err))
			return
		}
		// The relay witnessed the round trip itself: free refutation.
		a.observeAck(req.TargetID, &ack)
		_ = c.Reply(m, ack)
	}()
}

// HandleMembership answers the operator-facing view dump.
func (a *Agent) HandleMembership(c *wire.ServerConn, m *wire.Message) {
	_ = c.Reply(m, a.Membership())
}

// Wrap composes the agent's gossip handling in front of a shard node's
// dispatch: gossip frames are intercepted, everything else falls through,
// and internal/shard stays ignorant of the health layer.
func Wrap(a *Agent, inner wire.Handler) wire.Handler {
	return wire.HandlerFunc(func(c *wire.ServerConn, m *wire.Message) {
		switch m.Type {
		case wire.TypeGossipPing:
			a.HandlePing(c, m)
			return
		case wire.TypeGossipPingReq:
			a.HandlePingReq(c, m)
			return
		case wire.TypeMembership:
			a.HandleMembership(c, m)
			return
		}
		inner.ServeWire(c, m)
	})
}

// snapshotLoop caches coverage snapshots of alive in-map members on a slow
// cadence, so a repair can replay a dead shard's slice without its
// cooperation. The snapshot is as fresh as the last pull; E23-style
// resolve storms mutate nothing, so the replay there is exact, and under
// mutation load the staleness window is one snapshot interval.
func (a *Agent) snapshotLoop() {
	defer a.wg.Done()
	t := time.NewTicker(5 * a.cfg.Interval)
	defer t.Stop()
	for {
		select {
		case <-a.stop:
			return
		case <-t.C:
		}
		cur := a.currentMap()
		for _, s := range cur.Shards {
			if s.ID == a.cfg.Self.ID || a.StateOf(s.ID) != StateAlive {
				continue
			}
			ctx, cancel := context.WithTimeout(context.Background(), 4*a.cfg.PingTimeout)
			var snap wire.ShardCoverageResponse
			err := a.call(ctx, s.Addr, wire.TypeShardCoverage, wire.Empty{}, &snap)
			cancel()
			if err != nil {
				continue
			}
			a.mu.Lock()
			if v, ok := a.members[s.ID]; ok {
				v.snapshot = &snap
			}
			a.mu.Unlock()
		}
	}
}
