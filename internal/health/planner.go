package health

import (
	"context"
	"sort"
	"time"

	"gupster/internal/shard"
	"gupster/internal/wire"
)

// PlanRepair is the pure core of auto-repair: given the current map, a
// complete state view (every constellation member, Self included as
// alive; members absent from the view count as dead), and the full member
// list, it produces the successor map.
//
// Invariants the suite property-tests:
//
//   - No plan is made while any in-map member is suspect — suspicion is
//     unresolved evidence, and acting on it would evict a node that may
//     refute a tick later. The planner waits out the confirm timeout.
//   - The planned map never names a node that is not alive in the view:
//     dead members are removed, and only alive spares are promoted.
//   - The planned map's epoch is exactly cur.Epoch+1, so every repair in
//     a lineage is strictly monotonic.
//
// Partition safety: a plan requires the alive in-map members to be a
// STRICT MAJORITY of the current map. A node that sees most of the map
// dead is more likely to be the partitioned one itself; fencing (not
// repair) is its path back.
func PlanRepair(cur wire.ShardMap, states map[string]State, members []wire.ShardInfo) (next wire.ShardMap, dead []string, ok bool) {
	if len(cur.Shards) == 0 {
		return next, nil, false
	}
	stateOf := func(id string) State {
		if s, known := states[id]; known {
			return s
		}
		return StateDead
	}
	var survivors []wire.ShardInfo
	for _, s := range cur.Shards {
		switch stateOf(s.ID) {
		case StateSuspect:
			return next, nil, false // unresolved suspicion: wait
		case StateDead:
			dead = append(dead, s.ID)
		default:
			survivors = append(survivors, s)
		}
	}
	if len(dead) == 0 {
		return next, nil, false
	}
	if len(survivors) <= len(cur.Shards)/2 {
		return next, nil, false // minority view: do not repair, fence instead
	}

	inMap := make(map[string]bool, len(cur.Shards))
	for _, s := range cur.Shards {
		inMap[s.ID] = true
	}
	var spares []wire.ShardInfo
	for _, m := range members {
		if !inMap[m.ID] && stateOf(m.ID) == StateAlive {
			spares = append(spares, m)
		}
	}
	// Lowest IDs first: every coordinator that shares the view picks the
	// same spares.
	sort.Slice(spares, func(i, j int) bool { return spares[i].ID < spares[j].ID })
	if len(spares) > len(dead) {
		spares = spares[:len(dead)]
	}

	next = wire.ShardMap{
		Version: cur.Version + 1,
		Epoch:   cur.Epoch + 1,
		Shards:  append(append([]wire.ShardInfo(nil), survivors...), spares...),
	}
	return next, dead, true
}

// maybeRepair runs after each probe round on armed agents: if this node
// is the acting coordinator and a plan exists, launch the repair.
//
// Coordination is leaderless: every agent ranks the in-map members in map
// order and only the first one it believes alive acts. A second agent
// steps up only if it believes the coordinator dead — and if two repairs
// race anyway, both carry the same (epoch, version) coordinates, the
// divergent-equal install rejection stops the second sweep, its rebalance
// errors out, and it re-plans from whatever map actually won.
func (a *Agent) maybeRepair() {
	cur := a.currentMap()
	if len(cur.Shards) == 0 {
		return
	}
	states := a.statesSnapshot()
	coord := ""
	for _, s := range cur.Shards {
		if st, known := states[s.ID]; known && st == StateAlive {
			coord = s.ID
			break
		}
	}
	if coord != a.cfg.Self.ID {
		return
	}
	next, dead, ok := PlanRepair(cur, states, a.cfg.Members)
	if !ok {
		return
	}

	a.mu.Lock()
	if a.repair || a.closed {
		a.mu.Unlock()
		return
	}
	a.repair = true
	snaps := make(map[string]wire.ShardCoverageResponse, len(dead))
	for _, id := range dead {
		if v, found := a.members[id]; found && v.snapshot != nil {
			snaps[id] = *v.snapshot
		} else {
			snaps[id] = wire.ShardCoverageResponse{}
		}
	}
	a.wg.Add(1)
	a.mu.Unlock()

	go func() {
		defer a.wg.Done()
		defer func() {
			a.mu.Lock()
			a.repair = false
			a.mu.Unlock()
		}()
		a.runRepair(cur, next, dead, snaps)
	}()
}

// statesSnapshot is the agent's complete current view, Self always alive.
func (a *Agent) statesSnapshot() map[string]State {
	states := map[string]State{a.cfg.Self.ID: StateAlive}
	a.mu.Lock()
	for id, v := range a.members {
		states[id] = v.state
	}
	a.mu.Unlock()
	return states
}

// runRepair drives the planned map through the ordinary three-phase
// rebalance, with the dead shards' slices replayed from cached snapshots.
func (a *Agent) runRepair(cur, next wire.ShardMap, dead []string, snaps map[string]wire.ShardCoverageResponse) {
	var promoted []string
	inCur := make(map[string]bool, len(cur.Shards))
	for _, s := range cur.Shards {
		inCur[s.ID] = true
	}
	for _, s := range next.Shards {
		if !inCur[s.ID] {
			promoted = append(promoted, s.ID)
		}
	}
	a.cfg.Logf("health %s: repairing to map v%d@e%d (dead %v, promoting %v)",
		a.cfg.Self.ID, next.Version, next.Epoch, dead, promoted)

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	err := shard.Rebalance(ctx, cur, next, shard.RebalanceOptions{
		ForwardMillis: a.cfg.ForwardMillis,
		DeadShards:    snaps,
		Logf:          a.cfg.Logf,
	})
	if err != nil {
		// A racing coordinator may have won the epoch mid-sweep; the next
		// tick re-reads the installed map and re-plans on top of the winner.
		a.cfg.Logf("health %s: repair to v%d@e%d failed: %v", a.cfg.Self.ID, next.Version, next.Epoch, err)
		return
	}
	a.cfg.Logf("health %s: repair to map v%d@e%d complete", a.cfg.Self.ID, next.Version, next.Epoch)
	if a.cfg.OnRepair != nil {
		a.cfg.OnRepair(RepairEvent{Epoch: next.Epoch, Version: next.Version, Dead: dead, Promoted: promoted})
	}
}
