package health

import (
	"fmt"
	"math/rand"
	"testing"

	"gupster/internal/shard"
	"gupster/internal/wire"
)

// TestPlanRepairProperties checks the planner's invariants against an
// independent oracle over thousands of random (map, state-view, member)
// configurations:
//
//   - a plan never names a node that is not alive in the view,
//   - no plan is made while any in-map member is suspect,
//   - no plan is made without a strict alive majority of the current map,
//   - a plan's epoch is exactly cur.Epoch+1 (and version cur.Version+1),
//   - spares are promoted lowest-ID-first, at most one per dead shard.
func TestPlanRepairProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for iter := 0; iter < 4000; iter++ {
		nMembers := 1 + rng.Intn(7)
		members := make([]wire.ShardInfo, nMembers)
		for i := range members {
			id := fmt.Sprintf("m%d", i)
			members[i] = wire.ShardInfo{ID: id, Addr: "addr:" + id}
		}
		mapSize := 1 + rng.Intn(nMembers)
		cur := wire.ShardMap{
			Version: uint64(1 + rng.Intn(5)),
			Epoch:   uint64(rng.Intn(4)),
			Shards:  append([]wire.ShardInfo(nil), members[:mapSize]...),
		}
		states := make(map[string]State)
		for _, m := range members {
			if rng.Intn(8) == 0 {
				continue // absent from the view: counts as dead
			}
			states[m.ID] = State(rng.Intn(3))
		}

		// Independent oracle.
		stateOf := func(id string) State {
			if s, known := states[id]; known {
				return s
			}
			return StateDead
		}
		wantSuspect, wantDead, wantAlive := 0, 0, 0
		for _, s := range cur.Shards {
			switch stateOf(s.ID) {
			case StateSuspect:
				wantSuspect++
			case StateDead:
				wantDead++
			default:
				wantAlive++
			}
		}
		shouldPlan := wantSuspect == 0 && wantDead > 0 && wantAlive > len(cur.Shards)/2

		next, dead, ok := PlanRepair(cur, states, members)
		if ok != shouldPlan {
			t.Fatalf("iter %d: PlanRepair ok=%v, oracle says %v (map %d shards: %d alive / %d suspect / %d dead)",
				iter, ok, shouldPlan, len(cur.Shards), wantAlive, wantSuspect, wantDead)
		}
		if !ok {
			continue
		}
		if next.Epoch != cur.Epoch+1 || next.Version != cur.Version+1 {
			t.Fatalf("iter %d: plan at v%d@e%d from v%d@e%d, want exactly one bump of each",
				iter, next.Version, next.Epoch, cur.Version, cur.Epoch)
		}
		if len(dead) != wantDead {
			t.Fatalf("iter %d: plan reports %d dead, oracle counts %d", iter, len(dead), wantDead)
		}
		deadSet := make(map[string]bool, len(dead))
		for _, id := range dead {
			deadSet[id] = true
		}
		promoted := 0
		inCur := make(map[string]bool, len(cur.Shards))
		for _, s := range cur.Shards {
			inCur[s.ID] = true
		}
		for _, s := range next.Shards {
			if stateOf(s.ID) != StateAlive {
				t.Fatalf("iter %d: planned map names %s, which is %s", iter, s.ID, stateOf(s.ID))
			}
			if deadSet[s.ID] {
				t.Fatalf("iter %d: planned map retains dead shard %s", iter, s.ID)
			}
			if !inCur[s.ID] {
				promoted++
			}
		}
		if promoted > wantDead {
			t.Fatalf("iter %d: promoted %d spares for %d dead shards", iter, promoted, wantDead)
		}
		if len(next.Shards) != wantAlive+promoted {
			t.Fatalf("iter %d: planned map has %d shards, want %d survivors + %d spares",
				iter, len(next.Shards), wantAlive, promoted)
		}
	}
}

// A repair lineage — repeated plans under an arbitrary kill schedule —
// must carry strictly increasing (epoch, version) coordinates, and a node
// fed that lineage in ANY order must converge on its maximum: the
// property that makes replayed stale maps harmless.
func TestRepairLineageEpochsMonotonic(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	members := make([]wire.ShardInfo, 8)
	for i := range members {
		id := fmt.Sprintf("m%d", i)
		members[i] = wire.ShardInfo{ID: id, Addr: "addr:" + id}
	}
	cur := wire.ShardMap{Version: 1, Shards: append([]wire.ShardInfo(nil), members[:4]...)}
	lineage := []wire.ShardMap{cur}

	for round := 0; round < 24; round++ {
		states := make(map[string]State, len(members))
		for _, m := range members {
			states[m.ID] = StateAlive
		}
		// Kill one or two in-map members; the rest of the fleet restarts
		// between rounds and is promotion-eligible again.
		kills := 1 + rng.Intn(2)
		for i := 0; i < kills; i++ {
			states[cur.Shards[rng.Intn(len(cur.Shards))].ID] = StateDead
		}
		next, _, ok := PlanRepair(cur, states, members)
		if !ok {
			continue // double-kill of the same shard, or majority lost
		}
		if shard.CompareMaps(next, cur) <= 0 {
			t.Fatalf("round %d: plan v%d@e%d does not outrank v%d@e%d",
				round, next.Version, next.Epoch, cur.Version, cur.Epoch)
		}
		if next.Epoch != cur.Epoch+1 {
			t.Fatalf("round %d: epoch jumped %d → %d", round, cur.Epoch, next.Epoch)
		}
		lineage = append(lineage, next)
		cur = next
	}
	if len(lineage) < 10 {
		t.Fatalf("kill schedule produced only %d repairs — widen it", len(lineage))
	}

	final := lineage[len(lineage)-1]
	shuffled := append([]wire.ShardMap(nil), lineage...)
	rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
	n := shard.NewNode(shard.NodeConfig{ShardID: "m0"})
	defer n.Close()
	for _, m := range shuffled {
		_, _ = n.Install(&wire.ShardInstallRequest{Map: m}) // stale replays refused
	}
	got := n.Ring().Map()
	if shard.CompareMaps(got, final) != 0 {
		t.Fatalf("node converged on v%d@e%d, want the lineage maximum v%d@e%d",
			got.Version, got.Epoch, final.Version, final.Epoch)
	}
}
