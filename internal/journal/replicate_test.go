package journal

import (
	"errors"
	"fmt"
	"testing"

	"gupster/internal/wire"
)

func replRecord(term uint64, i int) Record {
	return Record{Op: OpRegister, Term: term, Register: &wire.RegisterRequest{
		Store:   fmt.Sprintf("store-%d", i),
		Address: "127.0.0.1:0",
		Path:    fmt.Sprintf("/Users/u%d/Profile", i),
	}}
}

func openRepl(t *testing.T, dir string) (*Journal, *Recovered) {
	t.Helper()
	j, rec, err := Open(dir, Options{NoSync: true, CompactEvery: -1})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return j, rec
}

func TestIndexedAppendAndEntries(t *testing.T) {
	dir := t.TempDir()
	j, _ := openRepl(t, dir)
	defer j.Close()

	for i := 0; i < 5; i++ {
		if err := j.Append(replRecord(3, i)); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
	if got := j.LastIndex(); got != 5 {
		t.Fatalf("LastIndex = %d, want 5", got)
	}
	if got := j.LastTerm(); got != 3 {
		t.Fatalf("LastTerm = %d, want 3", got)
	}
	recs, first, err := j.Entries(2)
	if err != nil {
		t.Fatalf("Entries(2): %v", err)
	}
	if first != 3 || len(recs) != 3 {
		t.Fatalf("Entries(2) = %d records from %d, want 3 from 3", len(recs), first)
	}
	if recs[0].Register.Store != "store-2" {
		t.Fatalf("Entries(2)[0] = %s, want store-2", recs[0].Register.Store)
	}
	// A suffix past the end is empty, not an error.
	recs, _, err = j.Entries(99)
	if err != nil || len(recs) != 0 {
		t.Fatalf("Entries(99) = %d records, err %v; want empty, nil", len(recs), err)
	}
	if term, ok := j.TermAt(4); !ok || term != 3 {
		t.Fatalf("TermAt(4) = %d,%v; want 3,true", term, ok)
	}
}

// TestEntriesAfterCompaction is the regression test for the catch-up vs
// compaction race: a reader asking for a prefix the compactor folded into
// the snapshot must get ErrCompacted (so it ships the snapshot), never a
// silently truncated record list.
func TestEntriesAfterCompaction(t *testing.T) {
	dir := t.TempDir()
	j, _ := openRepl(t, dir)
	defer j.Close()

	var cov []wire.RegisterRequest
	j.SetSnapshotFunc(func() Snapshot { return Snapshot{Coverage: cov} })
	for i := 0; i < 4; i++ {
		if err := j.Append(replRecord(1, i)); err != nil {
			t.Fatalf("append: %v", err)
		}
		cov = append(cov, *replRecord(1, i).Register)
	}
	if err := j.Compact(); err != nil {
		t.Fatalf("Compact: %v", err)
	}
	if got := j.Base(); got != 4 {
		t.Fatalf("Base = %d after compaction, want 4", got)
	}
	if _, _, err := j.Entries(2); !errors.Is(err, ErrCompacted) {
		t.Fatalf("Entries(2) after compaction = %v, want ErrCompacted", err)
	}
	// The boundary itself is still addressable: everything after base.
	if recs, _, err := j.Entries(4); err != nil || len(recs) != 0 {
		t.Fatalf("Entries(4) = %d records, err %v; want empty, nil", len(recs), err)
	}
	// Appends after compaction keep global indexing.
	if err := j.Append(replRecord(2, 9)); err != nil {
		t.Fatalf("append: %v", err)
	}
	if got := j.LastIndex(); got != 5 {
		t.Fatalf("LastIndex = %d after post-compaction append, want 5", got)
	}
	snap, err := j.SnapshotNow()
	if err != nil {
		t.Fatalf("SnapshotNow: %v", err)
	}
	if snap.Index != 5 || snap.Term != 2 {
		t.Fatalf("SnapshotNow = index %d term %d, want 5/2", snap.Index, snap.Term)
	}
}

func TestIndexSurvivesReopen(t *testing.T) {
	dir := t.TempDir()
	j, _ := openRepl(t, dir)
	var cov []wire.RegisterRequest
	j.SetSnapshotFunc(func() Snapshot { return Snapshot{Coverage: cov} })
	for i := 0; i < 3; i++ {
		if err := j.Append(replRecord(1, i)); err != nil {
			t.Fatalf("append: %v", err)
		}
		cov = append(cov, *replRecord(1, i).Register)
	}
	if err := j.Compact(); err != nil {
		t.Fatalf("Compact: %v", err)
	}
	if err := j.Append(replRecord(2, 3)); err != nil {
		t.Fatalf("append: %v", err)
	}
	if err := j.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	j2, rec := openRepl(t, dir)
	defer j2.Close()
	if j2.Base() != 3 || j2.LastIndex() != 4 {
		t.Fatalf("reopen: base %d last %d, want 3/4", j2.Base(), j2.LastIndex())
	}
	if rec.Snapshot == nil || rec.Snapshot.Index != 3 {
		t.Fatalf("reopen: snapshot index = %+v, want 3", rec.Snapshot)
	}
	if len(rec.Records) != 1 || rec.Records[0].Term != 2 {
		t.Fatalf("reopen: %d live records (term %d), want 1 at term 2", len(rec.Records), rec.Records[0].Term)
	}
}

func TestTruncateTo(t *testing.T) {
	dir := t.TempDir()
	j, _ := openRepl(t, dir)
	for i := 0; i < 5; i++ {
		if err := j.Append(replRecord(1, i)); err != nil {
			t.Fatalf("append: %v", err)
		}
	}
	if err := j.TruncateTo(2); err != nil {
		t.Fatalf("TruncateTo: %v", err)
	}
	if got := j.LastIndex(); got != 2 {
		t.Fatalf("LastIndex = %d after truncate, want 2", got)
	}
	// The divergent tail is gone on disk too, not just in memory.
	if err := j.Append(replRecord(2, 7)); err != nil {
		t.Fatalf("append after truncate: %v", err)
	}
	if err := j.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	j2, rec := openRepl(t, dir)
	defer j2.Close()
	if len(rec.Records) != 3 {
		t.Fatalf("reopen after truncate: %d records, want 3", len(rec.Records))
	}
	if rec.Records[2].Register.Store != "store-7" {
		t.Fatalf("reopen after truncate: tail = %s, want store-7", rec.Records[2].Register.Store)
	}
}

func TestInstallSnapshot(t *testing.T) {
	dir := t.TempDir()
	j, _ := openRepl(t, dir)
	for i := 0; i < 3; i++ {
		if err := j.Append(replRecord(1, i)); err != nil {
			t.Fatalf("append: %v", err)
		}
	}
	snap := &Snapshot{
		Coverage: []wire.RegisterRequest{*replRecord(4, 42).Register},
		Index:    10, Term: 4,
	}
	if err := j.InstallSnapshot(snap); err != nil {
		t.Fatalf("InstallSnapshot: %v", err)
	}
	if j.Base() != 10 || j.LastIndex() != 10 || j.LastTerm() != 4 {
		t.Fatalf("after install: base %d last %d term %d, want 10/10/4", j.Base(), j.LastIndex(), j.LastTerm())
	}
	if err := j.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	j2, rec := openRepl(t, dir)
	defer j2.Close()
	if rec.Snapshot == nil || rec.Snapshot.Index != 10 || len(rec.Snapshot.Coverage) != 1 {
		t.Fatalf("reopen after install: snapshot %+v", rec.Snapshot)
	}
	if len(rec.Records) != 0 || j2.LastIndex() != 10 {
		t.Fatalf("reopen after install: %d records, last %d; want 0/10", len(rec.Records), j2.LastIndex())
	}
}
