package journal

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"

	"gupster/internal/wire"
)

func regRecord(i int) Record {
	return Record{Op: OpRegister, Register: &wire.RegisterRequest{
		Store:   fmt.Sprintf("store-%d", i%7),
		Address: fmt.Sprintf("127.0.0.1:%d", 7000+i),
		Path:    fmt.Sprintf("/user[@id='u%d']/presence", i),
	}}
}

func randomRecord(rng *rand.Rand, i int) Record {
	switch rng.Intn(4) {
	case 0:
		return regRecord(i)
	case 1:
		return Record{Op: OpUnregister, Unregister: &wire.UnregisterRequest{
			Store: fmt.Sprintf("store-%d", i%7),
			Path:  fmt.Sprintf("/user[@id='u%d']/presence", rng.Intn(i+1)),
		}}
	case 2:
		return Record{Op: OpPutRule, PutRule: &wire.PutRuleRequest{
			Owner: fmt.Sprintf("u%d", i%5),
			Rule:  wire.RulePayload{ID: fmt.Sprintf("r%d", i), Path: "/user/presence", Effect: "permit"},
		}}
	default:
		return Record{Op: OpDeleteRule, DeleteRule: &wire.DeleteRuleRequest{
			Owner: fmt.Sprintf("u%d", i%5), RuleID: fmt.Sprintf("r%d", rng.Intn(i+1)),
		}}
	}
}

func openClean(t *testing.T, dir string, opts Options) (*Journal, *Recovered) {
	t.Helper()
	j, rec, err := Open(dir, opts)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return j, rec
}

func TestAppendRecoverRoundTrip(t *testing.T) {
	dir := t.TempDir()
	j, rec := openClean(t, dir, Options{})
	if rec.Snapshot != nil || len(rec.Records) != 0 {
		t.Fatalf("fresh journal recovered state: %+v", rec)
	}
	var want []Record
	for i := 0; i < 20; i++ {
		r := regRecord(i)
		want = append(want, r)
		if err := j.Append(r); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	j2, rec2 := openClean(t, dir, Options{})
	defer j2.Close()
	if !reflect.DeepEqual(rec2.Records, want) {
		t.Fatalf("recovered %d records, want %d:\n got %+v", len(rec2.Records), len(want), rec2.Records)
	}
	if rec2.TornBytes != 0 {
		t.Errorf("clean log reported torn bytes: %d", rec2.TornBytes)
	}
}

// TestReplayPrefixProperty is the replay property test: truncating the WAL
// at ANY byte boundary must recover a valid directory — specifically, some
// prefix of the appended records, never a reordering, a gap, or an error.
func TestReplayPrefixProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for round := 0; round < 8; round++ {
		dir := t.TempDir()
		j, _ := openClean(t, dir, Options{CompactEvery: -1})
		n := 5 + rng.Intn(20)
		var want []Record
		for i := 0; i < n; i++ {
			r := randomRecord(rng, i)
			want = append(want, r)
			if err := j.Append(r); err != nil {
				t.Fatalf("Append: %v", err)
			}
		}
		if err := j.Close(); err != nil {
			t.Fatalf("Close: %v", err)
		}

		wal := filepath.Join(dir, walName)
		full, err := os.ReadFile(wal)
		if err != nil {
			t.Fatal(err)
		}
		// Try a spread of truncation points, always including 0 and len.
		cuts := []int{0, len(full)}
		for i := 0; i < 12; i++ {
			cuts = append(cuts, rng.Intn(len(full)+1))
		}
		for _, cut := range cuts {
			if err := os.WriteFile(wal, full[:cut], 0o644); err != nil {
				t.Fatal(err)
			}
			j2, rec, err := Open(dir, Options{CompactEvery: -1})
			if err != nil {
				t.Fatalf("cut=%d: Open: %v", cut, err)
			}
			if len(rec.Records) > len(want) {
				t.Fatalf("cut=%d: recovered more records than written", cut)
			}
			for i, r := range rec.Records {
				if !reflect.DeepEqual(r, want[i]) {
					t.Fatalf("cut=%d: recovered records are not a prefix (diverge at %d)", cut, i)
				}
			}
			// After recovery the log must be append-clean: a re-open
			// recovers exactly the same records with no torn bytes.
			if err := j2.Close(); err != nil {
				t.Fatal(err)
			}
			j3, rec3, err := Open(dir, Options{CompactEvery: -1})
			if err != nil {
				t.Fatalf("cut=%d: second Open: %v", cut, err)
			}
			if rec3.TornBytes != 0 || !reflect.DeepEqual(rec3.Records, rec.Records) {
				t.Fatalf("cut=%d: second recovery differs (torn=%d)", cut, rec3.TornBytes)
			}
			j3.Close()
		}
	}
}

// TestTornTailTruncatedAndCorrupted covers the two crash signatures: a
// half-written record (short payload) and a bit-flipped one (CRC
// mismatch). Both must be dropped and physically truncated.
func TestTornTailTruncatedAndCorrupted(t *testing.T) {
	for _, mode := range []string{"short", "crc", "garbage-length"} {
		t.Run(mode, func(t *testing.T) {
			dir := t.TempDir()
			j, _ := openClean(t, dir, Options{})
			var want []Record
			for i := 0; i < 5; i++ {
				r := regRecord(i)
				want = append(want, r)
				if err := j.Append(r); err != nil {
					t.Fatal(err)
				}
			}
			j.Close()

			wal := filepath.Join(dir, walName)
			full, err := os.ReadFile(wal)
			if err != nil {
				t.Fatal(err)
			}
			switch mode {
			case "short":
				// Append a header promising more payload than exists.
				full = append(full, 0x00, 0x00, 0x01, 0x00, 0xde, 0xad, 0xbe, 0xef, 'x', 'y')
			case "crc":
				// Append a whole frame whose CRC is wrong.
				full = append(full, 0x00, 0x00, 0x00, 0x02, 0x00, 0x00, 0x00, 0x00, '{', '}')
			case "garbage-length":
				full = append(full, 0xff, 0xff, 0xff, 0xff, 0x01, 0x02, 0x03, 0x04)
			}
			if err := os.WriteFile(wal, full, 0o644); err != nil {
				t.Fatal(err)
			}

			j2, rec, err := Open(dir, Options{})
			if err != nil {
				t.Fatalf("Open over torn tail: %v", err)
			}
			defer j2.Close()
			if !reflect.DeepEqual(rec.Records, want) {
				t.Fatalf("recovered %d records, want %d", len(rec.Records), len(want))
			}
			if rec.TornBytes == 0 {
				t.Error("torn tail not reported")
			}
			// The tail must be physically gone so new appends extend a
			// clean log.
			if err := j2.Append(regRecord(99)); err != nil {
				t.Fatal(err)
			}
			j2.Close()
			j3, rec3, err := Open(dir, Options{})
			if err != nil {
				t.Fatal(err)
			}
			defer j3.Close()
			if len(rec3.Records) != len(want)+1 || rec3.TornBytes != 0 {
				t.Fatalf("post-truncate log unclean: %d records, torn=%d", len(rec3.Records), rec3.TornBytes)
			}
		})
	}
}

func TestCompactionSnapshotsAndTruncates(t *testing.T) {
	dir := t.TempDir()
	j, _ := openClean(t, dir, Options{CompactEvery: 4})
	// The snapshot callback models a directory that retains only the last
	// registration per store.
	var mu sync.Mutex
	state := map[string]wire.RegisterRequest{}
	j.SetSnapshotFunc(func() Snapshot {
		mu.Lock()
		defer mu.Unlock()
		var s Snapshot
		for _, r := range state {
			s.Coverage = append(s.Coverage, r)
		}
		return s
	})
	for i := 0; i < 10; i++ {
		r := regRecord(i)
		mu.Lock()
		state[r.Register.Store] = *r.Register
		mu.Unlock()
		if err := j.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if got := j.Stats().Compactions.Load(); got == 0 {
		t.Fatal("no compaction after passing CompactEvery")
	}
	info, err := os.Stat(filepath.Join(dir, walName))
	if err != nil {
		t.Fatal(err)
	}
	// 10 appends with CompactEvery=4: the log was truncated at least
	// twice, so it holds far fewer than 10 records.
	if info.Size() > 4*256 {
		t.Errorf("log not compacted: %d bytes", info.Size())
	}
	j.Close()

	_, rec, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rec.Snapshot == nil || len(rec.Snapshot.Coverage) == 0 {
		t.Fatal("no snapshot recovered after compaction")
	}
	// Snapshot + remaining records must cover every store seen.
	stores := map[string]bool{}
	for _, c := range rec.Snapshot.Coverage {
		stores[c.Store] = true
	}
	for _, r := range rec.Records {
		if r.Register != nil {
			stores[r.Register.Store] = true
		}
	}
	if len(stores) != 7 {
		t.Errorf("recovered %d stores, want 7", len(stores))
	}
}

func TestConcurrentAppendsGroupCommit(t *testing.T) {
	dir := t.TempDir()
	j, _ := openClean(t, dir, Options{})
	const writers, per = 8, 25
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				if err := j.Append(regRecord(w*per + i)); err != nil {
					t.Errorf("Append: %v", err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	syncs := j.Stats().Syncs.Load()
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	_, rec, err := Open(dir, Options{CompactEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Records) != writers*per {
		t.Fatalf("recovered %d records, want %d", len(rec.Records), writers*per)
	}
	t.Logf("group commit: %d appends in %d fsyncs", writers*per, syncs)
}

func TestAppendAfterCloseFails(t *testing.T) {
	j, _ := openClean(t, t.TempDir(), Options{})
	j.Close()
	if err := j.Append(regRecord(0)); err != ErrClosed {
		t.Fatalf("Append after Close: %v", err)
	}
}
