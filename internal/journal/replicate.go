package journal

// Replicated-log surface. A journal doubles as the persistent log of a
// replicated MDM: records carry the leader term that produced them, the
// snapshot records the index it covers, and this file exposes the indexed
// view replication needs — read a suffix for shipping, truncate a
// conflicting tail, install a leader snapshot wholesale.
//
// Indexing is global and monotone across compactions: record 1 is the
// first mutation ever journaled. Compaction folds a prefix into the
// snapshot and advances base; Entries on a compacted prefix returns
// ErrCompacted so the shipper falls back to a snapshot instead of
// silently skipping records — the fix for the single-reader assumption
// the original compaction made.

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"path/filepath"
)

// ErrCompacted reports that the requested log prefix has been folded into
// the snapshot; the caller should ship the snapshot instead.
var ErrCompacted = errors.New("journal: prefix compacted into snapshot")

// lastTermLocked is the term of the newest record, falling back to the
// snapshot's term when the live log is empty. Caller holds j.mu.
func (j *Journal) lastTermLocked() uint64 {
	if n := len(j.recs); n > 0 {
		return j.recs[n-1].Term
	}
	return j.baseTerm
}

// LastIndex is the index of the newest record (0 before any append).
func (j *Journal) LastIndex() uint64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.base + uint64(len(j.recs))
}

// LastTerm is the term of the newest record (or of the snapshot when the
// live log is empty).
func (j *Journal) LastTerm() uint64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.lastTermLocked()
}

// Base is the index of the last record folded into the snapshot.
func (j *Journal) Base() uint64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.base
}

// TermAt returns the term of the record at index. ok is false when the
// index is ahead of the log; an index at or below base reports the
// snapshot's term (exact for base itself, a lower bound below it, which
// is sufficient for log matching — anything at or below base is
// committed by definition).
func (j *Journal) TermAt(index uint64) (term uint64, ok bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if index <= j.base {
		return j.baseTerm, true
	}
	if index > j.base+uint64(len(j.recs)) {
		return 0, false
	}
	return j.recs[index-j.base-1].Term, true
}

// Entries returns a copy of every record with index > after, in order,
// plus the index of the first returned record. ErrCompacted means the
// suffix starts inside the snapshot — ship the snapshot instead. Safe
// against a concurrent Compact: both hold j.mu, so a reader never
// observes a half-truncated log.
func (j *Journal) Entries(after uint64) (recs []Record, first uint64, err error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return nil, 0, ErrClosed
	}
	if after < j.base {
		return nil, 0, ErrCompacted
	}
	from := after - j.base
	if from >= uint64(len(j.recs)) {
		return nil, after + 1, nil
	}
	out := make([]Record, len(j.recs[from:]))
	copy(out, j.recs[from:])
	return out, after + 1, nil
}

// TruncateTo discards every record with index > index, rewriting the WAL
// in place — the conflict-resolution path when a follower's tail diverges
// from the new leader's log. Truncating below base is an error (that
// prefix lives in the snapshot); truncating at or past the last index is
// a no-op.
func (j *Journal) TruncateTo(index uint64) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return ErrClosed
	}
	for j.synced < j.pending && j.syncErr == nil {
		j.done.Wait()
	}
	if j.syncErr != nil {
		return j.syncErr
	}
	if index < j.base {
		return fmt.Errorf("journal: truncate to %d below snapshot base %d", index, j.base)
	}
	keep := index - j.base
	if keep >= uint64(len(j.recs)) {
		return nil
	}
	kept := make([]Record, keep)
	copy(kept, j.recs[:keep])
	if err := j.rewriteLocked(kept); err != nil {
		return err
	}
	j.recs = kept
	j.appended = len(kept)
	return nil
}

// InstallSnapshot replaces the journal's whole state with a leader
// checkpoint: the snapshot is written atomically, the WAL is reset to
// empty and base advances to the snapshot's index. The caller rebuilds
// the in-memory directory from the same snapshot.
func (j *Journal) InstallSnapshot(s *Snapshot) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return ErrClosed
	}
	for j.synced < j.pending && j.syncErr == nil {
		j.done.Wait()
	}
	if j.syncErr != nil {
		return j.syncErr
	}
	if err := writeSnapshot(j.dir, s, j.opts.NoSync); err != nil {
		return err
	}
	if err := j.rewriteLocked(nil); err != nil {
		return err
	}
	j.base = s.Index
	j.baseTerm = s.Term
	j.recs = nil
	j.appended = 0
	return nil
}

// SnapshotNow captures the directory checkpoint without compacting the
// log — the shipping path when a follower is too far behind. The capture
// runs under j.mu like Compact's, so it is consistent with the log index
// it is stamped with.
func (j *Journal) SnapshotNow() (*Snapshot, error) {
	j.snapMu.Lock()
	fn := j.snapFn
	j.snapMu.Unlock()
	if fn == nil {
		return nil, errors.New("journal: no snapshot callback installed")
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return nil, ErrClosed
	}
	for j.synced < j.pending && j.syncErr == nil {
		j.done.Wait()
	}
	if j.syncErr != nil {
		return nil, j.syncErr
	}
	snap := fn()
	snap.Index = j.base + uint64(len(j.recs))
	snap.Term = j.lastTermLocked()
	return &snap, nil
}

// ReadSnapshot loads the journal's on-disk checkpoint (nil when none
// exists) — the base state a follower replays after truncating a
// divergent tail.
func (j *Journal) ReadSnapshot() (*Snapshot, error) {
	return readSnapshot(filepath.Join(j.dir, snapName))
}

// rewriteLocked replaces the WAL's contents with recs. Caller holds j.mu
// with all in-flight appends drained.
func (j *Journal) rewriteLocked(recs []Record) error {
	if err := j.f.Truncate(0); err != nil {
		return fmt.Errorf("journal: truncate: %w", err)
	}
	if _, err := j.f.Seek(0, io.SeekStart); err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	j.w.Reset(j.f)
	for _, r := range recs {
		payload, err := json.Marshal(r)
		if err != nil {
			return fmt.Errorf("journal: marshal: %w", err)
		}
		var hdr [headerSize]byte
		binary.BigEndian.PutUint32(hdr[0:4], uint32(len(payload)))
		binary.BigEndian.PutUint32(hdr[4:8], crc32.Checksum(payload, crcTable))
		if _, err := j.w.Write(hdr[:]); err != nil {
			return fmt.Errorf("journal: rewrite: %w", err)
		}
		if _, err := j.w.Write(payload); err != nil {
			return fmt.Errorf("journal: rewrite: %w", err)
		}
	}
	if err := j.w.Flush(); err != nil {
		return fmt.Errorf("journal: rewrite flush: %w", err)
	}
	if !j.opts.NoSync {
		if err := j.f.Sync(); err != nil {
			return fmt.Errorf("journal: rewrite sync: %w", err)
		}
	}
	return nil
}
