// Package journal makes the MDM's meta-data directory crash-safe. The
// directory — coverage registrations, store addresses, privacy-shield
// rules — is the Napster-style heart of the federation (paper §4), yet it
// is pure main-memory state; this package gives it the journaling and
// checkpointing discipline of the main-memory directory services the paper
// leans on (the HLR's "main memory relational database", §3.1.2).
//
// The design is a classic write-ahead log plus checkpoint:
//
//   - every meta-data mutation appends one CRC-framed record to an
//     append-only log (wal.log) and is acknowledged only after the record
//     is durably on disk; concurrent appenders share fsyncs (group
//     commit), so a registration burst costs one disk flush, not N,
//   - a periodic snapshot (snapshot.json, written atomically via rename)
//     captures the whole directory in the same wire shapes the mirror
//     protocol already replays (RegisterRequest / PutRuleRequest), after
//     which the log is compacted to zero,
//   - recovery loads the snapshot, replays the log over it, and truncates
//     any torn tail left by a crash mid-append — a partially written
//     record is indistinguishable from one never acknowledged, so
//     dropping it is correct.
//
// Replayed operations are idempotent at the directory layer (registering
// twice is a no-op, unregistering a missing entry is ignored), which makes
// the snapshot/log overlap window around compaction harmless.
package journal

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"

	"gupster/internal/wire"
)

// Record operations. One record is one meta-data mutation in its wire
// shape, so replay reuses the exact decode path the server already has.
const (
	OpRegister   = "register"
	OpUnregister = "unregister"
	OpPutRule    = "put-rule"
	OpDeleteRule = "delete-rule"
)

// Record is one journaled mutation. Exactly one of the payload fields is
// set, matching Op. Term is the leader term that produced the record when
// the journal backs a replicated MDM (0 on a standalone node); replication
// uses it for log matching, replay ignores it.
type Record struct {
	Op         string                  `json:"op"`
	Term       uint64                  `json:"term,omitempty"`
	Register   *wire.RegisterRequest   `json:"register,omitempty"`
	Unregister *wire.UnregisterRequest `json:"unregister,omitempty"`
	PutRule    *wire.PutRuleRequest    `json:"put_rule,omitempty"`
	DeleteRule *wire.DeleteRuleRequest `json:"delete_rule,omitempty"`
}

// Snapshot is a checkpoint of the whole directory, in the same shapes the
// mirror protocol replays to late-joining peers. Index and Term locate the
// checkpoint in the replicated log: the snapshot covers every record up to
// and including Index (both 0 on a standalone node).
type Snapshot struct {
	Coverage []wire.RegisterRequest `json:"coverage"`
	Shields  []wire.PutRuleRequest  `json:"shields"`
	Index    uint64                 `json:"index,omitempty"`
	Term     uint64                 `json:"snap_term,omitempty"`
}

// Options tune a journal.
type Options struct {
	// NoSync skips fsync on append (benchmarks, tests on tmpfs). Records
	// still reach the OS page cache, so an orderly process exit loses
	// nothing — only a machine crash does.
	NoSync bool
	// CompactEvery triggers a snapshot-and-truncate after this many
	// appended records; 0 means DefaultCompactEvery, negative disables
	// automatic compaction.
	CompactEvery int
}

// DefaultCompactEvery bounds log growth: directories mutate rarely, so a
// thousand records is hours of churn yet replays in microseconds.
const DefaultCompactEvery = 1024

// Stats counts journal activity, exported through the MDM's stats surface.
type Stats struct {
	Appends     atomic.Uint64
	Syncs       atomic.Uint64
	Compactions atomic.Uint64
	// RecoveredSnapshot and RecoveredRecords describe the last Open:
	// directory entries loaded from the snapshot and records replayed
	// from the log.
	RecoveredSnapshot atomic.Uint64
	RecoveredRecords  atomic.Uint64
	// TornBytes is how much torn tail the last Open truncated.
	TornBytes atomic.Uint64
}

// Recovered is what Open found on disk: apply Snapshot first, then the
// Records in order.
type Recovered struct {
	Snapshot *Snapshot
	Records  []Record
	// TornBytes counts bytes truncated from the log's torn tail (a crash
	// mid-append); 0 on a clean log.
	TornBytes int64
}

// Journal errors.
var (
	ErrClosed = errors.New("journal: closed")
	// ErrRecordTooLarge rejects absurd records at append time and marks
	// in-log length corruption at replay time.
	ErrRecordTooLarge = errors.New("journal: record exceeds maximum size")
)

// maxRecord bounds one serialized record; directory mutations are tiny,
// so anything near this is corruption.
const maxRecord = 4 << 20

const (
	walName  = "wal.log"
	snapName = "snapshot.json"
)

// frame header: 4-byte big-endian payload length, 4-byte CRC32-Castagnoli
// of the payload.
const headerSize = 8

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// Journal is an open write-ahead log. All methods are safe for concurrent
// use.
type Journal struct {
	dir  string
	opts Options

	mu       sync.Mutex
	work     *sync.Cond // wakes the flusher
	done     *sync.Cond // wakes appenders waiting for durability
	f        *os.File
	w        *bufio.Writer
	pending  uint64 // records written to the buffer
	synced   uint64 // records durably flushed (+synced) to disk
	appended int    // records since the last compaction
	// Replicated-log view of the WAL (see replicate.go): base is the
	// index of the last record folded into the snapshot, baseTerm its
	// term, and recs the in-memory copy of the live log, so record
	// base+1+i is recs[i]. Bounded by CompactEvery on durable MDMs.
	base     uint64
	baseTerm uint64
	recs     []Record
	syncErr  error  // sticky: a failed flush/fsync poisons the journal
	closed   bool
	flusherG sync.WaitGroup

	// snapFn supplies the directory state for compaction; nil disables
	// automatic and manual compaction.
	snapMu sync.Mutex
	snapFn func() Snapshot

	stats Stats
}

// Open creates or recovers a journal in dir. The returned Recovered holds
// whatever durable state was found (nil snapshot and no records on first
// boot); the caller applies it before appending new mutations.
func Open(dir string, opts Options) (*Journal, *Recovered, error) {
	if opts.CompactEvery == 0 {
		opts.CompactEvery = DefaultCompactEvery
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, fmt.Errorf("journal: %w", err)
	}
	j := &Journal{dir: dir, opts: opts}
	j.work = sync.NewCond(&j.mu)
	j.done = sync.NewCond(&j.mu)

	rec := &Recovered{}
	if snap, err := readSnapshot(filepath.Join(dir, snapName)); err != nil {
		return nil, nil, err
	} else if snap != nil {
		rec.Snapshot = snap
		j.base = snap.Index
		j.baseTerm = snap.Term
		j.stats.RecoveredSnapshot.Store(uint64(len(snap.Coverage) + len(snap.Shields)))
	}

	f, err := os.OpenFile(filepath.Join(dir, walName), os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("journal: %w", err)
	}
	records, good, size, err := scanWAL(f)
	if err != nil {
		f.Close()
		return nil, nil, err
	}
	if good < size {
		// Torn tail: a crash interrupted an append that was never
		// acknowledged. Truncate to the last whole record so the log is
		// append-clean again.
		if err := f.Truncate(good); err != nil {
			f.Close()
			return nil, nil, fmt.Errorf("journal: truncate torn tail: %w", err)
		}
		rec.TornBytes = size - good
		j.stats.TornBytes.Store(uint64(rec.TornBytes))
	}
	if _, err := f.Seek(good, io.SeekStart); err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("journal: %w", err)
	}
	rec.Records = records
	j.recs = records
	j.stats.RecoveredRecords.Store(uint64(len(records)))
	// Recovered records count against the compaction budget so a crash
	// loop cannot grow the log without bound.
	j.appended = len(records)

	j.f = f
	j.w = bufio.NewWriter(f)
	j.flusherG.Add(1)
	go j.flusher()
	return j, rec, nil
}

// SetSnapshotFunc installs the callback that captures the directory for
// compaction — typically after recovery has been applied, so the first
// snapshot is complete. The callback must not append to the journal.
func (j *Journal) SetSnapshotFunc(fn func() Snapshot) {
	j.snapMu.Lock()
	j.snapFn = fn
	j.snapMu.Unlock()
}

// Stats exposes the journal's counters.
func (j *Journal) Stats() *Stats { return &j.stats }

// Dir returns the journal directory.
func (j *Journal) Dir() string { return j.dir }

// Append durably logs one record: it returns only after the record (and,
// thanks to group commit, any records buffered alongside it) has been
// flushed and fsynced. Append may trigger a compaction once the log
// passes the CompactEvery threshold.
func (j *Journal) Append(r Record) error {
	_, err := j.AppendBatch([]Record{r})
	return err
}

// AppendIndexed is Append returning the record's global index, assigned
// atomically with the append — the hook replication uses so concurrent
// appenders each learn exactly where their record landed.
func (j *Journal) AppendIndexed(r Record) (uint64, error) {
	return j.AppendBatch([]Record{r})
}

// AppendBatch durably logs records as one unit, sharing a single flush
// and fsync across the whole batch (plus whatever concurrent appenders
// piled into the same group commit). It returns the global index of the
// last record appended. Followers use it to land a shipped entry batch
// at one fsync instead of one per record.
func (j *Journal) AppendBatch(records []Record) (uint64, error) {
	if len(records) == 0 {
		j.mu.Lock()
		defer j.mu.Unlock()
		return j.base + uint64(len(j.recs)), nil
	}
	type framed struct {
		hdr     [headerSize]byte
		payload []byte
	}
	frames := make([]framed, len(records))
	for i, r := range records {
		payload, err := json.Marshal(r)
		if err != nil {
			return 0, fmt.Errorf("journal: marshal: %w", err)
		}
		if len(payload) > maxRecord {
			return 0, ErrRecordTooLarge
		}
		frames[i].payload = payload
		binary.BigEndian.PutUint32(frames[i].hdr[0:4], uint32(len(payload)))
		binary.BigEndian.PutUint32(frames[i].hdr[4:8], crc32.Checksum(payload, crcTable))
	}

	j.mu.Lock()
	if j.closed {
		j.mu.Unlock()
		return 0, ErrClosed
	}
	if j.syncErr != nil {
		err := j.syncErr
		j.mu.Unlock()
		return 0, err
	}
	for i := range frames {
		if _, err := j.w.Write(frames[i].hdr[:]); err != nil {
			j.syncErr = err
			break
		}
		if _, err := j.w.Write(frames[i].payload); err != nil {
			j.syncErr = err
			break
		}
	}
	if j.syncErr != nil {
		err := j.syncErr
		j.mu.Unlock()
		return 0, err
	}
	j.pending += uint64(len(records))
	seq := j.pending
	j.appended += len(records)
	j.recs = append(j.recs, records...)
	last := j.base + uint64(len(j.recs))
	needCompact := j.opts.CompactEvery > 0 && j.appended >= j.opts.CompactEvery
	j.work.Signal()
	// Wait for the flusher to carry this batch (and its group) to disk.
	for j.synced < seq && j.syncErr == nil {
		j.done.Wait()
	}
	err := j.syncErr
	j.mu.Unlock()
	if err != nil {
		return 0, err
	}
	j.stats.Appends.Add(uint64(len(records)))
	if needCompact {
		// Best-effort: a failed compaction leaves the log long but valid.
		_ = j.Compact()
	}
	return last, nil
}

// flusher is the single goroutine that moves buffered records to disk.
// The buffer flush happens under the lock (it shares the bufio.Writer
// with appenders); the fsync happens outside it, so appends arriving
// during a sync pile into the next batch — that is the group commit.
func (j *Journal) flusher() {
	defer j.flusherG.Done()
	j.mu.Lock()
	for {
		for j.pending == j.synced && !j.closed {
			j.work.Wait()
		}
		if j.pending == j.synced && j.closed {
			j.mu.Unlock()
			return
		}
		target := j.pending
		err := j.w.Flush()
		if err == nil && !j.opts.NoSync {
			f := j.f
			j.mu.Unlock()
			err = f.Sync()
			j.mu.Lock()
			j.stats.Syncs.Add(1)
		}
		j.synced = target
		if err != nil && j.syncErr == nil {
			j.syncErr = err
		}
		j.done.Broadcast()
	}
}

// Compact checkpoints the directory and truncates the log: it captures a
// snapshot via the installed callback, writes it atomically (temp file,
// fsync, rename, directory fsync), then resets the log to empty. A crash
// between the rename and the truncate leaves snapshot+old-log on disk,
// which replays to the same state because directory mutations are
// idempotent. No-op without a snapshot callback.
func (j *Journal) Compact() error {
	j.snapMu.Lock()
	fn := j.snapFn
	j.snapMu.Unlock()
	if fn == nil {
		return nil
	}

	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return ErrClosed
	}
	// Drain in-flight appends so the log and the snapshot agree on "now".
	for j.synced < j.pending && j.syncErr == nil {
		j.done.Wait()
	}
	if j.syncErr != nil {
		return j.syncErr
	}
	// Capture under j.mu: mutations applied to the directory but not yet
	// journaled are ahead of the log; including them in the snapshot is
	// safe (their append lands in the fresh log and replays idempotently).
	snap := fn()
	snap.Index = j.base + uint64(len(j.recs))
	snap.Term = j.lastTermLocked()
	if err := writeSnapshot(j.dir, &snap, j.opts.NoSync); err != nil {
		return err
	}
	if err := j.f.Truncate(0); err != nil {
		return fmt.Errorf("journal: truncate: %w", err)
	}
	if _, err := j.f.Seek(0, io.SeekStart); err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	j.w.Reset(j.f)
	if !j.opts.NoSync {
		if err := j.f.Sync(); err != nil {
			return fmt.Errorf("journal: %w", err)
		}
	}
	j.base = snap.Index
	j.baseTerm = snap.Term
	j.recs = nil
	j.appended = 0
	j.stats.Compactions.Add(1)
	return nil
}

// Close flushes, syncs, and closes the log. Further appends fail with
// ErrClosed.
func (j *Journal) Close() error {
	j.mu.Lock()
	if j.closed {
		j.mu.Unlock()
		return nil
	}
	j.closed = true
	j.work.Signal()
	j.mu.Unlock()
	j.flusherG.Wait()
	j.mu.Lock()
	err := j.syncErr
	j.mu.Unlock()
	if cerr := j.f.Close(); err == nil {
		err = cerr
	}
	return err
}

// scanWAL reads every whole record from the log, returning the records,
// the offset of the last whole record's end (the "good" prefix), and the
// file size. Corruption — short header, absurd length, CRC mismatch,
// undecodable JSON — ends the scan at the last good offset: everything
// after a torn record is unreachable garbage by construction (appends are
// sequential), so it is truncated, never skipped.
func scanWAL(f *os.File) (records []Record, good, size int64, err error) {
	info, err := f.Stat()
	if err != nil {
		return nil, 0, 0, fmt.Errorf("journal: %w", err)
	}
	size = info.Size()
	r := bufio.NewReader(io.NewSectionReader(f, 0, size))
	var hdr [headerSize]byte
	for {
		if _, err := io.ReadFull(r, hdr[:]); err != nil {
			return records, good, size, nil // clean EOF or torn header
		}
		n := binary.BigEndian.Uint32(hdr[0:4])
		if n == 0 || n > maxRecord {
			return records, good, size, nil // length corruption
		}
		payload := make([]byte, n)
		if _, err := io.ReadFull(r, payload); err != nil {
			return records, good, size, nil // torn payload
		}
		if crc32.Checksum(payload, crcTable) != binary.BigEndian.Uint32(hdr[4:8]) {
			return records, good, size, nil // bit rot or torn write
		}
		var rec Record
		if err := json.Unmarshal(payload, &rec); err != nil {
			return records, good, size, nil
		}
		records = append(records, rec)
		good += int64(headerSize) + int64(n)
	}
}

// readSnapshot loads the checkpoint, if any.
func readSnapshot(path string) (*Snapshot, error) {
	data, err := os.ReadFile(path)
	if errors.Is(err, os.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("journal: read snapshot: %w", err)
	}
	var s Snapshot
	if err := json.Unmarshal(data, &s); err != nil {
		return nil, fmt.Errorf("journal: snapshot corrupt: %w", err)
	}
	return &s, nil
}

// writeSnapshot persists the checkpoint atomically: temp file, fsync,
// rename over the old snapshot, fsync the directory so the rename itself
// is durable.
func writeSnapshot(dir string, s *Snapshot, noSync bool) error {
	data, err := json.Marshal(s)
	if err != nil {
		return fmt.Errorf("journal: marshal snapshot: %w", err)
	}
	tmp, err := os.CreateTemp(dir, snapName+".tmp-")
	if err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return fmt.Errorf("journal: write snapshot: %w", err)
	}
	if !noSync {
		if err := tmp.Sync(); err != nil {
			tmp.Close()
			return fmt.Errorf("journal: sync snapshot: %w", err)
		}
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	if err := os.Rename(tmp.Name(), filepath.Join(dir, snapName)); err != nil {
		return fmt.Errorf("journal: install snapshot: %w", err)
	}
	if noSync {
		return nil
	}
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("journal: sync dir: %w", err)
	}
	return nil
}
