package resilience

import (
	"context"
	"errors"
	"testing"
	"time"

	"gupster/internal/metrics"
	"gupster/internal/wire"
)

// TestOverloadedIsBackoffNotFailure: a shed endpoint must be retried after
// the hint without feeding its breaker — shedding is the server staying
// alive, not the server dying.
func TestOverloadedIsBackoffNotFailure(t *testing.T) {
	stats := &metrics.ResilienceStats{}
	g := NewGroup(Policy{MaxAttempts: 3, BaseDelay: time.Millisecond, MaxDelay: 2 * time.Millisecond},
		BreakerConfig{Threshold: 1}, stats) // hair-trigger breaker

	calls := 0
	start := time.Now()
	err := g.Do(context.Background(), "store-1", func(ctx context.Context) error {
		calls++
		if calls < 3 {
			return &wire.OverloadedError{Op: wire.TypeFetch, RetryAfter: 20 * time.Millisecond, Reason: "queue full"}
		}
		return nil
	})
	if err != nil {
		t.Fatalf("Do after sheds: %v", err)
	}
	if calls != 3 {
		t.Fatalf("calls = %d, want 3 (shed, shed, success)", calls)
	}
	// The retry-after hint (20ms, twice) outranks the ~1ms policy backoff.
	if elapsed := time.Since(start); elapsed < 40*time.Millisecond {
		t.Fatalf("retries ignored the retry-after hint: elapsed %v, want ≥40ms", elapsed)
	}
	if got := stats.OverloadBackoffs.Load(); got != 2 {
		t.Fatalf("OverloadBackoffs = %d, want 2", got)
	}
	if got := stats.Failures.Load(); got != 0 {
		t.Fatalf("Failures = %d after sheds, want 0 (shed counted as failure)", got)
	}
	if got := stats.BreakerTrips.Load(); got != 0 {
		t.Fatalf("BreakerTrips = %d, want 0 — a shed tripped the breaker", got)
	}
	if st := g.State("store-1"); st != Closed {
		t.Fatalf("breaker state after sheds = %v, want closed", st)
	}
}

// TestOverloadedExhaustsAttempts: persistent shedding still terminates,
// returning the typed error so callers can surface the hint.
func TestOverloadedExhaustsAttempts(t *testing.T) {
	g := NewGroup(Policy{MaxAttempts: 2, BaseDelay: time.Millisecond, MaxDelay: time.Millisecond},
		BreakerConfig{}, nil)
	calls := 0
	err := g.Do(context.Background(), "store-1", func(ctx context.Context) error {
		calls++
		return &wire.OverloadedError{Op: wire.TypeFetch, RetryAfter: time.Millisecond, Reason: "queue full"}
	})
	var ov *wire.OverloadedError
	if !errors.As(err, &ov) {
		t.Fatalf("got %v, want *wire.OverloadedError", err)
	}
	if calls != 2 {
		t.Fatalf("calls = %d, want MaxAttempts=2", calls)
	}
	if g.State("store-1") != Closed {
		t.Fatal("exhausted sheds tripped the breaker")
	}
}
