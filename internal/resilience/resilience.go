// Package resilience hardens the distributed query paths (referral,
// chaining, recruiting — §5.2) against data stores that fail, stall, and
// recover independently. It provides the three mechanisms threaded
// through the client, MDM, and federation layers:
//
//   - bounded retries with capped exponential backoff and deterministic
//     jitter, each attempt under its own timeout while the caller's
//     context bounds the overall budget,
//   - a per-endpoint circuit breaker (closed → open → half-open) that
//     trips after consecutive transient failures and half-opens on a
//     single probe after a cooldown, so persistently dead stores stop
//     consuming the retry budget,
//   - error classification: remote application errors (denials, spurious
//     queries) are final — retrying them cannot help — while connection
//     and timeout failures are transient.
//
// Breaker states and retry counters are exported through
// internal/metrics so degradation is observable.
package resilience

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"sync"
	"time"

	"gupster/internal/metrics"
	"gupster/internal/wire"
)

// ErrOpenCircuit is returned without attempting a call when the
// endpoint's breaker refuses traffic.
var ErrOpenCircuit = errors.New("resilience: circuit open")

// Policy bounds the retry loop. The zero value means defaults.
type Policy struct {
	// MaxAttempts is the total number of tries per call; default 3.
	MaxAttempts int
	// PerAttempt bounds each individual try; default 2s. The caller's
	// context deadline bounds the whole call.
	PerAttempt time.Duration
	// BaseDelay is the backoff before the first retry; default 10ms.
	BaseDelay time.Duration
	// MaxDelay caps the backoff; default 500ms.
	MaxDelay time.Duration
	// Multiplier grows the delay between retries; default 2.
	Multiplier float64
	// Jitter is the fraction of each delay that is randomized away
	// (0..1); default 0.5. Jitter decorrelates retry storms from clients
	// that failed together.
	Jitter float64
	// Seed makes the jitter sequence deterministic; default 1.
	Seed int64
}

func (p Policy) withDefaults() Policy {
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = 3
	}
	if p.PerAttempt <= 0 {
		p.PerAttempt = 2 * time.Second
	}
	if p.BaseDelay <= 0 {
		p.BaseDelay = 10 * time.Millisecond
	}
	if p.MaxDelay <= 0 {
		p.MaxDelay = 500 * time.Millisecond
	}
	if p.Multiplier < 1 {
		p.Multiplier = 2
	}
	if p.Jitter <= 0 || p.Jitter > 1 {
		p.Jitter = 0.5
	}
	if p.Seed == 0 {
		p.Seed = 1
	}
	return p
}

// BreakerConfig parameterizes circuit breakers. The zero value means
// defaults.
type BreakerConfig struct {
	// Threshold is the consecutive-transient-failure count that trips
	// the breaker; default 3.
	Threshold int
	// Cooldown is how long an open breaker refuses traffic before
	// admitting one half-open probe; default 1s.
	Cooldown time.Duration
}

func (c BreakerConfig) withDefaults() BreakerConfig {
	if c.Threshold <= 0 {
		c.Threshold = 3
	}
	if c.Cooldown <= 0 {
		c.Cooldown = time.Second
	}
	return c
}

// State is a breaker's position in the closed → open → half-open cycle.
type State int

// The three breaker states.
const (
	Closed State = iota
	Open
	HalfOpen
)

// String names the state for metrics export.
func (s State) String() string {
	switch s {
	case Open:
		return "open"
	case HalfOpen:
		return "half-open"
	default:
		return "closed"
	}
}

// Breaker is a per-endpoint circuit breaker. Safe for concurrent use.
type Breaker struct {
	cfg   BreakerConfig
	stats *metrics.ResilienceStats

	mu       sync.Mutex
	state    State
	failures int
	openedAt time.Time
}

func newBreaker(cfg BreakerConfig, stats *metrics.ResilienceStats) *Breaker {
	return &Breaker{cfg: cfg, stats: stats}
}

// Allow reports whether a call may proceed. An open breaker past its
// cooldown transitions to half-open and admits exactly one probe; every
// other caller is refused until the probe reports back.
func (b *Breaker) Allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case Closed:
		return true
	case Open:
		if time.Since(b.openedAt) >= b.cfg.Cooldown {
			b.state = HalfOpen
			b.stats.BreakerProbes.Add(1)
			return true
		}
		return false
	default: // HalfOpen: a probe is in flight
		return false
	}
}

// Available is a non-mutating routing hint: whether a call to this
// endpoint would currently be admitted. Unlike Allow it does not consume
// the half-open probe, so it is safe for ordering alternatives.
func (b *Breaker) Available() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case Closed:
		return true
	case Open:
		return time.Since(b.openedAt) >= b.cfg.Cooldown
	default:
		return false
	}
}

// Success reports a completed call, closing the breaker.
func (b *Breaker) Success() {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state != Closed {
		b.stats.BreakerResets.Add(1)
	}
	b.state = Closed
	b.failures = 0
}

// Failure reports a transient failure: it trips a closed breaker at the
// threshold and re-opens a half-open one whose probe failed.
func (b *Breaker) Failure() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.failures++
	switch b.state {
	case HalfOpen:
		b.state = Open
		b.openedAt = time.Now()
		b.stats.BreakerTrips.Add(1)
	case Closed:
		if b.failures >= b.cfg.Threshold {
			b.state = Open
			b.openedAt = time.Now()
			b.stats.BreakerTrips.Add(1)
		}
	}
	// Open: nothing to do — refusals are not new evidence.
}

// State reports the breaker's current state.
func (b *Breaker) State() State {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

func (b *Breaker) snapshot() (State, int) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state, b.failures
}

// Group manages one breaker per endpoint plus the shared retry policy
// and stats. Safe for concurrent use.
type Group struct {
	// Policy and Breaker are the defaulted configurations the group was
	// built with.
	Policy  Policy
	Breaker BreakerConfig
	// Stats receives every counter increment; exported through
	// internal/metrics.
	Stats *metrics.ResilienceStats
	// NonRetryable, when set, overrides the default error classifier
	// (wire remote errors are final, everything else transient).
	NonRetryable func(error) bool

	rngMu sync.Mutex
	rng   *rand.Rand

	mu       sync.Mutex
	breakers map[string]*Breaker
}

// NewGroup builds a group; zero-valued configs mean defaults, and a nil
// stats allocates a private counter set.
func NewGroup(p Policy, bc BreakerConfig, stats *metrics.ResilienceStats) *Group {
	if stats == nil {
		stats = &metrics.ResilienceStats{}
	}
	p = p.withDefaults()
	return &Group{
		Policy:   p,
		Breaker:  bc.withDefaults(),
		Stats:    stats,
		rng:      rand.New(rand.NewSource(p.Seed)),
		breakers: make(map[string]*Breaker),
	}
}

func (g *Group) breaker(endpoint string) *Breaker {
	g.mu.Lock()
	defer g.mu.Unlock()
	b, ok := g.breakers[endpoint]
	if !ok {
		b = newBreaker(g.Breaker, g.Stats)
		g.breakers[endpoint] = b
	}
	return b
}

// Available reports whether endpoint currently accepts traffic — a
// routing hint that does not consume the half-open probe.
func (g *Group) Available(endpoint string) bool {
	return g.breaker(endpoint).Available()
}

// State reports the endpoint's breaker state.
func (g *Group) State(endpoint string) State {
	return g.breaker(endpoint).State()
}

// Success and Failure feed an endpoint's breaker directly, for callers
// that run their own attempt loop (e.g. the mirror failover client).
func (g *Group) Success(endpoint string) { g.breaker(endpoint).Success() }

// Failure records one transient failure against the endpoint.
func (g *Group) Failure(endpoint string) {
	g.Stats.Failures.Add(1)
	g.breaker(endpoint).Failure()
}

// Backoff returns the jittered delay before retry number retry (0-based).
func (g *Group) Backoff(retry int) time.Duration {
	d := float64(g.Policy.BaseDelay) * math.Pow(g.Policy.Multiplier, float64(retry))
	if d > float64(g.Policy.MaxDelay) {
		d = float64(g.Policy.MaxDelay)
	}
	g.rngMu.Lock()
	f := g.rng.Float64()
	g.rngMu.Unlock()
	// Randomize away up to Jitter of the delay: [d*(1-Jitter), d].
	return time.Duration(d * (1 - g.Policy.Jitter*f))
}

// Sleep waits d, returning the context's error if it ends first.
func Sleep(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// transient reports whether err is worth retrying.
func (g *Group) transient(err error) bool {
	if errors.Is(err, context.Canceled) {
		return false // the caller gave up; do not hold the budget
	}
	if g.NonRetryable != nil {
		return !g.NonRetryable(err)
	}
	var remote *wire.RemoteError
	return !errors.As(err, &remote)
}

// Do invokes fn against endpoint under the group's retry policy and the
// endpoint's breaker: each attempt runs under its own PerAttempt timeout
// derived from ctx, transient failures back off and retry, application
// errors return immediately, and an open breaker short-circuits without
// touching the network.
func (g *Group) Do(ctx context.Context, endpoint string, fn func(context.Context) error) error {
	b := g.breaker(endpoint)
	var lastErr error
	for attempt := 0; attempt < g.Policy.MaxAttempts; attempt++ {
		if err := ctx.Err(); err != nil {
			if lastErr != nil {
				return lastErr
			}
			return err
		}
		if !b.Allow() {
			g.Stats.ShortCircuits.Add(1)
			if lastErr != nil {
				return lastErr
			}
			return fmt.Errorf("%w: %s", ErrOpenCircuit, endpoint)
		}
		g.Stats.Attempts.Add(1)
		actx, cancel := context.WithTimeout(ctx, g.Policy.PerAttempt)
		err := fn(actx)
		cancel()
		if err == nil {
			b.Success()
			return nil
		}
		lastErr = err
		// An overloaded shed is backoff-not-failure: the endpoint is alive
		// and explicitly asked us to come back later. Honor the hint (at
		// least the normal backoff) without feeding the breaker — tripping
		// it, or counting the shed as a failure, would turn load shedding
		// into an outage and the retries into the storm it sheds against.
		var ov *wire.OverloadedError
		if errors.As(err, &ov) {
			g.Stats.OverloadBackoffs.Add(1)
			if attempt < g.Policy.MaxAttempts-1 {
				g.Stats.Retries.Add(1)
				delay := g.Backoff(attempt)
				if ov.RetryAfter > delay {
					delay = ov.RetryAfter
				}
				if Sleep(ctx, delay) != nil {
					return lastErr
				}
			}
			continue
		}
		// A not-leader redirect is likewise not an endpoint failure: the
		// node is alive and mid-failover (or we raced an election). Retry
		// after backoff — leadership settles within a lease TTL — without
		// feeding the breaker; callers that can re-home (MirrorClient,
		// Registrar) follow the redirect themselves before this matters.
		var nl *wire.NotLeaderError
		if errors.As(err, &nl) {
			if attempt < g.Policy.MaxAttempts-1 {
				g.Stats.Retries.Add(1)
				if Sleep(ctx, g.Backoff(attempt)) != nil {
					return lastErr
				}
			}
			continue
		}
		if !g.transient(err) {
			return err
		}
		g.Stats.Failures.Add(1)
		// The caller's own context expiring mid-attempt says nothing about
		// endpoint health — the budget was the binding constraint, not the
		// endpoint. Feeding the breaker here would let a burst of
		// tight-budget callers trip it and turn their expiry into an
		// outage for everyone after them.
		if ctx.Err() == nil {
			b.Failure()
		}
		if attempt < g.Policy.MaxAttempts-1 {
			g.Stats.Retries.Add(1)
			if Sleep(ctx, g.Backoff(attempt)) != nil {
				return lastErr
			}
		}
	}
	return lastErr
}

// Snapshot exports the counters and per-endpoint breaker states through
// the metrics package.
func (g *Group) Snapshot() metrics.ResilienceSnapshot {
	g.mu.Lock()
	infos := make([]metrics.BreakerInfo, 0, len(g.breakers))
	for ep, b := range g.breakers {
		st, fails := b.snapshot()
		infos = append(infos, metrics.BreakerInfo{Endpoint: ep, State: st.String(), Failures: fails})
	}
	g.mu.Unlock()
	sort.Slice(infos, func(i, j int) bool { return infos[i].Endpoint < infos[j].Endpoint })
	return g.Stats.Snapshot(infos)
}
