package resilience

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"gupster/internal/metrics"
	"gupster/internal/wire"
)

var errBoom = errors.New("boom")

func fastGroup(stats *metrics.ResilienceStats) *Group {
	return NewGroup(
		Policy{MaxAttempts: 3, PerAttempt: 100 * time.Millisecond, BaseDelay: time.Millisecond, MaxDelay: 5 * time.Millisecond},
		BreakerConfig{Threshold: 3, Cooldown: 50 * time.Millisecond},
		stats,
	)
}

func TestDoRetriesTransientThenSucceeds(t *testing.T) {
	var stats metrics.ResilienceStats
	g := fastGroup(&stats)
	calls := 0
	err := g.Do(context.Background(), "ep", func(context.Context) error {
		calls++
		if calls < 3 {
			return errBoom
		}
		return nil
	})
	if err != nil {
		t.Fatalf("Do: %v", err)
	}
	if calls != 3 {
		t.Errorf("calls = %d, want 3", calls)
	}
	if got := stats.Retries.Load(); got != 2 {
		t.Errorf("retries = %d, want 2", got)
	}
	if st := g.State("ep"); st != Closed {
		t.Errorf("state after success = %v, want closed", st)
	}
}

func TestDoStopsOnRemoteError(t *testing.T) {
	g := fastGroup(nil)
	calls := 0
	want := &wire.RemoteError{Op: "fetch", Msg: "denied"}
	err := g.Do(context.Background(), "ep", func(context.Context) error {
		calls++
		return want
	})
	if !errors.Is(err, want) && err != want {
		t.Fatalf("Do = %v, want the remote error", err)
	}
	if calls != 1 {
		t.Errorf("calls = %d, want 1 (application errors are final)", calls)
	}
	// Application errors must not feed the breaker.
	if st := g.State("ep"); st != Closed {
		t.Errorf("state = %v, want closed", st)
	}
}

func TestBreakerTripShortCircuitAndRecover(t *testing.T) {
	var stats metrics.ResilienceStats
	g := fastGroup(&stats)
	alwaysFail := func(context.Context) error { return errBoom }

	// One Do (3 attempts at threshold 3) trips the breaker.
	if err := g.Do(context.Background(), "ep", alwaysFail); err == nil {
		t.Fatal("Do succeeded against a failing endpoint")
	}
	if st := g.State("ep"); st != Open {
		t.Fatalf("state after %d failures = %v, want open", stats.Failures.Load(), st)
	}
	if stats.BreakerTrips.Load() == 0 {
		t.Error("no breaker trip recorded")
	}

	// While open, calls short-circuit without touching the endpoint.
	calls := 0
	err := g.Do(context.Background(), "ep", func(context.Context) error { calls++; return nil })
	if !errors.Is(err, ErrOpenCircuit) {
		t.Fatalf("Do during cooldown = %v, want ErrOpenCircuit", err)
	}
	if calls != 0 {
		t.Errorf("endpoint touched %d times through an open breaker", calls)
	}
	if stats.ShortCircuits.Load() == 0 {
		t.Error("no short-circuit recorded")
	}
	if g.Available("ep") {
		t.Error("endpoint reported available during cooldown")
	}

	// After the cooldown, a successful probe closes the breaker.
	time.Sleep(60 * time.Millisecond)
	if !g.Available("ep") {
		t.Error("endpoint not available after cooldown")
	}
	if err := g.Do(context.Background(), "ep", func(context.Context) error { return nil }); err != nil {
		t.Fatalf("probe Do: %v", err)
	}
	if st := g.State("ep"); st != Closed {
		t.Errorf("state after probe = %v, want closed", st)
	}
	if stats.BreakerProbes.Load() == 0 || stats.BreakerResets.Load() == 0 {
		t.Errorf("probe/reset not recorded: probes=%d resets=%d",
			stats.BreakerProbes.Load(), stats.BreakerResets.Load())
	}
}

func TestHalfOpenAdmitsSingleProbe(t *testing.T) {
	b := newBreaker(BreakerConfig{Threshold: 1, Cooldown: 10 * time.Millisecond}, &metrics.ResilienceStats{})
	b.Failure()
	if b.State() != Open {
		t.Fatalf("state = %v, want open", b.State())
	}
	time.Sleep(15 * time.Millisecond)
	if !b.Allow() {
		t.Fatal("probe refused after cooldown")
	}
	if b.Allow() {
		t.Fatal("second caller admitted while probe in flight")
	}
	// A failed probe re-opens; a fresh cooldown is required.
	b.Failure()
	if b.State() != Open || b.Allow() {
		t.Fatal("failed probe did not re-open the breaker")
	}
}

func TestDoRespectsContextBudget(t *testing.T) {
	g := NewGroup(
		Policy{MaxAttempts: 10, PerAttempt: time.Second, BaseDelay: 30 * time.Millisecond, MaxDelay: 30 * time.Millisecond},
		BreakerConfig{Threshold: 100},
		nil,
	)
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	err := g.Do(ctx, "ep", func(context.Context) error { return errBoom })
	if err == nil {
		t.Fatal("Do succeeded")
	}
	if el := time.Since(start); el > 500*time.Millisecond {
		t.Errorf("Do ran %v past a 50ms budget", el)
	}
}

func TestDoPerAttemptTimeout(t *testing.T) {
	g := NewGroup(
		Policy{MaxAttempts: 2, PerAttempt: 20 * time.Millisecond, BaseDelay: time.Millisecond, MaxDelay: time.Millisecond},
		BreakerConfig{Threshold: 100},
		nil,
	)
	calls := 0
	start := time.Now()
	err := g.Do(context.Background(), "ep", func(actx context.Context) error {
		calls++
		<-actx.Done() // a hung endpoint: only the attempt timeout frees us
		return actx.Err()
	})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Do = %v, want deadline exceeded", err)
	}
	if calls != 2 {
		t.Errorf("calls = %d, want 2", calls)
	}
	if el := time.Since(start); el > time.Second {
		t.Errorf("two 20ms attempts took %v", el)
	}
}

func TestBackoffCappedAndJittered(t *testing.T) {
	g := NewGroup(Policy{BaseDelay: 10 * time.Millisecond, MaxDelay: 80 * time.Millisecond, Multiplier: 2, Jitter: 0.5}, BreakerConfig{}, nil)
	for retry := 0; retry < 10; retry++ {
		d := g.Backoff(retry)
		if d > 80*time.Millisecond {
			t.Errorf("backoff(%d) = %v exceeds cap", retry, d)
		}
		if d < 0 {
			t.Errorf("backoff(%d) = %v negative", retry, d)
		}
	}
	// Deep retries must still wait at least half the cap (jitter 0.5).
	if d := g.Backoff(9); d < 40*time.Millisecond {
		t.Errorf("backoff(9) = %v, want ≥ 40ms", d)
	}
}

// TestGroupConcurrent hammers one group from many goroutines while the
// endpoint flips between healthy and failing; run under -race it guards
// the breaker/retry state against data races.
func TestGroupConcurrent(t *testing.T) {
	g := NewGroup(
		Policy{MaxAttempts: 2, PerAttempt: 50 * time.Millisecond, BaseDelay: time.Microsecond, MaxDelay: 10 * time.Microsecond},
		BreakerConfig{Threshold: 3, Cooldown: time.Millisecond},
		nil,
	)
	var healthy atomic.Bool
	healthy.Store(true)
	stop := make(chan struct{})
	var flip sync.WaitGroup
	flip.Add(1)
	go func() {
		defer flip.Done()
		for {
			select {
			case <-stop:
				return
			case <-time.After(2 * time.Millisecond):
				healthy.Store(!healthy.Load())
			}
		}
	}()

	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ep := []string{"a", "b"}[i%2]
			for n := 0; n < 200; n++ {
				_ = g.Do(context.Background(), ep, func(context.Context) error {
					if healthy.Load() {
						return nil
					}
					return errBoom
				})
				_ = g.Available(ep)
			}
		}(i)
	}
	wg.Wait()
	close(stop)
	flip.Wait()

	snap := g.Snapshot()
	if snap.Attempts == 0 {
		t.Error("no attempts recorded")
	}
	if len(snap.Breakers) != 2 {
		t.Errorf("breakers in snapshot = %d, want 2", len(snap.Breakers))
	}
}

func TestSnapshotTableRenders(t *testing.T) {
	g := fastGroup(nil)
	_ = g.Do(context.Background(), "store-1:9999", func(context.Context) error { return errBoom })
	table := g.Snapshot().Table().String()
	for _, want := range []string{"retries", "breaker store-1:9999", "open"} {
		if !contains(table, want) {
			t.Errorf("snapshot table missing %q:\n%s", want, table)
		}
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

// An attempt that dies because the CALLER's context expired says nothing
// about the endpoint, and must not feed its breaker: a burst of
// tight-budget callers against a healthy-but-queued endpoint would
// otherwise trip it and turn their own expiry into an outage for
// everyone arriving after the budgets clear.
func TestCallerExpiryDoesNotFeedBreaker(t *testing.T) {
	g := NewGroup(
		Policy{MaxAttempts: 1, PerAttempt: time.Second},
		BreakerConfig{Threshold: 2, Cooldown: time.Minute},
		nil,
	)
	for i := 0; i < 5; i++ {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
		err := g.Do(ctx, "ep", func(actx context.Context) error {
			<-actx.Done() // endpoint alive but slower than the caller's budget
			return actx.Err()
		})
		cancel()
		if !errors.Is(err, context.DeadlineExceeded) {
			t.Fatalf("Do = %v, want the caller's deadline", err)
		}
	}
	if st := g.State("ep"); st != Closed {
		t.Fatalf("breaker state after caller-budget expiries = %v, want closed", st)
	}
	// A genuine endpoint failure under a live caller context still counts.
	for i := 0; i < 2; i++ {
		_ = g.Do(context.Background(), "ep", func(context.Context) error { return errBoom })
	}
	if st := g.State("ep"); st != Open {
		t.Fatalf("breaker state after real failures = %v, want open", st)
	}
}
