package workload

import (
	"context"
	"strings"
	"testing"
	"time"

	"gupster/internal/presence"
	"gupster/internal/reachme"
	"gupster/internal/schema"
	"gupster/internal/wire"
	"gupster/internal/xmltree"
	"gupster/internal/xpath"
)

func TestPopulationDeterminismAndSkew(t *testing.T) {
	p1 := NewPopulation(100, 1.2, 7)
	p2 := NewPopulation(100, 1.2, 7)
	for i := 0; i < 50; i++ {
		if p1.Next() != p2.Next() {
			t.Fatal("population not deterministic")
		}
	}
	// Zipf skew: the most popular user dominates.
	p := NewPopulation(1000, 1.2, 42)
	counts := map[string]int{}
	for i := 0; i < 10000; i++ {
		counts[p.Next()]++
	}
	if counts[UserID(0)] < counts[UserID(500)] {
		t.Errorf("no skew: head=%d mid=%d", counts[UserID(0)], counts[UserID(500)])
	}
	// Uniform draws cover broadly.
	seen := map[string]bool{}
	for i := 0; i < 2000; i++ {
		seen[p.Uniform()] = true
	}
	if len(seen) < 500 {
		t.Errorf("uniform coverage = %d users", len(seen))
	}
}

func TestGeneratorsAreSchemaValid(t *testing.T) {
	s := schema.GUP()
	rng := Rand(3)
	book := AddressBook(25, rng)
	if got := len(book.ChildrenNamed("item")); got != 25 {
		t.Errorf("book items = %d", got)
	}
	if err := s.ValidateComponent(xpath.MustParse("/user/address-book"), book); err != nil {
		t.Errorf("book: %v", err)
	}
	cal := Calendar(6, rng)
	if err := s.ValidateComponent(xpath.MustParse("/user/calendar"), cal); err != nil {
		t.Errorf("calendar: %v", err)
	}
	devs := Devices("u00001")
	if err := s.ValidateComponent(xpath.MustParse("/user/devices"), devs); err != nil {
		t.Errorf("devices: %v", err)
	}
	prefs := ReachMePreferences()
	if err := s.ValidateComponent(xpath.MustParse("/user/preferences"), prefs); err != nil {
		t.Errorf("preferences: %v", err)
	}
	sized := AddressBookOfSize(8192, rng)
	if sized.Size() < 8192 {
		t.Errorf("sized book = %d bytes", sized.Size())
	}
	if err := s.ValidateComponent(xpath.MustParse("/user/address-book"), sized); err != nil {
		t.Errorf("sized book: %v", err)
	}
}

func TestSplitAddressBook(t *testing.T) {
	book := AddressBook(30, Rand(5))
	personal, corporate := SplitAddressBook(book)
	total := len(personal.ChildrenNamed("item")) + len(corporate.ChildrenNamed("item"))
	if total != 30 {
		t.Errorf("split lost items: %d", total)
	}
	for _, it := range personal.ChildrenNamed("item") {
		if v, _ := it.Attr("type"); v != "personal" {
			t.Errorf("misfiled item: %s", it)
		}
	}
}

func TestTestbedEndToEnd(t *testing.T) {
	tb, err := NewTestbed(TestbedOptions{Users: 3, BookEntries: 12, Seed: 11, AllowRole: "reachme"})
	if err != nil {
		t.Fatalf("NewTestbed: %v", err)
	}
	defer tb.Close()

	if len(tb.Users) != 3 {
		t.Fatalf("users = %v", tb.Users)
	}
	user := tb.Users[0]
	cli, err := tb.Client(user, "self")
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	// Presence lives at the portal.
	doc, err := cli.Get(ctx, "/user[@id='"+user+"']/presence")
	if err != nil {
		t.Fatalf("presence: %v", err)
	}
	if st, _ := doc.Child("presence").Attr("status"); st != "available" {
		t.Errorf("presence = %s", doc)
	}
	// Location flowed from the HLR through OnMove.
	doc, err = cli.Get(ctx, "/user[@id='"+user+"']/location")
	if err != nil {
		t.Fatalf("location: %v", err)
	}
	if v, _ := doc.Child("location").Attr("onair"); v != "true" {
		t.Errorf("location = %s", doc)
	}
	// The address book merges portal (personal) and enterprise (corporate).
	doc, err = cli.Get(ctx, "/user[@id='"+user+"']/address-book")
	if err != nil {
		t.Fatalf("address-book: %v", err)
	}
	if got := len(doc.Child("address-book").ChildrenNamed("item")); got != 12 {
		t.Errorf("merged book = %d items", got)
	}
	// The devices component merges four stores.
	doc, err = cli.Get(ctx, "/user[@id='"+user+"']/devices")
	if err != nil {
		t.Fatalf("devices: %v", err)
	}
	networks := map[string]bool{}
	doc.Walk(func(n *xmltree.Node) bool {
		if n.Name == "device" {
			v, _ := n.Attr("network")
			networks[v] = true
		}
		return true
	})
	for _, want := range []string{"wireless", "pstn", "voip", "im"} {
		if !networks[want] {
			t.Errorf("devices missing network %q (have %v)", want, networks)
		}
	}
	// Self came through the LDAP adapter.
	doc, err = cli.Get(ctx, "/user[@id='"+user+"']/self")
	if err != nil {
		t.Fatalf("self: %v", err)
	}
	if !strings.Contains(doc.Child("self").ChildText("email"), "@enterprise.example") {
		t.Errorf("self = %s", doc)
	}
}

func TestTestbedReachMe(t *testing.T) {
	tb, err := NewTestbed(TestbedOptions{Users: 2, Seed: 13, AllowRole: "reachme"})
	if err != nil {
		t.Fatal(err)
	}
	defer tb.Close()
	user := tb.Users[0]
	cli, err := tb.Client("reachme-svc", "reachme")
	if err != nil {
		t.Fatal(err)
	}
	svc := &reachme.Service{Profile: reachme.GetterFunc(
		func(ctx context.Context, path string) (*xmltree.Node, error) {
			return cli.Get(ctx, path)
		})}
	// Monday 10:00: preference rule sends the call to the office line.
	at := time.Date(2026, 7, 6, 10, 0, 0, 0, time.UTC)
	d, err := svc.Decide(context.Background(), user, at)
	if err != nil {
		t.Fatalf("Decide: %v", err)
	}
	if len(d.Attempts) == 0 || d.Attempts[0].Device != "office" {
		t.Errorf("attempts = %+v", d.Attempts)
	}
	if d.Sources < 4 {
		t.Errorf("sources = %d", d.Sources)
	}
	// The decision must land far inside the paper's "few seconds" budget.
	if d.Elapsed > 2*time.Second {
		t.Errorf("decision took %v", d.Elapsed)
	}
}

func TestTestbedPresenceChurnInvalidatesAndNotifies(t *testing.T) {
	tb, err := NewTestbed(TestbedOptions{Users: 1, Seed: 17})
	if err != nil {
		t.Fatal(err)
	}
	defer tb.Close()
	user := tb.Users[0]
	tb.WatchPresence(user)

	cli, err := tb.Client(user, "self")
	if err != nil {
		t.Fatal(err)
	}
	got := make(chan wire.Notification, 4)
	if _, err := cli.Subscribe(context.Background(), "/user[@id='"+user+"']/presence", func(n wire.Notification) {
		got <- n
	}); err != nil {
		t.Fatal(err)
	}
	tb.Presence.Set(user, "busy", "in a meeting")
	select {
	case n := <-got:
		if !strings.Contains(n.XML, "busy") {
			t.Errorf("notification = %q", n.XML)
		}
	case <-time.After(3 * time.Second):
		t.Fatal("presence change never pushed")
	}
}

// The paper's "retrieve Alice's buddies who are available" (req 5) over the
// full converged stack: the buddy list lives at the portal, each buddy's
// presence is fetched under that buddy's own privacy shield.
func TestTestbedAvailableBuddies(t *testing.T) {
	tb, err := NewTestbed(TestbedOptions{Users: 5, Seed: 23, AllowRole: "reachme"})
	if err != nil {
		t.Fatal(err)
	}
	defer tb.Close()
	cli, err := tb.Client("reachme-svc", "reachme")
	if err != nil {
		t.Fatal(err)
	}
	getter := reachme.GetterFunc(func(ctx context.Context, path string) (*xmltree.Node, error) {
		return cli.Get(ctx, path)
	})
	user := tb.Users[0]
	// Make one buddy busy.
	busy := tb.Users[1]
	tb.WatchPresence(busy)
	tb.Presence.Set(busy, presence.Busy, "")

	available, all, err := reachme.AvailableBuddies(context.Background(), getter, user)
	if err != nil {
		t.Fatalf("AvailableBuddies: %v", err)
	}
	if len(all) != 3 {
		t.Fatalf("buddy list = %+v", all)
	}
	if len(available) != 2 {
		t.Errorf("available = %+v (all %+v)", available, all)
	}
	for _, b := range available {
		if b.Name == busy {
			t.Errorf("busy buddy reported available: %+v", b)
		}
	}
	// Without the reachme role the per-buddy shields deny presence, so no
	// buddy shows as available — per-owner control survives the join.
	stranger, err := tb.Client("eve", "third-party")
	if err != nil {
		t.Fatal(err)
	}
	strangerGetter := reachme.GetterFunc(func(ctx context.Context, path string) (*xmltree.Node, error) {
		return stranger.Get(ctx, path)
	})
	if _, _, err := reachme.AvailableBuddies(context.Background(), strangerGetter, user); err == nil {
		t.Error("stranger read the buddy list")
	}
}
