// Package workload provides the testbed and the synthetic workloads the
// paper's conclusion calls for ("the development of testbeds and
// benchmarks"): a deterministic profile-population generator with Zipf
// access skew, component generators (address books, calendars, devices),
// and ConvergedTestbed — an assembled converged network with the exact
// profile placement of the paper's Figure 5, all behind one GUPster MDM.
package workload

import (
	"fmt"
	"math/rand"

	"gupster/internal/xmltree"
)

// Rand returns a deterministic source for a benchmark.
func Rand(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}

// UserID names the i-th synthetic user.
func UserID(i int) string {
	return fmt.Sprintf("u%05d", i)
}

// Population is a synthetic user base with Zipf-skewed access.
type Population struct {
	Users []string
	zipf  *rand.Zipf
	rng   *rand.Rand
}

// NewPopulation builds n users whose access frequency follows a Zipf
// distribution with exponent s (s≈1 matches the classic web skew).
func NewPopulation(n int, s float64, seed int64) *Population {
	users := make([]string, n)
	for i := range users {
		users[i] = UserID(i)
	}
	rng := Rand(seed)
	if s <= 1 {
		s = 1.0001 // rand.Zipf requires s > 1
	}
	return &Population{
		Users: users,
		zipf:  rand.NewZipf(rng, s, 1, uint64(n-1)),
		rng:   rng,
	}
}

// Next draws a user according to the skew.
func (p *Population) Next() string {
	return p.Users[int(p.zipf.Uint64())]
}

// Uniform draws a user uniformly.
func (p *Population) Uniform() string {
	return p.Users[p.rng.Intn(len(p.Users))]
}

// firstNames and lastNames seed the synthetic contact data.
var firstNames = []string{
	"Arnaud", "Rick", "Daniel", "Ming", "Alice", "Bob", "Carol", "Dave",
	"Erin", "Frank", "Grace", "Heidi", "Ivan", "Judy", "Mallory", "Niaj",
}

var lastNames = []string{
	"Sahuguet", "Hull", "Lieuwen", "Xiong", "Smith", "Jones", "Chen",
	"Garcia", "Kumar", "Moreau", "Okafor", "Popov", "Sato", "Weber",
}

// ContactName generates the i-th deterministic contact name.
func ContactName(rng *rand.Rand) string {
	return firstNames[rng.Intn(len(firstNames))] + " " +
		lastNames[rng.Intn(len(lastNames))] + fmt.Sprintf(" %03d", rng.Intn(1000))
}

// AddressBook generates a schema-valid <address-book> with n items; about
// a third of the items are personal, the rest corporate (the Figure 9
// split).
func AddressBook(n int, rng *rand.Rand) *xmltree.Node {
	book := xmltree.New("address-book")
	seen := make(map[string]bool, n)
	for len(seen) < n {
		name := ContactName(rng)
		if seen[name] {
			continue
		}
		seen[name] = true
		kind := "corporate"
		if rng.Intn(3) == 0 {
			kind = "personal"
		}
		item := xmltree.New("item").SetAttr("name", name).SetAttr("type", kind)
		item.Add(xmltree.NewText("phone", fmt.Sprintf("908-%03d-%04d", rng.Intn(1000), rng.Intn(10000))))
		if rng.Intn(2) == 0 {
			item.Add(xmltree.NewText("email", fmt.Sprintf("%d@example.com", rng.Int63())))
		}
		book.Add(item)
	}
	return book
}

// SplitAddressBook partitions a book into its personal and corporate
// halves (each a standalone <address-book>).
func SplitAddressBook(book *xmltree.Node) (personal, corporate *xmltree.Node) {
	personal = xmltree.New("address-book")
	corporate = xmltree.New("address-book")
	for _, item := range book.ChildrenNamed("item") {
		if t, _ := item.Attr("type"); t == "personal" {
			personal.Add(item.Clone())
		} else {
			corporate.Add(item.Clone())
		}
	}
	return personal, corporate
}

// Calendar generates a schema-valid weekly <calendar> with n events.
func Calendar(n int, rng *rand.Rand) *xmltree.Node {
	days := []string{"Mon", "Tue", "Wed", "Thu", "Fri"}
	cal := xmltree.New("calendar")
	for i := 0; i < n; i++ {
		start := 8*60 + rng.Intn(9*60)
		dur := 30 + rng.Intn(90)
		ev := xmltree.New("event").
			SetAttr("id", fmt.Sprintf("e%03d", i)).
			SetAttr("day", days[rng.Intn(len(days))]).
			SetAttr("start", clock(start)).
			SetAttr("end", clock(start+dur))
		ev.Add(xmltree.NewText("title", fmt.Sprintf("meeting %d", i)))
		cal.Add(ev)
	}
	return cal
}

func clock(min int) string {
	if min >= 24*60 {
		min = 24*60 - 1
	}
	return fmt.Sprintf("%02d:%02d", min/60, min%60)
}

// Devices generates the converged device set of the paper's Example 2: an
// office PSTN line, a home PSTN line, a wireless cell, a VoIP softphone and
// an IM handle.
func Devices(user string) *xmltree.Node {
	devs := xmltree.New("devices")
	add := func(id, network, kind, number string) {
		d := xmltree.New("device").SetAttr("id", id).SetAttr("network", network).SetAttr("type", kind)
		d.Add(xmltree.NewText("number", number))
		devs.Add(d)
	}
	add("office", "pstn", "phone", "908-555-1"+suffix(user))
	add("home", "pstn", "phone", "908-555-2"+suffix(user))
	add("cell", "wireless", "phone", "908-555-3"+suffix(user))
	add("softphone", "voip", "softphone", "sip:"+user+"@voip.example.com")
	add("im", "im", "client", user+"@im.example.com")
	return devs
}

func suffix(user string) string {
	if len(user) >= 3 {
		return user[len(user)-3:]
	}
	return user
}

// ReachMePreferences generates the paper's example routing rules.
func ReachMePreferences() *xmltree.Node {
	prefs := xmltree.New("preferences")
	add := func(id, when, action string) {
		prefs.Add(xmltree.New("rule").SetAttr("id", id).SetAttr("when", when).SetAttr("action", action))
	}
	add("work-hours", "and(hours(09:00,18:00),weekday(Mon,Tue,Wed,Thu))", "call:office")
	add("commute", "or(hours(08:00,09:00),hours(18:00,19:00))", "call:cell")
	add("friday-wfh", "weekday(Fri)", "call:home")
	return prefs
}

// AddressBookOfSize generates a schema-valid <address-book> whose compact
// serialization is at least targetBytes long, for component-size sweeps.
func AddressBookOfSize(targetBytes int, rng *rand.Rand) *xmltree.Node {
	book := xmltree.New("address-book")
	size := len(book.String())
	for i := 0; size < targetBytes; i++ {
		item := xmltree.New("item").
			SetAttr("name", fmt.Sprintf("contact-%06d", i)).
			SetAttr("type", []string{"personal", "corporate"}[i%2])
		item.Add(xmltree.NewText("phone", fmt.Sprintf("908-%03d-%04d", rng.Intn(1000), rng.Intn(10000))))
		item.Add(xmltree.NewText("note", fmt.Sprintf("synthetic entry %d for size sweeps", i)))
		book.Add(item)
		size += len(item.String())
	}
	return book
}
