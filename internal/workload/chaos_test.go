package workload

import (
	"context"
	"fmt"
	"testing"
	"time"

	"gupster/internal/resilience"
)

// TestChaosTestbedFaultInjection runs chaos against the full converged
// testbed: with FaultInjection on, every store sits behind a fault proxy
// and referrals carry the proxy addresses, so blackouts and latency
// spikes hit the real query paths.
func TestChaosTestbedFaultInjection(t *testing.T) {
	tb, err := NewTestbed(TestbedOptions{Users: 3, FaultInjection: true, FaultSeed: 42})
	if err != nil {
		t.Fatal(err)
	}
	defer tb.Close()

	if len(tb.Faults) != 5 {
		t.Fatalf("fault proxies = %d, want one per store", len(tb.Faults))
	}
	user := tb.Users[0]
	cli, err := tb.Client(user, "self")
	if err != nil {
		t.Fatal(err)
	}
	cli.Resilience = resilience.NewGroup(
		resilience.Policy{MaxAttempts: 3, PerAttempt: 250 * time.Millisecond,
			BaseDelay: 5 * time.Millisecond, MaxDelay: 25 * time.Millisecond, Seed: 1},
		resilience.BreakerConfig{Threshold: 3, Cooldown: 150 * time.Millisecond},
		nil,
	)
	presPath := fmt.Sprintf("/user[@id='%s']/presence", user)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()

	// Healthy baseline through the proxies.
	if _, err := cli.Get(ctx, presPath); err != nil {
		t.Fatalf("resolve through healthy proxies: %v", err)
	}

	// Latency spike on the portal (sole presence holder) under the
	// per-attempt timeout: slower but still a success.
	tb.Faults[StorePortal].SetLatency(50*time.Millisecond, 10*time.Millisecond)
	start := time.Now()
	if _, err := cli.Get(ctx, presPath); err != nil {
		t.Fatalf("resolve under latency spike: %v", err)
	}
	if el := time.Since(start); el < 50*time.Millisecond {
		t.Errorf("latency injection had no effect: resolve in %v", el)
	}
	tb.Faults[StorePortal].SetLatency(0, 0)

	// Blackout the portal: presence has no replica in this testbed, so
	// resolves must fail fast (bounded by retries × per-attempt), not hang.
	tb.Faults[StorePortal].Blackout(true)
	start = time.Now()
	if _, err := cli.Get(ctx, presPath); err == nil {
		t.Fatal("resolve succeeded against a blacked-out sole replica")
	}
	if el := time.Since(start); el > 2*time.Second {
		t.Errorf("failed resolve took %v, want fast bounded failure", el)
	}
	if cli.Resilience.Stats.Retries.Load() == 0 {
		t.Error("no retries recorded against the blacked-out store")
	}

	// Other stores stay unaffected: the HLR still answers location.
	if _, err := cli.Get(ctx, fmt.Sprintf("/user[@id='%s']/location", user)); err != nil {
		t.Fatalf("location resolve during portal blackout: %v", err)
	}

	// Restore; once the breaker's cooldown lapses, presence resolves again.
	tb.Faults[StorePortal].Blackout(false)
	deadline := time.Now().Add(5 * time.Second)
	for {
		_, err = cli.Get(ctx, presPath)
		if err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("resolve never recovered after blackout lifted: %v", err)
		}
		time.Sleep(50 * time.Millisecond)
	}
}
