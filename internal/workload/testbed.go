package workload

import (
	"fmt"
	"math/rand"
	"time"

	"gupster/internal/adapter"
	"gupster/internal/calendarsvc"
	"gupster/internal/core"
	"gupster/internal/faultinject"
	"gupster/internal/coverage"
	"gupster/internal/hlr"
	"gupster/internal/policy"
	"gupster/internal/presence"
	"gupster/internal/pstn"
	"gupster/internal/schema"
	"gupster/internal/sipreg"
	"gupster/internal/store"
	"gupster/internal/token"
	"gupster/internal/wire"
	"gupster/internal/xmltree"
	"gupster/internal/xpath"
)

// Store identities of the converged testbed, one per row of the paper's
// Figure 5.
const (
	StoreHLR        = "gup.hlr.carrier.example" // wireless: HLR/VLR
	StorePSTN       = "gup.switch.pstn.example" // PSTN class-5 switch
	StoreSIP        = "gup.sip.voip.example"    // VoIP: SIP registrar
	StorePortal     = "gup.portal.example"      // web portal (Yahoo!-like)
	StoreEnterprise = "gup.enterprise.example"  // corporate intranet
)

// TestbedOptions sizes the converged testbed.
type TestbedOptions struct {
	// Users is the synthetic population size.
	Users int
	// BookEntries sizes each user's address book.
	BookEntries int
	// CacheEntries enables the MDM component cache.
	CacheEntries int
	// Seed drives all synthetic data.
	Seed int64
	// AllowRole, when non-empty, provisions a permit-all shield rule for
	// requesters asserting this role (e.g. the reach-me service account).
	AllowRole string
	// ExtraRulesPerUser pads each user's shield with inert rules to sweep
	// policy-set sizes (benchmark E3).
	ExtraRulesPerUser int
	// GrantTTL overrides the MDM's referral TTL.
	GrantTTL time.Duration
	// FaultInjection fronts every store with a faultinject.Proxy and
	// points coverage registrations at the proxy addresses, so chaos
	// scenarios (blackouts, latency spikes, connection drops) run as
	// ordinary Go tests against the full converged network.
	FaultInjection bool
	// FaultSeed seeds the proxies' deterministic RNGs.
	FaultSeed int64
}

// Testbed is a complete in-process converged network: all four networks'
// profile stores (Figure 5), the substrate simulators feeding them, and a
// GUPster MDM federating everything — every hop over real TCP.
type Testbed struct {
	MDM       *core.MDM
	MDMServer *core.Server
	Signer    *token.Signer

	HLR       *hlr.HLR
	Switch    *pstn.Switch
	Registrar *sipreg.Registrar
	Presence  *presence.Server
	Calendar  *calendarsvc.Service
	Directory *adapter.Directory // enterprise LDAP (self components)
	Contacts  *adapter.Table     // enterprise relational contacts

	Stores map[string]*store.Server
	// Faults holds the per-store fault proxies when the testbed was built
	// with FaultInjection; referrals carry the proxy addresses.
	Faults map[string]*faultinject.Proxy
	Users  []string

	clients []*core.Client
}

// pstnOperatorKey provisions the switch.
const pstnOperatorKey = "operator-key"

// NewTestbed assembles and seeds the converged network.
func NewTestbed(opts TestbedOptions) (*Testbed, error) {
	if opts.Users <= 0 {
		opts.Users = 10
	}
	if opts.BookEntries <= 0 {
		opts.BookEntries = 20
	}
	if opts.GrantTTL == 0 {
		opts.GrantTTL = time.Minute
	}
	rng := Rand(opts.Seed)

	signer := token.NewSigner([]byte("testbed-shared-key"))
	mdm := core.New(core.Config{
		Schema:       schema.GUP(),
		Signer:       signer,
		GrantTTL:     opts.GrantTTL,
		CacheEntries: opts.CacheEntries,
	})
	mdmSrv := core.NewServer(mdm)
	if err := mdmSrv.Start("127.0.0.1:0"); err != nil {
		return nil, err
	}

	tb := &Testbed{
		MDM:       mdm,
		MDMServer: mdmSrv,
		Signer:    signer,
		HLR:       hlr.New(),
		Switch:    pstn.NewSwitch("5ESS-sim", pstnOperatorKey),
		Registrar: sipreg.New(),
		Presence:  presence.New(),
		Calendar:  calendarsvc.New(),
		Directory: adapter.NewDirectory(),
		Contacts:  adapter.NewTable("contacts", "owner", "name", "kind", "phone", "email"),
		Stores:    make(map[string]*store.Server),
		Faults:    make(map[string]*faultinject.Proxy),
	}

	for i, id := range []string{StoreHLR, StorePSTN, StoreSIP, StorePortal, StoreEnterprise} {
		eng := store.NewEngine(id)
		eng.Schema = schema.GUP()
		srv := store.NewServer(eng, signer)
		if err := srv.Start("127.0.0.1:0"); err != nil {
			tb.Close()
			return nil, err
		}
		storeID := id
		eng.OnChange(func(user string, path xpath.Path, frag *xmltree.Node, version uint64) {
			mdm.HandleChanged(&wire.ChangedNotice{
				Store: storeID, User: user, Path: path.String(), XML: frag.String(), Version: version,
			})
		})
		tb.Stores[id] = srv
		if opts.FaultInjection {
			px, err := faultinject.NewProxy(srv.Addr(), opts.FaultSeed+int64(i))
			if err != nil {
				tb.Close()
				return nil, err
			}
			tb.Faults[id] = px
		}
	}

	if err := tb.registerCoverage(); err != nil {
		tb.Close()
		return nil, err
	}
	tb.wireSubstrates()
	if err := tb.seed(opts, rng); err != nil {
		tb.Close()
		return nil, err
	}
	return tb, nil
}

// registerCoverage announces the Figure 5 placement: unpinned paths cover
// every user of the respective network.
func (tb *Testbed) registerCoverage() error {
	regs := map[string][]string{
		StoreHLR: {
			"/user/location",
			"/user/devices/device[@network='wireless']",
		},
		StorePSTN: {
			"/user/devices/device[@network='pstn']",
			"/user/services",
		},
		StoreSIP: {
			"/user/devices/device[@network='voip']",
		},
		StorePortal: {
			"/user/presence",
			"/user/calendar",
			"/user/buddy-list",
			"/user/address-book/item[@type='personal']",
			"/user/devices/device[@network='im']",
		},
		StoreEnterprise: {
			"/user/self",
			"/user/preferences",
			"/user/address-book/item[@type='corporate']",
		},
	}
	for id, paths := range regs {
		for _, p := range paths {
			if err := tb.MDM.Register(coverage.StoreID(id), tb.StoreAddr(id), xpath.MustParse(p)); err != nil {
				return err
			}
		}
	}
	return nil
}

// StoreAddr is the address clients are referred to for a store — the
// fault proxy's when fault injection is on, the store's own otherwise.
func (tb *Testbed) StoreAddr(id string) string {
	if px, ok := tb.Faults[id]; ok {
		return px.Addr()
	}
	return tb.Stores[id].Addr()
}

// wireSubstrates connects the live simulators to their GUP stores so
// dynamic data (location, presence) flows into the federation.
func (tb *Testbed) wireSubstrates() {
	hlrEng := tb.Stores[StoreHLR].Engine
	tb.HLR.OnMove(func(imsi string, loc *xmltree.Node) {
		user := userFromIMSI(imsi)
		if loc != nil {
			_, _ = hlrEng.Put(user, xpath.MustParse(fmt.Sprintf("/user[@id='%s']/location", user)), loc)
		}
	})
}

// WatchPresence routes presence updates for a user into the portal store;
// callers that drive presence churn must enable it per user.
func (tb *Testbed) WatchPresence(user string) {
	portal := tb.Stores[StorePortal].Engine
	tb.Presence.Watch(user, func(st presence.State) {
		if comp := tb.Presence.Component(user); comp != nil {
			_, _ = portal.Put(user, xpath.MustParse(fmt.Sprintf("/user[@id='%s']/presence", user)), comp)
		}
	})
}

func imsiFor(user string) string   { return "imsi-" + user }
func msisdnFor(user string) string { return "msisdn-" + user }
func userFromIMSI(imsi string) string {
	if len(imsi) > 5 {
		return imsi[5:]
	}
	return imsi
}

// seed provisions every user across all networks, exercising the adapters:
// self components come out of the enterprise LDAP directory, corporate
// address-book halves out of the relational contacts table.
func (tb *Testbed) seed(opts TestbedOptions, rng *rand.Rand) error {
	tb.HLR.AddVLR("vlr-home", "msc-home", true)
	tb.HLR.AddVLR("vlr-roam", "msc-roam", false)

	hlrEng := tb.Stores[StoreHLR].Engine
	pstnEng := tb.Stores[StorePSTN].Engine
	sipEng := tb.Stores[StoreSIP].Engine
	portalEng := tb.Stores[StorePortal].Engine
	entEng := tb.Stores[StoreEnterprise].Engine

	for i := 0; i < opts.Users; i++ {
		user := UserID(i)
		tb.Users = append(tb.Users, user)
		up := func(section string) xpath.Path {
			return xpath.MustParse(fmt.Sprintf("/user[@id='%s']/%s", user, section))
		}
		devices := Devices(user)

		// Wireless: HLR subscriber, attach, device.
		if err := tb.HLR.AddSubscriber(hlr.Subscriber{
			IMSI: imsiFor(user), MSISDN: msisdnFor(user), AuthKey: "k-" + user,
			Services: hlr.Services{RoamingAllowed: true, CallerID: true},
		}); err != nil {
			return err
		}
		if _, err := tb.HLR.LocationUpdate(imsiFor(user), "vlr-home", fmt.Sprintf("cell-%04d", rng.Intn(10000))); err != nil {
			return err
		}
		wireless := xmltree.New("devices").Add(pick(devices, "wireless")...)
		if _, err := hlrEng.Put(user, up("devices"), wireless); err != nil {
			return err
		}

		// PSTN: lines for office and home, device + services exports.
		for _, dev := range pick(devices, "pstn") {
			if err := tb.Switch.ProvisionLine(pstnOperatorKey, dev.ChildText("number")); err != nil {
				return err
			}
		}
		pstnDevs := xmltree.New("devices").Add(pick(devices, "pstn")...)
		if _, err := pstnEng.Put(user, up("devices"), pstnDevs); err != nil {
			return err
		}
		if svc := tb.Switch.ServicesComponent(pick(devices, "pstn")[0].ChildText("number")); svc != nil {
			if _, err := pstnEng.Put(user, up("services"), svc); err != nil {
				return err
			}
		}

		// VoIP: SIP registration, device export.
		aor := "sip:" + user + "@voip.example.com"
		tb.Registrar.Register(aor, "sip:"+user+"@10.0.0."+fmt.Sprint(i%250+1), time.Hour, 1.0)
		voip := xmltree.New("devices").Add(pick(devices, "voip")...)
		if _, err := sipEng.Put(user, up("devices"), voip); err != nil {
			return err
		}

		// Portal: presence, calendar, personal address book, IM device.
		tb.Presence.Set(user, presence.Available, "")
		if comp := tb.Presence.Component(user); comp != nil {
			if _, err := portalEng.Put(user, up("presence"), comp); err != nil {
				return err
			}
		}
		cal := Calendar(3+rng.Intn(5), rng)
		if err := tb.Calendar.FromComponent(user, cal); err != nil {
			return err
		}
		if _, err := portalEng.Put(user, up("calendar"), tb.Calendar.Component(user)); err != nil {
			return err
		}
		book := AddressBook(opts.BookEntries, rng)
		personal, corporate := SplitAddressBook(book)
		if _, err := portalEng.Put(user, up("address-book"), personal); err != nil {
			return err
		}
		imDevs := xmltree.New("devices").Add(pick(devices, "im")...)
		if _, err := portalEng.Put(user, up("devices"), imDevs); err != nil {
			return err
		}
		// Buddy list: a few other members of the population.
		if opts.Users > 1 {
			buddies := xmltree.New("buddy-list")
			for b := 1; b <= 3 && b < opts.Users; b++ {
				buddy := UserID((i + b) % opts.Users)
				buddies.Add(xmltree.New("buddy").SetAttr("name", buddy).SetAttr("group", "friends"))
			}
			if _, err := portalEng.Put(user, up("buddy-list"), buddies); err != nil {
				return err
			}
		}

		// Enterprise: LDAP-backed self, relational corporate contacts,
		// reach-me preferences.
		dn := "uid=" + user + ",ou=people,o=enterprise"
		tb.Directory.Add(adapter.Entry{DN: dn, Attrs: map[string][]string{
			"objectClass":     {"inetOrgPerson"},
			"cn":              {ContactName(rng)},
			"mail":            {user + "@enterprise.example"},
			"telephoneNumber": {msisdnFor(user)},
			"o":               {"Enterprise Inc."},
		}})
		self, err := adapter.SelfFromLDAP(tb.Directory, dn)
		if err != nil {
			return err
		}
		if _, err := entEng.Put(user, up("self"), self); err != nil {
			return err
		}
		for _, item := range corporate.ChildrenNamed("item") {
			name, _ := item.Attr("name")
			if err := tb.Contacts.Insert(user, name, "corporate", item.ChildText("phone"), item.ChildText("email")); err != nil {
				return err
			}
		}
		if _, err := entEng.Put(user, up("address-book"), corporate); err != nil {
			return err
		}
		if _, err := entEng.Put(user, up("preferences"), ReachMePreferences()); err != nil {
			return err
		}

		// Privacy shield provisioning.
		if opts.AllowRole != "" {
			if err := tb.MDM.PAP.PutRule(user, policy.Rule{
				ID:     "allow-" + opts.AllowRole,
				Path:   xpath.MustParse(fmt.Sprintf("/user[@id='%s']", user)),
				Cond:   policy.RoleIs(opts.AllowRole),
				Effect: policy.Permit,
			}); err != nil {
				return err
			}
		}
		for r := 0; r < opts.ExtraRulesPerUser; r++ {
			if err := tb.MDM.PAP.PutRule(user, policy.Rule{
				ID:     fmt.Sprintf("pad-%03d", r),
				Path:   xpath.MustParse(fmt.Sprintf("/user[@id='%s']/buddy-list", user)),
				Cond:   policy.RequesterIs(fmt.Sprintf("nobody-%d", r)),
				Effect: policy.Permit,
			}); err != nil {
				return err
			}
		}
	}
	return nil
}

// pick clones the devices of one network out of a <devices> component.
func pick(devices *xmltree.Node, network string) []*xmltree.Node {
	var out []*xmltree.Node
	for _, d := range devices.ChildrenNamed("device") {
		if n, _ := d.Attr("network"); n == network {
			out = append(out, d.Clone())
		}
	}
	return out
}

// Client dials the MDM as the given identity; the testbed closes it.
func (tb *Testbed) Client(identity, role string) (*core.Client, error) {
	c, err := core.DialMDM(tb.MDMServer.Addr(), identity, role)
	if err != nil {
		return nil, err
	}
	tb.clients = append(tb.clients, c)
	return c, nil
}

// Close shuts every server and client down.
func (tb *Testbed) Close() {
	for _, c := range tb.clients {
		c.Close()
	}
	tb.clients = nil
	if tb.MDM != nil {
		tb.MDM.Close()
	}
	if tb.MDMServer != nil {
		tb.MDMServer.Close()
	}
	for _, px := range tb.Faults {
		px.Close()
	}
	for _, s := range tb.Stores {
		s.Close()
	}
}
