package bench

import (
	"path/filepath"
	"testing"
)

// Smoke: the E16 driver must run end-to-end at a tiny size, produce all
// four modes, coalesce on the chaining phase, and round-trip through the
// JSON report used by the CI regression gate.
func TestRunResolveReport(t *testing.T) {
	rep, err := RunResolveReport(ResolveOptions{Clients: 8, Rounds: 2, ChainRounds: 4, Batch: 4})
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"referral-serial", "referral-batched", "chaining-serial", "chaining-coalesced"} {
		m := rep.Mode(name)
		if m == nil {
			t.Fatalf("mode %q missing", name)
		}
		if m.Resolves == 0 || m.ResolvesPerSec <= 0 {
			t.Errorf("%s: no throughput recorded: %+v", name, m)
		}
	}
	if rep.Mode("chaining-serial").CoalesceHitRate != 0 {
		t.Errorf("baseline rig coalesced: hit rate %f", rep.Mode("chaining-serial").CoalesceHitRate)
	}
	if rep.Mode("chaining-coalesced").CoalesceHitRate <= 0 {
		t.Error("pipeline rig never coalesced on the hot chaining path")
	}
	if rep.SpeedupReferral <= 0 || rep.SpeedupChaining <= 0 {
		t.Errorf("speedups not computed: %+v", rep)
	}

	path := filepath.Join(t.TempDir(), "BENCH_resolve.json")
	if err := WriteResolveReport(rep, path); err != nil {
		t.Fatal(err)
	}
	back, err := ReadResolveReport(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Modes) != len(rep.Modes) || back.Clients != rep.Clients {
		t.Fatalf("report did not round-trip: %+v", back)
	}

	// The regression gate: the report passes against itself, fails against
	// an impossible baseline.
	if err := CheckResolveRegression(back, rep, 0.25, 0); err != nil {
		t.Errorf("self-comparison flagged a regression: %v", err)
	}
	tight := *back
	tight.Modes = append([]ResolveMode(nil), back.Modes...)
	for i := range tight.Modes {
		tight.Modes[i].P95Micros = 1 // everything regresses against a 1µs baseline
	}
	if err := CheckResolveRegression(&tight, rep, 0.25, 0); err == nil {
		t.Error("regression against an impossible baseline not detected")
	}
	if err := CheckResolveRegression(back, rep, 0.25, 1e9); err == nil {
		t.Error("unreachable speedup floor not enforced")
	}
}

func TestRunE16Table(t *testing.T) {
	runAndCheck(t, "E16", RunE16, "mode", "resolves/s", "coalesce hit")
}
