package bench

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"time"

	"gupster/internal/core"
	"gupster/internal/coverage"
	"gupster/internal/journal"
	"gupster/internal/metrics"
	"gupster/internal/policy"
	"gupster/internal/scenario"
	"gupster/internal/wire"
	"gupster/internal/xpath"
)

// E18 — crash recovery and liveness detection. Two claims to check:
//
//  1. A kill -9 of the MDM loses no meta-data: with -data-dir, restart
//     recovers every registration and shield rule from the journal, and
//     the first resolve succeeds without any store re-registering. The
//     benchmark measures that recovery path — journal replay, listener
//     up, first successful resolve — against directory size.
//  2. A dead store is quarantined out of plans within one lease TTL +
//     grace period. The benchmark measures the actual detection latency
//     from the last renewal to the first resolve that excludes the store.
//
// The crash is simulated in-process by abandoning the MDM without Close:
// group commit acknowledges an append only after fsync, so everything a
// caller ever saw acknowledged is on disk — exactly the kill -9 contract.

// RecoveryOptions tune the E18 run.
type RecoveryOptions struct {
	// Sizes are the directory sizes (registration counts) to measure; a
	// shield rule rides along for every 10th registration.
	Sizes []int
	// LeaseTTL/LeaseGrace parameterize the detection-latency phase.
	LeaseTTL   time.Duration
	LeaseGrace time.Duration
}

// RecoveryRun is one measured crash-recovery cycle.
type RecoveryRun struct {
	Registrations int `json:"registrations"`
	ShieldRules   int `json:"shield_rules"`
	// WALBytes is the on-disk journal size replayed at boot.
	WALBytes int64 `json:"wal_bytes"`
	// ReplayMillis: journal open + replay into the directory.
	// ListenMillis: TCP listener up. ResolveMillis: first successful
	// resolve (dial included). TotalMillis: kill→first-resolve.
	ReplayMillis  float64 `json:"replay_millis"`
	ListenMillis  float64 `json:"listen_millis"`
	ResolveMillis float64 `json:"resolve_millis"`
	TotalMillis   float64 `json:"total_millis"`
}

// RecoveryReport is the machine-readable E18 result.
type RecoveryReport struct {
	Runs []RecoveryRun `json:"runs"`
	// Lease-expiry detection: the claim is TTL+grace; Detect is measured
	// from the store's last renewal to the first plan that excludes it.
	LeaseTTLMillis   int64   `json:"lease_ttl_millis"`
	LeaseGraceMillis int64   `json:"lease_grace_millis"`
	ClaimMillis      int64   `json:"claim_millis"`
	DetectMillis     float64 `json:"detect_millis"`
}

// RunRecoveryReport executes E18.
func RunRecoveryReport(o RecoveryOptions) (*RecoveryReport, error) {
	if len(o.Sizes) == 0 {
		o.Sizes = []int{100, 1000, 5000}
	}
	if o.LeaseTTL == 0 {
		o.LeaseTTL = 150 * time.Millisecond
	}
	if o.LeaseGrace == 0 {
		o.LeaseGrace = o.LeaseTTL
	}
	rep := &RecoveryReport{
		LeaseTTLMillis:   o.LeaseTTL.Milliseconds(),
		LeaseGraceMillis: o.LeaseGrace.Milliseconds(),
		ClaimMillis:      (o.LeaseTTL + o.LeaseGrace).Milliseconds(),
	}
	for _, n := range o.Sizes {
		run, err := recoveryCycle(n)
		if err != nil {
			return nil, fmt.Errorf("E18 size %d: %w", n, err)
		}
		rep.Runs = append(rep.Runs, *run)
	}
	detect, err := leaseDetectLatency(o.LeaseTTL, o.LeaseGrace)
	if err != nil {
		return nil, fmt.Errorf("E18 lease detection: %w", err)
	}
	rep.DetectMillis = float64(detect.Microseconds()) / 1000
	return rep, nil
}

// recoveryCycle populates a durable directory with n registrations,
// crashes the MDM (abandon, no Close), and measures the restart path.
func recoveryCycle(n int) (*RecoveryRun, error) {
	dir, err := os.MkdirTemp("", "gupbench-e18-")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)

	// A bare spec: the recovery cycle measures the journal, not the
	// topology, so the MDM is configured exactly as a scenario rig's.
	mkMDM := func() *core.MDM {
		return core.New(scenario.MDMConfig(&scenario.RigSpec{}, scenario.NewSigner()))
	}

	// Populate. Real fsyncs: this is the durability whose recovery we
	// measure.
	m1 := mkMDM()
	if _, err := core.OpenDurable(m1, dir, journal.Options{CompactEvery: -1}); err != nil {
		return nil, err
	}
	shields := 0
	for i := 0; i < n; i++ {
		st := coverage.StoreID(fmt.Sprintf("store-%d", i%16))
		path := fmt.Sprintf("/user[@id='u%d']/presence", i)
		addr := fmt.Sprintf("127.0.0.1:%d", 7100+i%16)
		if err := m1.Register(st, addr, xpath.MustParse(path)); err != nil {
			return nil, err
		}
		if i%10 == 0 {
			shields++
			if err := m1.PutRule(fmt.Sprintf("u%d", i), &wire.PutRuleRequest{
				Owner: fmt.Sprintf("u%d", i),
				Rule: wire.RulePayload{
					ID: "r", Path: fmt.Sprintf("/user[@id='u%d']/presence", i),
					Effect: "permit", Cond: "role=friend",
				},
			}); err != nil {
				return nil, err
			}
		}
	}
	// Crash: abandon m1. No Close, no flush — whatever was acknowledged
	// is already fsynced, the rest is the torn tail recovery must drop.
	info, err := os.Stat(dir + "/wal.log")
	if err != nil {
		return nil, err
	}
	run := &RecoveryRun{Registrations: n, ShieldRules: shields, WALBytes: info.Size()}

	// Restart and measure.
	t0 := time.Now()
	m2 := mkMDM()
	defer m2.Close()
	if _, err := core.OpenDurable(m2, dir, journal.Options{CompactEvery: -1}); err != nil {
		return nil, err
	}
	tReplay := time.Now()
	srv := core.NewServer(m2)
	if err := srv.Start("127.0.0.1:0"); err != nil {
		return nil, err
	}
	defer srv.Close()
	tListen := time.Now()
	cli, err := core.DialMDM(srv.Addr(), "u1", "self")
	if err != nil {
		return nil, err
	}
	defer cli.Close()
	if _, err := cli.Resolve(context.Background(), &wire.ResolveRequest{
		Path:    "/user[@id='u1']/presence",
		Context: policy.Context{Requester: "u1", Role: "self"},
	}); err != nil {
		return nil, fmt.Errorf("first resolve after recovery: %w", err)
	}
	tResolve := time.Now()

	run.ReplayMillis = float64(tReplay.Sub(t0).Microseconds()) / 1000
	run.ListenMillis = float64(tListen.Sub(tReplay).Microseconds()) / 1000
	run.ResolveMillis = float64(tResolve.Sub(tListen).Microseconds()) / 1000
	run.TotalMillis = float64(tResolve.Sub(t0).Microseconds()) / 1000
	if m2.Registry.Len() != n {
		return nil, fmt.Errorf("recovered %d registrations, want %d", m2.Registry.Len(), n)
	}
	return run, nil
}

// leaseDetectLatency registers a store under a lease, lets it fall
// silent, and measures how long until plans exclude it.
func leaseDetectLatency(ttl, grace time.Duration) (time.Duration, error) {
	m := core.New(scenario.MDMConfig(&scenario.RigSpec{LeaseTTL: ttl, LeaseGrace: grace}, scenario.NewSigner()))
	defer m.Close()
	if err := m.Register("dead-store", "127.0.0.1:9", xpath.MustParse("/user[@id='u']/presence")); err != nil {
		return 0, err
	}
	silentSince := time.Now() // the registration is the last renewal
	req := &wire.ResolveRequest{
		Path:    "/user[@id='u']/presence",
		Context: policy.Context{Requester: "u"},
	}
	if _, err := m.Resolve(context.Background(), req); err != nil {
		return 0, fmt.Errorf("resolve while leased: %w", err)
	}
	deadline := silentSince.Add(ttl + grace + 5*time.Second)
	for {
		_, err := m.Resolve(context.Background(), req)
		if errors.Is(err, core.ErrNoCoverage) {
			// The quarantined store is out of the plan.
			return time.Since(silentSince), nil
		}
		if err != nil {
			return 0, err
		}
		if time.Now().After(deadline) {
			return 0, errors.New("store never quarantined")
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// Table renders the report in the EXPERIMENTS.md house style.
func (r *RecoveryReport) Table() *metrics.Table {
	t := metrics.NewTable(
		fmt.Sprintf("E18 — crash recovery (kill -9 → first resolve) and liveness detection (lease %dms + grace %dms: claim ≤%dms, measured %.0fms)",
			r.LeaseTTLMillis, r.LeaseGraceMillis, r.ClaimMillis, r.DetectMillis),
		"registrations", "shield rules", "wal bytes", "replay", "listen", "first resolve", "total")
	for _, run := range r.Runs {
		t.AddRow(run.Registrations, run.ShieldRules, run.WALBytes,
			fmt.Sprintf("%.1fms", run.ReplayMillis),
			fmt.Sprintf("%.1fms", run.ListenMillis),
			fmt.Sprintf("%.1fms", run.ResolveMillis),
			fmt.Sprintf("%.1fms", run.TotalMillis))
	}
	return t
}

// RunE18 adapts the recovery benchmark to the experiment-driver
// signature: Iters, when set, replaces the directory-size ladder (smoke
// runs stay small).
func RunE18(o Options) (*metrics.Table, error) {
	ro := RecoveryOptions{}
	if o.Iters > 0 {
		ro.Sizes = []int{o.Iters}
	}
	rep, err := RunRecoveryReport(ro)
	if err != nil {
		return nil, err
	}
	return rep.Table(), nil
}

// WriteRecoveryReport writes the report as indented JSON.
func WriteRecoveryReport(r *RecoveryReport, path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// CheckRecovery gates a CI run: recovery must actually have recovered
// (asserted inside recoveryCycle) and detection must not exceed the
// claimed TTL+grace by more than slack (1.0 = 2× the claim).
func CheckRecovery(r *RecoveryReport, slack float64) error {
	budget := float64(r.ClaimMillis) * (1 + slack)
	if r.DetectMillis > budget {
		return fmt.Errorf("lease detection took %.0fms, budget %.0fms (claim %dms + %.0f%% slack)",
			r.DetectMillis, budget, r.ClaimMillis, slack*100)
	}
	return nil
}
