package bench

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"gupster/internal/core"
	"gupster/internal/coverage"
	"gupster/internal/faultinject"
	"gupster/internal/metrics"
	"gupster/internal/overload"
	"gupster/internal/policy"
	"gupster/internal/resilience"
	"gupster/internal/schema"
	"gupster/internal/store"
	"gupster/internal/token"
	"gupster/internal/wire"
	"gupster/internal/workload"
	"gupster/internal/xpath"
)

// E19 — the overload-protection benchmark behind BENCH_overload.json: an
// MDM whose single store link is bandwidth-throttled (the choke point §5.3
// worries about) is driven open-loop at 0.8× and then 2× its measured
// capacity, once with admission control + deadline budgets on and once
// with both off (the pre-PR behavior: no budget stamped, nothing shed).
// Goodput is completions inside the per-request budget; the acceptance
// claim is that shedding retains most of the pre-saturation goodput at 2×
// load, while the unprotected server's goodput collapses as every request
// queues past its budget.

// OverloadOptions sizes the E19 testbed.
type OverloadOptions struct {
	// Conns is the number of client connections the open-loop load is
	// spread across; default 32.
	Conns int
	// Users is the number of distinct profile owners (distinct cache-proof
	// chaining targets); default 16.
	Users int
	// SizeBytes is the per-user address-book payload; default 2 KiB.
	SizeBytes int
	// BytesPerSec throttles the MDM→store link, setting the fabric's
	// capacity at roughly BytesPerSec/SizeBytes resolves/sec; default
	// 96 KiB/s.
	BytesPerSec int
	// PhaseDuration is the open-loop send window per phase; default 2s.
	PhaseDuration time.Duration
	// PresatFactor and SatFactor scale the calibrated capacity into the
	// two offered loads; defaults 0.8 and 2.0.
	PresatFactor float64
	SatFactor    float64
	// MaxConcurrency and QueueDepth configure the admission window in the
	// shedding-on modes; defaults 4 and 8.
	MaxConcurrency int
	QueueDepth     int
}

func (o OverloadOptions) withDefaults() OverloadOptions {
	if o.Conns <= 0 {
		o.Conns = 32
	}
	if o.Users <= 0 {
		o.Users = 16
	}
	if o.SizeBytes <= 0 {
		o.SizeBytes = 2 << 10
	}
	if o.BytesPerSec <= 0 {
		o.BytesPerSec = 96 << 10
	}
	if o.PhaseDuration <= 0 {
		// Long enough that the unprotected mode's early winners — requests
		// sent before the backlog outgrows the budget — are a small
		// fraction of the phase.
		o.PhaseDuration = 3 * time.Second
	}
	if o.PresatFactor <= 0 {
		o.PresatFactor = 0.8
	}
	if o.SatFactor <= 0 {
		o.SatFactor = 2.0
	}
	if o.MaxConcurrency <= 0 {
		o.MaxConcurrency = 4
	}
	if o.QueueDepth <= 0 {
		o.QueueDepth = 8
	}
	return o
}

// OverloadMode is one measured (protection, load) cell.
type OverloadMode struct {
	Name string `json:"name"`
	// Sent is the offered load of the phase.
	Sent int `json:"sent"`
	// InBudget counts completions inside the per-request budget — the
	// goodput numerator. Late completions are wasted work, not goodput.
	InBudget int `json:"in_budget"`
	// Shed counts explicit wire.TypeOverloaded refusals.
	Shed int `json:"shed"`
	// Expired counts requests that burned their whole budget (client-side
	// deadline) without an answer.
	Expired int `json:"expired"`
	// Errors counts everything else (should be ~0).
	Errors        int     `json:"errors"`
	GoodputPerSec float64 `json:"goodput_per_sec"`
	// P99Micros is the p99 latency of in-budget completions.
	P99Micros int64 `json:"p99_us"`
}

// OverloadReport is the machine-readable output of the E19 benchmark.
type OverloadReport struct {
	Conns      int `json:"conns"`
	Users      int `json:"users"`
	GOMAXPROCS int `json:"gomaxprocs"`
	// ServiceP50Micros is the calibrated unloaded service time; offered
	// rates and budgets derive from it, so the run is machine-independent.
	ServiceP50Micros int64 `json:"service_p50_us"`
	BudgetMillis     int64 `json:"budget_ms"`
	// RetentionOn is goodput at 2× saturation over pre-saturation goodput
	// with shedding on — the acceptance headline (≥ 0.8 claimed).
	RetentionOn float64 `json:"retention_on"`
	// RetentionOff is the same ratio with protection off — the measured
	// collapse.
	RetentionOff float64        `json:"retention_off"`
	Modes        []OverloadMode `json:"modes"`
}

// Mode returns the named mode, or nil.
func (r *OverloadReport) Mode(name string) *OverloadMode {
	for i := range r.Modes {
		if r.Modes[i].Name == name {
			return &r.Modes[i]
		}
	}
	return nil
}

// overloadRig is one MDM + one throttled store + a fan of client
// connections.
type overloadRig struct {
	mdm   *core.MDM
	srv   *core.Server
	st    *store.Server
	proxy *faultinject.Proxy
	conns []*wire.Client
	users []string
}

func newOverloadRig(o OverloadOptions, shedding bool) (*overloadRig, error) {
	signer := token.NewSigner(benchKey)
	cfg := core.Config{
		Schema: schema.GUP(), Signer: signer, GrantTTL: time.Minute,
		// One attempt, no cache, no coalescing: every resolve is one real
		// fetch over the choke link, so offered load is what the link sees.
		DisableCoalescing: true,
		Retry:             resilience.Policy{MaxAttempts: 1, PerAttempt: 60 * time.Second},
	}
	if shedding {
		cfg.Overload = overload.Config{
			MaxConcurrency: o.MaxConcurrency,
			QueueDepth:     o.QueueDepth,
		}
	}
	mdm := core.New(cfg)
	srv := core.NewServer(mdm)
	if err := srv.Start("127.0.0.1:0"); err != nil {
		return nil, err
	}
	r := &overloadRig{mdm: mdm, srv: srv}

	eng := store.NewEngine("store-0")
	st := store.NewServer(eng, signer)
	if err := st.Start("127.0.0.1:0"); err != nil {
		r.close()
		return nil, err
	}
	r.st = st
	proxy, err := faultinject.NewProxy(st.Addr(), 0)
	if err != nil {
		r.close()
		return nil, err
	}
	proxy.SetBandwidth(o.BytesPerSec)
	r.proxy = proxy

	for i := 0; i < o.Users; i++ {
		user := fmt.Sprintf("u%d", i)
		book := workload.AddressBookOfSize(o.SizeBytes, workload.Rand(int64(i+1)))
		p := xpath.MustParse(fmt.Sprintf("/user[@id='%s']/address-book", user))
		if _, err := eng.Put(user, p, book); err != nil {
			r.close()
			return nil, err
		}
		if err := mdm.Register(coverage.StoreID(eng.ID()), proxy.Addr(), p); err != nil {
			r.close()
			return nil, err
		}
		r.users = append(r.users, user)
	}

	for i := 0; i < o.Conns; i++ {
		c, err := wire.Dial(srv.Addr())
		if err != nil {
			r.close()
			return nil, err
		}
		r.conns = append(r.conns, c)
	}
	return r, nil
}

func (r *overloadRig) close() {
	for _, c := range r.conns {
		c.Close()
	}
	if r.mdm != nil {
		r.mdm.Close()
	}
	if r.srv != nil {
		r.srv.Close()
	}
	if r.proxy != nil {
		r.proxy.Close()
	}
	if r.st != nil {
		r.st.Close()
	}
}

// chainOnce issues one chaining resolve for user over conn.
func (r *overloadRig) chainOnce(ctx context.Context, conn *wire.Client, user string) error {
	var resp wire.ResolveResponse
	return conn.Call(ctx, wire.TypeResolve, &wire.ResolveRequest{
		Path:    fmt.Sprintf("/user[@id='%s']/address-book", user),
		Context: policy.Context{Requester: user},
		Verb:    token.VerbFetch,
		Pattern: wire.PatternChaining,
	}, &resp)
}

// calibrate measures the unloaded sequential service time (p50 of iters
// chaining resolves) — the unit every rate and budget derives from.
func (r *overloadRig) calibrate(iters int) (time.Duration, error) {
	var samples []time.Duration
	for i := 0; i < iters; i++ {
		t0 := time.Now()
		if err := r.chainOnce(context.Background(), r.conns[0], r.users[i%len(r.users)]); err != nil {
			return 0, err
		}
		samples = append(samples, time.Since(t0))
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	return samples[len(samples)/2], nil
}

// runPhase offers ratePerSec chaining resolves open-loop for
// o.PhaseDuration, spread round-robin over the rig's connections, then
// waits for every outstanding request. stamped=true gives each request a
// context deadline of budget (propagated on the wire as its remaining
// budget); stamped=false emulates a pre-budget client — no deadline is
// stamped, and a completion is goodput only if it happened to finish
// inside budget by the wall clock.
func (r *overloadRig) runPhase(name string, ratePerSec float64, phase, budget time.Duration, stamped bool) (OverloadMode, error) {
	n := int(ratePerSec * phase.Seconds())
	if n < 1 {
		n = 1
	}
	interval := phase / time.Duration(n)
	h := metrics.NewHistogram()

	var wg sync.WaitGroup
	var mu sync.Mutex
	mode := OverloadMode{Name: name, Sent: n}
	var firstErr error

	start := time.Now()
	for i := 0; i < n; i++ {
		if d := time.Until(start.Add(time.Duration(i) * interval)); d > 0 {
			time.Sleep(d)
		}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ctx := context.Background()
			cancel := func() {}
			if stamped {
				ctx, cancel = context.WithTimeout(ctx, budget)
			} else {
				// Unstamped requests still need a liveness bound so the
				// phase terminates; 60s never binds in practice.
				ctx, cancel = context.WithTimeout(ctx, 60*time.Second)
			}
			defer cancel()
			t0 := time.Now()
			err := r.chainOnce(ctx, r.conns[i%len(r.conns)], r.users[i%len(r.users)])
			elapsed := time.Since(t0)
			var ov *wire.OverloadedError
			mu.Lock()
			defer mu.Unlock()
			switch {
			case err == nil && elapsed <= budget:
				mode.InBudget++
				h.Record(elapsed)
			case err == nil:
				mode.Expired++ // completed, but past its budget: wasted work
			case errors.As(err, &ov):
				mode.Shed++
			case errors.Is(err, context.DeadlineExceeded):
				mode.Expired++
			case isRemoteExpiry(err):
				// The budget ran out server-side mid-chain; the store's
				// refusal races the client's own deadline, and either way
				// it is the same outcome: budget burned, no answer.
				mode.Expired++
			default:
				mode.Errors++
				if firstErr == nil {
					firstErr = err
				}
			}
		}(i)
	}
	wg.Wait()
	if mode.InBudget+mode.Shed+mode.Expired == 0 && firstErr != nil {
		return mode, fmt.Errorf("phase %s produced only errors: %w", name, firstErr)
	}
	mode.GoodputPerSec = float64(mode.InBudget) / phase.Seconds()
	mode.P99Micros = h.Percentile(99).Microseconds()
	return mode, nil
}

// isRemoteExpiry reports whether err is a remote refusal caused by the
// propagated budget expiring on a downstream hop.
func isRemoteExpiry(err error) bool {
	var re *wire.RemoteError
	return errors.As(err, &re) && strings.Contains(re.Msg, "deadline exceeded")
}

// RunOverloadReport executes the E19 benchmark and returns the report.
func RunOverloadReport(o OverloadOptions) (*OverloadReport, error) {
	o = o.withDefaults()
	report := &OverloadReport{Conns: o.Conns, Users: o.Users, GOMAXPROCS: runtime.GOMAXPROCS(0)}

	// Calibrate on an unprotected rig: S ≈ one resolve's unloaded service
	// time, so capacity ≈ 1/S and the budget (10×S, clamped) gives every
	// request an order of magnitude of slack before it counts as doomed.
	rigOff, err := newOverloadRig(o, false)
	if err != nil {
		return nil, err
	}
	s, err := rigOff.calibrate(15)
	if err != nil {
		rigOff.close()
		return nil, err
	}
	budget := 10 * s
	if budget < 100*time.Millisecond {
		budget = 100 * time.Millisecond
	}
	if budget > time.Second {
		budget = time.Second
	}
	report.ServiceP50Micros = s.Microseconds()
	report.BudgetMillis = budget.Milliseconds()
	capacity := 1 / s.Seconds()
	presat := o.PresatFactor * capacity
	sat := o.SatFactor * capacity

	// Unprotected first (the calibration rig is already unprotected).
	for _, ph := range []struct {
		name string
		rate float64
	}{{"shed-off-presat", presat}, {"shed-off-2x", sat}} {
		m, err := rigOff.runPhase(ph.name, ph.rate, o.PhaseDuration, budget, false)
		if err != nil {
			rigOff.close()
			return nil, err
		}
		report.Modes = append(report.Modes, m)
	}
	rigOff.close()

	// Protected: admission on, budgets stamped. A short calibration warms
	// the admission controller's p50 window so expired-on-arrival has a
	// baseline from the start, as a long-running server would.
	rigOn, err := newOverloadRig(o, true)
	if err != nil {
		return nil, err
	}
	if _, err := rigOn.calibrate(15); err != nil {
		rigOn.close()
		return nil, err
	}
	for _, ph := range []struct {
		name string
		rate float64
	}{{"shed-on-presat", presat}, {"shed-on-2x", sat}} {
		m, err := rigOn.runPhase(ph.name, ph.rate, o.PhaseDuration, budget, true)
		if err != nil {
			rigOn.close()
			return nil, err
		}
		report.Modes = append(report.Modes, m)
	}
	rigOn.close()

	if pre, sat := report.Mode("shed-on-presat"), report.Mode("shed-on-2x"); pre != nil && sat != nil && pre.GoodputPerSec > 0 {
		report.RetentionOn = sat.GoodputPerSec / pre.GoodputPerSec
	}
	if pre, sat := report.Mode("shed-off-presat"), report.Mode("shed-off-2x"); pre != nil && sat != nil && pre.GoodputPerSec > 0 {
		report.RetentionOff = sat.GoodputPerSec / pre.GoodputPerSec
	}
	return report, nil
}

// Table renders the report in the EXPERIMENTS.md house style.
func (r *OverloadReport) Table() *metrics.Table {
	t := metrics.NewTable(
		fmt.Sprintf("E19 — overload: svc p50 %s, budget %dms (goodput retention at 2×: shedding %.2f, unprotected %.2f)",
			time.Duration(r.ServiceP50Micros)*time.Microsecond, r.BudgetMillis, r.RetentionOn, r.RetentionOff),
		"mode", "sent", "in-budget", "shed", "expired", "errors", "goodput/s", "p99")
	for _, m := range r.Modes {
		t.AddRow(m.Name, m.Sent, m.InBudget, m.Shed, m.Expired, m.Errors,
			fmt.Sprintf("%.1f", m.GoodputPerSec),
			time.Duration(m.P99Micros)*time.Microsecond)
	}
	return t
}

// RunE19 adapts the overload benchmark to the experiment-driver signature.
func RunE19(o Options) (*metrics.Table, error) {
	oo := OverloadOptions{}
	if o.Iters > 0 {
		// Smoke runs shrink the send window, not the topology.
		oo.PhaseDuration = time.Duration(o.Iters) * 100 * time.Millisecond
	}
	rep, err := RunOverloadReport(oo)
	if err != nil {
		return nil, err
	}
	return rep.Table(), nil
}

// WriteOverloadReport writes the report as indented JSON.
func WriteOverloadReport(r *OverloadReport, path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// ReadOverloadReport loads a committed report.
func ReadOverloadReport(path string) (*OverloadReport, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r OverloadReport
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, err
	}
	return &r, nil
}

// CheckOverloadRegression gates a fresh run: every mode of the committed
// baseline must be present, the shedding modes must actually shed at 2×,
// and the within-run retention ratios — machine-independent, both phases
// having run on the same host against the same calibration — must show
// protection working (RetentionOn ≥ minOn) and the unprotected collapse
// it exists to prevent (RetentionOff ≤ maxOff). Returns nil when
// acceptable.
func CheckOverloadRegression(baseline, current *OverloadReport, minOn, maxOff float64) error {
	var problems []string
	if baseline != nil {
		for _, bm := range baseline.Modes {
			if current.Mode(bm.Name) == nil {
				problems = append(problems, fmt.Sprintf("mode %q missing from current run", bm.Name))
			}
		}
	}
	if m := current.Mode("shed-on-2x"); m != nil && m.Shed == 0 {
		problems = append(problems, "shed-on-2x shed nothing at 2× saturation")
	}
	if minOn > 0 && current.RetentionOn < minOn {
		problems = append(problems, fmt.Sprintf(
			"goodput retention with shedding %.2f below required %.2f", current.RetentionOn, minOn))
	}
	if maxOff > 0 && current.RetentionOff > maxOff {
		problems = append(problems, fmt.Sprintf(
			"unprotected retention %.2f above %.2f — overload no longer collapses the baseline, re-examine the testbed",
			current.RetentionOff, maxOff))
	}
	if len(problems) == 0 {
		return nil
	}
	msg := "overload regression:"
	for _, p := range problems {
		msg += "\n  - " + p
	}
	return fmt.Errorf("%s", msg)
}
