package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"gupster/internal/metrics"
	"gupster/internal/scenario"
)

// E19 — the overload-protection benchmark behind BENCH_overload.json: an
// MDM whose single store link is bandwidth-throttled (the choke point §5.3
// worries about) is driven open-loop at 0.8× and then 2× its measured
// capacity, once with admission control + deadline budgets on and once
// with both off (the pre-PR behavior: no budget stamped, nothing shed).
// Goodput is completions inside the per-request budget; the acceptance
// claim is that shedding retains most of the pre-saturation goodput at 2×
// load, while the unprotected server's goodput collapses as every request
// queues past its budget. The rigs, calibration and open-loop phase
// runner live in internal/scenario (e19_overload.yaml is the same
// experiment in declarative form); this file keeps the flag surface, the
// report format and the CI gate.

// OverloadOptions sizes the E19 testbed.
type OverloadOptions struct {
	// Conns is the number of client connections the open-loop load is
	// spread across; default 32.
	Conns int
	// Users is the number of distinct profile owners (distinct cache-proof
	// chaining targets); default 16.
	Users int
	// SizeBytes is the per-user address-book payload; default 2 KiB.
	SizeBytes int
	// BytesPerSec throttles the MDM→store link, setting the fabric's
	// capacity at roughly BytesPerSec/SizeBytes resolves/sec; default
	// 96 KiB/s.
	BytesPerSec int
	// PhaseDuration is the open-loop send window per phase; default 2s.
	PhaseDuration time.Duration
	// PresatFactor and SatFactor scale the calibrated capacity into the
	// two offered loads; defaults 0.8 and 2.0.
	PresatFactor float64
	SatFactor    float64
	// MaxConcurrency and QueueDepth configure the admission window in the
	// shedding-on modes; defaults 4 and 8.
	MaxConcurrency int
	QueueDepth     int
}

func (o OverloadOptions) withDefaults() OverloadOptions {
	if o.Conns <= 0 {
		o.Conns = 32
	}
	if o.Users <= 0 {
		o.Users = 16
	}
	if o.SizeBytes <= 0 {
		o.SizeBytes = 2 << 10
	}
	if o.BytesPerSec <= 0 {
		o.BytesPerSec = 96 << 10
	}
	if o.PhaseDuration <= 0 {
		// Long enough that the unprotected mode's early winners — requests
		// sent before the backlog outgrows the budget — are a small
		// fraction of the phase.
		o.PhaseDuration = 3 * time.Second
	}
	if o.PresatFactor <= 0 {
		o.PresatFactor = 0.8
	}
	if o.SatFactor <= 0 {
		o.SatFactor = 2.0
	}
	if o.MaxConcurrency <= 0 {
		o.MaxConcurrency = 4
	}
	if o.QueueDepth <= 0 {
		o.QueueDepth = 8
	}
	return o
}

// OverloadMode is one measured (protection, load) cell.
type OverloadMode struct {
	Name string `json:"name"`
	// Sent is the offered load of the phase.
	Sent int `json:"sent"`
	// InBudget counts completions inside the per-request budget — the
	// goodput numerator. Late completions are wasted work, not goodput.
	InBudget int `json:"in_budget"`
	// Shed counts explicit wire.TypeOverloaded refusals.
	Shed int `json:"shed"`
	// Expired counts requests that burned their whole budget (client-side
	// deadline) without an answer.
	Expired int `json:"expired"`
	// Errors counts everything else (should be ~0).
	Errors        int     `json:"errors"`
	GoodputPerSec float64 `json:"goodput_per_sec"`
	// P99Micros is the p99 latency of in-budget completions.
	P99Micros int64 `json:"p99_us"`
}

// OverloadReport is the machine-readable output of the E19 benchmark.
type OverloadReport struct {
	Conns      int `json:"conns"`
	Users      int `json:"users"`
	GOMAXPROCS int `json:"gomaxprocs"`
	// ServiceP50Micros is the calibrated unloaded service time; offered
	// rates and budgets derive from it, so the run is machine-independent.
	ServiceP50Micros int64 `json:"service_p50_us"`
	BudgetMillis     int64 `json:"budget_ms"`
	// RetentionOn is goodput at 2× saturation over pre-saturation goodput
	// with shedding on — the acceptance headline (≥ 0.8 claimed).
	RetentionOn float64 `json:"retention_on"`
	// RetentionOff is the same ratio with protection off — the measured
	// collapse.
	RetentionOff float64        `json:"retention_off"`
	Modes        []OverloadMode `json:"modes"`
}

// Mode returns the named mode, or nil.
func (r *OverloadReport) Mode(name string) *OverloadMode {
	for i := range r.Modes {
		if r.Modes[i].Name == name {
			return &r.Modes[i]
		}
	}
	return nil
}

// overloadScenario expresses the E19 experiment as a scenario: two
// single-store sharded rigs behind a bandwidth choke, calibrated once,
// then driven open-loop at the two factor rates. The unprotected rig's
// phases are unstamped — no deadline on the wire, the pre-budget client.
func overloadScenario(o OverloadOptions) *scenario.Scenario {
	rig := func(name string, shedding bool) scenario.RigSpec {
		spec := scenario.RigSpec{
			Name:              name,
			Layout:            scenario.LayoutSharded,
			Stores:            1,
			Users:             o.Users,
			SizeBytes:         o.SizeBytes,
			DisableCoalescing: true,
			RetryAttempts:     1,
			PerAttempt:        60 * time.Second,
			Links:             scenario.LinkSet{Stores: &scenario.LinkSpec{Bandwidth: o.BytesPerSec}},
		}
		if shedding {
			spec.MaxConcurrency = o.MaxConcurrency
			spec.QueueDepth = o.QueueDepth
		}
		return spec
	}
	chain := []scenario.MixEntry{{Verb: scenario.VerbResolve, Pattern: "chaining", Users: scenario.UsersRoundRobin}}
	unstamped := false
	load := func(name, rigName string, factor float64, stamped bool) scenario.Phase {
		p := scenario.Phase{
			Name: name, Rig: rigName,
			Rate:     scenario.Rate{Factor: factor},
			Duration: o.PhaseDuration,
			Conns:    o.Conns,
			Budget:   scenario.Budget{Factor: 10},
			Mix:      chain,
		}
		if !stamped {
			p.Stamped = &unstamped
		}
		return p
	}
	return &scenario.Scenario{
		Name: "e19_overload",
		Seed: 19,
		Topology: scenario.Topology{Rigs: []scenario.RigSpec{
			rig("shed-off", false),
			rig("shed-on", true),
		}},
		Phases: []scenario.Phase{
			{Name: "calibrate-off", Rig: "shed-off", Calibrate: 15},
			load("shed-off-presat", "shed-off", o.PresatFactor, false),
			load("shed-off-2x", "shed-off", o.SatFactor, false),
			{Name: "calibrate-on", Rig: "shed-on", Calibrate: 15},
			load("shed-on-presat", "shed-on", o.PresatFactor, true),
			load("shed-on-2x", "shed-on", o.SatFactor, true),
		},
	}
}

// RunOverloadReport executes the E19 benchmark through the scenario
// engine and returns the report.
func RunOverloadReport(o OverloadOptions) (*OverloadReport, error) {
	o = o.withDefaults()
	run, err := scenario.Run(overloadScenario(o), scenario.RunOptions{})
	if err != nil {
		return nil, err
	}
	report := &OverloadReport{
		Conns: o.Conns, Users: o.Users, GOMAXPROCS: runtime.GOMAXPROCS(0),
		ServiceP50Micros: run.ServiceP50Micros,
		BudgetMillis:     run.BudgetMillis,
	}
	for _, p := range run.Phases {
		if p.Kind == "calibrate" {
			continue
		}
		report.Modes = append(report.Modes, OverloadMode{
			Name:          p.Name,
			Sent:          p.Sent,
			InBudget:      p.InBudget,
			Shed:          p.Shed,
			Expired:       p.Expired,
			Errors:        p.Errors,
			GoodputPerSec: p.GoodputPerSec,
			P99Micros:     p.P99Micros,
		})
	}
	if pre, sat := report.Mode("shed-on-presat"), report.Mode("shed-on-2x"); pre != nil && sat != nil && pre.GoodputPerSec > 0 {
		report.RetentionOn = sat.GoodputPerSec / pre.GoodputPerSec
	}
	if pre, sat := report.Mode("shed-off-presat"), report.Mode("shed-off-2x"); pre != nil && sat != nil && pre.GoodputPerSec > 0 {
		report.RetentionOff = sat.GoodputPerSec / pre.GoodputPerSec
	}
	return report, nil
}

// Table renders the report in the EXPERIMENTS.md house style.
func (r *OverloadReport) Table() *metrics.Table {
	t := metrics.NewTable(
		fmt.Sprintf("E19 — overload: svc p50 %s, budget %dms (goodput retention at 2×: shedding %.2f, unprotected %.2f)",
			time.Duration(r.ServiceP50Micros)*time.Microsecond, r.BudgetMillis, r.RetentionOn, r.RetentionOff),
		"mode", "sent", "in-budget", "shed", "expired", "errors", "goodput/s", "p99")
	for _, m := range r.Modes {
		t.AddRow(m.Name, m.Sent, m.InBudget, m.Shed, m.Expired, m.Errors,
			fmt.Sprintf("%.1f", m.GoodputPerSec),
			time.Duration(m.P99Micros)*time.Microsecond)
	}
	return t
}

// RunE19 adapts the overload benchmark to the experiment-driver signature.
func RunE19(o Options) (*metrics.Table, error) {
	oo := OverloadOptions{}
	if o.Iters > 0 {
		// Smoke runs shrink the send window, not the topology.
		oo.PhaseDuration = time.Duration(o.Iters) * 100 * time.Millisecond
	}
	rep, err := RunOverloadReport(oo)
	if err != nil {
		return nil, err
	}
	return rep.Table(), nil
}

// WriteOverloadReport writes the report as indented JSON.
func WriteOverloadReport(r *OverloadReport, path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// ReadOverloadReport loads a committed report.
func ReadOverloadReport(path string) (*OverloadReport, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r OverloadReport
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, err
	}
	return &r, nil
}

// CheckOverloadRegression gates a fresh run: every mode of the committed
// baseline must be present, the shedding modes must actually shed at 2×,
// and the within-run retention ratios — machine-independent, both phases
// having run on the same host against the same calibration — must show
// protection working (RetentionOn ≥ minOn) and the unprotected collapse
// it exists to prevent (RetentionOff ≤ maxOff). Returns nil when
// acceptable.
func CheckOverloadRegression(baseline, current *OverloadReport, minOn, maxOff float64) error {
	var problems []string
	if baseline != nil {
		for _, bm := range baseline.Modes {
			if current.Mode(bm.Name) == nil {
				problems = append(problems, fmt.Sprintf("mode %q missing from current run", bm.Name))
			}
		}
	}
	if m := current.Mode("shed-on-2x"); m != nil && m.Shed == 0 {
		problems = append(problems, "shed-on-2x shed nothing at 2× saturation")
	}
	if minOn > 0 && current.RetentionOn < minOn {
		problems = append(problems, fmt.Sprintf(
			"goodput retention with shedding %.2f below required %.2f", current.RetentionOn, minOn))
	}
	if maxOff > 0 && current.RetentionOff > maxOff {
		problems = append(problems, fmt.Sprintf(
			"unprotected retention %.2f above %.2f — overload no longer collapses the baseline, re-examine the testbed",
			current.RetentionOff, maxOff))
	}
	if len(problems) == 0 {
		return nil
	}
	msg := "overload regression:"
	for _, p := range problems {
		msg += "\n  - " + p
	}
	return fmt.Errorf("%s", msg)
}
