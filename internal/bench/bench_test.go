package bench

import (
	"strings"
	"testing"

	"gupster/internal/metrics"
)

// Smoke tests: every experiment driver must run end-to-end at tiny
// iteration counts and produce a table with the expected columns and at
// least one data row. (The numbers themselves are exercised by the
// repository-root benchmarks; this guards the drivers against rot.)

func runAndCheck(t *testing.T, name string, run func(Options) (*metrics.Table, error), wantCols ...string) {
	t.Helper()
	tbl, err := run(Options{Iters: 2})
	if err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	out := tbl.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) < 4 { // title, header, separator, ≥1 row
		t.Fatalf("%s: too few lines:\n%s", name, out)
	}
	for _, col := range wantCols {
		if !strings.Contains(lines[1], col) {
			t.Errorf("%s: header missing %q:\n%s", name, col, out)
		}
	}
}

func TestRunE3(t *testing.T) {
	runAndCheck(t, "E3", RunE3, "variant", "rules", "decision p50")
}

func TestRunE6(t *testing.T) {
	runAndCheck(t, "E6", RunE6, "registrations", "speedup")
}

func TestRunE10(t *testing.T) {
	runAndCheck(t, "E10", RunE10, "items/side", "overlap")
}

func TestRunE11(t *testing.T) {
	if testing.Short() {
		t.Skip("seeding 10⁵ subscribers is slow")
	}
	runAndCheck(t, "E11", RunE11, "subscribers", "ops/s")
}

func TestRunE12(t *testing.T) {
	runAndCheck(t, "E12", RunE12, "request", "outcome")
}

func TestRunE5(t *testing.T) {
	runAndCheck(t, "E5", RunE5, "entries", "mode", "bytes down/op")
}

func TestRunE7(t *testing.T) {
	runAndCheck(t, "E7", RunE7, "gathering", "in budget")
}

func TestRunFig5(t *testing.T) {
	tbl, err := RunFig5()
	if err != nil {
		t.Fatalf("Fig5: %v", err)
	}
	out := tbl.String()
	for _, frag := range []string{"Wireless", "PSTN", "VoIP", "/user/presence", "/user/location"} {
		if !strings.Contains(out, frag) {
			t.Errorf("Fig5 missing %q:\n%s", frag, out)
		}
	}
}

func TestRunE13(t *testing.T) {
	runAndCheck(t, "E13", RunE13, "mirrors", "operation")
}

func TestRunE14(t *testing.T) {
	runAndCheck(t, "E14", RunE14, "routing", "far-replica delay")
}
