// Package bench contains the experiment drivers behind cmd/gupbench: each
// Run* function executes one experiment from EXPERIMENTS.md against live
// components (real TCP between client, MDM and stores) and renders the
// result table. The testing.B benchmarks in the repository root measure the
// same code paths with Go's benchmark machinery; these drivers produce the
// human-readable tables with derived columns (ratios, hit rates, bytes).
package bench

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"gupster/internal/core"
	"gupster/internal/coverage"
	"gupster/internal/federation"
	"gupster/internal/hlr"
	"gupster/internal/metrics"
	"gupster/internal/policy"
	"gupster/internal/presence"
	"gupster/internal/reachme"
	"gupster/internal/schema"
	"gupster/internal/store"
	"gupster/internal/syncml"
	"gupster/internal/token"
	"gupster/internal/wire"
	"gupster/internal/workload"
	"gupster/internal/xmltree"
	"gupster/internal/xpath"
)

var benchKey = []byte("gupbench-shared-key")

// Options tune experiment sizes.
type Options struct {
	// Iters is the per-cell iteration count.
	Iters int
}

func (o Options) iters(def int) int {
	if o.Iters > 0 {
		return o.Iters
	}
	return def
}

// rig is one MDM plus k stores holding a split component.
type rig struct {
	mdm    *core.MDM
	mdmSrv *core.Server
	stores []*store.Server
	client *core.Client
}

func newRig(k, sizeBytes, cacheEntries int) (*rig, error) {
	signer := token.NewSigner(benchKey)
	mdm := core.New(core.Config{
		Schema: schema.GUP(), Signer: signer,
		GrantTTL: time.Minute, CacheEntries: cacheEntries,
	})
	srv := core.NewServer(mdm)
	if err := srv.Start("127.0.0.1:0"); err != nil {
		return nil, err
	}
	r := &rig{mdm: mdm, mdmSrv: srv}

	book := workload.AddressBookOfSize(sizeBytes, workload.Rand(1))
	pieces := make([]*xmltree.Node, k)
	for i := range pieces {
		pieces[i] = xmltree.New("address-book")
	}
	for i, item := range book.ChildrenNamed("item") {
		it := item.Clone()
		it.SetAttr("type", fmt.Sprintf("t%d", i%k))
		pieces[i%k].Add(it)
	}
	for i := 0; i < k; i++ {
		eng := store.NewEngine(fmt.Sprintf("store-%d", i))
		ssrv := store.NewServer(eng, signer)
		if err := ssrv.Start("127.0.0.1:0"); err != nil {
			r.close()
			return nil, err
		}
		r.stores = append(r.stores, ssrv)
		if _, err := eng.Put("u", xpath.MustParse("/user[@id='u']/address-book"), pieces[i]); err != nil {
			r.close()
			return nil, err
		}
		reg := "/user[@id='u']/address-book"
		if k > 1 {
			reg = fmt.Sprintf("/user[@id='u']/address-book/item[@type='t%d']", i)
		}
		if err := mdm.Register(coverage.StoreID(eng.ID()), ssrv.Addr(), xpath.MustParse(reg)); err != nil {
			r.close()
			return nil, err
		}
	}
	cli, err := core.DialMDM(srv.Addr(), "u", "self")
	if err != nil {
		r.close()
		return nil, err
	}
	r.client = cli
	return r, nil
}

func (r *rig) close() {
	if r.client != nil {
		r.client.Close()
	}
	if r.mdm != nil {
		r.mdm.Close()
	}
	if r.mdmSrv != nil {
		r.mdmSrv.Close()
	}
	for _, s := range r.stores {
		s.Close()
	}
}

// RunE1 — distributed query patterns: latency and MDM data volume.
func RunE1(o Options) (*metrics.Table, error) {
	t := metrics.NewTable("E1 — query patterns: referral vs chaining vs recruiting (§5.2)",
		"stores", "size", "pattern", "p50", "p99", "MDM B/op")
	iters := o.iters(200)
	for _, k := range []int{1, 2, 4, 8} {
		for _, size := range []int{1 << 10, 16 << 10} {
			for _, pattern := range []wire.QueryPattern{
				wire.PatternReferral, wire.PatternChaining, wire.PatternRecruiting,
			} {
				r, err := newRig(k, size, 0)
				if err != nil {
					return nil, err
				}
				h := metrics.NewHistogram()
				before := r.mdm.Stats.BytesProxied.Load()
				ctx := context.Background()
				for i := 0; i < iters; i++ {
					start := time.Now()
					if pattern == wire.PatternReferral {
						_, err = r.client.Get(ctx, "/user[@id='u']/address-book")
					} else {
						_, err = r.client.GetVia(ctx, "/user[@id='u']/address-book", pattern)
					}
					if err != nil {
						r.close()
						return nil, err
					}
					h.Record(time.Since(start))
				}
				proxied := r.mdm.Stats.BytesProxied.Load() - before
				t.AddRow(k, fmt.Sprintf("%dKiB", size>>10), string(pattern),
					h.Percentile(50), h.Percentile(99), int(proxied)/iters)
				r.close()
			}
		}
	}
	return t, nil
}

// RunE2 — MDM overhead against direct store access.
func RunE2(o Options) (*metrics.Table, error) {
	t := metrics.NewTable("E2 — MDM mediation overhead (§5.3 scalability)",
		"access", "clients", "p50", "p99", "ops/s")
	iters := o.iters(300)
	r, err := newRig(1, 4<<10, 0)
	if err != nil {
		return nil, err
	}
	defer r.close()
	signer := token.NewSigner(benchKey)
	path := xpath.MustParse("/user[@id='u']/address-book")

	// Direct.
	sc, err := store.DialClient(r.stores[0].Addr())
	if err != nil {
		return nil, err
	}
	defer sc.Close()
	q := signer.Sign("store-0", "u", path, token.VerbFetch, "u", time.Hour)
	h := metrics.NewHistogram()
	tp := metrics.StartThroughput()
	for i := 0; i < iters; i++ {
		start := time.Now()
		if _, _, err := sc.Fetch(context.Background(), q); err != nil {
			return nil, err
		}
		h.Record(time.Since(start))
	}
	tp.Add(iters)
	t.AddRow("direct-to-store", 1, h.Percentile(50), h.Percentile(99), tp.PerSecond())

	// Via MDM, at growing concurrency.
	for _, clients := range []int{1, 8, 32} {
		h := metrics.NewHistogram()
		tp := metrics.StartThroughput()
		var wg sync.WaitGroup
		perClient := iters / clients
		if perClient == 0 {
			perClient = 1
		}
		errCh := make(chan error, clients)
		for c := 0; c < clients; c++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				cli, err := core.DialMDM(r.mdmSrv.Addr(), "u", "self")
				if err != nil {
					errCh <- err
					return
				}
				defer cli.Close()
				for i := 0; i < perClient; i++ {
					start := time.Now()
					if _, err := cli.Get(context.Background(), "/user[@id='u']/address-book"); err != nil {
						errCh <- err
						return
					}
					h.Record(time.Since(start))
				}
			}()
		}
		wg.Wait()
		close(errCh)
		if err := <-errCh; err != nil {
			return nil, err
		}
		tp.Add(clients * perClient)
		t.AddRow("via-mdm-referral", clients, h.Percentile(50), h.Percentile(99), tp.PerSecond())
	}
	return t, nil
}

// RunE3 — access-control placement.
func RunE3(o Options) (*metrics.Table, error) {
	t := metrics.NewTable("E3 — access-control placement: MDM vs store replicas (§5.3)",
		"variant", "rules", "replicas", "decision p50", "sync msgs/change")
	iters := o.iters(2000)
	mkRepo := func(rules int) *policy.Repository {
		repo := policy.NewRepository()
		s := &policy.Shield{Owner: "alice"}
		for i := 0; i < rules; i++ {
			s.Rules = append(s.Rules, policy.Rule{
				ID:     fmt.Sprintf("r%04d", i),
				Path:   xpath.MustParse(fmt.Sprintf("/user[@id='alice']/address-book/item[@name='c%d']", i)),
				Cond:   policy.RequesterIs(fmt.Sprintf("u%d", i)),
				Effect: policy.Permit,
			})
		}
		s.Rules = append(s.Rules, policy.Rule{
			ID: "family", Path: xpath.MustParse("/user[@id='alice']/presence"),
			Cond: policy.RoleIs("family"), Effect: policy.Permit,
		})
		repo.Put(s)
		return repo
	}
	req := xpath.MustParse("/user[@id='alice']/presence")
	ctx := policy.Context{Requester: "mom", Role: "family"}

	for _, rules := range []int{10, 100, 1000} {
		repo := mkRepo(rules)
		pdp := &policy.DecisionPoint{Repo: repo}
		h := metrics.NewHistogram()
		for i := 0; i < iters; i++ {
			start := time.Now()
			pdp.Decide("alice", req, ctx)
			h.Record(time.Since(start))
		}
		t.AddRow("mdm-side", rules, "-", h.Percentile(50), 0)
	}
	for _, replicas := range []int{1, 8, 64} {
		repo := mkRepo(100)
		reps := make([]*policy.Replica, replicas)
		for i := range reps {
			reps[i] = policy.NewReplica()
			reps[i].SyncFrom(repo)
		}
		h := metrics.NewHistogram()
		transferred := 0
		changes := o.iters(100)
		for i := 0; i < changes; i++ {
			repo.Put(&policy.Shield{Owner: "alice"})
			for _, rp := range reps {
				transferred += rp.SyncFrom(repo)
			}
			start := time.Now()
			reps[0].Decide("alice", req, ctx)
			h.Record(time.Since(start))
		}
		t.AddRow("store-side", 100, replicas, h.Percentile(50), transferred/changes)
	}
	return t, nil
}

// RunE4 — MDM caching under Zipf access.
func RunE4(o Options) (*metrics.Table, error) {
	t := metrics.NewTable("E4 — MDM component cache under Zipf(1.2) access (§5.2)",
		"cache entries", "p50", "p99", "hit %")
	iters := o.iters(500)
	const users = 64
	for _, cacheEntries := range []int{0, 8, 32, 64} {
		signer := token.NewSigner(benchKey)
		mdm := core.New(core.Config{
			Schema: schema.GUP(), Signer: signer,
			GrantTTL: time.Minute, CacheEntries: cacheEntries,
		})
		srv := core.NewServer(mdm)
		if err := srv.Start("127.0.0.1:0"); err != nil {
			return nil, err
		}
		eng := store.NewEngine("s1")
		ssrv := store.NewServer(eng, signer)
		if err := ssrv.Start("127.0.0.1:0"); err != nil {
			return nil, err
		}
		rng := workload.Rand(2)
		for i := 0; i < users; i++ {
			u := workload.UserID(i)
			eng.Put(u, xpath.MustParse(fmt.Sprintf("/user[@id='%s']/address-book", u)), workload.AddressBook(20, rng))
		}
		mdm.Register("s1", ssrv.Addr(), xpath.MustParse("/user/address-book"))
		cli, err := core.DialMDM(srv.Addr(), "self", "self")
		if err != nil {
			return nil, err
		}
		pop := workload.NewPopulation(users, 1.2, 3)
		h := metrics.NewHistogram()
		for i := 0; i < iters; i++ {
			u := pop.Next()
			cli.Identity = u
			start := time.Now()
			if _, err := cli.GetVia(context.Background(), fmt.Sprintf("/user[@id='%s']/address-book", u), wire.PatternChaining); err != nil {
				return nil, err
			}
			h.Record(time.Since(start))
		}
		hits, misses := mdm.Stats.CacheHits.Load(), mdm.Stats.CacheMisses.Load()
		hitPct := 0.0
		if hits+misses > 0 {
			hitPct = 100 * float64(hits) / float64(hits+misses)
		}
		t.AddRow(cacheEntries, h.Percentile(50), h.Percentile(99), hitPct)
		cli.Close()
		mdm.Close()
		srv.Close()
		ssrv.Close()
	}
	return t, nil
}

// RunE5 — synchronization: fast vs slow across sizes and change rates.
func RunE5(o Options) (*metrics.Table, error) {
	t := metrics.NewTable("E5 — device sync: fast (delta) vs slow (full) (§2.3 req 7)",
		"entries", "changed", "mode", "p50", "bytes down/op")
	iters := o.iters(50)
	for _, entries := range []int{100, 1000} {
		for _, changePct := range []int{1, 10, 50} {
			for _, slow := range []bool{false, true} {
				eng := store.NewEngine("s1")
				srv := &syncml.Server{Store: eng, Keys: xmltree.DefaultKeys}
				path := xpath.MustParse("/user[@id='u']/address-book")
				rng := workload.Rand(7)
				eng.Put("u", path, workload.AddressBook(entries, rng))
				tr := &localTransport{srv: srv, user: "u", path: path}
				dev := syncml.NewDevice(xmltree.DefaultKeys)
				if _, err := dev.Sync(context.Background(), tr, syncml.ServerWins); err != nil {
					return nil, err
				}
				changes := entries * changePct / 100
				if changes == 0 {
					changes = 1
				}
				h := metrics.NewHistogram()
				var bytesDown int64
				for i := 0; i < iters; i++ {
					comp, _, err := eng.GetComponent("u", path)
					if err != nil {
						return nil, err
					}
					items := comp.ChildrenNamed("item")
					for c := 0; c < changes; c++ {
						items[(i*13+c)%len(items)].Children[0].Text = fmt.Sprintf("908-%06d", i*1000+c)
					}
					eng.Put("u", path, comp)
					if slow {
						dev.Anchor = 0
					}
					start := time.Now()
					st, err := dev.Sync(context.Background(), tr, syncml.ServerWins)
					if err != nil {
						return nil, err
					}
					h.Record(time.Since(start))
					bytesDown += int64(st.BytesDown)
				}
				mode := "fast"
				if slow {
					mode = "slow"
				}
				t.AddRow(entries, fmt.Sprintf("%d%%", changePct), mode, h.Percentile(50), int(bytesDown)/iters)
			}
		}
	}
	return t, nil
}

type localTransport struct {
	srv  *syncml.Server
	user string
	path xpath.Path
}

func (t *localTransport) SyncStart(_ context.Context, lastAnchor uint64) (*wire.SyncStartResponse, error) {
	return t.srv.HandleStart(t.user, t.path, lastAnchor)
}

func (t *localTransport) SyncDelta(_ context.Context, req *wire.SyncDeltaRequest) (*wire.SyncDeltaResponse, error) {
	return t.srv.HandleDelta(t.user, t.path, req)
}

// RunE6 — coverage lookup scalability.
func RunE6(o Options) (*metrics.Table, error) {
	t := metrics.NewTable("E6 — coverage lookup: indexed vs linear scan (§4.5)",
		"registrations", "indexed p50", "linear p50", "speedup")
	iters := o.iters(500)
	sections := []string{"presence", "calendar", "address-book", "devices", "self"}
	for _, n := range []int{100, 1000, 10000, 100000} {
		reg := coverage.New()
		users := n / len(sections)
		if users == 0 {
			users = 1
		}
		for u := 0; u < users; u++ {
			for s, sec := range sections {
				reg.Register(xpath.MustParse(fmt.Sprintf("/user[@id='%s']/%s", workload.UserID(u), sec)),
					coverage.StoreID(fmt.Sprintf("store-%d", s)))
			}
		}
		q := xpath.MustParse(fmt.Sprintf("/user[@id='%s']/presence", workload.UserID(users/2)))
		hi := metrics.NewHistogram()
		for i := 0; i < iters; i++ {
			start := time.Now()
			reg.Lookup(q)
			hi.Record(time.Since(start))
		}
		linIters := iters
		if n >= 100000 {
			linIters = iters / 10
		}
		hl := metrics.NewHistogram()
		for i := 0; i < linIters; i++ {
			start := time.Now()
			reg.LinearLookup(q)
			hl.Record(time.Since(start))
		}
		speedup := float64(hl.Percentile(50)) / float64(hi.Percentile(50))
		t.AddRow(reg.Len(), hi.Percentile(50), hl.Percentile(50), speedup)
	}
	return t, nil
}

// RunE7 — the reach-me decision over the full converged testbed.
func RunE7(o Options) (*metrics.Table, error) {
	t := metrics.NewTable("E7 — selective reach-me decision latency (§2.2: budget 'a few seconds')",
		"gathering", "p50", "p99", "max", "in budget (<2s)")
	iters := o.iters(100)
	tb, err := workload.NewTestbed(workload.TestbedOptions{
		Users: 8, BookEntries: 40, Seed: 5, AllowRole: "reachme",
	})
	if err != nil {
		return nil, err
	}
	defer tb.Close()
	cli, err := tb.Client("reachme-svc", "reachme")
	if err != nil {
		return nil, err
	}
	getter := reachme.GetterFunc(func(ctx context.Context, path string) (*xmltree.Node, error) {
		return cli.Get(ctx, path)
	})
	at := time.Date(2026, 7, 6, 10, 0, 0, 0, time.UTC)
	for _, seq := range []bool{false, true} {
		svc := &reachme.Service{Profile: getter, Sequential: seq}
		h := metrics.NewHistogram()
		for i := 0; i < iters; i++ {
			start := time.Now()
			if _, err := svc.Decide(context.Background(), tb.Users[i%len(tb.Users)], at); err != nil {
				return nil, err
			}
			h.Record(time.Since(start))
		}
		name := "parallel fan-out"
		if seq {
			name = "sequential"
		}
		t.AddRow(name, h.Percentile(50), h.Percentile(99), h.Max(), h.Max() < 2*time.Second)
	}
	return t, nil
}

// RunE8 — push subscriptions vs polling.
func RunE8(o Options) (*metrics.Table, error) {
	t := metrics.NewTable("E8 — presence: push subscription vs polling (§5.2)",
		"mode", "events observed", "shield evals", "msgs", "evals/event")
	iters := o.iters(200)

	// Poll: the watcher polls; presence changes only every 10th poll.
	{
		tb, err := workload.NewTestbed(workload.TestbedOptions{Users: 1, Seed: 9})
		if err != nil {
			return nil, err
		}
		user := tb.Users[0]
		tb.WatchPresence(user)
		cli, err := tb.Client(user, "self")
		if err != nil {
			tb.Close()
			return nil, err
		}
		before := tb.MDM.Stats.ShieldEvals.Load()
		changes := 0
		for i := 0; i < iters; i++ {
			if i%10 == 0 {
				tb.Presence.Set(user, presence.Status([]string{"available", "busy"}[changes%2]), "")
				changes++
			}
			if _, err := cli.Get(context.Background(), fmt.Sprintf("/user[@id='%s']/presence", user)); err != nil {
				tb.Close()
				return nil, err
			}
		}
		evals := tb.MDM.Stats.ShieldEvals.Load() - before
		t.AddRow("poll (10:1 polls:changes)", changes, evals, iters, float64(evals)/float64(changes))
		tb.Close()
	}
	// Push: one subscription; the shield is evaluated only per change.
	{
		tb, err := workload.NewTestbed(workload.TestbedOptions{Users: 1, Seed: 9})
		if err != nil {
			return nil, err
		}
		user := tb.Users[0]
		tb.WatchPresence(user)
		cli, err := tb.Client(user, "self")
		if err != nil {
			tb.Close()
			return nil, err
		}
		var delivered atomic.Int64
		done := make(chan struct{})
		changes := iters / 10
		if _, err := cli.Subscribe(context.Background(),
			fmt.Sprintf("/user[@id='%s']/presence", user),
			func(wire.Notification) {
				if delivered.Add(1) == int64(changes) {
					close(done)
				}
			}); err != nil {
			tb.Close()
			return nil, err
		}
		before := tb.MDM.Stats.ShieldEvals.Load()
		for i := 0; i < changes; i++ {
			tb.Presence.Set(user, presence.Status([]string{"available", "busy"}[i%2]), "")
		}
		select {
		case <-done:
		case <-time.After(30 * time.Second):
			tb.Close()
			return nil, fmt.Errorf("bench: push notifications stalled at %d/%d", delivered.Load(), changes)
		}
		evals := tb.MDM.Stats.ShieldEvals.Load() - before
		t.AddRow("push (subscription)", changes, evals, int64(changes)+1, float64(evals)/float64(changes))
		tb.Close()
	}
	return t, nil
}

// RunE9 — MDM architecture variants.
func RunE9(o Options) (*metrics.Table, error) {
	t := metrics.NewTable("E9 — meta-data architectures (§5.1)",
		"architecture", "hops", "p50", "p99")
	iters := o.iters(300)
	signer := token.NewSigner(benchKey)
	eng := store.NewEngine("s1")
	ssrv := store.NewServer(eng, signer)
	if err := ssrv.Start("127.0.0.1:0"); err != nil {
		return nil, err
	}
	defer ssrv.Close()
	p := xpath.MustParse("/user[@id='alice']/presence")
	eng.Put("alice", p, xmltree.MustParse(`<presence status="on"/>`))
	req := &wire.ResolveRequest{
		Path:    "/user[@id='alice']/presence",
		Context: policy.Context{Requester: "alice"},
		Verb:    token.VerbFetch,
	}
	mkMDM := func() (*core.MDM, *core.Server, error) {
		m := core.New(core.Config{Schema: schema.GUP(), Signer: signer, GrantTTL: time.Minute})
		s := core.NewServer(m)
		if err := s.Start("127.0.0.1:0"); err != nil {
			return nil, nil, err
		}
		return m, s, nil
	}

	// Centralized.
	{
		m, s, err := mkMDM()
		if err != nil {
			return nil, err
		}
		m.Register("s1", ssrv.Addr(), p)
		cli, err := core.DialMDM(s.Addr(), "alice", "self")
		if err != nil {
			return nil, err
		}
		h := metrics.NewHistogram()
		for i := 0; i < iters; i++ {
			start := time.Now()
			if _, err := cli.Resolve(context.Background(), req); err != nil {
				return nil, err
			}
			h.Record(time.Since(start))
		}
		t.AddRow("centralized", 0, h.Percentile(50), h.Percentile(99))
		cli.Close()
		m.Close()
		s.Close()
	}
	// User-level distributed through white pages.
	{
		m, s, err := mkMDM()
		if err != nil {
			return nil, err
		}
		m.Register("s1", ssrv.Addr(), p)
		wp := federation.NewWhitePages()
		wp.Set("alice", s.Addr(), false)
		wpSrv, err := wp.Serve("127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		loc, err := federation.NewLocator(wpSrv.Addr())
		if err != nil {
			return nil, err
		}
		h := metrics.NewHistogram()
		for i := 0; i < iters; i++ {
			start := time.Now()
			if _, err := loc.Resolve(context.Background(), "alice", req); err != nil {
				return nil, err
			}
			h.Record(time.Since(start))
		}
		t.AddRow("user-distributed (white pages)", 0, h.Percentile(50), h.Percentile(99))
		loc.Close()
		wpSrv.Close()
		m.Close()
		s.Close()
	}
	// Hierarchical at depths 1 and 2.
	for _, depth := range []int{1, 2} {
		leafMDM, leafSrvRaw, err := mkMDM()
		if err != nil {
			return nil, err
		}
		leafSrvRaw.Close() // the node serves instead
		leafMDM.Register("s1", ssrv.Addr(), p)
		leaf := federation.NewNode(leafMDM)
		lsrv, err := leaf.Serve("127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		addr := lsrv.Addr()
		closers := []func(){func() { lsrv.Close(); leaf.Close(); leafMDM.Close() }}
		for d := 1; d < depth; d++ {
			midMDM, midSrvRaw, err := mkMDM()
			if err != nil {
				return nil, err
			}
			midSrvRaw.Close()
			mid := federation.NewNode(midMDM)
			mid.Delegate(p, addr)
			msrv, err := mid.Serve("127.0.0.1:0")
			if err != nil {
				return nil, err
			}
			addr = msrv.Addr()
			closers = append(closers, func() { msrv.Close(); mid.Close(); midMDM.Close() })
		}
		topMDM, topSrvRaw, err := mkMDM()
		if err != nil {
			return nil, err
		}
		topSrvRaw.Close()
		top := federation.NewNode(topMDM)
		top.Delegate(p, addr)
		h := metrics.NewHistogram()
		for i := 0; i < iters; i++ {
			start := time.Now()
			resp, err := top.Resolve(context.Background(), req)
			if err != nil {
				return nil, err
			}
			if resp.Hops != depth {
				return nil, fmt.Errorf("bench: hops = %d, want %d", resp.Hops, depth)
			}
			h.Record(time.Since(start))
		}
		t.AddRow("hierarchical", depth, h.Percentile(50), h.Percentile(99))
		top.Close()
		topMDM.Close()
		for _, c := range closers {
			c()
		}
	}
	return t, nil
}

// RunE10 — reconciliation throughput.
func RunE10(o Options) (*metrics.Table, error) {
	t := metrics.NewTable("E10 — address-book reconciliation: deep union (§2.3 req 6)",
		"items/side", "overlap", "p50", "merged items")
	iters := o.iters(100)
	for _, items := range []int{100, 1000} {
		for _, overlapPct := range []int{0, 50, 100} {
			rng := workload.Rand(11)
			a := workload.AddressBook(items, rng)
			shared := items * overlapPct / 100
			c := xmltree.New("address-book")
			for i, item := range a.ChildrenNamed("item") {
				if i >= shared {
					break
				}
				dup := item.Clone()
				dup.Add(xmltree.NewText("note", "other"))
				c.Add(dup)
			}
			for i := shared; i < items; i++ {
				it := xmltree.New("item").SetAttr("name", fmt.Sprintf("other-%d", i))
				it.Add(xmltree.NewText("phone", "555"))
				c.Add(it)
			}
			h := metrics.NewHistogram()
			merged := 0
			for i := 0; i < iters; i++ {
				start := time.Now()
				u := xmltree.DeepUnion(a, c, xmltree.DefaultKeys)
				h.Record(time.Since(start))
				merged = len(u.ChildrenNamed("item"))
			}
			t.AddRow(items, fmt.Sprintf("%d%%", overlapPct), h.Percentile(50), merged)
		}
	}
	return t, nil
}

// RunE11 — HLR load.
func RunE11(o Options) (*metrics.Table, error) {
	t := metrics.NewTable("E11 — HLR: location updates vs call deliveries (§3.1.2)",
		"subscribers", "mix (upd:del)", "p50", "ops/s")
	iters := o.iters(20000)
	for _, subs := range []int{10000, 100000} {
		h := hlr.New()
		for i := 0; i < 8; i++ {
			h.AddVLR(fmt.Sprintf("vlr-%d", i), fmt.Sprintf("msc-%d", i), true)
		}
		for i := 0; i < subs; i++ {
			h.AddSubscriber(hlr.Subscriber{IMSI: fmt.Sprintf("imsi-%d", i), MSISDN: fmt.Sprintf("555-%07d", i)})
			h.LocationUpdate(fmt.Sprintf("imsi-%d", i), fmt.Sprintf("vlr-%d", i%8), "cell")
		}
		for _, mix := range []struct {
			name    string
			updates int
		}{{"1:4", 1}, {"4:1", 4}} {
			hist := metrics.NewHistogram()
			tp := metrics.StartThroughput()
			for i := 0; i < iters; i++ {
				n := i % subs
				start := time.Now()
				if i%5 < mix.updates {
					h.LocationUpdate(fmt.Sprintf("imsi-%d", n), fmt.Sprintf("vlr-%d", i%8), "cell")
				} else {
					h.CallDelivery("caller", fmt.Sprintf("555-%07d", n))
				}
				hist.Record(time.Since(start))
			}
			tp.Add(iters)
			t.AddRow(subs, mix.name, hist.Percentile(50), tp.PerSecond())
		}
	}
	return t, nil
}

// RunE12 — spurious-query filtering.
func RunE12(o Options) (*metrics.Table, error) {
	t := metrics.NewTable("E12 — spurious-query filtering at the MDM (§5.3)",
		"request", "outcome", "p50")
	iters := o.iters(5000)
	s := schema.GUP()
	cases := []struct {
		name, path, outcome string
	}{
		{"valid component path", "/user[@id='a']/address-book/item[@type='personal']", "accepted"},
		{"unknown element", "/user[@id='a']/shoe-size", "rejected"},
		{"unknown attribute", "/user/address-book/item[@colour='red']", "rejected"},
		{"wrong root", "/person/presence", "rejected"},
	}
	for _, c := range cases {
		p := xpath.MustParse(c.path)
		h := metrics.NewHistogram()
		for i := 0; i < iters; i++ {
			start := time.Now()
			err := s.ValidatePath(p)
			h.Record(time.Since(start))
			if (err == nil) != (c.outcome == "accepted") {
				return nil, fmt.Errorf("bench: %s: unexpected outcome", c.name)
			}
		}
		t.AddRow(c.name, c.outcome, h.Percentile(50))
	}
	return t, nil
}

// RunFig5 prints the profile placement the testbed realizes — the paper's
// Figure 5 table, as actually registered with the MDM.
func RunFig5() (*metrics.Table, error) {
	tb, err := workload.NewTestbed(workload.TestbedOptions{Users: 1, Seed: 1})
	if err != nil {
		return nil, err
	}
	defer tb.Close()
	t := metrics.NewTable("Figure 5 — where profile data is stored (as registered coverage)",
		"network", "store", "coverage path")
	network := map[string]string{
		workload.StoreHLR:        "Wireless",
		workload.StorePSTN:       "PSTN",
		workload.StoreSIP:        "VoIP",
		workload.StorePortal:     "Web (portal)",
		workload.StoreEnterprise: "Web (enterprise)",
	}
	for _, reg := range tb.MDM.Registry.Snapshot() {
		t.AddRow(network[string(reg.Store)], string(reg.Store), reg.Path.String())
	}
	return t, nil
}
