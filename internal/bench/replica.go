package bench

import (
	"context"
	"time"

	"gupster/internal/core"
	"gupster/internal/faultinject"
	"gupster/internal/metrics"
	"gupster/internal/scenario"
	"gupster/internal/store"
	"gupster/internal/xpath"
)

// RunE14 — closest-replica routing (§5.3: "requests … will be routed to the
// closest store available"): a component replicated at a near and a far
// store (the far one behind a delay proxy, and sorting first so the naive
// order hits it), fetched with latency-aware ordering on and off.
func RunE14(o Options) (*metrics.Table, error) {
	t := metrics.NewTable("E14 — closest-replica routing among redundant stores (§5.3)",
		"far-replica delay", "routing", "p50", "p99")
	iters := o.iters(100)

	for _, delay := range []time.Duration{10 * time.Millisecond, 50 * time.Millisecond} {
		for _, disabled := range []bool{true, false} {
			r, err := newRig(1, 2<<10, 0) // one near store, registered below
			if err != nil {
				return nil, err
			}
			// Far replica: same content, identity sorting before "store-0",
			// reached through a latency-injecting proxy (the same injector
			// scenario rigs use, which closes its active conns on Close
			// instead of leaking them).
			signer := scenario.NewSigner()
			farEng := store.NewEngine("a-far-replica")
			farSrv := store.NewServer(farEng, signer)
			if err := farSrv.Start("127.0.0.1:0"); err != nil {
				r.close()
				return nil, err
			}
			comp, _, err := r.stores[0].Engine.GetComponent("u", xpath.MustParse("/user[@id='u']/address-book"))
			if err != nil {
				r.close()
				farSrv.Close()
				return nil, err
			}
			if _, err := farEng.Put("u", xpath.MustParse("/user[@id='u']/address-book"), comp.Clone()); err != nil {
				r.close()
				farSrv.Close()
				return nil, err
			}
			proxy, err := faultinject.NewProxy(farSrv.Addr(), 14)
			if err != nil {
				r.close()
				farSrv.Close()
				return nil, err
			}
			proxy.SetLatency(delay, 0)
			if err := r.mdm.Register("a-far-replica", proxy.Addr(),
				xpath.MustParse("/user[@id='u']/address-book")); err != nil {
				r.close()
				farSrv.Close()
				proxy.Close()
				return nil, err
			}

			cli, err := core.DialMDM(r.mdmSrv.Addr(), "u", "self")
			if err != nil {
				r.close()
				farSrv.Close()
				proxy.Close()
				return nil, err
			}
			cli.DisableLatencyRouting = disabled

			h := metrics.NewHistogram()
			for i := 0; i < iters; i++ {
				start := time.Now()
				doc, err := cli.Get(context.Background(), "/user[@id='u']/address-book")
				if err != nil {
					cli.Close()
					r.close()
					farSrv.Close()
					proxy.Close()
					return nil, err
				}
				_ = doc
				h.Record(time.Since(start))
			}
			routing := "latency-aware"
			if disabled {
				routing = "naive order"
			}
			t.AddRow(delay, routing, h.Percentile(50), h.Percentile(99))
			cli.Close()
			r.close()
			farSrv.Close()
			proxy.Close()
		}
	}
	return t, nil
}
