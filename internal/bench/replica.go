package bench

import (
	"context"
	"io"
	"net"
	"time"

	"gupster/internal/core"
	"gupster/internal/metrics"
	"gupster/internal/store"
	"gupster/internal/token"
	"gupster/internal/xpath"
)

// delayProxy forwards TCP to a backend with added per-chunk latency — a
// WAN-distant replica.
type delayProxy struct {
	ln      net.Listener
	backend string
	delay   time.Duration
}

func newDelayProxy(backend string, delay time.Duration) (*delayProxy, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	p := &delayProxy{ln: ln, backend: backend, delay: delay}
	go p.run()
	return p, nil
}

func (p *delayProxy) addr() string { return p.ln.Addr().String() }
func (p *delayProxy) close()       { p.ln.Close() }

func (p *delayProxy) run() {
	for {
		conn, err := p.ln.Accept()
		if err != nil {
			return
		}
		go p.serve(conn)
	}
}

func (p *delayProxy) serve(client net.Conn) {
	defer client.Close()
	backend, err := net.Dial("tcp", p.backend)
	if err != nil {
		return
	}
	defer backend.Close()
	done := make(chan struct{}, 2)
	go func() {
		defer func() { done <- struct{}{} }()
		buf := make([]byte, 32<<10)
		for {
			n, err := client.Read(buf)
			if n > 0 {
				time.Sleep(p.delay)
				if _, werr := backend.Write(buf[:n]); werr != nil {
					return
				}
			}
			if err != nil {
				return
			}
		}
	}()
	go func() {
		defer func() { done <- struct{}{} }()
		io.Copy(client, backend)
	}()
	<-done
}

// RunE14 — closest-replica routing (§5.3: "requests … will be routed to the
// closest store available"): a component replicated at a near and a far
// store (the far one behind a delay proxy, and sorting first so the naive
// order hits it), fetched with latency-aware ordering on and off.
func RunE14(o Options) (*metrics.Table, error) {
	t := metrics.NewTable("E14 — closest-replica routing among redundant stores (§5.3)",
		"far-replica delay", "routing", "p50", "p99")
	iters := o.iters(100)

	for _, delay := range []time.Duration{10 * time.Millisecond, 50 * time.Millisecond} {
		for _, disabled := range []bool{true, false} {
			r, err := newRig(1, 2<<10, 0) // one near store, registered below
			if err != nil {
				return nil, err
			}
			// Far replica: same content, identity sorting before "store-0",
			// reached through the delay proxy.
			signer := token.NewSigner(benchKey)
			farEng := store.NewEngine("a-far-replica")
			farSrv := store.NewServer(farEng, signer)
			if err := farSrv.Start("127.0.0.1:0"); err != nil {
				r.close()
				return nil, err
			}
			comp, _, err := r.stores[0].Engine.GetComponent("u", xpath.MustParse("/user[@id='u']/address-book"))
			if err != nil {
				r.close()
				farSrv.Close()
				return nil, err
			}
			if _, err := farEng.Put("u", xpath.MustParse("/user[@id='u']/address-book"), comp.Clone()); err != nil {
				r.close()
				farSrv.Close()
				return nil, err
			}
			proxy, err := newDelayProxy(farSrv.Addr(), delay)
			if err != nil {
				r.close()
				farSrv.Close()
				return nil, err
			}
			if err := r.mdm.Register("a-far-replica", proxy.addr(),
				xpath.MustParse("/user[@id='u']/address-book")); err != nil {
				r.close()
				farSrv.Close()
				proxy.close()
				return nil, err
			}

			cli, err := core.DialMDM(r.mdmSrv.Addr(), "u", "self")
			if err != nil {
				r.close()
				farSrv.Close()
				proxy.close()
				return nil, err
			}
			cli.DisableLatencyRouting = disabled

			h := metrics.NewHistogram()
			for i := 0; i < iters; i++ {
				start := time.Now()
				doc, err := cli.Get(context.Background(), "/user[@id='u']/address-book")
				if err != nil {
					cli.Close()
					r.close()
					farSrv.Close()
					proxy.close()
					return nil, err
				}
				_ = doc
				h.Record(time.Since(start))
			}
			routing := "latency-aware"
			if disabled {
				routing = "naive order"
			}
			t.AddRow(delay, routing, h.Percentile(50), h.Percentile(99))
			cli.Close()
			r.close()
			farSrv.Close()
			proxy.close()
		}
	}
	return t, nil
}
