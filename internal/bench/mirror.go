package bench

import (
	"context"
	"fmt"
	"time"

	"gupster/internal/metrics"
	"gupster/internal/policy"
	"gupster/internal/scenario"
	"gupster/internal/token"
	"gupster/internal/wire"
)

// RunE13 — mirrored MDM constellation (§4.2, §5.3 reliability): what
// replication costs on the mutation path, and that the read path is
// unaffected by constellation size. The constellation itself is built by
// internal/scenario, the same assembly mixed scenarios use.
func RunE13(o Options) (*metrics.Table, error) {
	t := metrics.NewTable("E13 — mirrored MDM constellation (§5.3 reliability)",
		"mirrors", "operation", "p50", "p99")
	iters := o.iters(200)

	for _, n := range []int{1, 2, 4} {
		c, err := scenario.BuildConstellation(n)
		if err != nil {
			return nil, err
		}

		cli, err := wire.Dial(c.Addrs[0])
		if err != nil {
			c.Close()
			return nil, err
		}

		// Mutation path: register/unregister replicates to n-1 peers.
		hMut := metrics.NewHistogram()
		for i := 0; i < iters; i++ {
			p := fmt.Sprintf("/user[@id='u%d']/presence", i)
			start := time.Now()
			if err := cli.Call(context.Background(), wire.TypeRegister, &wire.RegisterRequest{
				Store: "s1", Address: "127.0.0.1:1", Path: p,
			}, nil); err != nil {
				cli.Close()
				c.Close()
				return nil, err
			}
			hMut.Record(time.Since(start))
		}
		t.AddRow(n, "register (replicated)", hMut.Percentile(50), hMut.Percentile(99))

		// Read path: resolve is local to whichever mirror answers.
		hRead := metrics.NewHistogram()
		req := &wire.ResolveRequest{
			Path:    "/user[@id='u1']/presence",
			Context: policy.Context{Requester: "u1"},
			Verb:    token.VerbFetch,
		}
		for i := 0; i < iters; i++ {
			start := time.Now()
			var resp wire.ResolveResponse
			if err := cli.Call(context.Background(), wire.TypeResolve, req, &resp); err != nil {
				cli.Close()
				c.Close()
				return nil, err
			}
			hRead.Record(time.Since(start))
		}
		t.AddRow(n, "resolve (local)", hRead.Percentile(50), hRead.Percentile(99))

		// Convergence check: the last mirror knows the first registration.
		if n > 1 {
			if _, err := c.MDMs[n-1].Resolve(context.Background(), req); err != nil {
				cli.Close()
				c.Close()
				return nil, fmt.Errorf("bench: constellation did not converge: %w", err)
			}
		}
		cli.Close()
		c.Close()
	}
	return t, nil
}
