package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"gupster/internal/core"
	"gupster/internal/metrics"
	"gupster/internal/wire"
)

// E17 — the tracing-overhead benchmark: the resolve testbed of E16 run
// twice on the pipelined configuration, once with client tracing disabled
// and once with it on (the default), comparing resolve p95. Tracing is
// designed to be cheap enough to leave on in production — one span per
// hop, a short critical section per span, spans piggybacked on frames the
// request sends anyway — so the acceptance gate requires the traced p95 to
// stay within a small fraction of the untraced one.

// TraceMode is one measured configuration of the overhead comparison.
type TraceMode struct {
	Name           string  `json:"name"`
	Traced         bool    `json:"traced"`
	Resolves       int     `json:"resolves"`
	P50Micros      int64   `json:"p50_us"`
	P95Micros      int64   `json:"p95_us"`
	P99Micros      int64   `json:"p99_us"`
	ResolvesPerSec float64 `json:"resolves_per_sec"`
}

// TraceOverheadReport is the machine-readable output of E17.
type TraceOverheadReport struct {
	Clients    int         `json:"clients"`
	BatchSize  int         `json:"batch_size"`
	GOMAXPROCS int         `json:"gomaxprocs"`
	Modes      []TraceMode `json:"modes"`
	// OverheadReferral and OverheadChaining are the relative p95 cost of
	// tracing per phase ((on-off)/off; negative means the traced run was
	// faster, i.e. noise).
	OverheadReferral float64 `json:"overhead_referral"`
	OverheadChaining float64 `json:"overhead_chaining"`
	// Overhead is the worse of the two — the acceptance headline.
	Overhead float64 `json:"overhead"`
	// MDMSpans is the span count the MDM collector retained during the
	// traced pass, proving tracing was actually exercised.
	MDMSpans int `json:"mdm_spans"`
}

// Mode returns the named mode, or nil.
func (r *TraceOverheadReport) Mode(name string) *TraceMode {
	for i := range r.Modes {
		if r.Modes[i].Name == name {
			return &r.Modes[i]
		}
	}
	return nil
}

// overheadWaves is how many short alternating off/on wave-pairs E17 runs
// per phase. A paired, interleaved design — not one long pass per mode —
// is what makes the comparison stable on the small shared machines CI
// runs on: machine-level noise (GC, a neighbor stealing the core) hits
// adjacent waves of both modes alike and cancels in the ratio, where
// back-to-back monolithic passes would attribute it all to one mode.
const overheadWaves = 6

// RunTraceOverheadReport executes E17: referral-batched and
// chaining-coalesced phases, traced vs untraced, on one shared rig (same
// stores, same injected latency) so the only variable is tracing. Unlike
// E16 the default load is deliberately light (4 clients): overhead must be
// measured below CPU saturation — at saturation every client's tracing
// CPU serializes onto the run queue and the gate measures queueing, not
// the per-request cost.
func RunTraceOverheadReport(o ResolveOptions) (*TraceOverheadReport, error) {
	if o.Clients == 0 {
		o.Clients = 4
	}
	if o.Rounds == 0 {
		o.Rounds = 24
	}
	if o.ChainRounds == 0 {
		o.ChainRounds = 24
	}
	o = o.withDefaults()
	report := &TraceOverheadReport{Clients: o.Clients, BatchSize: o.Batch, GOMAXPROCS: runtime.GOMAXPROCS(0)}
	ctx := context.Background()
	hot := "/user[@id='u']/address-book"

	rig, err := newResolveRig(o, false)
	if err != nil {
		return nil, err
	}
	defer rig.close()

	// Per-mode pooled samples and elapsed time across all waves.
	type pool struct {
		h       *metrics.Histogram
		elapsed time.Duration
		n       int
	}
	pools := map[string]*pool{}
	for _, k := range []string{"referral-off", "chaining-off", "referral-on", "chaining-on"} {
		pools[k] = &pool{h: metrics.NewHistogram()}
	}
	key := func(phase string, traced bool) string {
		if traced {
			return phase + "-on"
		}
		return phase + "-off"
	}

	// referral and chaining run one wave in one mode, pooling samples for
	// the report table and returning the wave's own p95 for the paired
	// per-wave comparison.
	referral := func(traced bool, rounds int) (int64, error) {
		p := pools[key("referral", traced)]
		wh := metrics.NewHistogram()
		elapsed, err := rig.runClients(o, false, func(cli *core.Client) error {
			if !traced {
				cli.Tracer = nil
			}
			for i := 0; i < rounds; i++ {
				t0 := time.Now()
				results, err := cli.GetBatch(ctx, rig.paths)
				if err != nil {
					return err
				}
				per := time.Since(t0) / time.Duration(len(rig.paths))
				for _, res := range results {
					if res.Err != nil {
						return res.Err
					}
					p.h.Record(per)
					wh.Record(per)
				}
			}
			return nil
		})
		if err != nil {
			return 0, err
		}
		p.elapsed += elapsed
		p.n += o.Clients * rounds * o.Batch
		return wh.Percentile(95).Microseconds(), nil
	}
	chaining := func(traced bool, rounds int) (int64, error) {
		p := pools[key("chaining", traced)]
		wh := metrics.NewHistogram()
		elapsed, err := rig.runClients(o, false, func(cli *core.Client) error {
			if !traced {
				cli.Tracer = nil
			}
			for i := 0; i < rounds; i++ {
				t0 := time.Now()
				if _, err := cli.GetVia(ctx, hot, wire.PatternChaining); err != nil {
					return err
				}
				p.h.Record(time.Since(t0))
				wh.Record(time.Since(t0))
			}
			return nil
		})
		if err != nil {
			return 0, err
		}
		p.elapsed += elapsed
		p.n += o.Clients * rounds
		return wh.Percentile(95).Microseconds(), nil
	}

	perWave := func(total int) int {
		n := total / overheadWaves
		if n < 1 {
			n = 1
		}
		return n
	}
	var refRatios, chainRatios []float64
	for wave := 0; wave < overheadWaves; wave++ {
		flip := wave%2 == 1 // cancel warm-up order bias
		wp := map[string]int64{}
		order := []bool{false, true}
		if flip {
			order = []bool{true, false}
		}
		for _, traced := range order {
			p95, err := referral(traced, perWave(o.Rounds))
			if err != nil {
				return nil, err
			}
			wp[key("referral", traced)] = p95
			if p95, err = chaining(traced, perWave(o.ChainRounds)); err != nil {
				return nil, err
			}
			wp[key("chaining", traced)] = p95
		}
		if off := wp["referral-off"]; off > 0 {
			refRatios = append(refRatios, float64(wp["referral-on"])/float64(off))
		}
		if off := wp["chaining-off"]; off > 0 {
			chainRatios = append(chainRatios, float64(wp["chaining-on"])/float64(off))
		}
	}
	for _, k := range []string{"referral-off", "chaining-off", "referral-on", "chaining-on"} {
		p := pools[k]
		report.Modes = append(report.Modes, TraceMode{
			Name: k, Traced: k[len(k)-3:] == "-on", Resolves: p.n,
			P50Micros:      p.h.Percentile(50).Microseconds(),
			P95Micros:      p.h.Percentile(95).Microseconds(),
			P99Micros:      p.h.Percentile(99).Microseconds(),
			ResolvesPerSec: float64(p.n) / p.elapsed.Seconds(),
		})
	}
	report.MDMSpans = rig.mdm.Tracer().SpanCount()

	// The headline overhead is the median of the per-wave paired p95
	// ratios, not the ratio of pooled p95s: pooled tails are owned by
	// whichever single wave the machine noise hit, while the median of
	// adjacent-wave comparisons discards those outliers.
	report.OverheadReferral = medianRatio(refRatios) - 1
	report.OverheadChaining = medianRatio(chainRatios) - 1
	report.Overhead = report.OverheadReferral
	if report.OverheadChaining > report.Overhead {
		report.Overhead = report.OverheadChaining
	}
	return report, nil
}

// medianRatio returns the median of rs (1 when empty).
func medianRatio(rs []float64) float64 {
	if len(rs) == 0 {
		return 1
	}
	s := append([]float64(nil), rs...)
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
	if len(s)%2 == 1 {
		return s[len(s)/2]
	}
	return (s[len(s)/2-1] + s[len(s)/2]) / 2
}

// Table renders the report in the EXPERIMENTS.md house style.
func (r *TraceOverheadReport) Table() *metrics.Table {
	t := metrics.NewTable(
		fmt.Sprintf("E17 — tracing overhead: %d clients, batch %d (p95 overhead: referral %+.1f%%, chaining %+.1f%%; MDM spans %d)",
			r.Clients, r.BatchSize, r.OverheadReferral*100, r.OverheadChaining*100, r.MDMSpans),
		"mode", "resolves", "p50", "p95", "p99", "resolves/s")
	for _, m := range r.Modes {
		t.AddRow(m.Name, m.Resolves,
			time.Duration(m.P50Micros)*time.Microsecond,
			time.Duration(m.P95Micros)*time.Microsecond,
			time.Duration(m.P99Micros)*time.Microsecond,
			fmt.Sprintf("%.0f", m.ResolvesPerSec))
	}
	return t
}

// RunE17 adapts the tracing-overhead benchmark to the experiment-driver
// signature: Iters overrides the per-client round counts.
func RunE17(o Options) (*metrics.Table, error) {
	ro := ResolveOptions{}
	if o.Iters > 0 {
		ro.Rounds, ro.ChainRounds = o.Iters, o.Iters
		ro.Clients = 4 // keep smoke runs small
	}
	rep, err := RunTraceOverheadReport(ro)
	if err != nil {
		return nil, err
	}
	return rep.Table(), nil
}

// WriteTraceOverheadReport writes the report as indented JSON.
func WriteTraceOverheadReport(r *TraceOverheadReport, path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// CheckTraceOverhead gates the run: the traced p95 must stay within max
// (0.05 = +5%) of the untraced p95 in both phases, and the traced pass
// must actually have produced spans.
func CheckTraceOverhead(r *TraceOverheadReport, max float64) error {
	if r.MDMSpans == 0 {
		return fmt.Errorf("trace overhead: traced pass recorded no spans at the MDM — tracing was not exercised")
	}
	if r.Overhead > max {
		return fmt.Errorf("trace overhead: p95 overhead %.1f%% exceeds the %.1f%% budget (referral %+.1f%%, chaining %+.1f%%)",
			r.Overhead*100, max*100, r.OverheadReferral*100, r.OverheadChaining*100)
	}
	return nil
}
