package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sort"
	"time"

	"gupster/internal/metrics"
	"gupster/internal/scenario"
)

// E17 — the tracing-overhead benchmark: the resolve testbed of E16 run
// twice on the pipelined configuration, once with client tracing disabled
// and once with it on (the default), comparing resolve p95. Tracing is
// designed to be cheap enough to leave on in production — one span per
// hop, a short critical section per span, spans piggybacked on frames the
// request sends anyway — so the acceptance gate requires the traced p95 to
// stay within a small fraction of the untraced one. The wave pairs are
// expressed as alternating phases of one scenario on one shared rig; this
// file keeps the paired-ratio statistics, the report format and the gate.

// TraceMode is one measured configuration of the overhead comparison.
type TraceMode struct {
	Name           string  `json:"name"`
	Traced         bool    `json:"traced"`
	Resolves       int     `json:"resolves"`
	P50Micros      int64   `json:"p50_us"`
	P95Micros      int64   `json:"p95_us"`
	P99Micros      int64   `json:"p99_us"`
	ResolvesPerSec float64 `json:"resolves_per_sec"`
}

// TraceOverheadReport is the machine-readable output of E17.
type TraceOverheadReport struct {
	Clients    int         `json:"clients"`
	BatchSize  int         `json:"batch_size"`
	GOMAXPROCS int         `json:"gomaxprocs"`
	Modes      []TraceMode `json:"modes"`
	// OverheadReferral and OverheadChaining are the relative p95 cost of
	// tracing per phase ((on-off)/off; negative means the traced run was
	// faster, i.e. noise).
	OverheadReferral float64 `json:"overhead_referral"`
	OverheadChaining float64 `json:"overhead_chaining"`
	// Overhead is the worse of the two — the acceptance headline.
	Overhead float64 `json:"overhead"`
	// MDMSpans is the span count the MDM collector retained during the
	// traced pass, proving tracing was actually exercised.
	MDMSpans int `json:"mdm_spans"`
}

// Mode returns the named mode, or nil.
func (r *TraceOverheadReport) Mode(name string) *TraceMode {
	for i := range r.Modes {
		if r.Modes[i].Name == name {
			return &r.Modes[i]
		}
	}
	return nil
}

// overheadWaves is how many short alternating off/on wave-pairs E17 runs
// per phase. A paired, interleaved design — not one long pass per mode —
// is what makes the comparison stable on the small shared machines CI
// runs on: machine-level noise (GC, a neighbor stealing the core) hits
// adjacent waves of both modes alike and cancels in the ratio, where
// back-to-back monolithic passes would attribute it all to one mode.
const overheadWaves = 6

// traceScenario expresses E17 as one scenario: a single pipelined E16
// rig carrying overheadWaves alternating wave-pairs, each pair a traced
// and an untraced referral + chaining phase, order flipped per wave to
// cancel warm-up bias.
func traceScenario(o ResolveOptions) *scenario.Scenario {
	sc := &scenario.Scenario{
		Name: "e17_trace",
		Seed: 17,
		Topology: scenario.Topology{Rigs: []scenario.RigSpec{
			resolveRigSpec(o, "pipelined", false),
		}},
	}
	perWave := func(total int) int {
		n := total / overheadWaves
		if n < 1 {
			n = 1
		}
		return n
	}
	tag := map[bool]string{false: "off", true: "on"}
	for wave := 0; wave < overheadWaves; wave++ {
		order := []bool{false, true}
		if wave%2 == 1 { // cancel warm-up order bias
			order = []bool{true, false}
		}
		for _, traced := range order {
			traced := traced
			sc.Phases = append(sc.Phases,
				scenario.Phase{
					Name: fmt.Sprintf("w%d-referral-%s", wave, tag[traced]),
					Rig:  "pipelined", Clients: o.Clients, Rounds: perWave(o.Rounds),
					Trace: &traced,
					Mix:   []scenario.MixEntry{{Verb: scenario.VerbResolve, Pattern: "referral", Batch: true}},
				},
				scenario.Phase{
					Name: fmt.Sprintf("w%d-chaining-%s", wave, tag[traced]),
					Rig:  "pipelined", Clients: o.Clients, Rounds: perWave(o.ChainRounds),
					Trace: &traced,
					Mix:   []scenario.MixEntry{{Verb: scenario.VerbResolve, Pattern: "chaining"}},
				})
		}
	}
	return sc
}

// RunTraceOverheadReport executes E17: referral-batched and
// chaining-coalesced phases, traced vs untraced, on one shared rig (same
// stores, same injected latency) so the only variable is tracing. Unlike
// E16 the default load is deliberately light (4 clients): overhead must be
// measured below CPU saturation — at saturation every client's tracing
// CPU serializes onto the run queue and the gate measures queueing, not
// the per-request cost.
func RunTraceOverheadReport(o ResolveOptions) (*TraceOverheadReport, error) {
	if o.Clients == 0 {
		o.Clients = 4
	}
	if o.Rounds == 0 {
		o.Rounds = 24
	}
	if o.ChainRounds == 0 {
		o.ChainRounds = 24
	}
	o = o.withDefaults()
	run, err := scenario.Run(traceScenario(o), scenario.RunOptions{})
	if err != nil {
		return nil, err
	}
	report := &TraceOverheadReport{Clients: o.Clients, BatchSize: o.Batch, GOMAXPROCS: runtime.GOMAXPROCS(0)}
	report.MDMSpans = run.MDMSpans

	// Pool the wave phases per mode and collect the per-wave paired p95s.
	type pool struct {
		n                int
		elapsed          time.Duration
		p50s, p95s, p99s []int64
	}
	pools := map[string]*pool{}
	wp := make(map[string]int64) // "<wave>-<phase>-<mode>" p95s
	for i := range run.Phases {
		p := &run.Phases[i]
		if p.Errors > 0 {
			return nil, fmt.Errorf("e17: phase %s had %d resolve errors", p.Name, p.Errors)
		}
		var wave int
		var phase, mode string
		if _, err := fmt.Sscanf(p.Name, "w%d-", &wave); err != nil {
			return nil, fmt.Errorf("e17: unexpected phase name %q", p.Name)
		}
		rest := p.Name[len(fmt.Sprintf("w%d-", wave)):]
		for _, ph := range []string{"referral", "chaining"} {
			for _, m := range []string{"off", "on"} {
				if rest == ph+"-"+m {
					phase, mode = ph, m
				}
			}
		}
		key := phase + "-" + mode
		pl := pools[key]
		if pl == nil {
			pl = &pool{}
			pools[key] = pl
		}
		pl.n += p.Sent
		pl.elapsed += time.Duration(p.DurationMillis) * time.Millisecond
		pl.p50s = append(pl.p50s, p.P50Micros)
		pl.p95s = append(pl.p95s, p.P95Micros)
		pl.p99s = append(pl.p99s, p.P99Micros)
		wp[p.Name] = p.P95Micros
	}
	for _, k := range []string{"referral-off", "chaining-off", "referral-on", "chaining-on"} {
		pl := pools[k]
		if pl == nil {
			continue
		}
		report.Modes = append(report.Modes, TraceMode{
			Name: k, Traced: k[len(k)-3:] == "-on", Resolves: pl.n,
			P50Micros:      medianInt64(pl.p50s),
			P95Micros:      medianInt64(pl.p95s),
			P99Micros:      medianInt64(pl.p99s),
			ResolvesPerSec: float64(pl.n) / pl.elapsed.Seconds(),
		})
	}

	var refRatios, chainRatios []float64
	for wave := 0; wave < overheadWaves; wave++ {
		if off := wp[fmt.Sprintf("w%d-referral-off", wave)]; off > 0 {
			refRatios = append(refRatios, float64(wp[fmt.Sprintf("w%d-referral-on", wave)])/float64(off))
		}
		if off := wp[fmt.Sprintf("w%d-chaining-off", wave)]; off > 0 {
			chainRatios = append(chainRatios, float64(wp[fmt.Sprintf("w%d-chaining-on", wave)])/float64(off))
		}
	}

	// The headline overhead is the median of the per-wave paired p95
	// ratios, not the ratio of pooled p95s: pooled tails are owned by
	// whichever single wave the machine noise hit, while the median of
	// adjacent-wave comparisons discards those outliers.
	report.OverheadReferral = medianRatio(refRatios) - 1
	report.OverheadChaining = medianRatio(chainRatios) - 1
	report.Overhead = report.OverheadReferral
	if report.OverheadChaining > report.Overhead {
		report.Overhead = report.OverheadChaining
	}
	return report, nil
}

// medianRatio returns the median of rs (1 when empty).
func medianRatio(rs []float64) float64 {
	if len(rs) == 0 {
		return 1
	}
	s := append([]float64(nil), rs...)
	sort.Float64s(s)
	if len(s)%2 == 1 {
		return s[len(s)/2]
	}
	return (s[len(s)/2-1] + s[len(s)/2]) / 2
}

// medianInt64 returns the median of vs (0 when empty).
func medianInt64(vs []int64) int64 {
	if len(vs) == 0 {
		return 0
	}
	s := append([]int64(nil), vs...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	return s[len(s)/2]
}

// Table renders the report in the EXPERIMENTS.md house style.
func (r *TraceOverheadReport) Table() *metrics.Table {
	t := metrics.NewTable(
		fmt.Sprintf("E17 — tracing overhead: %d clients, batch %d (p95 overhead: referral %+.1f%%, chaining %+.1f%%; MDM spans %d)",
			r.Clients, r.BatchSize, r.OverheadReferral*100, r.OverheadChaining*100, r.MDMSpans),
		"mode", "resolves", "p50", "p95", "p99", "resolves/s")
	for _, m := range r.Modes {
		t.AddRow(m.Name, m.Resolves,
			time.Duration(m.P50Micros)*time.Microsecond,
			time.Duration(m.P95Micros)*time.Microsecond,
			time.Duration(m.P99Micros)*time.Microsecond,
			fmt.Sprintf("%.0f", m.ResolvesPerSec))
	}
	return t
}

// RunE17 adapts the tracing-overhead benchmark to the experiment-driver
// signature: Iters overrides the per-client round counts.
func RunE17(o Options) (*metrics.Table, error) {
	ro := ResolveOptions{}
	if o.Iters > 0 {
		ro.Rounds, ro.ChainRounds = o.Iters, o.Iters
		ro.Clients = 4 // keep smoke runs small
	}
	rep, err := RunTraceOverheadReport(ro)
	if err != nil {
		return nil, err
	}
	return rep.Table(), nil
}

// WriteTraceOverheadReport writes the report as indented JSON.
func WriteTraceOverheadReport(r *TraceOverheadReport, path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// CheckTraceOverhead gates the run: the traced p95 must stay within max
// (0.05 = +5%) of the untraced p95 in both phases, and the traced pass
// must actually have produced spans.
func CheckTraceOverhead(r *TraceOverheadReport, max float64) error {
	if r.MDMSpans == 0 {
		return fmt.Errorf("trace overhead: traced pass recorded no spans at the MDM — tracing was not exercised")
	}
	if r.Overhead > max {
		return fmt.Errorf("trace overhead: p95 overhead %.1f%% exceeds the %.1f%% budget (referral %+.1f%%, chaining %+.1f%%)",
			r.Overhead*100, max*100, r.OverheadReferral*100, r.OverheadChaining*100)
	}
	return nil
}
