package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sync"
	"time"

	"gupster/internal/core"
	"gupster/internal/coverage"
	"gupster/internal/faultinject"
	"gupster/internal/metrics"
	"gupster/internal/resilience"
	"gupster/internal/schema"
	"gupster/internal/store"
	"gupster/internal/token"
	"gupster/internal/wire"
	"gupster/internal/workload"
	"gupster/internal/xmltree"
	"gupster/internal/xpath"
)

// E16 — the resolve-pipeline benchmark behind BENCH_resolve.json: a
// 64-concurrent-client testbed comparing the pre-PR resolve path (one
// round trip per resolve, serial MDM piece fetches, no coalescing) against
// the pipelined path (batch resolves, bounded parallel fan-out, in-flight
// coalescing). The report is machine-readable so CI can diff it against
// the committed baseline and fail on p95 regressions.

// ResolveOptions sizes the E16 testbed.
type ResolveOptions struct {
	// Clients is the number of concurrent clients; default 64.
	Clients int
	// Rounds is the referral-phase rounds per client (each round resolves
	// Batch paths); default 15.
	Rounds int
	// ChainRounds is the chaining-phase rounds per client; default 20.
	ChainRounds int
	// Batch is the number of per-type address-book splits — the batch
	// width and store count; default 8.
	Batch int
	// SizeBytes is the address-book payload size; default 4 KiB.
	SizeBytes int
	// Latency is the injected one-way link latency between every pair of
	// components (client↔MDM, client↔store, MDM↔store), emulating the
	// converged-network deployment the paper targets instead of bare
	// loopback; default 2ms. Negative disables injection.
	Latency time.Duration
}

func (o ResolveOptions) withDefaults() ResolveOptions {
	if o.Clients <= 0 {
		o.Clients = 64
	}
	if o.Rounds <= 0 {
		o.Rounds = 8
	}
	if o.ChainRounds <= 0 {
		o.ChainRounds = 5
	}
	if o.Batch <= 0 {
		o.Batch = 8
	}
	if o.SizeBytes <= 0 {
		o.SizeBytes = 4 << 10
	}
	if o.Latency == 0 {
		o.Latency = 10 * time.Millisecond
	}
	if o.Latency < 0 {
		o.Latency = 0
	}
	return o
}

// ResolveMode is one measured configuration of the resolve pipeline.
type ResolveMode struct {
	Name            string  `json:"name"`
	Resolves        int     `json:"resolves"`
	P50Micros       int64   `json:"p50_us"`
	P95Micros       int64   `json:"p95_us"`
	P99Micros       int64   `json:"p99_us"`
	ResolvesPerSec  float64 `json:"resolves_per_sec"`
	CoalesceHitRate float64 `json:"coalesce_hit_rate"`
	FanOutCalls     uint64  `json:"fan_out_calls"`
}

// ResolveReport is the machine-readable output of the E16 benchmark.
type ResolveReport struct {
	Clients    int           `json:"clients"`
	BatchSize  int           `json:"batch_size"`
	GOMAXPROCS int           `json:"gomaxprocs"`
	Modes      []ResolveMode `json:"modes"`
	// SpeedupReferral is batched resolves/sec over serial resolves/sec —
	// the acceptance headline.
	SpeedupReferral float64 `json:"speedup_referral"`
	// SpeedupChaining is coalesced chaining resolves/sec over the
	// uncoalesced serial-fan-out baseline.
	SpeedupChaining float64 `json:"speedup_chaining"`
}

// Mode returns the named mode, or nil.
func (r *ResolveReport) Mode(name string) *ResolveMode {
	for i := range r.Modes {
		if r.Modes[i].Name == name {
			return &r.Modes[i]
		}
	}
	return nil
}

// resolveRig is the E16 testbed: one MDM fronting Batch stores, each
// holding one per-type split of a user's address book. baseline=true
// configures the MDM the way the code behaved before the pipeline work:
// no coalescing and serial piece fetches.
type resolveRig struct {
	mdm     *core.MDM
	mdmSrv  *core.Server
	mdmAddr string // through the latency proxy when injection is on
	stores  []*store.Server
	proxies []*faultinject.Proxy
	paths   []string
}

// viaLatency wraps addr in a latency-injecting proxy when latency > 0,
// emulating one network link of the converged deployment.
func (r *resolveRig) viaLatency(addr string, latency time.Duration, seed int64) (string, error) {
	if latency <= 0 {
		return addr, nil
	}
	p, err := faultinject.NewProxy(addr, seed)
	if err != nil {
		return "", err
	}
	p.SetLatency(latency, 0)
	r.proxies = append(r.proxies, p)
	return p.Addr(), nil
}

func newResolveRig(o ResolveOptions, baseline bool) (*resolveRig, error) {
	signer := token.NewSigner(benchKey)
	cfg := core.Config{
		Schema: schema.GUP(), Signer: signer, GrantTTL: time.Minute,
		// Uncoalesced chaining at 64-way concurrency queues fetches behind
		// the injected link latency; a wide per-attempt budget keeps the
		// baseline measuring queuing, not tripping retries.
		Retry: resilience.Policy{MaxAttempts: 2, PerAttempt: 30 * time.Second},
	}
	if baseline {
		cfg.DisableCoalescing = true
		cfg.FanOut = 1
	}
	mdm := core.New(cfg)
	srv := core.NewServer(mdm)
	if err := srv.Start("127.0.0.1:0"); err != nil {
		return nil, err
	}
	r := &resolveRig{mdm: mdm, mdmSrv: srv}
	mdmAddr, err := r.viaLatency(srv.Addr(), o.Latency, 0)
	if err != nil {
		r.close()
		return nil, err
	}
	r.mdmAddr = mdmAddr

	book := workload.AddressBookOfSize(o.SizeBytes, workload.Rand(1))
	pieces := make([]*xmltree.Node, o.Batch)
	for i := range pieces {
		pieces[i] = xmltree.New("address-book")
	}
	for i, item := range book.ChildrenNamed("item") {
		it := item.Clone()
		it.SetAttr("type", fmt.Sprintf("t%d", i%o.Batch))
		pieces[i%o.Batch].Add(it)
	}
	for i := 0; i < o.Batch; i++ {
		eng := store.NewEngine(fmt.Sprintf("store-%d", i))
		ssrv := store.NewServer(eng, signer)
		if err := ssrv.Start("127.0.0.1:0"); err != nil {
			r.close()
			return nil, err
		}
		r.stores = append(r.stores, ssrv)
		if _, err := eng.Put("u", xpath.MustParse("/user[@id='u']/address-book"), pieces[i]); err != nil {
			r.close()
			return nil, err
		}
		storeAddr, err := r.viaLatency(ssrv.Addr(), o.Latency, int64(i+1))
		if err != nil {
			r.close()
			return nil, err
		}
		reg := fmt.Sprintf("/user[@id='u']/address-book/item[@type='t%d']", i)
		if err := mdm.Register(coverage.StoreID(eng.ID()), storeAddr, xpath.MustParse(reg)); err != nil {
			r.close()
			return nil, err
		}
		r.paths = append(r.paths, reg)
	}
	return r, nil
}

func (r *resolveRig) close() {
	if r.mdm != nil {
		r.mdm.Close()
	}
	if r.mdmSrv != nil {
		r.mdmSrv.Close()
	}
	for _, s := range r.stores {
		s.Close()
	}
	for _, p := range r.proxies {
		p.Close()
	}
}

// runClients runs fn concurrently on o.Clients fresh connections and
// returns the wall-clock of the whole phase.
func (r *resolveRig) runClients(o ResolveOptions, baseline bool, fn func(cli *core.Client) error) (time.Duration, error) {
	var wg sync.WaitGroup
	errCh := make(chan error, o.Clients)
	start := time.Now()
	for c := 0; c < o.Clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			cli, err := core.DialMDM(r.mdmAddr, "u", "self")
			if err != nil {
				errCh <- err
				return
			}
			defer cli.Close()
			if baseline {
				cli.DisableCoalescing = true
			}
			if err := fn(cli); err != nil {
				errCh <- err
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)
	close(errCh)
	if err := <-errCh; err != nil {
		return 0, err
	}
	return elapsed, nil
}

func modeRow(name string, h *metrics.Histogram, resolves int, elapsed time.Duration, hitRate float64, fanOutCalls uint64) ResolveMode {
	return ResolveMode{
		Name:            name,
		Resolves:        resolves,
		P50Micros:       h.Percentile(50).Microseconds(),
		P95Micros:       h.Percentile(95).Microseconds(),
		P99Micros:       h.Percentile(99).Microseconds(),
		ResolvesPerSec:  float64(resolves) / elapsed.Seconds(),
		CoalesceHitRate: hitRate,
		FanOutCalls:     fanOutCalls,
	}
}

// RunResolveReport executes the E16 benchmark and returns the report.
func RunResolveReport(o ResolveOptions) (*ResolveReport, error) {
	o = o.withDefaults()
	report := &ResolveReport{Clients: o.Clients, BatchSize: o.Batch, GOMAXPROCS: runtime.GOMAXPROCS(0)}
	ctx := context.Background()
	hot := "/user[@id='u']/address-book"

	for _, baseline := range []bool{true, false} {
		rig, err := newResolveRig(o, baseline)
		if err != nil {
			return nil, err
		}

		// Referral phase: each round resolves every split path. The
		// baseline makes one resolve + fetch round trip per path (the
		// pre-PR client loop); the pipeline sends one batch-resolve frame
		// and follows the referrals on the bounded pool.
		h := metrics.NewHistogram()
		elapsed, err := rig.runClients(o, baseline, func(cli *core.Client) error {
			for i := 0; i < o.Rounds; i++ {
				if baseline {
					for _, p := range rig.paths {
						t0 := time.Now()
						if _, err := cli.Get(ctx, p); err != nil {
							return err
						}
						h.Record(time.Since(t0))
					}
					continue
				}
				t0 := time.Now()
				results, err := cli.GetBatch(ctx, rig.paths)
				if err != nil {
					return err
				}
				per := time.Since(t0) / time.Duration(len(rig.paths))
				for _, res := range results {
					if res.Err != nil {
						return res.Err
					}
					h.Record(per)
				}
			}
			return nil
		})
		if err != nil {
			rig.close()
			return nil, err
		}
		resolves := o.Clients * o.Rounds * o.Batch
		name := "referral-serial"
		if !baseline {
			name = "referral-batched"
		}
		ps := rig.mdm.Pipeline().Snapshot()
		report.Modes = append(report.Modes, modeRow(name, h, resolves, elapsed, 0, ps.FanOutCalls))

		// Chaining phase: every client hammers the same hot path through
		// the MDM. The pipeline coalesces the concurrent flights into one
		// upstream fan-out; the baseline performs every fetch.
		h = metrics.NewHistogram()
		before := rig.mdm.Pipeline().Snapshot()
		elapsed, err = rig.runClients(o, baseline, func(cli *core.Client) error {
			for i := 0; i < o.ChainRounds; i++ {
				t0 := time.Now()
				if _, err := cli.GetVia(ctx, hot, wire.PatternChaining); err != nil {
					return err
				}
				h.Record(time.Since(t0))
			}
			return nil
		})
		if err != nil {
			rig.close()
			return nil, err
		}
		after := rig.mdm.Pipeline().Snapshot()
		resolves = o.Clients * o.ChainRounds
		flights := after.Flights - before.Flights
		hits := after.CoalesceHits - before.CoalesceHits
		hitRate := 0.0
		if flights+hits > 0 {
			hitRate = float64(hits) / float64(flights+hits)
		}
		name = "chaining-serial"
		if !baseline {
			name = "chaining-coalesced"
		}
		report.Modes = append(report.Modes, modeRow(name, h, resolves, elapsed, hitRate, after.FanOutCalls-before.FanOutCalls))
		rig.close()
	}

	if s, b := report.Mode("referral-serial"), report.Mode("referral-batched"); s != nil && b != nil && s.ResolvesPerSec > 0 {
		report.SpeedupReferral = b.ResolvesPerSec / s.ResolvesPerSec
	}
	if s, c := report.Mode("chaining-serial"), report.Mode("chaining-coalesced"); s != nil && c != nil && s.ResolvesPerSec > 0 {
		report.SpeedupChaining = c.ResolvesPerSec / s.ResolvesPerSec
	}
	return report, nil
}

// Table renders the report in the EXPERIMENTS.md house style.
func (r *ResolveReport) Table() *metrics.Table {
	t := metrics.NewTable(
		fmt.Sprintf("E16 — resolve pipeline: %d clients, batch %d (speedup: referral %.2fx, chaining %.2fx)",
			r.Clients, r.BatchSize, r.SpeedupReferral, r.SpeedupChaining),
		"mode", "resolves", "p50", "p95", "p99", "resolves/s", "coalesce hit", "fan-out calls")
	for _, m := range r.Modes {
		t.AddRow(m.Name, m.Resolves,
			time.Duration(m.P50Micros)*time.Microsecond,
			time.Duration(m.P95Micros)*time.Microsecond,
			time.Duration(m.P99Micros)*time.Microsecond,
			fmt.Sprintf("%.0f", m.ResolvesPerSec),
			fmt.Sprintf("%.0f%%", m.CoalesceHitRate*100),
			m.FanOutCalls)
	}
	return t
}

// RunE16 adapts the resolve benchmark to the experiment-driver signature:
// Iters overrides the per-client round counts.
func RunE16(o Options) (*metrics.Table, error) {
	ro := ResolveOptions{}
	if o.Iters > 0 {
		ro.Rounds, ro.ChainRounds = o.Iters, o.Iters
		ro.Clients = 8 // keep smoke runs small
	}
	rep, err := RunResolveReport(ro)
	if err != nil {
		return nil, err
	}
	return rep.Table(), nil
}

// WriteResolveReport writes the report as indented JSON.
func WriteResolveReport(r *ResolveReport, path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// ReadResolveReport loads a committed report.
func ReadResolveReport(path string) (*ResolveReport, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r ResolveReport
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, err
	}
	return &r, nil
}

// CheckResolveRegression compares a fresh report against the committed
// baseline: every mode present in both must keep its p95 within slack
// (0.25 = +25%) of the baseline, and the within-run referral speedup —
// which is machine-independent, both sides having run on the same host —
// must not fall below minSpeedup. Returns nil when the run is acceptable.
func CheckResolveRegression(baseline, current *ResolveReport, slack, minSpeedup float64) error {
	var problems []string
	for _, bm := range baseline.Modes {
		cm := current.Mode(bm.Name)
		if cm == nil {
			problems = append(problems, fmt.Sprintf("mode %q missing from current run", bm.Name))
			continue
		}
		if bm.P95Micros > 0 {
			limit := float64(bm.P95Micros) * (1 + slack)
			if float64(cm.P95Micros) > limit {
				problems = append(problems, fmt.Sprintf(
					"%s: p95 %dµs exceeds baseline %dµs by more than %.0f%%",
					bm.Name, cm.P95Micros, bm.P95Micros, slack*100))
			}
		}
	}
	if minSpeedup > 0 && current.SpeedupReferral < minSpeedup {
		problems = append(problems, fmt.Sprintf(
			"referral speedup %.2fx below required %.2fx", current.SpeedupReferral, minSpeedup))
	}
	if len(problems) == 0 {
		return nil
	}
	msg := "bench regression:"
	for _, p := range problems {
		msg += "\n  - " + p
	}
	return fmt.Errorf("%s", msg)
}
