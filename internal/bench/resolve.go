package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"gupster/internal/metrics"
	"gupster/internal/scenario"
)

// E16 — the resolve-pipeline benchmark behind BENCH_resolve.json: a
// 64-concurrent-client testbed comparing the pre-PR resolve path (one
// round trip per resolve, serial MDM piece fetches, no coalescing) against
// the pipelined path (batch resolves, bounded parallel fan-out, in-flight
// coalescing). The rig construction and phase loops live in
// internal/scenario (the committed e16_resolve.yaml is the same
// experiment in declarative form); this file keeps the flag surface, the
// machine-readable report format and the CI regression gate.

// ResolveOptions sizes the E16 testbed.
type ResolveOptions struct {
	// Clients is the number of concurrent clients; default 64.
	Clients int
	// Rounds is the referral-phase rounds per client (each round resolves
	// Batch paths); default 8.
	Rounds int
	// ChainRounds is the chaining-phase rounds per client; default 5.
	ChainRounds int
	// Batch is the number of per-type address-book splits — the batch
	// width and store count; default 8.
	Batch int
	// SizeBytes is the address-book payload size; default 4 KiB.
	SizeBytes int
	// Latency is the injected one-way link latency between every pair of
	// components (client↔MDM, client↔store, MDM↔store), emulating the
	// converged-network deployment the paper targets instead of bare
	// loopback; default 2ms. Negative disables injection.
	Latency time.Duration
}

func (o ResolveOptions) withDefaults() ResolveOptions {
	if o.Clients <= 0 {
		o.Clients = 64
	}
	if o.Rounds <= 0 {
		o.Rounds = 8
	}
	if o.ChainRounds <= 0 {
		o.ChainRounds = 5
	}
	if o.Batch <= 0 {
		o.Batch = 8
	}
	if o.SizeBytes <= 0 {
		o.SizeBytes = 4 << 10
	}
	if o.Latency == 0 {
		o.Latency = 10 * time.Millisecond
	}
	if o.Latency < 0 {
		o.Latency = 0
	}
	return o
}

// ResolveMode is one measured configuration of the resolve pipeline.
type ResolveMode struct {
	Name            string  `json:"name"`
	Resolves        int     `json:"resolves"`
	P50Micros       int64   `json:"p50_us"`
	P95Micros       int64   `json:"p95_us"`
	P99Micros       int64   `json:"p99_us"`
	ResolvesPerSec  float64 `json:"resolves_per_sec"`
	CoalesceHitRate float64 `json:"coalesce_hit_rate"`
	FanOutCalls     uint64  `json:"fan_out_calls"`
}

// ResolveReport is the machine-readable output of the E16 benchmark.
type ResolveReport struct {
	Clients    int           `json:"clients"`
	BatchSize  int           `json:"batch_size"`
	GOMAXPROCS int           `json:"gomaxprocs"`
	Modes      []ResolveMode `json:"modes"`
	// SpeedupReferral is batched resolves/sec over serial resolves/sec —
	// the acceptance headline.
	SpeedupReferral float64 `json:"speedup_referral"`
	// SpeedupChaining is coalesced chaining resolves/sec over the
	// uncoalesced serial-fan-out baseline.
	SpeedupChaining float64 `json:"speedup_chaining"`
}

// Mode returns the named mode, or nil.
func (r *ResolveReport) Mode(name string) *ResolveMode {
	for i := range r.Modes {
		if r.Modes[i].Name == name {
			return &r.Modes[i]
		}
	}
	return nil
}

// resolveRigSpec is the E16/E17 testbed rig: one MDM fronting Batch
// split-book stores behind latency-proxied links. baseline=true
// configures the pre-pipeline behavior (no coalescing, serial fetches,
// uncoalesced clients).
func resolveRigSpec(o ResolveOptions, name string, baseline bool) scenario.RigSpec {
	spec := scenario.RigSpec{
		Name:          name,
		Layout:        scenario.LayoutSplit,
		Stores:        o.Batch,
		SizeBytes:     o.SizeBytes,
		Baseline:      baseline,
		RetryAttempts: 2,
		PerAttempt:    30 * time.Second,
	}
	if o.Latency > 0 {
		spec.Links = scenario.LinkSet{
			MDM:    &scenario.LinkSpec{Latency: o.Latency},
			Stores: &scenario.LinkSpec{Latency: o.Latency},
		}
	}
	return spec
}

// resolveScenario expresses the E16 experiment as a scenario: two
// split-profile rigs (serial baseline, pipelined) behind latency-proxied
// links, a referral phase and a chaining phase each.
func resolveScenario(o ResolveOptions) *scenario.Scenario {
	referral := func(name, rigName string, batch bool) scenario.Phase {
		rounds := o.Rounds
		if !batch {
			// The serial baseline resolves one split path per round; give
			// it Rounds passes over all Batch paths so both sides measure
			// the same number of per-path resolves.
			rounds = o.Rounds * o.Batch
		}
		return scenario.Phase{
			Name: name, Rig: rigName, Clients: o.Clients, Rounds: rounds,
			Mix: []scenario.MixEntry{{Verb: scenario.VerbResolve, Pattern: "referral", Batch: batch}},
		}
	}
	chaining := func(name, rigName string) scenario.Phase {
		return scenario.Phase{
			Name: name, Rig: rigName, Clients: o.Clients, Rounds: o.ChainRounds,
			Mix: []scenario.MixEntry{{Verb: scenario.VerbResolve, Pattern: "chaining"}},
		}
	}
	return &scenario.Scenario{
		Name: "e16_resolve",
		Seed: 16,
		Topology: scenario.Topology{Rigs: []scenario.RigSpec{
			resolveRigSpec(o, "serial", true),
			resolveRigSpec(o, "pipelined", false),
		}},
		Phases: []scenario.Phase{
			referral("referral-serial", "serial", false),
			chaining("chaining-serial", "serial"),
			referral("referral-batched", "pipelined", true),
			chaining("chaining-coalesced", "pipelined"),
		},
	}
}

// RunResolveReport executes the E16 benchmark through the scenario
// engine and returns the report.
func RunResolveReport(o ResolveOptions) (*ResolveReport, error) {
	o = o.withDefaults()
	run, err := scenario.Run(resolveScenario(o), scenario.RunOptions{})
	if err != nil {
		return nil, err
	}
	report := &ResolveReport{Clients: o.Clients, BatchSize: o.Batch, GOMAXPROCS: runtime.GOMAXPROCS(0)}
	for _, p := range run.Phases {
		if p.Errors > 0 {
			return nil, fmt.Errorf("e16: phase %s had %d resolve errors", p.Name, p.Errors)
		}
		report.Modes = append(report.Modes, ResolveMode{
			Name:            p.Name,
			Resolves:        p.Sent,
			P50Micros:       p.P50Micros,
			P95Micros:       p.P95Micros,
			P99Micros:       p.P99Micros,
			ResolvesPerSec:  p.ThroughputPerSec,
			CoalesceHitRate: p.CoalesceHitRate,
			FanOutCalls:     p.FanOutCalls,
		})
	}
	if s, b := report.Mode("referral-serial"), report.Mode("referral-batched"); s != nil && b != nil && s.ResolvesPerSec > 0 {
		report.SpeedupReferral = b.ResolvesPerSec / s.ResolvesPerSec
	}
	if s, c := report.Mode("chaining-serial"), report.Mode("chaining-coalesced"); s != nil && c != nil && s.ResolvesPerSec > 0 {
		report.SpeedupChaining = c.ResolvesPerSec / s.ResolvesPerSec
	}
	return report, nil
}

// Table renders the report in the EXPERIMENTS.md house style.
func (r *ResolveReport) Table() *metrics.Table {
	t := metrics.NewTable(
		fmt.Sprintf("E16 — resolve pipeline: %d clients, batch %d (speedup: referral %.2fx, chaining %.2fx)",
			r.Clients, r.BatchSize, r.SpeedupReferral, r.SpeedupChaining),
		"mode", "resolves", "p50", "p95", "p99", "resolves/s", "coalesce hit", "fan-out calls")
	for _, m := range r.Modes {
		t.AddRow(m.Name, m.Resolves,
			time.Duration(m.P50Micros)*time.Microsecond,
			time.Duration(m.P95Micros)*time.Microsecond,
			time.Duration(m.P99Micros)*time.Microsecond,
			fmt.Sprintf("%.0f", m.ResolvesPerSec),
			fmt.Sprintf("%.0f%%", m.CoalesceHitRate*100),
			m.FanOutCalls)
	}
	return t
}

// RunE16 adapts the resolve benchmark to the experiment-driver signature:
// Iters overrides the per-client round counts.
func RunE16(o Options) (*metrics.Table, error) {
	ro := ResolveOptions{}
	if o.Iters > 0 {
		ro.Rounds, ro.ChainRounds = o.Iters, o.Iters
		ro.Clients = 8 // keep smoke runs small
	}
	rep, err := RunResolveReport(ro)
	if err != nil {
		return nil, err
	}
	return rep.Table(), nil
}

// WriteResolveReport writes the report as indented JSON.
func WriteResolveReport(r *ResolveReport, path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// ReadResolveReport loads a committed report.
func ReadResolveReport(path string) (*ResolveReport, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r ResolveReport
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, err
	}
	return &r, nil
}

// CheckResolveRegression compares a fresh report against the committed
// baseline: every mode present in both must keep its p95 within slack
// (0.25 = +25%) of the baseline, and the within-run referral speedup —
// which is machine-independent, both sides having run on the same host —
// must not fall below minSpeedup. Returns nil when the run is acceptable.
func CheckResolveRegression(baseline, current *ResolveReport, slack, minSpeedup float64) error {
	var problems []string
	for _, bm := range baseline.Modes {
		cm := current.Mode(bm.Name)
		if cm == nil {
			problems = append(problems, fmt.Sprintf("mode %q missing from current run", bm.Name))
			continue
		}
		if bm.P95Micros > 0 {
			limit := float64(bm.P95Micros) * (1 + slack)
			if float64(cm.P95Micros) > limit {
				problems = append(problems, fmt.Sprintf(
					"%s: p95 %dµs exceeds baseline %dµs by more than %.0f%%",
					bm.Name, cm.P95Micros, bm.P95Micros, slack*100))
			}
		}
	}
	if minSpeedup > 0 && current.SpeedupReferral < minSpeedup {
		problems = append(problems, fmt.Sprintf(
			"referral speedup %.2fx below required %.2fx", current.SpeedupReferral, minSpeedup))
	}
	if len(problems) == 0 {
		return nil
	}
	msg := "bench regression:"
	for _, p := range problems {
		msg += "\n  - " + p
	}
	return fmt.Errorf("%s", msg)
}
