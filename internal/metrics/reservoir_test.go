package metrics

import (
	"testing"
	"time"
)

// Regression for the unbounded-histogram leak: a histogram fed forever —
// the per-hop trace percentiles are — must hold memory constant while
// keeping the exact aggregates exact.
func TestHistogramReservoirBounded(t *testing.T) {
	h := NewHistogramCap(64)
	const n = 10000
	for i := 1; i <= n; i++ {
		h.Record(time.Duration(i) * time.Microsecond)
	}
	if got := h.Retained(); got != 64 {
		t.Fatalf("retained %d samples, want the 64-sample cap", got)
	}
	if got := h.Count(); got != n {
		t.Fatalf("count %d, want %d (counts every sample, retained or not)", got, n)
	}
	if got := h.Min(); got != 1*time.Microsecond {
		t.Fatalf("min %v, want 1µs exact", got)
	}
	if got := h.Max(); got != n*time.Microsecond {
		t.Fatalf("max %v, want %dµs exact", got, n)
	}
	sum := time.Duration(n*(n+1)/2) * time.Microsecond
	if got, want := h.Mean(), sum/n; got != want {
		t.Fatalf("mean %v, want %v exact", got, want)
	}
}

// Beyond the cap percentiles become estimates over a uniform subsample;
// on a uniform input the median estimate must stay near the true median.
func TestHistogramReservoirPercentileEstimate(t *testing.T) {
	h := NewHistogramCap(1024)
	const n = 100000
	for i := 1; i <= n; i++ {
		h.Record(time.Duration(i) * time.Microsecond)
	}
	p50 := h.Percentile(50)
	lo, hi := time.Duration(n/10*3)*time.Microsecond, time.Duration(n/10*7)*time.Microsecond
	if p50 < lo || p50 > hi {
		t.Fatalf("reservoir p50 = %v, want within [%v, %v] of the true median %v", p50, lo, hi, time.Duration(n/2)*time.Microsecond)
	}
}

// A zero-value Histogram must work (struct fields inside other structs).
func TestHistogramZeroValue(t *testing.T) {
	var h Histogram
	for i := 0; i < 100; i++ {
		h.Record(time.Millisecond)
	}
	if h.Count() != 100 || h.Percentile(50) != time.Millisecond {
		t.Fatalf("zero-value histogram: count %d p50 %v", h.Count(), h.Percentile(50))
	}
}

func TestHistogramHopStat(t *testing.T) {
	h := NewHistogram()
	for i := 1; i <= 100; i++ {
		h.Record(time.Duration(i) * time.Millisecond)
	}
	hs := h.HopStat("store.fetch")
	if hs.Name != "store.fetch" || hs.Count != 100 {
		t.Fatalf("hop stat %+v", hs)
	}
	if hs.P50Micros <= 0 || hs.P95Micros < hs.P50Micros || hs.MaxMicros != 100000 {
		t.Fatalf("hop stat percentiles inconsistent: %+v", hs)
	}
}
