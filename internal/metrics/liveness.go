package metrics

import "sync/atomic"

// LivenessStats counts the MDM's store-lease machinery: how often leases
// are renewed, how many silent stores were quarantined out of query plans,
// how many came back, and how often a resolve had to degrade to a partial
// result because every store covering a grant was quarantined.
type LivenessStats struct {
	// Renewals counts lease grants and renewals (register + heartbeat).
	Renewals atomic.Uint64
	// Quarantines counts transitions into quarantine (lease expired past
	// the grace period).
	Quarantines atomic.Uint64
	// Recoveries counts quarantined stores that heartbeat or re-registered
	// their way back into plans.
	Recoveries atomic.Uint64
	// PlanExclusions counts registrations skipped during planning because
	// their store was quarantined.
	PlanExclusions atomic.Uint64
	// DegradedResolves counts resolves that returned partial results
	// (at least one grant had no live coverage).
	DegradedResolves atomic.Uint64
}

// LivenessSnapshot is a point-in-time copy.
type LivenessSnapshot struct {
	Renewals         uint64
	Quarantines      uint64
	Recoveries       uint64
	PlanExclusions   uint64
	DegradedResolves uint64
}

// Snapshot copies the counters.
func (s *LivenessStats) Snapshot() LivenessSnapshot {
	return LivenessSnapshot{
		Renewals:         s.Renewals.Load(),
		Quarantines:      s.Quarantines.Load(),
		Recoveries:       s.Recoveries.Load(),
		PlanExclusions:   s.PlanExclusions.Load(),
		DegradedResolves: s.DegradedResolves.Load(),
	}
}
