package metrics

import "sync/atomic"

// PipelineStats aggregates the resolve pipeline's throughput counters:
// in-flight request coalescing (singleflight) and bounded parallel
// fan-out. The coalescing layer (internal/flight) feeds the first pair;
// the MDM's batch handler and fan-out call sites feed the rest. All
// fields are atomic; the zero value is ready to use.
type PipelineStats struct {
	// Flights counts coalesced groups actually executed — the leaders
	// that paid for an upstream round trip.
	Flights atomic.Uint64
	// CoalesceHits counts callers served by another caller's in-flight
	// leader instead of doing their own upstream work.
	CoalesceHits atomic.Uint64
	// FanOuts counts bounded parallel fan-out batches (one per
	// multi-referral alternative, sibling-gathering exec, or peer
	// replication round).
	FanOuts atomic.Uint64
	// FanOutCalls counts the individual calls those batches dispatched.
	FanOutCalls atomic.Uint64
	// BatchResolves counts batch-resolve frames served.
	BatchResolves atomic.Uint64
	// BatchedQueries counts the individual resolves carried inside those
	// frames.
	BatchedQueries atomic.Uint64
}

// CoalesceHitRate reports the fraction of coalesceable calls served by a
// leader's flight; zero before any traffic.
func (s *PipelineStats) CoalesceHitRate() float64 {
	hits := s.CoalesceHits.Load()
	total := hits + s.Flights.Load()
	if total == 0 {
		return 0
	}
	return float64(hits) / float64(total)
}

// PipelineSnapshot is a point-in-time view of PipelineStats.
type PipelineSnapshot struct {
	Flights        uint64
	CoalesceHits   uint64
	FanOuts        uint64
	FanOutCalls    uint64
	BatchResolves  uint64
	BatchedQueries uint64
}

// Snapshot captures the counters.
func (s *PipelineStats) Snapshot() PipelineSnapshot {
	return PipelineSnapshot{
		Flights:        s.Flights.Load(),
		CoalesceHits:   s.CoalesceHits.Load(),
		FanOuts:        s.FanOuts.Load(),
		FanOutCalls:    s.FanOutCalls.Load(),
		BatchResolves:  s.BatchResolves.Load(),
		BatchedQueries: s.BatchedQueries.Load(),
	}
}

// Table renders the snapshot as an aligned experiment table.
func (s PipelineSnapshot) Table() *Table {
	t := NewTable("pipeline", "counter", "value")
	t.AddRow("flights", s.Flights)
	t.AddRow("coalesce-hits", s.CoalesceHits)
	t.AddRow("fan-outs", s.FanOuts)
	t.AddRow("fan-out-calls", s.FanOutCalls)
	t.AddRow("batch-resolves", s.BatchResolves)
	t.AddRow("batched-queries", s.BatchedQueries)
	return t
}
