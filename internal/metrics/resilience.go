package metrics

import "sync/atomic"

// ResilienceStats aggregates the resilience layer's observability
// counters: retry attempts, breaker transitions, and referral fallbacks.
// All fields are atomic; the zero value is ready to use. The resilience
// layer (internal/resilience) feeds these; benchmarks and operations read
// them to see how hard the system is working to mask partial failures.
type ResilienceStats struct {
	// Attempts counts individual endpoint calls tried (first tries and
	// retries alike).
	Attempts atomic.Uint64
	// Retries counts attempts beyond each call's first try.
	Retries atomic.Uint64
	// Failures counts attempts that returned a transient error.
	Failures atomic.Uint64
	// BreakerTrips counts closed/half-open → open transitions.
	BreakerTrips atomic.Uint64
	// BreakerProbes counts open → half-open probe admissions.
	BreakerProbes atomic.Uint64
	// BreakerResets counts half-open → closed recoveries.
	BreakerResets atomic.Uint64
	// ShortCircuits counts calls refused outright while a breaker was
	// open.
	ShortCircuits atomic.Uint64
	// Fallbacks counts resolves served by a non-first referral
	// alternative (a replica covered for a failed store).
	Fallbacks atomic.Uint64
	// OverloadBackoffs counts attempts the remote end shed under admission
	// control. Sheds back off and retry but never count as failures — an
	// overloaded store is alive, and tripping its breaker (or counting the
	// shed toward Failures) would amplify the storm the shed exists to
	// stop.
	OverloadBackoffs atomic.Uint64
}

// BreakerInfo reports one endpoint's circuit breaker at snapshot time.
type BreakerInfo struct {
	Endpoint string
	// State is "closed", "open", or "half-open".
	State string
	// Failures is the endpoint's consecutive transient-failure count.
	Failures int
}

// ResilienceSnapshot is a point-in-time view of ResilienceStats plus the
// per-endpoint breaker states.
type ResilienceSnapshot struct {
	Attempts         uint64
	Retries          uint64
	Failures         uint64
	BreakerTrips     uint64
	BreakerProbes    uint64
	BreakerResets    uint64
	ShortCircuits    uint64
	Fallbacks        uint64
	OverloadBackoffs uint64
	Breakers         []BreakerInfo
}

// Snapshot captures the counters together with the supplied breaker
// states.
func (s *ResilienceStats) Snapshot(breakers []BreakerInfo) ResilienceSnapshot {
	return ResilienceSnapshot{
		Attempts:         s.Attempts.Load(),
		Retries:          s.Retries.Load(),
		Failures:         s.Failures.Load(),
		BreakerTrips:     s.BreakerTrips.Load(),
		BreakerProbes:    s.BreakerProbes.Load(),
		BreakerResets:    s.BreakerResets.Load(),
		ShortCircuits:    s.ShortCircuits.Load(),
		Fallbacks:        s.Fallbacks.Load(),
		OverloadBackoffs: s.OverloadBackoffs.Load(),
		Breakers:         breakers,
	}
}

// Table renders the snapshot as an aligned experiment table.
func (s ResilienceSnapshot) Table() *Table {
	t := NewTable("resilience", "counter", "value")
	t.AddRow("attempts", s.Attempts)
	t.AddRow("retries", s.Retries)
	t.AddRow("failures", s.Failures)
	t.AddRow("breaker-trips", s.BreakerTrips)
	t.AddRow("breaker-probes", s.BreakerProbes)
	t.AddRow("breaker-resets", s.BreakerResets)
	t.AddRow("short-circuits", s.ShortCircuits)
	t.AddRow("fallbacks", s.Fallbacks)
	t.AddRow("overload-backoffs", s.OverloadBackoffs)
	for _, b := range s.Breakers {
		t.AddRow("breaker "+b.Endpoint, b.State)
	}
	return t
}
