package metrics

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestHistogramPercentiles(t *testing.T) {
	h := NewHistogram()
	if h.Percentile(50) != 0 || h.Mean() != 0 || h.Min() != 0 || h.Max() != 0 {
		t.Error("empty histogram should report zeros")
	}
	for i := 1; i <= 100; i++ {
		h.Record(time.Duration(i) * time.Millisecond)
	}
	if h.Count() != 100 {
		t.Errorf("Count = %d", h.Count())
	}
	if got := h.Percentile(50); got != 50*time.Millisecond {
		t.Errorf("p50 = %v", got)
	}
	if got := h.Percentile(99); got != 99*time.Millisecond {
		t.Errorf("p99 = %v", got)
	}
	if got := h.Percentile(100); got != 100*time.Millisecond {
		t.Errorf("p100 = %v", got)
	}
	if got := h.Min(); got != time.Millisecond {
		t.Errorf("min = %v", got)
	}
	if got := h.Max(); got != 100*time.Millisecond {
		t.Errorf("max = %v", got)
	}
	if got := h.Mean(); got != 50500*time.Microsecond {
		t.Errorf("mean = %v", got)
	}
	s := h.Summary()
	for _, frag := range []string{"mean=", "p50=", "p99=", "max="} {
		if !strings.Contains(s, frag) {
			t.Errorf("summary %q missing %q", s, frag)
		}
	}
}

func TestHistogramRecordAfterRead(t *testing.T) {
	h := NewHistogram()
	h.Record(2 * time.Millisecond)
	_ = h.Percentile(50)
	h.Record(1 * time.Millisecond) // must re-sort
	if got := h.Min(); got != time.Millisecond {
		t.Errorf("min = %v", got)
	}
}

func TestHistogramConcurrent(t *testing.T) {
	h := NewHistogram()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				h.Record(time.Duration(j))
				if j%100 == 0 {
					h.Percentile(90)
				}
			}
		}()
	}
	wg.Wait()
	if h.Count() != 8000 {
		t.Errorf("Count = %d", h.Count())
	}
}

func TestThroughput(t *testing.T) {
	tp := StartThroughput()
	tp.Add(100)
	time.Sleep(10 * time.Millisecond)
	rate := tp.PerSecond()
	if rate <= 0 || rate > 100/0.01 {
		t.Errorf("rate = %f", rate)
	}
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("E1: query patterns", "pattern", "latency", "bytes")
	tb.AddRow("referral", 120*time.Microsecond, 4096)
	tb.AddRow("chaining", 1.5, "8192")
	out := tb.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if lines[0] != "E1: query patterns" {
		t.Errorf("title line = %q", lines[0])
	}
	if !strings.Contains(lines[1], "pattern") || !strings.Contains(lines[1], "bytes") {
		t.Errorf("header = %q", lines[1])
	}
	if !strings.Contains(lines[2], "---") {
		t.Errorf("separator = %q", lines[2])
	}
	if !strings.Contains(out, "referral") || !strings.Contains(out, "1.50") {
		t.Errorf("rows:\n%s", out)
	}
	// Columns align: every data line has the header's column positions.
	hdrIdx := strings.Index(lines[1], "latency")
	if !strings.HasPrefix(lines[3][hdrIdx:], "120") {
		t.Errorf("misaligned columns:\n%s", out)
	}
}
