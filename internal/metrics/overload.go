package metrics

import "sync/atomic"

// OverloadStats counts the admission controller's work: requests admitted
// straight into a slot, requests that waited in the bounded queue, sheds by
// priority class, queue-wait timeouts, requests refused because their
// propagated budget was already below the observed service time
// ("expired on arrival"), and the brownout detector's transitions. All
// fields are atomic; the zero value is ready to use.
type OverloadStats struct {
	// Admitted counts requests that obtained an execution slot (directly
	// or after queueing).
	Admitted atomic.Uint64
	// Queued counts requests that had to wait in the bounded LIFO queue
	// before a slot freed up (a subset of Admitted + the queue sheds).
	Queued atomic.Uint64
	// ShedHigh and ShedNormal count requests refused with an overloaded
	// reply, by priority class.
	ShedHigh   atomic.Uint64
	ShedNormal atomic.Uint64
	// QueueTimeouts counts queued requests shed because no slot freed
	// within the queue-wait bound (or their remaining budget).
	QueueTimeouts atomic.Uint64
	// BudgetExpired counts requests refused on arrival because their
	// propagated deadline budget was below the class's observed p50
	// service time — doomed work that would only have clogged the queue.
	BudgetExpired atomic.Uint64
	// BrownoutEnters and BrownoutExits count the hysteretic brownout
	// detector's transitions.
	BrownoutEnters atomic.Uint64
	BrownoutExits  atomic.Uint64
	// BrownoutServed counts resolves answered from stale cache (or with
	// recruit fan-out skipped) while brownout was active.
	BrownoutServed atomic.Uint64
}

// OverloadSnapshot is a point-in-time copy.
type OverloadSnapshot struct {
	Admitted       uint64
	Queued         uint64
	ShedHigh       uint64
	ShedNormal     uint64
	QueueTimeouts  uint64
	BudgetExpired  uint64
	BrownoutEnters uint64
	BrownoutExits  uint64
	BrownoutServed uint64
}

// Snapshot copies the counters.
func (s *OverloadStats) Snapshot() OverloadSnapshot {
	return OverloadSnapshot{
		Admitted:       s.Admitted.Load(),
		Queued:         s.Queued.Load(),
		ShedHigh:       s.ShedHigh.Load(),
		ShedNormal:     s.ShedNormal.Load(),
		QueueTimeouts:  s.QueueTimeouts.Load(),
		BudgetExpired:  s.BudgetExpired.Load(),
		BrownoutEnters: s.BrownoutEnters.Load(),
		BrownoutExits:  s.BrownoutExits.Load(),
		BrownoutServed: s.BrownoutServed.Load(),
	}
}
