// Package metrics provides the small measurement kit the benchmark harness
// uses: latency histograms with percentiles, throughput windows, and an
// aligned table renderer for reproducing the experiment tables in
// EXPERIMENTS.md.
package metrics

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"time"
)

// DefaultReservoir bounds a histogram's retained samples. It comfortably
// exceeds every finite bench run's sample count (the largest, E16's
// referral phase, records 4096), so percentiles there stay exact; beyond
// it the histogram switches to uniform reservoir sampling (Vitter's
// algorithm R) so long-running uses — the per-hop trace percentiles —
// hold memory constant forever.
const DefaultReservoir = 1 << 15

// Histogram accumulates duration samples with bounded memory: up to its
// reservoir capacity every sample is kept (percentiles are exact), after
// which samples are reservoir-sampled uniformly (percentiles are
// estimates over a uniform subsample). Count, Mean, Min and Max stay
// exact regardless. Safe for concurrent use.
type Histogram struct {
	mu      sync.Mutex
	cap     int
	samples []time.Duration
	sorted  bool
	n       uint64        // total observed
	sum     time.Duration // exact running sum
	min     time.Duration // exact extremes
	max     time.Duration
	rnd     *rand.Rand
}

// NewHistogram returns an empty histogram with the default reservoir.
func NewHistogram() *Histogram {
	return NewHistogramCap(DefaultReservoir)
}

// NewHistogramCap returns an empty histogram retaining at most capacity
// samples (<= 0 means DefaultReservoir).
func NewHistogramCap(capacity int) *Histogram {
	if capacity <= 0 {
		capacity = DefaultReservoir
	}
	return &Histogram{cap: capacity}
}

// Record adds one sample.
func (h *Histogram) Record(d time.Duration) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.cap == 0 {
		h.cap = DefaultReservoir // zero-value Histograms keep working
	}
	h.n++
	h.sum += d
	if h.n == 1 || d < h.min {
		h.min = d
	}
	if d > h.max {
		h.max = d
	}
	if len(h.samples) < h.cap {
		h.samples = append(h.samples, d)
		h.sorted = false
		return
	}
	// Reservoir full: keep each of the n samples with probability cap/n.
	if h.rnd == nil {
		h.rnd = rand.New(rand.NewSource(time.Now().UnixNano() ^ int64(h.n)))
	}
	if j := h.rnd.Int63n(int64(h.n)); j < int64(h.cap) {
		h.samples[j] = d
		h.sorted = false
	}
}

// Count returns the total number of recorded samples (including any no
// longer retained in the reservoir).
func (h *Histogram) Count() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return int(h.n)
}

func (h *Histogram) ensureSorted() {
	if !h.sorted {
		sort.Slice(h.samples, func(i, j int) bool { return h.samples[i] < h.samples[j] })
		h.sorted = true
	}
}

// Percentile returns the p-th percentile (0 < p ≤ 100); zero with no
// samples. Exact while the sample count is within the reservoir, an
// estimate over a uniform subsample beyond it.
func (h *Histogram) Percentile(p float64) time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	if len(h.samples) == 0 {
		return 0
	}
	h.ensureSorted()
	idx := int(p/100*float64(len(h.samples))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(h.samples) {
		idx = len(h.samples) - 1
	}
	return h.samples[idx]
}

// Mean returns the arithmetic mean; zero with no samples. Always exact.
func (h *Histogram) Mean() time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.n == 0 {
		return 0
	}
	return h.sum / time.Duration(h.n)
}

// Min returns the smallest sample; zero with no samples. Always exact.
func (h *Histogram) Min() time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.min
}

// Max returns the largest sample. Always exact.
func (h *Histogram) Max() time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.max
}

// Retained reports how many samples the reservoir currently holds (for
// tests asserting boundedness).
func (h *Histogram) Retained() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.samples)
}

// HopStat is the aggregate latency view of one hop (one span name) of the
// resolve fabric, folded into the pipeline stats output.
type HopStat struct {
	Name      string `json:"name"`
	Count     uint64 `json:"count"`
	P50Micros int64  `json:"p50_us"`
	P95Micros int64  `json:"p95_us"`
	P99Micros int64  `json:"p99_us"`
	MaxMicros int64  `json:"max_us"`
}

// HopStat summarizes the histogram under a hop name.
func (h *Histogram) HopStat(name string) HopStat {
	h.mu.Lock()
	n := h.n
	h.mu.Unlock()
	return HopStat{
		Name:      name,
		Count:     n,
		P50Micros: h.Percentile(50).Microseconds(),
		P95Micros: h.Percentile(95).Microseconds(),
		P99Micros: h.Percentile(99).Microseconds(),
		MaxMicros: h.Max().Microseconds(),
	}
}

// Summary renders "mean / p50 / p99 / max" compactly.
func (h *Histogram) Summary() string {
	return fmt.Sprintf("mean=%s p50=%s p99=%s max=%s",
		round(h.Mean()), round(h.Percentile(50)), round(h.Percentile(99)), round(h.Max()))
}

func round(d time.Duration) time.Duration {
	switch {
	case d > time.Second:
		return d.Round(time.Millisecond)
	case d > time.Millisecond:
		return d.Round(time.Microsecond)
	default:
		return d.Round(time.Nanosecond)
	}
}

// Throughput measures operations over a wall-clock window.
type Throughput struct {
	start time.Time
	ops   int
}

// StartThroughput begins a window.
func StartThroughput() *Throughput {
	return &Throughput{start: time.Now()}
}

// Add counts completed operations.
func (t *Throughput) Add(n int) { t.ops += n }

// PerSecond reports the rate so far.
func (t *Throughput) PerSecond() float64 {
	el := time.Since(t.start).Seconds()
	if el <= 0 {
		return 0
	}
	return float64(t.ops) / el
}

// Table renders aligned experiment tables.
type Table struct {
	Title   string
	headers []string
	rows    [][]string
}

// NewTable declares columns.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, headers: headers}
}

// AddRow appends a row; values are stringified with %v.
func (t *Table) AddRow(values ...any) {
	row := make([]string, len(values))
	for i, v := range values {
		switch x := v.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.2f", x)
		case time.Duration:
			row[i] = round(x).String()
		default:
			row[i] = fmt.Sprintf("%v", v)
		}
	}
	t.rows = append(t.rows, row)
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	widths := make([]int, len(t.headers))
	for i, h := range t.headers {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title)
		b.WriteByte('\n')
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			for pad := len(c); pad < widths[i]; pad++ {
				b.WriteByte(' ')
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.headers)
	sep := make([]string, len(t.headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.rows {
		writeRow(row)
	}
	return b.String()
}
