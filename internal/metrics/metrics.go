// Package metrics provides the small measurement kit the benchmark harness
// uses: latency histograms with percentiles, throughput windows, and an
// aligned table renderer for reproducing the experiment tables in
// EXPERIMENTS.md.
package metrics

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// Histogram accumulates duration samples. Safe for concurrent use.
type Histogram struct {
	mu      sync.Mutex
	samples []time.Duration
	sorted  bool
}

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram {
	return &Histogram{}
}

// Record adds one sample.
func (h *Histogram) Record(d time.Duration) {
	h.mu.Lock()
	h.samples = append(h.samples, d)
	h.sorted = false
	h.mu.Unlock()
}

// Count returns the number of samples.
func (h *Histogram) Count() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.samples)
}

func (h *Histogram) ensureSorted() {
	if !h.sorted {
		sort.Slice(h.samples, func(i, j int) bool { return h.samples[i] < h.samples[j] })
		h.sorted = true
	}
}

// Percentile returns the p-th percentile (0 < p ≤ 100); zero with no
// samples.
func (h *Histogram) Percentile(p float64) time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	if len(h.samples) == 0 {
		return 0
	}
	h.ensureSorted()
	idx := int(p/100*float64(len(h.samples))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(h.samples) {
		idx = len(h.samples) - 1
	}
	return h.samples[idx]
}

// Mean returns the arithmetic mean; zero with no samples.
func (h *Histogram) Mean() time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	if len(h.samples) == 0 {
		return 0
	}
	var sum time.Duration
	for _, s := range h.samples {
		sum += s
	}
	return sum / time.Duration(len(h.samples))
}

// Min and Max return the extremes; zero with no samples.
func (h *Histogram) Min() time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	if len(h.samples) == 0 {
		return 0
	}
	h.ensureSorted()
	return h.samples[0]
}

// Max returns the largest sample.
func (h *Histogram) Max() time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	if len(h.samples) == 0 {
		return 0
	}
	h.ensureSorted()
	return h.samples[len(h.samples)-1]
}

// Summary renders "mean / p50 / p99 / max" compactly.
func (h *Histogram) Summary() string {
	return fmt.Sprintf("mean=%s p50=%s p99=%s max=%s",
		round(h.Mean()), round(h.Percentile(50)), round(h.Percentile(99)), round(h.Max()))
}

func round(d time.Duration) time.Duration {
	switch {
	case d > time.Second:
		return d.Round(time.Millisecond)
	case d > time.Millisecond:
		return d.Round(time.Microsecond)
	default:
		return d.Round(time.Nanosecond)
	}
}

// Throughput measures operations over a wall-clock window.
type Throughput struct {
	start time.Time
	ops   int
}

// StartThroughput begins a window.
func StartThroughput() *Throughput {
	return &Throughput{start: time.Now()}
}

// Add counts completed operations.
func (t *Throughput) Add(n int) { t.ops += n }

// PerSecond reports the rate so far.
func (t *Throughput) PerSecond() float64 {
	el := time.Since(t.start).Seconds()
	if el <= 0 {
		return 0
	}
	return float64(t.ops) / el
}

// Table renders aligned experiment tables.
type Table struct {
	Title   string
	headers []string
	rows    [][]string
}

// NewTable declares columns.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, headers: headers}
}

// AddRow appends a row; values are stringified with %v.
func (t *Table) AddRow(values ...any) {
	row := make([]string, len(values))
	for i, v := range values {
		switch x := v.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.2f", x)
		case time.Duration:
			row[i] = round(x).String()
		default:
			row[i] = fmt.Sprintf("%v", v)
		}
	}
	t.rows = append(t.rows, row)
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	widths := make([]int, len(t.headers))
	for i, h := range t.headers {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title)
		b.WriteByte('\n')
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			for pad := len(c); pad < widths[i]; pad++ {
				b.WriteByte(' ')
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.headers)
	sep := make([]string, len(t.headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.rows {
		writeRow(row)
	}
	return b.String()
}
