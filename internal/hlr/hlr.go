// Package hlr simulates the wireless network's data-management plane
// (paper §3.1.2, Figure 3): the Home Location Register holding permanent
// subscriber profiles and current locations, Visitor Location Registers
// holding temporary copies for their coverage areas, and the
// location-update / call-delivery interplay between them:
//
//   - a subscriber moving into a new VLR's area triggers a location update
//     at the HLR, which cancels the registration at the old VLR,
//   - call delivery interrogates the HLR, which asks the serving VLR for a
//     roaming number routed via that VLR's MSC.
//
// The paper characterizes HLRs as main-memory databases serving simple
// lookup queries for millions of subscribers; this simulator reproduces
// that data-management behaviour (not the radio plane) and exports
// subscriber state as GUP components (location, devices, services) so the
// wireless network can join the GUPster federation through an adapter.
package hlr

import (
	"errors"
	"fmt"
	"strconv"
	"sync"
	"time"

	"gupster/internal/xmltree"
)

// Simulator errors.
var (
	ErrNoSubscriber = errors.New("hlr: no such subscriber")
	ErrNotAttached  = errors.New("hlr: subscriber not attached to any VLR")
	ErrNoVLR        = errors.New("hlr: no such VLR")
	ErrBarred       = errors.New("hlr: call barred")
)

// Services is the per-subscriber service profile the HLR stores (call
// forwarding, barring, roaming, … — §3.1.2).
type Services struct {
	// CallForwarding, when non-empty, redirects incoming calls.
	CallForwarding string
	// BarredNumbers are callers the subscriber blocks.
	BarredNumbers []string
	// RoamingAllowed gates location updates from foreign VLRs.
	RoamingAllowed bool
	// CallerID controls presentation of the subscriber's number.
	CallerID bool
}

// Subscriber is the permanent HLR record.
type Subscriber struct {
	IMSI     string
	MSISDN   string // the phone number
	AuthKey  string
	Services Services
}

// location is the temporary part: which VLR serves the subscriber now.
type location struct {
	vlr     string
	since   time.Time
	onAir   bool
	cell    string
	roaming bool
}

// VLR is a visitor location register: the temporary subscriber snapshots
// for one coverage area, fronted by one MSC.
type VLR struct {
	ID   string
	MSC  string
	Home bool // false marks a foreign-network VLR (roaming)

	mu       sync.Mutex
	visitors map[string]bool // IMSI set
	nextTMSI int
}

func newVLR(id, msc string, home bool) *VLR {
	return &VLR{ID: id, MSC: msc, Home: home, visitors: make(map[string]bool)}
}

// attach registers a visitor and allocates a temporary identity.
func (v *VLR) attach(imsi string) string {
	v.mu.Lock()
	defer v.mu.Unlock()
	v.visitors[imsi] = true
	v.nextTMSI++
	return v.ID + "-tmsi-" + strconv.Itoa(v.nextTMSI)
}

// cancel implements the HLR→old-VLR cancel-location message.
func (v *VLR) cancel(imsi string) {
	v.mu.Lock()
	defer v.mu.Unlock()
	delete(v.visitors, imsi)
}

// Visitors reports the current visitor count.
func (v *VLR) Visitors() int {
	v.mu.Lock()
	defer v.mu.Unlock()
	return len(v.visitors)
}

// provideRoamingNumber hands out an MSC-routable number for call delivery.
func (v *VLR) provideRoamingNumber(imsi string) string {
	v.mu.Lock()
	defer v.mu.Unlock()
	if !v.visitors[imsi] {
		return ""
	}
	return v.MSC + "/roam/" + imsi
}

// Stats counts the operations the paper says dominate HLR load.
type Stats struct {
	LocationUpdates uint64
	CallDeliveries  uint64
	Lookups         uint64
	AuthRequests    uint64
	Cancels         uint64
}

// HLR is the home location register.
type HLR struct {
	mu       sync.RWMutex
	subs     map[string]*Subscriber // IMSI → record
	byNumber map[string]string      // MSISDN → IMSI
	locs     map[string]*location   // IMSI → current location
	vlrs     map[string]*VLR
	stats    Stats
	// onMove, when set, runs after a successful location update (feeds the
	// GUP adapter so location components stay fresh).
	onMove func(imsi string, loc *xmltree.Node)
	now    func() time.Time
}

// New returns an empty HLR.
func New() *HLR {
	return &HLR{
		subs:     make(map[string]*Subscriber),
		byNumber: make(map[string]string),
		locs:     make(map[string]*location),
		vlrs:     make(map[string]*VLR),
		now:      time.Now,
	}
}

// WithClock injects a clock for tests.
func (h *HLR) WithClock(now func() time.Time) *HLR {
	h.now = now
	return h
}

// OnMove registers the location-change hook. Set before concurrent use.
func (h *HLR) OnMove(fn func(imsi string, loc *xmltree.Node)) {
	h.onMove = fn
}

// AddVLR provisions a coverage area. home=false marks a roaming partner's
// VLR.
func (h *HLR) AddVLR(id, msc string, home bool) *VLR {
	v := newVLR(id, msc, home)
	h.mu.Lock()
	h.vlrs[id] = v
	h.mu.Unlock()
	return v
}

// AddSubscriber provisions a permanent record.
func (h *HLR) AddSubscriber(s Subscriber) error {
	h.mu.Lock()
	defer h.mu.Unlock()
	if _, dup := h.subs[s.IMSI]; dup {
		return fmt.Errorf("hlr: duplicate IMSI %s", s.IMSI)
	}
	cp := s
	cp.Services.BarredNumbers = append([]string(nil), s.Services.BarredNumbers...)
	h.subs[s.IMSI] = &cp
	h.byNumber[s.MSISDN] = s.IMSI
	return nil
}

// Authenticate checks a subscriber's key (the AAA interaction).
func (h *HLR) Authenticate(imsi, key string) error {
	h.mu.Lock()
	h.stats.AuthRequests++
	s, ok := h.subs[imsi]
	h.mu.Unlock()
	if !ok {
		return fmt.Errorf("%w: %s", ErrNoSubscriber, imsi)
	}
	if s.AuthKey != key {
		return errors.New("hlr: authentication failed")
	}
	return nil
}

// LocationUpdate processes a subscriber appearing in a VLR's area: the new
// VLR attaches the visitor, the HLR records the move and cancels the old
// VLR's registration. It returns the temporary identity the VLR allocated.
func (h *HLR) LocationUpdate(imsi, vlrID, cell string) (string, error) {
	h.mu.Lock()
	s, ok := h.subs[imsi]
	if !ok {
		h.mu.Unlock()
		return "", fmt.Errorf("%w: %s", ErrNoSubscriber, imsi)
	}
	v, ok := h.vlrs[vlrID]
	if !ok {
		h.mu.Unlock()
		return "", fmt.Errorf("%w: %s", ErrNoVLR, vlrID)
	}
	if !v.Home && !s.Services.RoamingAllowed {
		h.mu.Unlock()
		return "", fmt.Errorf("hlr: roaming not enabled for %s", imsi)
	}
	old := h.locs[imsi]
	h.locs[imsi] = &location{vlr: vlrID, since: h.now(), onAir: true, cell: cell, roaming: !v.Home}
	h.stats.LocationUpdates++
	var oldVLR *VLR
	if old != nil && old.vlr != vlrID {
		oldVLR = h.vlrs[old.vlr]
		h.stats.Cancels++
	}
	hook := h.onMove
	h.mu.Unlock()

	tmsi := v.attach(imsi)
	if oldVLR != nil {
		oldVLR.cancel(imsi)
	}
	if hook != nil {
		hook(imsi, h.LocationComponent(imsi))
	}
	return tmsi, nil
}

// Detach marks a subscriber off-air (power down) without forgetting the
// last known area.
func (h *HLR) Detach(imsi string) error {
	h.mu.Lock()
	defer h.mu.Unlock()
	loc, ok := h.locs[imsi]
	if !ok {
		return fmt.Errorf("%w: %s", ErrNotAttached, imsi)
	}
	loc.onAir = false
	return nil
}

// CallDelivery routes an incoming call to a subscriber's number: HLR lookup
// for the serving VLR, barring check, then a roaming number from that VLR.
func (h *HLR) CallDelivery(caller, msisdn string) (roamingNumber string, err error) {
	h.mu.Lock()
	h.stats.CallDeliveries++
	imsi, ok := h.byNumber[msisdn]
	if !ok {
		h.mu.Unlock()
		return "", fmt.Errorf("%w: %s", ErrNoSubscriber, msisdn)
	}
	s := h.subs[imsi]
	for _, b := range s.Services.BarredNumbers {
		if b == caller {
			h.mu.Unlock()
			return "", fmt.Errorf("%w: %s from %s", ErrBarred, msisdn, caller)
		}
	}
	if s.Services.CallForwarding != "" {
		fwd := s.Services.CallForwarding
		h.mu.Unlock()
		return "fwd:" + fwd, nil
	}
	loc, ok := h.locs[imsi]
	if !ok || !loc.onAir {
		h.mu.Unlock()
		return "", fmt.Errorf("%w: %s", ErrNotAttached, msisdn)
	}
	v := h.vlrs[loc.vlr]
	h.mu.Unlock()

	rn := v.provideRoamingNumber(imsi)
	if rn == "" {
		return "", fmt.Errorf("%w: %s (stale HLR location)", ErrNotAttached, msisdn)
	}
	return rn, nil
}

// Locate is the read-only location lookup other services use.
func (h *HLR) Locate(imsi string) (vlr, cell string, onAir bool, err error) {
	h.mu.RLock()
	defer h.mu.RUnlock()
	loc, ok := h.locs[imsi]
	if !ok {
		return "", "", false, fmt.Errorf("%w: %s", ErrNotAttached, imsi)
	}
	return loc.vlr, loc.cell, loc.onAir, nil
}

// SetCallForwarding provisions forwarding (subscriber-initiated update,
// §3.1.2).
func (h *HLR) SetCallForwarding(imsi, target string) error {
	h.mu.Lock()
	defer h.mu.Unlock()
	s, ok := h.subs[imsi]
	if !ok {
		return fmt.Errorf("%w: %s", ErrNoSubscriber, imsi)
	}
	s.Services.CallForwarding = target
	return nil
}

// Bar adds a barred caller.
func (h *HLR) Bar(imsi, caller string) error {
	h.mu.Lock()
	defer h.mu.Unlock()
	s, ok := h.subs[imsi]
	if !ok {
		return fmt.Errorf("%w: %s", ErrNoSubscriber, imsi)
	}
	s.Services.BarredNumbers = append(s.Services.BarredNumbers, caller)
	return nil
}

// Stats snapshots the counters.
func (h *HLR) Stats() Stats {
	h.mu.RLock()
	defer h.mu.RUnlock()
	return h.stats
}

// Subscribers reports the population size.
func (h *HLR) Subscribers() int {
	h.mu.RLock()
	defer h.mu.RUnlock()
	return len(h.subs)
}

// LocationComponent exports a subscriber's location as the GUP <location>
// component (the wireless network's contribution to the converged profile).
// It returns nil for unattached subscribers.
func (h *HLR) LocationComponent(imsi string) *xmltree.Node {
	h.mu.RLock()
	defer h.mu.RUnlock()
	loc, ok := h.locs[imsi]
	if !ok {
		return nil
	}
	n := xmltree.New("location").
		SetAttr("cell", loc.cell).
		SetAttr("onair", strconv.FormatBool(loc.onAir)).
		SetAttr("updated", loc.since.UTC().Format(time.RFC3339))
	return n
}

// DeviceComponent exports the subscriber's wireless device description.
func (h *HLR) DeviceComponent(imsi string) *xmltree.Node {
	h.mu.RLock()
	defer h.mu.RUnlock()
	s, ok := h.subs[imsi]
	if !ok {
		return nil
	}
	dev := xmltree.New("device").
		SetAttr("id", "cell-"+s.IMSI).
		SetAttr("network", "wireless").
		SetAttr("type", "phone")
	dev.Add(xmltree.NewText("number", s.MSISDN))
	return dev
}

// ServicesComponent exports the service profile as a GUP <services>
// component.
func (h *HLR) ServicesComponent(imsi string) *xmltree.Node {
	h.mu.RLock()
	defer h.mu.RUnlock()
	s, ok := h.subs[imsi]
	if !ok {
		return nil
	}
	svc := xmltree.New("services")
	cell := xmltree.New("service").SetAttr("name", "wireless").SetAttr("provider", "home-carrier")
	if s.Services.CallForwarding != "" {
		cell.SetAttr("plan", "forwarded")
	}
	svc.Add(cell)
	return svc
}
