package hlr

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"gupster/internal/xmltree"
)

func newTestHLR(t *testing.T) (*HLR, *VLR, *VLR, *VLR) {
	t.Helper()
	h := New().WithClock(func() time.Time {
		return time.Date(2026, 7, 6, 9, 0, 0, 0, time.UTC)
	})
	nj := h.AddVLR("vlr-nj", "msc-nj", true)
	ny := h.AddVLR("vlr-ny", "msc-ny", true)
	eu := h.AddVLR("vlr-vodafone", "msc-eu", false) // roaming partner
	if err := h.AddSubscriber(Subscriber{
		IMSI: "imsi-alice", MSISDN: "908-555-0001", AuthKey: "k1",
		Services: Services{RoamingAllowed: true, CallerID: true},
	}); err != nil {
		t.Fatal(err)
	}
	if err := h.AddSubscriber(Subscriber{
		IMSI: "imsi-bob", MSISDN: "908-555-0002", AuthKey: "k2",
		Services: Services{RoamingAllowed: false},
	}); err != nil {
		t.Fatal(err)
	}
	return h, nj, ny, eu
}

func TestLocationUpdateAndCancel(t *testing.T) {
	h, nj, ny, _ := newTestHLR(t)
	tmsi, err := h.LocationUpdate("imsi-alice", "vlr-nj", "cell-07974")
	if err != nil {
		t.Fatalf("LocationUpdate: %v", err)
	}
	if !strings.HasPrefix(tmsi, "vlr-nj-tmsi-") {
		t.Errorf("tmsi = %q", tmsi)
	}
	if nj.Visitors() != 1 {
		t.Errorf("nj visitors = %d", nj.Visitors())
	}
	// Moving to NY cancels the NJ registration.
	if _, err := h.LocationUpdate("imsi-alice", "vlr-ny", "cell-10001"); err != nil {
		t.Fatal(err)
	}
	if nj.Visitors() != 0 || ny.Visitors() != 1 {
		t.Errorf("visitors nj=%d ny=%d", nj.Visitors(), ny.Visitors())
	}
	vlr, cell, onAir, err := h.Locate("imsi-alice")
	if err != nil || vlr != "vlr-ny" || cell != "cell-10001" || !onAir {
		t.Errorf("Locate = %s %s %v %v", vlr, cell, onAir, err)
	}
	st := h.Stats()
	if st.LocationUpdates != 2 || st.Cancels != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestRoamingPolicy(t *testing.T) {
	h, _, _, _ := newTestHLR(t)
	// Alice may roam.
	if _, err := h.LocationUpdate("imsi-alice", "vlr-vodafone", "cell-paris"); err != nil {
		t.Errorf("alice roam: %v", err)
	}
	// Bob may not.
	if _, err := h.LocationUpdate("imsi-bob", "vlr-vodafone", "cell-paris"); err == nil {
		t.Error("bob roamed without permission")
	}
	// Bob attaches at home fine.
	if _, err := h.LocationUpdate("imsi-bob", "vlr-nj", "cell-1"); err != nil {
		t.Errorf("bob home: %v", err)
	}
}

func TestCallDelivery(t *testing.T) {
	h, _, _, _ := newTestHLR(t)
	// Unattached: no delivery.
	if _, err := h.CallDelivery("caller", "908-555-0001"); !errors.Is(err, ErrNotAttached) {
		t.Errorf("unattached: %v", err)
	}
	h.LocationUpdate("imsi-alice", "vlr-ny", "cell-1")
	rn, err := h.CallDelivery("caller", "908-555-0001")
	if err != nil {
		t.Fatalf("CallDelivery: %v", err)
	}
	if !strings.HasPrefix(rn, "msc-ny/roam/") {
		t.Errorf("roaming number = %q", rn)
	}
	// Unknown number.
	if _, err := h.CallDelivery("caller", "000"); !errors.Is(err, ErrNoSubscriber) {
		t.Errorf("unknown: %v", err)
	}
	// Detached phone.
	h.Detach("imsi-alice")
	if _, err := h.CallDelivery("caller", "908-555-0001"); !errors.Is(err, ErrNotAttached) {
		t.Errorf("off-air: %v", err)
	}
}

func TestBarringAndForwarding(t *testing.T) {
	h, _, _, _ := newTestHLR(t)
	h.LocationUpdate("imsi-alice", "vlr-nj", "cell-1")
	if err := h.Bar("imsi-alice", "telemarketer"); err != nil {
		t.Fatal(err)
	}
	if _, err := h.CallDelivery("telemarketer", "908-555-0001"); !errors.Is(err, ErrBarred) {
		t.Errorf("barred caller: %v", err)
	}
	if _, err := h.CallDelivery("friend", "908-555-0001"); err != nil {
		t.Errorf("friend blocked: %v", err)
	}
	// Forwarding bypasses location.
	if err := h.SetCallForwarding("imsi-alice", "908-555-9999"); err != nil {
		t.Fatal(err)
	}
	rn, err := h.CallDelivery("friend", "908-555-0001")
	if err != nil || rn != "fwd:908-555-9999" {
		t.Errorf("forwarding: %q, %v", rn, err)
	}
	// Provisioning unknown subscribers fails.
	if err := h.SetCallForwarding("imsi-ghost", "x"); err == nil {
		t.Error("ghost forwarding accepted")
	}
	if err := h.Bar("imsi-ghost", "x"); err == nil {
		t.Error("ghost bar accepted")
	}
}

func TestAuthenticate(t *testing.T) {
	h, _, _, _ := newTestHLR(t)
	if err := h.Authenticate("imsi-alice", "k1"); err != nil {
		t.Errorf("auth: %v", err)
	}
	if err := h.Authenticate("imsi-alice", "wrong"); err == nil {
		t.Error("bad key accepted")
	}
	if err := h.Authenticate("imsi-ghost", "k"); !errors.Is(err, ErrNoSubscriber) {
		t.Errorf("ghost: %v", err)
	}
	if h.Stats().AuthRequests != 3 {
		t.Errorf("auth count = %d", h.Stats().AuthRequests)
	}
}

func TestDuplicateSubscriber(t *testing.T) {
	h, _, _, _ := newTestHLR(t)
	err := h.AddSubscriber(Subscriber{IMSI: "imsi-alice", MSISDN: "1"})
	if err == nil {
		t.Error("duplicate IMSI accepted")
	}
}

func TestGUPComponents(t *testing.T) {
	h, _, _, _ := newTestHLR(t)
	if h.LocationComponent("imsi-alice") != nil {
		t.Error("unattached location should be nil")
	}
	h.LocationUpdate("imsi-alice", "vlr-nj", "cell-07974")
	loc := h.LocationComponent("imsi-alice")
	if loc == nil || loc.Name != "location" {
		t.Fatalf("loc = %v", loc)
	}
	if c, _ := loc.Attr("cell"); c != "cell-07974" {
		t.Errorf("cell = %q", c)
	}
	if a, _ := loc.Attr("onair"); a != "true" {
		t.Errorf("onair = %q", a)
	}
	dev := h.DeviceComponent("imsi-alice")
	if dev.ChildText("number") != "908-555-0001" {
		t.Errorf("device = %s", dev)
	}
	svc := h.ServicesComponent("imsi-alice")
	if svc.Child("service") == nil {
		t.Errorf("services = %s", svc)
	}
	if h.DeviceComponent("ghost") != nil || h.ServicesComponent("ghost") != nil {
		t.Error("ghost components should be nil")
	}
}

func TestOnMoveHook(t *testing.T) {
	h, _, _, _ := newTestHLR(t)
	var mu sync.Mutex
	moves := 0
	h.OnMove(func(imsi string, loc *xmltree.Node) {
		mu.Lock()
		moves++
		mu.Unlock()
		if loc == nil {
			t.Error("hook got nil location")
		}
	})
	h.LocationUpdate("imsi-alice", "vlr-nj", "c1")
	h.LocationUpdate("imsi-alice", "vlr-ny", "c2")
	mu.Lock()
	defer mu.Unlock()
	if moves != 2 {
		t.Errorf("moves = %d", moves)
	}
}

func TestConcurrentChurn(t *testing.T) {
	h := New()
	for i := 0; i < 4; i++ {
		h.AddVLR(fmt.Sprintf("vlr-%d", i), fmt.Sprintf("msc-%d", i), true)
	}
	for i := 0; i < 64; i++ {
		h.AddSubscriber(Subscriber{
			IMSI:   fmt.Sprintf("imsi-%d", i),
			MSISDN: fmt.Sprintf("555-%04d", i),
		})
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for j := 0; j < 200; j++ {
				imsi := fmt.Sprintf("imsi-%d", (w*31+j)%64)
				h.LocationUpdate(imsi, fmt.Sprintf("vlr-%d", j%4), "cell")
				h.CallDelivery("x", fmt.Sprintf("555-%04d", (w*17+j)%64))
				h.Locate(imsi)
			}
		}(w)
	}
	wg.Wait()
	st := h.Stats()
	if st.LocationUpdates == 0 || st.CallDeliveries == 0 {
		t.Errorf("stats = %+v", st)
	}
	if h.Subscribers() != 64 {
		t.Errorf("subscribers = %d", h.Subscribers())
	}
}
