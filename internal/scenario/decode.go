package scenario

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"
)

// This file is a small YAML-subset decoder — just enough structure for
// scenario files, with zero module dependencies. Supported:
//
//   - `key: value` scalars and `key:` nested blocks (2-space indents)
//   - `- ` list items (scalar items, or map items whose further keys
//     align two columns past the dash)
//   - one-level flow maps `{latency: 10ms, bandwidth: 98304}` and flow
//     lists `[a, b]`
//   - full-line and trailing `# comments`
//
// Decoding is strict: unknown fields, malformed durations, tabs in
// indentation and type mismatches are errors that name the line.

// node is the generic parse tree.
type node struct {
	kind   int // 0 scalar, 1 map, 2 list
	scalar string
	keys   []string
	vals   []*node
	items  []*node
	line   int
}

const (
	scalarNode = iota
	mapNode
	listNode
)

func (n *node) child(key string) *node {
	for i, k := range n.keys {
		if k == key {
			return n.vals[i]
		}
	}
	return nil
}

type parser struct {
	lines []string
	pos   int
}

type parseErr struct {
	line int
	msg  string
}

func (e *parseErr) Error() string { return fmt.Sprintf("scenario: line %d: %s", e.line, e.msg) }

func errAt(line int, format string, args ...any) error {
	return &parseErr{line: line, msg: fmt.Sprintf(format, args...)}
}

// stripComment removes a trailing comment: a '#' at the start of the
// content or preceded by whitespace.
func stripComment(s string) string {
	for i := 0; i < len(s); i++ {
		if s[i] == '#' && (i == 0 || s[i-1] == ' ' || s[i-1] == '\t') {
			return s[:i]
		}
	}
	return s
}

// peek returns the next significant line's indent and content without
// consuming it; ok=false at EOF.
func (p *parser) peek() (indent int, content string, lineNo int, ok bool, err error) {
	for p.pos < len(p.lines) {
		raw := p.lines[p.pos]
		trimmed := strings.TrimRight(stripComment(raw), " \t")
		if strings.TrimSpace(trimmed) == "" {
			p.pos++
			continue
		}
		ind := 0
		for ind < len(trimmed) && trimmed[ind] == ' ' {
			ind++
		}
		if ind < len(trimmed) && trimmed[ind] == '\t' {
			return 0, "", 0, false, errAt(p.pos+1, "tab in indentation (use spaces)")
		}
		return ind, trimmed[ind:], p.pos + 1, true, nil
	}
	return 0, "", 0, false, nil
}

// parseBlock parses the block at exactly indent level ind.
func (p *parser) parseBlock(ind int) (*node, error) {
	indent, content, lineNo, ok, err := p.peek()
	if err != nil {
		return nil, err
	}
	if !ok || indent < ind {
		return nil, errAt(lineNo, "expected a block")
	}
	if strings.HasPrefix(content, "- ") || content == "-" {
		return p.parseList(indent)
	}
	return p.parseMap(indent)
}

func (p *parser) parseMap(ind int) (*node, error) {
	m := &node{kind: mapNode}
	for {
		indent, content, lineNo, ok, err := p.peek()
		if err != nil {
			return nil, err
		}
		if !ok || indent < ind {
			return m, nil
		}
		if indent > ind {
			return nil, errAt(lineNo, "unexpected indent")
		}
		if m.line == 0 {
			m.line = lineNo
		}
		if strings.HasPrefix(content, "- ") || content == "-" {
			return nil, errAt(lineNo, "list item where a mapping key was expected")
		}
		key, rest, err := splitKey(content, lineNo)
		if err != nil {
			return nil, err
		}
		for _, k := range m.keys {
			if k == key {
				return nil, errAt(lineNo, "duplicate key %q", key)
			}
		}
		p.pos++ // consume the key line
		var val *node
		if rest == "" {
			// Nested block (or an empty map if nothing deeper follows).
			nIndent, _, _, nOK, err := p.peek()
			if err != nil {
				return nil, err
			}
			if nOK && nIndent > ind {
				val, err = p.parseBlock(nIndent)
				if err != nil {
					return nil, err
				}
			} else {
				val = &node{kind: mapNode, line: lineNo}
			}
		} else {
			val, err = parseFlow(rest, lineNo)
			if err != nil {
				return nil, err
			}
		}
		m.keys = append(m.keys, key)
		m.vals = append(m.vals, val)
	}
}

func (p *parser) parseList(ind int) (*node, error) {
	l := &node{kind: listNode}
	for {
		indent, content, lineNo, ok, err := p.peek()
		if err != nil {
			return nil, err
		}
		if !ok || indent < ind {
			return l, nil
		}
		if indent > ind {
			return nil, errAt(lineNo, "unexpected indent")
		}
		if l.line == 0 {
			l.line = lineNo
		}
		if !strings.HasPrefix(content, "- ") && content != "-" {
			return nil, errAt(lineNo, "expected a list item")
		}
		rest := strings.TrimPrefix(strings.TrimPrefix(content, "-"), " ")
		if rest == "" {
			return nil, errAt(lineNo, "empty list item")
		}
		if key, after, kerr := splitKey(rest, lineNo); kerr == nil {
			// Map item: rewrite the dash as indentation so the item's
			// first key aligns with any continuation keys two columns in.
			p.lines[p.pos] = strings.Repeat(" ", indent+2) + rest
			item, err := p.parseMap(indent + 2)
			if err != nil {
				return nil, err
			}
			_ = key
			_ = after
			l.items = append(l.items, item)
			continue
		}
		// Scalar item.
		p.pos++
		item, err := parseFlow(rest, lineNo)
		if err != nil {
			return nil, err
		}
		l.items = append(l.items, item)
	}
}

// splitKey splits "key: rest"; an error means the content is not a
// mapping entry.
func splitKey(content string, lineNo int) (key, rest string, err error) {
	i := strings.Index(content, ":")
	if i <= 0 {
		return "", "", errAt(lineNo, "expected 'key: value', got %q", content)
	}
	key = strings.TrimSpace(content[:i])
	if key == "" || strings.ContainsAny(key, " {}[],") {
		return "", "", errAt(lineNo, "bad mapping key in %q", content)
	}
	rest = strings.TrimSpace(content[i+1:])
	return key, rest, nil
}

// parseFlow parses a scalar, a one-level `{k: v, …}` flow map, or a
// `[a, b]` flow list of scalars.
func parseFlow(s string, lineNo int) (*node, error) {
	s = strings.TrimSpace(s)
	switch {
	case strings.HasPrefix(s, "{"):
		if !strings.HasSuffix(s, "}") {
			return nil, errAt(lineNo, "unterminated flow map %q", s)
		}
		m := &node{kind: mapNode, line: lineNo}
		body := strings.TrimSpace(s[1 : len(s)-1])
		if body == "" {
			return m, nil
		}
		for _, part := range strings.Split(body, ",") {
			key, rest, err := splitKey(strings.TrimSpace(part), lineNo)
			if err != nil {
				return nil, err
			}
			if rest == "" || strings.ContainsAny(rest, "{}[]") {
				return nil, errAt(lineNo, "flow maps hold scalars only, got %q", part)
			}
			for _, k := range m.keys {
				if k == key {
					return nil, errAt(lineNo, "duplicate key %q", key)
				}
			}
			m.keys = append(m.keys, key)
			m.vals = append(m.vals, &node{kind: scalarNode, scalar: rest, line: lineNo})
		}
		return m, nil
	case strings.HasPrefix(s, "["):
		if !strings.HasSuffix(s, "]") {
			return nil, errAt(lineNo, "unterminated flow list %q", s)
		}
		l := &node{kind: listNode, line: lineNo}
		body := strings.TrimSpace(s[1 : len(s)-1])
		if body == "" {
			return l, nil
		}
		for _, part := range strings.Split(body, ",") {
			v := strings.TrimSpace(part)
			if v == "" || strings.ContainsAny(v, "{}[]") {
				return nil, errAt(lineNo, "flow lists hold scalars only, got %q", part)
			}
			l.items = append(l.items, &node{kind: scalarNode, scalar: v, line: lineNo})
		}
		return l, nil
	case strings.ContainsAny(s, "{}[]"):
		return nil, errAt(lineNo, "stray flow punctuation in %q", s)
	default:
		return &node{kind: scalarNode, scalar: s, line: lineNo}, nil
	}
}

// parseTree parses the whole document into a map node.
func parseTree(data []byte) (*node, error) {
	p := &parser{lines: strings.Split(string(data), "\n")}
	indent, _, lineNo, ok, err := p.peek()
	if err != nil {
		return nil, err
	}
	if !ok {
		return nil, errAt(1, "empty scenario")
	}
	if indent != 0 {
		return nil, errAt(lineNo, "top level must not be indented")
	}
	root, err := p.parseMap(0)
	if err != nil {
		return nil, err
	}
	if _, content, lineNo, ok, _ := p.peek(); ok {
		return nil, errAt(lineNo, "trailing content %q", content)
	}
	return root, nil
}

// ---- typed mapping -------------------------------------------------------

// fields maps a node's keys through setters, rejecting unknown fields.
func fields(n *node, where string, set map[string]func(*node) error) error {
	if n.kind != mapNode {
		return errAt(n.line, "%s: expected a mapping", where)
	}
	for i, k := range n.keys {
		fn, ok := set[k]
		if !ok {
			known := make([]string, 0, len(set))
			for f := range set {
				known = append(known, f)
			}
			sort.Strings(known)
			return errAt(n.vals[i].line, "%s: unknown field %q (known: %s)", where, k, strings.Join(known, ", "))
		}
		if err := fn(n.vals[i]); err != nil {
			return err
		}
	}
	return nil
}

func wantScalar(n *node, where string) (string, error) {
	if n.kind != scalarNode {
		return "", errAt(n.line, "%s: expected a scalar", where)
	}
	return n.scalar, nil
}

func setString(dst *string, where string) func(*node) error {
	return func(n *node) error {
		s, err := wantScalar(n, where)
		if err != nil {
			return err
		}
		*dst = s
		return nil
	}
}

func setInt(dst *int, where string) func(*node) error {
	return func(n *node) error {
		s, err := wantScalar(n, where)
		if err != nil {
			return err
		}
		v, err := strconv.Atoi(s)
		if err != nil {
			return errAt(n.line, "%s: bad integer %q", where, s)
		}
		*dst = v
		return nil
	}
}

func setInt64(dst *int64, where string) func(*node) error {
	return func(n *node) error {
		s, err := wantScalar(n, where)
		if err != nil {
			return err
		}
		v, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			return errAt(n.line, "%s: bad integer %q", where, s)
		}
		*dst = v
		return nil
	}
}

func setBool(dst *bool, where string) func(*node) error {
	return func(n *node) error {
		s, err := wantScalar(n, where)
		if err != nil {
			return err
		}
		switch s {
		case "true":
			*dst = true
		case "false":
			*dst = false
		default:
			return errAt(n.line, "%s: bad boolean %q", where, s)
		}
		return nil
	}
}

func setDuration(dst *time.Duration, where string) func(*node) error {
	return func(n *node) error {
		s, err := wantScalar(n, where)
		if err != nil {
			return err
		}
		d, err := time.ParseDuration(s)
		if err != nil {
			return errAt(n.line, "%s: bad duration %q", where, s)
		}
		if d < 0 {
			return errAt(n.line, "%s: negative duration %q", where, s)
		}
		*dst = d
		return nil
	}
}

// Decode parses and validates a scenario file.
func Decode(data []byte) (*Scenario, error) {
	root, err := parseTree(data)
	if err != nil {
		return nil, err
	}
	sc := &Scenario{}
	err = fields(root, "scenario", map[string]func(*node) error{
		"name":        setString(&sc.Name, "name"),
		"description": setString(&sc.Description, "description"),
		"seed":        setInt64(&sc.Seed, "seed"),
		"topology":    func(n *node) error { return decodeTopology(n, &sc.Topology) },
		"phases": func(n *node) error {
			return eachItem(n, "phases", func(item *node) error {
				var p Phase
				if err := decodePhase(item, &p); err != nil {
					return err
				}
				sc.Phases = append(sc.Phases, p)
				return nil
			})
		},
		"assertions": func(n *node) error {
			return eachItem(n, "assertions", func(item *node) error {
				var a Assertion
				if err := decodeAssertion(item, &a); err != nil {
					return err
				}
				sc.Asserts = append(sc.Asserts, a)
				return nil
			})
		},
	})
	if err != nil {
		return nil, err
	}
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	return sc, nil
}

func eachItem(n *node, where string, fn func(*node) error) error {
	if n.kind != listNode {
		return errAt(n.line, "%s: expected a list", where)
	}
	for _, item := range n.items {
		if err := fn(item); err != nil {
			return err
		}
	}
	return nil
}

func decodeTopology(n *node, t *Topology) error {
	return fields(n, "topology", map[string]func(*node) error{
		"rigs": func(n *node) error {
			return eachItem(n, "rigs", func(item *node) error {
				var r RigSpec
				if err := decodeRig(item, &r); err != nil {
					return err
				}
				t.Rigs = append(t.Rigs, r)
				return nil
			})
		},
	})
}

func decodeRig(n *node, r *RigSpec) error {
	return fields(n, "rig", map[string]func(*node) error{
		"name":               setString(&r.Name, "rig name"),
		"layout":             setString(&r.Layout, "layout"),
		"stores":             setInt(&r.Stores, "stores"),
		"users":              setInt(&r.Users, "users"),
		"size-bytes":         setInt(&r.SizeBytes, "size-bytes"),
		"cache-entries":      setInt(&r.CacheEntries, "cache-entries"),
		"baseline":           setBool(&r.Baseline, "baseline"),
		"disable-coalescing": setBool(&r.DisableCoalescing, "disable-coalescing"),
		"retry-attempts":     setInt(&r.RetryAttempts, "retry-attempts"),
		"per-attempt":        setDuration(&r.PerAttempt, "per-attempt"),
		"max-concurrency":    setInt(&r.MaxConcurrency, "max-concurrency"),
		"queue-depth":        setInt(&r.QueueDepth, "queue-depth"),
		"lease-ttl":          setDuration(&r.LeaseTTL, "lease-ttl"),
		"lease-grace":        setDuration(&r.LeaseGrace, "lease-grace"),
		"heartbeats":         setBool(&r.Heartbeats, "heartbeats"),
		"replicas":           setInt(&r.Replicas, "replicas"),
		"quorum":             setInt(&r.Quorum, "quorum"),
		"election-ttl":       setDuration(&r.ElectionTTL, "election-ttl"),
		"shards":             setInt(&r.Shards, "shards"),
		"spare-shards":       setInt(&r.SpareShards, "spare-shards"),
		"auto-repair":        setBool(&r.AutoRepair, "auto-repair"),
		"gossip-interval":    setDuration(&r.GossipInterval, "gossip-interval"),
		"suspect-timeout":    setDuration(&r.SuspectTimeout, "suspect-timeout"),
		"shard-links": func(n *node) error {
			spec := &LinkSpec{}
			if err := decodeLinkSpec(n, spec); err != nil {
				return err
			}
			r.ShardLinks = spec
			return nil
		},
		"profile":            setString(&r.Profile, "profile"),
		"links":              func(n *node) error { return decodeLinks(n, &r.Links) },
	})
}

func decodeLinks(n *node, l *LinkSet) error {
	if n.kind != mapNode {
		return errAt(n.line, "links: expected a mapping")
	}
	for i, k := range n.keys {
		spec := &LinkSpec{}
		if err := decodeLinkSpec(n.vals[i], spec); err != nil {
			return err
		}
		switch {
		case k == "mdm":
			l.MDM = spec
		case k == "stores":
			l.Stores = spec
		case storeIndex(k) >= 0:
			if l.PerStore == nil {
				l.PerStore = map[string]*LinkSpec{}
			}
			l.PerStore[k] = spec
		default:
			return errAt(n.vals[i].line, "links: unknown link %q (mdm, stores, or store-N)", k)
		}
	}
	return nil
}

func decodeLinkSpec(n *node, l *LinkSpec) error {
	return fields(n, "link", map[string]func(*node) error{
		"latency":   setDuration(&l.Latency, "latency"),
		"jitter":    setDuration(&l.Jitter, "jitter"),
		"bandwidth": setInt(&l.Bandwidth, "bandwidth"),
	})
}

func decodePhase(n *node, p *Phase) error {
	return fields(n, "phase", map[string]func(*node) error{
		"name":      setString(&p.Name, "phase name"),
		"rig":       setString(&p.Rig, "rig"),
		"calibrate": setInt(&p.Calibrate, "calibrate"),
		"clients":   setInt(&p.Clients, "clients"),
		"rounds":    setInt(&p.Rounds, "rounds"),
		"conns":     setInt(&p.Conns, "conns"),
		"duration":  setDuration(&p.Duration, "duration"),
		"kill-leader-after": setDuration(&p.KillLeaderAfter, "kill-leader-after"),
		"rebalance-after":   setDuration(&p.RebalanceAfter, "rebalance-after"),
		"kill-shard-after":  setDuration(&p.KillShardAfter, "kill-shard-after"),
		"kill-shard":        setString(&p.KillShard, "kill-shard"),
		"partition-after":      setDuration(&p.PartitionAfter, "partition-after"),
		"partition-shard":      setString(&p.PartitionShard, "partition-shard"),
		"partition-heal-after": setDuration(&p.PartitionHealAfter, "partition-heal-after"),
		"rate": func(n *node) error {
			s, err := wantScalar(n, "rate")
			if err != nil {
				return err
			}
			r, err := parseRate(s)
			if err != nil {
				return errAt(n.line, "rate: %v", err)
			}
			p.Rate = r
			return nil
		},
		"budget": func(n *node) error {
			s, err := wantScalar(n, "budget")
			if err != nil {
				return err
			}
			b, err := parseBudget(s)
			if err != nil {
				return errAt(n.line, "budget: %v", err)
			}
			p.Budget = b
			return nil
		},
		"stamped": func(n *node) error {
			var v bool
			if err := setBool(&v, "stamped")(n); err != nil {
				return err
			}
			p.Stamped = &v
			return nil
		},
		"trace": func(n *node) error {
			var v bool
			if err := setBool(&v, "trace")(n); err != nil {
				return err
			}
			p.Trace = &v
			return nil
		},
		"faults": func(n *node) error {
			return eachItem(n, "faults", func(item *node) error {
				var f FaultSpec
				if err := decodeFault(item, &f); err != nil {
					return err
				}
				p.Faults = append(p.Faults, f)
				return nil
			})
		},
		"reregister": func(n *node) error {
			return eachItem(n, "reregister", func(item *node) error {
				s, err := wantScalar(item, "reregister")
				if err != nil {
					return err
				}
				p.Reregister = append(p.Reregister, s)
				return nil
			})
		},
		"mix": func(n *node) error {
			return eachItem(n, "mix", func(item *node) error {
				var m MixEntry
				if err := decodeMix(item, &m); err != nil {
					return err
				}
				p.Mix = append(p.Mix, m)
				return nil
			})
		},
	})
}

func decodeMix(n *node, m *MixEntry) error {
	m.Weight = 1
	return fields(n, "mix entry", map[string]func(*node) error{
		"verb":    setString(&m.Verb, "verb"),
		"pattern": setString(&m.Pattern, "pattern"),
		"batch":   setBool(&m.Batch, "batch"),
		"users":   setString(&m.Users, "users"),
		"weight":  setInt(&m.Weight, "weight"),
	})
}

func decodeFault(n *node, f *FaultSpec) error {
	return fields(n, "fault", map[string]func(*node) error{
		"link": setString(&f.Link, "link"),
		"latency": func(n *node) error {
			var d time.Duration
			if err := setDuration(&d, "latency")(n); err != nil {
				return err
			}
			f.Latency = &d
			return nil
		},
		"jitter": func(n *node) error {
			var d time.Duration
			if err := setDuration(&d, "jitter")(n); err != nil {
				return err
			}
			f.Jitter = &d
			return nil
		},
		"bandwidth": func(n *node) error {
			var v int
			if err := setInt(&v, "bandwidth")(n); err != nil {
				return err
			}
			f.Bandwidth = &v
			return nil
		},
		"blackout": func(n *node) error {
			var v bool
			if err := setBool(&v, "blackout")(n); err != nil {
				return err
			}
			f.Blackout = &v
			return nil
		},
	})
}

func decodeAssertion(n *node, a *Assertion) error {
	return fields(n, "assertion", map[string]func(*node) error{
		"kind":         setString(&a.Kind, "kind"),
		"phase":        setString(&a.Phase, "phase"),
		"num":          setString(&a.Num, "num"),
		"den":          setString(&a.Den, "den"),
		"max-duration": setDuration(&a.Max, "max-duration"),
		"min": func(n *node) error {
			s, err := wantScalar(n, "min")
			if err != nil {
				return err
			}
			v, err := strconv.ParseFloat(s, 64)
			if err != nil {
				return errAt(n.line, "min: bad number %q", s)
			}
			a.Min = v
			return nil
		},
		"max": func(n *node) error {
			s, err := wantScalar(n, "max")
			if err != nil {
				return err
			}
			v, err := strconv.ParseFloat(s, 64)
			if err != nil {
				return errAt(n.line, "max: bad number %q", s)
			}
			a.MaxRatio = v
			return nil
		},
		"max-count": setInt(&a.MaxCount, "max-count"),
	})
}

// parseRate parses "0.8x" (capacity factor), "120/s" or "120"
// (absolute requests/sec).
func parseRate(s string) (Rate, error) {
	s = strings.TrimSpace(s)
	if strings.HasSuffix(s, "x") {
		f, err := strconv.ParseFloat(strings.TrimSuffix(s, "x"), 64)
		if err != nil || f <= 0 {
			return Rate{}, fmt.Errorf("bad capacity factor %q", s)
		}
		return Rate{Factor: f}, nil
	}
	v, err := strconv.ParseFloat(strings.TrimSuffix(s, "/s"), 64)
	if err != nil || v <= 0 {
		return Rate{}, fmt.Errorf("bad rate %q (want '0.8x', '120/s' or '120')", s)
	}
	return Rate{PerSec: v}, nil
}

// parseBudget parses "10x" (service-time factor) or a duration.
func parseBudget(s string) (Budget, error) {
	s = strings.TrimSpace(s)
	if strings.HasSuffix(s, "x") {
		f, err := strconv.ParseFloat(strings.TrimSuffix(s, "x"), 64)
		if err != nil || f <= 0 {
			return Budget{}, fmt.Errorf("bad service-time factor %q", s)
		}
		return Budget{Factor: f}, nil
	}
	d, err := time.ParseDuration(s)
	if err != nil || d <= 0 {
		return Budget{}, fmt.Errorf("bad budget %q (want '10x' or a duration)", s)
	}
	return Budget{Duration: d}, nil
}
