package scenario

import (
	"fmt"
	"time"
)

// Evaluate runs every assertion of sc against report, appends the
// results and sets report.Pass. Failure details name the measured value,
// the bound and the phase, so a CI failure reads as a diagnosis rather
// than a boolean.
func Evaluate(sc *Scenario, report *Report) {
	report.Pass = true
	for i := range sc.Asserts {
		res := evalOne(&sc.Asserts[i], report)
		if !res.Pass {
			report.Pass = false
		}
		report.Assertions = append(report.Assertions, res)
	}
}

func evalOne(a *Assertion, report *Report) AssertionResult {
	res := AssertionResult{Kind: a.Kind, Target: a.Phase}
	fail := func(format string, args ...any) AssertionResult {
		res.Pass = false
		res.Detail = fmt.Sprintf(format, args...)
		return res
	}
	pass := func(format string, args ...any) AssertionResult {
		res.Pass = true
		res.Detail = fmt.Sprintf(format, args...)
		return res
	}
	phase := func(name string) *PhaseReport {
		return report.Phase(name)
	}

	switch a.Kind {
	case AssertP95Ceiling:
		p := phase(a.Phase)
		if p == nil {
			return fail("phase %q not in report", a.Phase)
		}
		got := time.Duration(p.P95Micros) * time.Microsecond
		if got > a.Max {
			return fail("phase %s p95 %s exceeds ceiling %s — the phase got slower; profile it or raise the ceiling deliberately", a.Phase, got, a.Max)
		}
		return pass("phase %s p95 %s within ceiling %s", a.Phase, got, a.Max)

	case AssertGoodputFloor:
		p := phase(a.Phase)
		if p == nil {
			return fail("phase %q not in report", a.Phase)
		}
		if p.GoodputPerSec < a.Min {
			return fail("phase %s goodput %.1f/s below floor %.1f/s — in-budget completions collapsed", a.Phase, p.GoodputPerSec, a.Min)
		}
		return pass("phase %s goodput %.1f/s meets floor %.1f/s", a.Phase, p.GoodputPerSec, a.Min)

	case AssertShedFloor:
		p := phase(a.Phase)
		if p == nil {
			return fail("phase %q not in report", a.Phase)
		}
		if float64(p.Shed) < a.Min {
			return fail("phase %s shed %d requests, floor %.0f — admission control did not engage under the offered load", a.Phase, p.Shed, a.Min)
		}
		return pass("phase %s shed %d requests (floor %.0f)", a.Phase, p.Shed, a.Min)

	case AssertErrorCeiling:
		p := phase(a.Phase)
		if p == nil {
			return fail("phase %q not in report", a.Phase)
		}
		if p.Errors > a.MaxCount {
			return fail("phase %s had %d errors, ceiling %d — something broke beyond shedding and expiry", a.Phase, p.Errors, a.MaxCount)
		}
		return pass("phase %s errors %d within ceiling %d", a.Phase, p.Errors, a.MaxCount)

	case AssertThroughputRatio, AssertRetentionFloor, AssertRetentionCeiling:
		res.Target = a.Num + "/" + a.Den
		num, den := phase(a.Num), phase(a.Den)
		if num == nil || den == nil {
			return fail("phases %q/%q not both in report", a.Num, a.Den)
		}
		var ratio float64
		var metric string
		if a.Kind == AssertThroughputRatio {
			metric = "throughput"
			if den.ThroughputPerSec > 0 {
				ratio = num.ThroughputPerSec / den.ThroughputPerSec
			}
		} else {
			metric = "goodput"
			if den.GoodputPerSec > 0 {
				ratio = num.GoodputPerSec / den.GoodputPerSec
			}
		}
		if a.Kind == AssertRetentionCeiling {
			if ratio > a.MaxRatio {
				return fail("%s ratio %s/%s = %.2f above ceiling %.2f — the baseline no longer collapses; re-examine the testbed", metric, a.Num, a.Den, ratio, a.MaxRatio)
			}
			return pass("%s ratio %s/%s = %.2f within ceiling %.2f", metric, a.Num, a.Den, ratio, a.MaxRatio)
		}
		if ratio < a.Min {
			return fail("%s ratio %s/%s = %.2f below floor %.2f", metric, a.Num, a.Den, ratio, a.Min)
		}
		return pass("%s ratio %s/%s = %.2f meets floor %.2f", metric, a.Num, a.Den, ratio, a.Min)

	case AssertZeroLostCoverage:
		res.Target = "registrations"
		for _, audit := range report.Registrations {
			if audit.Registered != audit.Expected {
				return fail("rig %s holds %d registrations, expected %d — coverage was lost across the run", audit.Rig, audit.Registered, audit.Expected)
			}
			if audit.ProbeFailures > 0 {
				return fail("rig %s: %d end-of-run coverage probes failed — registered paths did not resolve", audit.Rig, audit.ProbeFailures)
			}
			if audit.Lost > 0 {
				return fail("rig %s lost %d of %d quorum-acked registrations — a durability ack was broken by failover", audit.Rig, audit.Lost, audit.Acked)
			}
		}
		return pass("all %d rigs hold full coverage", len(report.Registrations))

	case AssertFailoverCeiling:
		p := phase(a.Phase)
		if p == nil {
			return fail("phase %q not in report", a.Phase)
		}
		if p.FailoverMillis <= 0 {
			return fail("phase %s recorded no failover — the leader kill did not fire or no replacement was elected", a.Phase)
		}
		got := time.Duration(p.FailoverMillis) * time.Millisecond
		if got > a.Max {
			return fail("phase %s failover took %s, ceiling %s — election is slower than one lease TTL", a.Phase, got, a.Max)
		}
		return pass("phase %s failed over in %s (ceiling %s)", a.Phase, got, a.Max)

	case AssertRepairCeiling:
		p := phase(a.Phase)
		if p == nil {
			return fail("phase %q not in report", a.Phase)
		}
		if p.RepairMillis <= 0 {
			return fail("phase %s recorded no repair — the shard fault did not fire or no auto-repair completed", a.Phase)
		}
		got := time.Duration(p.RepairMillis) * time.Millisecond
		if got > a.Max {
			return fail("phase %s detected and repaired in %s, ceiling %s — gossip detection or spare promotion is too slow", a.Phase, got, a.Max)
		}
		return pass("phase %s repaired in %s to epoch %d, promoting %v (ceiling %s)", a.Phase, got, p.RepairEpoch, p.PromotedShards, a.Max)

	case AssertConvergence:
		res.Target = "constellation"
		checked := 0
		for _, audit := range report.Registrations {
			if audit.MapViews == 0 {
				continue // not an auto-repair rig
			}
			checked++
			if audit.MapViews != 1 {
				return fail("rig %s ended with %d distinct shard-map views — the constellation did not converge on one epoch", audit.Rig, audit.MapViews)
			}
			if audit.SplitBrainOwners > 0 {
				return fail("rig %s ended with %d owners claimed by more than one live shard — split-brain coverage survived the repair", audit.Rig, audit.SplitBrainOwners)
			}
		}
		if checked == 0 {
			return fail("no rig recorded a constellation view — convergence asserted on a scenario without auto-repair rigs")
		}
		return pass("%d rigs converged on a single shard-map view with no split-brain owners", checked)

	case AssertMovedOwnersFloor:
		p := phase(a.Phase)
		if p == nil {
			return fail("phase %q not in report", a.Phase)
		}
		if p.RebalanceMillis <= 0 {
			return fail("phase %s recorded no rebalance — the shard-map expansion did not fire or did not complete", a.Phase)
		}
		if float64(p.MovedOwners) < a.Min {
			return fail("phase %s rebalance moved %d owners, floor %.0f — the expansion did not actually spread the keyspace", a.Phase, p.MovedOwners, a.Min)
		}
		return pass("phase %s rebalanced in %dms, %d owners moved (floor %.0f)", a.Phase, p.RebalanceMillis, p.MovedOwners, a.Min)
	}
	return fail("unknown assertion kind %q", a.Kind)
}
