package scenario

import (
	"encoding/json"
	"fmt"
	"os"
	"time"

	"gupster/internal/metrics"
)

// PhaseReport is one phase's measured outcome.
type PhaseReport struct {
	Name string `json:"name"`
	Rig  string `json:"rig"`
	// Kind is "calibrate", "closed" or "open".
	Kind string `json:"kind"`
	// Sent is the offered load (individual requests; a batch resolve
	// counts each path). InBudget counts completions inside the
	// per-request budget (with no budget, every completion). Shed counts
	// explicit overload refusals, Expired budget-burned requests, Errors
	// everything else.
	Sent     int `json:"sent"`
	InBudget int `json:"in_budget"`
	Shed     int `json:"shed"`
	Expired  int `json:"expired"`
	Errors   int `json:"errors"`
	// Latency percentiles of in-budget completions.
	P50Micros int64 `json:"p50_us"`
	P95Micros int64 `json:"p95_us"`
	P99Micros int64 `json:"p99_us"`
	// ThroughputPerSec is completions over wall clock; GoodputPerSec is
	// in-budget completions over the phase's nominal send window (open
	// loop) or wall clock (closed loop).
	ThroughputPerSec float64 `json:"throughput_per_sec"`
	GoodputPerSec    float64 `json:"goodput_per_sec"`
	// Pipeline deltas across the phase, from the rig MDM's counters.
	CoalesceHitRate float64 `json:"coalesce_hit_rate"`
	FanOutCalls     uint64  `json:"fan_out_calls"`
	DurationMillis  int64   `json:"duration_ms"`
	// FailoverMillis is how long a kill-leader-after phase's surviving
	// members took to elect a replacement (0 = no kill in this phase).
	FailoverMillis int64 `json:"failover_ms,omitempty"`
	// RebalanceMillis is how long a rebalance-after phase's live shard-map
	// expansion took end to end (0 = no rebalance in this phase);
	// MovedOwners counts the seeded owners whose home shard changed.
	RebalanceMillis int64 `json:"rebalance_ms,omitempty"`
	MovedOwners     int   `json:"moved_owners,omitempty"`
	// RepairMillis is how long a kill-shard-after / partition-after phase
	// took from imposing the fault to a completed auto-repair (0 = no
	// shard fault in this phase); RepairEpoch the fencing epoch the repair
	// installed, PromotedShards the spares it promoted.
	RepairMillis   int64    `json:"repair_ms,omitempty"`
	RepairEpoch    uint64   `json:"repair_epoch,omitempty"`
	PromotedShards []string `json:"promoted_shards,omitempty"`
	// Resources samples the host across the phase (CPU as a delta).
	Resources Resources `json:"resources"`
}

// RegistrationAudit is the end-of-rig durability check feeding the
// zero-lost-registrations assertion.
type RegistrationAudit struct {
	Rig string `json:"rig"`
	// Expected is the rig's full coverage count; Registered what the
	// MDM's registry held at teardown; ProbeFailures how many audit
	// resolves failed.
	Expected      int `json:"expected"`
	Registered    int `json:"registered"`
	ProbeFailures int `json:"probe_failures"`
	// Acked counts quorum-acknowledged workload registrations on a
	// replicated rig; Lost how many of those the surviving leader no
	// longer holds at teardown — the zero-lost-registrations claim.
	Acked int `json:"acked,omitempty"`
	Lost  int `json:"lost,omitempty"`
	// MapViews counts the distinct shard-map coordinates live shards of an
	// auto-repair rig served at teardown (1 = converged); SplitBrainOwners
	// how many owners more than one live slice still claimed.
	MapViews         int `json:"map_views,omitempty"`
	SplitBrainOwners int `json:"split_brain_owners,omitempty"`
}

// AssertionResult is one evaluated assertion.
type AssertionResult struct {
	Kind   string `json:"kind"`
	Target string `json:"target"`
	Pass   bool   `json:"pass"`
	Detail string `json:"detail"`
}

// Report is the machine-readable output of a scenario run.
type Report struct {
	Scenario   string `json:"scenario"`
	Seed       int64  `json:"seed"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	// ServiceP50Micros is the first calibration's unloaded service p50;
	// BudgetMillis the budget factor-based phases resolved against it.
	ServiceP50Micros int64 `json:"service_p50_us,omitempty"`
	BudgetMillis     int64 `json:"budget_ms,omitempty"`
	// MDMSpans totals the trace spans the rig MDMs collected — the
	// tracing-coverage signal E17 asserts on.
	MDMSpans      int                 `json:"mdm_spans,omitempty"`
	Phases        []PhaseReport       `json:"phases"`
	Registrations []RegistrationAudit `json:"registrations,omitempty"`
	Assertions    []AssertionResult   `json:"assertions,omitempty"`
	// Pass is true when every assertion held.
	Pass bool `json:"pass"`
}

// Phase returns the named phase report, or nil.
func (r *Report) Phase(name string) *PhaseReport {
	for i := range r.Phases {
		if r.Phases[i].Name == name {
			return &r.Phases[i]
		}
	}
	return nil
}

// Table renders the report in the EXPERIMENTS.md house style.
func (r *Report) Table() *metrics.Table {
	verdict := "PASS"
	if !r.Pass {
		verdict = "FAIL"
	}
	t := metrics.NewTable(
		fmt.Sprintf("scenario %s — seed %d, %d assertions: %s", r.Scenario, r.Seed, len(r.Assertions), verdict),
		"phase", "rig", "sent", "ok", "shed", "expired", "errors", "p50", "p95", "thru/s", "good/s", "cpu", "goroutines")
	for _, p := range r.Phases {
		t.AddRow(p.Name, p.Rig, p.Sent, p.InBudget, p.Shed, p.Expired, p.Errors,
			time.Duration(p.P50Micros)*time.Microsecond,
			time.Duration(p.P95Micros)*time.Microsecond,
			fmt.Sprintf("%.0f", p.ThroughputPerSec),
			fmt.Sprintf("%.0f", p.GoodputPerSec),
			fmt.Sprintf("%dms", p.Resources.CPUMillis),
			p.Resources.Goroutines)
	}
	return t
}

// WriteReport writes the report as indented JSON.
func WriteReport(r *Report, path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// ReadReport loads a committed report.
func ReadReport(path string) (*Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r Report
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, err
	}
	return &r, nil
}

// CheckRegression gates a fresh run against a committed baseline: every
// baseline phase must be present, every assertion of the fresh run must
// pass (scenario assertions encode the machine-independent within-run
// ratios, so they are the regression surface), and the fresh run must
// evaluate at least as many assertions as the baseline did (a scenario
// edit that silently dropped its gates fails here). Returns nil when
// acceptable.
func CheckRegression(baseline, current *Report) error {
	var problems []string
	if baseline != nil {
		for _, bp := range baseline.Phases {
			if current.Phase(bp.Name) == nil {
				problems = append(problems, fmt.Sprintf("phase %q missing from current run", bp.Name))
			}
		}
		if len(current.Assertions) < len(baseline.Assertions) {
			problems = append(problems, fmt.Sprintf(
				"current run evaluated %d assertions, baseline had %d",
				len(current.Assertions), len(baseline.Assertions)))
		}
	}
	for _, a := range current.Assertions {
		if !a.Pass {
			problems = append(problems, fmt.Sprintf("%s(%s): %s", a.Kind, a.Target, a.Detail))
		}
	}
	if len(problems) == 0 {
		return nil
	}
	msg := "scenario regression:"
	for _, p := range problems {
		msg += "\n  - " + p
	}
	return fmt.Errorf("%s", msg)
}
