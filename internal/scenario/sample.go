package scenario

import (
	"os"
	"runtime"
	"strconv"
	"strings"
)

// Resources is one host-resource sample, attached per phase to the
// report. CPUMillis is the process CPU consumed during the phase
// (user+system, from /proc/self/stat deltas); the rest are end-of-phase
// absolutes. Off Linux the /proc-derived fields read zero — the report
// stays well-formed, just without host data.
type Resources struct {
	CPUMillis  int64 `json:"cpu_ms"`
	RSSBytes   int64 `json:"rss_bytes"`
	Goroutines int   `json:"goroutines"`
	FDs        int   `json:"fds"`
}

// userHZ is the kernel clock-tick rate /proc/self/stat counts in. Linux
// fixes USER_HZ at 100 for userspace regardless of the scheduler tick.
const userHZ = 100

// sampleResources takes one absolute sample.
func sampleResources() Resources {
	r := Resources{Goroutines: runtime.NumGoroutine()}
	r.CPUMillis = procCPUMillis()
	r.RSSBytes = procRSSBytes()
	r.FDs = procFDCount()
	return r
}

// phaseDelta folds a phase-start sample and a phase-end sample into the
// per-phase report row: CPU as the delta, the rest as end-of-phase state.
func phaseDelta(start, end Resources) Resources {
	d := end
	d.CPUMillis = end.CPUMillis - start.CPUMillis
	if d.CPUMillis < 0 {
		d.CPUMillis = 0
	}
	return d
}

// procCPUMillis reads utime+stime from /proc/self/stat (fields 14 and 15,
// 1-based, after the parenthesized comm which may itself contain spaces).
func procCPUMillis() int64 {
	data, err := os.ReadFile("/proc/self/stat")
	if err != nil {
		return 0
	}
	s := string(data)
	// Skip past the comm field: everything up to the last ')'.
	i := strings.LastIndexByte(s, ')')
	if i < 0 {
		return 0
	}
	fields := strings.Fields(s[i+1:])
	// fields[0] is state (field 3); utime is field 14, stime 15.
	if len(fields) < 13 {
		return 0
	}
	utime, err1 := strconv.ParseInt(fields[11], 10, 64)
	stime, err2 := strconv.ParseInt(fields[12], 10, 64)
	if err1 != nil || err2 != nil {
		return 0
	}
	return (utime + stime) * 1000 / userHZ
}

// procRSSBytes reads the resident set from /proc/self/statm (field 2,
// pages).
func procRSSBytes() int64 {
	data, err := os.ReadFile("/proc/self/statm")
	if err != nil {
		return 0
	}
	fields := strings.Fields(string(data))
	if len(fields) < 2 {
		return 0
	}
	pages, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return 0
	}
	return pages * int64(os.Getpagesize())
}

// procFDCount counts open file descriptors.
func procFDCount() int {
	ents, err := os.ReadDir("/proc/self/fd")
	if err != nil {
		return 0
	}
	return len(ents)
}
