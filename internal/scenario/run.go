package scenario

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"gupster/internal/core"
	"gupster/internal/federation"
	"gupster/internal/metrics"
	"gupster/internal/policy"
	"gupster/internal/reachme"
	"gupster/internal/shard"
	"gupster/internal/store"
	"gupster/internal/syncml"
	"gupster/internal/token"
	"gupster/internal/wire"
	"gupster/internal/xmltree"
	"gupster/internal/xpath"
)

// RunOptions parameterize a scenario run.
type RunOptions struct {
	// Fast shrinks the run for smoke testing: round counts, send windows
	// and calibration iterations are scaled down (topology untouched).
	Fast bool
	// Seed overrides the scenario's seed.
	Seed *int64
	// Logf narrates phase progress; nil discards.
	Logf func(format string, args ...any)
	// OnRequest observes every scheduled request as it is drawn —
	// (phase, client stream, request) — the reproducibility test's hook.
	// Closed-loop streams are the client indices; open-loop is -1.
	OnRequest func(phase string, client int, req Request)
}

func (o *RunOptions) logf(format string, args ...any) {
	if o.Logf != nil {
		o.Logf(format, args...)
	}
}

// reachAt is the fixed instant reach-me decisions evaluate at — a
// Wednesday working hour, so the committed preference rules route to the
// office line. A wall-clock `at` would make runs time-of-day dependent.
var reachAt = time.Date(2003, time.January, 15, 10, 30, 0, 0, time.UTC)

// liveness bounds unbudgeted requests so a wedged phase terminates; it
// never binds in practice.
const liveness = 60 * time.Second

// engine is one run's mutable state.
type engine struct {
	sc   *Scenario
	opts RunOptions
	seed int64

	// serviceP50/capacity come from the run's first calibration; factor
	// rates and budgets resolve against them.
	serviceP50 time.Duration
	capacity   float64

	report *Report
}

// Run executes a scenario: rigs are built and torn down in declaration
// order, each running the phases that name it in file order; assertions
// evaluate against the assembled report at the end.
func Run(sc *Scenario, opts RunOptions) (*Report, error) {
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	e := &engine{sc: sc, opts: opts, seed: sc.Seed}
	if opts.Seed != nil {
		e.seed = *opts.Seed
	}
	e.report = &Report{Scenario: sc.Name, Seed: e.seed, GOMAXPROCS: runtime.GOMAXPROCS(0)}

	for rigIdx := range sc.Topology.Rigs {
		spec := &sc.Topology.Rigs[rigIdx]
		var phaseIdxs []int
		for i := range sc.Phases {
			if sc.Phases[i].Rig == spec.Name {
				phaseIdxs = append(phaseIdxs, i)
			}
		}
		if len(phaseIdxs) == 0 {
			continue
		}
		opts.logf("rig %s: building (%s, %d stores)", spec.Name, spec.Layout, spec.Stores)
		rig, err := Build(*spec, e.seed, rigIdx)
		if err != nil {
			return nil, fmt.Errorf("scenario %s: rig %s: %w", sc.Name, spec.Name, err)
		}
		err = e.runRig(rig, phaseIdxs)
		audit := RegistrationAudit{
			Rig:      spec.Name,
			Expected: rig.ExpectedRegistrations(),
		}
		if err == nil {
			rig.auditCoverage(&audit)
			audit.ProbeFailures = rig.probeCoverage(context.Background())
			e.report.Registrations = append(e.report.Registrations, audit)
			e.report.MDMSpans += rig.MDM.Tracer().SpanCount()
		}
		rig.Close()
		if err != nil {
			return nil, err
		}
	}

	Evaluate(sc, e.report)
	return e.report, nil
}

// runRig runs one rig's phases.
func (e *engine) runRig(rig *Rig, phaseIdxs []int) error {
	run := &rigRun{engine: e, rig: rig}
	defer run.close()
	for _, pi := range phaseIdxs {
		p := &e.sc.Phases[pi]
		e.opts.logf("phase %s: starting", p.Name)
		if err := run.applyFaults(p); err != nil {
			return fmt.Errorf("phase %s: %w", p.Name, err)
		}
		herd := run.startHerd(p)
		pr, err := run.runPhase(p, pi)
		herdErrs := herd()
		if err != nil {
			return fmt.Errorf("phase %s: %w", p.Name, err)
		}
		pr.Errors += herdErrs
		e.report.Phases = append(e.report.Phases, *pr)
	}
	return nil
}

// rigRun holds the per-rig connection pools.
type rigRun struct {
	engine *engine
	rig    *Rig

	mu        sync.Mutex
	wireConns []*wire.Client
	coreClis  []*core.Client
	storeClis map[int]*store.Client
	// mirrors are failover clients over the rig's member addresses —
	// directory mutations (and, on replicated rigs, resolves) ride them
	// so a leader kill re-homes transparently.
	mirrors []*federation.MirrorClient
	// shardClis are shard-aware clients (sharded rigs) — they route each
	// request to its owner's home shard and adopt newer maps from
	// wrong-shard redirects, so a mid-phase rebalance re-routes instead
	// of erroring.
	shardClis []*shard.Client
	// userStore maps user → owning store index (sharded layout).
	userStore map[string]int
}

func (rr *rigRun) close() {
	for _, c := range rr.wireConns {
		c.Close()
	}
	for _, c := range rr.coreClis {
		c.Close()
	}
	for _, c := range rr.storeClis {
		c.Close()
	}
	for _, c := range rr.mirrors {
		c.Close()
	}
	for _, c := range rr.shardClis {
		c.Close()
	}
	rr.wireConns, rr.coreClis, rr.storeClis, rr.mirrors, rr.shardClis = nil, nil, nil, nil, nil
}

// wireConn returns (dialing on demand) the i-th raw wire connection.
func (rr *rigRun) wireConn(i int) (*wire.Client, error) {
	rr.mu.Lock()
	defer rr.mu.Unlock()
	for len(rr.wireConns) <= i {
		c, err := wire.Dial(rr.rig.MDMAddr)
		if err != nil {
			return nil, err
		}
		rr.wireConns = append(rr.wireConns, c)
	}
	return rr.wireConns[i], nil
}

// coreCli returns the i-th pooled core client (reach-me decisions).
func (rr *rigRun) coreCli(i int) (*core.Client, error) {
	rr.mu.Lock()
	defer rr.mu.Unlock()
	for len(rr.coreClis) <= i {
		c, err := core.DialMDM(rr.rig.MDMAddr, rr.rig.Users[0], "self")
		if err != nil {
			return nil, err
		}
		rr.coreClis = append(rr.coreClis, c)
	}
	return rr.coreClis[i], nil
}

// mirrorCli returns the i-th pooled failover client over the rig's
// constellation (or its single MDM).
func (rr *rigRun) mirrorCli(i int) (*federation.MirrorClient, error) {
	rr.mu.Lock()
	defer rr.mu.Unlock()
	for len(rr.mirrors) <= i {
		mc, err := federation.DialMirrors(rr.rig.MemberAddrs())
		if err != nil {
			return nil, err
		}
		rr.mirrors = append(rr.mirrors, mc)
	}
	return rr.mirrors[i], nil
}

// shardCli returns the i-th pooled shard-aware client, bootstrapping its
// map from the rig's first shard.
func (rr *rigRun) shardCli(i int) (*shard.Client, error) {
	rr.mu.Lock()
	defer rr.mu.Unlock()
	for len(rr.shardClis) <= i {
		c, err := shard.Dial(rr.rig.MDMAddr)
		if err != nil {
			return nil, err
		}
		rr.shardClis = append(rr.shardClis, c)
	}
	return rr.shardClis[i], nil
}

// shardIdx maps a request index onto the pre-dialed shard-client pool.
func (rr *rigRun) shardIdx(i int) int {
	rr.mu.Lock()
	n := len(rr.shardClis)
	rr.mu.Unlock()
	if n == 0 {
		return 0
	}
	return i % n
}

// storeCli returns the pooled direct connection to store i (through its
// fault proxy when one exists).
func (rr *rigRun) storeCli(i int) (*store.Client, error) {
	rr.mu.Lock()
	defer rr.mu.Unlock()
	if rr.storeClis == nil {
		rr.storeClis = map[int]*store.Client{}
	}
	if c, ok := rr.storeClis[i]; ok {
		return c, nil
	}
	c, err := store.DialClient(rr.rig.Stores[i].Addr)
	if err != nil {
		return nil, err
	}
	rr.storeClis[i] = c
	return c, nil
}

// dropStoreCli discards the pooled connection to store i — a lifted
// blackout leaves the old TCP stream severed, so the next request must
// re-dial through the restored proxy.
func (rr *rigRun) dropStoreCli(i int) {
	rr.mu.Lock()
	if c, ok := rr.storeClis[i]; ok {
		c.Close()
		delete(rr.storeClis, i)
	}
	rr.mu.Unlock()
}

// storeFor maps a user (or, in the split layout, a request index) to the
// owning store index.
func (rr *rigRun) storeFor(user string, i int) int {
	if rr.rig.Spec.Layout == LayoutSplit {
		return i % len(rr.rig.Stores)
	}
	rr.mu.Lock()
	if rr.userStore == nil {
		rr.userStore = map[string]int{}
		for idx, u := range rr.rig.Users {
			rr.userStore[u] = idx % len(rr.rig.Stores)
		}
	}
	s := rr.userStore[user]
	rr.mu.Unlock()
	return s
}

// applyFaults mutates links at phase start.
func (rr *rigRun) applyFaults(p *Phase) error {
	for _, f := range p.Faults {
		proxy := rr.rig.Link(f.Link)
		if f.Blackout != nil {
			idx := storeIndex(f.Link)
			switch {
			case *f.Blackout && idx >= 0:
				rr.engine.opts.logf("phase %s: blackout %s", p.Name, f.Link)
				rr.rig.SilenceStore(idx)
			case !*f.Blackout && idx >= 0:
				rr.engine.opts.logf("phase %s: restore %s", p.Name, f.Link)
				rr.rig.RestoreStore(idx)
				rr.dropStoreCli(idx)
			case proxy != nil:
				proxy.Blackout(*f.Blackout)
			}
		}
		if f.Latency != nil || f.Jitter != nil {
			if proxy == nil {
				return fmt.Errorf("fault on link %q, but the rig declares no proxy there", f.Link)
			}
			var lat, jit time.Duration
			if f.Latency != nil {
				lat = *f.Latency
			}
			if f.Jitter != nil {
				jit = *f.Jitter
			}
			proxy.SetLatency(lat, jit)
		}
		if f.Bandwidth != nil {
			if proxy == nil {
				return fmt.Errorf("fault on link %q, but the rig declares no proxy there", f.Link)
			}
			proxy.SetBandwidth(*f.Bandwidth)
		}
	}
	return nil
}

// startHerd fires the phase's re-registration storm concurrently with
// the phase load; the returned wait function reports failures.
func (rr *rigRun) startHerd(p *Phase) func() int {
	if len(p.Reregister) == 0 {
		return func() int { return 0 }
	}
	var targets []int
	for _, name := range p.Reregister {
		if name == "all-dead" {
			for _, node := range rr.rig.Stores {
				if node.Dead {
					targets = append(targets, node.Index)
				}
			}
			continue
		}
		targets = append(targets, storeIndex(name))
	}
	rr.engine.opts.logf("phase %s: re-registration herd of %d stores", p.Name, len(targets))
	var wg sync.WaitGroup
	var mu sync.Mutex
	failures := 0
	for _, idx := range targets {
		wg.Add(1)
		go func(idx int) {
			defer wg.Done()
			if err := rr.rig.ReviveStore(context.Background(), idx); err != nil {
				mu.Lock()
				failures++
				mu.Unlock()
				return
			}
			rr.dropStoreCli(idx)
		}(idx)
	}
	return func() int {
		wg.Wait()
		return failures
	}
}

// resolveRate turns a phase rate into requests/sec.
func (e *engine) resolveRate(r Rate) (float64, error) {
	if r.PerSec > 0 {
		return r.PerSec, nil
	}
	if e.capacity <= 0 {
		return 0, errors.New("factor rate needs a calibration phase earlier in the run")
	}
	return r.Factor * e.capacity, nil
}

// resolveBudget turns a phase budget into a deadline (0 = none). The
// factor form is the E19 derivation: factor × service p50, clamped to
// [100ms, 1s].
func (e *engine) resolveBudget(b Budget) (time.Duration, error) {
	if b.IsZero() {
		return 0, nil
	}
	if b.Duration > 0 {
		return b.Duration, nil
	}
	if e.serviceP50 <= 0 {
		return 0, errors.New("factor budget needs a calibration phase earlier in the run")
	}
	d := time.Duration(b.Factor * float64(e.serviceP50))
	if d < 100*time.Millisecond {
		d = 100 * time.Millisecond
	}
	if d > time.Second {
		d = time.Second
	}
	return d, nil
}

// phaseOutcome accumulates classified results.
type phaseOutcome struct {
	mu       sync.Mutex
	h        *metrics.Histogram
	pr       *PhaseReport
	firstErr error
}

// classify applies the E19 outcome taxonomy: in-budget completion,
// late completion (wasted work), explicit shed, budget expiry (local or
// propagated), or error.
func (o *phaseOutcome) classify(err error, elapsed, budget time.Duration) {
	var ov *wire.OverloadedError
	o.mu.Lock()
	defer o.mu.Unlock()
	switch {
	case err == nil && (budget <= 0 || elapsed <= budget):
		o.pr.InBudget++
		o.h.Record(elapsed)
	case err == nil:
		o.pr.Expired++
	case errors.As(err, &ov):
		o.pr.Shed++
	case errors.Is(err, context.DeadlineExceeded):
		o.pr.Expired++
	case isRemoteExpiry(err):
		o.pr.Expired++
	default:
		o.pr.Errors++
		if o.firstErr == nil {
			o.firstErr = err
		}
	}
}

// isRemoteExpiry reports a remote refusal caused by the propagated
// budget expiring on a downstream hop.
func isRemoteExpiry(err error) bool {
	var re *wire.RemoteError
	return errors.As(err, &re) && strings.Contains(re.Msg, "deadline exceeded")
}

// runPhase dispatches on the phase kind.
func (rr *rigRun) runPhase(p *Phase, phaseIdx int) (*PhaseReport, error) {
	fast := rr.engine.opts.Fast
	before := rr.rig.MDM.Pipeline().Snapshot()
	resBefore := sampleResources()
	var pr *PhaseReport
	var err error
	switch {
	case p.Calibrate > 0:
		pr, err = rr.runCalibrate(p, fast)
	case p.Rounds > 0:
		pr, err = rr.runClosed(p, phaseIdx, fast)
	default:
		pr, err = rr.runOpen(p, phaseIdx, fast)
	}
	if err != nil {
		return nil, err
	}
	after := rr.rig.MDM.Pipeline().Snapshot()
	flights := after.Flights - before.Flights
	hits := after.CoalesceHits - before.CoalesceHits
	if flights+hits > 0 {
		pr.CoalesceHitRate = float64(hits) / float64(flights+hits)
	}
	pr.FanOutCalls = after.FanOutCalls - before.FanOutCalls
	pr.Resources = phaseDelta(resBefore, sampleResources())
	return pr, nil
}

// chainOnce issues one chaining resolve — the calibration unit. Sharded
// rigs route it by owner through the shard-aware client; everything else
// goes over the raw wire connection.
func (rr *rigRun) chainOnce(ctx context.Context, conn *wire.Client, user string) error {
	req := &wire.ResolveRequest{
		Path:    fmt.Sprintf("/user[@id='%s']/address-book", user),
		Context: policy.Context{Requester: user},
		Verb:    token.VerbFetch,
		Pattern: wire.PatternChaining,
	}
	var resp wire.ResolveResponse
	if len(rr.rig.Shards) > 0 {
		sc, err := rr.shardCli(0)
		if err != nil {
			return err
		}
		return sc.Call(ctx, user, wire.TypeResolve, req, &resp)
	}
	return conn.Call(ctx, wire.TypeResolve, req, &resp)
}

// runCalibrate measures the unloaded sequential service p50. The run's
// first calibration fixes the service time and capacity every factor
// rate/budget resolves against; later calibrations only warm their rig
// (admission windows, connection pools).
func (rr *rigRun) runCalibrate(p *Phase, fast bool) (*PhaseReport, error) {
	iters := p.Calibrate
	if fast && iters > 5 {
		iters = 5
	}
	conn, err := rr.wireConn(0)
	if err != nil {
		return nil, err
	}
	pr := &PhaseReport{Name: p.Name, Rig: p.Rig, Kind: "calibrate", Sent: iters}
	var samples []time.Duration
	start := time.Now()
	for i := 0; i < iters; i++ {
		t0 := time.Now()
		if err := rr.chainOnce(context.Background(), conn, rr.rig.Users[i%len(rr.rig.Users)]); err != nil {
			return nil, fmt.Errorf("calibrate: %w", err)
		}
		samples = append(samples, time.Since(t0))
	}
	elapsed := time.Since(start)
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	p50 := samples[len(samples)/2]
	e := rr.engine
	if e.serviceP50 == 0 {
		e.serviceP50 = p50
		e.capacity = 1 / p50.Seconds()
		e.report.ServiceP50Micros = p50.Microseconds()
		e.opts.logf("calibrated: service p50 %s, capacity %.1f/s", p50, e.capacity)
	}
	pr.InBudget = iters
	pr.P50Micros = p50.Microseconds()
	pr.P95Micros = samples[len(samples)*95/100].Microseconds()
	pr.P99Micros = samples[len(samples)*99/100].Microseconds()
	pr.ThroughputPerSec = float64(iters) / elapsed.Seconds()
	pr.GoodputPerSec = pr.ThroughputPerSec
	pr.DurationMillis = elapsed.Milliseconds()
	return pr, nil
}

// execCore executes one scheduled request on a closed-loop client.
// Returns how many individual requests it counted (batch resolves count
// each path).
func (rr *rigRun) execCore(ctx context.Context, cli *core.Client, req Request, phaseIdx, reqIdx int, o *phaseOutcome, budget time.Duration) int {
	rig := rr.rig
	switch req.Verb {
	case VerbRegister:
		return rr.execRegister(ctx, req, phaseIdx, reqIdx, 0, o, budget)
	case VerbResolve:
		if req.Batch {
			t0 := time.Now()
			results, err := cli.GetBatch(ctx, rig.Paths)
			if err != nil {
				o.classify(err, time.Since(t0), budget)
				return 1
			}
			per := time.Since(t0) / time.Duration(len(rig.Paths))
			for _, res := range results {
				o.classify(res.Err, per, budget)
			}
			return len(results)
		}
		cli.Identity = req.User
		path := rr.pathFor(req, reqIdx)
		t0 := time.Now()
		var err error
		if req.Pattern == "referral" {
			_, err = cli.Get(ctx, path)
		} else {
			_, err = cli.GetVia(ctx, path, wire.QueryPattern(req.Pattern))
		}
		o.classify(err, time.Since(t0), budget)
		return 1
	case VerbReachMe:
		svc := &reachme.Service{Profile: reachme.GetterFunc(func(ctx context.Context, path string) (*xmltree.Node, error) {
			return cli.GetAs(ctx, path, probeContext(req.User))
		})}
		t0 := time.Now()
		_, err := svc.Decide(ctx, req.User, reachAt)
		o.classify(err, time.Since(t0), budget)
		return 1
	default:
		return rr.execStore(ctx, req, reqIdx, o, budget)
	}
}

// execRegister issues one fresh coverage registration through the
// failover client. A nil error means the directory durably holds it (at
// quorum, on a replicated rig) — the teardown audit demands every acked
// one back from whoever leads after the run's faults.
func (rr *rigRun) execRegister(ctx context.Context, req Request, phaseIdx, reqIdx, connIdx int, o *phaseOutcome, budget time.Duration) int {
	mc, err := rr.mirrorCli(connIdx)
	if err != nil {
		o.classify(err, 0, budget)
		return 1
	}
	node := rr.rig.Stores[rr.storeFor(req.User, reqIdx)]
	reg := wire.RegisterRequest{
		Store:   node.Engine.ID(),
		Address: node.Addr,
		Path:    fmt.Sprintf("/user[@id='%s']/scratch-p%d-%d", req.User, phaseIdx, reqIdx),
	}
	t0 := time.Now()
	err = mc.Call(ctx, wire.TypeRegister, &reg, nil)
	if err == nil {
		rr.rig.RecordAcked(reg)
	}
	o.classify(err, time.Since(t0), budget)
	return 1
}

// mirrorIdx maps a request index onto the pre-dialed mirror-client pool.
func (rr *rigRun) mirrorIdx(i int) int {
	rr.mu.Lock()
	n := len(rr.mirrors)
	rr.mu.Unlock()
	if n == 0 {
		return 0
	}
	return i % n
}

// pathFor picks the resolve target of a non-batch request: the user's
// address book, or — split layout — one of the registered split paths.
func (rr *rigRun) pathFor(req Request, reqIdx int) string {
	if rr.rig.Spec.Layout == LayoutSplit && req.Pattern == "referral" {
		return rr.rig.Paths[reqIdx%len(rr.rig.Paths)]
	}
	return fmt.Sprintf("/user[@id='%s']/address-book", req.User)
}

// execStore executes a direct-store verb (fetch, sync).
func (rr *rigRun) execStore(ctx context.Context, req Request, reqIdx int, o *phaseOutcome, budget time.Duration) int {
	rig := rr.rig
	idx := rr.storeFor(req.User, reqIdx)
	sc, err := rr.storeCli(idx)
	if err != nil {
		o.classify(err, 0, budget)
		return 1
	}
	storeID := rig.Stores[idx].Engine.ID()
	switch req.Verb {
	case VerbFetch:
		path := fmt.Sprintf("/user[@id='%s']/address-book", req.User)
		q := rig.Signer.Sign(storeID, req.User, xpath.MustParse(path), token.VerbFetch, req.User, time.Minute)
		t0 := time.Now()
		_, _, err := sc.Fetch(ctx, q)
		o.classify(err, time.Since(t0), budget)
	case VerbSync:
		// A fast sync of the user's calendar: the device replaces one
		// probe event each time, so the component stays bounded across
		// the phase.
		path := fmt.Sprintf("/user[@id='%s']/calendar", req.User)
		q := rig.Signer.Sign(storeID, req.User, xpath.MustParse(path), token.VerbUpdate, req.User, time.Minute)
		dev := syncml.NewDevice(xmltree.DefaultKeys)
		dev.Edit(func(local *xmltree.Node) *xmltree.Node {
			if local == nil {
				local = xmltree.New("calendar")
			}
			local.Add(xmltree.New("event").
				SetAttr("id", "wsync").SetAttr("day", "Mon").
				SetAttr("start", "07:00").SetAttr("end", "07:30"))
			return local
		})
		t0 := time.Now()
		_, err := dev.Sync(ctx, sc.SyncTransport(q), syncml.Merge)
		o.classify(err, time.Since(t0), budget)
	}
	return 1
}

// runClosed drives a closed-loop phase: Clients goroutines, each on a
// fresh connection, each drawing Rounds requests from its own
// deterministic stream.
func (rr *rigRun) runClosed(p *Phase, phaseIdx int, fast bool) (*PhaseReport, error) {
	clients, rounds := p.Clients, p.Rounds
	if fast {
		if clients > 8 {
			clients = 8
		}
		if rounds > 2 {
			rounds = 2
		}
	}
	budget, err := rr.engine.resolveBudget(p.Budget)
	if err != nil {
		return nil, err
	}
	pr := &PhaseReport{Name: p.Name, Rig: p.Rig, Kind: "closed"}
	o := &phaseOutcome{h: metrics.NewHistogram(), pr: pr}
	var wg sync.WaitGroup
	var dialErr error
	var dialMu sync.Mutex
	sent := make([]int, clients)
	start := time.Now()
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			cli, err := core.DialMDM(rr.rig.MDMAddr, rr.rig.Users[0], "self")
			if err != nil {
				dialMu.Lock()
				if dialErr == nil {
					dialErr = err
				}
				dialMu.Unlock()
				return
			}
			defer cli.Close()
			if rr.rig.Spec.Baseline {
				cli.DisableCoalescing = true
			}
			if p.Trace != nil && !*p.Trace {
				cli.Tracer = nil
			}
			d := newDrawer(rr.engine.seed, phaseIdx, c, p, rr.rig.Users)
			for i := 0; i < rounds; i++ {
				req := d.next()
				if fn := rr.engine.opts.OnRequest; fn != nil {
					fn(p.Name, c, req)
				}
				ctx := context.Background()
				cancel := func() {}
				if budget > 0 {
					ctx, cancel = context.WithTimeout(ctx, budget)
				}
				sent[c] += rr.execCore(ctx, cli, req, phaseIdx, i, o, budget)
				cancel()
			}
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(start)
	if dialErr != nil {
		return nil, dialErr
	}
	for _, n := range sent {
		pr.Sent += n
	}
	fillPercentiles(pr, o.h)
	pr.ThroughputPerSec = float64(pr.InBudget) / elapsed.Seconds()
	pr.GoodputPerSec = pr.ThroughputPerSec
	pr.DurationMillis = elapsed.Milliseconds()
	return pr, nil
}

// runOpen drives an open-loop phase: Rate requests/sec for Duration,
// drawn sequentially from the phase's single deterministic stream and
// spread over Conns connections, regardless of completions.
func (rr *rigRun) runOpen(p *Phase, phaseIdx int, fast bool) (*PhaseReport, error) {
	rate, err := rr.engine.resolveRate(p.Rate)
	if err != nil {
		return nil, err
	}
	budget, err := rr.engine.resolveBudget(p.Budget)
	if err != nil {
		return nil, err
	}
	if budget > 0 && rr.engine.report.BudgetMillis == 0 {
		rr.engine.report.BudgetMillis = budget.Milliseconds()
	}
	stamped := p.Stamped == nil || *p.Stamped
	duration := p.Duration
	if fast && duration > 500*time.Millisecond {
		duration = 500 * time.Millisecond
	}
	conns := p.Conns
	if conns <= 0 {
		conns = 1
	}
	if fast && conns > 8 {
		conns = 8
	}
	n := int(rate * duration.Seconds())
	if n < 1 {
		n = 1
	}
	interval := duration / time.Duration(n)

	pr := &PhaseReport{Name: p.Name, Rig: p.Rig, Kind: "open", Sent: n}
	o := &phaseOutcome{h: metrics.NewHistogram(), pr: pr}
	d := newDrawer(rr.engine.seed, phaseIdx, -1, p, rr.rig.Users)

	// Pre-dial so dial latency does not eat into the send schedule.
	for c := 0; c < conns; c++ {
		if _, err := rr.wireConn(c); err != nil {
			return nil, err
		}
	}
	needCore, needMirror, needShard := false, false, false
	replicated := len(rr.rig.Members) > 0
	sharded := len(rr.rig.Shards) > 0
	for _, m := range p.Mix {
		switch m.Verb {
		case VerbReachMe:
			needCore = true
		case VerbRegister:
			needMirror = true
		case VerbResolve:
			if replicated {
				needMirror = true
			}
			if sharded {
				needShard = true
			}
		}
	}
	if needCore {
		for c := 0; c < conns; c++ {
			if _, err := rr.coreCli(c); err != nil {
				return nil, err
			}
		}
	}
	if needMirror {
		for c := 0; c < conns; c++ {
			if _, err := rr.mirrorCli(c); err != nil {
				return nil, err
			}
		}
	}
	if needShard {
		for c := 0; c < conns; c++ {
			if _, err := rr.shardCli(c); err != nil {
				return nil, err
			}
		}
	}

	// A kill-leader-after phase assassinates the leader mid-storm and
	// times how long the survivors take to elect a replacement.
	var killWG sync.WaitGroup
	if p.KillLeaderAfter > 0 {
		killAfter := p.KillLeaderAfter
		if fast && killAfter >= duration {
			killAfter = duration / 2
		}
		killWG.Add(1)
		go func() {
			defer killWG.Done()
			time.Sleep(killAfter)
			idx := rr.rig.KillLeader()
			if idx < 0 {
				rr.engine.opts.logf("phase %s: no leader to kill", p.Name)
				return
			}
			rr.engine.opts.logf("phase %s: killed leader member %d", p.Name, idx)
			t0 := time.Now()
			if rr.rig.WaitLeader(liveness) >= 0 {
				ms := time.Since(t0).Milliseconds()
				if ms <= 0 {
					ms = 1
				}
				pr.FailoverMillis = ms
				rr.engine.opts.logf("phase %s: new leader elected after %dms", p.Name, ms)
			}
		}()
	}

	// A rebalance-after phase expands the shard map onto the spares
	// mid-storm: the resolve stream must ride through the handoff and
	// drain windows without a single failed request.
	if p.RebalanceAfter > 0 {
		after := p.RebalanceAfter
		if fast && after >= duration {
			after = duration / 2
		}
		killWG.Add(1)
		go func() {
			defer killWG.Done()
			time.Sleep(after)
			t0 := time.Now()
			moved, err := rr.rig.Rebalance(context.Background())
			if err != nil {
				rr.engine.opts.logf("phase %s: rebalance failed: %v", p.Name, err)
				return
			}
			ms := time.Since(t0).Milliseconds()
			if ms <= 0 {
				ms = 1
			}
			pr.RebalanceMillis = ms
			pr.MovedOwners = moved
			rr.engine.opts.logf("phase %s: rebalanced onto %d shards in %dms (%d owners moved)",
				p.Name, len(rr.rig.Shards), ms, moved)
		}()
	}

	// A kill-shard-after phase hard-kills one shard mid-storm and times
	// how long gossip detection plus epoch-fenced spare promotion take to
	// put its keyspace back in service.
	if p.KillShardAfter > 0 {
		after := p.KillShardAfter
		if fast && after >= duration {
			after = duration / 2
		}
		killWG.Add(1)
		go func() {
			defer killWG.Done()
			time.Sleep(after)
			since := rr.rig.CurrentEpoch()
			if !rr.rig.KillShard(p.KillShard) {
				rr.engine.opts.logf("phase %s: shard %s not alive to kill", p.Name, p.KillShard)
				return
			}
			rr.engine.opts.logf("phase %s: killed shard %s", p.Name, p.KillShard)
			t0 := time.Now()
			ev, ok := rr.rig.WaitRepair(since, liveness)
			if !ok {
				rr.engine.opts.logf("phase %s: no auto-repair within %s", p.Name, liveness)
				return
			}
			ms := time.Since(t0).Milliseconds()
			if ms <= 0 {
				ms = 1
			}
			pr.RepairMillis = ms
			pr.RepairEpoch = ev.Epoch
			pr.PromotedShards = ev.Promoted
			rr.rig.refreshShardView()
			rr.engine.opts.logf("phase %s: auto-repair to epoch %d in %dms (dead %v, promoted %v)",
				p.Name, ev.Epoch, ms, ev.Dead, ev.Promoted)
		}()
	}

	// A partition-after phase severs one shard's replies mid-storm: the
	// shard still hears the constellation but cannot be heard, so its
	// peers must confirm it dead, promote a spare under a higher epoch,
	// and the partitioned minority must fence itself rather than keep
	// serving its evicted slice. The partition lifts only after the repair
	// completes (heal delay measured from when it was imposed).
	if p.PartitionAfter > 0 {
		after := p.PartitionAfter
		if fast && after >= duration {
			after = duration / 2
		}
		killWG.Add(1)
		go func() {
			defer killWG.Done()
			time.Sleep(after)
			since := rr.rig.CurrentEpoch()
			if !rr.rig.PartitionShard(p.PartitionShard, true) {
				rr.engine.opts.logf("phase %s: shard %s has no proxy to partition", p.Name, p.PartitionShard)
				return
			}
			rr.engine.opts.logf("phase %s: one-way partition on shard %s", p.Name, p.PartitionShard)
			t0 := time.Now()
			ev, ok := rr.rig.WaitRepair(since, liveness)
			if ok {
				ms := time.Since(t0).Milliseconds()
				if ms <= 0 {
					ms = 1
				}
				pr.RepairMillis = ms
				pr.RepairEpoch = ev.Epoch
				pr.PromotedShards = ev.Promoted
				rr.rig.refreshShardView()
				rr.engine.opts.logf("phase %s: auto-repair to epoch %d in %dms (dead %v, promoted %v)",
					p.Name, ev.Epoch, ms, ev.Dead, ev.Promoted)
			} else {
				rr.engine.opts.logf("phase %s: no auto-repair within %s", p.Name, liveness)
			}
			if p.PartitionHealAfter > 0 {
				if remain := p.PartitionHealAfter - time.Since(t0); remain > 0 {
					time.Sleep(remain)
				}
				rr.rig.PartitionShard(p.PartitionShard, false)
				rr.engine.opts.logf("phase %s: healed partition on shard %s", p.Name, p.PartitionShard)
			}
		}()
	}

	var wg sync.WaitGroup
	start := time.Now()
	for i := 0; i < n; i++ {
		if d := time.Until(start.Add(time.Duration(i) * interval)); d > 0 {
			time.Sleep(d)
		}
		req := d.next()
		if fn := rr.engine.opts.OnRequest; fn != nil {
			fn(p.Name, -1, req)
		}
		wg.Add(1)
		go func(i int, req Request) {
			defer wg.Done()
			ctx := context.Background()
			var cancel context.CancelFunc
			if stamped && budget > 0 {
				ctx, cancel = context.WithTimeout(ctx, budget)
			} else {
				ctx, cancel = context.WithTimeout(ctx, liveness)
			}
			defer cancel()
			rr.execOpen(ctx, req, phaseIdx, i, o, budget)
		}(i, req)
	}
	wg.Wait()
	killWG.Wait()
	elapsed := time.Since(start)
	if pr.InBudget+pr.Shed+pr.Expired == 0 && o.firstErr != nil {
		return nil, fmt.Errorf("open-loop phase produced only errors: %w", o.firstErr)
	}
	fillPercentiles(pr, o.h)
	pr.ThroughputPerSec = float64(pr.InBudget) / elapsed.Seconds()
	pr.GoodputPerSec = float64(pr.InBudget) / duration.Seconds()
	pr.DurationMillis = elapsed.Milliseconds()
	return pr, nil
}

// execOpen executes one open-loop request on connection i mod conns.
func (rr *rigRun) execOpen(ctx context.Context, req Request, phaseIdx, i int, o *phaseOutcome, budget time.Duration) {
	switch req.Verb {
	case VerbRegister:
		rr.execRegister(ctx, req, phaseIdx, i, rr.mirrorIdx(i), o, budget)
	case VerbResolve:
		if len(rr.rig.Shards) > 0 {
			// Sharded rigs resolve through the shard-aware client so each
			// request lands on its owner's home shard — and re-routes via
			// wrong-shard redirects while a rebalance moves the keyspace.
			sc, err := rr.shardCli(rr.shardIdx(i))
			if err != nil {
				o.classify(err, 0, budget)
				return
			}
			var resp wire.ResolveResponse
			t0 := time.Now()
			err = sc.Call(ctx, req.User, wire.TypeResolve, &wire.ResolveRequest{
				Path:    rr.pathFor(req, i),
				Context: policy.Context{Requester: req.User},
				Verb:    token.VerbFetch,
				Pattern: wire.QueryPattern(req.Pattern),
			}, &resp)
			o.classify(err, time.Since(t0), budget)
			return
		}
		if len(rr.rig.Members) > 0 {
			// Replicated rigs resolve through the failover client so a
			// mid-phase leader kill re-homes instead of erroring.
			mc, err := rr.mirrorCli(rr.mirrorIdx(i))
			if err != nil {
				o.classify(err, 0, budget)
				return
			}
			var resp wire.ResolveResponse
			t0 := time.Now()
			err = mc.Call(ctx, wire.TypeResolve, &wire.ResolveRequest{
				Path:    rr.pathFor(req, i),
				Context: policy.Context{Requester: req.User},
				Verb:    token.VerbFetch,
				Pattern: wire.QueryPattern(req.Pattern),
			}, &resp)
			o.classify(err, time.Since(t0), budget)
			return
		}
		conn, err := rr.wireConn(i % len(rr.wireConns))
		if err != nil {
			o.classify(err, 0, budget)
			return
		}
		var resp wire.ResolveResponse
		t0 := time.Now()
		err = conn.Call(ctx, wire.TypeResolve, &wire.ResolveRequest{
			Path:    rr.pathFor(req, i),
			Context: policy.Context{Requester: req.User},
			Verb:    token.VerbFetch,
			Pattern: wire.QueryPattern(req.Pattern),
		}, &resp)
		o.classify(err, time.Since(t0), budget)
	case VerbReachMe:
		cli, err := rr.coreCli(i % len(rr.coreClis))
		if err != nil {
			o.classify(err, 0, budget)
			return
		}
		svc := &reachme.Service{Profile: reachme.GetterFunc(func(ctx context.Context, path string) (*xmltree.Node, error) {
			return cli.GetAs(ctx, path, probeContext(req.User))
		})}
		t0 := time.Now()
		_, err = svc.Decide(ctx, req.User, reachAt)
		o.classify(err, time.Since(t0), budget)
	default:
		rr.execStore(ctx, req, i, o, budget)
	}
}

// fillPercentiles copies the in-budget latency distribution into the
// report row.
func fillPercentiles(pr *PhaseReport, h *metrics.Histogram) {
	pr.P50Micros = h.Percentile(50).Microseconds()
	pr.P95Micros = h.Percentile(95).Microseconds()
	pr.P99Micros = h.Percentile(99).Microseconds()
}
