package scenario

import (
	"strings"
	"testing"
	"time"
)

// healthyReport is the fixture every assertion kind is judged against: a
// fast steady phase, a degraded phase that shed, and clean registration
// audits.
func healthyReport() *Report {
	return &Report{
		Phases: []PhaseReport{
			{
				Name: "steady", Rig: "r", Kind: "open",
				Sent: 100, InBudget: 98, Errors: 0,
				P95Micros:        int64(2 * time.Millisecond / time.Microsecond),
				ThroughputPerSec: 50, GoodputPerSec: 49,
			},
			{
				Name: "wave", Rig: "r", Kind: "open",
				Sent: 200, InBudget: 80, Shed: 90, Expired: 20, Errors: 10,
				P95Micros:        int64(40 * time.Millisecond / time.Microsecond),
				ThroughputPerSec: 40, GoodputPerSec: 40,
			},
		},
		Registrations: []RegistrationAudit{{Rig: "r", Expected: 16, Registered: 16}},
	}
}

// TestAssertions drives every assertion kind through a passing and a
// failing evaluation; the failure detail must be an actionable sentence
// naming the measured value, not a bare boolean.
func TestAssertions(t *testing.T) {
	cases := []struct {
		name string
		a    Assertion
		// mutate breaks the healthy report for the failing half.
		mutate   func(*Report)
		failWant string // substring of the failure detail
	}{
		{
			name:     "p95-ceiling",
			a:        Assertion{Kind: AssertP95Ceiling, Phase: "steady", Max: 5 * time.Millisecond},
			mutate:   func(r *Report) { r.Phase("steady").P95Micros = int64(9 * time.Millisecond / time.Microsecond) },
			failWant: "exceeds ceiling",
		},
		{
			name:     "goodput-floor",
			a:        Assertion{Kind: AssertGoodputFloor, Phase: "steady", Min: 40},
			mutate:   func(r *Report) { r.Phase("steady").GoodputPerSec = 3 },
			failWant: "below floor",
		},
		{
			name:     "shed-floor",
			a:        Assertion{Kind: AssertShedFloor, Phase: "wave", Min: 1},
			mutate:   func(r *Report) { r.Phase("wave").Shed = 0 },
			failWant: "admission control did not engage",
		},
		{
			name:     "error-ceiling",
			a:        Assertion{Kind: AssertErrorCeiling, Phase: "steady", MaxCount: 0},
			mutate:   func(r *Report) { r.Phase("steady").Errors = 3 },
			failWant: "3 errors, ceiling 0",
		},
		{
			name:     "throughput-ratio-floor",
			a:        Assertion{Kind: AssertThroughputRatio, Num: "steady", Den: "wave", Min: 1.2},
			mutate:   func(r *Report) { r.Phase("steady").ThroughputPerSec = 10 },
			failWant: "below floor",
		},
		{
			name:     "retention-floor",
			a:        Assertion{Kind: AssertRetentionFloor, Num: "wave", Den: "steady", Min: 0.5},
			mutate:   func(r *Report) { r.Phase("wave").GoodputPerSec = 1 },
			failWant: "below floor",
		},
		{
			name:     "retention-ceiling",
			a:        Assertion{Kind: AssertRetentionCeiling, Num: "wave", Den: "steady", MaxRatio: 0.9},
			mutate:   func(r *Report) { r.Phase("wave").GoodputPerSec = 49 },
			failWant: "no longer collapses",
		},
		{
			name:     "zero-lost-registrations",
			a:        Assertion{Kind: AssertZeroLostCoverage},
			mutate:   func(r *Report) { r.Registrations[0].Registered = 15 },
			failWant: "coverage was lost",
		},
		{
			name:     "zero-lost-registrations probe failure",
			a:        Assertion{Kind: AssertZeroLostCoverage},
			mutate:   func(r *Report) { r.Registrations[0].ProbeFailures = 2 },
			failWant: "probes failed",
		},
		{
			name:     "missing phase",
			a:        Assertion{Kind: AssertP95Ceiling, Phase: "steady", Max: time.Second},
			mutate:   func(r *Report) { r.Phases = r.Phases[1:] },
			failWant: "not in report",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			sc := &Scenario{Asserts: []Assertion{tc.a}}

			rep := healthyReport()
			Evaluate(sc, rep)
			if len(rep.Assertions) != 1 {
				t.Fatalf("got %d results, want 1", len(rep.Assertions))
			}
			if res := rep.Assertions[0]; !res.Pass || !rep.Pass {
				t.Fatalf("healthy report failed: %s", res.Detail)
			}

			broken := healthyReport()
			tc.mutate(broken)
			Evaluate(sc, broken)
			res := broken.Assertions[0]
			if res.Pass || broken.Pass {
				t.Fatalf("broken report passed: %s", res.Detail)
			}
			if !strings.Contains(res.Detail, tc.failWant) {
				t.Errorf("failure detail %q does not mention %q", res.Detail, tc.failWant)
			}
			if res.Kind != tc.a.Kind {
				t.Errorf("result kind %q, want %q", res.Kind, tc.a.Kind)
			}
		})
	}
}

// TestEvaluateMixedResults checks that one failing assertion fails the
// run while the passing ones keep their own verdicts.
func TestEvaluateMixedResults(t *testing.T) {
	sc := &Scenario{Asserts: []Assertion{
		{Kind: AssertShedFloor, Phase: "wave", Min: 1},
		{Kind: AssertGoodputFloor, Phase: "steady", Min: 1000},
	}}
	rep := healthyReport()
	Evaluate(sc, rep)
	if rep.Pass {
		t.Error("report passed with a failing assertion")
	}
	if !rep.Assertions[0].Pass || rep.Assertions[1].Pass {
		t.Errorf("verdicts wrong: %+v", rep.Assertions)
	}
}

// TestEvaluateUnknownKind: an unrecognized kind must fail loudly, never
// silently pass.
func TestEvaluateUnknownKind(t *testing.T) {
	rep := healthyReport()
	Evaluate(&Scenario{Asserts: []Assertion{{Kind: "vibes"}}}, rep)
	if rep.Pass || rep.Assertions[0].Pass {
		t.Error("unknown assertion kind passed")
	}
	if !strings.Contains(rep.Assertions[0].Detail, "unknown assertion kind") {
		t.Errorf("detail %q does not name the problem", rep.Assertions[0].Detail)
	}
}
