package scenario

import (
	"bytes"
	"runtime"
	"runtime/pprof"
	"testing"
	"time"
)

// waitNoExtraGoroutines polls until the goroutine count returns to the
// baseline (plus a small slack for runtime helpers), failing with a full
// goroutine dump if anything the rig started outlives Close.
func waitNoExtraGoroutines(t *testing.T, baseline int) {
	t.Helper()
	const slack = 2
	deadline := time.Now().Add(5 * time.Second)
	for {
		if runtime.NumGoroutine() <= baseline+slack {
			return
		}
		if time.Now().After(deadline) {
			var buf bytes.Buffer
			pprof.Lookup("goroutine").WriteTo(&buf, 1)
			t.Fatalf("goroutines leaked: %d running, baseline %d\n%s",
				runtime.NumGoroutine(), baseline, buf.String())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestRigBuild is the table-driven topology check: each spec must come
// up with the declared shape, hold full coverage at birth, and tear down
// without leaking a goroutine.
func TestRigBuild(t *testing.T) {
	if testing.Short() {
		t.Skip("builds live rigs")
	}
	cases := []struct {
		name string
		spec RigSpec
		// wantUsers/wantPaths pin the seeded populations.
		wantUsers, wantPaths int
		wantProxies          bool
		wantRegistrars       bool
	}{
		{
			name:      "split",
			spec:      RigSpec{Name: "r", Layout: LayoutSplit, Stores: 4, SizeBytes: 512},
			wantUsers: 1, wantPaths: 4,
		},
		{
			name:      "sharded",
			spec:      RigSpec{Name: "r", Layout: LayoutSharded, Stores: 3, Users: 7, SizeBytes: 512},
			wantUsers: 7,
		},
		{
			name: "sharded full profile",
			spec: RigSpec{Name: "r", Layout: LayoutSharded, Stores: 2, Users: 4,
				SizeBytes: 512, Profile: ProfileFull},
			wantUsers: 4,
		},
		{
			name: "proxied links",
			spec: RigSpec{Name: "r", Layout: LayoutSplit, Stores: 2, SizeBytes: 512,
				Links: LinkSet{
					MDM:    &LinkSpec{Latency: time.Millisecond},
					Stores: &LinkSpec{Bandwidth: 1 << 20},
				}},
			wantUsers: 1, wantPaths: 2, wantProxies: true,
		},
		{
			name: "heartbeats",
			spec: RigSpec{Name: "r", Layout: LayoutSharded, Stores: 2, Users: 4,
				SizeBytes: 512, LeaseTTL: 200 * time.Millisecond,
				LeaseGrace: 200 * time.Millisecond, Heartbeats: true},
			wantUsers: 4, wantRegistrars: true,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			baseline := runtime.NumGoroutine()
			rig, err := Build(tc.spec, 7, 0)
			if err != nil {
				t.Fatal(err)
			}
			if got := len(rig.Stores); got != tc.spec.Stores {
				t.Errorf("built %d stores, want %d", got, tc.spec.Stores)
			}
			if got := len(rig.Users); got != tc.wantUsers {
				t.Errorf("seeded %d users, want %d", got, tc.wantUsers)
			}
			if tc.wantPaths > 0 {
				if got := len(rig.Paths); got != tc.wantPaths {
					t.Errorf("registered %d split paths, want %d", got, tc.wantPaths)
				}
			}
			if rig.MDMAddr == "" {
				t.Error("rig has no MDM address")
			}
			// The MDM's registry must hold the full declared coverage at
			// birth — the invariant the end-of-run audit re-checks.
			if got, want := rig.MDM.Registry.Len(), rig.ExpectedRegistrations(); got != want {
				t.Errorf("registry holds %d registrations, expected coverage is %d", got, want)
			}
			if tc.wantProxies {
				if rig.MDMProxy == nil || rig.Link("mdm") == nil {
					t.Error("mdm link spec declared but no proxy built")
				}
				for i, node := range rig.Stores {
					if node.Proxy == nil {
						t.Errorf("store %d: link spec declared but no proxy built", i)
					}
				}
			} else if rig.MDMProxy != nil {
				t.Error("no mdm link declared but a proxy was built")
			}
			for i, node := range rig.Stores {
				if tc.wantRegistrars && node.Registrar == nil {
					t.Errorf("store %d: heartbeats declared but no registrar running", i)
				}
				if !tc.wantRegistrars && node.Registrar != nil {
					t.Errorf("store %d: registrar running without heartbeats", i)
				}
			}
			rig.Close()
			waitNoExtraGoroutines(t, baseline)
		})
	}
}

// TestRigCloseIdempotent guards the teardown path the engine leans on:
// closing twice (phase failure cleanup then deferred close) must not
// panic.
func TestRigCloseIdempotent(t *testing.T) {
	if testing.Short() {
		t.Skip("builds live rigs")
	}
	rig, err := Build(RigSpec{Name: "r", Layout: LayoutSplit, Stores: 2, SizeBytes: 512}, 7, 0)
	if err != nil {
		t.Fatal(err)
	}
	rig.Close()
	rig.Close()
}

// TestConstellationBuild checks the mirrored-MDM assembly: n joined
// mirrors that converge registrations, torn down without leaks.
func TestConstellationBuild(t *testing.T) {
	if testing.Short() {
		t.Skip("builds live constellations")
	}
	baseline := runtime.NumGoroutine()
	c, err := BuildConstellation(3)
	if err != nil {
		t.Fatal(err)
	}
	if len(c.MDMs) != 3 || len(c.Mirrors) != 3 || len(c.Addrs) != 3 {
		t.Errorf("constellation shape: %d MDMs, %d mirrors, %d addrs; want 3 of each",
			len(c.MDMs), len(c.Mirrors), len(c.Addrs))
	}
	c.Close()
	waitNoExtraGoroutines(t, baseline)
}
