// Package scenario is the unified experiment harness the paper's
// conclusion calls for ("the development of testbeds and benchmarks"): a
// declarative scenario engine that builds converged-network topologies
// (MDMs, data stores, fault-injected links), drives mixed workloads
// (resolve/chain/recruit/fetch/sync/reach-me) through phases on a
// timeline, samples host resources per phase, and evaluates assertions
// (p95 ceilings, goodput-retention floors, durability checks) at the end
// of the run.
//
// A scenario is a small YAML-subset file (see decode.go; no external
// dependencies) declaring a topology, a phase list, and assertions. The
// engine subsumes the bespoke rigs the E13–E19 experiments each grew in
// internal/bench: those benchmarks now build their rigs and run their
// phases through this package, so composing a new experiment — an
// overload wave during a store blackout under a thundering-herd
// re-registration, say — is a scenario file, not a new harness.
package scenario

import (
	"fmt"
	"time"
)

// Layouts assign profile data to stores.
const (
	// LayoutSplit is the E16 topology: one user ("u") whose address book
	// is split across every store by item type, so a referral resolve
	// fans out to all stores and a chaining resolve gathers all pieces.
	LayoutSplit = "split"
	// LayoutSharded is the E19/E20 topology: Users distinct owners, each
	// owner's profile held whole by store (i mod Stores).
	LayoutSharded = "sharded"
)

// Profiles pick how much of a user's profile a rig seeds.
const (
	// ProfileBook seeds only the address book (the resolve benchmarks).
	ProfileBook = "book"
	// ProfileFull adds presence, devices, calendar and reach-me
	// preferences, enabling the sync and reach-me workload verbs.
	ProfileFull = "full"
)

// Workload verbs.
const (
	VerbResolve  = "resolve"  // through the MDM (pattern picks the query plan)
	VerbFetch    = "fetch"    // direct store fetch with a signed query
	VerbSync     = "sync"     // SyncML fast sync against the owning store
	VerbReachMe  = "reachme"  // the reach-me decision over the full profile
	VerbRegister = "register" // a fresh coverage registration (directory mutation)
)

// User-selection modes for workload entries.
const (
	UsersHot        = "hot"        // always the first user (cache-hot path)
	UsersRoundRobin = "roundrobin" // request i targets user i mod n
	UsersZipf       = "zipf"       // Zipf(1.2)-skewed draw
	UsersUniform    = "uniform"    // uniform draw
)

// Assertion kinds.
const (
	AssertP95Ceiling       = "p95-ceiling"
	AssertGoodputFloor     = "goodput-floor"
	AssertThroughputRatio  = "throughput-ratio-floor"
	AssertRetentionFloor   = "retention-floor"
	AssertRetentionCeiling = "retention-ceiling"
	AssertShedFloor        = "shed-floor"
	AssertErrorCeiling     = "error-ceiling"
	AssertZeroLostCoverage = "zero-lost-registrations"
	AssertFailoverCeiling  = "failover-ceiling"
	AssertMovedOwnersFloor = "moved-owners-floor"
	AssertRepairCeiling    = "repair-ceiling"
	AssertConvergence      = "convergence"
)

// Scenario is one declarative experiment: a topology, phases on a
// timeline, and end-of-run assertions.
type Scenario struct {
	Name        string
	Description string
	// Seed is the root of every random draw in the run: workload
	// schedules, Zipf populations and fault-proxy RNGs all derive from it
	// (see schedule.go), so two runs of the same scenario with the same
	// seed issue identical request sequences.
	Seed     int64
	Topology Topology
	Phases   []Phase
	Asserts  []Assertion
}

// Topology is the set of rigs a scenario builds. Rigs are built and torn
// down sequentially in declaration order; each rig runs the phases that
// name it, in phase order.
type Topology struct {
	Rigs []RigSpec
}

// RigSpec declares one rig: an MDM fronting a set of stores, with
// fault-injectable links.
type RigSpec struct {
	Name   string
	Layout string // LayoutSplit or LayoutSharded
	// Stores is the store count (the batch width in LayoutSplit).
	Stores int
	// Users is the owner population (LayoutSharded; LayoutSplit has 1).
	Users int
	// SizeBytes sizes each address-book payload.
	SizeBytes int
	// CacheEntries sizes the MDM component cache (0 = off).
	CacheEntries int
	// Baseline configures the pre-pipeline MDM and clients: coalescing
	// off, fan-out 1, client-side coalescing off — the E16 ablation.
	Baseline bool
	// DisableCoalescing turns off only in-flight coalescing (E19 uses it
	// so every resolve is one real fetch over the choke link).
	DisableCoalescing bool
	// RetryAttempts and PerAttempt parameterize the MDM's retry policy;
	// zero keeps the core defaults.
	RetryAttempts int
	PerAttempt    time.Duration
	// MaxConcurrency and QueueDepth enable admission control at the MDM.
	MaxConcurrency int
	QueueDepth     int
	// LeaseTTL/LeaseGrace enable store-liveness leases.
	LeaseTTL   time.Duration
	LeaseGrace time.Duration
	// Heartbeats runs a registrar per store (interval TTL/2) so leases
	// stay renewed until a fault silences the store.
	Heartbeats bool
	// Replicas, when >= 2, makes the rig a quorum-replicated MDM
	// constellation instead of a single MDM: Replicas members with
	// temp-dir journals, one elected leader shipping its log, mutations
	// acked at Quorum (0 = majority). ElectionTTL is the leader lease;
	// failover after a leader kill completes within one TTL.
	Replicas    int
	Quorum      int
	ElectionTTL time.Duration
	// Shards, when >= 2, makes the rig a partitioned directory instead of
	// a single MDM: Shards independent MDM slices behind a consistent-hash
	// ring over the owner keyspace, each wrapped in a routing shard node.
	// Workload resolves ride a shard-aware client that routes by owner and
	// chases wrong-shard redirects. SpareShards builds that many extra
	// shards outside the initial map — the expansion targets a mid-phase
	// rebalance (Phase.RebalanceAfter) grows onto.
	Shards      int
	SpareShards int
	// AutoRepair arms the self-healing constellation on a sharded rig:
	// every shard runs a gossip failure detector (health.Agent) and the
	// acting coordinator repairs a confirmed shard death automatically —
	// promoting spares and bumping the map's repair epoch. GossipInterval
	// and SuspectTimeout tune the detector (zero keeps package defaults).
	AutoRepair     bool
	GossipInterval time.Duration
	SuspectTimeout time.Duration
	// ShardLinks fronts every shard with a fault proxy so phases can
	// partition shards (Phase.PartitionAfter). Gossip, repair traffic and
	// client resolves all ride the proxies.
	ShardLinks *LinkSpec
	// Profile is ProfileBook (default) or ProfileFull.
	Profile string
	// Links declares the fault-injection proxies of the rig.
	Links LinkSet
}

// LinkSet names the injectable links of a rig. A nil spec means a bare
// TCP connection (no proxy).
type LinkSet struct {
	// MDM fronts the MDM for clients.
	MDM *LinkSpec
	// Stores is the default spec for every MDM/client→store link.
	Stores *LinkSpec
	// PerStore overrides the default for named stores ("store-0", …).
	PerStore map[string]*LinkSpec
}

// LinkSpec is the initial fault configuration of one link.
type LinkSpec struct {
	Latency   time.Duration
	Jitter    time.Duration
	Bandwidth int // bytes/sec; 0 = unlimited
}

// Phase is one step on the scenario timeline. Exactly one of Calibrate,
// Rounds (closed loop) or Rate+Duration (open loop) drives it.
type Phase struct {
	Name string
	Rig  string
	// Calibrate, when > 0, makes this a calibration phase: that many
	// sequential chaining resolves measure the unloaded service p50; the
	// first calibration of a run fixes the capacity that "Nx" rates and
	// budgets resolve against (later calibrations only warm their rig).
	Calibrate int
	// Clients is the closed-loop concurrency (goroutines, each on its own
	// connection); Rounds the per-client iteration count.
	Clients int
	Rounds  int
	// Rate and Duration drive an open-loop phase: Rate requests/sec are
	// issued for Duration, spread over Conns connections, regardless of
	// completions.
	Rate     Rate
	Duration time.Duration
	Conns    int
	// Budget is the per-request deadline; zero means none (a liveness
	// bound still applies). Stamped=false measures the budget by wall
	// clock only, emulating a pre-budget client.
	Budget  Budget
	Stamped *bool
	// Trace toggles client-side tracing for the phase; nil keeps the
	// default (on). The tracing-overhead experiment (E17) flips it.
	Trace *bool
	// Faults are applied to links at phase start, in order.
	Faults []FaultSpec
	// Reregister fires a re-registration storm at phase start: every
	// named store (or every dead store, with the single entry "all-dead")
	// replays its whole coverage concurrently — the thundering herd.
	Reregister []string
	// KillLeaderAfter, on a replicated rig's open-loop phase, kills the
	// constellation's leader that long into the phase (mid-storm) and
	// measures how long the surviving members take to elect a
	// replacement; the duration lands in PhaseReport.FailoverMillis.
	KillLeaderAfter time.Duration
	// RebalanceAfter, on a sharded rig's open-loop phase, expands the
	// shard map onto the rig's spare shards that long into the phase —
	// a live rebalance under fire. The wall time lands in
	// PhaseReport.RebalanceMillis and the count of owners whose home
	// shard changed in PhaseReport.MovedOwners.
	RebalanceAfter time.Duration
	// KillShardAfter, on an auto-repair rig's open-loop phase, hard-kills
	// the named shard (KillShard) that long into the phase and waits for
	// the constellation's gossip detector to confirm the death and the
	// repair to complete; the fault-to-repaired wall time lands in
	// PhaseReport.RepairMillis and the repaired map's epoch in
	// PhaseReport.RepairEpoch.
	KillShardAfter time.Duration
	KillShard      string
	// PartitionAfter imposes a one-way partition on the named shard
	// (PartitionShard): inbound requests still land but its replies
	// vanish, so the majority confirms it dead while it still believes
	// everyone else alive — the asymmetric split-brain case. The engine
	// waits for the repair, then lifts the partition PartitionHealAfter
	// after it was imposed; the fenced minority must converge onto the
	// repaired epoch (the convergence assertion).
	PartitionAfter     time.Duration
	PartitionShard     string
	PartitionHealAfter time.Duration
	// Mix is the phase's workload: each request draws an entry by weight.
	Mix []MixEntry
}

// Rate is an open-loop request rate: absolute (PerSec) or a multiple of
// the calibrated capacity (Factor, from "0.8x").
type Rate struct {
	PerSec float64
	Factor float64
}

// IsZero reports an unset rate.
func (r Rate) IsZero() bool { return r.PerSec == 0 && r.Factor == 0 }

// Budget is a per-request deadline: absolute, or Factor × the calibrated
// service p50, clamped to [100ms, 1s] (the E19 derivation).
type Budget struct {
	Duration time.Duration
	Factor   float64
}

// IsZero reports an unset budget.
func (b Budget) IsZero() bool { return b.Duration == 0 && b.Factor == 0 }

// MixEntry is one weighted workload component.
type MixEntry struct {
	Verb string
	// Pattern picks the MDM query plan for VerbResolve: "referral",
	// "chaining" or "recruiting" (wire.QueryPattern values).
	Pattern string
	// Batch resolves every split path in one batch-resolve frame
	// (VerbResolve + referral on LayoutSplit).
	Batch bool
	// Users is the target-selection mode; default UsersRoundRobin.
	Users  string
	Weight int
}

// FaultSpec is one link mutation at phase start. Nil fields keep the
// link's current setting.
type FaultSpec struct {
	Link      string
	Latency   *time.Duration
	Jitter    *time.Duration
	Bandwidth *int
	// Blackout darkens the link and silences the store's heartbeats (a
	// dead store neither serves nor renews its lease). Restoring the link
	// does not resurrect heartbeats — that is what a Reregister herd is
	// for.
	Blackout *bool
}

// Assertion is one end-of-run check against the report.
type Assertion struct {
	Kind string
	// Phase targets single-phase kinds; Num/Den the ratio kinds.
	Phase    string
	Num, Den string
	// Max bounds p95-ceiling.
	Max time.Duration
	// Min floors goodput-floor (per-sec), throughput-ratio-floor,
	// retention-floor and shed-floor.
	Min float64
	// MaxRatio caps retention-ceiling; MaxCount caps error-ceiling.
	MaxRatio float64
	MaxCount int
}

// Validate checks cross-references and enumerations, returning the first
// problem found.
func (sc *Scenario) Validate() error {
	if sc.Name == "" {
		return fmt.Errorf("scenario: name is required")
	}
	if len(sc.Topology.Rigs) == 0 {
		return fmt.Errorf("scenario %s: topology declares no rigs", sc.Name)
	}
	rigs := map[string]*RigSpec{}
	for i := range sc.Topology.Rigs {
		r := &sc.Topology.Rigs[i]
		if r.Name == "" {
			return fmt.Errorf("scenario %s: rig %d has no name", sc.Name, i)
		}
		if _, dup := rigs[r.Name]; dup {
			return fmt.Errorf("scenario %s: duplicate rig %q", sc.Name, r.Name)
		}
		rigs[r.Name] = r
		if err := r.validate(sc.Name); err != nil {
			return err
		}
	}
	if len(sc.Phases) == 0 {
		return fmt.Errorf("scenario %s: no phases", sc.Name)
	}
	phases := map[string]bool{}
	for i := range sc.Phases {
		p := &sc.Phases[i]
		if p.Name == "" {
			return fmt.Errorf("scenario %s: phase %d has no name", sc.Name, i)
		}
		if phases[p.Name] {
			return fmt.Errorf("scenario %s: duplicate phase %q", sc.Name, p.Name)
		}
		phases[p.Name] = true
		rig, ok := rigs[p.Rig]
		if !ok {
			return fmt.Errorf("scenario %s: phase %q references unknown rig %q", sc.Name, p.Name, p.Rig)
		}
		if err := p.validate(sc.Name, rig); err != nil {
			return err
		}
	}
	for i := range sc.Asserts {
		if err := sc.Asserts[i].validate(sc.Name, phases); err != nil {
			return fmt.Errorf("assertion %d: %w", i, err)
		}
	}
	return nil
}

func (r *RigSpec) validate(sc string) error {
	switch r.Layout {
	case LayoutSplit, LayoutSharded:
	case "":
		return fmt.Errorf("scenario %s: rig %s: layout is required (split or sharded)", sc, r.Name)
	default:
		return fmt.Errorf("scenario %s: rig %s: unknown layout %q", sc, r.Name, r.Layout)
	}
	if r.Stores <= 0 {
		return fmt.Errorf("scenario %s: rig %s: stores must be positive", sc, r.Name)
	}
	if r.Layout == LayoutSharded && r.Users <= 0 {
		return fmt.Errorf("scenario %s: rig %s: sharded layout needs users", sc, r.Name)
	}
	switch r.Profile {
	case "", ProfileBook, ProfileFull:
	default:
		return fmt.Errorf("scenario %s: rig %s: unknown profile %q", sc, r.Name, r.Profile)
	}
	if r.Heartbeats && r.LeaseTTL <= 0 {
		return fmt.Errorf("scenario %s: rig %s: heartbeats need lease-ttl", sc, r.Name)
	}
	if r.Replicas == 1 || r.Replicas < 0 {
		return fmt.Errorf("scenario %s: rig %s: replicas must be 0 (single MDM) or >= 2", sc, r.Name)
	}
	if r.Replicas >= 2 {
		if r.Quorum < 0 || r.Quorum > r.Replicas {
			return fmt.Errorf("scenario %s: rig %s: quorum must be between 0 (majority) and replicas", sc, r.Name)
		}
		if r.Heartbeats {
			return fmt.Errorf("scenario %s: rig %s: replicated rigs seed coverage through the leader, not store registrars", sc, r.Name)
		}
		if r.Links.MDM != nil {
			return fmt.Errorf("scenario %s: rig %s: replicated rigs have no single mdm link to proxy", sc, r.Name)
		}
	}
	if r.Shards == 1 || r.Shards < 0 {
		return fmt.Errorf("scenario %s: rig %s: shards must be 0 (single MDM) or >= 2", sc, r.Name)
	}
	if r.SpareShards < 0 || (r.SpareShards > 0 && r.Shards < 2) {
		return fmt.Errorf("scenario %s: rig %s: spare-shards need a sharded rig (shards >= 2)", sc, r.Name)
	}
	if r.Shards >= 2 {
		if r.Layout != LayoutSharded {
			return fmt.Errorf("scenario %s: rig %s: a sharded directory needs the sharded layout", sc, r.Name)
		}
		if r.Replicas >= 2 {
			return fmt.Errorf("scenario %s: rig %s: shards and replicas are separate rig kinds", sc, r.Name)
		}
		if r.Heartbeats {
			return fmt.Errorf("scenario %s: rig %s: sharded rigs seed coverage in-process, not through store registrars", sc, r.Name)
		}
		if r.Links.MDM != nil {
			return fmt.Errorf("scenario %s: rig %s: sharded rigs have no single mdm link to proxy", sc, r.Name)
		}
	}
	if (r.AutoRepair || r.ShardLinks != nil) && r.Shards < 2 {
		return fmt.Errorf("scenario %s: rig %s: auto-repair and shard-links need a sharded rig (shards >= 2)", sc, r.Name)
	}
	if (r.GossipInterval > 0 || r.SuspectTimeout > 0) && !r.AutoRepair {
		return fmt.Errorf("scenario %s: rig %s: gossip-interval and suspect-timeout need auto-repair", sc, r.Name)
	}
	for name := range r.Links.PerStore {
		if storeIndex(name) < 0 || storeIndex(name) >= r.Stores {
			return fmt.Errorf("scenario %s: rig %s: link %q names no store", sc, r.Name, name)
		}
	}
	return nil
}

func (p *Phase) validate(sc string, rig *RigSpec) error {
	modes := 0
	if p.Calibrate > 0 {
		modes++
	}
	if p.Rounds > 0 {
		modes++
	}
	if !p.Rate.IsZero() {
		modes++
		if p.Duration <= 0 {
			return fmt.Errorf("scenario %s: phase %s: open-loop rate needs a duration", sc, p.Name)
		}
	}
	if modes != 1 {
		return fmt.Errorf("scenario %s: phase %s: exactly one of calibrate, rounds or rate must be set", sc, p.Name)
	}
	if p.Rounds > 0 && p.Clients <= 0 {
		return fmt.Errorf("scenario %s: phase %s: closed loop needs clients", sc, p.Name)
	}
	if rig.Replicas >= 2 && p.Rounds > 0 {
		return fmt.Errorf("scenario %s: phase %s: replicated rigs drive open-loop (or calibrate) phases only", sc, p.Name)
	}
	if rig.Shards >= 2 && p.Rounds > 0 {
		return fmt.Errorf("scenario %s: phase %s: sharded rigs drive open-loop (or calibrate) phases only", sc, p.Name)
	}
	if p.KillLeaderAfter > 0 {
		if rig.Replicas < 2 {
			return fmt.Errorf("scenario %s: phase %s: kill-leader-after needs a replicated rig (replicas >= 2)", sc, p.Name)
		}
		if p.Rate.IsZero() {
			return fmt.Errorf("scenario %s: phase %s: kill-leader-after needs an open-loop phase", sc, p.Name)
		}
		if p.KillLeaderAfter >= p.Duration {
			return fmt.Errorf("scenario %s: phase %s: kill-leader-after must fall inside the phase duration", sc, p.Name)
		}
	}
	if p.RebalanceAfter > 0 {
		if rig.Shards < 2 || rig.SpareShards < 1 {
			return fmt.Errorf("scenario %s: phase %s: rebalance-after needs a sharded rig with spare-shards", sc, p.Name)
		}
		if p.Rate.IsZero() {
			return fmt.Errorf("scenario %s: phase %s: rebalance-after needs an open-loop phase", sc, p.Name)
		}
		if p.RebalanceAfter >= p.Duration {
			return fmt.Errorf("scenario %s: phase %s: rebalance-after must fall inside the phase duration", sc, p.Name)
		}
	}
	if (p.KillShardAfter > 0) != (p.KillShard != "") {
		return fmt.Errorf("scenario %s: phase %s: kill-shard-after and kill-shard go together", sc, p.Name)
	}
	if (p.PartitionAfter > 0) != (p.PartitionShard != "") {
		return fmt.Errorf("scenario %s: phase %s: partition-after and partition-shard go together", sc, p.Name)
	}
	if p.PartitionHealAfter > 0 && p.PartitionAfter == 0 {
		return fmt.Errorf("scenario %s: phase %s: partition-heal-after needs partition-after", sc, p.Name)
	}
	checkShardFault := func(what, target string, after time.Duration) error {
		if !rig.AutoRepair {
			return fmt.Errorf("scenario %s: phase %s: %s needs an auto-repair rig", sc, p.Name, what)
		}
		if p.Rate.IsZero() {
			return fmt.Errorf("scenario %s: phase %s: %s needs an open-loop phase", sc, p.Name, what)
		}
		if after >= p.Duration {
			return fmt.Errorf("scenario %s: phase %s: %s must fall inside the phase duration", sc, p.Name, what)
		}
		idx := shardIndex(target)
		if idx < 1 || idx >= rig.Shards {
			// shard-0 is the rig's bootstrap/audit alias and must survive;
			// spares are not in the initial map, so killing one repairs
			// nothing.
			return fmt.Errorf("scenario %s: phase %s: %s targets %q, want an initial-map shard other than shard-0", sc, p.Name, what, target)
		}
		return nil
	}
	if p.KillShardAfter > 0 {
		if err := checkShardFault("kill-shard-after", p.KillShard, p.KillShardAfter); err != nil {
			return err
		}
	}
	if p.PartitionAfter > 0 {
		if rig.ShardLinks == nil {
			return fmt.Errorf("scenario %s: phase %s: partition-after needs shard-links on the rig", sc, p.Name)
		}
		if err := checkShardFault("partition-after", p.PartitionShard, p.PartitionAfter); err != nil {
			return err
		}
	}
	if p.Calibrate == 0 && len(p.Mix) == 0 {
		return fmt.Errorf("scenario %s: phase %s: no workload mix", sc, p.Name)
	}
	for i := range p.Mix {
		if err := p.Mix[i].validate(sc, p.Name, rig); err != nil {
			return err
		}
	}
	for _, f := range p.Faults {
		if f.Link != "mdm" && (storeIndex(f.Link) < 0 || storeIndex(f.Link) >= rig.Stores) {
			return fmt.Errorf("scenario %s: phase %s: fault on unknown link %q", sc, p.Name, f.Link)
		}
	}
	for _, s := range p.Reregister {
		if s != "all-dead" && (storeIndex(s) < 0 || storeIndex(s) >= rig.Stores) {
			return fmt.Errorf("scenario %s: phase %s: reregister names unknown store %q", sc, p.Name, s)
		}
	}
	return nil
}

func (m *MixEntry) validate(sc, phase string, rig *RigSpec) error {
	switch m.Verb {
	case VerbResolve:
		switch m.Pattern {
		case "referral", "chaining", "recruiting":
		default:
			return fmt.Errorf("scenario %s: phase %s: resolve needs pattern referral|chaining|recruiting, got %q", sc, phase, m.Pattern)
		}
		if m.Batch && (m.Pattern != "referral" || rig.Layout != LayoutSplit) {
			return fmt.Errorf("scenario %s: phase %s: batch resolves need pattern referral on a split rig", sc, phase)
		}
		if m.Batch && rig.Replicas >= 2 {
			return fmt.Errorf("scenario %s: phase %s: batch resolves are not supported on replicated rigs", sc, phase)
		}
	case VerbFetch, VerbRegister:
	case VerbSync, VerbReachMe:
		if rig.Profile != ProfileFull && m.Verb == VerbReachMe {
			return fmt.Errorf("scenario %s: phase %s: reachme needs profile full", sc, phase)
		}
		if rig.Replicas >= 2 && m.Verb == VerbReachMe {
			return fmt.Errorf("scenario %s: phase %s: reachme is not supported on replicated rigs", sc, phase)
		}
		if rig.Shards >= 2 && m.Verb == VerbReachMe {
			return fmt.Errorf("scenario %s: phase %s: reachme is not supported on sharded rigs", sc, phase)
		}
	default:
		return fmt.Errorf("scenario %s: phase %s: unknown verb %q", sc, phase, m.Verb)
	}
	switch m.Users {
	case "", UsersHot, UsersRoundRobin, UsersZipf, UsersUniform:
	default:
		return fmt.Errorf("scenario %s: phase %s: unknown users mode %q", sc, phase, m.Users)
	}
	if m.Weight < 0 {
		return fmt.Errorf("scenario %s: phase %s: negative weight", sc, phase)
	}
	return nil
}

func (a *Assertion) validate(sc string, phases map[string]bool) error {
	need := func(name, field string) error {
		if name == "" {
			return fmt.Errorf("scenario %s: %s: %s is required", sc, a.Kind, field)
		}
		if !phases[name] {
			return fmt.Errorf("scenario %s: %s: unknown phase %q", sc, a.Kind, name)
		}
		return nil
	}
	switch a.Kind {
	case AssertP95Ceiling:
		if a.Max <= 0 {
			return fmt.Errorf("scenario %s: p95-ceiling needs max", sc)
		}
		return need(a.Phase, "phase")
	case AssertGoodputFloor, AssertShedFloor:
		if a.Min <= 0 {
			return fmt.Errorf("scenario %s: %s needs min", sc, a.Kind)
		}
		return need(a.Phase, "phase")
	case AssertErrorCeiling:
		return need(a.Phase, "phase")
	case AssertThroughputRatio, AssertRetentionFloor:
		if a.Min <= 0 {
			return fmt.Errorf("scenario %s: %s needs min", sc, a.Kind)
		}
		if err := need(a.Num, "num"); err != nil {
			return err
		}
		return need(a.Den, "den")
	case AssertRetentionCeiling:
		if a.MaxRatio <= 0 {
			return fmt.Errorf("scenario %s: retention-ceiling needs max", sc)
		}
		if err := need(a.Num, "num"); err != nil {
			return err
		}
		return need(a.Den, "den")
	case AssertZeroLostCoverage:
		return nil
	case AssertFailoverCeiling:
		if a.Max <= 0 {
			return fmt.Errorf("scenario %s: failover-ceiling needs max-duration", sc)
		}
		return need(a.Phase, "phase")
	case AssertMovedOwnersFloor:
		if a.Min <= 0 {
			return fmt.Errorf("scenario %s: moved-owners-floor needs min", sc)
		}
		return need(a.Phase, "phase")
	case AssertRepairCeiling:
		if a.Max <= 0 {
			return fmt.Errorf("scenario %s: repair-ceiling needs max-duration", sc)
		}
		return need(a.Phase, "phase")
	case AssertConvergence:
		return nil
	default:
		return fmt.Errorf("scenario %s: unknown assertion kind %q", sc, a.Kind)
	}
}

// storeIndex parses "store-3" → 3, or -1.
func storeIndex(name string) int {
	var i int
	if n, err := fmt.Sscanf(name, "store-%d", &i); err != nil || n != 1 || i < 0 {
		return -1
	}
	return i
}

// shardIndex parses "shard-2" → 2, or -1.
func shardIndex(name string) int {
	var i int
	if n, err := fmt.Sscanf(name, "shard-%d", &i); err != nil || n != 1 || i < 0 {
		return -1
	}
	return i
}
