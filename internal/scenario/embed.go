package scenario

import (
	"embed"
	"fmt"
	"sort"
	"strings"
)

//go:embed scenarios/*.yaml
var scenarioFS embed.FS

// Load decodes a committed scenario by name ("e16_resolve") or file name
// ("e16_resolve.yaml").
func Load(name string) (*Scenario, error) {
	file := name
	if !strings.HasSuffix(file, ".yaml") {
		file += ".yaml"
	}
	data, err := scenarioFS.ReadFile("scenarios/" + file)
	if err != nil {
		return nil, fmt.Errorf("no committed scenario %q (have %s)", name, strings.Join(List(), ", "))
	}
	return Decode(data)
}

// List names the committed scenarios.
func List() []string {
	entries, err := scenarioFS.ReadDir("scenarios")
	if err != nil {
		return nil
	}
	var names []string
	for _, e := range entries {
		names = append(names, strings.TrimSuffix(e.Name(), ".yaml"))
	}
	sort.Strings(names)
	return names
}

// Raw returns a committed scenario's bytes (golden-file tests).
func Raw(name string) ([]byte, error) {
	if !strings.HasSuffix(name, ".yaml") {
		name += ".yaml"
	}
	return scenarioFS.ReadFile("scenarios/" + name)
}
