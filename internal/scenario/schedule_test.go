package scenario

import (
	"fmt"
	"reflect"
	"sync"
	"testing"
)

// twoRigScenario is a small closed-loop scenario with a mixed workload
// and a skewed user draw — enough entropy that an accidental reseed or a
// shared-RNG race would show up as a diverged schedule.
func twoRigScenario() *Scenario {
	return &Scenario{
		Name: "repro",
		Seed: 42,
		Topology: Topology{Rigs: []RigSpec{
			{Name: "a", Layout: LayoutSplit, Stores: 2, SizeBytes: 256},
			{Name: "b", Layout: LayoutSharded, Stores: 2, Users: 8, SizeBytes: 256},
		}},
		Phases: []Phase{
			{Name: "p0", Rig: "a", Clients: 3, Rounds: 4,
				Mix: []MixEntry{{Verb: VerbResolve, Pattern: "referral", Weight: 1},
					{Verb: VerbResolve, Pattern: "chaining", Weight: 2}}},
			{Name: "p1", Rig: "b", Clients: 2, Rounds: 4,
				Mix: []MixEntry{{Verb: VerbResolve, Pattern: "chaining", Users: UsersZipf, Weight: 3},
					{Verb: VerbFetch, Users: UsersUniform, Weight: 1}}},
		},
	}
}

// TestScheduleForDeterminism pins the reproducibility contract at the
// schedule level: same (scenario, seed, phase, client) → the same
// request sequence; a different seed or client → an independent stream.
func TestScheduleForDeterminism(t *testing.T) {
	sc := twoRigScenario()
	for phase := range sc.Phases {
		for _, client := range []int{-1, 0, 1, 2} {
			a := ScheduleFor(sc, phase, client, 32)
			b := ScheduleFor(sc, phase, client, 32)
			if !reflect.DeepEqual(a, b) {
				t.Fatalf("phase %d client %d: two schedules from one seed differ", phase, client)
			}
			// A longer draw must extend, not reshuffle, the shorter one.
			long := ScheduleFor(sc, phase, client, 64)
			if !reflect.DeepEqual(a, long[:32]) {
				t.Fatalf("phase %d client %d: schedule is not prefix-stable", phase, client)
			}
		}
		if reflect.DeepEqual(ScheduleFor(sc, phase, 0, 32), ScheduleFor(sc, phase, 1, 32)) {
			t.Errorf("phase %d: clients 0 and 1 drew identical streams", phase)
		}
	}
	reseeded := twoRigScenario()
	reseeded.Seed = 43
	if reflect.DeepEqual(ScheduleFor(sc, 0, 0, 32), ScheduleFor(reseeded, 0, 0, 32)) {
		t.Error("different seeds drew identical streams")
	}
}

// requestLog records every request a run draws, keyed per (phase,
// client) stream — the per-stream order is the deterministic contract;
// the global interleaving across clients is not.
type requestLog struct {
	mu      sync.Mutex
	streams map[string][]Request
}

func (l *requestLog) record(phase string, client int, req Request) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.streams == nil {
		l.streams = map[string][]Request{}
	}
	key := fmt.Sprintf("%s/%d", phase, client)
	l.streams[key] = append(l.streams[key], req)
}

// TestRunReproducibility runs the same scenario twice with the same seed
// and requires byte-identical request streams — and that each stream
// matches what ScheduleFor predicts without running anything.
func TestRunReproducibility(t *testing.T) {
	if testing.Short() {
		t.Skip("builds live rigs")
	}
	sc := twoRigScenario()
	runOnce := func() *requestLog {
		log := &requestLog{}
		rep, err := Run(sc, RunOptions{OnRequest: log.record})
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range rep.Phases {
			if p.Errors > 0 {
				t.Fatalf("phase %s had %d errors", p.Name, p.Errors)
			}
		}
		return log
	}
	first := runOnce()
	second := runOnce()
	if len(first.streams) == 0 {
		t.Fatal("OnRequest observed nothing")
	}
	if !reflect.DeepEqual(first.streams, second.streams) {
		t.Fatalf("two same-seed runs drew different request streams:\n first: %v\nsecond: %v",
			first.streams, second.streams)
	}
	for phaseIdx, p := range sc.Phases {
		for client := 0; client < p.Clients; client++ {
			got := first.streams[fmt.Sprintf("%s/%d", p.Name, client)]
			if len(got) == 0 {
				t.Fatalf("phase %s client %d drew no requests", p.Name, client)
			}
			want := ScheduleFor(sc, phaseIdx, client, len(got))
			if !reflect.DeepEqual(got, want) {
				t.Errorf("phase %s client %d: live draw diverged from ScheduleFor:\n got: %v\nwant: %v",
					p.Name, client, got, want)
			}
		}
	}
}
