package scenario

import (
	"math/rand"

	"gupster/internal/workload"
)

// Determinism. Every random draw in a run — which mix entry a request
// executes, which user it targets, the jitter of every fault proxy —
// derives from the scenario seed through splitmix64, so two runs of the
// same scenario with the same seed issue identical request sequences
// (the reproducibility test asserts exactly this via ScheduleFor).
//
// The derivation is positional, not sequential: client c of phase p seeds
// its own generator from (seed, p, c), so a schedule never depends on how
// many requests other clients issued or on goroutine interleaving. Open-
// loop phases use one stream (client index -1): the pacing loop draws
// requests sequentially before fanning them out, so issue order is the
// loop order regardless of completion order.

// splitmix64 is the SplitMix64 output function — a cheap, well-mixed way
// to derive independent sub-seeds from (seed, salt) pairs.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// deriveSeed mixes the scenario seed with positional salts.
func deriveSeed(seed int64, salts ...uint64) int64 {
	x := splitmix64(uint64(seed))
	for _, s := range salts {
		x = splitmix64(x ^ s)
	}
	return int64(x >> 1) // non-negative for rand.NewSource/NewZipf friendliness
}

// Salt spaces keep the derivation streams of different subsystems apart.
const (
	saltPhase = 0x70686173 // workload schedules
	saltLink  = 0x6c696e6b // fault-proxy RNGs
	saltData  = 0x64617461 // payload generation
)

// phaseRNG returns the generator for client c (or -1, the open-loop
// stream) of phase p.
func phaseRNG(seed int64, phase, client int) *rand.Rand {
	return rand.New(rand.NewSource(deriveSeed(seed, saltPhase, uint64(phase), uint64(client+1))))
}

// linkSeed derives the fault-proxy seed for link l of rig r.
func linkSeed(seed int64, rig, link int) int64 {
	return deriveSeed(seed, saltLink, uint64(rig), uint64(link))
}

// dataSeed derives the payload-generation seed for store/user i of rig r.
func dataSeed(seed int64, rig, i int) int64 {
	return deriveSeed(seed, saltData, uint64(rig), uint64(i))
}

// Request is one scheduled workload request: the drawn mix entry and
// target user. The executed sequence of (Verb, Pattern, Batch, User) per
// (phase, client) is a pure function of the scenario seed.
type Request struct {
	Verb    string
	Pattern string
	Batch   bool
	User    string
}

// drawer draws requests for one (phase, client) stream.
type drawer struct {
	rng     *rand.Rand
	mix     []MixEntry
	total   int
	users   []string
	zipf    *rand.Zipf
	counter int
}

// newDrawer builds the stream for client c (or -1 for the open-loop
// stream) of phase p, targeting the users of rig.
func newDrawer(seed int64, phaseIdx, client int, p *Phase, users []string) *drawer {
	d := &drawer{rng: phaseRNG(seed, phaseIdx, client), mix: p.Mix, users: users}
	for _, m := range p.Mix {
		w := m.Weight
		if w == 0 {
			w = 1
		}
		d.total += w
	}
	for _, m := range p.Mix {
		if m.Users == UsersZipf && len(users) > 1 {
			d.zipf = rand.NewZipf(d.rng, 1.2, 1, uint64(len(users)-1))
			break
		}
	}
	return d
}

// next draws the stream's next request.
func (d *drawer) next() Request {
	i := d.counter
	d.counter++
	entry := d.mix[0]
	if len(d.mix) > 1 {
		pick := d.rng.Intn(d.total)
		for _, m := range d.mix {
			w := m.Weight
			if w == 0 {
				w = 1
			}
			if pick < w {
				entry = m
				break
			}
			pick -= w
		}
	}
	user := d.users[0]
	switch entry.Users {
	case UsersHot:
		user = d.users[0]
	case UsersZipf:
		if d.zipf != nil {
			user = d.users[int(d.zipf.Uint64())]
		}
	case UsersUniform:
		user = d.users[d.rng.Intn(len(d.users))]
	default: // UsersRoundRobin and ""
		user = d.users[i%len(d.users)]
	}
	return Request{Verb: entry.Verb, Pattern: entry.Pattern, Batch: entry.Batch, User: user}
}

// rigUsers lists the owner population of a rig spec — derivable without
// building the rig, so schedules can be computed standalone.
func rigUsers(spec *RigSpec) []string {
	if spec.Layout == LayoutSplit {
		return []string{"u"}
	}
	users := make([]string, spec.Users)
	for i := range users {
		users[i] = workload.UserID(i)
	}
	return users
}

// ScheduleFor computes the first n requests client would issue in phase
// phaseIdx of sc — without running anything. The engine draws from the
// identical stream, so this is the reproducibility contract: same
// scenario, same seed, same (phase, client) → same sequence. client -1
// is the open-loop stream.
func ScheduleFor(sc *Scenario, phaseIdx, client, n int) []Request {
	p := &sc.Phases[phaseIdx]
	var spec *RigSpec
	for i := range sc.Topology.Rigs {
		if sc.Topology.Rigs[i].Name == p.Rig {
			spec = &sc.Topology.Rigs[i]
		}
	}
	if spec == nil || len(p.Mix) == 0 {
		return nil
	}
	d := newDrawer(sc.Seed, phaseIdx, client, p, rigUsers(spec))
	out := make([]Request, n)
	for i := range out {
		out[i] = d.next()
	}
	return out
}
