package scenario

import (
	"reflect"
	"strings"
	"testing"
	"time"
)

// TestDecodeCommittedScenarios decodes every scenario shipped in the
// binary: each must parse and validate, with the name matching the file.
func TestDecodeCommittedScenarios(t *testing.T) {
	names := List()
	if len(names) < 3 {
		t.Fatalf("expected at least e16/e19/e20 committed, got %v", names)
	}
	for _, name := range names {
		sc, err := Load(name)
		if err != nil {
			t.Fatalf("Load(%s): %v", name, err)
		}
		if sc.Name != name {
			t.Errorf("Load(%s): scenario names itself %q", name, sc.Name)
		}
		if err := sc.Validate(); err != nil {
			t.Errorf("Load(%s): Validate: %v", name, err)
		}
	}
}

// TestDecodeE16Golden pins the full decode of the committed E16 file:
// any decoder change that reinterprets a field shows up as a diff here,
// not as a silently different experiment.
func TestDecodeE16Golden(t *testing.T) {
	raw, err := Raw("e16_resolve")
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(raw)
	if err != nil {
		t.Fatal(err)
	}
	lat := 10 * time.Millisecond
	rig := func(name string, baseline bool) RigSpec {
		return RigSpec{
			Name: name, Layout: LayoutSplit, Stores: 8, SizeBytes: 4096,
			Baseline: baseline, RetryAttempts: 2, PerAttempt: 30 * time.Second,
			Links: LinkSet{
				MDM:    &LinkSpec{Latency: lat},
				Stores: &LinkSpec{Latency: lat},
			},
		}
	}
	resolve := func(pattern string, batch bool) []MixEntry {
		// The decoder defaults an unset weight to 1.
		return []MixEntry{{Verb: VerbResolve, Pattern: pattern, Batch: batch, Weight: 1}}
	}
	want := &Scenario{
		Name:        "e16_resolve",
		Description: "batched referral and coalesced chaining vs serial resolves",
		Seed:        16,
		Topology:    Topology{Rigs: []RigSpec{rig("serial", true), rig("pipelined", false)}},
		Phases: []Phase{
			{Name: "referral-serial", Rig: "serial", Clients: 64, Rounds: 64, Mix: resolve("referral", false)},
			{Name: "chaining-serial", Rig: "serial", Clients: 64, Rounds: 5, Mix: resolve("chaining", false)},
			{Name: "referral-batched", Rig: "pipelined", Clients: 64, Rounds: 8, Mix: resolve("referral", true)},
			{Name: "chaining-coalesced", Rig: "pipelined", Clients: 64, Rounds: 5, Mix: resolve("chaining", false)},
		},
		Asserts: []Assertion{
			{Kind: AssertThroughputRatio, Num: "referral-batched", Den: "referral-serial", Min: 2.04},
			{Kind: AssertThroughputRatio, Num: "chaining-coalesced", Den: "chaining-serial", Min: 3.54},
			{Kind: AssertErrorCeiling, Phase: "referral-serial"},
			{Kind: AssertErrorCeiling, Phase: "referral-batched"},
			{Kind: AssertErrorCeiling, Phase: "chaining-serial"},
			{Kind: AssertErrorCeiling, Phase: "chaining-coalesced"},
		},
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("e16_resolve decoded differently:\n got: %+v\nwant: %+v", got, want)
	}
}

// TestDecodeRoundTripStable re-decodes each committed file and compares
// the two trees: decoding must be a pure function of the bytes.
func TestDecodeRoundTripStable(t *testing.T) {
	for _, name := range List() {
		raw, err := Raw(name)
		if err != nil {
			t.Fatal(err)
		}
		a, err := Decode(raw)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		b, err := Decode(raw)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !reflect.DeepEqual(a, b) {
			t.Errorf("%s: two decodes of the same bytes differ", name)
		}
	}
}

// minimal is a smallest-valid scenario the rejection tests mutate.
const minimal = `name: t
seed: 1
topology:
  rigs:
    - name: r
      layout: split
      stores: 2
phases:
  - name: p
    rig: r
    clients: 1
    rounds: 1
    mix:
      - verb: resolve
        pattern: chaining
`

func TestDecodeMinimal(t *testing.T) {
	if _, err := Decode([]byte(minimal)); err != nil {
		t.Fatalf("minimal scenario rejected: %v", err)
	}
}

// TestDecodeRejections exercises the strict-mode error surface: every
// malformed input must fail with a message naming the problem (and the
// line, where the parse tree has one).
func TestDecodeRejections(t *testing.T) {
	cases := []struct {
		name string
		in   string
		want string // substring of the error
	}{
		{"unknown top-level field", "name: x\nbogus: 1\n" + minimal[8:], "unknown field \"bogus\""},
		{"unknown rig field", strings.Replace(minimal, "stores: 2", "stores: 2\n      flux-capacitor: 1", 1), "unknown field \"flux-capacitor\""},
		{"unknown phase field", strings.Replace(minimal, "rounds: 1", "rounds: 1\n    warp: 9", 1), "unknown field \"warp\""},
		{"bad duration", strings.Replace(minimal, "stores: 2", "stores: 2\n      per-attempt: 5parsecs", 1), "bad duration"},
		{"negative duration", strings.Replace(minimal, "stores: 2", "stores: 2\n      per-attempt: -1s", 1), "negative duration"},
		{"tab indentation", strings.Replace(minimal, "  rigs:", "\trigs:", 1), "tab"},
		{"bad rate", strings.Replace(minimal, "clients: 1\n    rounds: 1", "rate: fast\n    duration: 1s", 1), "bad rate"},
		{"bad budget", strings.Replace(minimal, "rounds: 1", "rounds: 1\n    budget: cheap", 1), "bad budget"},
		{"unknown layout", strings.Replace(minimal, "layout: split", "layout: mesh", 1), "unknown layout"},
		{"unknown verb", strings.Replace(minimal, "verb: resolve", "verb: teleport", 1), "unknown verb"},
		{"unknown assertion kind", minimal + "assertions:\n  - kind: vibes-floor\n", "unknown assertion kind"},
		{"phase names unknown rig", strings.Replace(minimal, "rig: r", "rig: ghost", 1), "unknown rig"},
		{"duplicate phase", minimal + `  - name: p
    rig: r
    clients: 1
    rounds: 1
    mix:
      - verb: resolve
        pattern: chaining
`, "duplicate phase"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Decode([]byte(tc.in))
			if err == nil {
				t.Fatalf("accepted malformed input:\n%s", tc.in)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

// FuzzScenarioDecode hammers the zero-dependency parser: any input may
// be rejected, but none may panic, and an accepted scenario must be
// internally consistent (it already passed Validate inside Decode).
func FuzzScenarioDecode(f *testing.F) {
	for _, name := range List() {
		raw, err := Raw(name)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(raw)
	}
	f.Add([]byte(minimal))
	f.Add([]byte("name: x\n  dangling: indent\n"))
	f.Add([]byte("phases:\n  - - -\n"))
	f.Add([]byte("topology: {rigs: [a, b]}\n"))
	f.Add([]byte("name: \"unterminated\nseed: x\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		sc, err := Decode(data)
		if err != nil {
			return
		}
		// Decode validated; a second validation of the same value must
		// agree with the first.
		if err := sc.Validate(); err != nil {
			t.Errorf("Decode accepted a scenario Validate rejects: %v", err)
		}
	})
}
