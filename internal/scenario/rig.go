package scenario

import (
	"context"
	"fmt"
	"net"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"gupster/internal/core"
	"gupster/internal/coverage"
	"gupster/internal/faultinject"
	"gupster/internal/federation"
	"gupster/internal/health"
	"gupster/internal/journal"
	"gupster/internal/overload"
	"gupster/internal/policy"
	"gupster/internal/replication"
	"gupster/internal/resilience"
	"gupster/internal/schema"
	"gupster/internal/shard"
	"gupster/internal/store"
	"gupster/internal/token"
	"gupster/internal/wire"
	"gupster/internal/workload"
	"gupster/internal/xmltree"
	"gupster/internal/xpath"
)

// SignerKey is the shared HMAC key every harness component signs with —
// one key so MDMs, stores and direct-fetch clients built by different
// call sites interoperate.
var SignerKey = []byte("gupbench-shared-key")

// NewSigner returns a token signer on the shared harness key.
func NewSigner() *token.Signer { return token.NewSigner(SignerKey) }

// MDMConfig translates a rig spec into the core configuration — exported
// so programmatic harnesses (crash-recovery cycles that build bare MDMs,
// not full rigs) construct their directories the same way a scenario rig
// does.
func MDMConfig(spec *RigSpec, signer *token.Signer) core.Config {
	cfg := core.Config{
		Schema:       schema.GUP(),
		Signer:       signer,
		GrantTTL:     time.Minute,
		CacheEntries: spec.CacheEntries,
	}
	if spec.RetryAttempts > 0 {
		cfg.Retry = resilience.Policy{MaxAttempts: spec.RetryAttempts, PerAttempt: spec.PerAttempt}
	}
	if spec.Baseline {
		cfg.DisableCoalescing = true
		cfg.FanOut = 1
	}
	if spec.DisableCoalescing {
		cfg.DisableCoalescing = true
	}
	if spec.MaxConcurrency > 0 {
		cfg.Overload = overload.Config{
			MaxConcurrency: spec.MaxConcurrency,
			QueueDepth:     spec.QueueDepth,
		}
	}
	if spec.LeaseTTL > 0 {
		cfg.LeaseTTL = spec.LeaseTTL
		cfg.LeaseGrace = spec.LeaseGrace
	}
	return cfg
}

// StoreNode is one data store of a rig: engine, server, the optional
// fault proxy in front of it, and the optional registrar heartbeating
// its coverage.
type StoreNode struct {
	Index  int
	Engine *store.Engine
	Server *store.Server
	// Proxy is the injectable link; nil when the spec declared none.
	Proxy *faultinject.Proxy
	// Addr is the address the MDM registered — the proxy when present.
	Addr string
	// Coverage lists the node's registered paths.
	Coverage []string
	// Registrar heartbeats the coverage (Heartbeats rigs only).
	Registrar *store.Registrar
	// Dead marks a blacked-out store whose registrar has been silenced;
	// a re-registration herd revives it.
	Dead bool
}

// Member is one MDM of a quorum-replicated rig: the directory, its
// replication node (journal shipping + election) and the temp journal
// directory backing it.
type Member struct {
	MDM  *core.MDM
	Node *replication.Node
	Addr string
	Dir  string
	// Killed marks a member whose node was hard-closed mid-run (the
	// leader-kill fault); pollers skip it.
	Killed atomic.Bool
}

// Shard is one directory shard of a sharded rig: an independent MDM
// slice wrapped in a routing shard node, serving the owners the
// installed map's ring assigns to its ID.
type Shard struct {
	ID   string
	MDM  *core.MDM
	Node *shard.Node
	Addr string
	srv  *wire.Server
	// Proxy fronts the shard when the spec declares shard-links; Addr is
	// the proxy address then, and partitions act on it.
	Proxy *faultinject.Proxy
	// Agent is the shard's gossip failure detector (auto-repair rigs).
	Agent *health.Agent
	// Killed marks a shard hard-killed mid-run (KillShard); pollers and
	// the teardown audit skip it.
	Killed atomic.Bool
	// Spare marks a shard built outside the initial map — a rebalance
	// expansion target holding no owners until the map grows onto it.
	Spare bool
}

// Rig is a built topology instance: one MDM fronting a set of stores,
// with fault-injectable links, seeded users and a shared signer. Build
// one from a spec; Close tears it down registrars-first so no goroutine
// outlives it.
//
// With Spec.Replicas >= 2 the MDM side is a quorum-replicated
// constellation instead: Members holds the nodes, MDM points at the
// seed-time leader's directory (for in-process counters) and MDMAddr at
// its address; workload mutations ride a federation.MirrorClient so they
// re-home when leadership moves.
type Rig struct {
	Spec   RigSpec
	Seed   int64
	Signer *token.Signer

	MDM    *core.MDM
	MDMSrv *core.Server
	// MDMProxy fronts the MDM for clients when the spec declares an mdm
	// link; MDMAddr is what clients dial either way.
	MDMProxy *faultinject.Proxy
	MDMAddr  string

	// Members is the replicated constellation (empty on single-MDM rigs).
	Members []*Member

	// Shards is the sharded directory (empty on single-MDM and replicated
	// rigs); shardMap/shardRing track the currently installed map.
	Shards    []*Shard
	shardMu   sync.Mutex
	shardMap  wire.ShardMap
	shardRing *shard.Ring

	// repairs collects completed auto-repairs from every shard's gossip
	// agent (auto-repair rigs); WaitRepair polls it.
	repairMu sync.Mutex
	repairs  []health.RepairEvent

	Stores []*StoreNode
	// Users is the owner population; Paths the registered coverage paths
	// of the split layout (the batch-resolve targets).
	Users []string
	Paths []string

	// acked collects quorum-acknowledged workload registrations (the
	// register verb); the teardown audit checks every one survived the
	// failover.
	ackedMu sync.Mutex
	acked   []wire.RegisterRequest

	rigIdx int
}

// Build constructs a rig from its spec. seed drives payload generation
// and every fault proxy's RNG; rigIdx salts the derivation so multi-rig
// scenarios draw independent streams.
func Build(spec RigSpec, seed int64, rigIdx int) (*Rig, error) {
	r := &Rig{Spec: spec, Seed: seed, Signer: NewSigner(), rigIdx: rigIdx}
	if err := r.build(); err != nil {
		r.Close()
		return nil, err
	}
	return r, nil
}

func (r *Rig) build() error {
	spec := &r.Spec
	if spec.Replicas >= 2 {
		if err := r.buildReplicated(); err != nil {
			return err
		}
	} else if spec.Shards >= 2 {
		if err := r.buildSharded(); err != nil {
			return err
		}
	} else {
		r.MDM = core.New(MDMConfig(spec, r.Signer))
		r.MDMSrv = core.NewServer(r.MDM)
		if err := r.MDMSrv.Start("127.0.0.1:0"); err != nil {
			return err
		}
		r.MDMAddr = r.MDMSrv.Addr()
		if spec.Links.MDM != nil {
			p, err := r.newProxy(r.MDMSrv.Addr(), spec.Links.MDM, 0)
			if err != nil {
				return err
			}
			r.MDMProxy = p
			r.MDMAddr = p.Addr()
		}
	}

	for i := 0; i < spec.Stores; i++ {
		node, err := r.buildStore(i)
		if err != nil {
			return err
		}
		r.Stores = append(r.Stores, node)
	}

	switch spec.Layout {
	case LayoutSplit:
		if err := r.seedSplit(); err != nil {
			return err
		}
	case LayoutSharded:
		if err := r.seedSharded(); err != nil {
			return err
		}
	}

	if spec.Heartbeats {
		for _, node := range r.Stores {
			if err := r.startRegistrar(node); err != nil {
				return err
			}
		}
	}
	return nil
}

// buildReplicated assembles the quorum-replicated MDM constellation:
// Replicas members with temp-dir journals, pre-bound listeners (so every
// member knows its peers' addresses before any starts), and an initial
// election. Seeding then runs through the leader's directory in-process,
// which acks each registration only after a quorum holds it durably.
func (r *Rig) buildReplicated() error {
	spec := &r.Spec
	ttl := spec.ElectionTTL
	if ttl <= 0 {
		ttl = 500 * time.Millisecond
	}
	lns := make([]net.Listener, spec.Replicas)
	addrs := make([]string, spec.Replicas)
	closeRest := func(from int) {
		for i := from; i < len(lns); i++ {
			if lns[i] != nil {
				lns[i].Close()
			}
		}
	}
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			closeRest(0)
			return err
		}
		lns[i] = ln
		addrs[i] = ln.Addr().String()
	}
	for i := range lns {
		m := core.New(MDMConfig(spec, r.Signer))
		dir, err := os.MkdirTemp("", "gupster-scenario-*")
		if err != nil {
			m.Close()
			closeRest(i)
			return err
		}
		if _, err := core.OpenDurable(m, dir, journal.Options{NoSync: true}); err != nil {
			m.Close()
			os.RemoveAll(dir)
			closeRest(i)
			return err
		}
		peers := make([]string, 0, len(addrs)-1)
		for j, a := range addrs {
			if j != i {
				peers = append(peers, a)
			}
		}
		node, err := replication.NewNode(m, replication.Config{
			ID: addrs[i], Peers: peers, Quorum: spec.Quorum, TTL: ttl,
		})
		if err != nil {
			m.Close()
			os.RemoveAll(dir)
			closeRest(i)
			return err
		}
		node.StartListener(lns[i])
		r.Members = append(r.Members, &Member{MDM: m, Node: node, Addr: addrs[i], Dir: dir})
	}
	lead := r.WaitLeader(20 * ttl)
	if lead < 0 {
		return fmt.Errorf("replicated rig %s: no leader elected within %s", spec.Name, 20*ttl)
	}
	r.MDM = r.Members[lead].MDM
	r.MDMAddr = r.Members[lead].Addr
	return nil
}

// buildSharded assembles the partitioned directory: Shards+SpareShards
// independent MDM slices, each behind a routing shard node on its own
// listener. The initial map (version 1) covers only the non-spare shards
// and is installed everywhere — spares included, so a spare redirects
// rather than mis-serving until a rebalance grows the map onto it.
// Seeding then registers each owner's coverage at its home shard's MDM
// in-process, exactly as the ring routes it.
func (r *Rig) buildSharded() error {
	spec := &r.Spec
	total := spec.Shards + spec.SpareShards
	// Phase A: build every shard's directory, node, listener and (when the
	// spec declares shard-links) fault proxy, so the full constellation
	// address list is known before anything serves — each gossip agent
	// needs every member's dialable address up front.
	lns := make([]net.Listener, total)
	for i := 0; i < total; i++ {
		m := core.New(MDMConfig(spec, r.Signer))
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			m.Close()
			return err
		}
		id := fmt.Sprintf("shard-%d", i)
		sn := shard.NewNode(shard.NodeConfig{
			ShardID: id,
			MDM:     m,
			Inner:   wire.HandlerFunc(core.NewServer(m).Handle),
		})
		sh := &Shard{ID: id, MDM: m, Node: sn, Addr: ln.Addr().String(), Spare: i >= spec.Shards}
		if spec.ShardLinks != nil {
			p, err := r.newProxy(ln.Addr().String(), spec.ShardLinks, 100+i)
			if err != nil {
				ln.Close()
				sn.Close()
				m.Close()
				return err
			}
			sh.Proxy = p
			sh.Addr = p.Addr()
		}
		lns[i] = ln
		r.Shards = append(r.Shards, sh)
	}
	// Phase B: serve each shard, wrapping its dispatch in a gossip agent
	// on auto-repair rigs. Members cover the whole constellation (spares
	// included — they are the promotion pool), addressed through the
	// proxies so a partition severs gossip and repair traffic alike.
	infos := make([]wire.ShardInfo, total)
	for i, s := range r.Shards {
		infos[i] = wire.ShardInfo{ID: s.ID, Addr: s.Addr}
	}
	for i, s := range r.Shards {
		var h wire.Handler = s.Node
		if spec.AutoRepair {
			sn := s.Node
			s.Agent = health.New(health.Config{
				Self:    infos[i],
				Members: infos,
				Map: func() wire.ShardMap {
					if ring := sn.Ring(); ring != nil {
						return ring.Map()
					}
					return wire.ShardMap{}
				},
				SelfInstall:    sn.Install,
				Interval:       spec.GossipInterval,
				SuspectTimeout: spec.SuspectTimeout,
				AutoRepair:     true,
				ForwardMillis:  300,
				OnRepair:       r.recordRepair,
			})
			h = health.Wrap(s.Agent, s.Node)
		}
		s.srv = wire.ServeListener(lns[i], h)
	}
	initial := wire.ShardMap{Version: 1}
	for _, s := range r.Shards[:spec.Shards] {
		initial.Shards = append(initial.Shards, wire.ShardInfo{ID: s.ID, Addr: s.Addr})
	}
	ring, err := shard.BuildRing(initial)
	if err != nil {
		return err
	}
	for _, s := range r.Shards {
		if _, err := s.Node.Install(&wire.ShardInstallRequest{Map: initial}); err != nil {
			return err
		}
	}
	r.shardMap, r.shardRing = initial, ring
	// The first shard stands in as "the MDM" for pipeline counters and as
	// the seed address shard-aware clients bootstrap from.
	r.MDM = r.Shards[0].MDM
	r.MDMAddr = r.Shards[0].Addr
	// Agents start only after the initial map is everywhere, so the first
	// probe rounds gossip real coordinates.
	if spec.AutoRepair {
		for _, s := range r.Shards {
			s.Agent.Start()
		}
	}
	return nil
}

// directoryFor returns the MDM holding an owner's directory slice: the
// owner's home shard under the current ring, or the audit MDM on
// unsharded rigs.
func (r *Rig) directoryFor(owner string) *core.MDM {
	if len(r.Shards) == 0 {
		return r.auditMDM()
	}
	r.shardMu.Lock()
	ring := r.shardRing
	r.shardMu.Unlock()
	home := ring.Owner(owner)
	for _, s := range r.Shards {
		if s.ID == home.ID {
			return s.MDM
		}
	}
	return r.MDM
}

// Rebalance expands the shard map onto the rig's spare shards and runs
// the live three-phase rebalance against the running constellation,
// replaying moved coverage shard-to-shard while resolves continue.
// Returns how many seeded owners changed home shards.
func (r *Rig) Rebalance(ctx context.Context) (int, error) {
	r.shardMu.Lock()
	old := r.shardMap
	r.shardMu.Unlock()
	next := wire.ShardMap{Version: old.Version + 1}
	for _, s := range r.Shards {
		next.Shards = append(next.Shards, wire.ShardInfo{ID: s.ID, Addr: s.Addr})
	}
	oldRing, err := shard.BuildRing(old)
	if err != nil {
		return 0, err
	}
	nextRing, err := shard.BuildRing(next)
	if err != nil {
		return 0, err
	}
	moved := 0
	for _, u := range r.Users {
		if oldRing.Owner(u).ID != nextRing.Owner(u).ID {
			moved++
		}
	}
	if err := shard.Rebalance(ctx, old, next, shard.RebalanceOptions{ForwardMillis: 300}); err != nil {
		return moved, err
	}
	r.shardMu.Lock()
	r.shardMap, r.shardRing = next, nextRing
	r.shardMu.Unlock()
	return moved, nil
}

// recordRepair is the OnRepair hook every shard agent shares.
func (r *Rig) recordRepair(ev health.RepairEvent) {
	r.repairMu.Lock()
	r.repairs = append(r.repairs, ev)
	r.repairMu.Unlock()
}

// WaitRepair blocks until some agent completes a repair to an epoch above
// sinceEpoch, returning its event; ok=false on timeout.
func (r *Rig) WaitRepair(sinceEpoch uint64, timeout time.Duration) (health.RepairEvent, bool) {
	deadline := time.Now().Add(timeout)
	for {
		r.repairMu.Lock()
		for _, ev := range r.repairs {
			if ev.Epoch > sinceEpoch {
				r.repairMu.Unlock()
				return ev, true
			}
		}
		r.repairMu.Unlock()
		if time.Now().After(deadline) {
			return health.RepairEvent{}, false
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// CurrentEpoch reads the repair epoch a live shard currently serves — the
// baseline a WaitRepair measures progress against.
func (r *Rig) CurrentEpoch() uint64 {
	for _, s := range r.Shards {
		if s.Killed.Load() {
			continue
		}
		if ring := s.Node.Ring(); ring != nil {
			return ring.Map().Epoch
		}
	}
	return 0
}

// refreshShardView re-reads the installed map from a live shard, so
// directoryFor and the audit probes route by the post-repair ring rather
// than the map the rig installed at build time.
func (r *Rig) refreshShardView() {
	for _, s := range r.Shards {
		if s.Killed.Load() {
			continue
		}
		ring := s.Node.Ring()
		if ring == nil {
			continue
		}
		m := ring.Map()
		r.shardMu.Lock()
		if shard.CompareMaps(m, r.shardMap) > 0 {
			r.shardMap, r.shardRing = m, ring
		}
		r.shardMu.Unlock()
		return
	}
}

// KillShard hard-kills the named shard: its gossip agent, wire server and
// fault proxy all go down, so peer dials are refused — the in-process
// analog of a machine loss. Reports whether a live shard was killed.
func (r *Rig) KillShard(id string) bool {
	for _, s := range r.Shards {
		if s.ID != id || s.Killed.Load() {
			continue
		}
		s.Killed.Store(true)
		if s.Agent != nil {
			s.Agent.Close()
		}
		s.srv.Close()
		if s.Proxy != nil {
			s.Proxy.Close()
		}
		return true
	}
	return false
}

// PartitionShard imposes (on=true) or heals the one-way partition on the
// named shard's proxy: inbound requests still land, but its replies
// vanish — the shard can hear and not be heard.
func (r *Rig) PartitionShard(id string, on bool) bool {
	for _, s := range r.Shards {
		if s.ID == id && s.Proxy != nil && !s.Killed.Load() {
			s.Proxy.PartitionOneWay(on)
			return true
		}
	}
	return false
}

// Leader returns the index of the live member currently reporting
// itself leader, or -1 mid-election.
func (r *Rig) Leader() int {
	for i, mem := range r.Members {
		if mem.Killed.Load() {
			continue
		}
		if st := mem.Node.Status(); st.Role == "leader" {
			return i
		}
	}
	return -1
}

// WaitLeader polls until some live member is leader, returning its index
// or -1 on timeout.
func (r *Rig) WaitLeader(timeout time.Duration) int {
	deadline := time.Now().Add(timeout)
	for {
		if i := r.Leader(); i >= 0 {
			return i
		}
		if time.Now().After(deadline) {
			return -1
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// KillLeader hard-closes the current leader's node (listener, shippers,
// election loop — the in-process analog of kill -9) and returns its
// index, or -1 when no member holds the lease right now.
func (r *Rig) KillLeader() int {
	i := r.Leader()
	if i < 0 {
		return -1
	}
	r.Members[i].Killed.Store(true)
	r.Members[i].Node.Close()
	return i
}

// MemberAddrs lists every constellation address (single-MDM rigs: just
// MDMAddr) — the MirrorClient seed list.
func (r *Rig) MemberAddrs() []string {
	if len(r.Members) == 0 {
		return []string{r.MDMAddr}
	}
	addrs := make([]string, len(r.Members))
	for i, mem := range r.Members {
		addrs[i] = mem.Addr
	}
	return addrs
}

// RecordAcked notes a quorum-acknowledged workload registration for the
// teardown audit.
func (r *Rig) RecordAcked(reg wire.RegisterRequest) {
	r.ackedMu.Lock()
	r.acked = append(r.acked, reg)
	r.ackedMu.Unlock()
}

// auditMDM is the directory the end-of-run audit reads: the surviving
// leader of a replicated rig (any live member as a fallback), or the
// single MDM.
func (r *Rig) auditMDM() *core.MDM {
	if len(r.Members) == 0 {
		return r.MDM
	}
	if i := r.Leader(); i >= 0 {
		return r.Members[i].MDM
	}
	for _, mem := range r.Members {
		if !mem.Killed.Load() {
			return mem.MDM
		}
	}
	return r.Members[0].MDM
}

// newProxy builds one fault proxy with the spec's initial settings and a
// positionally derived RNG seed.
func (r *Rig) newProxy(backend string, l *LinkSpec, linkIdx int) (*faultinject.Proxy, error) {
	p, err := faultinject.NewProxy(backend, linkSeed(r.Seed, r.rigIdx, linkIdx))
	if err != nil {
		return nil, err
	}
	if l.Latency > 0 || l.Jitter > 0 {
		p.SetLatency(l.Latency, l.Jitter)
	}
	if l.Bandwidth > 0 {
		p.SetBandwidth(l.Bandwidth)
	}
	return p, nil
}

// storeLink resolves the link spec for store i: the per-store override,
// else the default, else nil (bare TCP).
func (r *Rig) storeLink(i int) *LinkSpec {
	if l, ok := r.Spec.Links.PerStore[fmt.Sprintf("store-%d", i)]; ok {
		return l
	}
	return r.Spec.Links.Stores
}

func (r *Rig) buildStore(i int) (*StoreNode, error) {
	eng := store.NewEngine(fmt.Sprintf("store-%d", i))
	srv := store.NewServer(eng, r.Signer)
	if err := srv.Start("127.0.0.1:0"); err != nil {
		return nil, err
	}
	node := &StoreNode{Index: i, Engine: eng, Server: srv, Addr: srv.Addr()}
	if l := r.storeLink(i); l != nil {
		p, err := r.newProxy(srv.Addr(), l, i+1)
		if err != nil {
			srv.Close()
			return nil, err
		}
		node.Proxy = p
		node.Addr = p.Addr()
	}
	return node, nil
}

// register records a coverage path for a node at the MDM — on a sharded
// rig, at the path owner's home shard, exactly as the ring routes it.
func (r *Rig) register(node *StoreNode, path string) error {
	p := xpath.MustParse(path)
	m := r.MDM
	if len(r.Shards) > 0 {
		if owner, ok := coverage.UserOf(p); ok {
			m = r.directoryFor(owner)
		}
	}
	if err := m.Register(coverage.StoreID(node.Engine.ID()), node.Addr, p); err != nil {
		return err
	}
	node.Coverage = append(node.Coverage, path)
	return nil
}

// seedSplit builds the E16 topology: one user "u" whose address book is
// split across every store by item type.
func (r *Rig) seedSplit() error {
	spec := &r.Spec
	r.Users = []string{"u"}
	book := workload.AddressBookOfSize(spec.SizeBytes, workload.Rand(dataSeed(r.Seed, r.rigIdx, 0)))
	pieces := make([]*xmltree.Node, spec.Stores)
	for i := range pieces {
		pieces[i] = xmltree.New("address-book")
	}
	for i, item := range book.ChildrenNamed("item") {
		it := item.Clone()
		it.SetAttr("type", fmt.Sprintf("t%d", i%spec.Stores))
		pieces[i%spec.Stores].Add(it)
	}
	bookPath := xpath.MustParse("/user[@id='u']/address-book")
	for i, node := range r.Stores {
		if _, err := node.Engine.Put("u", bookPath, pieces[i]); err != nil {
			return err
		}
		reg := fmt.Sprintf("/user[@id='u']/address-book/item[@type='t%d']", i)
		if err := r.register(node, reg); err != nil {
			return err
		}
		r.Paths = append(r.Paths, reg)
	}
	return nil
}

// seedSharded builds the E19/E20 topology: Users owners, user i's
// profile held whole by store i mod Stores. ProfileFull adds devices,
// calendar and reach-me preferences alongside the address book.
func (r *Rig) seedSharded() error {
	spec := &r.Spec
	for i := 0; i < spec.Users; i++ {
		user := workload.UserID(i)
		r.Users = append(r.Users, user)
		node := r.Stores[i%spec.Stores]
		rng := workload.Rand(dataSeed(r.Seed, r.rigIdx, i+1))
		put := func(section string, doc *xmltree.Node) error {
			p := fmt.Sprintf("/user[@id='%s']/%s", user, section)
			if _, err := node.Engine.Put(user, xpath.MustParse(p), doc); err != nil {
				return err
			}
			return r.register(node, p)
		}
		if err := put("address-book", workload.AddressBookOfSize(spec.SizeBytes, rng)); err != nil {
			return err
		}
		if spec.Profile == ProfileFull {
			if err := put("devices", workload.Devices(user)); err != nil {
				return err
			}
			if err := put("calendar", workload.Calendar(8, rng)); err != nil {
				return err
			}
			if err := put("preferences", workload.ReachMePreferences()); err != nil {
				return err
			}
		}
	}
	return nil
}

// startRegistrar attaches a heartbeating registrar to a node. The
// registrar talks to the MDM directly (not through the client-facing
// proxy): store liveness is a control-plane concern, and a blackout
// silences it explicitly (see SilenceStore).
func (r *Rig) startRegistrar(node *StoreNode) error {
	reg := store.NewRegistrar(store.RegistrarConfig{
		Store:    node.Engine.ID(),
		Addr:     node.Addr,
		MDM:      r.MDMSrv.Addr(),
		Coverage: node.Coverage,
		Interval: r.Spec.LeaseTTL / 2,
	})
	if err := reg.Start(context.Background()); err != nil {
		reg.Close()
		return err
	}
	node.Registrar = reg
	return nil
}

// Link resolves a link name ("mdm" or "store-N") to its fault proxy;
// nil when the link has no proxy.
func (r *Rig) Link(name string) *faultinject.Proxy {
	if name == "mdm" {
		return r.MDMProxy
	}
	if i := storeIndex(name); i >= 0 && i < len(r.Stores) {
		return r.Stores[i].Proxy
	}
	return nil
}

// SilenceStore blacks out a store: the link goes dark and the registrar
// stops, so the store neither serves nor renews its lease — the MDM's
// lease machinery quarantines it after TTL+grace.
func (r *Rig) SilenceStore(i int) {
	node := r.Stores[i]
	if node.Proxy != nil {
		node.Proxy.Blackout(true)
	}
	if node.Registrar != nil {
		node.Registrar.Close()
		node.Registrar = nil
	}
	node.Dead = true
}

// RestoreStore lifts a store's blackout. Heartbeats do not resume —
// that is what a re-registration herd (ReviveStore) is for, mirroring a
// real store process restarting.
func (r *Rig) RestoreStore(i int) {
	if node := r.Stores[i]; node.Proxy != nil {
		node.Proxy.Blackout(false)
	}
}

// ReviveStore re-registers a dead store's whole coverage and resumes
// heartbeats — one member of the thundering herd.
func (r *Rig) ReviveStore(ctx context.Context, i int) error {
	node := r.Stores[i]
	if node.Proxy != nil {
		node.Proxy.Blackout(false)
	}
	if r.Spec.Heartbeats {
		if err := r.startRegistrar(node); err != nil {
			return err
		}
	} else {
		for _, p := range node.Coverage {
			if err := r.MDM.Register(coverage.StoreID(node.Engine.ID()), node.Addr, xpath.MustParse(p)); err != nil {
				return err
			}
		}
	}
	node.Dead = false
	return nil
}

// ExpectedRegistrations is the rig's full coverage count — what the
// MDM's registry must hold when no registration has been lost.
func (r *Rig) ExpectedRegistrations() int {
	n := 0
	for _, node := range r.Stores {
		n += len(node.Coverage)
	}
	return n
}

// auditCoverage fills the audit's registration counts. A single-MDM rig
// reports its registry size. A replicated rig instead counts which seed
// coverage paths the surviving leader still holds (the workload may have
// legitimately registered more, so a raw registry size proves nothing)
// and how many quorum-acked workload registrations went missing — the
// zero-lost claim a leader kill must not break.
func (r *Rig) auditCoverage(audit *RegistrationAudit) {
	r.ackedMu.Lock()
	acked := append([]wire.RegisterRequest(nil), r.acked...)
	r.ackedMu.Unlock()
	if len(r.Members) == 0 && len(r.Shards) == 0 && len(acked) == 0 {
		audit.Registered = r.auditMDM().Registry.Len()
		return
	}
	canon := func(store, path string) string {
		return store + "|" + xpath.MustParse(path).String()
	}
	// A sharded rig's directory is the union of its slices (a mid-drain
	// source may briefly hold a moved owner alongside its new home, so a
	// raw sum would double-count).
	// A killed shard's MDM is excluded: its slice is stale by definition,
	// and counting it could mask a registration the repair failed to move.
	present := map[string]bool{}
	if len(r.Shards) > 0 {
		for _, s := range r.Shards {
			if s.Killed.Load() {
				continue
			}
			for _, reg := range s.MDM.CoverageSnapshot() {
				present[reg.Store+"|"+reg.Path] = true
			}
		}
	} else {
		for _, reg := range r.auditMDM().CoverageSnapshot() {
			present[reg.Store+"|"+reg.Path] = true
		}
	}
	for _, node := range r.Stores {
		for _, p := range node.Coverage {
			if present[canon(node.Engine.ID(), p)] {
				audit.Registered++
			}
		}
	}
	audit.Acked = len(acked)
	for _, reg := range acked {
		if !present[canon(reg.Store, reg.Path)] {
			audit.Lost++
		}
	}
	if len(r.Shards) > 0 && r.Spec.AutoRepair {
		r.auditConstellation(audit)
	}
}

// constellationView summarizes the live shards' state: how many distinct
// (epoch, version) map coordinates they serve, and how many owners more
// than one live shard claims to own (coverage held on two slices at
// once — the split-brain signature, transient only while a handoff
// drains).
func (r *Rig) constellationView() (views, splitBrain int) {
	coords := map[[2]uint64]bool{}
	ownersAt := map[string]map[string]bool{}
	for _, s := range r.Shards {
		if s.Killed.Load() {
			continue
		}
		if ring := s.Node.Ring(); ring != nil {
			m := ring.Map()
			coords[[2]uint64{m.Epoch, m.Version}] = true
		}
		for _, reg := range s.MDM.CoverageSnapshot() {
			owner, ok := coverage.UserOf(xpath.MustParse(reg.Path))
			if !ok {
				continue
			}
			if ownersAt[owner] == nil {
				ownersAt[owner] = map[string]bool{}
			}
			ownersAt[owner][s.ID] = true
		}
	}
	for _, at := range ownersAt {
		if len(at) > 1 {
			splitBrain++
		}
	}
	return len(coords), splitBrain
}

// auditConstellation records post-run convergence for an auto-repair
// rig: every live shard on one map coordinate, no owner held by two
// slices. Handoff drains and anti-entropy fencing both run on timers, so
// the audit polls briefly before recording what it sees.
func (r *Rig) auditConstellation(audit *RegistrationAudit) {
	deadline := time.Now().Add(5 * time.Second)
	views, splitBrain := r.constellationView()
	for (views != 1 || splitBrain != 0) && time.Now().Before(deadline) {
		time.Sleep(20 * time.Millisecond)
		views, splitBrain = r.constellationView()
	}
	audit.MapViews = views
	audit.SplitBrainOwners = splitBrain
}

// Close tears the rig down in dependency order: registrars first (stop
// heartbeat traffic), then the client-facing proxy and the MDM (stop
// request traffic, close pooled store connections), then the store
// proxies and servers. Every component's Close blocks until its
// goroutines exit, so a closed rig leaks nothing.
func (r *Rig) Close() {
	for _, node := range r.Stores {
		if node.Registrar != nil {
			node.Registrar.Close()
			node.Registrar = nil
		}
	}
	if r.MDMProxy != nil {
		r.MDMProxy.Close()
	}
	if r.MDMSrv != nil {
		r.MDMSrv.Close()
	}
	// Replicated members own their MDMs (r.MDM aliases the leader's);
	// close nodes first so no shipper is mid-append when the journals go.
	for _, mem := range r.Members {
		mem.Node.Close()
	}
	for _, mem := range r.Members {
		mem.MDM.Close()
		os.RemoveAll(mem.Dir)
	}
	// Shards own their MDMs (r.MDM aliases the first shard's); stop the
	// gossip agents first (no repair mid-teardown), then the wire servers
	// and proxies, then the routing nodes' forwarding connections and
	// drain timers, then the directories themselves.
	for _, s := range r.Shards {
		if s.Agent != nil {
			s.Agent.Close()
		}
	}
	for _, s := range r.Shards {
		if s.srv != nil {
			s.srv.Close()
		}
		if s.Proxy != nil {
			s.Proxy.Close()
		}
	}
	for _, s := range r.Shards {
		s.Node.Close()
		s.MDM.Close()
	}
	if r.MDM != nil && len(r.Members) == 0 && len(r.Shards) == 0 {
		r.MDM.Close()
	}
	for _, node := range r.Stores {
		if node.Proxy != nil {
			node.Proxy.Close()
		}
		if node.Server != nil {
			node.Server.Close()
		}
	}
}

// Constellation is a mirrored-MDM federation built for the replication
// experiments (E13): n mirrors joined pairwise.
type Constellation struct {
	MDMs    []*core.MDM
	Mirrors []*federation.Mirror
	Addrs   []string
	servers []*wire.Server
}

// BuildConstellation assembles and joins n mirrored MDMs.
func BuildConstellation(n int) (*Constellation, error) {
	signer := NewSigner()
	c := &Constellation{}
	for i := 0; i < n; i++ {
		m := core.New(core.Config{Schema: schema.GUP(), Signer: signer, GrantTTL: time.Minute})
		mir := federation.NewMirror(m)
		srv, err := mir.Serve("127.0.0.1:0")
		if err != nil {
			mir.Close()
			m.Close()
			c.Close()
			return nil, err
		}
		c.MDMs = append(c.MDMs, m)
		c.Mirrors = append(c.Mirrors, mir)
		c.Addrs = append(c.Addrs, srv.Addr())
		c.servers = append(c.servers, srv)
	}
	if err := federation.Join(c.Mirrors, c.Addrs); err != nil {
		c.Close()
		return nil, err
	}
	return c, nil
}

// Close tears the constellation down: wire servers, then mirrors, then
// MDMs.
func (c *Constellation) Close() {
	for _, s := range c.servers {
		s.Close()
	}
	for _, m := range c.Mirrors {
		m.Close()
	}
	for _, m := range c.MDMs {
		m.Close()
	}
}

// probeContext is the request context end-of-run audit probes resolve
// under: the owner asking about themselves.
func probeContext(owner string) policy.Context {
	return policy.Context{Requester: owner, Role: "self"}
}

// probeCoverage resolves one chaining request per registered path owner,
// verifying end-of-run registration integrity (the zero-lost-
// registrations audit). Returns the number of failed probes.
func (r *Rig) probeCoverage(ctx context.Context) int {
	if len(r.Shards) > 0 {
		r.refreshShardView()
	}
	failures := 0
	probe := func(owner, path string) {
		// directoryFor routes each probe to the owner's home shard on a
		// sharded rig (post-rebalance ring included) and to the audit MDM
		// everywhere else.
		_, err := r.directoryFor(owner).Resolve(ctx, &wire.ResolveRequest{
			Path:    path,
			Context: probeContext(owner),
			Verb:    token.VerbFetch,
		})
		if err != nil {
			failures++
		}
	}
	switch r.Spec.Layout {
	case LayoutSplit:
		for _, p := range r.Paths {
			probe("u", p)
		}
	default:
		for _, u := range r.Users {
			probe(u, fmt.Sprintf("/user[@id='%s']/address-book", u))
		}
	}
	return failures
}
