package policy

import (
	"errors"
	"fmt"
	"strings"
	"time"
)

// This file gives conditions a compact textual form so privacy-shield rules
// can be provisioned over the wire and stored:
//
//	always
//	requester=bob
//	role=family
//	purpose=query
//	hours(09:00,18:00)
//	weekday(Mon,Fri)
//	and(e1,e2,…)  or(e1,e2,…)  not(e)
//
// Encode and ParseCond round-trip every condition built from this package's
// combinators.

// ErrCondSyntax wraps condition-expression parse failures.
var ErrCondSyntax = errors.New("policy: bad condition expression")

// Encode renders a condition in the provisioning syntax. Unknown Condition
// implementations encode as "always" (fail-open for encoding only; callers
// building rules from custom conditions should keep them server-side).
func Encode(c Condition) string {
	switch v := c.(type) {
	case nil:
		return "always"
	case Always:
		return "always"
	case RequesterIs:
		return "requester=" + string(v)
	case RoleIs:
		return "role=" + string(v)
	case PurposeIs:
		return "purpose=" + string(v)
	case TimeBetween:
		return fmt.Sprintf("hours(%02d:%02d,%02d:%02d)", v.From/60, v.From%60, v.To/60, v.To%60)
	case Weekdays:
		parts := make([]string, len(v))
		for i, d := range v {
			parts[i] = d.String()[:3]
		}
		return "weekday(" + strings.Join(parts, ",") + ")"
	case And:
		return "and(" + encodeList(v) + ")"
	case Or:
		return "or(" + encodeList(v) + ")"
	case Not:
		return "not(" + Encode(v.C) + ")"
	default:
		return "always"
	}
}

func encodeList(cs []Condition) string {
	parts := make([]string, len(cs))
	for i, c := range cs {
		parts[i] = Encode(c)
	}
	return strings.Join(parts, ",")
}

// ParseCond parses the provisioning syntax. An empty string means Always.
func ParseCond(expr string) (Condition, error) {
	expr = strings.TrimSpace(expr)
	if expr == "" {
		return Always{}, nil
	}
	p := &condParser{in: expr}
	c, err := p.parse()
	if err != nil {
		return nil, fmt.Errorf("%w: %s in %q", ErrCondSyntax, err, expr)
	}
	if p.pos != len(p.in) {
		return nil, fmt.Errorf("%w: trailing input at %d in %q", ErrCondSyntax, p.pos, expr)
	}
	return c, nil
}

type condParser struct {
	in  string
	pos int
}

func (p *condParser) parse() (Condition, error) {
	word := p.word()
	switch {
	case word == "always":
		return Always{}, nil
	case p.peek() == '=':
		p.pos++
		val := p.value()
		switch word {
		case "requester":
			return RequesterIs(val), nil
		case "role":
			return RoleIs(val), nil
		case "purpose":
			return PurposeIs(val), nil
		}
		return nil, fmt.Errorf("unknown field %q", word)
	case p.peek() == '(':
		p.pos++
		switch word {
		case "and", "or":
			var list []Condition
			for {
				c, err := p.parse()
				if err != nil {
					return nil, err
				}
				list = append(list, c)
				if p.peek() == ',' {
					p.pos++
					continue
				}
				break
			}
			if !p.eat(')') {
				return nil, errors.New("missing ')'")
			}
			if word == "and" {
				return And(list), nil
			}
			return Or(list), nil
		case "not":
			c, err := p.parse()
			if err != nil {
				return nil, err
			}
			if !p.eat(')') {
				return nil, errors.New("missing ')'")
			}
			return Not{C: c}, nil
		case "hours":
			from := p.value()
			if !p.eat(',') {
				return nil, errors.New("hours needs two times")
			}
			to := p.value()
			if !p.eat(')') {
				return nil, errors.New("missing ')'")
			}
			fm, err := parseMinutes(from)
			if err != nil {
				return nil, err
			}
			tm, err := parseMinutes(to)
			if err != nil {
				return nil, err
			}
			return TimeBetween{From: fm, To: tm}, nil
		case "weekday":
			var days Weekdays
			for {
				d := p.value()
				wd, err := parseWeekday(d)
				if err != nil {
					return nil, err
				}
				days = append(days, wd)
				if p.peek() == ',' {
					p.pos++
					continue
				}
				break
			}
			if !p.eat(')') {
				return nil, errors.New("missing ')'")
			}
			return days, nil
		}
		return nil, fmt.Errorf("unknown function %q", word)
	default:
		return nil, fmt.Errorf("unexpected %q", word)
	}
}

func parseMinutes(s string) (int, error) {
	var h, m int
	if _, err := fmt.Sscanf(s, "%d:%d", &h, &m); err != nil || h < 0 || h > 23 || m < 0 || m > 59 {
		return 0, fmt.Errorf("bad time %q", s)
	}
	return h*60 + m, nil
}

func parseWeekday(s string) (time.Weekday, error) {
	for d := time.Sunday; d <= time.Saturday; d++ {
		if strings.EqualFold(d.String()[:3], s) {
			return d, nil
		}
	}
	return 0, fmt.Errorf("bad weekday %q", s)
}

// word reads an identifier.
func (p *condParser) word() string {
	start := p.pos
	for p.pos < len(p.in) {
		c := p.in[p.pos]
		if c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' {
			p.pos++
			continue
		}
		break
	}
	return p.in[start:p.pos]
}

// value reads until a delimiter (comma, paren, whitespace). Values may not
// contain spaces; identities with spaces should be escaped upstream.
func (p *condParser) value() string {
	start := p.pos
	for p.pos < len(p.in) {
		c := p.in[p.pos]
		if c == ',' || c == ')' || c == '(' || c == ' ' || c == '\t' {
			break
		}
		p.pos++
	}
	return p.in[start:p.pos]
}

func (p *condParser) eat(c byte) bool {
	if p.pos < len(p.in) && p.in[p.pos] == c {
		p.pos++
		return true
	}
	return false
}

func (p *condParser) peek() byte {
	if p.pos < len(p.in) {
		return p.in[p.pos]
	}
	return 0
}
