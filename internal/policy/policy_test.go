package policy

import (
	"strings"
	"testing"
	"time"

	"gupster/internal/schema"
	"gupster/internal/xpath"
)

func mp(s string) xpath.Path { return xpath.MustParse(s) }

// at builds a context timestamped at the given weekday and clock time.
func at(day time.Weekday, clock string) time.Time {
	// 2026-07-06 is a Monday.
	base := time.Date(2026, 7, 6, 0, 0, 0, 0, time.UTC)
	base = base.AddDate(0, 0, (int(day)-int(base.Weekday())+7)%7)
	tt, err := time.Parse("15:04", clock)
	if err != nil {
		panic(err)
	}
	return time.Date(base.Year(), base.Month(), base.Day(), tt.Hour(), tt.Minute(), 0, 0, time.UTC)
}

// The paper's worked privacy shield (§4.6): co-workers see presence during
// working hours; boss and family see presence any time; family sees the
// personal address book and the calendar.
func paperShield() *Shield {
	return &Shield{
		Owner: "alice",
		Rules: []Rule{
			{ID: "coworker-presence", Path: mp("/user[@id='alice']/presence"),
				Cond: And{RoleIs("co-worker"), HoursBetween("09:00", "18:00")}, Effect: Permit},
			{ID: "boss-presence", Path: mp("/user[@id='alice']/presence"),
				Cond: RoleIs("boss"), Effect: Permit},
			{ID: "family-presence", Path: mp("/user[@id='alice']/presence"),
				Cond: RoleIs("family"), Effect: Permit},
			{ID: "family-personal-ab", Path: mp("/user[@id='alice']/address-book/item[@type='personal']"),
				Cond: RoleIs("family"), Effect: Permit},
			{ID: "family-calendar", Path: mp("/user[@id='alice']/calendar"),
				Cond: RoleIs("family"), Effect: Permit},
		},
	}
}

func TestPaperShield(t *testing.T) {
	s := paperShield()
	presence := mp("/user[@id='alice']/presence")

	// Co-worker during working hours: permit.
	d := s.Decide(presence, Context{Requester: "bob", Role: "co-worker", Time: at(time.Monday, "10:00")})
	if !d.Full(presence) {
		t.Errorf("co-worker at 10:00: %+v", d)
	}
	// Co-worker at night: deny.
	d = s.Decide(presence, Context{Requester: "bob", Role: "co-worker", Time: at(time.Monday, "23:00")})
	if d.Granted() {
		t.Errorf("co-worker at 23:00 granted: %+v", d)
	}
	// Boss any time.
	d = s.Decide(presence, Context{Requester: "carol", Role: "boss", Time: at(time.Sunday, "03:00")})
	if !d.Granted() {
		t.Errorf("boss at 03:00 denied")
	}
	// Family sees calendar.
	cal := mp("/user[@id='alice']/calendar")
	d = s.Decide(cal, Context{Requester: "mom", Role: "family"})
	if !d.Full(cal) {
		t.Errorf("family calendar: %+v", d)
	}
	// Third party sees nothing.
	d = s.Decide(presence, Context{Requester: "spammer", Role: "third-party", Time: at(time.Monday, "10:00")})
	if d.Granted() {
		t.Errorf("third party granted")
	}
}

func TestNarrowedGrant(t *testing.T) {
	s := paperShield()
	// Family asks for the whole address book but is only permitted the
	// personal items: the decision narrows the grant.
	book := mp("/user[@id='alice']/address-book")
	d := s.Decide(book, Context{Requester: "mom", Role: "family"})
	if !d.Granted() {
		t.Fatalf("family address book denied")
	}
	if d.Full(book) {
		t.Fatalf("family should not get the whole book")
	}
	if len(d.Grants) != 1 || d.Grants[0].String() != "/user[@id='alice']/address-book/item[@type='personal']" {
		t.Errorf("grants = %v", d.Grants)
	}
}

func TestOwnerAccess(t *testing.T) {
	s := paperShield()
	wallet := mp("/user[@id='alice']/wallet")
	d := s.Decide(wallet, Context{Requester: "alice", Role: "self"})
	if !d.Full(wallet) {
		t.Errorf("owner denied own wallet: %+v", d)
	}
	if d.RuleID != "owner" {
		t.Errorf("rule = %q", d.RuleID)
	}
	// An administrative lock outranks the owner.
	s.Rules = append(s.Rules, Rule{
		ID: "fraud-lock", Path: mp("/user[@id='alice']/wallet"),
		Effect: Deny, Priority: ownerPriority + 1,
	})
	d = s.Decide(wallet, Context{Requester: "alice", Role: "self"})
	if d.Granted() {
		t.Errorf("fraud lock bypassed: %+v", d)
	}
}

func TestDenyWinsTies(t *testing.T) {
	s := &Shield{Owner: "u", Rules: []Rule{
		{ID: "p", Path: mp("/user[@id='u']/presence"), Effect: Permit},
		{ID: "d", Path: mp("/user[@id='u']/presence"), Effect: Deny},
	}}
	d := s.Decide(mp("/user[@id='u']/presence"), Context{Requester: "x"})
	if d.Granted() || d.RuleID != "d" {
		t.Errorf("tie not resolved to deny: %+v", d)
	}
}

func TestPriorityOverride(t *testing.T) {
	s := &Shield{Owner: "u", Rules: []Rule{
		{ID: "deny-all", Path: mp("/user[@id='u']"), Effect: Deny, Priority: 0},
		{ID: "allow-presence", Path: mp("/user[@id='u']/presence"), Effect: Permit, Priority: 5},
	}}
	// The higher-priority permit on presence beats the blanket deny.
	d := s.Decide(mp("/user[@id='u']/presence"), Context{Requester: "x"})
	if !d.Granted() || d.RuleID != "allow-presence" {
		t.Errorf("priority override failed: %+v", d)
	}
	// But the calendar stays denied.
	d = s.Decide(mp("/user[@id='u']/calendar"), Context{Requester: "x"})
	if d.Granted() {
		t.Errorf("blanket deny leaked: %+v", d)
	}
}

func TestPartialGrantSuppressedByDeny(t *testing.T) {
	s := &Shield{Owner: "u", Rules: []Rule{
		{ID: "allow-personal", Path: mp("/user[@id='u']/address-book/item[@type='personal']"), Effect: Permit, Priority: 1},
		{ID: "deny-book", Path: mp("/user[@id='u']/address-book"), Effect: Deny, Priority: 2},
	}}
	d := s.Decide(mp("/user[@id='u']/address-book"), Context{Requester: "x"})
	if d.Granted() {
		t.Errorf("higher-priority deny should suppress narrowed grant: %+v", d)
	}
}

func TestDefaultDeny(t *testing.T) {
	s := &Shield{Owner: "u"}
	if d := s.Decide(mp("/user[@id='u']/presence"), Context{Requester: "x"}); d.Granted() {
		t.Error("empty shield must deny")
	}
}

func TestConditions(t *testing.T) {
	mon10 := Context{Time: at(time.Monday, "10:00"), Requester: "r", Role: "family", Purpose: PurposeQuery, Location: "home"}
	cases := []struct {
		c    Condition
		want bool
	}{
		{Always{}, true},
		{RequesterIs("r"), true},
		{RequesterIs("q"), false},
		{RoleIs("family"), true},
		{RoleIs("boss"), false},
		{PurposeIs(PurposeQuery), true},
		{PurposeIs(PurposeCache), false},
		{HoursBetween("09:00", "18:00"), true},
		{HoursBetween("18:00", "09:00"), false}, // wrap-around window, 10:00 outside
		{HoursBetween("22:00", "11:00"), true},  // wrap-around window, 10:00 inside
		{Weekdays{time.Monday}, true},
		{Weekdays{time.Saturday, time.Sunday}, false},
		{And{RoleIs("family"), PurposeIs(PurposeQuery)}, true},
		{And{RoleIs("family"), PurposeIs(PurposeCache)}, false},
		{Or{RoleIs("boss"), RoleIs("family")}, true},
		{Or{RoleIs("boss"), RoleIs("co-worker")}, false},
		{Not{RoleIs("boss")}, true},
		{Not{RoleIs("family")}, false},
	}
	for i, c := range cases {
		if got := c.c.Eval(mon10); got != c.want {
			t.Errorf("case %d (%s): got %v, want %v", i, c.c, got, c.want)
		}
	}
}

func TestConditionStrings(t *testing.T) {
	c := And{RoleIs("family"), Or{TimeBetween{540, 1080}, Weekdays{time.Friday}}, Not{PurposeIs(PurposeCache)}}
	s := c.String()
	for _, frag := range []string{"role=family", "time in [09:00,18:00)", "Fri", "not purpose=cache"} {
		if !strings.Contains(s, frag) {
			t.Errorf("%q missing %q", s, frag)
		}
	}
}

func TestHoursBetweenPanicsOnGarbage(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("want panic")
		}
	}()
	HoursBetween("25:99", "09:00")
}

func TestZeroTimeUsesNow(t *testing.T) {
	// A window covering the whole day always matches regardless of "now".
	if !(TimeBetween{0, 1440}).Eval(Context{}) {
		t.Error("all-day window should match")
	}
	if !(Weekdays{0, 1, 2, 3, 4, 5, 6}).Eval(Context{}) {
		t.Error("all-week condition should match")
	}
}

func TestRepositoryAndAdministration(t *testing.T) {
	repo := NewRepository()
	ap := &AdministrationPoint{Repo: repo, ValidatePath: schema.GUP().ValidatePath}

	if _, err := repo.Get("alice"); err == nil {
		t.Error("Get on empty repo should fail")
	}
	r1 := Rule{ID: "r1", Path: mp("/user[@id='alice']/presence"), Effect: Permit, Cond: RoleIs("family")}
	if err := ap.PutRule("alice", r1); err != nil {
		t.Fatalf("PutRule: %v", err)
	}
	// Schema-invalid scope rejected (constraint checking, req. 11).
	bad := Rule{ID: "r2", Path: mp("/user[@id='alice']/hobbies"), Effect: Permit}
	if err := ap.PutRule("alice", bad); err == nil {
		t.Error("invalid scope accepted")
	}
	// Replace in place.
	r1.Effect = Deny
	if err := ap.PutRule("alice", r1); err != nil {
		t.Fatalf("replace: %v", err)
	}
	s, err := repo.Get("alice")
	if err != nil || len(s.Rules) != 1 || s.Rules[0].Effect != Deny {
		t.Fatalf("after replace: %+v, %v", s, err)
	}
	// Delete.
	if err := ap.DeleteRule("alice", "r1"); err != nil {
		t.Fatalf("DeleteRule: %v", err)
	}
	if err := ap.DeleteRule("alice", "r1"); err == nil {
		t.Error("double delete should fail")
	}
	if err := ap.DeleteRule("nobody", "r1"); err == nil {
		t.Error("delete for unknown owner should fail")
	}
	// Missing ID / path rejected.
	if err := ap.PutRule("alice", Rule{Path: mp("/user")}); err == nil {
		t.Error("rule without ID accepted")
	}
	if err := ap.PutRule("alice", Rule{ID: "x"}); err == nil {
		t.Error("rule without path accepted")
	}
}

func TestRepositoryIsolation(t *testing.T) {
	repo := NewRepository()
	s := &Shield{Owner: "u", Rules: []Rule{{ID: "a", Path: mp("/user"), Effect: Permit}}}
	repo.Put(s)
	s.Rules[0].Effect = Deny // mutate caller's copy
	got, _ := repo.Get("u")
	if got.Rules[0].Effect != Permit {
		t.Error("repository shares memory with caller")
	}
	got.Rules[0].Effect = Deny // mutate returned copy
	got2, _ := repo.Get("u")
	if got2.Rules[0].Effect != Permit {
		t.Error("repository shares memory with reader")
	}
}

func TestDecisionPoint(t *testing.T) {
	repo := NewRepository()
	repo.Put(paperShield())
	pdp := &DecisionPoint{Repo: repo, DefaultOwnerAccess: true}

	d := pdp.Decide("alice", mp("/user[@id='alice']/presence"),
		Context{Requester: "mom", Role: "family"})
	if !d.Granted() {
		t.Errorf("family presence denied")
	}
	// Unknown user with owner bootstrap.
	p := mp("/user[@id='bob']/presence")
	d = pdp.Decide("bob", p, Context{Requester: "bob"})
	if !d.Full(p) {
		t.Errorf("owner bootstrap failed: %+v", d)
	}
	// Unknown user, foreign requester.
	if d := pdp.Decide("bob", p, Context{Requester: "eve"}); d.Granted() {
		t.Error("unknown user leaked to foreign requester")
	}
	// Without bootstrap even the owner is denied.
	pdp2 := &DecisionPoint{Repo: repo}
	if d := pdp2.Decide("bob", p, Context{Requester: "bob"}); d.Granted() {
		t.Error("bootstrap off but owner granted")
	}
}

func TestReplicaSync(t *testing.T) {
	repo := NewRepository()
	repo.Put(paperShield())
	rep := NewReplica()

	// Before sync: deny (no shield).
	p := mp("/user[@id='alice']/presence")
	ctx := Context{Requester: "mom", Role: "family"}
	if d := rep.Decide("alice", p, ctx); d.Granted() {
		t.Error("unsynced replica granted")
	}
	if n := rep.SyncFrom(repo); n != 1 {
		t.Errorf("first sync transferred %d shields", n)
	}
	if d := rep.Decide("alice", p, ctx); !d.Granted() {
		t.Error("synced replica denied")
	}
	// No changes → no transfer.
	if n := rep.SyncFrom(repo); n != 0 {
		t.Errorf("idle sync transferred %d", n)
	}
	// A change to another user transfers exactly one shield.
	repo.Put(&Shield{Owner: "bob"})
	if n := rep.SyncFrom(repo); n != 1 {
		t.Errorf("incremental sync transferred %d", n)
	}
}

func TestEffectString(t *testing.T) {
	if Deny.String() != "deny" || Permit.String() != "permit" {
		t.Error("Effect strings")
	}
}

func TestRuleString(t *testing.T) {
	r := Rule{ID: "r1", Path: mp("/user/presence"), Effect: Permit, Priority: 3}
	s := r.String()
	for _, frag := range []string{"r1", "permit", "prio 3", "/user/presence", "always"} {
		if !strings.Contains(s, frag) {
			t.Errorf("%q missing %q", s, frag)
		}
	}
}
