// Package policy implements the GUPster privacy shield (paper §4.6): the
// per-user access-control rules that govern who may see which profile
// components and when, together with the abstract policy infrastructure of
// Figure 10 — policy repository, administration point, decision point and
// enforcement point.
//
// A request has two facets, a path (what profile data is asked for) and a
// context (who asks, for what purpose, when). The paper rejects stock XACML
// because its request context is "too limited (restricted to principals)";
// this package therefore models the context as a structured document and
// lets rule conditions predicate over all of it, including time of day —
// the paper's canonical example is "presence data is revealed to co-workers
// only at times when the end-user is at work".
package policy

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"gupster/internal/xpath"
)

// Context carries the non-path facet of a request (§4.6 "the context
// provides some information about the context of the request").
type Context struct {
	// Requester is the identity of the principal making the request.
	Requester string `json:"requester"`
	// Role is the requester's relationship to the profile owner, as
	// asserted by the identity layer: "self", "family", "co-worker",
	// "boss", "third-party", …
	Role string `json:"role,omitempty"`
	// Purpose distinguishes plain queries from caching requests,
	// subscriptions and provisioning, per §4.6.
	Purpose Purpose `json:"purpose,omitempty"`
	// Time is the moment of the request; zero means time.Now() at
	// evaluation.
	Time time.Time `json:"time,omitzero"`
	// Location optionally carries the requester's own location claim.
	Location string `json:"location,omitempty"`
}

// Purpose enumerates why profile data is being requested.
type Purpose string

// Purposes used by the framework.
const (
	PurposeQuery     Purpose = "query"
	PurposeCache     Purpose = "cache"
	PurposeSubscribe Purpose = "subscribe"
	PurposeProvision Purpose = "provision"
	PurposeSync      Purpose = "sync"
)

// Effect is a rule's outcome.
type Effect int

// Rule effects. Deny wins ties at equal priority.
const (
	Deny Effect = iota
	Permit
)

func (e Effect) String() string {
	if e == Permit {
		return "permit"
	}
	return "deny"
}

// Condition is a predicate over the request context. Implementations must
// be safe for concurrent use.
type Condition interface {
	Eval(Context) bool
	// String renders the condition for provisioning UIs and logs.
	String() string
}

// Always is the vacuous condition.
type Always struct{}

// Eval implements Condition.
func (Always) Eval(Context) bool { return true }
func (Always) String() string    { return "always" }

// RequesterIs matches an exact requester identity.
type RequesterIs string

// Eval implements Condition.
func (r RequesterIs) Eval(c Context) bool { return string(r) == c.Requester }
func (r RequesterIs) String() string      { return "requester=" + string(r) }

// RoleIs matches the asserted relationship role.
type RoleIs string

// Eval implements Condition.
func (r RoleIs) Eval(c Context) bool { return string(r) == c.Role }
func (r RoleIs) String() string      { return "role=" + string(r) }

// PurposeIs matches the request purpose.
type PurposeIs Purpose

// Eval implements Condition.
func (p PurposeIs) Eval(c Context) bool { return Purpose(p) == c.Purpose }
func (p PurposeIs) String() string      { return "purpose=" + string(p) }

// TimeBetween matches requests whose local time-of-day lies in [From, To).
// From and To are minutes since midnight; a window wrapping past midnight
// (From > To) is supported.
type TimeBetween struct {
	From, To int
}

// HoursBetween builds a TimeBetween from "HH:MM" strings; it panics on
// malformed input (static configuration).
func HoursBetween(from, to string) TimeBetween {
	return TimeBetween{From: mustMinutes(from), To: mustMinutes(to)}
}

func mustMinutes(s string) int {
	var h, m int
	if _, err := fmt.Sscanf(s, "%d:%d", &h, &m); err != nil || h < 0 || h > 23 || m < 0 || m > 59 {
		panic(fmt.Sprintf("policy: bad time %q", s))
	}
	return h*60 + m
}

// Eval implements Condition.
func (t TimeBetween) Eval(c Context) bool {
	now := c.Time
	if now.IsZero() {
		now = time.Now()
	}
	min := now.Hour()*60 + now.Minute()
	if t.From <= t.To {
		return min >= t.From && min < t.To
	}
	return min >= t.From || min < t.To
}

func (t TimeBetween) String() string {
	return fmt.Sprintf("time in [%02d:%02d,%02d:%02d)", t.From/60, t.From%60, t.To/60, t.To%60)
}

// Weekdays matches requests made on any of the given weekdays.
type Weekdays []time.Weekday

// Eval implements Condition.
func (w Weekdays) Eval(c Context) bool {
	now := c.Time
	if now.IsZero() {
		now = time.Now()
	}
	for _, d := range w {
		if now.Weekday() == d {
			return true
		}
	}
	return false
}

func (w Weekdays) String() string {
	parts := make([]string, len(w))
	for i, d := range w {
		parts[i] = d.String()[:3]
	}
	return "weekday in {" + strings.Join(parts, ",") + "}"
}

// And is conjunction.
type And []Condition

// Eval implements Condition.
func (a And) Eval(c Context) bool {
	for _, x := range a {
		if !x.Eval(c) {
			return false
		}
	}
	return true
}

func (a And) String() string { return joinConds(a, " and ") }

// Or is disjunction.
type Or []Condition

// Eval implements Condition.
func (o Or) Eval(c Context) bool {
	for _, x := range o {
		if x.Eval(c) {
			return true
		}
	}
	return false
}

func (o Or) String() string { return joinConds(o, " or ") }

func joinConds(cs []Condition, sep string) string {
	parts := make([]string, len(cs))
	for i, c := range cs {
		parts[i] = c.String()
	}
	return "(" + strings.Join(parts, sep) + ")"
}

// Not is negation.
type Not struct{ C Condition }

// Eval implements Condition.
func (n Not) Eval(c Context) bool { return !n.C.Eval(c) }
func (n Not) String() string      { return "not " + n.C.String() }

// Rule is one entry in a user's privacy shield.
type Rule struct {
	// ID identifies the rule for provisioning.
	ID string
	// Path scopes the rule to a subtree of the owner's profile. The rule
	// applies to a request when its path covers the request (fully or — for
	// Permit rules — partially, yielding a narrowed grant).
	Path xpath.Path
	// Cond guards the rule; nil means Always.
	Cond Condition
	// Effect is what the rule decides.
	Effect Effect
	// Priority orders rules; higher wins. At equal priority Deny wins.
	Priority int
}

func (r Rule) cond() Condition {
	if r.Cond == nil {
		return Always{}
	}
	return r.Cond
}

func (r Rule) String() string {
	return fmt.Sprintf("rule %s: %s[prio %d] on %s if %s", r.ID, r.Effect, r.Priority, r.Path, r.cond().String())
}

// Decision is the outcome of evaluating a shield against a request.
type Decision struct {
	// Effect is Permit when at least some of the request is granted.
	Effect Effect
	// Grants are the paths actually granted: the request itself when a
	// permit rule covers all of it, otherwise the permitted sub-paths
	// (narrowed grant). Empty on deny.
	Grants []xpath.Path
	// RuleID names the decisive rule; "" when the default applied.
	RuleID string
}

// Granted reports whether anything was permitted.
func (d Decision) Granted() bool { return d.Effect == Permit && len(d.Grants) > 0 }

// Full reports whether the entire request was granted (a single grant equal
// to the request path).
func (d Decision) Full(req xpath.Path) bool {
	return d.Granted() && len(d.Grants) == 1 && xpath.Equivalent(d.Grants[0], req)
}

// Shield is a user's complete rule set. The zero value denies everything.
type Shield struct {
	// Owner is the user the shield protects.
	Owner string
	// Rules in no particular order; Decide sorts by priority.
	Rules []Rule
}

// Decide evaluates the shield against a request for path under ctx.
//
// Semantics: among rules whose condition holds, the highest-priority rule
// that fully covers the request decides it (Deny wins priority ties). If no
// full-cover rule permits the request, Permit rules whose scope lies inside
// the request contribute narrowed grants, each of which must itself survive
// full-cover deny rules of higher or equal priority. The default is deny —
// the paper's stance that "the end-user should be in control" implies
// fail-closed.
//
// The owner always has full access to her own profile ("self" role with a
// requester equal to the owner), unless an explicit higher-priority deny
// (e.g. a provisioning lock) says otherwise.
func (s *Shield) Decide(req xpath.Path, ctx Context) Decision {
	type scored struct {
		rule Rule
		rel  xpath.CoverRelation
	}
	var applicable []scored
	for _, r := range s.Rules {
		if !r.cond().Eval(ctx) {
			continue
		}
		rel := xpath.Covers(r.Path, req)
		if rel == xpath.CoverNone {
			continue
		}
		applicable = append(applicable, scored{r, rel})
	}
	if ctx.Requester != "" && ctx.Requester == s.Owner {
		applicable = append(applicable, scored{
			rule: Rule{ID: "owner", Path: req, Effect: Permit, Priority: ownerPriority},
			rel:  xpath.CoverFull,
		})
	}
	// Highest priority first; deny before permit at the same priority.
	sort.SliceStable(applicable, func(i, j int) bool {
		if applicable[i].rule.Priority != applicable[j].rule.Priority {
			return applicable[i].rule.Priority > applicable[j].rule.Priority
		}
		return applicable[i].rule.Effect == Deny && applicable[j].rule.Effect == Permit
	})

	for _, a := range applicable {
		if a.rel != xpath.CoverFull {
			continue
		}
		if a.rule.Effect == Deny {
			return Decision{Effect: Deny, RuleID: a.rule.ID}
		}
		return Decision{Effect: Permit, Grants: []xpath.Path{req}, RuleID: a.rule.ID}
	}

	// No full-cover rule decided; assemble narrowed grants from partial
	// permits.
	var grants []xpath.Path
	ruleID := ""
	for _, a := range applicable {
		if a.rel != xpath.CoverPartial || a.rule.Effect != Permit {
			continue
		}
		if s.deniedBy(a.rule.Path, ctx, a.rule.Priority) {
			continue
		}
		grants = append(grants, a.rule.Path)
		if ruleID == "" {
			ruleID = a.rule.ID
		}
	}
	if len(grants) == 0 {
		return Decision{Effect: Deny}
	}
	return Decision{Effect: Permit, Grants: dedupePaths(grants), RuleID: ruleID}
}

// ownerPriority ranks the implicit owner-access rule: high, but beatable by
// explicit administrative locks.
const ownerPriority = 1 << 20

func (s *Shield) deniedBy(p xpath.Path, ctx Context, priority int) bool {
	for _, r := range s.Rules {
		if r.Effect != Deny || r.Priority < priority {
			continue
		}
		if !r.cond().Eval(ctx) {
			continue
		}
		if xpath.Covers(r.Path, p) == xpath.CoverFull {
			return true
		}
	}
	return false
}

func dedupePaths(ps []xpath.Path) []xpath.Path {
	seen := make(map[string]bool, len(ps))
	out := ps[:0]
	for _, p := range ps {
		k := p.String()
		if !seen[k] {
			seen[k] = true
			out = append(out, p)
		}
	}
	return out
}

// --- Policy infrastructure (Figure 10) ---

// ErrNoShield is returned when a user has no provisioned shield.
var ErrNoShield = errors.New("policy: no shield for user")

// ErrNoRule is returned when deleting an unknown rule.
var ErrNoRule = errors.New("policy: no such rule")

// Repository stores shields — the "policy repository" role. It is versioned
// so replicas (the store-side enforcement variant measured by benchmark E3)
// can sync incrementally. Safe for concurrent use.
type Repository struct {
	mu      sync.RWMutex
	shields map[string]*Shield
	version uint64
	dirty   map[string]uint64 // owner → version of last change
}

// NewRepository returns an empty repository.
func NewRepository() *Repository {
	return &Repository{
		shields: make(map[string]*Shield),
		dirty:   make(map[string]uint64),
	}
}

// Put replaces a user's shield wholesale.
func (r *Repository) Put(s *Shield) {
	r.mu.Lock()
	defer r.mu.Unlock()
	cp := *s
	cp.Rules = append([]Rule(nil), s.Rules...)
	r.shields[s.Owner] = &cp
	r.version++
	r.dirty[s.Owner] = r.version
}

// Get returns a copy of a user's shield.
func (r *Repository) Get(owner string) (*Shield, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	s, ok := r.shields[owner]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNoShield, owner)
	}
	cp := *s
	cp.Rules = append([]Rule(nil), s.Rules...)
	return &cp, nil
}

// Version returns the repository's monotonically increasing change counter.
func (r *Repository) Version() uint64 {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.version
}

// ChangedSince returns the owners whose shields changed after version v —
// the unit of policy synchronization traffic in the store-side enforcement
// variant.
func (r *Repository) ChangedSince(v uint64) []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	var out []string
	for owner, ver := range r.dirty {
		if ver > v {
			out = append(out, owner)
		}
	}
	sort.Strings(out)
	return out
}

// AdministrationPoint is the self-provisioning interface to a repository —
// the "policy administration point" role. It validates rules before
// admitting them.
type AdministrationPoint struct {
	Repo *Repository
	// ValidatePath, when non-nil, vets rule scopes against the profile
	// schema (constraint checking, requirement 11 of §2.3).
	ValidatePath func(xpath.Path) error
}

// PutRule inserts or replaces one rule in the owner's shield.
func (a *AdministrationPoint) PutRule(owner string, rule Rule) error {
	if rule.ID == "" {
		return errors.New("policy: rule must have an ID")
	}
	if len(rule.Path.Steps) == 0 {
		return errors.New("policy: rule must have a path scope")
	}
	if a.ValidatePath != nil {
		if err := a.ValidatePath(rule.Path); err != nil {
			return fmt.Errorf("policy: rule %s scope: %w", rule.ID, err)
		}
	}
	s, err := a.Repo.Get(owner)
	if err != nil {
		s = &Shield{Owner: owner}
	}
	replaced := false
	for i := range s.Rules {
		if s.Rules[i].ID == rule.ID {
			s.Rules[i] = rule
			replaced = true
			break
		}
	}
	if !replaced {
		s.Rules = append(s.Rules, rule)
	}
	a.Repo.Put(s)
	return nil
}

// DeleteRule removes a rule by ID.
func (a *AdministrationPoint) DeleteRule(owner, ruleID string) error {
	s, err := a.Repo.Get(owner)
	if err != nil {
		return err
	}
	for i := range s.Rules {
		if s.Rules[i].ID == ruleID {
			s.Rules = append(s.Rules[:i], s.Rules[i+1:]...)
			a.Repo.Put(s)
			return nil
		}
	}
	return fmt.Errorf("%w: %s/%s", ErrNoRule, owner, ruleID)
}

// DecisionPoint renders decisions from a repository — the "policy decision
// point" role. It has no side effects (per the paper: "the decision point
// only returns a decision").
type DecisionPoint struct {
	Repo *Repository
	// DefaultOwnerAccess, when true, lets users with no provisioned shield
	// access their own data (sensible bootstrap).
	DefaultOwnerAccess bool
}

// Decide evaluates owner's shield for a request.
func (d *DecisionPoint) Decide(owner string, req xpath.Path, ctx Context) Decision {
	s, err := d.Repo.Get(owner)
	if err != nil {
		if d.DefaultOwnerAccess && ctx.Requester == owner {
			return Decision{Effect: Permit, Grants: []xpath.Path{req}, RuleID: "owner-default"}
		}
		return Decision{Effect: Deny}
	}
	return s.Decide(req, ctx)
}

// Replica is a read-only copy of a repository kept at a data store for the
// store-side enforcement variant. SyncFrom pulls changed shields and
// reports how many were transferred (benchmark E3's sync traffic).
type Replica struct {
	mu      sync.RWMutex
	shields map[string]*Shield
	seen    uint64
}

// NewReplica returns an empty replica.
func NewReplica() *Replica {
	return &Replica{shields: make(map[string]*Shield)}
}

// SyncFrom pulls changes from the source repository.
func (r *Replica) SyncFrom(src *Repository) int {
	changed := src.ChangedSince(r.atVersion())
	for _, owner := range changed {
		if s, err := src.Get(owner); err == nil {
			r.mu.Lock()
			r.shields[owner] = s
			r.mu.Unlock()
		}
	}
	r.mu.Lock()
	r.seen = src.Version()
	r.mu.Unlock()
	return len(changed)
}

func (r *Replica) atVersion() uint64 {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.seen
}

// Decide evaluates against the replica's (possibly stale) shields.
func (r *Replica) Decide(owner string, req xpath.Path, ctx Context) Decision {
	r.mu.RLock()
	s, ok := r.shields[owner]
	r.mu.RUnlock()
	if !ok {
		return Decision{Effect: Deny}
	}
	return s.Decide(req, ctx)
}
