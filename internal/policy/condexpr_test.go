package policy

import (
	"testing"
	"time"
)

func TestEncodeParseRoundTrip(t *testing.T) {
	conds := []Condition{
		Always{},
		RequesterIs("bob"),
		RoleIs("family"),
		PurposeIs(PurposeCache),
		TimeBetween{From: 540, To: 1080},
		Weekdays{time.Monday, time.Friday},
		And{RoleIs("co-worker"), TimeBetween{From: 540, To: 1080}},
		Or{RoleIs("boss"), RoleIs("family")},
		Not{RoleIs("third-party")},
		And{Or{RoleIs("a"), Not{RequesterIs("b")}}, Weekdays{time.Sunday}, PurposeIs(PurposeQuery)},
	}
	samples := []Context{
		{Requester: "bob", Role: "family", Purpose: PurposeQuery, Time: time.Date(2026, 7, 6, 10, 0, 0, 0, time.UTC)},
		{Requester: "x", Role: "co-worker", Purpose: PurposeCache, Time: time.Date(2026, 7, 10, 20, 30, 0, 0, time.UTC)},
		{Requester: "b", Role: "boss", Purpose: PurposeSubscribe, Time: time.Date(2026, 7, 5, 0, 0, 0, 0, time.UTC)},
	}
	for _, c := range conds {
		enc := Encode(c)
		back, err := ParseCond(enc)
		if err != nil {
			t.Errorf("ParseCond(%q): %v", enc, err)
			continue
		}
		if got := Encode(back); got != enc {
			t.Errorf("round trip: %q -> %q", enc, got)
		}
		// Behavioural equivalence on samples.
		for _, ctx := range samples {
			if c.Eval(ctx) != back.Eval(ctx) {
				t.Errorf("%q: behaviour differs on %+v", enc, ctx)
			}
		}
	}
}

func TestEncodeNilAndUnknown(t *testing.T) {
	if Encode(nil) != "always" {
		t.Error("nil should encode as always")
	}
	type custom struct{ Always }
	if Encode(custom{}) != "always" {
		t.Error("unknown type should encode as always")
	}
}

func TestParseCondEmpty(t *testing.T) {
	c, err := ParseCond("  ")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := c.(Always); !ok {
		t.Errorf("empty = %T", c)
	}
}

func TestParseCondErrors(t *testing.T) {
	bad := []string{
		"nope",
		"requester",
		"colour=red",
		"and(role=a",
		"hours(09:00)",
		"hours(25:00,09:00)",
		"weekday(Funday)",
		"not(role=a",
		"zzz(role=a)",
		"role=a extra",
		"and()",
	}
	for _, b := range bad {
		if _, err := ParseCond(b); err == nil {
			t.Errorf("ParseCond(%q): want error", b)
		}
	}
}

func TestParseCondSpecificShapes(t *testing.T) {
	c, err := ParseCond("and(role=family,hours(09:00,18:00))")
	if err != nil {
		t.Fatal(err)
	}
	and, ok := c.(And)
	if !ok || len(and) != 2 {
		t.Fatalf("parsed = %#v", c)
	}
	if _, ok := and[0].(RoleIs); !ok {
		t.Errorf("first = %T", and[0])
	}
	tb, ok := and[1].(TimeBetween)
	if !ok || tb.From != 540 || tb.To != 1080 {
		t.Errorf("second = %#v", and[1])
	}
	wd, err := ParseCond("weekday(mon,TUE,Wed)")
	if err != nil {
		t.Fatal(err)
	}
	if len(wd.(Weekdays)) != 3 {
		t.Errorf("weekdays = %#v", wd)
	}
}
