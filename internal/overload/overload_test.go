package overload

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"gupster/internal/metrics"
	"gupster/internal/wire"
)

func TestClassify(t *testing.T) {
	cases := []struct {
		typ  string
		want Class
	}{
		{wire.TypeStats, ClassControl},
		{wire.TypeHeartbeat, ClassControl},
		{wire.TypeRegister, ClassControl},
		{wire.TypeUnregister, ClassControl},
		{wire.TypeResolve, ClassHigh},
		{wire.TypeBatchResolve, ClassHigh},
		{wire.TypeWhoHas, ClassHigh},
		{wire.TypeFetch, ClassHigh},
		{wire.TypeExec, ClassHigh},
		{wire.TypeUpdate, ClassNormal},
		{wire.TypeChanged, ClassNormal},
		{wire.TypeSyncStart, ClassNormal},
		{wire.TypeTraceReport, ClassNormal},
	}
	for _, c := range cases {
		if got := Classify(c.typ); got != c.want {
			t.Errorf("Classify(%q) = %v, want %v", c.typ, got, c.want)
		}
	}
}

func TestDisabledControllerAdmitsEverything(t *testing.T) {
	for _, c := range []*Controller{nil, New(Config{}, nil)} {
		release, err := c.Acquire(context.Background(), ClassHigh)
		if err != nil {
			t.Fatalf("disabled controller refused work: %v", err)
		}
		release()
		if c.Brownout() {
			t.Fatal("disabled controller reported brownout")
		}
		if _, expired := c.ExpiredOnArrival(context.Background(), ClassHigh); expired {
			t.Fatal("disabled controller expired a request")
		}
	}
}

func TestControlClassBypassesAdmission(t *testing.T) {
	c := New(Config{MaxConcurrency: 1, QueueDepth: 1}, nil)
	rel, err := c.Acquire(context.Background(), ClassHigh)
	if err != nil {
		t.Fatalf("first acquire: %v", err)
	}
	defer rel()
	// The single slot is held, but control traffic must still pass.
	for i := 0; i < 10; i++ {
		crel, err := c.Acquire(context.Background(), ClassControl)
		if err != nil {
			t.Fatalf("control acquire %d: %v", i, err)
		}
		crel()
	}
}

func TestQueueOverflowSheds(t *testing.T) {
	c := New(Config{MaxConcurrency: 1, QueueDepth: 1, QueueWait: 5 * time.Second}, nil)
	rel, err := c.Acquire(context.Background(), ClassHigh)
	if err != nil {
		t.Fatalf("first acquire: %v", err)
	}
	defer rel()

	// Fill the queue with one High waiter.
	queued := make(chan error, 1)
	go func() {
		r, err := c.Acquire(context.Background(), ClassHigh)
		if err == nil {
			defer r()
		}
		queued <- err
	}()
	waitForQueued(t, c, 1)

	// A Normal request cannot displace the queued High waiter: shed.
	_, err = c.Acquire(context.Background(), ClassNormal)
	var shed *ShedError
	if !errors.As(err, &shed) {
		t.Fatalf("normal acquire on full queue: got %v, want *ShedError", err)
	}
	if shed.RetryAfter <= 0 {
		t.Fatalf("shed error carries no retry-after hint: %+v", shed)
	}
	if got := c.Stats.ShedNormal.Load(); got != 1 {
		t.Fatalf("ShedNormal = %d, want 1", got)
	}

	rel() // frees the slot for the queued High waiter
	if err := <-queued; err != nil {
		t.Fatalf("queued high waiter shed: %v", err)
	}
}

func TestHighDisplacesQueuedNormal(t *testing.T) {
	c := New(Config{MaxConcurrency: 1, QueueDepth: 1, QueueWait: 5 * time.Second}, nil)
	rel, err := c.Acquire(context.Background(), ClassHigh)
	if err != nil {
		t.Fatalf("first acquire: %v", err)
	}

	normalErr := make(chan error, 1)
	go func() {
		r, err := c.Acquire(context.Background(), ClassNormal)
		if err == nil {
			defer r()
		}
		normalErr <- err
	}()
	waitForQueued(t, c, 1)

	highErr := make(chan error, 1)
	go func() {
		r, err := c.Acquire(context.Background(), ClassHigh)
		if err == nil {
			defer r()
		}
		highErr <- err
	}()

	// The Normal waiter is displaced by the incoming High request.
	var shed *ShedError
	if err := <-normalErr; !errors.As(err, &shed) {
		t.Fatalf("displaced normal waiter: got %v, want *ShedError", err)
	}
	rel()
	if err := <-highErr; err != nil {
		t.Fatalf("high waiter after displacement: %v", err)
	}
}

func TestQueueWaitTimeout(t *testing.T) {
	c := New(Config{MaxConcurrency: 1, QueueDepth: 4, QueueWait: 30 * time.Millisecond}, nil)
	rel, err := c.Acquire(context.Background(), ClassHigh)
	if err != nil {
		t.Fatalf("first acquire: %v", err)
	}
	defer rel()

	start := time.Now()
	_, err = c.Acquire(context.Background(), ClassHigh)
	var shed *ShedError
	if !errors.As(err, &shed) {
		t.Fatalf("queued acquire: got %v, want *ShedError", err)
	}
	if waited := time.Since(start); waited > 2*time.Second {
		t.Fatalf("queue-wait timeout took %v, want ~30ms", waited)
	}
	if got := c.Stats.QueueTimeouts.Load(); got != 1 {
		t.Fatalf("QueueTimeouts = %d, want 1", got)
	}
}

func TestQueueWaitCappedByContextBudget(t *testing.T) {
	c := New(Config{MaxConcurrency: 1, QueueDepth: 4, QueueWait: 10 * time.Second}, nil)
	rel, err := c.Acquire(context.Background(), ClassHigh)
	if err != nil {
		t.Fatalf("first acquire: %v", err)
	}
	defer rel()

	ctx, cancel := context.WithTimeout(context.Background(), 25*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err = c.Acquire(ctx, ClassHigh)
	if err == nil {
		t.Fatal("budget-capped acquire succeeded with the slot held")
	}
	if waited := time.Since(start); waited > 2*time.Second {
		t.Fatalf("budget-capped wait took %v, want ~25ms", waited)
	}
}

func TestNormalCannotUseHighReserve(t *testing.T) {
	// 4 slots, 1 reserved: Normal saturates at 3 concurrent.
	c := New(Config{MaxConcurrency: 4, HighReserve: 1, QueueDepth: 1, QueueWait: 20 * time.Millisecond}, nil)
	var rels []func()
	for i := 0; i < 3; i++ {
		r, err := c.Acquire(context.Background(), ClassNormal)
		if err != nil {
			t.Fatalf("normal acquire %d: %v", i, err)
		}
		rels = append(rels, r)
	}
	// The 4th slot is the High reserve: Normal queues then times out…
	if _, err := c.Acquire(context.Background(), ClassNormal); err == nil {
		t.Fatal("normal acquire dipped into the high reserve")
	}
	// …but High sails in.
	r, err := c.Acquire(context.Background(), ClassHigh)
	if err != nil {
		t.Fatalf("high acquire into reserve: %v", err)
	}
	r()
	for _, r := range rels {
		r()
	}
}

func TestExpiredOnArrival(t *testing.T) {
	c := New(Config{MaxConcurrency: 4}, nil)
	// No samples yet: nothing can be judged doomed.
	ctx, cancel := context.WithTimeout(context.Background(), time.Microsecond)
	defer cancel()
	if _, expired := c.ExpiredOnArrival(ctx, ClassHigh); expired {
		t.Fatal("expired with no service-time samples")
	}
	// Teach the controller a ~50ms p50 for High.
	for i := 0; i < 32; i++ {
		rel, err := c.Acquire(context.Background(), ClassHigh)
		if err != nil {
			t.Fatalf("warmup acquire: %v", err)
		}
		c.release(ClassHigh, 50*time.Millisecond) // inject the duration directly
		_ = rel                                   // release already done
	}
	// Budget far above p50: admitted.
	okCtx, cancel2 := context.WithTimeout(context.Background(), time.Minute)
	defer cancel2()
	if _, expired := c.ExpiredOnArrival(okCtx, ClassHigh); expired {
		t.Fatal("request with a minute of budget judged expired")
	}
	// Budget below p50: doomed on arrival.
	doomed, cancel3 := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel3()
	ra, expired := c.ExpiredOnArrival(doomed, ClassHigh)
	if !expired {
		t.Fatal("1ms budget against 50ms p50 not judged expired")
	}
	if ra <= 0 {
		t.Fatal("expired-on-arrival carries no retry-after hint")
	}
	if got := c.Stats.BudgetExpired.Load(); got != 1 {
		t.Fatalf("BudgetExpired = %d, want 1", got)
	}
	// No deadline at all: never expired.
	if _, expired := c.ExpiredOnArrival(context.Background(), ClassHigh); expired {
		t.Fatal("deadline-less request judged expired")
	}
}

func TestBrownoutHysteresis(t *testing.T) {
	c := New(Config{
		MaxConcurrency: 2, QueueDepth: 2, QueueWait: 10 * time.Millisecond,
		BrownoutThreshold: 0.5, BrownoutWindow: 20 * time.Millisecond,
	}, nil)
	if c.Brownout() {
		t.Fatal("brownout at zero pressure")
	}
	// Hold both slots: pressure 2/4 = 0.5 ≥ threshold.
	r1, _ := c.Acquire(context.Background(), ClassHigh)
	r2, _ := c.Acquire(context.Background(), ClassHigh)
	if c.Brownout() {
		t.Fatal("brownout before the window elapsed")
	}
	time.Sleep(30 * time.Millisecond)
	if !c.Brownout() {
		t.Fatal("no brownout after sustained pressure past the window")
	}
	// Release: pressure 0 < threshold/2, but exit needs the window too.
	r1()
	r2()
	if !c.Brownout() {
		t.Fatal("brownout exited before the recovery window elapsed")
	}
	time.Sleep(30 * time.Millisecond)
	if c.Brownout() {
		t.Fatal("brownout persisted after sustained recovery")
	}
	snap := c.Stats.Snapshot()
	if snap.BrownoutEnters != 1 || snap.BrownoutExits != 1 {
		t.Fatalf("brownout transitions = %d/%d, want 1/1", snap.BrownoutEnters, snap.BrownoutExits)
	}
}

func TestReleaseIsIdempotent(t *testing.T) {
	c := New(Config{MaxConcurrency: 1}, nil)
	rel, err := c.Acquire(context.Background(), ClassHigh)
	if err != nil {
		t.Fatalf("acquire: %v", err)
	}
	rel()
	rel() // double release must not free a phantom slot
	if ex, _ := c.InUse(); ex != 0 {
		t.Fatalf("executing = %d after release, want 0", ex)
	}
	r2, err := c.Acquire(context.Background(), ClassHigh)
	if err != nil {
		t.Fatalf("re-acquire: %v", err)
	}
	r2()
}

// TestChaosOverloadAdmissionChurn is the -race stress test of the
// admission semaphore: many goroutines churn acquire/release with mixed
// classes, cancellations, and timeouts; at the end every slot must be
// free and the books must balance.
func TestChaosOverloadAdmissionChurn(t *testing.T) {
	stats := &metrics.OverloadStats{}
	c := New(Config{
		MaxConcurrency: 3, HighReserve: 1, QueueDepth: 4,
		QueueWait:         2 * time.Millisecond,
		BrownoutThreshold: 0.7, BrownoutWindow: time.Millisecond,
	}, stats)

	const workers = 32
	const iters = 200
	var admitted, refused atomic.Uint64
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < iters; j++ {
				class := ClassHigh
				switch (i + j) % 3 {
				case 1:
					class = ClassNormal
				case 2:
					class = ClassControl
				}
				ctx := context.Background()
				var cancel context.CancelFunc = func() {}
				if (i+j)%5 == 0 {
					ctx, cancel = context.WithTimeout(ctx, time.Duration(j%3)*time.Millisecond)
				}
				rel, err := c.Acquire(ctx, class)
				if err == nil {
					if (i+j)%7 == 0 {
						time.Sleep(50 * time.Microsecond)
					}
					rel()
					rel() // double release must stay safe under race
					admitted.Add(1)
				} else {
					refused.Add(1)
				}
				cancel()
				_ = c.Brownout()
				_ = c.Pressure()
				_, _ = c.ExpiredOnArrival(ctx, class)
			}
		}()
	}
	wg.Wait()

	if ex, q := c.InUse(); ex != 0 || q != 0 {
		t.Fatalf("after churn: executing=%d queued=%d, want 0/0 (leaked slots)", ex, q)
	}
	if admitted.Load()+refused.Load() != workers*iters {
		t.Fatalf("bookkeeping: admitted %d + refused %d != %d", admitted.Load(), refused.Load(), workers*iters)
	}
	// Every slot freed: a fresh High burst must fill MaxConcurrency again.
	var rels []func()
	for i := 0; i < 3; i++ {
		rel, err := c.Acquire(context.Background(), ClassHigh)
		if err != nil {
			t.Fatalf("post-churn acquire %d: %v (slots leaked)", i, err)
		}
		rels = append(rels, rel)
	}
	for _, r := range rels {
		r()
	}
}

// waitForQueued spins until the controller reports n queued waiters.
func waitForQueued(t *testing.T, c *Controller, n int) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for {
		if _, q := c.InUse(); q >= n {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("queue never reached %d waiters", n)
		}
		time.Sleep(time.Millisecond)
	}
}
