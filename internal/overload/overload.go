// Package overload implements the admission controller in front of the
// resolve fabric's servers (ISSUE 5; paper §5.3's worry that the MDM is a
// Napster-style choke point). The controller enforces graceful degradation
// under load instead of collapse:
//
//   - bounded concurrency: at most MaxConcurrency requests execute at
//     once, with a reserve that only call-setup-class traffic may use,
//   - a bounded LIFO wait queue: when every slot is busy, requests wait
//     newest-first (the newest waiter has the most budget left; under
//     sustained overload FIFO serves only requests that are already
//     doomed), with overflow and queue-wait timeouts shed explicitly,
//   - expired-on-arrival shedding: a request whose propagated deadline
//     budget is below the class's observed p50 service time is refused
//     immediately, so a queue of doomed work cannot cascade downstream,
//   - a hysteretic brownout detector: sustained pressure above a
//     threshold flips the server into degraded answering (the MDM serves
//     chaining resolves from stale cache and skips recruit fan-out) and
//     recovers only after pressure stays below half the threshold.
//
// Shed requests are first-class wire errors (wire.TypeOverloaded with a
// retry-after hint) that the resilience layer treats as backoff, not
// failure — a shed never trips a circuit breaker or amplifies into a
// retry storm.
package overload

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"gupster/internal/metrics"
	"gupster/internal/wire"
)

// Class is a message's admission priority.
type Class int

// The three admission classes.
const (
	// ClassControl traffic (stats, heartbeats, registrations) bypasses
	// admission entirely: operators must be able to see and heal an
	// overloaded server, and liveness leases must renew, precisely when
	// the server is drowning.
	ClassControl Class = iota
	// ClassHigh is the call-setup path — resolves and the store fetches
	// they referral into. A slow answer here is as bad as no answer
	// (post-dial-delay budget, §2.2), so High outranks everything else
	// for slots and may use the reserved capacity.
	ClassHigh
	// ClassNormal is everything else: sync sessions, change notices,
	// subscriptions, provenance, trace queries.
	ClassNormal
)

// String names the class for errors and metrics.
func (c Class) String() string {
	switch c {
	case ClassControl:
		return "control"
	case ClassHigh:
		return "high"
	default:
		return "normal"
	}
}

// Classify maps a wire message type to its admission class.
func Classify(msgType string) Class {
	switch msgType {
	case wire.TypeStats, wire.TypeHeartbeat, wire.TypeRegister, wire.TypeUnregister:
		return ClassControl
	case wire.TypeResolve, wire.TypeBatchResolve, wire.TypeWhoHas, wire.TypeFetch, wire.TypeExec:
		return ClassHigh
	default:
		return ClassNormal
	}
}

// ShedError is the controller refusing work. The serving layer converts it
// into a wire.TypeOverloaded reply carrying the retry-after hint.
type ShedError struct {
	Class      Class
	RetryAfter time.Duration
	Reason     string
}

// Error implements error.
func (e *ShedError) Error() string {
	return fmt.Sprintf("overload: %s request shed: %s (retry after %s)", e.Class, e.Reason, e.RetryAfter)
}

// Config parameterizes a Controller.
type Config struct {
	// MaxConcurrency bounds concurrently executing requests; <= 0
	// disables admission control entirely (every Acquire succeeds).
	MaxConcurrency int
	// HighReserve is the number of slots only ClassHigh may occupy, so
	// background sync/notification load can never starve call setup.
	// Default MaxConcurrency/4 (at least 1 when MaxConcurrency > 1).
	HighReserve int
	// QueueDepth bounds the LIFO wait queue; default 2*MaxConcurrency.
	QueueDepth int
	// QueueWait bounds how long a request may wait for a slot (further
	// capped by the request's own remaining budget); default 1s.
	QueueWait time.Duration
	// BrownoutThreshold is the pressure level — (executing + queued) /
	// (MaxConcurrency + QueueDepth) — that, sustained for
	// BrownoutWindow, enters brownout. <= 0 disables the detector.
	BrownoutThreshold float64
	// BrownoutWindow is the hysteresis window: pressure must stay above
	// the threshold this long to enter brownout, and below half the
	// threshold this long to leave it. Default 100ms.
	BrownoutWindow time.Duration
}

func (c Config) withDefaults() Config {
	if c.MaxConcurrency <= 0 {
		return c
	}
	if c.HighReserve <= 0 && c.MaxConcurrency > 1 {
		c.HighReserve = c.MaxConcurrency / 4
		if c.HighReserve < 1 {
			c.HighReserve = 1
		}
	}
	if c.HighReserve >= c.MaxConcurrency {
		c.HighReserve = c.MaxConcurrency - 1
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 2 * c.MaxConcurrency
	}
	if c.QueueWait <= 0 {
		c.QueueWait = time.Second
	}
	if c.BrownoutWindow <= 0 {
		c.BrownoutWindow = 100 * time.Millisecond
	}
	return c
}

// svcWindow tracks a class's recent service times in a small ring and
// keeps a p50 estimate readable without the controller lock.
type svcWindow struct {
	samples [128]int64 // microseconds
	n       int        // filled count, up to len(samples)
	idx     int
	since   int // records since the last p50 recompute
	p50     atomic.Int64
}

// record folds one service time in; caller holds the controller lock.
func (w *svcWindow) record(d time.Duration) {
	w.samples[w.idx] = d.Microseconds()
	w.idx = (w.idx + 1) % len(w.samples)
	if w.n < len(w.samples) {
		w.n++
	}
	w.since++
	// Recompute lazily: sorting 128 ints on every release would tax the
	// hot path for a statistic that only moves slowly.
	if w.since >= 16 || w.n < 16 {
		w.since = 0
		tmp := make([]int64, w.n)
		copy(tmp, w.samples[:w.n])
		sort.Slice(tmp, func(i, j int) bool { return tmp[i] < tmp[j] })
		w.p50.Store(tmp[w.n/2])
	}
}

// waiter is one queued request. The resolver (slot handoff or eviction)
// sends the outcome on ready while holding the controller lock, so a
// waiter removed from the queue always finds its verdict buffered.
type waiter struct {
	class Class
	ready chan error // nil = slot handed over; *ShedError = evicted
}

// Controller is the admission gate. The zero value and nil are both valid
// (admission disabled); build a real one with New. Safe for concurrent use.
type Controller struct {
	cfg Config
	// Stats receives every counter increment.
	Stats *metrics.OverloadStats

	mu    sync.Mutex
	inUse int
	queue []*waiter // LIFO: the top of the stack is the end of the slice
	svc   [3]svcWindow

	brown      bool
	overSince  time.Time
	underSince time.Time
}

// New builds a controller; stats may be nil (a private set is allocated).
func New(cfg Config, stats *metrics.OverloadStats) *Controller {
	if stats == nil {
		stats = &metrics.OverloadStats{}
	}
	return &Controller{cfg: cfg.withDefaults(), Stats: stats}
}

// Enabled reports whether the controller actually gates anything.
func (c *Controller) Enabled() bool {
	return c != nil && c.cfg.MaxConcurrency > 0
}

// Acquire obtains an execution slot for a request of the given class,
// waiting (bounded) in the LIFO queue when the server is full. On success
// the returned release must be called exactly once when the request
// finishes; it records the service time and hands the slot to a waiter.
// On refusal the error is a *ShedError (or the context's error).
// ClassControl and disabled controllers always succeed immediately.
func (c *Controller) Acquire(ctx context.Context, class Class) (release func(), err error) {
	if !c.Enabled() || class == ClassControl {
		return func() {}, nil
	}
	c.mu.Lock()
	now := time.Now()
	c.noteBrownoutLocked(now)
	if c.inUse < c.classLimitLocked(class) {
		c.inUse++
		c.mu.Unlock()
		c.Stats.Admitted.Add(1)
		return c.releaseFunc(class, now), nil
	}
	if len(c.queue) >= c.cfg.QueueDepth {
		if !c.evictForLocked(class) {
			ra := c.retryAfterLocked(class)
			c.mu.Unlock()
			c.countShed(class)
			return nil, &ShedError{Class: class, RetryAfter: ra, Reason: "admission queue full"}
		}
	}
	w := &waiter{class: class, ready: make(chan error, 1)}
	c.queue = append(c.queue, w)
	wait := c.queueWaitLocked(ctx, now)
	c.mu.Unlock()
	c.Stats.Queued.Add(1)

	timer := time.NewTimer(wait)
	defer timer.Stop()
	select {
	case err := <-w.ready:
		if err != nil {
			c.countShed(class)
			return nil, err
		}
		c.Stats.Admitted.Add(1)
		return c.releaseFunc(class, time.Now()), nil
	case <-timer.C:
		if c.abandonedButAdmitted(w) {
			c.Stats.Admitted.Add(1)
			return c.releaseFunc(class, time.Now()), nil
		}
		c.Stats.QueueTimeouts.Add(1)
		c.countShed(class)
		c.mu.Lock()
		ra := c.retryAfterLocked(class)
		c.mu.Unlock()
		return nil, &ShedError{Class: class, RetryAfter: ra, Reason: "queue wait exceeded"}
	case <-ctx.Done():
		if c.abandonedButAdmitted(w) {
			// The slot arrived as the caller gave up; take it anyway —
			// the caller's own context will fail its work promptly, and
			// refusing here would leak the slot.
			c.Stats.Admitted.Add(1)
			return c.releaseFunc(class, time.Now()), nil
		}
		return nil, ctx.Err()
	}
}

// releaseFunc builds the once-only release closure for an admitted slot.
func (c *Controller) releaseFunc(class Class, start time.Time) func() {
	var once sync.Once
	return func() {
		once.Do(func() { c.release(class, time.Since(start)) })
	}
}

// release records the service time, hands the slot to the best waiter
// (newest High first), and re-evaluates brownout.
func (c *Controller) release(class Class, d time.Duration) {
	c.mu.Lock()
	c.svc[class].record(d)
	if w := c.popWaiterLocked(); w != nil {
		w.ready <- nil // slot transferred; inUse unchanged
	} else {
		c.inUse--
	}
	c.noteBrownoutLocked(time.Now())
	c.mu.Unlock()
}

// popWaiterLocked picks the waiter to hand a freed slot to: the newest
// High-class waiter, else the newest Normal waiter when the reserve
// allows. Caller holds the lock.
func (c *Controller) popWaiterLocked() *waiter {
	for i := len(c.queue) - 1; i >= 0; i-- {
		if c.queue[i].class == ClassHigh {
			w := c.queue[i]
			c.queue = append(c.queue[:i], c.queue[i+1:]...)
			return w
		}
	}
	// Only Normal waiters: one may take the slot unless that would dip
	// into the High reserve.
	if len(c.queue) == 0 || c.inUse > c.cfg.MaxConcurrency-c.cfg.HighReserve {
		return nil
	}
	w := c.queue[len(c.queue)-1]
	c.queue = c.queue[:len(c.queue)-1]
	return w
}

// evictForLocked makes room in a full queue for an incoming request by
// shedding the oldest waiter of the lowest class: the oldest Normal if
// any, else — only for an incoming High request — the oldest High. It
// reports whether room was made. Caller holds the lock.
func (c *Controller) evictForLocked(incoming Class) bool {
	evict := -1
	for i, w := range c.queue { // bottom of the stack first: oldest
		if w.class == ClassNormal {
			evict = i
			break
		}
	}
	if evict < 0 {
		if incoming != ClassHigh {
			return false
		}
		evict = 0
	}
	if evict >= len(c.queue) {
		return false
	}
	w := c.queue[evict]
	c.queue = append(c.queue[:evict], c.queue[evict+1:]...)
	w.ready <- &ShedError{Class: w.class, RetryAfter: c.retryAfterLocked(w.class), Reason: "displaced by newer request"}
	return true
}

// abandonedButAdmitted resolves the race between a waiter giving up and
// the controller resolving it: it removes w from the queue if still
// present (returns false — the wait genuinely ended empty-handed), or
// consumes the buffered verdict (true when a slot was handed over, which
// the caller must then use or release).
func (c *Controller) abandonedButAdmitted(w *waiter) bool {
	c.mu.Lock()
	for i, q := range c.queue {
		if q == w {
			c.queue = append(c.queue[:i], c.queue[i+1:]...)
			c.mu.Unlock()
			return false
		}
	}
	c.mu.Unlock()
	// Not queued anymore: the verdict is buffered (sent under the lock).
	return <-w.ready == nil
}

// classLimitLocked is the slot count a class may occupy; caller holds the
// lock.
func (c *Controller) classLimitLocked(class Class) int {
	if class == ClassHigh {
		return c.cfg.MaxConcurrency
	}
	return c.cfg.MaxConcurrency - c.cfg.HighReserve
}

// queueWaitLocked bounds a waiter's patience: the configured queue wait,
// further capped by the request's own remaining budget (waiting past the
// deadline only manufactures doomed work). Caller holds the lock.
func (c *Controller) queueWaitLocked(ctx context.Context, now time.Time) time.Duration {
	wait := c.cfg.QueueWait
	if d, ok := ctx.Deadline(); ok {
		if rem := d.Sub(now); rem < wait {
			wait = rem
		}
	}
	if wait < 0 {
		wait = 0
	}
	return wait
}

func (c *Controller) countShed(class Class) {
	if class == ClassHigh {
		c.Stats.ShedHigh.Add(1)
	} else {
		c.Stats.ShedNormal.Add(1)
	}
}

// retryAfterLocked estimates when capacity is likely: roughly the queue's
// worth of p50 service times, clamped to a sane band. Caller holds the
// lock.
func (c *Controller) retryAfterLocked(class Class) time.Duration {
	p50 := time.Duration(c.svc[class].p50.Load()) * time.Microsecond
	if p50 <= 0 {
		p50 = 50 * time.Millisecond
	}
	ra := p50 * time.Duration(len(c.queue)+1)
	if ra < 25*time.Millisecond {
		ra = 25 * time.Millisecond
	}
	if ra > 2*time.Second {
		ra = 2 * time.Second
	}
	return ra
}

// RetryAfter is the exported hint for shed replies built outside Acquire.
func (c *Controller) RetryAfter(class Class) time.Duration {
	if !c.Enabled() {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.retryAfterLocked(class)
}

// ExpiredOnArrival reports whether the request's propagated budget (the
// context deadline) is already below the class's observed p50 service
// time — work that cannot finish in time and should be refused before it
// clogs the queue. A request without a deadline, or a class without
// service samples yet, is never expired. On true the shed counters are
// bumped and a retry-after hint is returned.
func (c *Controller) ExpiredOnArrival(ctx context.Context, class Class) (retryAfter time.Duration, expired bool) {
	if !c.Enabled() || class == ClassControl {
		return 0, false
	}
	d, ok := ctx.Deadline()
	if !ok {
		return 0, false
	}
	p50 := time.Duration(c.svc[class].p50.Load()) * time.Microsecond
	if p50 <= 0 || time.Until(d) >= p50 {
		return 0, false
	}
	c.Stats.BudgetExpired.Add(1)
	c.countShed(class)
	return c.RetryAfter(class), true
}

// Pressure is the instantaneous load fraction: (executing + queued) /
// (MaxConcurrency + QueueDepth).
func (c *Controller) Pressure() float64 {
	if !c.Enabled() {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.pressureLocked()
}

func (c *Controller) pressureLocked() float64 {
	cap := c.cfg.MaxConcurrency + c.cfg.QueueDepth
	if cap <= 0 {
		return 0
	}
	return float64(c.inUse+len(c.queue)) / float64(cap)
}

// Brownout reports whether the detector currently calls for degraded
// answers, re-evaluating the hysteresis first (the detector is lazy: it
// advances on admission events and on this call, needing no timer
// goroutine).
func (c *Controller) Brownout() bool {
	if !c.Enabled() || c.cfg.BrownoutThreshold <= 0 {
		return false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.noteBrownoutLocked(time.Now())
	return c.brown
}

// noteBrownoutLocked advances the hysteretic detector: enter when
// pressure holds at or above the threshold for a full window, leave when
// it holds below half the threshold for a full window. Caller holds the
// lock.
func (c *Controller) noteBrownoutLocked(now time.Time) {
	th := c.cfg.BrownoutThreshold
	if th <= 0 {
		return
	}
	p := c.pressureLocked()
	if !c.brown {
		if p >= th {
			if c.overSince.IsZero() {
				c.overSince = now
			}
			if now.Sub(c.overSince) >= c.cfg.BrownoutWindow {
				c.brown = true
				c.underSince = time.Time{}
				c.Stats.BrownoutEnters.Add(1)
			}
		} else {
			c.overSince = time.Time{}
		}
		return
	}
	if p < th/2 {
		if c.underSince.IsZero() {
			c.underSince = now
		}
		if now.Sub(c.underSince) >= c.cfg.BrownoutWindow {
			c.brown = false
			c.overSince = time.Time{}
			c.Stats.BrownoutExits.Add(1)
		}
	} else {
		c.underSince = time.Time{}
	}
}

// InUse reports the executing and queued request counts (observability).
func (c *Controller) InUse() (executing, queued int) {
	if !c.Enabled() {
		return 0, 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.inUse, len(c.queue)
}
