package coverage

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"gupster/internal/xpath"
)

func mp(s string) xpath.Path { return xpath.MustParse(s) }

func TestUserOf(t *testing.T) {
	if u, ok := UserOf(mp("/user[@id='arnaud']/address-book")); !ok || u != "arnaud" {
		t.Errorf("UserOf = %q, %v", u, ok)
	}
	if _, ok := UserOf(mp("/user/address-book")); ok {
		t.Error("unpinned path should not report a user")
	}
	if _, ok := UserOf(mp("/user[@id]/presence")); ok {
		t.Error("existence predicate is not an identity")
	}
	if _, ok := UserOf(xpath.Path{}); ok {
		t.Error("zero path")
	}
}

// The paper's running example (§4.3): Yahoo! holds Arnaud's address book and
// Rick's address book + game scores; SprintPCS holds Arnaud's address book
// and game scores and his presence.
func TestPaperExample(t *testing.T) {
	r := New()
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	must(r.Register(mp("/user[@id='arnaud']/address-book"), "gup.yahoo.com"))
	must(r.Register(mp("/user[@id='arnaud']/address-book"), "gup.spcs.com"))
	must(r.Register(mp("/user[@id='arnaud']/presence"), "gup.spcs.com"))
	must(r.Register(mp("/user[@id='rick']/address-book"), "gup.yahoo.com"))

	ms := r.Lookup(mp("/user[@id='arnaud']/address-book"))
	if len(ms) != 2 {
		t.Fatalf("matches = %v", ms)
	}
	for _, m := range ms {
		if m.Rel != xpath.CoverFull {
			t.Errorf("expected full cover, got %v", m)
		}
	}
	if ms[0].Store != "gup.spcs.com" || ms[1].Store != "gup.yahoo.com" {
		t.Errorf("store order: %v", ms)
	}

	ms = r.Lookup(mp("/user[@id='arnaud']/presence"))
	if len(ms) != 1 || ms[0].Store != "gup.spcs.com" {
		t.Errorf("presence matches = %v", ms)
	}

	// Rick's presence is nowhere.
	if ms := r.Lookup(mp("/user[@id='rick']/presence")); len(ms) != 0 {
		t.Errorf("unexpected matches: %v", ms)
	}
}

// Figure 9: Arnaud's address book split by item type across Yahoo (personal)
// and Lucent (corporate). A request for the whole book gets two partial
// covers; a request for one half gets a single full cover.
func TestSplitAddressBook(t *testing.T) {
	r := New()
	r.Register(mp("/user[@id='arnaud']/address-book/item[@type='personal']"), "gup.yahoo.com")
	r.Register(mp("/user[@id='arnaud']/address-book/item[@type='corporate']"), "gup.lucent.com")

	ms := r.Lookup(mp("/user[@id='arnaud']/address-book"))
	if len(ms) != 2 {
		t.Fatalf("matches = %v", ms)
	}
	for _, m := range ms {
		if m.Rel != xpath.CoverPartial {
			t.Errorf("expected partial, got %v", m)
		}
	}

	ms = r.Lookup(mp("/user[@id='arnaud']/address-book/item[@type='personal']"))
	if len(ms) != 1 || ms[0].Store != "gup.yahoo.com" || ms[0].Rel != xpath.CoverFull {
		t.Errorf("personal half = %v", ms)
	}

	// A deeper request inside one half is fully covered by that half.
	ms = r.Lookup(mp("/user[@id='arnaud']/address-book/item[@type='corporate']/phone"))
	if len(ms) != 1 || ms[0].Store != "gup.lucent.com" || ms[0].Rel != xpath.CoverFull {
		t.Errorf("deep corporate = %v", ms)
	}
}

func TestFullBeforePartialOrdering(t *testing.T) {
	r := New()
	r.Register(mp("/user[@id='a']/address-book/item[@type='x']"), "s-partial")
	r.Register(mp("/user[@id='a']"), "s-full")
	ms := r.Lookup(mp("/user[@id='a']/address-book"))
	if len(ms) != 2 || ms[0].Rel != xpath.CoverFull || ms[1].Rel != xpath.CoverPartial {
		t.Errorf("ordering = %v", ms)
	}
}

func TestRegisterIdempotentAndUnregister(t *testing.T) {
	r := New()
	p := mp("/user[@id='a']/presence")
	r.Register(p, "s1")
	r.Register(p, "s1")
	if r.Len() != 1 {
		t.Errorf("Len = %d after duplicate register", r.Len())
	}
	if err := r.Unregister(p, "s1"); err != nil {
		t.Errorf("Unregister: %v", err)
	}
	if r.Len() != 0 {
		t.Errorf("Len = %d after unregister", r.Len())
	}
	if err := r.Unregister(p, "s1"); err != ErrNotRegistered {
		t.Errorf("second Unregister err = %v", err)
	}
	if err := r.Unregister(mp("/user[@id='zz']/presence"), "s1"); err != ErrNotRegistered {
		t.Errorf("unknown user Unregister err = %v", err)
	}
}

func TestRegisterRejectsBadPaths(t *testing.T) {
	r := New()
	if err := r.Register(xpath.Path{}, "s"); err == nil {
		t.Error("empty path accepted")
	}
	if err := r.Register(mp("/user[@id='a'][@id='b']"), "s"); err == nil {
		t.Error("unsatisfiable path accepted")
	}
}

func TestDropStore(t *testing.T) {
	r := New()
	r.Register(mp("/user[@id='a']/presence"), "s1")
	r.Register(mp("/user[@id='a']/calendar"), "s1")
	r.Register(mp("/user[@id='b']/presence"), "s2")
	if n := r.DropStore("s1"); n != 2 {
		t.Errorf("DropStore = %d", n)
	}
	if r.Len() != 1 {
		t.Errorf("Len = %d", r.Len())
	}
	if ms := r.Lookup(mp("/user[@id='a']/presence")); len(ms) != 0 {
		t.Errorf("dropped store still matching: %v", ms)
	}
	if n := r.DropStore("s1"); n != 0 {
		t.Errorf("second DropStore = %d", n)
	}
}

func TestUnpinnedRegistrationMatchesAllUsers(t *testing.T) {
	r := New()
	// A carrier registering the location of all its subscribers.
	r.Register(mp("/user/location"), "gup.hlr.carrier.com")
	ms := r.Lookup(mp("/user[@id='alice']/location"))
	if len(ms) != 1 || ms[0].Rel != xpath.CoverFull {
		t.Errorf("unpinned registration missed: %v", ms)
	}
}

func TestUnpinnedRequestScansAllUsers(t *testing.T) {
	r := New()
	r.Register(mp("/user[@id='a']/presence"), "s1")
	r.Register(mp("/user[@id='b']/presence"), "s2")
	ms := r.Lookup(mp("/user/presence"))
	if len(ms) != 2 {
		t.Errorf("matches = %v", ms)
	}
	for _, m := range ms {
		if m.Rel != xpath.CoverPartial {
			t.Errorf("per-user registration against all-user request should be partial: %v", m)
		}
	}
}

func TestSectionWildcardRequest(t *testing.T) {
	r := New()
	r.Register(mp("/user[@id='a']/presence"), "s1")
	r.Register(mp("/user[@id='a']/calendar"), "s2")
	// Request across sections must consult every section bucket.
	ms := r.Lookup(mp("/user[@id='a']/*"))
	if len(ms) != 2 {
		t.Errorf("wildcard section matches = %v", ms)
	}
	// Whole-profile request likewise.
	ms = r.Lookup(mp("/user[@id='a']"))
	if len(ms) != 2 {
		t.Errorf("whole-profile matches = %v", ms)
	}
}

func TestIndexedEqualsLinear(t *testing.T) {
	r := New()
	users := []string{"a", "b", "c", "d"}
	sections := []string{"presence", "calendar", "address-book", "devices"}
	n := 0
	for _, u := range users {
		for _, s := range sections {
			store := StoreID(fmt.Sprintf("store-%d", n%3))
			r.Register(mp(fmt.Sprintf("/user[@id='%s']/%s", u, s)), store)
			n++
		}
	}
	r.Register(mp("/user/location"), "hlr")

	queries := []string{
		"/user[@id='a']/presence",
		"/user[@id='b']",
		"/user/calendar",
		"/user[@id='c']/*",
		"/user[@id='zz']/presence",
		"/user[@id='d']/location",
	}
	for _, q := range queries {
		qi := r.Lookup(mp(q))
		ql := r.LinearLookup(mp(q))
		if len(qi) != len(ql) {
			t.Errorf("query %s: indexed %d matches, linear %d", q, len(qi), len(ql))
			continue
		}
		for i := range qi {
			if qi[i].Store != ql[i].Store || qi[i].Rel != ql[i].Rel || qi[i].Path.String() != ql[i].Path.String() {
				t.Errorf("query %s: result %d differs: %v vs %v", q, i, qi[i], ql[i])
			}
		}
	}
}

func TestSnapshotAndStoresFor(t *testing.T) {
	r := New()
	r.Register(mp("/user[@id='a']/presence"), "s2")
	r.Register(mp("/user[@id='a']/calendar"), "s1")
	r.Register(mp("/user/location"), "hlr")
	snap := r.Snapshot()
	if len(snap) != 3 {
		t.Fatalf("Snapshot = %v", snap)
	}
	if snap[0].Store != "hlr" || snap[1].Store != "s1" || snap[2].Store != "s2" {
		t.Errorf("Snapshot order: %v", snap)
	}
	stores := r.StoresFor("a")
	if len(stores) != 3 { // s1, s2 and the unpinned hlr
		t.Errorf("StoresFor = %v", stores)
	}
	if stores[0] != "hlr" || stores[1] != "s1" || stores[2] != "s2" {
		t.Errorf("StoresFor order: %v", stores)
	}
}

func TestConcurrentAccess(t *testing.T) {
	r := New()
	done := make(chan bool)
	for i := 0; i < 8; i++ {
		go func(i int) {
			defer func() { done <- true }()
			for j := 0; j < 200; j++ {
				p := mp(fmt.Sprintf("/user[@id='u%d']/presence", i))
				r.Register(p, StoreID(fmt.Sprintf("s%d", j%4)))
				r.Lookup(p)
				if j%3 == 0 {
					r.Unregister(p, StoreID(fmt.Sprintf("s%d", j%4)))
				}
			}
		}(i)
	}
	for i := 0; i < 8; i++ {
		<-done
	}
}

// Property: the indexed lookup agrees with the exhaustive linear scan for
// random registration sets and queries — the index is an optimization, not
// a semantics change.
func TestQuickIndexedEqualsLinear(t *testing.T) {
	users := []string{"a", "b", "c", ""}
	sections := []string{"presence", "calendar", "address-book", "devices", "*"}
	deep := []string{"", "/item[@type='personal']", "/item[@type='corporate']", "/device[@network='pstn']"}

	randomPath := func(rng *rand.Rand) xpath.Path {
		u := users[rng.Intn(len(users))]
		sec := sections[rng.Intn(len(sections))]
		p := "/user"
		if u != "" {
			p = fmt.Sprintf("/user[@id='%s']", u)
		}
		if rng.Intn(5) > 0 { // sometimes the bare user path
			p += "/" + sec
			if sec != "*" && rng.Intn(3) == 0 {
				p += deep[rng.Intn(len(deep))]
			}
		}
		parsed, err := xpath.Parse(p)
		if err != nil {
			t.Fatalf("generator bug: %q: %v", p, err)
		}
		return parsed
	}

	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		r := New()
		n := 1 + rng.Intn(20)
		for i := 0; i < n; i++ {
			r.Register(randomPath(rng), StoreID(fmt.Sprintf("s%d", rng.Intn(4))))
		}
		for q := 0; q < 10; q++ {
			query := randomPath(rng)
			qi, ql := r.Lookup(query), r.LinearLookup(query)
			if len(qi) != len(ql) {
				t.Logf("seed %d query %s: indexed %d vs linear %d", seed, query, len(qi), len(ql))
				return false
			}
			for i := range qi {
				if qi[i].Store != ql[i].Store || qi[i].Rel != ql[i].Rel ||
					qi[i].Path.String() != ql[i].Path.String() {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
