package coverage

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"gupster/internal/xpath"
)

// Property: the indexed Lookup is sound and complete against the Covers
// relation itself — every returned match really covers (fully or partially)
// the query, every registration that covers the query is returned exactly
// once, and full covers are ordered before partials. This complements
// TestQuickIndexedEqualsLinear, which only checks the two lookup paths
// against each other: if both shared a classification bug, that test would
// still pass.
func TestQuickLookupSoundAndComplete(t *testing.T) {
	users := []string{"a", "b", "c", ""}
	sections := []string{"presence", "calendar", "address-book", "devices", "*"}
	deep := []string{"", "/item[@type='personal']", "/item[@type='corporate']", "/device[@network='pstn']"}

	randomPath := func(rng *rand.Rand) xpath.Path {
		u := users[rng.Intn(len(users))]
		sec := sections[rng.Intn(len(sections))]
		p := "/user"
		if u != "" {
			p = fmt.Sprintf("/user[@id='%s']", u)
		}
		if rng.Intn(5) > 0 {
			p += "/" + sec
			if sec != "*" && rng.Intn(3) == 0 {
				p += deep[rng.Intn(len(deep))]
			}
		}
		parsed, err := xpath.Parse(p)
		if err != nil {
			t.Fatalf("generator bug: %q: %v", p, err)
		}
		return parsed
	}

	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		r := New()
		n := 1 + rng.Intn(20)
		for i := 0; i < n; i++ {
			r.Register(randomPath(rng), StoreID(fmt.Sprintf("s%d", rng.Intn(4))))
		}
		regs := r.Snapshot()
		for q := 0; q < 10; q++ {
			query := randomPath(rng)
			ms := r.Lookup(query)

			// Soundness: each match's relation is exactly what Covers says,
			// and never CoverNone. Matches are unique per (store, path).
			seen := make(map[string]bool, len(ms))
			sawPartial := false
			for _, m := range ms {
				if got := xpath.Covers(m.Path, query); got != m.Rel || got == xpath.CoverNone {
					t.Logf("seed %d: Lookup(%s) returned %s@%s as %v, Covers says %v",
						seed, query, m.Path, m.Store, m.Rel, got)
					return false
				}
				key := string(m.Store) + "\x00" + m.Path.String()
				if seen[key] {
					t.Logf("seed %d: duplicate match %s", seed, key)
					return false
				}
				seen[key] = true
				if m.Rel == xpath.CoverPartial {
					sawPartial = true
				} else if sawPartial {
					t.Logf("seed %d: full match after partial in Lookup(%s)", seed, query)
					return false
				}
			}

			// Completeness: every registration whose path covers the query
			// appears among the matches.
			for _, reg := range regs {
				if xpath.Covers(reg.Path, query) == xpath.CoverNone {
					continue
				}
				if !seen[string(reg.Store)+"\x00"+reg.Path.String()] {
					t.Logf("seed %d: Lookup(%s) missed covering registration %s@%s",
						seed, query, reg.Path, reg.Store)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
