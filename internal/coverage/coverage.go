// Package coverage implements the GUPster server's coverage registry
// (paper §4.3 and §4.5): the mapping between sub-trees of the GUP schema —
// expressed as XPath-fragment expressions — and the data stores that hold
// them. Data stores register and unregister components exactly as Napster
// peers registered music files; client requests are resolved to the set of
// stores whose registrations fully or partially cover the requested path.
//
// The registry keeps a two-level index (user identity, then top-level
// profile section) so that lookup cost is independent of the total number of
// registrations; a linear scan is retained for the E6 ablation benchmark.
package coverage

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"gupster/internal/xpath"
)

// StoreID identifies a GUP-enabled data store (e.g. "gup.yahoo.com").
type StoreID string

// Match is one registration relevant to a request.
type Match struct {
	Store StoreID
	// Path is the registered coverage path.
	Path xpath.Path
	// Rel says whether the registration covers the whole request or only a
	// piece of it.
	Rel xpath.CoverRelation
}

// Registration pairs a coverage path with the store that holds it. Paths
// follow the paper's convention of embedding the user identity as a
// predicate on the first step: /user[@id='arnaud']/address-book.
type Registration struct {
	Path  xpath.Path
	Store StoreID
}

var (
	// ErrNotRegistered is returned by Unregister when no matching
	// registration exists.
	ErrNotRegistered = errors.New("coverage: not registered")
	// ErrBadPath rejects structurally unusable coverage paths.
	ErrBadPath = errors.New("coverage: unusable path")
)

// UserOf extracts the user identity from a coverage or request path: the
// value of the id-attribute equality predicate on the first step. The second
// result is false for paths that do not pin a single user.
func UserOf(p xpath.Path) (string, bool) {
	if len(p.Steps) == 0 {
		return "", false
	}
	for _, pred := range p.Steps[0].Preds {
		if pred.Attr == "id" && pred.HasValue {
			return pred.Value, true
		}
	}
	return "", false
}

// sectionOf returns the top-level profile section a path addresses (the
// element name of its second step), or "*" when the path stops at the user
// element or uses a wildcard there.
func sectionOf(p xpath.Path) string {
	if len(p.Steps) < 2 || p.Steps[1].Name == "*" {
		return "*"
	}
	return p.Steps[1].Name
}

type entry struct {
	path    xpath.Path
	pathStr string
	store   StoreID
	user    string
	section string
}

// Registry is the coverage store. The zero value is not usable; call New.
// All methods are safe for concurrent use.
type Registry struct {
	mu sync.RWMutex
	// byUser[user][section] → entries; user "" holds registrations that do
	// not pin a user and is consulted on every lookup.
	byUser map[string]map[string][]*entry
	all    []*entry
	count  int
	// perStore counts live registrations per store, so callers can tell
	// when a store's last registration disappears (address and lease
	// cleanup) without scanning.
	perStore map[StoreID]int
}

// New returns an empty registry.
func New() *Registry {
	return &Registry{
		byUser:   make(map[string]map[string][]*entry),
		perStore: make(map[StoreID]int),
	}
}

// Register records that store holds the subtree at path. Registering the
// same (path, store) pair twice is idempotent.
func (r *Registry) Register(path xpath.Path, store StoreID) error {
	if len(path.Steps) == 0 {
		return fmt.Errorf("%w: empty path", ErrBadPath)
	}
	if path.Empty() {
		return fmt.Errorf("%w: %s matches nothing", ErrBadPath, path)
	}
	user, _ := UserOf(path)
	section := sectionOf(path)
	e := &entry{path: path, pathStr: path.String(), store: store, user: user, section: section}

	r.mu.Lock()
	defer r.mu.Unlock()
	bucket := r.byUser[user]
	if bucket == nil {
		bucket = make(map[string][]*entry)
		r.byUser[user] = bucket
	}
	for _, ex := range bucket[section] {
		if ex.store == store && ex.pathStr == e.pathStr {
			return nil // idempotent
		}
	}
	bucket[section] = append(bucket[section], e)
	r.all = append(r.all, e)
	r.count++
	r.perStore[store]++
	return nil
}

// Registered reports whether the exact (path, store) registration exists.
// The mutation path uses it to decide whether a failed journal append
// must roll back an insert or leave a pre-existing registration alone.
func (r *Registry) Registered(path xpath.Path, store StoreID) bool {
	key := path.String()
	user, _ := UserOf(path)
	section := sectionOf(path)
	r.mu.RLock()
	defer r.mu.RUnlock()
	for _, e := range r.byUser[user][section] {
		if e.store == store && e.pathStr == key {
			return true
		}
	}
	return false
}

// Unregister removes a prior registration.
func (r *Registry) Unregister(path xpath.Path, store StoreID) error {
	key := path.String()
	user, _ := UserOf(path)
	section := sectionOf(path)

	r.mu.Lock()
	defer r.mu.Unlock()
	bucket := r.byUser[user]
	if bucket == nil {
		return ErrNotRegistered
	}
	list := bucket[section]
	for i, e := range list {
		if e.store == store && e.pathStr == key {
			bucket[section] = append(list[:i], list[i+1:]...)
			r.removeFromAll(e)
			r.count--
			r.decStore(store)
			return nil
		}
	}
	return ErrNotRegistered
}

func (r *Registry) decStore(store StoreID) {
	if n := r.perStore[store]; n <= 1 {
		delete(r.perStore, store)
	} else {
		r.perStore[store] = n - 1
	}
}

func (r *Registry) removeFromAll(e *entry) {
	for i, x := range r.all {
		if x == e {
			r.all = append(r.all[:i], r.all[i+1:]...)
			return
		}
	}
}

// DropStore removes every registration belonging to a store (store failure
// or departure) and returns how many were removed.
func (r *Registry) DropStore(store StoreID) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	removed := 0
	for _, bucket := range r.byUser {
		for section, list := range bucket {
			kept := list[:0]
			for _, e := range list {
				if e.store == store {
					removed++
				} else {
					kept = append(kept, e)
				}
			}
			bucket[section] = kept
		}
	}
	if removed > 0 {
		keptAll := r.all[:0]
		for _, e := range r.all {
			if e.store != store {
				keptAll = append(keptAll, e)
			}
		}
		r.all = keptAll
		r.count -= removed
		delete(r.perStore, store)
	}
	return removed
}

// StoreCount returns the number of live registrations a store holds; 0
// means the directory has forgotten the store entirely.
func (r *Registry) StoreCount(store StoreID) int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.perStore[store]
}

// Lookup returns all registrations relevant to the request, full covers
// first, then partials; within each class results are ordered by store then
// path for determinism. The index narrows the scan to the request's user and
// section buckets (plus the unpinned buckets).
func (r *Registry) Lookup(q xpath.Path) []Match {
	r.mu.RLock()
	defer r.mu.RUnlock()

	user, pinned := UserOf(q)
	section := sectionOf(q)

	var candidates []*entry
	collect := func(bucket map[string][]*entry) {
		if bucket == nil {
			return
		}
		if section == "*" {
			// Request spans sections: consult every bucket.
			for _, list := range bucket {
				candidates = append(candidates, list...)
			}
			return
		}
		candidates = append(candidates, bucket[section]...)
		candidates = append(candidates, bucket["*"]...)
	}
	if pinned {
		collect(r.byUser[user])
		collect(r.byUser[""]) // registrations not pinned to a user
	} else {
		// Request does not pin a user: all buckets are candidates.
		for _, bucket := range r.byUser {
			collect(bucket)
		}
	}
	return classify(candidates, q)
}

// LinearLookup evaluates the request against every registration without
// using the index. It exists to quantify what the index buys (benchmark E6).
func (r *Registry) LinearLookup(q xpath.Path) []Match {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return classify(r.all, q)
}

func classify(candidates []*entry, q xpath.Path) []Match {
	var full, partial []Match
	seen := make(map[string]bool, len(candidates))
	for _, e := range candidates {
		dedupeKey := string(e.store) + "\x00" + e.pathStr
		if seen[dedupeKey] {
			continue
		}
		seen[dedupeKey] = true
		switch xpath.Covers(e.path, q) {
		case xpath.CoverFull:
			full = append(full, Match{Store: e.store, Path: e.path, Rel: xpath.CoverFull})
		case xpath.CoverPartial:
			partial = append(partial, Match{Store: e.store, Path: e.path, Rel: xpath.CoverPartial})
		}
	}
	orderMatches(full)
	orderMatches(partial)
	return append(full, partial...)
}

func orderMatches(ms []Match) {
	sort.Slice(ms, func(i, j int) bool {
		if ms[i].Store != ms[j].Store {
			return ms[i].Store < ms[j].Store
		}
		return ms[i].Path.String() < ms[j].Path.String()
	})
}

// Len returns the number of live registrations.
func (r *Registry) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.count
}

// Snapshot returns all registrations, ordered by user, store, path; for
// administration and tests.
func (r *Registry) Snapshot() []Registration {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]Registration, 0, len(r.all))
	for _, e := range r.all {
		out = append(out, Registration{Path: e.path, Store: e.store})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Store != out[j].Store {
			return out[i].Store < out[j].Store
		}
		return out[i].Path.String() < out[j].Path.String()
	})
	return out
}

// StoresFor returns the distinct stores holding any data for the user, in
// lexicographic order.
func (r *Registry) StoresFor(user string) []StoreID {
	r.mu.RLock()
	defer r.mu.RUnlock()
	set := make(map[StoreID]bool)
	for _, bucket := range []map[string][]*entry{r.byUser[user], r.byUser[""]} {
		for _, list := range bucket {
			for _, e := range list {
				set[e.store] = true
			}
		}
	}
	out := make([]StoreID, 0, len(set))
	for s := range set {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
