// Package pstn simulates the data-management plane of a Class-5 PSTN
// switch (paper §3.1.1, Figure 2): per-line profile data — call forwarding,
// call barring, caller-id flags, speed dial, 800-number resolution — stored
// inside the switch itself, which the paper points out makes it "hard to
// access and extend": provisioning is operator-only, with a narrow keypad
// self-service path for call forwarding.
//
// The switch exports line state as GUP components through an adapter so
// the wireline network can join the GUPster federation.
package pstn

import (
	"errors"
	"fmt"
	"sync"

	"gupster/internal/xmltree"
)

// Switch errors.
var (
	ErrNoLine       = errors.New("pstn: no such line")
	ErrBarred       = errors.New("pstn: call barred")
	ErrNotOperator  = errors.New("pstn: provisioning requires operator credentials")
	ErrForwardCycle = errors.New("pstn: forwarding loop")
)

// LineProfile is the per-line profile record a switch holds.
type LineProfile struct {
	Number     string
	Forwarding string
	Barred     []string
	CallerID   bool
	SpeedDial  map[string]string // key → number
	// Busy reflects current call status (the dynamic datum reach-me reads).
	Busy bool
}

// CallStatus describes a line's current state.
type CallStatus struct {
	Busy   bool
	Exists bool
}

// Switch is a Class-5 switch's profile store plus minimal call routing.
type Switch struct {
	ID string

	mu       sync.RWMutex
	lines    map[string]*LineProfile
	tollFree map[string]string // 800 number → real number
	operator string            // provisioning credential
}

// NewSwitch provisions a switch with an operator credential.
func NewSwitch(id, operatorKey string) *Switch {
	return &Switch{
		ID:       id,
		lines:    make(map[string]*LineProfile),
		tollFree: make(map[string]string),
		operator: operatorKey,
	}
}

// checkOperator gates the provisioning interfaces — the paper's point that
// PSTN provisioning "must be performed manually by network operators".
func (s *Switch) checkOperator(key string) error {
	if key != s.operator {
		return ErrNotOperator
	}
	return nil
}

// ProvisionLine creates a line (operator only).
func (s *Switch) ProvisionLine(operatorKey, number string) error {
	if err := s.checkOperator(operatorKey); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.lines[number]; dup {
		return fmt.Errorf("pstn: line %s exists", number)
	}
	s.lines[number] = &LineProfile{Number: number, CallerID: true, SpeedDial: make(map[string]string)}
	return nil
}

// SetBarring provisions barred callers (operator only).
func (s *Switch) SetBarring(operatorKey, number string, barred []string) error {
	if err := s.checkOperator(operatorKey); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	l, ok := s.lines[number]
	if !ok {
		return fmt.Errorf("%w: %s", ErrNoLine, number)
	}
	l.Barred = append([]string(nil), barred...)
	return nil
}

// SetTollFree provisions an 800-number mapping (operator only).
func (s *Switch) SetTollFree(operatorKey, tollFree, target string) error {
	if err := s.checkOperator(operatorKey); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.tollFree[tollFree] = target
	return nil
}

// KeypadSetForwarding is the narrow self-provisioning path: the subscriber
// can set call forwarding from the phone's keypad (*72 in practice). No
// operator credential, but nothing else is reachable this way.
func (s *Switch) KeypadSetForwarding(number, target string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	l, ok := s.lines[number]
	if !ok {
		return fmt.Errorf("%w: %s", ErrNoLine, number)
	}
	l.Forwarding = target
	return nil
}

// SetBusy toggles a line's call status (driven by the call plane).
func (s *Switch) SetBusy(number string, busy bool) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	l, ok := s.lines[number]
	if !ok {
		return fmt.Errorf("%w: %s", ErrNoLine, number)
	}
	l.Busy = busy
	return nil
}

// Status reports a line's current call status.
func (s *Switch) Status(number string) CallStatus {
	s.mu.RLock()
	defer s.mu.RUnlock()
	l, ok := s.lines[number]
	if !ok {
		return CallStatus{}
	}
	return CallStatus{Busy: l.Busy, Exists: true}
}

// Route resolves where a call from caller to callee should terminate,
// applying 800-resolution, barring, and forwarding chains (bounded to
// detect provisioning loops).
func (s *Switch) Route(caller, callee string) (string, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if real, ok := s.tollFree[callee]; ok {
		callee = real
	}
	seen := map[string]bool{}
	for {
		if seen[callee] {
			return "", fmt.Errorf("%w: via %s", ErrForwardCycle, callee)
		}
		seen[callee] = true
		l, ok := s.lines[callee]
		if !ok {
			return "", fmt.Errorf("%w: %s", ErrNoLine, callee)
		}
		for _, b := range l.Barred {
			if b == caller {
				return "", fmt.Errorf("%w: %s blocks %s", ErrBarred, callee, caller)
			}
		}
		if l.Forwarding == "" {
			return callee, nil
		}
		callee = l.Forwarding
	}
}

// Line returns a copy of a line's profile.
func (s *Switch) Line(number string) (LineProfile, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	l, ok := s.lines[number]
	if !ok {
		return LineProfile{}, fmt.Errorf("%w: %s", ErrNoLine, number)
	}
	cp := *l
	cp.Barred = append([]string(nil), l.Barred...)
	cp.SpeedDial = make(map[string]string, len(l.SpeedDial))
	for k, v := range l.SpeedDial {
		cp.SpeedDial[k] = v
	}
	return cp, nil
}

// DeviceComponent exports a line as a GUP <device>.
func (s *Switch) DeviceComponent(number, deviceID string) *xmltree.Node {
	s.mu.RLock()
	defer s.mu.RUnlock()
	l, ok := s.lines[number]
	if !ok {
		return nil
	}
	dev := xmltree.New("device").
		SetAttr("id", deviceID).
		SetAttr("network", "pstn").
		SetAttr("type", "phone")
	dev.Add(xmltree.NewText("number", l.Number))
	return dev
}

// ServicesComponent exports line features as a GUP <services> component.
func (s *Switch) ServicesComponent(number string) *xmltree.Node {
	s.mu.RLock()
	defer s.mu.RUnlock()
	l, ok := s.lines[number]
	if !ok {
		return nil
	}
	svc := xmltree.New("services")
	line := xmltree.New("service").SetAttr("name", "pstn-line").SetAttr("provider", s.ID)
	if l.Forwarding != "" {
		line.SetAttr("plan", "forwarded")
	}
	svc.Add(line)
	return svc
}
