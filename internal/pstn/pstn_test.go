package pstn

import (
	"errors"
	"testing"
)

const op = "operator-secret"

func newSwitch(t *testing.T) *Switch {
	t.Helper()
	s := NewSwitch("5ESS-murrayhill", op)
	for _, n := range []string{"908-555-0001", "908-555-0002", "908-555-0003"} {
		if err := s.ProvisionLine(op, n); err != nil {
			t.Fatal(err)
		}
	}
	return s
}

func TestOperatorGate(t *testing.T) {
	s := newSwitch(t)
	if err := s.ProvisionLine("wrong-key", "908-555-0009"); !errors.Is(err, ErrNotOperator) {
		t.Errorf("err = %v", err)
	}
	if err := s.SetBarring("wrong-key", "908-555-0001", nil); !errors.Is(err, ErrNotOperator) {
		t.Errorf("err = %v", err)
	}
	if err := s.SetTollFree("wrong-key", "800-555-1234", "908-555-0001"); !errors.Is(err, ErrNotOperator) {
		t.Errorf("err = %v", err)
	}
	// Keypad self-provisioning needs no credential — the one narrow path.
	if err := s.KeypadSetForwarding("908-555-0001", "908-555-0002"); err != nil {
		t.Errorf("keypad forwarding: %v", err)
	}
}

func TestProvisioningErrors(t *testing.T) {
	s := newSwitch(t)
	if err := s.ProvisionLine(op, "908-555-0001"); err == nil {
		t.Error("duplicate line accepted")
	}
	if err := s.SetBarring(op, "000", nil); !errors.Is(err, ErrNoLine) {
		t.Errorf("err = %v", err)
	}
	if err := s.KeypadSetForwarding("000", "x"); !errors.Is(err, ErrNoLine) {
		t.Errorf("err = %v", err)
	}
	if err := s.SetBusy("000", true); !errors.Is(err, ErrNoLine) {
		t.Errorf("err = %v", err)
	}
}

func TestRouteBasic(t *testing.T) {
	s := newSwitch(t)
	got, err := s.Route("caller", "908-555-0001")
	if err != nil || got != "908-555-0001" {
		t.Errorf("Route = %q, %v", got, err)
	}
	if _, err := s.Route("caller", "000"); !errors.Is(err, ErrNoLine) {
		t.Errorf("err = %v", err)
	}
}

func TestRouteForwardingChain(t *testing.T) {
	s := newSwitch(t)
	s.KeypadSetForwarding("908-555-0001", "908-555-0002")
	s.KeypadSetForwarding("908-555-0002", "908-555-0003")
	got, err := s.Route("caller", "908-555-0001")
	if err != nil || got != "908-555-0003" {
		t.Errorf("chained route = %q, %v", got, err)
	}
	// Loop detection.
	s.KeypadSetForwarding("908-555-0003", "908-555-0001")
	if _, err := s.Route("caller", "908-555-0001"); !errors.Is(err, ErrForwardCycle) {
		t.Errorf("loop: %v", err)
	}
}

func TestRouteBarring(t *testing.T) {
	s := newSwitch(t)
	s.SetBarring(op, "908-555-0001", []string{"telemarketer"})
	if _, err := s.Route("telemarketer", "908-555-0001"); !errors.Is(err, ErrBarred) {
		t.Errorf("err = %v", err)
	}
	if _, err := s.Route("friend", "908-555-0001"); err != nil {
		t.Errorf("friend blocked: %v", err)
	}
	// Barring applies mid-chain too.
	s.KeypadSetForwarding("908-555-0002", "908-555-0001")
	if _, err := s.Route("telemarketer", "908-555-0002"); !errors.Is(err, ErrBarred) {
		t.Errorf("mid-chain barring: %v", err)
	}
}

func TestTollFreeResolution(t *testing.T) {
	s := newSwitch(t)
	s.SetTollFree(op, "800-555-1234", "908-555-0003")
	got, err := s.Route("caller", "800-555-1234")
	if err != nil || got != "908-555-0003" {
		t.Errorf("800 route = %q, %v", got, err)
	}
}

func TestBusyStatus(t *testing.T) {
	s := newSwitch(t)
	if st := s.Status("908-555-0001"); !st.Exists || st.Busy {
		t.Errorf("fresh line status = %+v", st)
	}
	s.SetBusy("908-555-0001", true)
	if st := s.Status("908-555-0001"); !st.Busy {
		t.Errorf("busy not recorded")
	}
	if st := s.Status("000"); st.Exists {
		t.Errorf("ghost line exists")
	}
}

func TestLineCopySemantics(t *testing.T) {
	s := newSwitch(t)
	s.SetBarring(op, "908-555-0001", []string{"x"})
	l, err := s.Line("908-555-0001")
	if err != nil {
		t.Fatal(err)
	}
	l.Barred[0] = "MUTATED"
	l2, _ := s.Line("908-555-0001")
	if l2.Barred[0] != "x" {
		t.Error("Line aliases switch memory")
	}
	if _, err := s.Line("000"); !errors.Is(err, ErrNoLine) {
		t.Errorf("err = %v", err)
	}
}

func TestGUPExports(t *testing.T) {
	s := newSwitch(t)
	dev := s.DeviceComponent("908-555-0001", "office")
	if dev == nil || dev.ChildText("number") != "908-555-0001" {
		t.Errorf("device = %v", dev)
	}
	if n, _ := dev.Attr("network"); n != "pstn" {
		t.Errorf("network = %q", n)
	}
	svc := s.ServicesComponent("908-555-0001")
	if svc == nil || svc.Child("service") == nil {
		t.Errorf("services = %v", svc)
	}
	s.KeypadSetForwarding("908-555-0001", "908-555-0002")
	svc = s.ServicesComponent("908-555-0001")
	if p, _ := svc.Child("service").Attr("plan"); p != "forwarded" {
		t.Errorf("plan = %q", p)
	}
	if s.DeviceComponent("000", "x") != nil || s.ServicesComponent("000") != nil {
		t.Error("ghost exports should be nil")
	}
}
