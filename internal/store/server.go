package store

import (
	"context"
	"errors"
	"fmt"
	"time"

	"gupster/internal/flight"
	"gupster/internal/overload"
	"gupster/internal/syncml"
	"gupster/internal/token"
	"gupster/internal/trace"
	"gupster/internal/wire"
	"gupster/internal/xmltree"
	"gupster/internal/xpath"
)

// Server exposes an Engine over the wire protocol, enforcing the paper's
// access discipline (§5.3): every operation must carry a query signed by
// the MDM, addressed to this store, fresh, and with the right verb. The
// store itself keeps no access-control policy — that is the point of the
// signed-referral design.
type Server struct {
	Engine *Engine
	Signer *token.Signer
	sync   *syncml.Server
	ws     *wire.Server
	// Tracer records the store's share of traced requests.
	Tracer *trace.Collector
	// Admission gates the wire dispatch like the MDM's controller does:
	// fetches and execs outrank updates and sync traffic, and both classes
	// shed with a retry-after hint when saturated. Nil (the default)
	// admits everything.
	Admission *overload.Controller
}

// NewServer wraps an engine. Call Start to begin serving.
func NewServer(e *Engine, signer *token.Signer) *Server {
	return &Server{
		Engine: e,
		Signer: signer,
		sync:   &syncml.Server{Store: e, Keys: e.Keys, Adjuncts: e.Adjuncts},
		Tracer: trace.NewCollector("store", 0, 0),
	}
}

// traceCtx derives the serving context and span for a traced request: when
// the frame carries a span header the store's spans join the caller's
// trace and ride back on the reply. The parent carries the request's
// budget deadline, which the traced context inherits so sibling fetches
// (exec) stay inside the caller's remaining time. The caller must Finish
// the span before replying.
func (s *Server) traceCtx(parent context.Context, m *wire.Message, name string) (context.Context, *trace.Active) {
	if m.Trace == nil {
		return parent, nil
	}
	rec := trace.NewRequestRecorder(s.Tracer)
	m.SetSpanDrain(rec.Drain)
	ctx := trace.WithRemote(parent, m.Trace, "store", rec)
	ctx, sp := trace.Start(ctx, name)
	sp.Annotate("store=" + s.Engine.ID())
	return ctx, sp
}

// Start listens on addr ("127.0.0.1:0" picks a port).
func (s *Server) Start(addr string) error {
	ws, err := wire.Serve(addr, wire.HandlerFunc(s.serve))
	if err != nil {
		return err
	}
	s.ws = ws
	return nil
}

// Addr returns the listen address.
func (s *Server) Addr() string { return s.ws.Addr() }

// Close stops the server.
func (s *Server) Close() error { return s.ws.Close() }

func (s *Server) serve(c *wire.ServerConn, m *wire.Message) {
	// The request's remaining budget (if stamped) bounds everything the
	// store does on its behalf, including exec's sibling fetches.
	ctx, cancel := wire.BudgetContext(context.Background(), m)
	defer cancel()

	class := overload.Classify(m.Type)
	if ra, expired := s.Admission.ExpiredOnArrival(ctx, class); expired {
		s.shed(c, m, ra, "budget expired on arrival")
		return
	}
	release, err := s.Admission.Acquire(ctx, class)
	if err != nil {
		var shed *overload.ShedError
		if errors.As(err, &shed) {
			s.shed(c, m, shed.RetryAfter, shed.Reason)
		} else {
			s.shed(c, m, s.Admission.RetryAfter(class), "request expired in admission queue")
		}
		return
	}
	defer release()

	switch m.Type {
	case wire.TypeFetch:
		err = s.handleFetch(ctx, c, m)
	case wire.TypeUpdate:
		err = s.handleUpdate(ctx, c, m)
	case wire.TypeSyncStart:
		err = s.handleSyncStart(c, m)
	case wire.TypeSyncDelta:
		err = s.handleSyncDelta(c, m)
	case wire.TypeExec:
		err = s.handleExec(ctx, c, m)
	default:
		err = fmt.Errorf("store: unknown message type %q", m.Type)
	}
	if err != nil {
		_ = c.ReplyError(m, err)
	}
}

// shed answers a refused request with an overloaded frame; one-way frames
// drop silently.
func (s *Server) shed(c *wire.ServerConn, m *wire.Message, retryAfter time.Duration, reason string) {
	if m.ID == 0 {
		return
	}
	_ = c.ReplyOverloaded(m, retryAfter, reason)
}

// authorize verifies a signed query for a verb and returns its owner and
// granted path.
func (s *Server) authorize(q *token.SignedQuery, verb token.Verb) (string, xpath.Path, error) {
	if err := s.Signer.Verify(q, s.Engine.ID(), verb); err != nil {
		return "", xpath.Path{}, err
	}
	p, err := q.ParsedPath()
	if err != nil {
		return "", xpath.Path{}, err
	}
	return q.Owner, p, nil
}

func (s *Server) handleFetch(ctx context.Context, c *wire.ServerConn, m *wire.Message) error {
	var req wire.FetchRequest
	if err := wire.Unmarshal(m.Payload, &req); err != nil {
		return err
	}
	// The span finishes before Reply so the drain sees it on the frame.
	_, sp := s.traceCtx(ctx, m, "store.fetch")
	resp, err := s.fetch(&req)
	sp.Finish(err)
	if err != nil {
		return err
	}
	return c.Reply(m, resp)
}

func (s *Server) fetch(req *wire.FetchRequest) (wire.FetchResponse, error) {
	owner, path, err := s.authorize(&req.Query, token.VerbFetch)
	if err != nil {
		return wire.FetchResponse{}, err
	}
	doc, v, err := s.Engine.Get(owner, path)
	if err != nil {
		if errors.Is(err, ErrNoUser) || errors.Is(err, ErrNoComponent) {
			// Registered but empty: answer with an empty result rather than
			// an error so clients can merge across stores uniformly.
			return wire.FetchResponse{}, nil
		}
		return wire.FetchResponse{}, err
	}
	return wire.FetchResponse{XML: doc.String(), Version: v}, nil
}

func (s *Server) handleUpdate(ctx context.Context, c *wire.ServerConn, m *wire.Message) error {
	var req wire.UpdateRequest
	if err := wire.Unmarshal(m.Payload, &req); err != nil {
		return err
	}
	_, sp := s.traceCtx(ctx, m, "store.update")
	resp, err := s.update(&req)
	sp.Finish(err)
	if err != nil {
		return err
	}
	return c.Reply(m, resp)
}

func (s *Server) update(req *wire.UpdateRequest) (wire.UpdateResponse, error) {
	owner, path, err := s.authorize(&req.Query, token.VerbUpdate)
	if err != nil {
		return wire.UpdateResponse{}, err
	}
	frag, err := xmltree.ParseString(req.XML)
	if err != nil {
		return wire.UpdateResponse{}, fmt.Errorf("store: update body: %w", err)
	}
	v, err := s.Engine.Put(owner, path, frag)
	if err != nil {
		return wire.UpdateResponse{}, err
	}
	return wire.UpdateResponse{Version: v}, nil
}

func (s *Server) handleSyncStart(c *wire.ServerConn, m *wire.Message) error {
	var req wire.SyncStartRequest
	if err := wire.Unmarshal(m.Payload, &req); err != nil {
		return err
	}
	// Synchronization reads and writes; it requires an update grant.
	owner, path, err := s.authorize(&req.Query, token.VerbUpdate)
	if err != nil {
		return err
	}
	resp, err := s.sync.HandleStart(owner, path, req.LastAnchor)
	if err != nil {
		return err
	}
	return c.Reply(m, resp)
}

func (s *Server) handleSyncDelta(c *wire.ServerConn, m *wire.Message) error {
	var req wire.SyncDeltaRequest
	if err := wire.Unmarshal(m.Payload, &req); err != nil {
		return err
	}
	owner, path, err := s.authorize(&req.Query, token.VerbUpdate)
	if err != nil {
		return err
	}
	resp, err := s.sync.HandleDelta(owner, path, &req)
	if err != nil {
		return err
	}
	return c.Reply(m, resp)
}

// handleExec implements the recruiting pattern (§5.2): this store serves its
// own piece, fetches the sibling pieces from their stores, merges, and
// returns the result — the client makes one round trip.
func (s *Server) handleExec(ctx context.Context, c *wire.ServerConn, m *wire.Message) error {
	var req wire.ExecRequest
	if err := wire.Unmarshal(m.Payload, &req); err != nil {
		return err
	}
	ctx, sp := s.traceCtx(ctx, m, "store.exec")
	resp, err := s.exec(ctx, &req)
	sp.Finish(err)
	if err != nil {
		return err
	}
	return c.Reply(m, resp)
}

func (s *Server) exec(ctx context.Context, req *wire.ExecRequest) (wire.ExecResponse, error) {
	owner, path, err := s.authorize(&req.Primary.Query, token.VerbFetch)
	if err != nil {
		return wire.ExecResponse{}, err
	}
	// The primary piece merges first; siblings are gathered concurrently
	// on a bounded pool and merged in referral order, matching the serial
	// loop this replaces. The traced ctx rides into the sibling fetches so
	// their stores' spans join the trace one hop deeper.
	pieces := make([]*xmltree.Node, 1+len(req.Siblings))
	if doc, _, gerr := s.Engine.Get(owner, path); gerr == nil {
		pieces[0] = doc
	}
	err = flight.ForEach(ctx, len(req.Siblings), flight.DefaultWorkers, func(i int) error {
		ref := req.Siblings[i]
		cli, derr := DialClient(ref.Address)
		if derr != nil {
			return fmt.Errorf("store: recruit %s: %w", ref.Address, derr)
		}
		doc, _, ferr := cli.Fetch(ctx, ref.Query)
		cli.Close()
		if ferr != nil {
			return fmt.Errorf("store: recruit fetch %s: %w", ref.Address, ferr)
		}
		pieces[i+1] = doc
		return nil
	})
	if err != nil {
		return wire.ExecResponse{}, err
	}
	docs := make([]*xmltree.Node, 0, len(pieces))
	for _, d := range pieces {
		if d != nil {
			docs = append(docs, d)
		}
	}
	merged := xmltree.MergeAll(s.Engine.Keys, docs...)
	resp := wire.ExecResponse{}
	if merged != nil {
		resp.XML = merged.String()
	}
	return resp, nil
}
