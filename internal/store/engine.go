// Package store implements a GUP-enabled data store (paper §4.2): a node
// that holds user-profile components as subtrees of the GUP schema and
// serves them through the GUP interface — fetch, update and synchronize —
// accepting only queries signed by the MDM (§5.3).
//
// The Engine is the storage core: per-user profile trees, per-component
// monotonic versions, and bounded change logs that make fast (delta)
// synchronization possible. Server wraps an Engine behind the wire
// protocol.
package store

import (
	"errors"
	"fmt"
	"sync"

	"gupster/internal/schema"
	"gupster/internal/xmltree"
	"gupster/internal/xpath"
)

// Storage errors.
var (
	ErrNoUser      = errors.New("store: no such user")
	ErrNoComponent = errors.New("store: nothing stored under path")
)

// changeRec is one entry of a component change log.
type changeRec struct {
	version uint64
	ops     []xmltree.Op
}

// maxLogPerComponent bounds change-log memory; a device that falls further
// behind than this performs a slow sync.
const maxLogPerComponent = 256

// Engine is the in-memory storage core of a data store. All methods are
// safe for concurrent use.
type Engine struct {
	id string

	// Schema, when non-nil, validates incoming component writes.
	Schema *schema.Schema
	// Adjuncts, when non-nil, supply per-component defaults (reconciliation
	// policy for syncs; see schema.Adjuncts).
	Adjuncts *schema.Adjuncts
	// Keys drives item identity for diffs and merges.
	Keys xmltree.KeySpec

	mu      sync.RWMutex
	docs    map[string]*xmltree.Node // user → profile tree rooted at <user>
	version uint64                   // global monotonic write counter
	// compVer tracks the version of the last write touching (user, section).
	compVer map[string]uint64
	// logs holds per-(user, component-path) change logs.
	logs map[string][]changeRec

	// onChange, when set, runs after every successful write, outside the
	// engine lock. Used by the server to notify the MDM and subscribers.
	onChange func(user string, path xpath.Path, frag *xmltree.Node, version uint64)
}

// NewEngine returns an empty engine for the named store.
func NewEngine(id string) *Engine {
	return &Engine{
		id:      id,
		Keys:    xmltree.DefaultKeys,
		docs:    make(map[string]*xmltree.Node),
		compVer: make(map[string]uint64),
		logs:    make(map[string][]changeRec),
	}
}

// ID returns the store identity used in coverage registrations and tokens.
func (e *Engine) ID() string { return e.id }

// OnChange registers the write hook. Must be called before the engine is
// shared across goroutines.
func (e *Engine) OnChange(fn func(user string, path xpath.Path, frag *xmltree.Node, version uint64)) {
	e.onChange = fn
}

func compKey(user string, p xpath.Path) string {
	return user + "\x00" + p.String()
}

// sectionKey identifies the component-version bucket: user plus top-level
// section name (or "" for whole-profile writes).
func sectionKey(user string, p xpath.Path) string {
	if len(p.Steps) >= 2 {
		return user + "\x00" + p.Steps[1].Name
	}
	return user + "\x00"
}

// Put writes the component at path for the user, creating the user document
// and the ancestor spine as needed. It returns the new component version.
//
// Two fragment shapes are accepted:
//
//   - component replace: frag is rooted at the element the path's last step
//     names (an <address-book> fragment for /user[@id='u']/address-book) —
//     the selected element is replaced wholesale;
//   - scoped replace: frag is rooted at the *parent* element of the last
//     step (an <address-book> fragment for
//     /user[@id='u']/address-book/item[@type='personal']) — only the
//     parent's children matching the last step are replaced by frag's
//     matching children. This is how partial-coverage updates (Figure 9
//     splits) write just their piece.
func (e *Engine) Put(user string, path xpath.Path, frag *xmltree.Node) (uint64, error) {
	if len(path.Steps) == 0 {
		return 0, fmt.Errorf("store: empty path")
	}
	if frag == nil {
		return 0, fmt.Errorf("store: nil fragment")
	}
	last := path.Steps[len(path.Steps)-1]
	scoped := false
	if last.Name != "*" && last.Name != frag.Name {
		if len(path.Steps) >= 2 {
			parent := path.Steps[len(path.Steps)-2]
			scoped = parent.Name == frag.Name || parent.Name == "*"
		}
		if !scoped {
			return 0, fmt.Errorf("store: fragment <%s> matches neither path step <%s> nor its parent", frag.Name, last.Name)
		}
	}

	logPath := path
	if scoped {
		logPath = path.Prefix(len(path.Steps) - 1)
	}
	if e.Schema != nil && len(logPath.Steps) > 1 {
		if err := e.Schema.ValidateComponent(barePath(logPath), frag); err != nil {
			return 0, err
		}
	}

	e.mu.Lock()
	doc := e.docs[user]
	if doc == nil {
		doc = xmltree.New("user").SetAttr("id", user)
		e.docs[user] = doc
	}
	var oldComp, newComp *xmltree.Node
	if sel := xpath.Select(doc, logPath); len(sel) > 0 {
		oldComp = sel[0].Clone()
	}
	if scoped {
		scopedReplace(doc, path, frag)
	} else {
		graft(doc, path, frag.Clone())
	}
	if sel := xpath.Select(doc, logPath); len(sel) > 0 {
		newComp = sel[0].Clone()
	}
	e.version++
	v := e.version
	e.compVer[sectionKey(user, path)] = v

	// Append item-level ops to the change log for delta sync.
	key := compKey(user, logPath)
	ops := xmltree.Diff(oldComp, newComp, e.Keys)
	if len(ops) > 0 {
		log := append(e.logs[key], changeRec{version: v, ops: ops})
		if len(log) > maxLogPerComponent {
			log = log[len(log)-maxLogPerComponent:]
		}
		e.logs[key] = log
	}
	hook := e.onChange
	e.mu.Unlock()

	if hook != nil && newComp != nil {
		hook(user, logPath, newComp, v)
	}
	return v, nil
}

// scopedReplace swaps the children of the last step's parent that match the
// last step for frag's matching children, creating the parent spine as
// needed.
func scopedReplace(doc *xmltree.Node, path xpath.Path, frag *xmltree.Node) {
	parentPath := path.Prefix(len(path.Steps) - 1)
	last := path.Steps[len(path.Steps)-1]
	parents := xpath.Select(doc, parentPath)
	if len(parents) == 0 {
		shell := &xmltree.Node{Name: frag.Name, Text: frag.Text}
		for k, val := range frag.Attrs {
			shell.SetAttr(k, val)
		}
		graft(doc, parentPath, shell)
		parents = xpath.Select(doc, parentPath)
		if len(parents) == 0 {
			return
		}
	}
	parent := parents[0]
	kept := parent.Children[:0]
	for _, c := range parent.Children {
		if !last.Matches(c) {
			kept = append(kept, c)
		}
	}
	parent.Children = kept
	for _, c := range frag.Children {
		if last.Matches(c) {
			parent.Children = append(parent.Children, c.Clone())
		}
	}
}

// barePath strips predicates off the first step so component validation
// resolves against the schema regardless of the user pin.
func barePath(p xpath.Path) xpath.Path {
	steps := make([]xpath.Step, len(p.Steps))
	copy(steps, p.Steps)
	steps[0] = xpath.Step{Name: steps[0].Name}
	return xpath.Path{Steps: steps, Attr: p.Attr}
}

// graft places frag at path inside doc, creating missing spine elements.
// Existing elements matching the final step are replaced; otherwise the
// fragment is appended under the deepest existing ancestor.
func graft(doc *xmltree.Node, path xpath.Path, frag *xmltree.Node) {
	if len(path.Steps) == 1 {
		// Whole-profile write: replace content but keep identity attrs.
		id, hasID := doc.Attr("id")
		*doc = *frag
		if hasID {
			if _, ok := doc.Attr("id"); !ok {
				doc.SetAttr("id", id)
			}
		}
		return
	}
	parent := doc
	for _, step := range path.Steps[1 : len(path.Steps)-1] {
		next := firstMatch(parent, step)
		if next == nil {
			next = xmltree.New(step.Name)
			applyPreds(next, step)
			parent.Add(next)
		}
		parent = next
	}
	last := path.Steps[len(path.Steps)-1]
	if existing := firstMatch(parent, last); existing != nil {
		*existing = *frag
		return
	}
	applyPreds(frag, last)
	parent.Add(frag)
}

func firstMatch(n *xmltree.Node, step xpath.Step) *xmltree.Node {
	for _, c := range n.Children {
		if step.Matches(c) {
			return c
		}
	}
	return nil
}

// applyPreds stamps equality predicates onto a created node so the spine
// satisfies the path used to create it.
func applyPreds(n *xmltree.Node, step xpath.Step) {
	for _, p := range step.Preds {
		if p.HasValue {
			if _, ok := n.Attr(p.Attr); !ok {
				n.SetAttr(p.Attr, p.Value)
			}
		}
	}
}

// Get returns the pruned profile document (ancestor spine plus the subtrees
// selected by path) for the user, and the version of the newest write
// touching the path's section. Merging results from several stores is then
// a DeepUnion of the returned documents.
func (e *Engine) Get(user string, path xpath.Path) (*xmltree.Node, uint64, error) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	doc := e.docs[user]
	if doc == nil {
		return nil, 0, fmt.Errorf("%w: %s", ErrNoUser, user)
	}
	out := xpath.Extract(doc, path)
	if out == nil {
		return nil, 0, fmt.Errorf("%w: %s", ErrNoComponent, path)
	}
	return out, e.compVer[sectionKey(user, path)], nil
}

// GetComponent returns the first element selected by path (the component
// fragment itself rather than the spine document).
func (e *Engine) GetComponent(user string, path xpath.Path) (*xmltree.Node, uint64, error) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	doc := e.docs[user]
	if doc == nil {
		return nil, 0, fmt.Errorf("%w: %s", ErrNoUser, user)
	}
	sel := xpath.Select(doc, path)
	if len(sel) == 0 {
		return nil, 0, fmt.Errorf("%w: %s", ErrNoComponent, path)
	}
	return sel[0].Clone(), e.compVer[sectionKey(user, path)], nil
}

// Delete removes the elements selected by path and returns how many were
// removed.
func (e *Engine) Delete(user string, path xpath.Path) (int, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	doc := e.docs[user]
	if doc == nil {
		return 0, fmt.Errorf("%w: %s", ErrNoUser, user)
	}
	n := xpath.ReplaceAt(doc, path, nil)
	if n > 0 {
		e.version++
		e.compVer[sectionKey(user, path)] = e.version
		// Deletes are not recorded item-by-item; drop the user's change
		// logs so devices that predate the delete fall back to slow sync
		// rather than silently missing it.
		prefix := user + "\x00"
		for k := range e.logs {
			if len(k) >= len(prefix) && k[:len(prefix)] == prefix {
				delete(e.logs, k)
			}
		}
	}
	return n, nil
}

// Version returns the engine's global write counter.
func (e *Engine) Version() uint64 {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.version
}

// ComponentVersion returns the version of the last write touching the
// path's section for the user (0 if never written).
func (e *Engine) ComponentVersion(user string, path xpath.Path) uint64 {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.compVer[sectionKey(user, path)]
}

// ChangesSince returns the item ops recorded for (user, path) after version
// since, flattened in order. ok is false when the log cannot serve the
// request (device too far behind, or no log) — the caller must slow-sync.
func (e *Engine) ChangesSince(user string, path xpath.Path, since uint64) (ops []xmltree.Op, ok bool) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	cur := e.compVer[sectionKey(user, path)]
	if since == cur {
		return nil, true // up to date
	}
	if since > cur || since == 0 {
		return nil, false
	}
	log := e.logs[compKey(user, path)]
	// The device's anchor is a component version it observed, so a record
	// with that exact version (or older) must still be retained — otherwise
	// intervening changes may have been evicted and only a slow sync is
	// sound.
	anchorIdx := -1
	for i, rec := range log {
		if rec.version <= since {
			anchorIdx = i
		} else {
			break
		}
	}
	if anchorIdx == -1 {
		return nil, false
	}
	for _, rec := range log[anchorIdx+1:] {
		ops = append(ops, rec.ops...)
	}
	return ops, true
}

// Users returns the identities this store holds data for.
func (e *Engine) Users() []string {
	e.mu.RLock()
	defer e.mu.RUnlock()
	out := make([]string, 0, len(e.docs))
	for u := range e.docs {
		out = append(out, u)
	}
	return out
}
