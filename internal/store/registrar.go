package store

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"gupster/internal/wire"
)

// Registrar keeps a data store's coverage alive at the MDM: it announces
// the store's registrations at startup, heartbeats them on an interval so
// the MDM's lease never lapses, and — when a heartbeat comes back
// Known=false (an MDM that restarted without its journal and forgot the
// directory) — re-registers every coverage path automatically. Combined
// with the MDM's own journal this closes the recovery loop from both
// sides: a durable MDM needs no re-registration, and a forgetful one is
// healed by its stores within one heartbeat interval.
type Registrar struct {
	cfg RegistrarConfig

	mu   sync.Mutex
	conn *wire.Client
	// target is the MDM address currently dialed: cfg.MDM until a
	// replicated constellation redirects us to its leader, cfg.MDM again
	// when that leader stops answering.
	target string

	stop     chan struct{}
	stopOnce sync.Once
	done     sync.WaitGroup

	// Heartbeats and Reregistrations count successful renewals and full
	// coverage replays (observability, tests).
	Heartbeats      atomic.Uint64
	Reregistrations atomic.Uint64
}

// RegistrarConfig parameterizes a Registrar.
type RegistrarConfig struct {
	// Store is the store identity; Addr its dialable address, announced
	// with every registration and heartbeat.
	Store string
	Addr  string
	// MDM is the directory's address.
	MDM string
	// Coverage lists the store's coverage paths.
	Coverage []string
	// Interval is the heartbeat cadence; 0 disables heartbeating (the
	// registrar then only registers once). Keep it under the MDM's lease
	// TTL — half the TTL is a good default.
	Interval time.Duration
	// Logf, when non-nil, receives registrar events (reconnects,
	// re-registrations).
	Logf func(format string, args ...any)
}

// NewRegistrar creates a registrar; call Start.
func NewRegistrar(cfg RegistrarConfig) *Registrar {
	return &Registrar{cfg: cfg, stop: make(chan struct{})}
}

func (r *Registrar) logf(format string, args ...any) {
	if r.cfg.Logf != nil {
		r.cfg.Logf(format, args...)
	}
}

// client returns the registrar's MDM connection, dialing if needed.
func (r *Registrar) client() (*wire.Client, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.conn != nil {
		return r.conn, nil
	}
	if r.target == "" {
		r.target = r.cfg.MDM
	}
	c, err := wire.Dial(r.target)
	if err != nil {
		// The current target (possibly a redirected-to leader that died)
		// is unreachable: fall back to the configured seed address.
		r.target = r.cfg.MDM
		return nil, err
	}
	r.conn = c
	return c, nil
}

// dropConn discards the connection after a transport failure so the next
// call redials (the MDM may have restarted), and forgets any redirected
// leader — the configured address is the seed we can always start from.
func (r *Registrar) dropConn() {
	r.mu.Lock()
	if r.conn != nil {
		r.conn.Close()
		r.conn = nil
	}
	r.target = r.cfg.MDM
	r.mu.Unlock()
}

// rehome re-points the registrar at a replicated constellation's current
// leader after a not-leader redirect.
func (r *Registrar) rehome(leaderAddr string) {
	r.mu.Lock()
	if r.conn != nil {
		r.conn.Close()
		r.conn = nil
	}
	if leaderAddr != "" {
		r.target = leaderAddr
	}
	r.mu.Unlock()
}

// call invokes one MDM operation, redialing once on transport failure
// and following one not-leader redirect to the constellation's leader.
func (r *Registrar) call(ctx context.Context, msgType string, req, resp any) error {
	for attempt := 0; ; attempt++ {
		c, err := r.client()
		if err == nil {
			err = c.Call(ctx, msgType, req, resp)
			if err == nil {
				return nil
			}
			var notLeader *wire.NotLeaderError
			if errors.As(err, &notLeader) {
				r.logf("registrar: %s redirected to leader %q", msgType, notLeader.LeaderAddr)
				r.rehome(notLeader.LeaderAddr)
				if attempt >= 4 {
					return err
				}
				if notLeader.LeaderAddr == "" {
					// Mid-election: no leader to re-home to yet. Elections
					// settle within a lease TTL; wait a beat and ask again.
					select {
					case <-ctx.Done():
						return err
					case <-time.After(100 * time.Millisecond):
					}
				}
				continue
			}
			var wrongShard *wire.WrongShardError
			if errors.As(err, &wrongShard) && wrongShard.Addr != "" {
				// A sharded directory: this path's owner lives on another
				// shard. Re-home there; a store whose coverage spans shards
				// bounces per path, which is fine at registration cadence.
				r.logf("registrar: %s redirected to shard %q at %q", msgType, wrongShard.ShardID, wrongShard.Addr)
				r.rehome(wrongShard.Addr)
				if attempt >= 4 {
					return err
				}
				continue
			}
			var remote *wire.RemoteError
			if errors.As(err, &remote) {
				return err // the MDM answered; redialing cannot help
			}
			r.dropConn()
		}
		if attempt >= 1 {
			return err
		}
	}
}

// Register announces every coverage path (idempotent at the MDM).
func (r *Registrar) Register(ctx context.Context) error {
	for _, path := range r.cfg.Coverage {
		err := r.call(ctx, wire.TypeRegister, &wire.RegisterRequest{
			Store: r.cfg.Store, Address: r.cfg.Addr, Path: path,
		}, nil)
		if err != nil {
			return fmt.Errorf("register %q: %w", path, err)
		}
	}
	return nil
}

// Deregister withdraws every coverage path (orderly shutdown).
func (r *Registrar) Deregister(ctx context.Context) error {
	var firstErr error
	for _, path := range r.cfg.Coverage {
		err := r.call(ctx, wire.TypeUnregister, &wire.UnregisterRequest{
			Store: r.cfg.Store, Path: path,
		}, nil)
		if err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// Start registers the coverage and, with an interval configured, begins
// heartbeating in the background. The initial registration failing is an
// error — a store that cannot reach its directory at startup is
// misconfigured; transient failures later are retried forever.
func (r *Registrar) Start(ctx context.Context) error {
	if err := r.Register(ctx); err != nil {
		return err
	}
	if r.cfg.Interval > 0 {
		r.done.Add(1)
		go r.loop()
	}
	return nil
}

// loop heartbeats until Close.
func (r *Registrar) loop() {
	defer r.done.Done()
	t := time.NewTicker(r.cfg.Interval)
	defer t.Stop()
	for {
		select {
		case <-r.stop:
			return
		case <-t.C:
			r.beat()
		}
	}
}

// beat sends one heartbeat, re-registering when the MDM does not know us.
func (r *Registrar) beat() {
	ctx, cancel := context.WithTimeout(context.Background(), r.cfg.Interval)
	defer cancel()
	var resp wire.HeartbeatResponse
	err := r.call(ctx, wire.TypeHeartbeat, &wire.HeartbeatRequest{
		Store: r.cfg.Store, Addr: r.cfg.Addr,
	}, &resp)
	if err != nil {
		r.logf("registrar: heartbeat: %v", err)
		return
	}
	r.Heartbeats.Add(1)
	if !resp.Known {
		// The directory forgot us (restart without a journal): replay the
		// whole coverage.
		r.logf("registrar: MDM does not know %s; re-registering %d paths", r.cfg.Store, len(r.cfg.Coverage))
		if err := r.Register(ctx); err != nil {
			r.logf("registrar: re-register: %v", err)
			return
		}
		r.Reregistrations.Add(1)
	}
}

// Close stops heartbeating and drops the MDM connection. It does not
// deregister — call Deregister first for an orderly departure; after a
// crash the MDM's lease machinery quarantines the silence.
func (r *Registrar) Close() {
	r.stopOnce.Do(func() { close(r.stop) })
	r.done.Wait()
	r.dropConn()
}
