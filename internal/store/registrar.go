package store

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"gupster/internal/wire"
)

// Registrar keeps a data store's coverage alive at the MDM: it announces
// the store's registrations at startup, heartbeats them on an interval so
// the MDM's lease never lapses, and — when a heartbeat comes back
// Known=false (an MDM that restarted without its journal and forgot the
// directory) — re-registers every coverage path automatically. Combined
// with the MDM's own journal this closes the recovery loop from both
// sides: a durable MDM needs no re-registration, and a forgetful one is
// healed by its stores within one heartbeat interval.
type Registrar struct {
	cfg RegistrarConfig

	mu   sync.Mutex
	conn *wire.Client
	// target is the MDM address currently dialed: cfg.MDM until a
	// replicated constellation redirects us to its leader, cfg.MDM again
	// when that leader stops answering.
	target string
	// seeds are every directory address the registrar can fall back to:
	// the configured MDM plus every shard address learned from the
	// directory's shard map (fetched once per connection, and absorbed
	// from wrong-shard redirects). When the current target stops dialing
	// — its shard died and a spare was promoted in its place — the
	// registrar rotates to the next seed instead of redialing the corpse
	// forever.
	seeds []string
	// seedsFresh is cleared whenever the connection is dropped or
	// re-homed so the next successful call re-fetches the map (a repair
	// may have changed it).
	seedsFresh bool

	stop     chan struct{}
	stopOnce sync.Once
	done     sync.WaitGroup

	// Heartbeats and Reregistrations count successful renewals and full
	// coverage replays (observability, tests).
	Heartbeats      atomic.Uint64
	Reregistrations atomic.Uint64
}

// RegistrarConfig parameterizes a Registrar.
type RegistrarConfig struct {
	// Store is the store identity; Addr its dialable address, announced
	// with every registration and heartbeat.
	Store string
	Addr  string
	// MDM is the directory's address.
	MDM string
	// Coverage lists the store's coverage paths.
	Coverage []string
	// Interval is the heartbeat cadence; 0 disables heartbeating (the
	// registrar then only registers once). Keep it under the MDM's lease
	// TTL — half the TTL is a good default.
	Interval time.Duration
	// Logf, when non-nil, receives registrar events (reconnects,
	// re-registrations).
	Logf func(format string, args ...any)
}

// NewRegistrar creates a registrar; call Start.
func NewRegistrar(cfg RegistrarConfig) *Registrar {
	return &Registrar{cfg: cfg, stop: make(chan struct{})}
}

func (r *Registrar) logf(format string, args ...any) {
	if r.cfg.Logf != nil {
		r.cfg.Logf(format, args...)
	}
}

// client returns the registrar's MDM connection, dialing if needed.
func (r *Registrar) client() (*wire.Client, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.conn != nil {
		return r.conn, nil
	}
	if r.target == "" {
		r.target = r.cfg.MDM
	}
	c, err := wire.Dial(r.target)
	if err != nil {
		// The current target (a redirected-to leader or shard that died)
		// is unreachable: rotate to the next known seed so a dead home
		// shard cannot strand us — its replacement answers on another
		// address and will redirect us the rest of the way.
		r.target = r.nextSeedLocked(r.target)
		return nil, err
	}
	r.conn = c
	return c, nil
}

// nextSeedLocked returns the seed to try after cur, wrapping around the
// learned list; with nothing learned it falls back to the configured
// address. Callers hold r.mu.
func (r *Registrar) nextSeedLocked(cur string) string {
	if len(r.seeds) == 0 {
		return r.cfg.MDM
	}
	for i, s := range r.seeds {
		if s == cur {
			return r.seeds[(i+1)%len(r.seeds)]
		}
	}
	return r.seeds[0]
}

// learnSeedsLocked merges newly discovered directory addresses into the
// rotation list, keeping the configured address present and the existing
// order stable. Callers hold r.mu.
func (r *Registrar) learnSeedsLocked(addrs []string) {
	have := make(map[string]bool, len(r.seeds)+1)
	for _, s := range r.seeds {
		have[s] = true
	}
	if !have[r.cfg.MDM] {
		r.seeds = append(r.seeds, r.cfg.MDM)
		have[r.cfg.MDM] = true
	}
	for _, a := range addrs {
		if a != "" && !have[a] {
			r.seeds = append(r.seeds, a)
			have[a] = true
		}
	}
}

// maybeLearnMap fetches the directory's shard map once per connection and
// absorbs every shard address as a fallback seed. A non-sharded directory
// refuses the call; either way the connection is marked fresh so the
// probe is not repeated until the next reconnect or re-home.
func (r *Registrar) maybeLearnMap(ctx context.Context, c *wire.Client) {
	r.mu.Lock()
	fresh := r.seedsFresh
	r.seedsFresh = true
	r.mu.Unlock()
	if fresh {
		return
	}
	var mp wire.ShardMap
	if err := c.Call(ctx, wire.TypeShardMap, wire.Empty{}, &mp); err != nil || len(mp.Shards) == 0 {
		return
	}
	addrs := make([]string, 0, len(mp.Shards))
	for _, s := range mp.Shards {
		addrs = append(addrs, s.Addr)
	}
	r.mu.Lock()
	r.learnSeedsLocked(addrs)
	n := len(r.seeds)
	r.mu.Unlock()
	r.logf("registrar: learned shard map v%d (%d fallback seeds)", mp.Version, n)
}

// dropConn discards the connection after a transport failure so the next
// call redials (the MDM may have restarted), and forgets any redirected
// leader — the configured address is the seed we can always start from.
func (r *Registrar) dropConn() {
	r.mu.Lock()
	if r.conn != nil {
		r.conn.Close()
		r.conn = nil
	}
	r.target = r.cfg.MDM
	r.seedsFresh = false
	r.mu.Unlock()
}

// rehome re-points the registrar at a replicated constellation's current
// leader after a not-leader redirect.
func (r *Registrar) rehome(leaderAddr string) {
	r.mu.Lock()
	if r.conn != nil {
		r.conn.Close()
		r.conn = nil
	}
	if leaderAddr != "" {
		r.target = leaderAddr
	}
	r.seedsFresh = false
	r.mu.Unlock()
}

// call invokes one MDM operation, redialing once on transport failure
// and following one not-leader redirect to the constellation's leader.
func (r *Registrar) call(ctx context.Context, msgType string, req, resp any) error {
	for attempt := 0; ; attempt++ {
		c, err := r.client()
		if err == nil {
			err = c.Call(ctx, msgType, req, resp)
			if err == nil {
				r.maybeLearnMap(ctx, c)
				return nil
			}
			var notLeader *wire.NotLeaderError
			if errors.As(err, &notLeader) {
				r.logf("registrar: %s redirected to leader %q", msgType, notLeader.LeaderAddr)
				r.rehome(notLeader.LeaderAddr)
				if attempt >= 4 {
					return err
				}
				if notLeader.LeaderAddr == "" {
					// Mid-election: no leader to re-home to yet. Elections
					// settle within a lease TTL; wait a beat and ask again.
					select {
					case <-ctx.Done():
						return err
					case <-time.After(100 * time.Millisecond):
					}
				}
				continue
			}
			var wrongShard *wire.WrongShardError
			if errors.As(err, &wrongShard) && wrongShard.Addr != "" {
				// A sharded directory: this path's owner lives on another
				// shard. Re-home there; a store whose coverage spans shards
				// bounces per path, which is fine at registration cadence.
				r.logf("registrar: %s redirected to shard %q at %q", msgType, wrongShard.ShardID, wrongShard.Addr)
				r.rehome(wrongShard.Addr)
				if wrongShard.Map != nil {
					addrs := make([]string, 0, len(wrongShard.Map.Shards))
					for _, s := range wrongShard.Map.Shards {
						addrs = append(addrs, s.Addr)
					}
					r.mu.Lock()
					r.learnSeedsLocked(addrs)
					r.mu.Unlock()
				}
				if attempt >= 4 {
					return err
				}
				continue
			}
			var remote *wire.RemoteError
			if errors.As(err, &remote) {
				return err // the MDM answered; redialing cannot help
			}
			r.dropConn()
		}
		// With fallback seeds learned, allow one attempt per seed so a
		// single call can rotate past dead addresses; otherwise keep the
		// historical redial-once behavior.
		r.mu.Lock()
		limit := len(r.seeds)
		r.mu.Unlock()
		if limit < 1 {
			limit = 1
		}
		if attempt >= limit {
			return err
		}
	}
}

// Register announces every coverage path (idempotent at the MDM).
func (r *Registrar) Register(ctx context.Context) error {
	for _, path := range r.cfg.Coverage {
		err := r.call(ctx, wire.TypeRegister, &wire.RegisterRequest{
			Store: r.cfg.Store, Address: r.cfg.Addr, Path: path,
		}, nil)
		if err != nil {
			return fmt.Errorf("register %q: %w", path, err)
		}
	}
	return nil
}

// Deregister withdraws every coverage path (orderly shutdown).
func (r *Registrar) Deregister(ctx context.Context) error {
	var firstErr error
	for _, path := range r.cfg.Coverage {
		err := r.call(ctx, wire.TypeUnregister, &wire.UnregisterRequest{
			Store: r.cfg.Store, Path: path,
		}, nil)
		if err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// Start registers the coverage and, with an interval configured, begins
// heartbeating in the background. The initial registration failing is an
// error — a store that cannot reach its directory at startup is
// misconfigured; transient failures later are retried forever.
func (r *Registrar) Start(ctx context.Context) error {
	if err := r.Register(ctx); err != nil {
		return err
	}
	if r.cfg.Interval > 0 {
		r.done.Add(1)
		go r.loop()
	}
	return nil
}

// loop heartbeats until Close.
func (r *Registrar) loop() {
	defer r.done.Done()
	t := time.NewTicker(r.cfg.Interval)
	defer t.Stop()
	for {
		select {
		case <-r.stop:
			return
		case <-t.C:
			r.beat()
		}
	}
}

// beat sends one heartbeat, re-registering when the MDM does not know us.
func (r *Registrar) beat() {
	ctx, cancel := context.WithTimeout(context.Background(), r.cfg.Interval)
	defer cancel()
	var resp wire.HeartbeatResponse
	err := r.call(ctx, wire.TypeHeartbeat, &wire.HeartbeatRequest{
		Store: r.cfg.Store, Addr: r.cfg.Addr,
	}, &resp)
	if err != nil {
		r.logf("registrar: heartbeat: %v", err)
		return
	}
	r.Heartbeats.Add(1)
	if !resp.Known {
		// The directory forgot us (restart without a journal): replay the
		// whole coverage.
		r.logf("registrar: MDM does not know %s; re-registering %d paths", r.cfg.Store, len(r.cfg.Coverage))
		if err := r.Register(ctx); err != nil {
			r.logf("registrar: re-register: %v", err)
			return
		}
		r.Reregistrations.Add(1)
	}
}

// Close stops heartbeating and drops the MDM connection. It does not
// deregister — call Deregister first for an orderly departure; after a
// crash the MDM's lease machinery quarantines the silence.
func (r *Registrar) Close() {
	r.stopOnce.Do(func() { close(r.stop) })
	r.done.Wait()
	r.dropConn()
}
