package store_test

import (
	"context"
	"fmt"
	"net"
	"testing"
	"time"

	"gupster/internal/core"
	"gupster/internal/schema"
	"gupster/internal/shard"
	"gupster/internal/store"
	"gupster/internal/token"
	"gupster/internal/wire"
)

func newLeasedMDM(t *testing.T, ttl, grace time.Duration) (*core.MDM, *core.Server) {
	t.Helper()
	m := core.New(core.Config{
		Schema:     schema.GUP(),
		Signer:     token.NewSigner([]byte("registrar-test-key")),
		GrantTTL:   time.Minute,
		LeaseTTL:   ttl,
		LeaseGrace: grace,
	})
	srv := core.NewServer(m)
	if err := srv.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { m.Close(); srv.Close() })
	return m, srv
}

// The registrar registers coverage, keeps the lease renewed with
// heartbeats, and deregisters cleanly.
func TestRegistrarHeartbeatsKeepLeaseAlive(t *testing.T) {
	const ttl, grace = 60 * time.Millisecond, 30 * time.Millisecond
	m, srv := newLeasedMDM(t, ttl, grace)

	r := store.NewRegistrar(store.RegistrarConfig{
		Store:    "s1",
		Addr:     "127.0.0.1:7101",
		MDM:      srv.Addr(),
		Coverage: []string{"/user[@id='u']/presence", "/user[@id='u']/calendar"},
		Interval: 20 * time.Millisecond,
	})
	if err := r.Start(context.Background()); err != nil {
		t.Fatalf("Start: %v", err)
	}
	defer r.Close()

	if got := m.Registry.StoreCount("s1"); got != 2 {
		t.Fatalf("registrations = %d, want 2", got)
	}
	// Outlive several lease periods: heartbeats must keep the store out of
	// quarantine the whole time.
	time.Sleep(4 * (ttl + grace))
	for _, l := range m.LeaseTable() {
		if l.Quarantined {
			t.Fatalf("store quarantined despite heartbeats: %+v", l)
		}
	}
	if r.Heartbeats.Load() == 0 {
		t.Fatal("no heartbeats sent")
	}

	if err := r.Deregister(context.Background()); err != nil {
		t.Fatalf("Deregister: %v", err)
	}
	if got := m.Registry.StoreCount("s1"); got != 0 {
		t.Fatalf("registrations after Deregister = %d", got)
	}
}

// When the MDM restarts without its journal (empty directory), the next
// heartbeat comes back Known=false and the registrar replays the whole
// coverage — the store heals a forgetful directory automatically.
func TestRegistrarReregistersAfterMDMAmnesia(t *testing.T) {
	m1, srv1 := newLeasedMDM(t, 60*time.Millisecond, 30*time.Millisecond)
	addr := srv1.Addr()

	r := store.NewRegistrar(store.RegistrarConfig{
		Store:    "s1",
		Addr:     "127.0.0.1:7101",
		MDM:      addr,
		Coverage: []string{"/user[@id='u']/presence"},
		Interval: 20 * time.Millisecond,
		Logf:     t.Logf,
	})
	if err := r.Start(context.Background()); err != nil {
		t.Fatalf("Start: %v", err)
	}
	defer r.Close()
	if m1.Registry.StoreCount("s1") != 1 {
		t.Fatal("initial registration missing")
	}

	// "Restart" the MDM empty on the same address.
	m1.Close()
	srv1.Close()
	m2 := core.New(core.Config{
		Schema:   schema.GUP(),
		Signer:   token.NewSigner([]byte("registrar-test-key")),
		LeaseTTL: 60 * time.Millisecond,
	})
	srv2 := core.NewServer(m2)
	var err error
	for i := 0; i < 50; i++ {
		if err = srv2.Start(addr); err == nil {
			break
		}
		time.Sleep(20 * time.Millisecond) // the old listener may linger
	}
	if err != nil {
		t.Fatalf("restart on %s: %v", addr, err)
	}
	t.Cleanup(func() { m2.Close(); srv2.Close() })

	deadline := time.Now().Add(3 * time.Second)
	for m2.Registry.StoreCount("s1") == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("registrar never re-registered (heartbeats=%d, reregs=%d)",
				r.Heartbeats.Load(), r.Reregistrations.Load())
		}
		time.Sleep(10 * time.Millisecond)
	}
	if r.Reregistrations.Load() == 0 {
		t.Error("re-registration not counted")
	}
}

// When the registrar's home shard dies and a repair re-maps the keyspace,
// the registrar must find the surviving constellation on its own: it
// learns every shard address from the directory's map while healthy, and
// rotates through those seeds when its current target stops dialing — a
// store configured with a single -mdm address survives that address's
// death.
func TestRegistrarRotatesToLearnedSeedsWhenHomeShardDies(t *testing.T) {
	startShard := func(id string) (*core.MDM, *wire.Server, *shard.Node) {
		m := core.New(core.Config{
			Schema:   schema.GUP(),
			Signer:   token.NewSigner([]byte("registrar-test-key")),
			LeaseTTL: time.Minute,
		})
		srv := core.NewServer(m)
		node := shard.NewNode(shard.NodeConfig{ShardID: id, MDM: m, Inner: wire.HandlerFunc(srv.Handle)})
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		ws := wire.ServeListener(ln, node)
		t.Cleanup(func() { ws.Close(); node.Close(); m.Close() })
		return m, ws, node
	}
	_, wsA, nodeA := startShard("sa")
	mB, wsB, nodeB := startShard("sb")

	v1 := wire.ShardMap{Version: 1, Shards: []wire.ShardInfo{
		{ID: "sa", Addr: wsA.Addr()}, {ID: "sb", Addr: wsB.Addr()},
	}}
	ring, err := shard.BuildRing(v1)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []*shard.Node{nodeA, nodeB} {
		if _, err := n.Install(&wire.ShardInstallRequest{Map: v1}); err != nil {
			t.Fatal(err)
		}
	}
	// Pick an owner homed on sa so the registrar's traffic stays on its
	// configured seed until that shard dies.
	owner := ""
	for i := 0; i < 4096; i++ {
		if o := fmt.Sprintf("u-%d", i); ring.Owner(o).ID == "sa" {
			owner = o
			break
		}
	}
	if owner == "" {
		t.Fatal("no owner homed on sa")
	}

	r := store.NewRegistrar(store.RegistrarConfig{
		Store:    "st",
		Addr:     "127.0.0.1:7101",
		MDM:      wsA.Addr(),
		Coverage: []string{fmt.Sprintf("/user[@id='%s']/presence", owner)},
		Interval: 25 * time.Millisecond,
		Logf:     t.Logf,
	})
	if err := r.Start(context.Background()); err != nil {
		t.Fatalf("Start: %v", err)
	}
	defer r.Close()

	// Kill sa and repair the keyspace onto sb alone — the self-healing
	// planner's promotion, reduced to its map effect.
	wsA.Close()
	nodeA.Close()
	v2 := wire.ShardMap{Version: 2, Epoch: 1, Shards: []wire.ShardInfo{{ID: "sb", Addr: wsB.Addr()}}}
	if _, err := nodeB.Install(&wire.ShardInstallRequest{Map: v2}); err != nil {
		t.Fatal(err)
	}

	// The registrar's next beats dial the dead seed, rotate to sb, get
	// Known=false there, and replay the coverage — all without help.
	deadline := time.Now().Add(3 * time.Second)
	for mB.Registry.StoreCount("st") == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("registrar never re-homed to the surviving shard (heartbeats=%d, reregs=%d)",
				r.Heartbeats.Load(), r.Reregistrations.Load())
		}
		time.Sleep(10 * time.Millisecond)
	}
}
