package store_test

import (
	"context"
	"testing"
	"time"

	"gupster/internal/core"
	"gupster/internal/schema"
	"gupster/internal/store"
	"gupster/internal/token"
)

func newLeasedMDM(t *testing.T, ttl, grace time.Duration) (*core.MDM, *core.Server) {
	t.Helper()
	m := core.New(core.Config{
		Schema:     schema.GUP(),
		Signer:     token.NewSigner([]byte("registrar-test-key")),
		GrantTTL:   time.Minute,
		LeaseTTL:   ttl,
		LeaseGrace: grace,
	})
	srv := core.NewServer(m)
	if err := srv.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { m.Close(); srv.Close() })
	return m, srv
}

// The registrar registers coverage, keeps the lease renewed with
// heartbeats, and deregisters cleanly.
func TestRegistrarHeartbeatsKeepLeaseAlive(t *testing.T) {
	const ttl, grace = 60 * time.Millisecond, 30 * time.Millisecond
	m, srv := newLeasedMDM(t, ttl, grace)

	r := store.NewRegistrar(store.RegistrarConfig{
		Store:    "s1",
		Addr:     "127.0.0.1:7101",
		MDM:      srv.Addr(),
		Coverage: []string{"/user[@id='u']/presence", "/user[@id='u']/calendar"},
		Interval: 20 * time.Millisecond,
	})
	if err := r.Start(context.Background()); err != nil {
		t.Fatalf("Start: %v", err)
	}
	defer r.Close()

	if got := m.Registry.StoreCount("s1"); got != 2 {
		t.Fatalf("registrations = %d, want 2", got)
	}
	// Outlive several lease periods: heartbeats must keep the store out of
	// quarantine the whole time.
	time.Sleep(4 * (ttl + grace))
	for _, l := range m.LeaseTable() {
		if l.Quarantined {
			t.Fatalf("store quarantined despite heartbeats: %+v", l)
		}
	}
	if r.Heartbeats.Load() == 0 {
		t.Fatal("no heartbeats sent")
	}

	if err := r.Deregister(context.Background()); err != nil {
		t.Fatalf("Deregister: %v", err)
	}
	if got := m.Registry.StoreCount("s1"); got != 0 {
		t.Fatalf("registrations after Deregister = %d", got)
	}
}

// When the MDM restarts without its journal (empty directory), the next
// heartbeat comes back Known=false and the registrar replays the whole
// coverage — the store heals a forgetful directory automatically.
func TestRegistrarReregistersAfterMDMAmnesia(t *testing.T) {
	m1, srv1 := newLeasedMDM(t, 60*time.Millisecond, 30*time.Millisecond)
	addr := srv1.Addr()

	r := store.NewRegistrar(store.RegistrarConfig{
		Store:    "s1",
		Addr:     "127.0.0.1:7101",
		MDM:      addr,
		Coverage: []string{"/user[@id='u']/presence"},
		Interval: 20 * time.Millisecond,
		Logf:     t.Logf,
	})
	if err := r.Start(context.Background()); err != nil {
		t.Fatalf("Start: %v", err)
	}
	defer r.Close()
	if m1.Registry.StoreCount("s1") != 1 {
		t.Fatal("initial registration missing")
	}

	// "Restart" the MDM empty on the same address.
	m1.Close()
	srv1.Close()
	m2 := core.New(core.Config{
		Schema:   schema.GUP(),
		Signer:   token.NewSigner([]byte("registrar-test-key")),
		LeaseTTL: 60 * time.Millisecond,
	})
	srv2 := core.NewServer(m2)
	var err error
	for i := 0; i < 50; i++ {
		if err = srv2.Start(addr); err == nil {
			break
		}
		time.Sleep(20 * time.Millisecond) // the old listener may linger
	}
	if err != nil {
		t.Fatalf("restart on %s: %v", addr, err)
	}
	t.Cleanup(func() { m2.Close(); srv2.Close() })

	deadline := time.Now().Add(3 * time.Second)
	for m2.Registry.StoreCount("s1") == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("registrar never re-registered (heartbeats=%d, reregs=%d)",
				r.Heartbeats.Load(), r.Reregistrations.Load())
		}
		time.Sleep(10 * time.Millisecond)
	}
	if r.Reregistrations.Load() == 0 {
		t.Error("re-registration not counted")
	}
}
