package store

import (
	"context"
	"strings"
	"testing"
	"time"

	"gupster/internal/schema"
	"gupster/internal/syncml"
	"gupster/internal/token"
	"gupster/internal/wire"
	"gupster/internal/xmltree"
)

var testKey = []byte("store-server-test-key")

func startServer(t *testing.T) (*Server, *Client, *token.Signer) {
	t.Helper()
	eng := NewEngine("gup.test.com")
	eng.Schema = schema.GUP()
	signer := token.NewSigner(testKey)
	srv := NewServer(eng, signer)
	if err := srv.Start("127.0.0.1:0"); err != nil {
		t.Fatalf("Start: %v", err)
	}
	t.Cleanup(func() { srv.Close() })
	cli, err := DialClient(srv.Addr())
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	t.Cleanup(func() { cli.Close() })
	return srv, cli, signer
}

func TestFetchUpdateOverWire(t *testing.T) {
	srv, cli, signer := startServer(t)
	p := mp("/user[@id='alice']/presence")

	upd := signer.Sign(srv.Engine.ID(), "alice", p, token.VerbUpdate, "alice", time.Minute)
	v, err := cli.Update(context.Background(), upd, xmltree.MustParse(`<presence status="available"/>`))
	if err != nil {
		t.Fatalf("Update: %v", err)
	}
	if v == 0 {
		t.Error("version not advanced")
	}

	fet := signer.Sign(srv.Engine.ID(), "alice", p, token.VerbFetch, "bob", time.Minute)
	doc, gv, err := cli.Fetch(context.Background(), fet)
	if err != nil {
		t.Fatalf("Fetch: %v", err)
	}
	if gv != v {
		t.Errorf("fetch version = %d, want %d", gv, v)
	}
	if s, _ := doc.Child("presence").Attr("status"); s != "available" {
		t.Errorf("fetched: %s", doc)
	}
}

func TestFetchEmptyComponent(t *testing.T) {
	srv, cli, signer := startServer(t)
	q := signer.Sign(srv.Engine.ID(), "ghost", mp("/user[@id='ghost']/presence"), token.VerbFetch, "r", time.Minute)
	doc, _, err := cli.Fetch(context.Background(), q)
	if err != nil {
		t.Fatalf("Fetch empty: %v", err)
	}
	if doc != nil {
		t.Errorf("expected nil doc, got %s", doc)
	}
}

func TestUnsignedAndMisdirectedQueriesRejected(t *testing.T) {
	srv, cli, signer := startServer(t)
	p := mp("/user[@id='alice']/presence")

	// Forged signature.
	forged := signer.Sign(srv.Engine.ID(), "alice", p, token.VerbFetch, "eve", time.Minute)
	forged.Owner = "bob"
	if _, _, err := cli.Fetch(context.Background(), forged); err == nil || !strings.Contains(err.Error(), "signature") {
		t.Errorf("forged query: %v", err)
	}
	// Wrong store.
	other := token.NewSigner(testKey).Sign("gup.other.com", "alice", p, token.VerbFetch, "eve", time.Minute)
	if _, _, err := cli.Fetch(context.Background(), other); err == nil || !strings.Contains(err.Error(), "different store") {
		t.Errorf("misdirected query: %v", err)
	}
	// Fetch grant used for update.
	fet := signer.Sign(srv.Engine.ID(), "alice", p, token.VerbFetch, "eve", time.Minute)
	if _, err := cli.Update(context.Background(), fet, xmltree.MustParse(`<presence/>`)); err == nil || !strings.Contains(err.Error(), "verb") {
		t.Errorf("verb escalation: %v", err)
	}
	// Expired grant.
	past := signer.WithClock(func() time.Time { return time.Now().Add(-time.Hour) })
	stale := past.Sign(srv.Engine.ID(), "alice", p, token.VerbFetch, "eve", time.Second)
	if _, _, err := cli.Fetch(context.Background(), stale); err == nil || !strings.Contains(err.Error(), "expired") {
		t.Errorf("expired grant: %v", err)
	}
}

func TestUpdateSchemaEnforced(t *testing.T) {
	srv, cli, signer := startServer(t)
	p := mp("/user[@id='alice']/address-book")
	upd := signer.Sign(srv.Engine.ID(), "alice", p, token.VerbUpdate, "alice", time.Minute)
	_, err := cli.Update(context.Background(), upd, xmltree.MustParse(`<address-book><item/></address-book>`))
	if err == nil || !strings.Contains(err.Error(), "required attribute") {
		t.Errorf("schema violation accepted: %v", err)
	}
	// Malformed XML body.
	var resp wire.UpdateResponse
	raw := wire.UpdateRequest{Query: upd, XML: "<broken"}
	werr := cliCall(t, srv.Addr(), wire.TypeUpdate, raw, &resp)
	if werr == nil {
		t.Error("malformed XML accepted")
	}
}

func cliCall(t *testing.T, addr, msgType string, req, resp any) error {
	t.Helper()
	c, err := wire.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	return c.Call(context.Background(), msgType, req, resp)
}

func TestSyncOverWire(t *testing.T) {
	srv, cli, signer := startServer(t)
	p := mp("/user[@id='alice']/address-book")
	srv.Engine.Put("alice", p, xmltree.MustParse(
		`<address-book><item name="rick"><phone>1</phone></item></address-book>`))

	grant := signer.Sign(srv.Engine.ID(), "alice", p, token.VerbUpdate, "alice", time.Minute)
	dev := syncml.NewDevice(xmltree.DefaultKeys)
	tr := cli.SyncTransport(grant)

	st, err := dev.Sync(context.Background(), tr, syncml.ServerWins)
	if err != nil {
		t.Fatalf("first sync: %v", err)
	}
	if !st.Slow {
		t.Error("first sync should be slow")
	}
	// Device adds an item; fast sync propagates it.
	dev.Edit(func(local *xmltree.Node) *xmltree.Node {
		local.Add(xmltree.New("item").SetAttr("name", "dan").Add(xmltree.NewText("phone", "2")))
		return local
	})
	st, err = dev.Sync(context.Background(), tr, syncml.ServerWins)
	if err != nil {
		t.Fatalf("second sync: %v", err)
	}
	if st.Slow || st.OpsSent != 1 {
		t.Errorf("stats = %+v", st)
	}
	comp, _, _ := srv.Engine.GetComponent("alice", p)
	if len(comp.ChildrenNamed("item")) != 2 {
		t.Errorf("server missed device add: %s", comp)
	}
	// A fetch-verb grant must not open a sync session.
	fet := signer.Sign(srv.Engine.ID(), "alice", p, token.VerbFetch, "alice", time.Minute)
	if _, err := cli.SyncTransport(fet).SyncStart(context.Background(), 0); err == nil {
		t.Error("sync with fetch grant accepted")
	}
}

func TestExecRecruiting(t *testing.T) {
	// Two stores each hold half of the address book; exec on the first
	// recruits the second.
	signer := token.NewSigner(testKey)

	engA := NewEngine("gup.a.com")
	srvA := NewServer(engA, signer)
	if err := srvA.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer srvA.Close()
	engB := NewEngine("gup.b.com")
	srvB := NewServer(engB, signer)
	if err := srvB.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer srvB.Close()

	pPersonal := mp("/user[@id='u']/address-book/item[@type='personal']")
	pCorp := mp("/user[@id='u']/address-book/item[@type='corporate']")
	engA.Put("u", pPersonal, xmltree.MustParse(`<item name="mom" type="personal"><phone>1</phone></item>`))
	engB.Put("u", pCorp, xmltree.MustParse(`<item name="boss" type="corporate"><phone>2</phone></item>`))

	primary := wire.FetchRequest{Query: signer.Sign("gup.a.com", "u", pPersonal, token.VerbFetch, "r", time.Minute)}
	sibling := wire.Referral{
		Address: srvB.Addr(),
		Query:   signer.Sign("gup.b.com", "u", pCorp, token.VerbFetch, "r", time.Minute),
	}
	cli, err := DialClient(srvA.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	merged, err := cli.Exec(context.Background(), primary, []wire.Referral{sibling})
	if err != nil {
		t.Fatalf("Exec: %v", err)
	}
	items := merged.Child("address-book").ChildrenNamed("item")
	if len(items) != 2 {
		t.Fatalf("merged items = %d\n%s", len(items), merged.Indent())
	}
}

func TestUnknownMessageType(t *testing.T) {
	srv, _, _ := startServer(t)
	var resp wire.Empty
	if err := cliCall(t, srv.Addr(), "teleport", wire.Empty{}, &resp); err == nil {
		t.Error("unknown type accepted")
	}
}
