package store

import (
	"context"

	"gupster/internal/syncml"
	"gupster/internal/token"
	"gupster/internal/wire"
	"gupster/internal/xmltree"
)

// Client talks to a store Server. Safe for concurrent use.
type Client struct {
	c *wire.Client
}

// DialClient connects to a store server.
func DialClient(addr string) (*Client, error) {
	c, err := wire.Dial(addr)
	if err != nil {
		return nil, err
	}
	return &Client{c: c}, nil
}

// Close tears down the connection.
func (c *Client) Close() error { return c.c.Close() }

func orBackground(ctx context.Context) context.Context {
	if ctx == nil {
		return context.Background()
	}
	return ctx
}

// Fetch retrieves the component granted by q. A nil document with nil error
// means the store holds nothing under the granted path.
func (c *Client) Fetch(ctx context.Context, q token.SignedQuery) (*xmltree.Node, uint64, error) {
	var resp wire.FetchResponse
	if err := c.c.Call(orBackground(ctx), wire.TypeFetch, wire.FetchRequest{Query: q}, &resp); err != nil {
		return nil, 0, err
	}
	if resp.XML == "" {
		return nil, resp.Version, nil
	}
	doc, err := xmltree.ParseString(resp.XML)
	if err != nil {
		return nil, 0, err
	}
	return doc, resp.Version, nil
}

// Update writes a component under the grant q.
func (c *Client) Update(ctx context.Context, q token.SignedQuery, frag *xmltree.Node) (uint64, error) {
	var resp wire.UpdateResponse
	err := c.c.Call(orBackground(ctx), wire.TypeUpdate, wire.UpdateRequest{Query: q, XML: frag.String()}, &resp)
	return resp.Version, err
}

// Exec migrates a merged fetch to the store (recruiting pattern).
func (c *Client) Exec(ctx context.Context, primary wire.FetchRequest, siblings []wire.Referral) (*xmltree.Node, error) {
	var resp wire.ExecResponse
	if err := c.c.Call(orBackground(ctx), wire.TypeExec, wire.ExecRequest{Primary: primary, Siblings: siblings}, &resp); err != nil {
		return nil, err
	}
	if resp.XML == "" {
		return nil, nil
	}
	return xmltree.ParseString(resp.XML)
}

// SyncTransport adapts the connection into a syncml.Transport for the
// component granted by q (which must carry an update grant).
func (c *Client) SyncTransport(q token.SignedQuery) syncml.Transport {
	return &syncTransport{c: c.c, q: q}
}

type syncTransport struct {
	c *wire.Client
	q token.SignedQuery
}

func (t *syncTransport) SyncStart(ctx context.Context, lastAnchor uint64) (*wire.SyncStartResponse, error) {
	var resp wire.SyncStartResponse
	err := t.c.Call(orBackground(ctx), wire.TypeSyncStart,
		wire.SyncStartRequest{Query: t.q, LastAnchor: lastAnchor}, &resp)
	if err != nil {
		return nil, err
	}
	return &resp, nil
}

func (t *syncTransport) SyncDelta(ctx context.Context, req *wire.SyncDeltaRequest) (*wire.SyncDeltaResponse, error) {
	req.Query = t.q
	var resp wire.SyncDeltaResponse
	if err := t.c.Call(orBackground(ctx), wire.TypeSyncDelta, req, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}
