package store

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"gupster/internal/schema"
	"gupster/internal/xmltree"
	"gupster/internal/xpath"
)

func mp(s string) xpath.Path { return xpath.MustParse(s) }

func TestPutGetRoundTrip(t *testing.T) {
	e := NewEngine("s1")
	book := xmltree.MustParse(`<address-book><item name="rick"><phone>111</phone></item></address-book>`)
	v, err := e.Put("arnaud", mp("/user[@id='arnaud']/address-book"), book)
	if err != nil {
		t.Fatalf("Put: %v", err)
	}
	if v == 0 {
		t.Error("version should advance")
	}
	doc, gv, err := e.Get("arnaud", mp("/user[@id='arnaud']/address-book"))
	if err != nil {
		t.Fatalf("Get: %v", err)
	}
	if gv != v {
		t.Errorf("get version = %d, want %d", gv, v)
	}
	if doc.Name != "user" {
		t.Errorf("Get should return spine document, got <%s>", doc.Name)
	}
	if id, _ := doc.Attr("id"); id != "arnaud" {
		t.Errorf("spine id = %q", id)
	}
	got := doc.Child("address-book")
	if got == nil || !got.Equal(book) {
		t.Errorf("component mismatch:\n%s", doc.Indent())
	}
	// Component-rooted accessor.
	comp, _, err := e.GetComponent("arnaud", mp("/user[@id='arnaud']/address-book"))
	if err != nil || !comp.Equal(book) {
		t.Errorf("GetComponent: %v / %s", err, comp)
	}
}

func TestGetErrors(t *testing.T) {
	e := NewEngine("s1")
	if _, _, err := e.Get("ghost", mp("/user/presence")); !errors.Is(err, ErrNoUser) {
		t.Errorf("err = %v", err)
	}
	e.Put("u", mp("/user[@id='u']/presence"), xmltree.MustParse(`<presence status="on"/>`))
	if _, _, err := e.Get("u", mp("/user[@id='u']/calendar")); !errors.Is(err, ErrNoComponent) {
		t.Errorf("err = %v", err)
	}
	if _, _, err := e.GetComponent("ghost", mp("/user")); !errors.Is(err, ErrNoUser) {
		t.Errorf("err = %v", err)
	}
	if _, _, err := e.GetComponent("u", mp("/user[@id='u']/calendar")); !errors.Is(err, ErrNoComponent) {
		t.Errorf("err = %v", err)
	}
}

func TestPutValidation(t *testing.T) {
	e := NewEngine("s1")
	e.Schema = schema.GUP()
	// Valid component accepted.
	if _, err := e.Put("u", mp("/user[@id='u']/presence"), xmltree.MustParse(`<presence status="on"/>`)); err != nil {
		t.Errorf("valid put: %v", err)
	}
	// Schema-invalid component rejected.
	if _, err := e.Put("u", mp("/user[@id='u']/address-book"), xmltree.MustParse(`<address-book><item/></address-book>`)); err == nil {
		t.Error("invalid component accepted")
	}
	// Fragment/path mismatch rejected.
	if _, err := e.Put("u", mp("/user[@id='u']/presence"), xmltree.MustParse(`<calendar/>`)); err == nil {
		t.Error("mismatched fragment accepted")
	}
	// Nil fragment / empty path rejected.
	if _, err := e.Put("u", mp("/user[@id='u']/presence"), nil); err == nil {
		t.Error("nil fragment accepted")
	}
	if _, err := e.Put("u", xpath.Path{}, xmltree.New("x")); err == nil {
		t.Error("empty path accepted")
	}
}

func TestPutReplacesAndVersions(t *testing.T) {
	e := NewEngine("s1")
	p := mp("/user[@id='u']/presence")
	v1, _ := e.Put("u", p, xmltree.MustParse(`<presence status="on"/>`))
	v2, _ := e.Put("u", p, xmltree.MustParse(`<presence status="off"/>`))
	if v2 <= v1 {
		t.Errorf("versions not monotonic: %d then %d", v1, v2)
	}
	comp, _, _ := e.GetComponent("u", p)
	if s, _ := comp.Attr("status"); s != "off" {
		t.Errorf("replace did not apply: %s", comp)
	}
	// Only one presence element exists.
	doc, _, _ := e.Get("u", mp("/user[@id='u']"))
	if got := len(doc.ChildrenNamed("presence")); got != 1 {
		t.Errorf("presence count = %d\n%s", got, doc.Indent())
	}
	if e.ComponentVersion("u", p) != v2 {
		t.Errorf("ComponentVersion = %d", e.ComponentVersion("u", p))
	}
	if e.ComponentVersion("u", mp("/user[@id='u']/calendar")) != 0 {
		t.Error("untouched component should be version 0")
	}
}

func TestDeepPathPut(t *testing.T) {
	e := NewEngine("s1")
	// Writing a deep component creates the spine.
	p := mp("/user[@id='u']/address-book/item[@name='rick']")
	item := xmltree.MustParse(`<item name="rick"><phone>1</phone></item>`)
	if _, err := e.Put("u", p, item); err != nil {
		t.Fatalf("deep put: %v", err)
	}
	doc, _, err := e.Get("u", mp("/user[@id='u']/address-book"))
	if err != nil {
		t.Fatalf("Get: %v", err)
	}
	if doc.Child("address-book").Child("item") == nil {
		t.Errorf("spine not created:\n%s", doc.Indent())
	}
}

func TestWholeProfilePut(t *testing.T) {
	e := NewEngine("s1")
	profile := xmltree.MustParse(`<user id="u"><presence status="on"/></user>`)
	if _, err := e.Put("u", mp("/user[@id='u']"), profile); err != nil {
		t.Fatalf("whole put: %v", err)
	}
	doc, _, _ := e.Get("u", mp("/user[@id='u']"))
	if !doc.Equal(profile) {
		t.Errorf("whole profile mismatch")
	}
}

func TestDelete(t *testing.T) {
	e := NewEngine("s1")
	e.Put("u", mp("/user[@id='u']/address-book"), xmltree.MustParse(
		`<address-book><item name="a"/><item name="b"/></address-book>`))
	n, err := e.Delete("u", mp("/user[@id='u']/address-book/item[@name='a']"))
	if err != nil || n != 1 {
		t.Fatalf("Delete = %d, %v", n, err)
	}
	comp, _, _ := e.GetComponent("u", mp("/user[@id='u']/address-book"))
	if len(comp.ChildrenNamed("item")) != 1 {
		t.Errorf("item not deleted: %s", comp)
	}
	if _, err := e.Delete("ghost", mp("/user")); !errors.Is(err, ErrNoUser) {
		t.Errorf("err = %v", err)
	}
	if n, _ := e.Delete("u", mp("/user[@id='u']/zzz")); n != 0 {
		t.Errorf("deleting nothing = %d", n)
	}
}

func TestChangesSince(t *testing.T) {
	e := NewEngine("s1")
	p := mp("/user[@id='u']/address-book")
	v1, _ := e.Put("u", p, xmltree.MustParse(`<address-book><item name="a"><phone>1</phone></item></address-book>`))
	v2, _ := e.Put("u", p, xmltree.MustParse(`<address-book><item name="a"><phone>1</phone></item><item name="b"><phone>2</phone></item></address-book>`))
	v3, _ := e.Put("u", p, xmltree.MustParse(`<address-book><item name="b"><phone>2</phone></item><item name="c"><phone>3</phone></item></address-book>`))

	// Up to date.
	ops, ok := e.ChangesSince("u", p, v3)
	if !ok || len(ops) != 0 {
		t.Errorf("up-to-date: ops=%v ok=%v", ops, ok)
	}
	// Since v1: add b, then remove a + add c.
	ops, ok = e.ChangesSince("u", p, v1)
	if !ok {
		t.Fatal("fast sync refused")
	}
	kinds := map[xmltree.OpKind]int{}
	for _, op := range ops {
		kinds[op.Kind]++
	}
	if kinds[xmltree.OpAdd] != 2 || kinds[xmltree.OpRemove] != 1 {
		t.Errorf("ops = %+v", ops)
	}
	// Since v2: only the third write.
	ops, ok = e.ChangesSince("u", p, v2)
	if !ok || len(ops) != 2 {
		t.Errorf("since v2: %v, %v", ops, ok)
	}
	// Anchor 0 forces slow sync.
	if _, ok = e.ChangesSince("u", p, 0); ok {
		t.Error("anchor 0 should force slow sync")
	}
	// Future anchor refused.
	if _, ok = e.ChangesSince("u", p, v3+10); ok {
		t.Error("future anchor should force slow sync")
	}
}

func TestChangesSinceLogEviction(t *testing.T) {
	e := NewEngine("s1")
	p := mp("/user[@id='u']/address-book")
	v1, _ := e.Put("u", p, xmltree.MustParse(`<address-book><item name="base"><phone>0</phone></item></address-book>`))
	// Push the log past its cap.
	for i := 0; i < maxLogPerComponent+10; i++ {
		book := xmltree.MustParse(fmt.Sprintf(`<address-book><item name="base"><phone>%d</phone></item></address-book>`, i))
		e.Put("u", p, book)
	}
	if _, ok := e.ChangesSince("u", p, v1); ok {
		t.Error("evicted anchor should force slow sync")
	}
}

func TestDeleteInvalidatesLog(t *testing.T) {
	e := NewEngine("s1")
	p := mp("/user[@id='u']/address-book")
	v1, _ := e.Put("u", p, xmltree.MustParse(`<address-book><item name="a"/></address-book>`))
	e.Delete("u", mp("/user[@id='u']/address-book/item[@name='a']"))
	e.Put("u", p, xmltree.MustParse(`<address-book><item name="b"/></address-book>`))
	if _, ok := e.ChangesSince("u", p, v1); ok {
		t.Error("fast sync across an unlogged delete must be refused")
	}
}

func TestOnChangeHook(t *testing.T) {
	e := NewEngine("s1")
	type change struct {
		user string
		path string
		v    uint64
	}
	var mu sync.Mutex
	var got []change
	e.OnChange(func(user string, path xpath.Path, frag *xmltree.Node, v uint64) {
		mu.Lock()
		got = append(got, change{user, path.String(), v})
		mu.Unlock()
	})
	p := mp("/user[@id='u']/presence")
	v, _ := e.Put("u", p, xmltree.MustParse(`<presence status="on"/>`))
	mu.Lock()
	defer mu.Unlock()
	if len(got) != 1 || got[0].user != "u" || got[0].v != v || got[0].path != p.String() {
		t.Errorf("hook calls = %+v", got)
	}
}

func TestUsersAndID(t *testing.T) {
	e := NewEngine("gup.yahoo.com")
	if e.ID() != "gup.yahoo.com" {
		t.Errorf("ID = %q", e.ID())
	}
	e.Put("a", mp("/user[@id='a']/presence"), xmltree.MustParse(`<presence/>`))
	e.Put("b", mp("/user[@id='b']/presence"), xmltree.MustParse(`<presence/>`))
	if len(e.Users()) != 2 {
		t.Errorf("Users = %v", e.Users())
	}
}

func TestConcurrentEngine(t *testing.T) {
	e := NewEngine("s1")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			user := fmt.Sprintf("u%d", i%4)
			p := mp(fmt.Sprintf("/user[@id='%s']/presence", user))
			for j := 0; j < 100; j++ {
				e.Put(user, p, xmltree.MustParse(fmt.Sprintf(`<presence status="s%d"/>`, j)))
				e.Get(user, p)
				e.ChangesSince(user, p, uint64(j))
			}
		}(i)
	}
	wg.Wait()
}

func TestPutDoesNotAliasCallerFragment(t *testing.T) {
	e := NewEngine("s1")
	frag := xmltree.MustParse(`<presence status="on"/>`)
	e.Put("u", mp("/user[@id='u']/presence"), frag)
	frag.SetAttr("status", "MUTATED")
	comp, _, _ := e.GetComponent("u", mp("/user[@id='u']/presence"))
	if s, _ := comp.Attr("status"); s != "on" {
		t.Error("engine aliases caller's fragment")
	}
	// And Get results do not alias engine state.
	comp.SetAttr("status", "HACKED")
	comp2, _, _ := e.GetComponent("u", mp("/user[@id='u']/presence"))
	if s, _ := comp2.Attr("status"); s != "on" {
		t.Error("engine shares memory with readers")
	}
}
