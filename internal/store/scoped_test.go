package store

import (
	"testing"

	"gupster/internal/schema"
	"gupster/internal/xmltree"
)

// Scoped replace: a fragment rooted at the *parent* of the path's last step
// replaces only the matching children — the write-side of Figure 9 splits.

func TestScopedReplaceBasics(t *testing.T) {
	e := NewEngine("s1")
	bookPath := mp("/user[@id='u']/address-book")
	e.Put("u", bookPath, xmltree.MustParse(`<address-book>
		<item name="mom" type="personal"><phone>1</phone></item>
		<item name="boss" type="corporate"><phone>2</phone></item>
	</address-book>`))

	// Replace the personal items only.
	personalPath := mp("/user[@id='u']/address-book/item[@type='personal']")
	newPersonal := xmltree.MustParse(`<address-book>
		<item name="mom" type="personal"><phone>NEW</phone></item>
		<item name="dentist" type="personal"><phone>3</phone></item>
	</address-book>`)
	if _, err := e.Put("u", personalPath, newPersonal); err != nil {
		t.Fatalf("scoped put: %v", err)
	}
	comp, _, _ := e.GetComponent("u", bookPath)
	byName := map[string]string{}
	for _, it := range comp.ChildrenNamed("item") {
		n, _ := it.Attr("name")
		byName[n] = it.ChildText("phone")
	}
	if len(byName) != 3 {
		t.Fatalf("items = %v", byName)
	}
	if byName["mom"] != "NEW" || byName["dentist"] != "3" {
		t.Errorf("personal half not replaced: %v", byName)
	}
	if byName["boss"] != "2" {
		t.Errorf("corporate half touched: %v", byName)
	}
}

func TestScopedReplaceFiltersNonMatching(t *testing.T) {
	e := NewEngine("s1")
	bookPath := mp("/user[@id='u']/address-book")
	e.Put("u", bookPath, xmltree.MustParse(`<address-book><item name="boss" type="corporate"><phone>2</phone></item></address-book>`))

	// The container carries items of both types; only matching ones apply.
	mixed := xmltree.MustParse(`<address-book>
		<item name="mom" type="personal"><phone>1</phone></item>
		<item name="intruder" type="corporate"><phone>9</phone></item>
	</address-book>`)
	if _, err := e.Put("u", mp("/user[@id='u']/address-book/item[@type='personal']"), mixed); err != nil {
		t.Fatalf("scoped put: %v", err)
	}
	comp, _, _ := e.GetComponent("u", bookPath)
	names := map[string]bool{}
	for _, it := range comp.ChildrenNamed("item") {
		n, _ := it.Attr("name")
		names[n] = true
	}
	if !names["mom"] || !names["boss"] {
		t.Errorf("items = %v", names)
	}
	if names["intruder"] {
		t.Errorf("non-matching container child written: %v", names)
	}
}

func TestScopedReplaceClearsWithEmptyContainer(t *testing.T) {
	e := NewEngine("s1")
	bookPath := mp("/user[@id='u']/address-book")
	e.Put("u", bookPath, xmltree.MustParse(`<address-book>
		<item name="mom" type="personal"><phone>1</phone></item>
		<item name="boss" type="corporate"><phone>2</phone></item>
	</address-book>`))
	if _, err := e.Put("u", mp("/user[@id='u']/address-book/item[@type='personal']"), xmltree.New("address-book")); err != nil {
		t.Fatalf("clearing put: %v", err)
	}
	comp, _, _ := e.GetComponent("u", bookPath)
	items := comp.ChildrenNamed("item")
	if len(items) != 1 {
		t.Fatalf("items = %d", len(items))
	}
	if n, _ := items[0].Attr("name"); n != "boss" {
		t.Errorf("wrong survivor: %s", items[0])
	}
}

func TestScopedReplaceCreatesSpine(t *testing.T) {
	e := NewEngine("s1")
	frag := xmltree.MustParse(`<address-book><item name="mom" type="personal"><phone>1</phone></item></address-book>`)
	if _, err := e.Put("u", mp("/user[@id='u']/address-book/item[@type='personal']"), frag); err != nil {
		t.Fatalf("scoped put on empty store: %v", err)
	}
	comp, _, err := e.GetComponent("u", mp("/user[@id='u']/address-book"))
	if err != nil || len(comp.ChildrenNamed("item")) != 1 {
		t.Errorf("spine not created: %v / %v", comp, err)
	}
}

func TestScopedReplaceSchemaValidated(t *testing.T) {
	e := NewEngine("s1")
	e.Schema = schema.GUP()
	bad := xmltree.MustParse(`<address-book><item type="personal"/></address-book>`) // no name
	if _, err := e.Put("u", mp("/user[@id='u']/address-book/item[@type='personal']"), bad); err == nil {
		t.Error("schema-invalid scoped container accepted")
	}
}

func TestScopedReplaceRejectsUnrelatedFragment(t *testing.T) {
	e := NewEngine("s1")
	if _, err := e.Put("u", mp("/user[@id='u']/address-book/item[@type='x']"), xmltree.New("calendar")); err == nil {
		t.Error("fragment matching neither step nor parent accepted")
	}
}

func TestScopedReplaceChangeLogAtContainer(t *testing.T) {
	e := NewEngine("s1")
	bookPath := mp("/user[@id='u']/address-book")
	v1, _ := e.Put("u", bookPath, xmltree.MustParse(`<address-book><item name="a" type="personal"><phone>1</phone></item></address-book>`))
	// A scoped write logs item ops under the container path, so fast sync
	// against the container works across it.
	e.Put("u", mp("/user[@id='u']/address-book/item[@type='personal']"),
		xmltree.MustParse(`<address-book><item name="a" type="personal"><phone>2</phone></item></address-book>`))
	ops, ok := e.ChangesSince("u", bookPath, v1)
	if !ok {
		t.Fatal("fast sync refused across scoped write")
	}
	if len(ops) != 1 || ops[0].Kind != xmltree.OpModify {
		t.Fatalf("ops = %+v", ops)
	}
}
