package faultinject

import (
	"bufio"
	"fmt"
	"net"
	"testing"
	"time"
)

// recordingServer echoes lines and reports every line it receives, so
// tests can tell "the request never arrived" from "the reply was lost" —
// the distinction directional faults exist to express.
func recordingServer(t *testing.T) (net.Listener, chan string) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	recv := make(chan string, 64)
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func(c net.Conn) {
				defer c.Close()
				sc := bufio.NewScanner(c)
				for sc.Scan() {
					select {
					case recv <- sc.Text():
					default:
					}
					fmt.Fprintf(c, "%s\n", sc.Text())
				}
			}(conn)
		}
	}()
	t.Cleanup(func() { ln.Close() })
	return ln, recv
}

func awaitLine(t *testing.T, recv chan string, want string) {
	t.Helper()
	select {
	case got := <-recv:
		if got != want {
			t.Fatalf("server received %q, want %q", got, want)
		}
	case <-time.After(2 * time.Second):
		t.Fatalf("server never received %q", want)
	}
}

// An upstream-only sever must kill the connection before the request
// reaches the endpoint: the server sees nothing.
func TestDirectionalSeverUpstream(t *testing.T) {
	ln, recv := recordingServer(t)
	p, err := NewProxy(ln.Addr().String(), 7)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	p.SetDirectionalSever(Upstream, 1.0)
	conn := dialProxy(t, p)
	if _, err := roundTrip(conn, "doomed-up"); err == nil {
		t.Error("round trip survived a 100% upstream sever")
	}
	select {
	case got := <-recv:
		t.Errorf("server received %q through a severed upstream", got)
	case <-time.After(100 * time.Millisecond):
	}
	if p.Severed.Load() == 0 {
		t.Error("no sever recorded")
	}
}

// A downstream-only sever must let the request LAND and kill the
// connection on the reply: the server sees the line, the client gets an
// error.
func TestDirectionalSeverDownstream(t *testing.T) {
	ln, recv := recordingServer(t)
	p, err := NewProxy(ln.Addr().String(), 7)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	p.SetDirectionalSever(Downstream, 1.0)
	conn := dialProxy(t, p)
	if _, err := roundTrip(conn, "doomed-down"); err == nil {
		t.Error("round trip survived a 100% downstream sever")
	}
	awaitLine(t, recv, "doomed-down")
	if p.Severed.Load() == 0 {
		t.Error("no sever recorded")
	}
}

// PartitionOneWay is the "can hear, cannot be heard" node: requests keep
// arriving, replies vanish without an error, and nothing counts as
// severed — from every sender's view the writes succeed.
func TestPartitionOneWay(t *testing.T) {
	ln, recv := recordingServer(t)
	p, err := NewProxy(ln.Addr().String(), 7)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	before := dialProxy(t, p)
	if _, err := roundTrip(before, "healthy"); err != nil {
		t.Fatalf("round trip before partition: %v", err)
	}
	awaitLine(t, recv, "healthy")

	p.PartitionOneWay(true)
	// The pre-partition connection was dropped: a resumed byte stream
	// could otherwise desync mid-frame after the heal.
	if _, err := roundTrip(before, "stale-conn"); err == nil {
		t.Error("pre-partition connection survived the transition")
	}

	conn := dialProxy(t, p)
	if _, err := fmt.Fprintf(conn, "swallowed\n"); err != nil {
		t.Fatalf("write during one-way partition: %v", err)
	}
	awaitLine(t, recv, "swallowed") // the request got through…
	conn.SetReadDeadline(time.Now().Add(200 * time.Millisecond))
	if _, err := bufio.NewReader(conn).ReadString('\n'); err == nil {
		t.Error("reply escaped a one-way partition") // …the reply did not
	}
	if p.Severed.Load() != 0 {
		t.Errorf("one-way partition counted %d severs, want 0", p.Severed.Load())
	}

	p.PartitionOneWay(false)
	// Healing also drops connections (same desync hazard) …
	if _, err := roundTrip(conn, "stale-conn-2"); err == nil {
		t.Error("mid-partition connection survived the heal")
	}
	// …and fresh ones round-trip again.
	after := dialProxy(t, p)
	if got, err := roundTrip(after, "healed"); err != nil || got != "healed\n" {
		t.Fatalf("round trip after heal = %q, %v", got, err)
	}
}
