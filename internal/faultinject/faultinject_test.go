package faultinject

import (
	"bufio"
	"fmt"
	"net"
	"testing"
	"time"
)

// echoServer accepts connections and echoes lines back.
func echoServer(t *testing.T) net.Listener {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func(c net.Conn) {
				defer c.Close()
				sc := bufio.NewScanner(c)
				for sc.Scan() {
					fmt.Fprintf(c, "%s\n", sc.Text())
				}
			}(conn)
		}
	}()
	t.Cleanup(func() { ln.Close() })
	return ln
}

func dialProxy(t *testing.T, p *Proxy) net.Conn {
	t.Helper()
	conn, err := net.Dial("tcp", p.Addr())
	if err != nil {
		t.Fatalf("dial proxy: %v", err)
	}
	t.Cleanup(func() { conn.Close() })
	return conn
}

func roundTrip(conn net.Conn, msg string) (string, error) {
	if _, err := fmt.Fprintf(conn, "%s\n", msg); err != nil {
		return "", err
	}
	conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	line, err := bufio.NewReader(conn).ReadString('\n')
	return line, err
}

func TestProxyPassThrough(t *testing.T) {
	ln := echoServer(t)
	p, err := NewProxy(ln.Addr().String(), 1)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	conn := dialProxy(t, p)
	got, err := roundTrip(conn, "hello")
	if err != nil || got != "hello\n" {
		t.Fatalf("round trip = %q, %v", got, err)
	}
	if p.Accepted.Load() != 1 {
		t.Errorf("accepted = %d, want 1", p.Accepted.Load())
	}
}

func TestProxyLatencyInjection(t *testing.T) {
	ln := echoServer(t)
	p, err := NewProxy(ln.Addr().String(), 1)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	p.SetLatency(40*time.Millisecond, 0)
	conn := dialProxy(t, p)
	start := time.Now()
	if _, err := roundTrip(conn, "ping"); err != nil {
		t.Fatal(err)
	}
	// Two directions, ≥ 40ms each.
	if el := time.Since(start); el < 80*time.Millisecond {
		t.Errorf("round trip took %v, want ≥ 80ms of injected latency", el)
	}
}

func TestProxyBlackoutAndRestore(t *testing.T) {
	ln := echoServer(t)
	p, err := NewProxy(ln.Addr().String(), 1)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	conn := dialProxy(t, p)
	if _, err := roundTrip(conn, "up"); err != nil {
		t.Fatal(err)
	}

	p.Blackout(true)
	// The active connection was killed…
	if _, err := roundTrip(conn, "dead"); err == nil {
		t.Error("round trip succeeded over a blacked-out connection")
	}
	// …and new ones are refused (accepted then immediately closed).
	if c2, err := net.Dial("tcp", p.Addr()); err == nil {
		if _, err := roundTrip(c2, "refused"); err == nil {
			t.Error("round trip succeeded during blackout")
		}
		c2.Close()
	}

	p.Blackout(false)
	c3 := dialProxy(t, p)
	if got, err := roundTrip(c3, "back"); err != nil || got != "back\n" {
		t.Fatalf("round trip after restore = %q, %v", got, err)
	}
}

func TestProxyDropActiveMidStream(t *testing.T) {
	ln := echoServer(t)
	p, err := NewProxy(ln.Addr().String(), 1)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	conn := dialProxy(t, p)
	if _, err := roundTrip(conn, "one"); err != nil {
		t.Fatal(err)
	}
	p.DropActive()
	if _, err := roundTrip(conn, "two"); err == nil {
		t.Error("connection survived DropActive")
	}
	// The listener stays up: reconnects succeed.
	c2 := dialProxy(t, p)
	if _, err := roundTrip(c2, "three"); err != nil {
		t.Fatalf("reconnect after drop: %v", err)
	}
}

func TestProxySlowDrip(t *testing.T) {
	ln := echoServer(t)
	p, err := NewProxy(ln.Addr().String(), 1)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	p.SetBandwidth(1 << 10) // 1 KiB/s
	conn := dialProxy(t, p)
	msg := make([]byte, 256)
	for i := range msg {
		msg[i] = 'x'
	}
	start := time.Now()
	if _, err := roundTrip(conn, string(msg)); err != nil {
		t.Fatal(err)
	}
	// 257 bytes each way at 1 KiB/s ≈ 250ms per direction.
	if el := time.Since(start); el < 300*time.Millisecond {
		t.Errorf("throttled round trip took %v, want ≥ 300ms", el)
	}
}

func TestProxySeverInjection(t *testing.T) {
	ln := echoServer(t)
	p, err := NewProxy(ln.Addr().String(), 42)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	p.SetSeverProb(1.0) // every chunk severs
	conn := dialProxy(t, p)
	if _, err := roundTrip(conn, "doomed"); err == nil {
		t.Error("round trip survived a 100% sever rate")
	}
	if p.Severed.Load() == 0 {
		t.Error("no sever recorded")
	}
}
