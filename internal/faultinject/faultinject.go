// Package faultinject is the chaos harness for the GUPster testbed: a
// composable fault-injection layer that wraps any wire/store endpoint as
// a TCP proxy. Tests point referrals at the proxy address and then turn
// knobs at runtime:
//
//   - latency injection (fixed + jittered, per transferred chunk),
//   - slow-drip reads (bandwidth throttling),
//   - random connection severing (error injection),
//   - on-demand mid-stream drops,
//   - store blackouts (refuse new connections, kill active ones).
//
// All randomness comes from one seeded RNG so chaos runs are
// deterministic and reproducible as ordinary Go tests.
package faultinject

import (
	"io"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// chunk is the transfer granularity; faults (latency, throttling, sever
// checks) apply per chunk, so smaller chunks make slow-drip smoother.
const chunk = 8 << 10

// Direction selects one flow of a proxied connection, so faults can be
// asymmetric — a node whose requests arrive fine but whose replies vanish
// is a different failure than a severed link.
type Direction int

const (
	// Upstream is client→target bytes (requests arriving at the endpoint).
	Upstream Direction = iota
	// Downstream is target→client bytes (the endpoint's replies).
	Downstream
)

// Proxy is a fault-injecting TCP proxy in front of one endpoint.
// Safe for concurrent use.
type Proxy struct {
	target string
	ln     net.Listener
	wg     sync.WaitGroup

	mu        sync.Mutex
	rng       *rand.Rand
	latency   time.Duration
	jitter    time.Duration
	byteRate  int // bytes/sec; 0 = unlimited
	sever     float64
	severDir  [2]float64 // per-direction sever probability, indexed by Direction
	blackhole [2]bool    // per-direction read-and-discard, indexed by Direction
	blackout  bool
	closed    bool
	conns     map[net.Conn]net.Conn // accepted → upstream

	// Counters for test assertions.
	Accepted atomic.Uint64
	Refused  atomic.Uint64
	Severed  atomic.Uint64
}

// NewProxy listens on a fresh loopback port and forwards to target.
func NewProxy(target string, seed int64) (*Proxy, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	p := &Proxy{
		target: target,
		ln:     ln,
		rng:    rand.New(rand.NewSource(seed)),
		conns:  make(map[net.Conn]net.Conn),
	}
	p.wg.Add(1)
	go p.acceptLoop()
	return p, nil
}

// Addr is the dialable fault-injected address of the endpoint.
func (p *Proxy) Addr() string { return p.ln.Addr().String() }

// SetLatency injects d (± up to jitter) of delay per transferred chunk
// in each direction. Zero disables.
func (p *Proxy) SetLatency(d, jitter time.Duration) {
	p.mu.Lock()
	p.latency, p.jitter = d, jitter
	p.mu.Unlock()
}

// SetBandwidth throttles transfers to bytesPerSec (slow-drip reads);
// 0 removes the limit.
func (p *Proxy) SetBandwidth(bytesPerSec int) {
	p.mu.Lock()
	p.byteRate = bytesPerSec
	p.mu.Unlock()
}

// SetSeverProb makes each transferred chunk sever the connection with
// probability prob (error injection); 0 disables.
func (p *Proxy) SetSeverProb(prob float64) {
	p.mu.Lock()
	p.sever = prob
	p.mu.Unlock()
}

// SetDirectionalSever makes each chunk transferred in dir sever the
// connection with probability prob, independently of the symmetric
// SetSeverProb knob (the larger of the two wins per chunk); 0 disables.
func (p *Proxy) SetDirectionalSever(dir Direction, prob float64) {
	p.mu.Lock()
	p.severDir[dir] = prob
	p.mu.Unlock()
}

// PartitionOneWay simulates an asymmetric partition: the endpoint keeps
// receiving requests (Upstream flows), but its replies (Downstream bytes)
// are read and discarded — the classic "can hear, cannot be heard" node.
// Both transitions drop active connections: the wire protocol is
// length-prefix framed, and a stream that lost half a frame into the void
// cannot resume at a frame boundary after the heal.
func (p *Proxy) PartitionOneWay(on bool) {
	p.mu.Lock()
	p.blackhole[Downstream] = on
	p.mu.Unlock()
	p.DropActive()
}

// Blackout turns the endpoint dark: new connections are refused and
// active ones killed. Blackout(false) restores service.
func (p *Proxy) Blackout(on bool) {
	p.mu.Lock()
	p.blackout = on
	p.mu.Unlock()
	if on {
		p.DropActive()
	}
}

// DropActive severs every active connection mid-stream, leaving the
// listener up — the "connection drop" fault as opposed to a blackout.
func (p *Proxy) DropActive() {
	p.mu.Lock()
	for c, up := range p.conns {
		c.Close()
		up.Close()
	}
	p.mu.Unlock()
}

// Close shuts the proxy down and waits for its goroutines.
func (p *Proxy) Close() error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil
	}
	p.closed = true
	p.mu.Unlock()
	err := p.ln.Close()
	p.DropActive()
	p.wg.Wait()
	return err
}

func (p *Proxy) acceptLoop() {
	defer p.wg.Done()
	for {
		conn, err := p.ln.Accept()
		if err != nil {
			return
		}
		p.mu.Lock()
		dark := p.blackout || p.closed
		p.mu.Unlock()
		if dark {
			p.Refused.Add(1)
			conn.Close()
			continue
		}
		up, err := net.DialTimeout("tcp", p.target, 2*time.Second)
		if err != nil {
			conn.Close()
			continue
		}
		p.mu.Lock()
		if p.closed {
			p.mu.Unlock()
			conn.Close()
			up.Close()
			return
		}
		p.conns[conn] = up
		p.mu.Unlock()
		p.Accepted.Add(1)
		p.wg.Add(2)
		go p.pump(up, conn, Upstream)
		go p.pump(conn, up, Downstream)
	}
}

// faults samples the current knobs for one chunk in one direction: the
// injected delay, whether to sever, and whether to silently discard.
func (p *Proxy) faults(n int, dir Direction) (delay time.Duration, sever, discard bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	delay = p.latency
	if p.jitter > 0 {
		delay += time.Duration(p.rng.Int63n(int64(2*p.jitter))) - p.jitter
	}
	if p.byteRate > 0 {
		delay += time.Duration(float64(n) / float64(p.byteRate) * float64(time.Second))
	}
	prob := p.sever
	if d := p.severDir[dir]; d > prob {
		prob = d
	}
	if prob > 0 && p.rng.Float64() < prob {
		sever = true
	}
	return delay, sever, p.blackhole[dir]
}

func (p *Proxy) pump(dst, src net.Conn, dir Direction) {
	defer p.wg.Done()
	defer p.forget(src, dst)
	buf := make([]byte, chunk)
	for {
		n, err := src.Read(buf)
		if n > 0 {
			delay, sever, discard := p.faults(n, dir)
			if discard {
				// One-way partition: the bytes vanish, the connection stays
				// up, and nothing counts as severed — from the sender's view
				// the write succeeded.
				continue
			}
			if delay > 0 {
				time.Sleep(delay)
			}
			if sever {
				p.Severed.Add(1)
				return
			}
			if _, werr := dst.Write(buf[:n]); werr != nil {
				return
			}
		}
		if err != nil {
			if err != io.EOF {
				return
			}
			// Half-close: propagate EOF, keep the reverse pump alive.
			if tc, ok := dst.(*net.TCPConn); ok {
				tc.CloseWrite()
			}
			return
		}
	}
}

// forget closes both halves of a pairing and drops the bookkeeping.
func (p *Proxy) forget(a, b net.Conn) {
	a.Close()
	b.Close()
	p.mu.Lock()
	delete(p.conns, a)
	delete(p.conns, b)
	p.mu.Unlock()
}
