package provenance

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

func rec(owner, requester, path string, out Outcome) Record {
	return Record{
		Owner: owner, Requester: requester, Path: path,
		Verb: "fetch", Outcome: out,
		Grants: grantsFor(out, path),
	}
}

func grantsFor(out Outcome, path string) []string {
	if out == Granted {
		return []string{path}
	}
	return nil
}

func TestAppendAndQuery(t *testing.T) {
	l := NewLedger(16)
	l.Append(rec("alice", "bob", "/user[@id='alice']/presence", Granted))
	l.Append(rec("alice", "eve", "/user[@id='alice']/wallet", Denied))
	l.Append(rec("carol", "bob", "/user[@id='carol']/presence", Granted))

	if l.Len() != 3 {
		t.Fatalf("Len = %d", l.Len())
	}
	alice := l.ByOwner("alice", 0)
	if len(alice) != 2 {
		t.Fatalf("alice records = %d", len(alice))
	}
	if alice[0].Seq >= alice[1].Seq {
		t.Error("records not oldest-first")
	}
	if alice[0].Time.IsZero() {
		t.Error("time not stamped")
	}
	bob := l.ByRequester("bob", 0)
	if len(bob) != 2 {
		t.Fatalf("bob records = %d", len(bob))
	}
	// SinceSeq bounds.
	if got := l.ByOwner("alice", alice[0].Seq); len(got) != 1 {
		t.Errorf("since filter = %d records", len(got))
	}
	if got := l.ByOwner("nobody", 0); len(got) != 0 {
		t.Errorf("unknown owner = %d records", len(got))
	}
}

func TestRingEviction(t *testing.T) {
	l := NewLedger(4)
	for i := 0; i < 10; i++ {
		l.Append(rec("u", fmt.Sprintf("r%d", i), "/user[@id='u']/presence", Granted))
	}
	if l.Len() != 4 {
		t.Fatalf("Len = %d", l.Len())
	}
	got := l.ByOwner("u", 0)
	if len(got) != 4 {
		t.Fatalf("records = %d", len(got))
	}
	// The oldest retained record is #7 (seq continues monotonically).
	if got[0].Seq != 7 || got[3].Seq != 10 {
		t.Errorf("retained seqs = %d..%d", got[0].Seq, got[3].Seq)
	}
	if got[0].Requester != "r6" {
		t.Errorf("oldest retained = %q", got[0].Requester)
	}
}

func TestSummary(t *testing.T) {
	l := NewLedger(64)
	l.Append(rec("alice", "bob", "/user[@id='alice']/presence", Granted))
	l.Append(rec("alice", "bob", "/user[@id='alice']/presence", Granted))
	l.Append(rec("alice", "bob", "/user[@id='alice']/calendar", Granted))
	l.Append(rec("alice", "eve", "/user[@id='alice']/wallet", Denied))
	l.Append(rec("other", "bob", "/user[@id='other']/presence", Granted))

	s := l.Summary("alice")
	if len(s) != 2 {
		t.Fatalf("summaries = %+v", s)
	}
	if s[0].Requester != "bob" || s[1].Requester != "eve" {
		t.Fatalf("order = %+v", s)
	}
	bob := s[0]
	if bob.Grants != 3 || bob.Denials != 0 || len(bob.Paths) != 2 {
		t.Errorf("bob = %+v", bob)
	}
	eve := s[1]
	if eve.Grants != 0 || eve.Denials != 1 || len(eve.Paths) != 0 {
		t.Errorf("eve = %+v", eve)
	}
	if bob.LastSeen.IsZero() {
		t.Error("LastSeen not tracked")
	}
}

func TestDefaultCapacity(t *testing.T) {
	l := NewLedger(0)
	l.Append(Record{Owner: "u"})
	if l.Len() != 1 {
		t.Error("default-capacity ledger unusable")
	}
}

func TestExplicitTimePreserved(t *testing.T) {
	l := NewLedger(4)
	ts := time.Date(2026, 7, 1, 0, 0, 0, 0, time.UTC)
	l.Append(Record{Owner: "u", Time: ts})
	if got := l.ByOwner("u", 0)[0].Time; !got.Equal(ts) {
		t.Errorf("time = %v", got)
	}
}

func TestConcurrentLedger(t *testing.T) {
	l := NewLedger(128)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 200; j++ {
				l.Append(rec("u", fmt.Sprintf("r%d", i), "/user[@id='u']/presence", Granted))
				l.ByOwner("u", 0)
				l.Summary("u")
			}
		}(i)
	}
	wg.Wait()
	if l.Len() != 128 {
		t.Errorf("Len = %d", l.Len())
	}
	// Sequence numbers are unique and monotonic within the retained window.
	got := l.ByOwner("u", 0)
	for i := 1; i < len(got); i++ {
		if got[i].Seq <= got[i-1].Seq {
			t.Fatalf("seq not monotonic: %d then %d", got[i-1].Seq, got[i].Seq)
		}
	}
}
