// Package provenance implements the third core challenge of the paper's
// conclusion (§7): "the tracking of where data (and meta-data) have come
// from, and where they have been used". Every grant or denial the MDM
// renders is appended to an owner-queryable disclosure ledger, so a user
// can ask exactly what the paper's e-commerce example demands: who has been
// given access to which parts of my profile, when, under which rule, and
// which stores served it.
//
// The ledger is a bounded in-memory ring (oldest records are evicted); a
// production deployment would stream it to durable storage, which changes
// nothing about the recorded schema.
package provenance

import (
	"sort"
	"sync"
	"time"
)

// Outcome says how the MDM decided a request.
type Outcome string

// Outcomes.
const (
	Granted Outcome = "granted"
	Denied  Outcome = "denied"
)

// Record is one disclosure event.
type Record struct {
	// Seq is a ledger-unique, monotonically increasing sequence number.
	Seq uint64 `json:"seq"`
	// Time is when the decision was rendered.
	Time time.Time `json:"time"`
	// Owner is whose profile data was requested.
	Owner string `json:"owner"`
	// Path is the requested expression.
	Path string `json:"path"`
	// Requester, Role and Purpose are the request context facets.
	Requester string `json:"requester"`
	Role      string `json:"role,omitempty"`
	Purpose   string `json:"purpose,omitempty"`
	// Verb is the operation the grant authorized.
	Verb string `json:"verb"`
	// Outcome is granted or denied.
	Outcome Outcome `json:"outcome"`
	// RuleID names the decisive privacy-shield rule ("" for defaults).
	RuleID string `json:"rule_id,omitempty"`
	// Grants are the (possibly narrowed) paths actually authorized.
	Grants []string `json:"grants,omitempty"`
	// Stores are the data stores the referral pointed at — where the data
	// came from.
	Stores []string `json:"stores,omitempty"`
}

// Ledger is the bounded disclosure log. Safe for concurrent use.
type Ledger struct {
	mu      sync.RWMutex
	records []Record // ring buffer
	start   int      // index of oldest record
	count   int
	nextSeq uint64
}

// NewLedger returns a ledger retaining the most recent capacity records.
func NewLedger(capacity int) *Ledger {
	if capacity <= 0 {
		capacity = 4096
	}
	return &Ledger{records: make([]Record, capacity)}
}

// Append records one event, stamping its sequence number. The record's
// Time defaults to now when zero.
func (l *Ledger) Append(r Record) uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.nextSeq++
	r.Seq = l.nextSeq
	if r.Time.IsZero() {
		r.Time = time.Now()
	}
	idx := (l.start + l.count) % len(l.records)
	if l.count == len(l.records) {
		// Full: overwrite the oldest.
		l.records[l.start] = r
		l.start = (l.start + 1) % len(l.records)
	} else {
		l.records[idx] = r
		l.count++
	}
	return r.Seq
}

// Len reports the number of retained records.
func (l *Ledger) Len() int {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return l.count
}

// snapshot returns retained records oldest-first; caller holds no lock.
func (l *Ledger) snapshot() []Record {
	l.mu.RLock()
	defer l.mu.RUnlock()
	out := make([]Record, 0, l.count)
	for i := 0; i < l.count; i++ {
		out = append(out, l.records[(l.start+i)%len(l.records)])
	}
	return out
}

// ByOwner returns the retained records concerning an owner's data, oldest
// first, optionally bounded below by sinceSeq (exclusive).
func (l *Ledger) ByOwner(owner string, sinceSeq uint64) []Record {
	var out []Record
	for _, r := range l.snapshot() {
		if r.Owner == owner && r.Seq > sinceSeq {
			out = append(out, r)
		}
	}
	return out
}

// ByRequester returns the retained records of one requester's accesses.
func (l *Ledger) ByRequester(requester string, sinceSeq uint64) []Record {
	var out []Record
	for _, r := range l.snapshot() {
		if r.Requester == requester && r.Seq > sinceSeq {
			out = append(out, r)
		}
	}
	return out
}

// Disclosure summarizes who has been granted what of an owner's profile:
// requester → distinct granted paths, with counts.
type Disclosure struct {
	Requester string
	Paths     []string
	Grants    int
	Denials   int
	LastSeen  time.Time
}

// Summary aggregates an owner's ledger into per-requester disclosures,
// ordered by requester.
func (l *Ledger) Summary(owner string) []Disclosure {
	type agg struct {
		paths   map[string]bool
		grants  int
		denials int
		last    time.Time
	}
	byReq := map[string]*agg{}
	for _, r := range l.snapshot() {
		if r.Owner != owner {
			continue
		}
		a := byReq[r.Requester]
		if a == nil {
			a = &agg{paths: map[string]bool{}}
			byReq[r.Requester] = a
		}
		if r.Outcome == Granted {
			a.grants++
			for _, g := range r.Grants {
				a.paths[g] = true
			}
		} else {
			a.denials++
		}
		if r.Time.After(a.last) {
			a.last = r.Time
		}
	}
	out := make([]Disclosure, 0, len(byReq))
	for req, a := range byReq {
		paths := make([]string, 0, len(a.paths))
		for p := range a.paths {
			paths = append(paths, p)
		}
		sort.Strings(paths)
		out = append(out, Disclosure{
			Requester: req, Paths: paths,
			Grants: a.grants, Denials: a.denials, LastSeen: a.last,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Requester < out[j].Requester })
	return out
}
