package trace

import (
	"sync"
	"time"

	"gupster/internal/metrics"
)

// Defaults for the collector bounds. All state is hard-bounded: tracing
// must be safe to leave on under heavy traffic from millions of users.
const (
	// DefaultSpanCap bounds the total spans retained across all traces.
	DefaultSpanCap = 4096
	// DefaultSlowCap bounds the slow-trace log.
	DefaultSlowCap = 32
	// DefaultSlowThreshold flags entry spans slower than this into the
	// slow-trace log.
	DefaultSlowThreshold = 250 * time.Millisecond
	// maxSpansPerTrace bounds one trace's retained spans (a runaway batch
	// must not evict every other trace).
	maxSpansPerTrace = 512
	// hopReservoir bounds each per-hop latency histogram.
	hopReservoir = 4096
)

// SlowTrace is one slow-query log record: the whole span set of a trace
// whose entry span exceeded the collector's threshold, copied out so ring
// eviction cannot dismember it.
type SlowTrace struct {
	TraceID string `json:"trace_id"`
	// At is when the slow entry span finished (unix nanoseconds).
	At int64 `json:"at_unix_nano"`
	// RootMicros is the offending entry span's duration.
	RootMicros int64  `json:"root_us"`
	Spans      []Span `json:"spans"`
}

// traceBuf holds one trace's retained spans plus a seen-set for dedup
// (spans can arrive twice: once recorded locally, once inside a client's
// trace report that echoes the piggybacked tree back).
type traceBuf struct {
	spans []Span
	seen  map[uint64]bool
}

// Collector is a process-wide, bounded, lock-cheap span store: a ring of
// recent traces (FIFO eviction, whole traces at a time), a bounded
// slow-trace log, and per-hop latency histograms with reservoir sampling.
// Safe for concurrent use; the cost per span is one short critical
// section, so tracing stays on in production.
type Collector struct {
	site string

	mu      sync.Mutex
	cap     int
	traces  map[string]*traceBuf
	order   []string // trace IDs, oldest first
	total   int
	dropped uint64

	slowThreshold time.Duration
	slowCap       int
	slow          []SlowTrace

	hops map[string]*metrics.Histogram
}

// NewCollector builds a collector for a process role ("client", "mdm",
// "store", "mirror"). capSpans <= 0 means DefaultSpanCap; slow == 0 means
// DefaultSlowThreshold, slow < 0 disables the slow log.
func NewCollector(site string, capSpans int, slow time.Duration) *Collector {
	if capSpans <= 0 {
		capSpans = DefaultSpanCap
	}
	if slow == 0 {
		slow = DefaultSlowThreshold
	}
	return &Collector{
		site:          site,
		cap:           capSpans,
		traces:        make(map[string]*traceBuf),
		slowThreshold: slow,
		slowCap:       DefaultSlowCap,
		hops:          make(map[string]*metrics.Histogram),
	}
}

// Site returns the process role the collector records for.
func (c *Collector) Site() string { return c.site }

// SetSlowThreshold adjusts the slow-trace threshold (<= 0 disables).
func (c *Collector) SetSlowThreshold(d time.Duration) {
	c.mu.Lock()
	c.slowThreshold = d
	c.mu.Unlock()
}

// Emit records one span.
func (c *Collector) Emit(s Span) {
	if c == nil || s.TraceID == "" {
		return
	}
	c.mu.Lock()
	tb := c.traces[s.TraceID]
	if tb == nil {
		tb = &traceBuf{seen: make(map[uint64]bool)}
		c.traces[s.TraceID] = tb
		c.order = append(c.order, s.TraceID)
	}
	if tb.seen[s.SpanID] {
		c.mu.Unlock()
		return // duplicate (e.g. echoed back in a trace report)
	}
	tb.seen[s.SpanID] = true
	if len(tb.spans) >= maxSpansPerTrace {
		c.dropped++
	} else {
		tb.spans = append(tb.spans, s)
		c.total++
	}

	h := c.hops[s.Name]
	if h == nil {
		h = metrics.NewHistogramCap(hopReservoir)
		c.hops[s.Name] = h
	}

	if s.Entry && c.slowThreshold > 0 && s.Duration() >= c.slowThreshold {
		st := SlowTrace{
			TraceID:    s.TraceID,
			At:         time.Now().UnixNano(),
			RootMicros: s.DurMicros,
			Spans:      append([]Span(nil), tb.spans...),
		}
		c.slow = append(c.slow, st)
		if len(c.slow) > c.slowCap {
			c.slow = c.slow[len(c.slow)-c.slowCap:]
		}
	}

	for c.total > c.cap && len(c.order) > 1 {
		oldest := c.order[0]
		c.order = c.order[1:]
		if ev := c.traces[oldest]; ev != nil {
			c.total -= len(ev.spans)
			delete(c.traces, oldest)
		}
	}
	c.mu.Unlock()

	// The histogram has its own lock; recording outside the collector's
	// critical section keeps the global mutex short — every span from every
	// connection funnels through it.
	h.Record(s.Duration())
}

// Ingest folds spans reported by another hop into the collector.
func (c *Collector) Ingest(spans []Span) {
	for _, s := range spans {
		c.Emit(s)
	}
}

// Trace returns the retained spans of one trace (nil when unknown or
// evicted).
func (c *Collector) Trace(id string) []Span {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	tb := c.traces[id]
	if tb == nil {
		return nil
	}
	return append([]Span(nil), tb.spans...)
}

// Slow returns up to max recent slow traces, most recent last. max <= 0
// returns all retained.
func (c *Collector) Slow(max int) []SlowTrace {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	out := c.slow
	if max > 0 && len(out) > max {
		out = out[len(out)-max:]
	}
	cp := make([]SlowTrace, len(out))
	copy(cp, out)
	return cp
}

// HopStats returns per-hop (by span name) latency percentiles, sorted by
// name — the aggregate view folded into the pipeline stats output.
func (c *Collector) HopStats() []metrics.HopStat {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	names := make([]string, 0, len(c.hops))
	for n := range c.hops {
		names = append(names, n)
	}
	hs := make(map[string]*metrics.Histogram, len(c.hops))
	for n, h := range c.hops {
		hs[n] = h
	}
	c.mu.Unlock()

	sortStrings(names)
	out := make([]metrics.HopStat, 0, len(names))
	for _, n := range names {
		out = append(out, hs[n].HopStat(n))
	}
	return out
}

// SpanCount returns the number of retained spans (for tests and stats).
func (c *Collector) SpanCount() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.total
}

// Dropped returns how many spans were discarded by per-trace bounding.
func (c *Collector) Dropped() uint64 {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.dropped
}

// sortStrings is a dependency-light insertion sort; hop-name sets are tiny.
func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// requestSpanCap bounds the spans one request may buffer for its response
// frame; beyond it, spans still reach the collector but stop riding the
// reply.
const requestSpanCap = 256

// RequestRecorder scopes span collection to one request: every span goes
// to the process Collector and into a bounded per-request buffer that the
// serving layer drains onto the response frame (or, at the originating
// client, into a trace report to the MDM). Safe for concurrent use — a
// batch resolve records entries from many goroutines.
type RequestRecorder struct {
	col *Collector

	mu    sync.Mutex
	spans []Span
}

// NewRequestRecorder builds a request recorder over a collector (which may
// be nil — spans then only buffer for the reply).
func NewRequestRecorder(col *Collector) *RequestRecorder {
	return &RequestRecorder{col: col}
}

// Emit records a locally produced span.
func (r *RequestRecorder) Emit(s Span) {
	if r == nil {
		return
	}
	if r.col != nil {
		r.col.Emit(s)
	}
	r.mu.Lock()
	if len(r.spans) < requestSpanCap {
		r.spans = append(r.spans, s)
	}
	r.mu.Unlock()
}

// Ingest folds spans piggybacked by a downstream hop into the request.
// They only buffer for the trace report — the local collector keeps this
// site's own spans (remote sites index their own; duplicating them here
// costs map and histogram work on every response and skews the local
// per-hop stats with latencies measured elsewhere).
func (r *RequestRecorder) Ingest(spans []Span) {
	if r == nil {
		return
	}
	r.mu.Lock()
	for _, s := range spans {
		if len(r.spans) >= requestSpanCap {
			break
		}
		r.spans = append(r.spans, s)
	}
	r.mu.Unlock()
}

// Drain returns the request's buffered spans. The serving layer calls it
// when building the reply frame; callers must not mutate the result.
func (r *RequestRecorder) Drain() []Span {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Span, len(r.spans))
	copy(out, r.spans)
	return out
}
