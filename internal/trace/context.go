package trace

import (
	"context"
	"time"
)

// tctx is the value carried in a context.Context: the current span
// coordinates plus the recorder completed spans go to.
type tctx struct {
	traceID string
	spanID  uint64 // current span — parent of children and outbound calls
	hop     int
	site    string
	entry   bool // true until the first local span is started
	rec     Recorder
}

type ctxKey struct{}

func fromContext(ctx context.Context) *tctx {
	if ctx == nil {
		return nil
	}
	tc, _ := ctx.Value(ctxKey{}).(*tctx)
	return tc
}

// Traced reports whether ctx carries a span context.
func Traced(ctx context.Context) bool { return fromContext(ctx) != nil }

// IDFromContext returns the trace ID carried by ctx ("" when untraced).
func IDFromContext(ctx context.Context) string {
	if tc := fromContext(ctx); tc != nil {
		return tc.traceID
	}
	return ""
}

// Outbound returns the header to stamp on an outgoing wire frame (hop
// advanced by one) and the recorder that should ingest spans the callee
// piggybacks on its response. Both are nil/zero when ctx is untraced.
func Outbound(ctx context.Context) (*Info, Recorder) {
	tc := fromContext(ctx)
	if tc == nil {
		return nil, nil
	}
	return &Info{TraceID: tc.traceID, SpanID: tc.spanID, Hop: tc.hop + 1}, tc.rec
}

// WithRemote derives a context for serving a request that arrived over the
// wire with header ti: spans started under it continue the caller's trace
// at ti.Hop, parented on the caller's span. The first span started in the
// returned context is marked Entry (the process's share of the request).
// rec is where completed spans go — typically a RequestRecorder so they
// also ride back on the response frame. A nil ti or rec returns ctx
// unchanged (untraced).
func WithRemote(ctx context.Context, ti *Info, site string, rec Recorder) context.Context {
	if ti == nil || rec == nil || ti.TraceID == "" {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, &tctx{
		traceID: ti.TraceID,
		spanID:  ti.SpanID,
		hop:     ti.Hop,
		site:    site,
		entry:   true,
		rec:     rec,
	})
}

// Start begins a child span of the context's current span; the returned
// context carries the new span so nested work and outbound calls parent
// correctly. On an untraced ctx it returns (ctx, nil) — and a nil *Active
// is safe to use — so call sites need no conditionals.
func Start(ctx context.Context, name string) (context.Context, *Active) {
	tc := fromContext(ctx)
	if tc == nil {
		return ctx, nil
	}
	a := &Active{
		rec: tc.rec,
		s: Span{
			TraceID: tc.traceID,
			SpanID:  nextSpanID(),
			Parent:  tc.spanID,
			Hop:     tc.hop,
			Site:    tc.site,
			Name:    name,
			Entry:   tc.entry,
			Start:   time.Now().UnixNano(),
		},
		start: time.Now(),
	}
	child := *tc
	child.spanID = a.s.SpanID
	child.entry = false
	return context.WithValue(ctx, ctxKey{}, &child), a
}

// StartRoot mints a fresh trace rooted at name, recording through a
// RequestRecorder over col so the request's spans (local and ingested from
// downstream hops) can be drained afterwards — e.g. to report them to the
// MDM. If ctx is already traced it behaves like Start (no new trace, no
// recorder returned); if col is nil it is a no-op. The *RequestRecorder is
// non-nil exactly when a new trace was minted here.
func StartRoot(ctx context.Context, col *Collector, name string) (context.Context, *Active, *RequestRecorder) {
	if tc := fromContext(ctx); tc != nil {
		cctx, a := Start(ctx, name)
		return cctx, a, nil
	}
	if col == nil {
		return ctx, nil, nil
	}
	rr := NewRequestRecorder(col)
	a := &Active{
		rec: rr,
		s: Span{
			TraceID: NewTraceID(),
			SpanID:  nextSpanID(),
			Hop:     0,
			Site:    col.Site(),
			Name:    name,
			Entry:   true,
			Start:   time.Now().UnixNano(),
		},
		start: time.Now(),
	}
	return context.WithValue(ctx, ctxKey{}, &tctx{
		traceID: a.s.TraceID,
		spanID:  a.s.SpanID,
		hop:     0,
		site:    col.Site(),
		rec:     rr,
	}), a, rr
}
