package trace

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"
)

// sink is a Recorder that just accumulates spans.
type sink struct{ spans []Span }

func (s *sink) Emit(sp Span)      { s.spans = append(s.spans, sp) }
func (s *sink) Ingest(sps []Span) { s.spans = append(s.spans, sps...) }

func TestStartRootMintsTrace(t *testing.T) {
	col := NewCollector("client", 0, -1)
	ctx, sp, rr := StartRoot(context.Background(), col, "client.get")
	if sp == nil || rr == nil {
		t.Fatal("StartRoot on an untraced ctx must mint a span and a recorder")
	}
	if !Traced(ctx) {
		t.Fatal("returned ctx must carry the span context")
	}
	if id := IDFromContext(ctx); id == "" || id != sp.TraceID() {
		t.Fatalf("ctx trace ID %q != span trace ID %q", id, sp.TraceID())
	}
	sp.Finish(nil)
	got := rr.Drain()
	if len(got) != 1 {
		t.Fatalf("drained %d spans, want 1", len(got))
	}
	if !got[0].Entry {
		t.Fatal("root span must be the process entry span")
	}
	if got[0].Hop != 0 || got[0].Site != "client" {
		t.Fatalf("root span hop=%d site=%q, want hop 0 site client", got[0].Hop, got[0].Site)
	}
	if col.SpanCount() != 1 {
		t.Fatalf("collector retained %d spans, want 1", col.SpanCount())
	}
}

func TestStartRootOnTracedContextIsChild(t *testing.T) {
	col := NewCollector("client", 0, -1)
	ctx, root, rr := StartRoot(context.Background(), col, "root")
	ctx2, child, rr2 := StartRoot(ctx, col, "nested")
	if rr2 != nil {
		t.Fatal("nested StartRoot must not mint a second recorder")
	}
	if child.TraceID() != root.TraceID() {
		t.Fatal("nested StartRoot must stay in the same trace")
	}
	child.Finish(nil)
	root.Finish(nil)
	spans := rr.Drain()
	if len(spans) != 2 {
		t.Fatalf("drained %d spans, want 2", len(spans))
	}
	_ = ctx2
}

func TestStartParentsAndHops(t *testing.T) {
	s := &sink{}
	ctx := WithRemote(context.Background(), &Info{TraceID: "t1", SpanID: 7, Hop: 2}, "store", s)
	ctx2, a := Start(ctx, "store.fetch")
	_, b := Start(ctx2, "store.exec")
	b.Finish(nil)
	a.Finish(errors.New("boom"))
	if len(s.spans) != 2 {
		t.Fatalf("recorded %d spans, want 2", len(s.spans))
	}
	inner, outer := s.spans[0], s.spans[1]
	if outer.Parent != 7 {
		t.Fatalf("outer span parent %d, want the remote span 7", outer.Parent)
	}
	if inner.Parent != outer.SpanID {
		t.Fatalf("inner span parent %d, want %d", inner.Parent, outer.SpanID)
	}
	if outer.Hop != 2 || inner.Hop != 2 {
		t.Fatalf("hops %d/%d, want 2/2", outer.Hop, inner.Hop)
	}
	if !outer.Entry || inner.Entry {
		t.Fatal("only the first span at a site is the entry span")
	}
	if outer.Err != "boom" {
		t.Fatalf("outer err %q, want boom", outer.Err)
	}
}

func TestOutboundAdvancesHop(t *testing.T) {
	s := &sink{}
	ctx := WithRemote(context.Background(), &Info{TraceID: "t1", SpanID: 3, Hop: 1}, "mdm", s)
	ctx, a := Start(ctx, "mdm.resolve")
	ti, rec := Outbound(ctx)
	if ti == nil || rec == nil {
		t.Fatal("traced ctx must yield an outbound header and recorder")
	}
	if ti.TraceID != "t1" || ti.Hop != 2 {
		t.Fatalf("outbound %+v, want trace t1 hop 2", ti)
	}
	if ti.SpanID == 3 {
		t.Fatal("outbound parent must be the current span, not the inbound one")
	}
	a.Finish(nil)

	if ti, rec := Outbound(context.Background()); ti != nil || rec != nil {
		t.Fatal("untraced ctx must yield no outbound header")
	}
}

func TestNilSafety(t *testing.T) {
	var a *Active
	a.Annotate("ignored")
	a.Finish(nil)
	if a.TraceID() != "" {
		t.Fatal("nil Active must read as empty")
	}
	ctx, a2 := Start(context.Background(), "op")
	if a2 != nil || Traced(ctx) {
		t.Fatal("Start on an untraced ctx must be a no-op")
	}
	var col *Collector
	col.Emit(Span{TraceID: "x"})
	if col.SpanCount() != 0 || col.Trace("x") != nil || col.Slow(0) != nil || col.HopStats() != nil {
		t.Fatal("nil collector must read as empty")
	}
	var rr *RequestRecorder
	rr.Emit(Span{})
	rr.Ingest([]Span{{}})
	if rr.Drain() != nil {
		t.Fatal("nil recorder must read as empty")
	}
}

func TestFinishIsIdempotent(t *testing.T) {
	s := &sink{}
	ctx := WithRemote(context.Background(), &Info{TraceID: "t", SpanID: 1, Hop: 1}, "mdm", s)
	_, a := Start(ctx, "op")
	a.Finish(nil)
	a.Finish(errors.New("late"))
	if len(s.spans) != 1 {
		t.Fatalf("double Finish emitted %d spans, want 1", len(s.spans))
	}
	if s.spans[0].Err != "" {
		t.Fatal("late Finish must not overwrite the emitted span")
	}
}

func TestWithRemoteRejectsIncompleteHeaders(t *testing.T) {
	s := &sink{}
	if ctx := WithRemote(context.Background(), nil, "mdm", s); Traced(ctx) {
		t.Fatal("nil header must leave ctx untraced")
	}
	if ctx := WithRemote(context.Background(), &Info{}, "mdm", s); Traced(ctx) {
		t.Fatal("empty trace ID must leave ctx untraced")
	}
	if ctx := WithRemote(context.Background(), &Info{TraceID: "t"}, "mdm", nil); Traced(ctx) {
		t.Fatal("nil recorder must leave ctx untraced")
	}
}

func TestCollectorDedupsSpans(t *testing.T) {
	col := NewCollector("mdm", 0, -1)
	sp := Span{TraceID: "t", SpanID: 42, Name: "op", DurMicros: 5}
	col.Emit(sp)
	col.Emit(sp) // e.g. echoed back inside a client trace report
	if n := col.SpanCount(); n != 1 {
		t.Fatalf("retained %d spans, want 1 after dedup", n)
	}
}

func TestCollectorEvictsWholeTracesFIFO(t *testing.T) {
	col := NewCollector("mdm", 4, -1)
	for i := 0; i < 6; i++ {
		col.Emit(Span{TraceID: string(rune('a' + i)), SpanID: uint64(i + 1), Name: "op"})
	}
	if n := col.SpanCount(); n > 4 {
		t.Fatalf("retained %d spans, cap is 4", n)
	}
	if col.Trace("a") != nil {
		t.Fatal("oldest trace must be evicted first")
	}
	if col.Trace("f") == nil {
		t.Fatal("newest trace must survive eviction")
	}
}

func TestCollectorBoundsSpansPerTrace(t *testing.T) {
	col := NewCollector("mdm", maxSpansPerTrace*4, -1)
	for i := 0; i < maxSpansPerTrace+10; i++ {
		col.Emit(Span{TraceID: "big", SpanID: uint64(i + 1), Name: "op"})
	}
	if n := len(col.Trace("big")); n != maxSpansPerTrace {
		t.Fatalf("runaway trace retained %d spans, want %d", n, maxSpansPerTrace)
	}
	if col.Dropped() != 10 {
		t.Fatalf("dropped %d spans, want 10", col.Dropped())
	}
}

func TestCollectorSlowLog(t *testing.T) {
	col := NewCollector("mdm", 0, 10*time.Millisecond)
	col.Emit(Span{TraceID: "fast", SpanID: 1, Name: "op", Entry: true, DurMicros: 1000})
	col.Emit(Span{TraceID: "slow", SpanID: 2, Name: "op.child", DurMicros: 30000})
	col.Emit(Span{TraceID: "slow", SpanID: 3, Name: "op", Entry: true, DurMicros: 30000})
	// Non-entry spans never trigger, however slow.
	col.Emit(Span{TraceID: "slow2", SpanID: 4, Name: "op.child", DurMicros: 90000})
	slow := col.Slow(0)
	if len(slow) != 1 {
		t.Fatalf("slow log has %d traces, want 1", len(slow))
	}
	st := slow[0]
	if st.TraceID != "slow" || st.RootMicros != 30000 {
		t.Fatalf("slow record %+v, want trace slow root 30000us", st)
	}
	if len(st.Spans) != 2 {
		t.Fatalf("slow record copied %d spans, want the whole trace (2)", len(st.Spans))
	}

	// The log itself is bounded.
	for i := 0; i < DefaultSlowCap+8; i++ {
		id := "s" + string(rune('A'+i))
		col.Emit(Span{TraceID: id, SpanID: uint64(100 + i), Name: "op", Entry: true, DurMicros: 20000})
	}
	if n := len(col.Slow(0)); n != DefaultSlowCap {
		t.Fatalf("slow log grew to %d, cap is %d", n, DefaultSlowCap)
	}
	if n := len(col.Slow(3)); n != 3 {
		t.Fatalf("Slow(3) returned %d records, want 3", n)
	}
}

func TestCollectorHopStats(t *testing.T) {
	col := NewCollector("mdm", 0, -1)
	for i := 0; i < 10; i++ {
		col.Emit(Span{TraceID: "t", SpanID: uint64(i + 1), Name: "mdm.resolve", DurMicros: int64(1000 * (i + 1))})
		col.Emit(Span{TraceID: "t", SpanID: uint64(100 + i), Name: "store.fetch", DurMicros: 500})
	}
	hs := col.HopStats()
	if len(hs) != 2 {
		t.Fatalf("got %d hop stats, want 2", len(hs))
	}
	if hs[0].Name != "mdm.resolve" || hs[1].Name != "store.fetch" {
		t.Fatalf("hop stats not sorted by name: %q, %q", hs[0].Name, hs[1].Name)
	}
	if hs[0].Count != 10 {
		t.Fatalf("mdm.resolve count %d, want 10", hs[0].Count)
	}
}

func TestRequestRecorderIngestBuffersOnly(t *testing.T) {
	col := NewCollector("client", 0, -1)
	rr := NewRequestRecorder(col)
	rr.Emit(Span{TraceID: "t", SpanID: 1, Name: "client.get"})
	rr.Ingest([]Span{{TraceID: "t", SpanID: 2, Name: "store.fetch"}})
	if n := col.SpanCount(); n != 1 {
		t.Fatalf("collector holds %d spans, want only the locally emitted one", n)
	}
	if n := len(rr.Drain()); n != 2 {
		t.Fatalf("drained %d spans, want both local and ingested", n)
	}
}

func TestRequestRecorderBounded(t *testing.T) {
	rr := NewRequestRecorder(nil)
	for i := 0; i < requestSpanCap+50; i++ {
		rr.Emit(Span{TraceID: "t", SpanID: uint64(i + 1)})
	}
	if n := len(rr.Drain()); n != requestSpanCap {
		t.Fatalf("buffered %d spans, cap is %d", n, requestSpanCap)
	}
}

func TestHops(t *testing.T) {
	spans := []Span{{Hop: 2}, {Hop: 0}, {Hop: 2}, {Hop: 1}}
	got := Hops(spans)
	if len(got) != 3 || got[0] != 0 || got[1] != 1 || got[2] != 2 {
		t.Fatalf("Hops = %v, want [0 1 2]", got)
	}
}

func TestRenderTree(t *testing.T) {
	spans := []Span{
		{TraceID: "t", SpanID: 1, Name: "client.get", Site: "client", Hop: 0, Start: 100, DurMicros: 5000, Notes: []string{"batch=8"}},
		{TraceID: "t", SpanID: 2, Parent: 1, Name: "mdm.resolve", Site: "mdm", Hop: 1, Start: 200, DurMicros: 3000},
		{TraceID: "t", SpanID: 3, Parent: 2, Name: "store.fetch", Site: "store", Hop: 2, Start: 300, DurMicros: 1000, Err: "denied"},
		{TraceID: "t", SpanID: 4, Parent: 99, Name: "orphan", Site: "mdm", Hop: 1, Start: 400, DurMicros: 10},
	}
	out := RenderTree(spans)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("rendered %d lines, want 4:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[0], "client.get") || !strings.Contains(lines[0], "(batch=8)") {
		t.Fatalf("root line %q must name the root span and its notes", lines[0])
	}
	if !strings.Contains(lines[1], "  mdm.resolve") {
		t.Fatalf("child line %q must be indented under the root", lines[1])
	}
	if !strings.Contains(lines[2], "    store.fetch") || !strings.Contains(lines[2], "ERR=denied") {
		t.Fatalf("grandchild line %q must be doubly indented and carry the error", lines[2])
	}
	if !strings.Contains(lines[3], "orphan") {
		t.Fatalf("orphan %q must render as a root", lines[3])
	}
	if RenderTree(nil) != "(no spans)\n" {
		t.Fatal("empty span set must render a placeholder")
	}
}
