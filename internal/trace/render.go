package trace

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// Hops returns the distinct hop numbers present in a span set, ascending.
func Hops(spans []Span) []int {
	seen := map[int]bool{}
	for _, s := range spans {
		seen[s.Hop] = true
	}
	out := make([]int, 0, len(seen))
	for h := range seen {
		out = append(out, h)
	}
	sort.Ints(out)
	return out
}

// RenderTree renders a span set as an indented tree, children under
// parents, siblings in start order. Spans whose parent is absent (the
// client root, or an orphan after ring eviction) render as roots. Each
// line shows the offset from the tree's earliest span, the name, site,
// hop, duration, notes, and error.
func RenderTree(spans []Span) string {
	if len(spans) == 0 {
		return "(no spans)\n"
	}
	byID := make(map[uint64]*Span, len(spans))
	for i := range spans {
		byID[spans[i].SpanID] = &spans[i]
	}
	children := make(map[uint64][]*Span)
	var roots []*Span
	for i := range spans {
		s := &spans[i]
		if s.Parent != 0 && byID[s.Parent] != nil {
			children[s.Parent] = append(children[s.Parent], s)
		} else {
			roots = append(roots, s)
		}
	}
	byStart := func(ss []*Span) {
		sort.Slice(ss, func(i, j int) bool { return ss[i].Start < ss[j].Start })
	}
	byStart(roots)
	for _, cs := range children {
		byStart(cs)
	}

	t0 := spans[0].Start
	for _, s := range spans {
		if s.Start < t0 {
			t0 = s.Start
		}
	}

	var b strings.Builder
	var render func(s *Span, depth int)
	render = func(s *Span, depth int) {
		off := time.Duration(s.Start - t0).Round(10 * time.Microsecond)
		fmt.Fprintf(&b, "%9s  %s%s [%s hop%d] %s", "+"+off.String(),
			strings.Repeat("  ", depth), s.Name, s.Site, s.Hop,
			(time.Duration(s.DurMicros) * time.Microsecond).String())
		if len(s.Notes) > 0 {
			fmt.Fprintf(&b, " (%s)", strings.Join(s.Notes, ", "))
		}
		if s.Err != "" {
			fmt.Fprintf(&b, " ERR=%s", s.Err)
		}
		b.WriteByte('\n')
		for _, c := range children[s.SpanID] {
			render(c, depth+1)
		}
	}
	for _, r := range roots {
		render(r, 0)
	}
	return b.String()
}
