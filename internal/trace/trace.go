// Package trace implements request-scoped distributed tracing for the
// resolve fabric. Every client request mints a trace ID and a hop-numbered
// span context that rides the wire frame header (see wire.Message.Trace),
// is propagated in-process via context.Context, and is recorded by a
// lock-cheap bounded Collector in every participating process (client,
// MDM, data store, mirror).
//
// The paper's MDM is a Napster-style broker whose every resolve may hop
// client → MDM → store → mirror (§5.2 referral/chaining/recruiting);
// aggregate counters cannot say which hop burned a latency budget. Spans
// can: each hop's work is one Span, children link to parents across
// process boundaries, and completed spans piggyback on response frames so
// the caller ends up holding the whole tree. Clients additionally report
// their finished root spans to the MDM (fire-and-forget), making the MDM
// the constellation's trace directory — `gupctl trace <id>` renders the
// tree from there.
package trace

import (
	"crypto/rand"
	"encoding/hex"
	"sync/atomic"
	"time"
)

// Info is the wire form of a span context: it travels in the frame header
// and tells the receiver which trace it is serving, which remote span is
// its parent, and its hop number (distance from the originating client).
// Old frames simply omit it — tracing is fully backward-compatible.
type Info struct {
	TraceID string `json:"trace_id"`
	SpanID  uint64 `json:"span_id"`
	Hop     int    `json:"hop"`
}

// Span is one recorded unit of work. Spans are immutable once emitted and
// safe to copy; they serialize to JSON both on the wire (response
// piggyback, trace reports) and in tooling output.
type Span struct {
	TraceID string `json:"trace_id"`
	SpanID  uint64 `json:"span_id"`
	// Parent is the span this one nests under — possibly a span recorded
	// by another process (the wire header carries the linkage).
	Parent uint64 `json:"parent,omitempty"`
	// Hop counts process boundaries from the originating client: 0 at the
	// client, 1 at the MDM (or at a store reached directly via referral),
	// 2 at a store reached through the MDM, and so on.
	Hop int `json:"hop"`
	// Site names the process role that recorded the span: "client",
	// "mdm", "store", "mirror".
	Site string `json:"site,omitempty"`
	// Name identifies the operation, e.g. "client.get", "mdm.resolve",
	// "store.fetch". Per-hop latency percentiles aggregate by Name.
	Name string `json:"name"`
	// Entry marks the first span a process recorded for the request — the
	// span whose duration is that process's whole share of the request.
	// Slow-query detection triggers on entry spans.
	Entry bool  `json:"entry,omitempty"`
	Start int64 `json:"start_unix_nano"`
	// DurMicros is the span's wall-clock duration in microseconds.
	DurMicros int64  `json:"dur_us"`
	Err       string `json:"err,omitempty"`
	// Notes carries annotations such as "cache-hit", "coalesced", or
	// "store=gup.telecom".
	Notes []string `json:"notes,omitempty"`
}

// Duration returns the span's duration.
func (s *Span) Duration() time.Duration { return time.Duration(s.DurMicros) * time.Microsecond }

// Recorder receives completed spans. Collector records them for the whole
// process; RequestRecorder additionally buffers them for the response
// frame of the request being served.
type Recorder interface {
	// Emit records one locally produced span.
	Emit(Span)
	// Ingest folds spans reported by a downstream hop (piggybacked on its
	// response) into this recorder.
	Ingest([]Span)
}

// spanIDs hands out process-unique span IDs: a random base plus a counter,
// so IDs are unique within a process and collide across processes only
// with negligible probability.
var spanIDs atomic.Uint64

func init() {
	var b [8]byte
	if _, err := rand.Read(b[:]); err == nil {
		var v uint64
		for _, x := range b {
			v = v<<8 | uint64(x)
		}
		spanIDs.Store(v)
	}
}

func nextSpanID() uint64 {
	id := spanIDs.Add(1)
	if id == 0 { // 0 means "no parent"; skip it
		id = spanIDs.Add(1)
	}
	return id
}

// NewTraceID mints a random 64-bit trace ID in hex.
func NewTraceID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// Fall back to the span-ID counter; uniqueness within the process
		// is all the fallback can promise.
		var c [8]byte
		v := spanIDs.Add(1)
		for i := 7; i >= 0; i-- {
			c[i] = byte(v)
			v >>= 8
		}
		return hex.EncodeToString(c[:])
	}
	return hex.EncodeToString(b[:])
}

// Active is a started, not-yet-finished span. All methods are nil-safe so
// untraced requests cost a single pointer comparison per call site.
type Active struct {
	rec   Recorder
	s     Span
	start time.Time
	done  atomic.Bool
}

// TraceID returns the trace the span belongs to ("" on a no-op span).
func (a *Active) TraceID() string {
	if a == nil {
		return ""
	}
	return a.s.TraceID
}

// Annotate appends a note to the span (e.g. "cache-hit"). Call before
// Finish, from the goroutine driving the request.
func (a *Active) Annotate(note string) {
	if a == nil || a.done.Load() {
		return
	}
	a.s.Notes = append(a.s.Notes, note)
}

// Finish completes the span, stamping its duration and error, and emits it
// to the recorder. Subsequent Finish calls are no-ops.
func (a *Active) Finish(err error) {
	if a == nil || a.done.Swap(true) {
		return
	}
	a.s.DurMicros = time.Since(a.start).Microseconds()
	if err != nil {
		a.s.Err = err.Error()
	}
	if a.rec != nil {
		a.rec.Emit(a.s)
	}
}
