// Package reachme implements the selective reach-me converged service of
// paper §2.2: given everything the converged network knows about a user —
// wireless location (on/off air), PSTN call status, internet presence,
// VoIP registrations, calendar, devices, and the user's own routing
// preferences — decide the ordered list of ways to reach her, in well under
// the "few seconds" budget the paper sets.
//
// All inputs arrive as GUP profile components through a single Getter, so
// the service works identically against an in-process MDM, a remote
// GUPster deployment, or a test fake. Reach-me preferences are ordinary
// profile data: <preferences> rules whose conditions reuse the privacy
// shield's condition language ("hours(08:00,09:00)", "weekday(Fri)", …) and
// whose actions name devices ("call:cell").
package reachme

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"gupster/internal/policy"
	"gupster/internal/xmltree"
)

// Getter fetches a profile component by path; *core.Client satisfies it
// with a thin wrapper, tests use fakes.
type Getter interface {
	Get(ctx context.Context, path string) (*xmltree.Node, error)
}

// GetterFunc adapts a function to Getter.
type GetterFunc func(ctx context.Context, path string) (*xmltree.Node, error)

// Get implements Getter.
func (f GetterFunc) Get(ctx context.Context, path string) (*xmltree.Node, error) {
	return f(ctx, path)
}

// Attempt is one way to try reaching the user, in order.
type Attempt struct {
	// Device is the GUP device id ("cell", "office", "softphone-0", …).
	Device string
	// Network is the device's network ("wireless", "pstn", "voip", "im").
	Network string
	// Address is the dialable number or URI.
	Address string
	// Reason explains the routing decision for diagnostics.
	Reason string
}

// Decision is the ordered contact plan.
type Decision struct {
	User     string
	Attempts []Attempt
	// Sources counts the profile components that informed the decision.
	Sources int
	// Elapsed is the wall-clock cost of gathering and deciding.
	Elapsed time.Duration
}

// Service is the reach-me decision engine.
type Service struct {
	// Profile fetches components (usually a GUPster client).
	Profile Getter
	// Sequential disables concurrent component gathering; benchmark E7's
	// ablation between fan-out and one-at-a-time fetching.
	Sequential bool
}

// the components a decision reads.
var componentSections = []string{"presence", "location", "calendar", "devices", "preferences"}

// snapshot is the gathered converged state.
type snapshot struct {
	presence  string
	note      string
	onAir     bool
	hasRadio  bool
	busy      bool
	busyTitle string
	devices   []device
	rules     []prefRule
}

type device struct {
	id, network, number string
}

type prefRule struct {
	id     string
	cond   policy.Condition
	action string
}

// Decide gathers the user's converged profile and produces the contact
// plan for the given instant.
func (s *Service) Decide(ctx context.Context, user string, at time.Time) (Decision, error) {
	started := time.Now()
	snap, sources, err := s.gather(ctx, user, at)
	if err != nil {
		return Decision{}, err
	}
	attempts := decide(snap, at)
	return Decision{
		User:     user,
		Attempts: attempts,
		Sources:  sources,
		Elapsed:  time.Since(started),
	}, nil
}

// gather fetches all components, concurrently unless Sequential.
func (s *Service) gather(ctx context.Context, user string, at time.Time) (*snapshot, int, error) {
	paths := make([]string, len(componentSections))
	for i, sec := range componentSections {
		paths[i] = fmt.Sprintf("/user[@id='%s']/%s", user, sec)
	}
	docs := make([]*xmltree.Node, len(paths))
	if s.Sequential {
		for i, p := range paths {
			doc, err := s.Profile.Get(ctx, p)
			if err == nil {
				docs[i] = doc
			}
		}
	} else {
		var wg sync.WaitGroup
		for i, p := range paths {
			wg.Add(1)
			go func(i int, p string) {
				defer wg.Done()
				doc, err := s.Profile.Get(ctx, p)
				if err == nil {
					docs[i] = doc
				}
			}(i, p)
		}
		wg.Wait()
	}

	snap := &snapshot{}
	sources := 0
	for i, doc := range docs {
		if doc == nil {
			continue
		}
		sources++
		s.absorb(snap, componentSections[i], doc, at)
	}
	if sources == 0 {
		return nil, 0, fmt.Errorf("reachme: no profile data reachable for %s", user)
	}
	return snap, sources, nil
}

// absorb folds one fetched component document (spine-rooted or
// component-rooted) into the snapshot.
func (s *Service) absorb(snap *snapshot, section string, doc *xmltree.Node, at time.Time) {
	comp := doc
	if doc.Name == "user" {
		if comp = doc.Child(section); comp == nil {
			return
		}
	}
	switch section {
	case "presence":
		if v, ok := comp.Attr("status"); ok {
			snap.presence = v
		}
		snap.note = comp.ChildText("note")
	case "location":
		snap.hasRadio = true
		if v, _ := comp.Attr("onair"); v == "true" {
			snap.onAir = true
		}
	case "calendar":
		min := at.Hour()*60 + at.Minute()
		day := at.Weekday().String()[:3]
		for _, ev := range comp.ChildrenNamed("event") {
			if d, _ := ev.Attr("day"); d != day {
				continue
			}
			start, sErr := clockMinutes(attrOr(ev, "start", "00:00"))
			end, eErr := clockMinutes(attrOr(ev, "end", "23:59"))
			if sErr != nil || eErr != nil {
				continue
			}
			if min >= start && min < end {
				snap.busy = true
				snap.busyTitle = ev.ChildText("title")
				break
			}
		}
	case "devices":
		for _, d := range comp.ChildrenNamed("device") {
			id, _ := d.Attr("id")
			network, _ := d.Attr("network")
			snap.devices = append(snap.devices, device{
				id: id, network: network, number: d.ChildText("number"),
			})
		}
	case "preferences":
		for _, r := range comp.ChildrenNamed("rule") {
			action, _ := r.Attr("action")
			if !strings.HasPrefix(action, "call:") {
				continue
			}
			cond, err := policy.ParseCond(attrOr(r, "when", ""))
			if err != nil {
				continue // malformed rules are skipped, not fatal
			}
			id, _ := r.Attr("id")
			snap.rules = append(snap.rules, prefRule{id: id, cond: cond, action: action})
		}
	}
}

// decide turns a snapshot into the ordered attempt list:
//
//  1. the user's own matching preference rules, in document order (the
//     paper's "during working hours … call office phone first"),
//  2. presence- and network-informed defaults,
//  3. voicemail as the last resort.
//
// A device is only attempted when its network is currently viable: wireless
// needs the radio on-air, VoIP needs a live registration (a voip device in
// the component), and a calendar conflict demotes interruptive voice
// attempts below messaging.
func decide(snap *snapshot, at time.Time) []Attempt {
	byID := make(map[string]device, len(snap.devices))
	byNetwork := make(map[string][]device)
	for _, d := range snap.devices {
		byID[d.id] = d
		byNetwork[d.network] = append(byNetwork[d.network], d)
	}
	viable := func(d device) bool {
		if d.network == "wireless" && !snap.onAir && snap.hasRadio {
			return false
		}
		return true
	}

	var attempts []Attempt
	seen := map[string]bool{}
	add := func(d device, reason string) {
		if d.id == "" || seen[d.id] || !viable(d) {
			return
		}
		seen[d.id] = true
		attempts = append(attempts, Attempt{
			Device: d.id, Network: d.network, Address: d.number, Reason: reason,
		})
	}

	ctx := policy.Context{Time: at}
	for _, r := range snap.rules {
		if !r.cond.Eval(ctx) {
			continue
		}
		id := strings.TrimPrefix(r.action, "call:")
		if d, ok := byID[id]; ok {
			add(d, "preference rule "+r.id)
		}
	}

	if snap.busy {
		// In a meeting: non-interruptive first.
		for _, d := range byNetwork["im"] {
			add(d, "calendar busy ("+snap.busyTitle+"): message first")
		}
	}
	if snap.presence == "available" {
		for _, net := range []string{"pstn", "voip"} {
			for _, d := range byNetwork[net] {
				add(d, "presence available: "+net)
			}
		}
	}
	if snap.onAir {
		for _, d := range byNetwork["wireless"] {
			add(d, "radio on-air")
		}
	}
	// Everything else that is still viable, in a stable order.
	rest := append([]device(nil), snap.devices...)
	sort.Slice(rest, func(i, j int) bool { return rest[i].id < rest[j].id })
	for _, d := range rest {
		add(d, "fallback")
	}
	attempts = append(attempts, Attempt{
		Device: "voicemail", Network: "pstn", Address: "vm", Reason: "last resort",
	})
	return attempts
}

func clockMinutes(s string) (int, error) {
	var h, m int
	if _, err := fmt.Sscanf(s, "%d:%d", &h, &m); err != nil || h < 0 || h > 23 || m < 0 || m > 59 {
		return 0, fmt.Errorf("reachme: bad clock %q", s)
	}
	return h*60 + m, nil
}

func attrOr(n *xmltree.Node, name, def string) string {
	if v, ok := n.Attr(name); ok {
		return v
	}
	return def
}
