package reachme

import (
	"context"
	"fmt"
	"sync"

	"gupster/internal/xmltree"
)

// Buddy is one entry of a buddy-list join with live presence — the paper's
// third canonical profile query (§2.3 requirement 5: "retrieve Alice's
// buddies who are available").
type Buddy struct {
	Name   string
	Group  string
	Status string // "" when the buddy has no reachable presence component
}

// AvailableBuddies fetches the user's buddy list and joins it with each
// buddy's presence (fetched concurrently, each under its owner's own
// privacy shield), returning the buddies whose status is "available". The
// full annotated list is returned alongside for display.
func AvailableBuddies(ctx context.Context, profile Getter, user string) (available, all []Buddy, err error) {
	doc, err := profile.Get(ctx, fmt.Sprintf("/user[@id='%s']/buddy-list", user))
	if err != nil {
		return nil, nil, fmt.Errorf("reachme: buddy list: %w", err)
	}
	list := doc
	if doc.Name == "user" {
		if list = doc.Child("buddy-list"); list == nil {
			return nil, nil, fmt.Errorf("reachme: %s has no buddy list", user)
		}
	}
	buddies := list.ChildrenNamed("buddy")
	all = make([]Buddy, len(buddies))
	var wg sync.WaitGroup
	for i, b := range buddies {
		name, _ := b.Attr("name")
		group, _ := b.Attr("group")
		all[i] = Buddy{Name: name, Group: group}
		wg.Add(1)
		go func(i int, name string) {
			defer wg.Done()
			doc, err := profile.Get(ctx, fmt.Sprintf("/user[@id='%s']/presence", name))
			if err != nil {
				return // unreachable or denied: status stays ""
			}
			all[i].Status = presenceStatus(doc)
		}(i, name)
	}
	wg.Wait()
	for _, b := range all {
		if b.Status == "available" {
			available = append(available, b)
		}
	}
	return available, all, nil
}

func presenceStatus(doc *xmltree.Node) string {
	comp := doc
	if doc.Name == "user" {
		if comp = doc.Child("presence"); comp == nil {
			return ""
		}
	}
	s, _ := comp.Attr("status")
	return s
}
