package reachme

import (
	"context"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"gupster/internal/xmltree"
)

// fakeProfile serves components from a map keyed by section name.
type fakeProfile struct {
	components map[string]string
	calls      atomic.Int64
	delay      time.Duration
}

func (f *fakeProfile) Get(_ context.Context, path string) (*xmltree.Node, error) {
	f.calls.Add(1)
	if f.delay > 0 {
		time.Sleep(f.delay)
	}
	for section, xml := range f.components {
		if strings.HasSuffix(path, "/"+section) {
			return xmltree.MustParse(xml), nil
		}
	}
	return nil, fmt.Errorf("no component at %s", path)
}

// Alice's converged profile, per the paper's running example.
func aliceProfile() *fakeProfile {
	return &fakeProfile{components: map[string]string{
		"presence": `<presence status="available"/>`,
		"location": `<location cell="cell-07974" onair="true"/>`,
		"calendar": `<calendar>
			<event id="standup" day="Mon" start="09:00" end="09:30"><title>standup</title></event>
		</calendar>`,
		"devices": `<devices>
			<device id="office" network="pstn"><number>908-555-0001</number></device>
			<device id="softphone" network="voip"><number>sip:alice@host</number></device>
			<device id="cell" network="wireless"><number>908-555-0002</number></device>
			<device id="im" network="im"><number>alice@im</number></device>
			<device id="home" network="pstn"><number>908-555-0003</number></device>
		</devices>`,
		"preferences": `<preferences>
			<rule id="work-hours" when="and(hours(09:00,18:00),weekday(Mon,Tue,Wed,Thu))" action="call:office"/>
			<rule id="commute" when="or(hours(08:00,09:00),hours(18:00,19:00))" action="call:cell"/>
			<rule id="friday-wfh" when="weekday(Fri)" action="call:home"/>
		</preferences>`,
	}}
}

// monday returns 2026-07-06 (a Monday) at the given clock time.
func monday(clock string) time.Time {
	tt, err := time.Parse("15:04", clock)
	if err != nil {
		panic(err)
	}
	return time.Date(2026, 7, 6, tt.Hour(), tt.Minute(), 0, 0, time.UTC)
}

func friday(clock string) time.Time {
	return monday(clock).AddDate(0, 0, 4)
}

func deviceOrder(d Decision) []string {
	out := make([]string, len(d.Attempts))
	for i, a := range d.Attempts {
		out[i] = a.Device
	}
	return out
}

// The paper's scenario: during working hours with presence available, call
// the office phone first, then try the soft phone.
func TestWorkingHoursOfficeFirst(t *testing.T) {
	svc := &Service{Profile: aliceProfile()}
	d, err := svc.Decide(context.Background(), "alice", monday("10:00"))
	if err != nil {
		t.Fatalf("Decide: %v", err)
	}
	order := deviceOrder(d)
	if order[0] != "office" {
		t.Errorf("first attempt = %q (order %v)", order[0], order)
	}
	if idx(order, "softphone") < 0 || idx(order, "softphone") > idx(order, "cell") {
		t.Errorf("softphone should come before cell: %v", order)
	}
	if order[len(order)-1] != "voicemail" {
		t.Errorf("voicemail should be last: %v", order)
	}
	if d.Sources != 5 {
		t.Errorf("sources = %d", d.Sources)
	}
}

// Commuting window: the cell leads.
func TestCommuteCallsCell(t *testing.T) {
	svc := &Service{Profile: aliceProfile()}
	d, err := svc.Decide(context.Background(), "alice", monday("08:30"))
	if err != nil {
		t.Fatal(err)
	}
	if deviceOrder(d)[0] != "cell" {
		t.Errorf("order = %v", deviceOrder(d))
	}
}

// Friday: working from home — home phone first.
func TestFridayHomeFirst(t *testing.T) {
	svc := &Service{Profile: aliceProfile()}
	d, err := svc.Decide(context.Background(), "alice", friday("10:00"))
	if err != nil {
		t.Fatal(err)
	}
	if deviceOrder(d)[0] != "home" {
		t.Errorf("order = %v", deviceOrder(d))
	}
}

// Radio off-air: wireless attempts disappear entirely.
func TestOffAirSkipsCell(t *testing.T) {
	p := aliceProfile()
	p.components["location"] = `<location cell="?" onair="false"/>`
	svc := &Service{Profile: p}
	d, err := svc.Decide(context.Background(), "alice", monday("08:30"))
	if err != nil {
		t.Fatal(err)
	}
	order := deviceOrder(d)
	if idx(order, "cell") >= 0 {
		t.Errorf("off-air cell attempted: %v", order)
	}
	if order[0] != "office" { // commute rule targets cell, which is not viable
		t.Errorf("order = %v", order)
	}
}

// Calendar conflict: messaging is promoted above voice defaults.
func TestBusyPrefersIM(t *testing.T) {
	p := aliceProfile()
	// Remove the preference rules so defaults drive the order.
	p.components["preferences"] = `<preferences/>`
	svc := &Service{Profile: p}
	d, err := svc.Decide(context.Background(), "alice", monday("09:15")) // standup
	if err != nil {
		t.Fatal(err)
	}
	order := deviceOrder(d)
	if order[0] != "im" {
		t.Errorf("busy user should be messaged first: %v", order)
	}
	if !strings.Contains(d.Attempts[0].Reason, "standup") {
		t.Errorf("reason = %q", d.Attempts[0].Reason)
	}
}

// Missing components degrade gracefully.
func TestPartialProfile(t *testing.T) {
	p := &fakeProfile{components: map[string]string{
		"devices": `<devices><device id="cell" network="wireless"><number>1</number></device></devices>`,
	}}
	svc := &Service{Profile: p}
	d, err := svc.Decide(context.Background(), "alice", monday("10:00"))
	if err != nil {
		t.Fatal(err)
	}
	if d.Sources != 1 {
		t.Errorf("sources = %d", d.Sources)
	}
	// Without location data the radio state is unknown: attempt the cell.
	if idx(deviceOrder(d), "cell") < 0 {
		t.Errorf("order = %v", deviceOrder(d))
	}
}

func TestNoProfileAtAll(t *testing.T) {
	p := &fakeProfile{components: map[string]string{}}
	svc := &Service{Profile: p}
	if _, err := svc.Decide(context.Background(), "ghost", monday("10:00")); err == nil {
		t.Error("decision without any data")
	}
}

// Spine-rooted documents (as GUPster returns them) are handled too.
func TestSpineRootedComponents(t *testing.T) {
	p := &fakeProfile{components: map[string]string{
		"presence": `<user id="alice"><presence status="available"/></user>`,
		"devices":  `<user id="alice"><devices><device id="office" network="pstn"><number>1</number></device></devices></user>`,
	}}
	svc := &Service{Profile: p}
	d, err := svc.Decide(context.Background(), "alice", monday("10:00"))
	if err != nil {
		t.Fatal(err)
	}
	if deviceOrder(d)[0] != "office" {
		t.Errorf("order = %v", deviceOrder(d))
	}
}

// Malformed preference rules are skipped rather than fatal.
func TestMalformedRuleSkipped(t *testing.T) {
	p := aliceProfile()
	p.components["preferences"] = `<preferences>
		<rule id="broken" when="hours(99:99)" action="call:office"/>
		<rule id="ok" when="always" action="call:home"/>
	</preferences>`
	svc := &Service{Profile: p}
	d, err := svc.Decide(context.Background(), "alice", monday("10:00"))
	if err != nil {
		t.Fatal(err)
	}
	if deviceOrder(d)[0] != "home" {
		t.Errorf("order = %v", deviceOrder(d))
	}
}

// Parallel gathering must beat sequential when sources are slow (the §2.2
// fast-response requirement; benchmark E7 measures this at scale).
func TestParallelGatherFaster(t *testing.T) {
	mk := func() *fakeProfile {
		p := aliceProfile()
		p.delay = 20 * time.Millisecond
		return p
	}
	par := &Service{Profile: mk()}
	seq := &Service{Profile: mk(), Sequential: true}

	dp, err := par.Decide(context.Background(), "alice", monday("10:00"))
	if err != nil {
		t.Fatal(err)
	}
	ds, err := seq.Decide(context.Background(), "alice", monday("10:00"))
	if err != nil {
		t.Fatal(err)
	}
	if dp.Elapsed >= ds.Elapsed {
		t.Errorf("parallel %v not faster than sequential %v", dp.Elapsed, ds.Elapsed)
	}
	if ds.Elapsed < 5*20*time.Millisecond {
		t.Errorf("sequential should pay all delays: %v", ds.Elapsed)
	}
}

func idx(ss []string, want string) int {
	for i, s := range ss {
		if s == want {
			return i
		}
	}
	return -1
}
