package reachme

import (
	"context"
	"fmt"
	"strings"
	"testing"

	"gupster/internal/xmltree"
)

// multiUserProfile serves per-user components keyed by "user/section".
type multiUserProfile struct {
	components map[string]string
}

func (f *multiUserProfile) Get(_ context.Context, path string) (*xmltree.Node, error) {
	for key, xml := range f.components {
		user := key[:strings.Index(key, "/")]
		section := key[strings.Index(key, "/")+1:]
		if strings.Contains(path, "'"+user+"'") && strings.HasSuffix(path, "/"+section) {
			return xmltree.MustParse(xml), nil
		}
	}
	return nil, fmt.Errorf("no component at %s", path)
}

func TestAvailableBuddies(t *testing.T) {
	p := &multiUserProfile{components: map[string]string{
		"alice/buddy-list": `<buddy-list>
			<buddy name="rick" group="work"/>
			<buddy name="dan" group="work"/>
			<buddy name="ming" group="friends"/>
			<buddy name="ghost"/>
		</buddy-list>`,
		"rick/presence": `<presence status="available"/>`,
		"dan/presence":  `<presence status="busy"/>`,
		"ming/presence": `<user id="ming"><presence status="available"/></user>`, // spine-rooted
		// ghost has no presence component at all.
	}}
	available, all, err := AvailableBuddies(context.Background(), p, "alice")
	if err != nil {
		t.Fatalf("AvailableBuddies: %v", err)
	}
	if len(all) != 4 {
		t.Fatalf("all = %+v", all)
	}
	names := map[string]bool{}
	for _, b := range available {
		names[b.Name] = true
	}
	if len(available) != 2 || !names["rick"] || !names["ming"] {
		t.Errorf("available = %+v", available)
	}
	for _, b := range all {
		switch b.Name {
		case "dan":
			if b.Status != "busy" {
				t.Errorf("dan = %+v", b)
			}
		case "ghost":
			if b.Status != "" {
				t.Errorf("ghost = %+v", b)
			}
		case "rick":
			if b.Group != "work" {
				t.Errorf("rick = %+v", b)
			}
		}
	}
}

func TestAvailableBuddiesNoList(t *testing.T) {
	p := &multiUserProfile{components: map[string]string{}}
	if _, _, err := AvailableBuddies(context.Background(), p, "alice"); err == nil {
		t.Error("missing buddy list accepted")
	}
	// A spine document without the component errors too.
	p.components["alice/buddy-list"] = `<user id="alice"/>`
	if _, _, err := AvailableBuddies(context.Background(), p, "alice"); err == nil {
		t.Error("empty spine accepted")
	}
}
