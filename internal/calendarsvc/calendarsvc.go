// Package calendarsvc simulates a network-hosted calendar service (paper
// §2.1–2.2: Alice's personal calendar at Yahoo!, her corporate calendar at
// Lucent). It stores per-user events keyed by weekday and clock time,
// answers the availability queries the selective reach-me service needs
// ("retrieve Alice's appointments for today"), and exports the GUP
// <calendar> component.
package calendarsvc

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"gupster/internal/xmltree"
)

// Service errors.
var (
	ErrNoEvent = errors.New("calendarsvc: no such event")
	ErrBadTime = errors.New("calendarsvc: bad clock time")
)

// Event is one calendar entry. Times are minutes-since-midnight on a
// weekday — the recurring weekly shape the paper's reach-me examples use
// ("on Fridays, Alice is working from home").
type Event struct {
	ID    string
	Day   time.Weekday
	Start int // minutes since midnight
	End   int
	Title string
	Where string
}

// parseClock converts "HH:MM" to minutes.
func parseClock(s string) (int, error) {
	var h, m int
	if _, err := fmt.Sscanf(s, "%d:%d", &h, &m); err != nil || h < 0 || h > 23 || m < 0 || m > 59 {
		return 0, fmt.Errorf("%w: %q", ErrBadTime, s)
	}
	return h*60 + m, nil
}

// NewEvent builds an event from clock strings; it panics on malformed
// times (static fixtures) — use Add with explicit minutes for dynamic data.
func NewEvent(id string, day time.Weekday, start, end, title, where string) Event {
	s, err := parseClock(start)
	if err != nil {
		panic(err)
	}
	e, err := parseClock(end)
	if err != nil {
		panic(err)
	}
	return Event{ID: id, Day: day, Start: s, End: e, Title: title, Where: where}
}

// Service is the calendar store. Safe for concurrent use.
type Service struct {
	mu     sync.RWMutex
	events map[string]map[string]Event // user → event id → event
}

// New returns an empty service.
func New() *Service {
	return &Service{events: make(map[string]map[string]Event)}
}

// Add inserts or replaces an event.
func (s *Service) Add(user string, e Event) {
	s.mu.Lock()
	defer s.mu.Unlock()
	m := s.events[user]
	if m == nil {
		m = make(map[string]Event)
		s.events[user] = m
	}
	m[e.ID] = e
}

// Remove deletes an event.
func (s *Service) Remove(user, id string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	m := s.events[user]
	if _, ok := m[id]; !ok {
		return fmt.Errorf("%w: %s/%s", ErrNoEvent, user, id)
	}
	delete(m, id)
	return nil
}

// EventsOn lists a user's events for a weekday, ordered by start time.
func (s *Service) EventsOn(user string, day time.Weekday) []Event {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var out []Event
	for _, e := range s.events[user] {
		if e.Day == day {
			out = append(out, e)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Start != out[j].Start {
			return out[i].Start < out[j].Start
		}
		return out[i].ID < out[j].ID
	})
	return out
}

// BusyAt reports whether the user has an event covering the instant, and
// which one.
func (s *Service) BusyAt(user string, at time.Time) (Event, bool) {
	min := at.Hour()*60 + at.Minute()
	for _, e := range s.EventsOn(user, at.Weekday()) {
		if min >= e.Start && min < e.End {
			return e, true
		}
	}
	return Event{}, false
}

// NextFree returns the next minute-of-day at or after the instant when the
// user has no event, within the same day; ok is false when the rest of the
// day is busy.
func (s *Service) NextFree(user string, at time.Time) (int, bool) {
	min := at.Hour()*60 + at.Minute()
	events := s.EventsOn(user, at.Weekday())
	for {
		busy := false
		for _, e := range events {
			if min >= e.Start && min < e.End {
				min = e.End
				busy = true
				break
			}
		}
		if !busy {
			return min, min < 24*60
		}
		if min >= 24*60 {
			return 0, false
		}
	}
}

// Component exports the GUP <calendar> component for a user.
func (s *Service) Component(user string) *xmltree.Node {
	s.mu.RLock()
	defer s.mu.RUnlock()
	cal := xmltree.New("calendar")
	var ids []string
	for id := range s.events[user] {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		e := s.events[user][id]
		ev := xmltree.New("event").
			SetAttr("id", e.ID).
			SetAttr("day", e.Day.String()[:3]).
			SetAttr("start", fmt.Sprintf("%02d:%02d", e.Start/60, e.Start%60)).
			SetAttr("end", fmt.Sprintf("%02d:%02d", e.End/60, e.End%60))
		if e.Title != "" {
			ev.Add(xmltree.NewText("title", e.Title))
		}
		if e.Where != "" {
			ev.Add(xmltree.NewText("where", e.Where))
		}
		cal.Add(ev)
	}
	return cal
}

// FromComponent imports a GUP <calendar> component, replacing the user's
// events (the provisioning direction).
func (s *Service) FromComponent(user string, cal *xmltree.Node) error {
	if cal == nil || cal.Name != "calendar" {
		return errors.New("calendarsvc: fragment is not a <calendar>")
	}
	parsed := make(map[string]Event)
	for _, ev := range cal.ChildrenNamed("event") {
		id, ok := ev.Attr("id")
		if !ok {
			return errors.New("calendarsvc: event without id")
		}
		day, err := parseDay(attrOr(ev, "day", "Mon"))
		if err != nil {
			return err
		}
		start, err := parseClock(attrOr(ev, "start", "00:00"))
		if err != nil {
			return err
		}
		end, err := parseClock(attrOr(ev, "end", "23:59"))
		if err != nil {
			return err
		}
		parsed[id] = Event{
			ID: id, Day: day, Start: start, End: end,
			Title: ev.ChildText("title"), Where: ev.ChildText("where"),
		}
	}
	s.mu.Lock()
	s.events[user] = parsed
	s.mu.Unlock()
	return nil
}

func attrOr(n *xmltree.Node, name, def string) string {
	if v, ok := n.Attr(name); ok {
		return v
	}
	return def
}

func parseDay(s string) (time.Weekday, error) {
	for d := time.Sunday; d <= time.Saturday; d++ {
		if d.String()[:3] == s || d.String() == s {
			return d, nil
		}
	}
	return 0, fmt.Errorf("calendarsvc: bad weekday %q", s)
}
