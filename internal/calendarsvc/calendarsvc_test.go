package calendarsvc

import (
	"errors"
	"testing"
	"time"

	"gupster/internal/schema"
	"gupster/internal/xmltree"
	"gupster/internal/xpath"
)

// 2026-07-06 is a Monday.
func mondayAt(clock string) time.Time {
	tt, err := time.Parse("15:04", clock)
	if err != nil {
		panic(err)
	}
	return time.Date(2026, 7, 6, tt.Hour(), tt.Minute(), 0, 0, time.UTC)
}

func seeded() *Service {
	s := New()
	s.Add("alice", NewEvent("standup", time.Monday, "09:00", "09:30", "standup", "room 1"))
	s.Add("alice", NewEvent("design", time.Monday, "09:30", "11:00", "design review", "room 2"))
	s.Add("alice", NewEvent("lunch", time.Monday, "12:00", "13:00", "lunch", ""))
	s.Add("alice", NewEvent("friday-wfh", time.Friday, "08:00", "18:00", "working from home", "home"))
	return s
}

func TestEventsOnOrdering(t *testing.T) {
	s := seeded()
	evs := s.EventsOn("alice", time.Monday)
	if len(evs) != 3 {
		t.Fatalf("events = %d", len(evs))
	}
	if evs[0].ID != "standup" || evs[2].ID != "lunch" {
		t.Errorf("order = %v", evs)
	}
	if len(s.EventsOn("alice", time.Sunday)) != 0 {
		t.Error("sunday should be empty")
	}
	if len(s.EventsOn("ghost", time.Monday)) != 0 {
		t.Error("ghost user should be empty")
	}
}

func TestBusyAt(t *testing.T) {
	s := seeded()
	if e, busy := s.BusyAt("alice", mondayAt("09:15")); !busy || e.ID != "standup" {
		t.Errorf("09:15 = %v, %v", e, busy)
	}
	if _, busy := s.BusyAt("alice", mondayAt("11:30")); busy {
		t.Error("11:30 should be free")
	}
	// End is exclusive.
	if _, busy := s.BusyAt("alice", mondayAt("11:00")); busy {
		t.Error("11:00 (end of design) should be free")
	}
}

func TestNextFree(t *testing.T) {
	s := seeded()
	// During back-to-back meetings: next free is 11:00.
	min, ok := s.NextFree("alice", mondayAt("09:10"))
	if !ok || min != 11*60 {
		t.Errorf("NextFree = %d, %v", min, ok)
	}
	// Already free: now.
	min, ok = s.NextFree("alice", mondayAt("14:00"))
	if !ok || min != 14*60 {
		t.Errorf("NextFree = %d, %v", min, ok)
	}
}

func TestRemove(t *testing.T) {
	s := seeded()
	if err := s.Remove("alice", "lunch"); err != nil {
		t.Fatal(err)
	}
	if err := s.Remove("alice", "lunch"); !errors.Is(err, ErrNoEvent) {
		t.Errorf("err = %v", err)
	}
	if _, busy := s.BusyAt("alice", mondayAt("12:30")); busy {
		t.Error("removed event still busy")
	}
}

func TestComponentRoundTrip(t *testing.T) {
	s := seeded()
	cal := s.Component("alice")
	if got := len(cal.ChildrenNamed("event")); got != 4 {
		t.Fatalf("events = %d\n%s", got, cal.Indent())
	}
	if err := schema.GUP().ValidateComponent(xpath.MustParse("/user/calendar"), cal); err != nil {
		t.Errorf("schema: %v", err)
	}
	// Import into a fresh service.
	s2 := New()
	if err := s2.FromComponent("alice", cal); err != nil {
		t.Fatalf("FromComponent: %v", err)
	}
	if e, busy := s2.BusyAt("alice", mondayAt("09:15")); !busy || e.Title != "standup" {
		t.Errorf("imported: %v, %v", e, busy)
	}
	evs := s2.EventsOn("alice", time.Friday)
	if len(evs) != 1 || evs[0].Where != "home" {
		t.Errorf("friday = %v", evs)
	}
}

func TestFromComponentErrors(t *testing.T) {
	s := New()
	if err := s.FromComponent("u", xmltree.New("presence")); err == nil {
		t.Error("wrong fragment accepted")
	}
	if err := s.FromComponent("u", xmltree.MustParse(`<calendar><event/></calendar>`)); err == nil {
		t.Error("event without id accepted")
	}
	if err := s.FromComponent("u", xmltree.MustParse(`<calendar><event id="e" day="Funday"/></calendar>`)); err == nil {
		t.Error("bad weekday accepted")
	}
	if err := s.FromComponent("u", xmltree.MustParse(`<calendar><event id="e" start="99:99"/></calendar>`)); err == nil {
		t.Error("bad clock accepted")
	}
}

func TestNewEventPanicsOnGarbage(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("want panic")
		}
	}()
	NewEvent("x", time.Monday, "25:00", "26:00", "", "")
}
