package xpath

import (
	"testing"
)

// Property tests over randomly generated paths. They complement the
// semantics-based soundness tests in xpath_test.go with the algebraic laws
// the resolve pipeline leans on: canonical printing is a fixpoint of Parse,
// a prefix registration fully covers any extension of itself, Contains is
// a preorder, CoverFull composes, and Intersect is sound from both sides.

var (
	propNames = []string{"a", "b", "c"}
	propAttrs = []string{"x", "y"}
	propVals  = []string{"1", "2"}
)

// randStep builds one location step; at most one predicate per attribute so
// generated steps are always satisfiable.
func randStep(rng *miniRand) Step {
	s := Step{Name: propNames[rng.next()%len(propNames)]}
	if rng.next()%4 == 0 {
		s.Name = "*"
	}
	for _, attr := range propAttrs {
		if rng.next()%3 != 0 {
			continue
		}
		pr := Pred{Attr: attr}
		if rng.next()%2 == 0 {
			pr.HasValue = true
			pr.Value = propVals[rng.next()%len(propVals)]
		}
		s.Preds = append(s.Preds, pr)
	}
	return s
}

// randPath builds a random path of depth 1..4, sometimes with a final
// attribute axis.
func randPath(rng *miniRand) Path {
	depth := 1 + rng.next()%4
	var p Path
	for i := 0; i < depth; i++ {
		p.Steps = append(p.Steps, randStep(rng))
	}
	if rng.next()%5 == 0 {
		p.Attr = propAttrs[rng.next()%len(propAttrs)]
	}
	return p
}

// specialize returns a path contained in p: same depth and attribute axis,
// with names pinned and predicates strengthened. By construction
// Contains(p, specialize(p)) must hold.
func specialize(p Path, rng *miniRand) Path {
	out := Path{Steps: make([]Step, len(p.Steps)), Attr: p.Attr}
	for i, s := range p.Steps {
		ns := Step{Name: s.Name, Preds: append([]Pred(nil), s.Preds...)}
		if ns.Name == "*" && rng.next()%2 == 0 {
			ns.Name = propNames[rng.next()%len(propNames)]
		}
		if rng.next()%2 == 0 {
			// Strengthening an existing existence test to an equality test,
			// or adding a fresh predicate, both preserve containment. Reuse
			// the already-pinned value for an attribute so the specialized
			// step stays satisfiable.
			pr := Pred{
				Attr:     propAttrs[rng.next()%len(propAttrs)],
				HasValue: true,
				Value:    propVals[rng.next()%len(propVals)],
			}
			for _, existing := range ns.Preds {
				if existing.Attr == pr.Attr && existing.HasValue {
					pr.Value = existing.Value
				}
			}
			ns.Preds = append(ns.Preds, pr)
		}
		out.Steps[i] = ns
	}
	return out
}

// extend returns a path whose subtree lies inside p's: a specialization of p
// with zero or more extra steps below it. A path ending in an attribute axis
// is never deepened — an attribute node has no subtree to descend into.
func extend(p Path, rng *miniRand) Path {
	out := specialize(p, rng)
	if extra := rng.next() % 3; extra > 0 && p.Attr == "" {
		for i := 0; i < extra; i++ {
			out.Steps = append(out.Steps, randStep(rng))
		}
	}
	return out
}

func TestParseStringFixpoint(t *testing.T) {
	for seed := int64(1); seed <= 500; seed++ {
		rng := newRand(seed)
		p := randPath(rng)
		s := p.String()
		q, err := Parse(s)
		if err != nil {
			t.Fatalf("seed %d: Parse(%q): %v", seed, s, err)
		}
		if q.String() != s {
			t.Fatalf("seed %d: String not a Parse fixpoint: %q -> %q", seed, s, q.String())
		}
		if !Equivalent(p, q) {
			t.Fatalf("seed %d: reparse of %q not equivalent", seed, s)
		}
	}
}

func TestPrefixCoversExtension(t *testing.T) {
	for seed := int64(1); seed <= 500; seed++ {
		rng := newRand(seed)
		p := randPath(rng)
		for n := 1; n <= p.Depth(); n++ {
			if got := Covers(p.Prefix(n), p); got != CoverFull {
				t.Fatalf("seed %d: Covers(%s, %s) = %v, want full", seed, p.Prefix(n), p, got)
			}
		}
	}
}

func TestContainsPreorder(t *testing.T) {
	for seed := int64(1); seed <= 500; seed++ {
		rng := newRand(seed)
		p := randPath(rng)
		q := specialize(p, rng)
		r := specialize(q, rng)
		if !Contains(p, p) {
			t.Fatalf("seed %d: Contains not reflexive on %s", seed, p)
		}
		if !Contains(p, q) {
			t.Fatalf("seed %d: specialization broke containment: %s !> %s", seed, p, q)
		}
		if !Contains(q, r) {
			t.Fatalf("seed %d: specialization broke containment: %s !> %s", seed, q, r)
		}
		if !Contains(p, r) {
			t.Fatalf("seed %d: Contains not transitive: %s > %s > %s", seed, p, q, r)
		}
	}
}

func TestCoversTransitive(t *testing.T) {
	for seed := int64(1); seed <= 500; seed++ {
		rng := newRand(seed)
		a := randPath(rng)
		b := extend(a, rng)
		c := extend(b, rng)
		if Covers(a, b) != CoverFull {
			t.Fatalf("seed %d: extend broke coverage: Covers(%s, %s) != full", seed, a, b)
		}
		if Covers(b, c) != CoverFull {
			t.Fatalf("seed %d: extend broke coverage: Covers(%s, %s) != full", seed, b, c)
		}
		if Covers(a, c) != CoverFull {
			t.Fatalf("seed %d: CoverFull not transitive: %s, %s, %s", seed, a, b, c)
		}
	}
}

func TestIntersectCoveredBothSides(t *testing.T) {
	hits := 0
	for seed := int64(1); seed <= 2000; seed++ {
		rng := newRand(seed)
		p, q := randPath(rng), randPath(rng)
		i, ok := Intersect(p, q)
		if !ok {
			continue
		}
		hits++
		if i.Empty() {
			t.Fatalf("seed %d: Intersect(%s, %s) returned empty path %s", seed, p, q, i)
		}
		if Covers(p, i) != CoverFull {
			t.Fatalf("seed %d: Covers(%s, Intersect=%s) != full", seed, p, i)
		}
		if Covers(q, i) != CoverFull {
			t.Fatalf("seed %d: Covers(%s, Intersect=%s) != full", seed, q, i)
		}
	}
	if hits == 0 {
		t.Fatal("generator never produced intersecting paths; property vacuous")
	}
}

// When a registration fully covers a request, intersecting the two gives
// back the request: one referral answers it exactly.
func TestCoverFullIntersectIsRequest(t *testing.T) {
	hits := 0
	for seed := int64(1); seed <= 2000; seed++ {
		rng := newRand(seed)
		r := randPath(rng)
		q := extend(r, rng)
		if Covers(r, q) != CoverFull {
			t.Fatalf("seed %d: extend broke coverage", seed)
		}
		i, ok := Intersect(r, q)
		if !ok {
			t.Fatalf("seed %d: CoverFull but Intersect(%s, %s) failed", seed, r, q)
		}
		hits++
		if !Equivalent(i, q) {
			t.Fatalf("seed %d: Intersect(%s, %s) = %s, not equivalent to request", seed, r, q, i)
		}
	}
	if hits == 0 {
		t.Fatal("property vacuous")
	}
}

// Remainder of a covering prefix re-roots the request at the registered
// component: its depth is the request's depth minus the prefix's, plus the
// shared root step.
func TestRemainderDepth(t *testing.T) {
	for seed := int64(1); seed <= 500; seed++ {
		rng := newRand(seed)
		q := randPath(rng)
		for n := 1; n <= q.Depth(); n++ {
			r := q.Prefix(n)
			rem := Remainder(r, q)
			if want := q.Depth() - n + 1; rem.Depth() != want {
				t.Fatalf("seed %d: Remainder(%s, %s) depth = %d, want %d", seed, r, q, rem.Depth(), want)
			}
			if rem.Attr != q.Attr {
				t.Fatalf("seed %d: Remainder dropped attribute axis", seed)
			}
		}
	}
}
