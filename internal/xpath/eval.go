package xpath

import "gupster/internal/xmltree"

// Select evaluates the path's element steps against a document whose root is
// root: the first step must match the root element itself, each subsequent
// step selects matching children. The attribute axis, if present, is ignored
// by Select (use SelectAttr). Results are in document order.
func Select(root *xmltree.Node, p Path) []*xmltree.Node {
	if root == nil || len(p.Steps) == 0 {
		return nil
	}
	if !p.Steps[0].Matches(root) {
		return nil
	}
	current := []*xmltree.Node{root}
	for _, step := range p.Steps[1:] {
		var next []*xmltree.Node
		for _, n := range current {
			for _, c := range n.Children {
				if step.Matches(c) {
					next = append(next, c)
				}
			}
		}
		if len(next) == 0 {
			return nil
		}
		current = next
	}
	return current
}

// SelectAttr evaluates a path ending in an attribute axis and returns the
// attribute values of the selected elements, in document order. For paths
// with no attribute axis it returns nil.
func SelectAttr(root *xmltree.Node, p Path) []string {
	if p.Attr == "" {
		return nil
	}
	var out []string
	for _, n := range Select(root, p) {
		if v, ok := n.Attr(p.Attr); ok {
			out = append(out, v)
		}
	}
	return out
}

// Extract returns a copy of the document pruned to the subtrees selected by
// p, preserving the ancestor spine (element names, attributes and text of
// ancestors, but none of their other children). This is how a data store
// materializes "the component at path p" as a standalone GUP XML fragment,
// and how the MDM rewrites a grant covering only part of a request.
// It returns nil when p selects nothing.
func Extract(root *xmltree.Node, p Path) *xmltree.Node {
	if root == nil || len(p.Steps) == 0 || !p.Steps[0].Matches(root) {
		return nil
	}
	return extract(root, p.Steps[1:])
}

func extract(n *xmltree.Node, rest []Step) *xmltree.Node {
	if len(rest) == 0 {
		return n.Clone()
	}
	shell := &xmltree.Node{Name: n.Name, Text: n.Text}
	for k, v := range n.Attrs {
		shell.SetAttr(k, v)
	}
	matched := false
	for _, c := range n.Children {
		if rest[0].Matches(c) {
			if sub := extract(c, rest[1:]); sub != nil {
				shell.Children = append(shell.Children, sub)
				matched = true
			}
		}
	}
	if !matched {
		return nil
	}
	return shell
}

// ReplaceAt substitutes repl for every element selected by p inside doc,
// in place, and returns the number of replacements. A nil repl deletes the
// selected elements. Replacing the document root returns 0 replacements if
// repl is nil would orphan the document; instead the root's content is
// overwritten.
func ReplaceAt(doc *xmltree.Node, p Path, repl *xmltree.Node) int {
	if doc == nil || len(p.Steps) == 0 || !p.Steps[0].Matches(doc) {
		return 0
	}
	if len(p.Steps) == 1 {
		if repl == nil {
			return 0
		}
		*doc = *repl.Clone()
		return 1
	}
	return replaceAt(doc, p.Steps[1:], repl)
}

func replaceAt(n *xmltree.Node, rest []Step, repl *xmltree.Node) int {
	count := 0
	if len(rest) == 1 {
		kept := n.Children[:0]
		for _, c := range n.Children {
			if rest[0].Matches(c) {
				count++
				if repl != nil {
					kept = append(kept, repl.Clone())
				}
			} else {
				kept = append(kept, c)
			}
		}
		n.Children = kept
		return count
	}
	for _, c := range n.Children {
		if rest[0].Matches(c) {
			count += replaceAt(c, rest[1:], repl)
		}
	}
	return count
}

// Contains reports whether p contains q: every node selected by q in any
// document is also selected by p. For this fragment the test is exact: the
// paths must have equal depth, each step of p must contain the corresponding
// step of q, and the attribute axes must agree. A q that can match no node
// (contradictory predicates) is contained in everything.
func Contains(p, q Path) bool {
	if q.Empty() {
		return true
	}
	if len(p.Steps) != len(q.Steps) || p.Attr != q.Attr {
		return false
	}
	for i := range p.Steps {
		if !p.Steps[i].Contains(q.Steps[i]) {
			return false
		}
	}
	return true
}

// Equivalent reports mutual containment.
func Equivalent(p, q Path) bool {
	return Contains(p, q) && Contains(q, p)
}

// CoverRelation classifies how a registered coverage path r relates to a
// request path q under subtree semantics: registering r means the store
// holds the entire subtree rooted at the nodes r selects.
type CoverRelation int

const (
	// CoverNone: the registration is irrelevant to the request.
	CoverNone CoverRelation = iota
	// CoverFull: the requested subtree lies entirely inside the registered
	// subtree — one referral to this store can answer the whole request.
	CoverFull
	// CoverPartial: the registered subtree lies strictly inside the
	// requested subtree — this store holds a piece; the client must merge
	// pieces (Figure 9 of the paper).
	CoverPartial
)

func (c CoverRelation) String() string {
	switch c {
	case CoverFull:
		return "full"
	case CoverPartial:
		return "partial"
	default:
		return "none"
	}
}

// Covers classifies registration r against request q.
//
// CoverFull requires r's depth ≤ q's depth and each step of r to contain the
// corresponding step of q: every node on q's spine down to r's depth is then
// inside a registered subtree.
//
// CoverPartial holds when the registered and requested subtrees intersect
// without the registration covering the whole request: the registration may
// be deeper (Figure 9's per-type address book split), more specific in a
// predicate (one user's data against an all-users request), or both at once
// (an unpinned deep registration against a pinned shallow request). The
// store then holds a piece the client must merge.
func Covers(r, q Path) CoverRelation {
	if prefixContains(r, q) {
		return CoverFull
	}
	if q.Attr == "" {
		if _, ok := Intersect(r, q); ok {
			return CoverPartial
		}
	}
	return CoverNone
}

// Intersect computes a path selecting exactly the nodes selected by both p
// and q under subtree semantics: the deeper path's steps with the shallower
// path's predicates merged in. ok is false when the paths cannot select
// overlapping subtrees (incompatible names or contradictory equality
// predicates).
func Intersect(p, q Path) (Path, bool) {
	if p.Attr != "" && q.Attr != "" && p.Attr != q.Attr {
		return Path{}, false
	}
	long, short := p, q
	if len(q.Steps) > len(p.Steps) {
		long, short = q, p
	}
	steps := make([]Step, len(long.Steps))
	for i := range long.Steps {
		if i < len(short.Steps) {
			merged, ok := mergeSteps(long.Steps[i], short.Steps[i])
			if !ok {
				return Path{}, false
			}
			steps[i] = merged
		} else {
			steps[i] = long.Steps[i]
		}
	}
	attr := p.Attr
	if attr == "" {
		attr = q.Attr
	}
	// An attribute axis on the shorter path only composes when the paths
	// have equal depth (an attribute node has no subtree to intersect).
	if len(p.Steps) != len(q.Steps) {
		shorterAttr := short.Attr
		if shorterAttr != "" {
			return Path{}, false
		}
		attr = long.Attr
	}
	out := Path{Steps: steps, Attr: attr}
	if out.Empty() {
		return Path{}, false
	}
	return out, true
}

// mergeSteps unifies two location steps: the more specific name test and
// the union of predicates.
func mergeSteps(a, b Step) (Step, bool) {
	name := a.Name
	switch {
	case a.Name == "*":
		name = b.Name
	case b.Name == "*" || a.Name == b.Name:
		// keep a's name
	default:
		return Step{}, false
	}
	out := Step{Name: name, Preds: append([]Pred(nil), a.Preds...)}
	for _, bp := range b.Preds {
		dup := false
		for _, ap := range out.Preds {
			if ap == bp {
				dup = true
				break
			}
		}
		if !dup {
			out.Preds = append(out.Preds, bp)
		}
	}
	if out.unsatisfiable() {
		return Step{}, false
	}
	return out, true
}

// prefixContains reports whether a (the shorter or equal path) step-wise
// contains the prefix of b, meaning b's selected nodes are inside subtrees
// selected by a. If a has an attribute axis it must match b exactly.
func prefixContains(a, b Path) bool {
	if len(a.Steps) > len(b.Steps) {
		return false
	}
	if a.Attr != "" && (len(a.Steps) != len(b.Steps) || a.Attr != b.Attr) {
		return false
	}
	for i := range a.Steps {
		if !a.Steps[i].Contains(b.Steps[i]) {
			return false
		}
	}
	return true
}

// Remainder returns the suffix of q below r's depth, as a path rooted at
// q's step at r's depth. It is used when chaining: the MDM fetches the
// registered component and then navigates the remainder locally.
// The first returned step is q.Steps[len(r.Steps)-1] — i.e. the remainder is
// itself an absolute path over the fetched component. Returns q unchanged if
// r is not shallower than q.
func Remainder(r, q Path) Path {
	if len(r.Steps) == 0 || len(r.Steps) > len(q.Steps) {
		return q
	}
	steps := make([]Step, len(q.Steps)-len(r.Steps)+1)
	copy(steps, q.Steps[len(r.Steps)-1:])
	return Path{Steps: steps, Attr: q.Attr}
}
