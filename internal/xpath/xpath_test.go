package xpath

import (
	"strings"
	"testing"
	"testing/quick"

	"gupster/internal/xmltree"
)

func TestParseCanonical(t *testing.T) {
	cases := []struct{ in, want string }{
		{"/user", "/user"},
		{"/user[@id='arnaud']/address-book", "/user[@id='arnaud']/address-book"},
		{"/user[@id='a']/address-book/item[@type='personal']", "/user[@id='a']/address-book/item[@type='personal']"},
		{"/a/*/c", "/a/*/c"},
		{"/a[@y='2'][@x='1']", "/a[@x='1'][@y='2']"}, // predicates canonicalized
		{"/a[@x]", "/a[@x]"},
		{"/user[@id='a']/@id", "/user[@id='a']/@id"},
		{"/MyProfile/MySelf", "/MyProfile/MySelf"},
	}
	for _, c := range cases {
		p, err := Parse(c.in)
		if err != nil {
			t.Errorf("Parse(%q): %v", c.in, err)
			continue
		}
		if got := p.String(); got != c.want {
			t.Errorf("Parse(%q).String() = %q, want %q", c.in, got, c.want)
		}
		// Canonical form must re-parse to an equivalent path.
		p2, err := Parse(p.String())
		if err != nil {
			t.Errorf("reparse %q: %v", p.String(), err)
		} else if !Equivalent(p, p2) {
			t.Errorf("reparse of %q not equivalent", c.in)
		}
	}
}

func TestParseErrors(t *testing.T) {
	for _, in := range []string{
		"", "user", "/", "//a", "/a[", "/a[@]", "/a[@x='v]", "/a[x='v']",
		"/a]", "/a[@x=v]", "/a/@x/b", "/a b", "/@id",
	} {
		if _, err := Parse(in); err == nil {
			t.Errorf("Parse(%q): want error", in)
		}
	}
}

var doc = xmltree.MustParse(`
<user id="arnaud">
  <address-book>
    <item name="rick" type="corporate"><phone>111</phone></item>
    <item name="dan" type="personal"><phone>222</phone></item>
    <item name="ming" type="corporate"><phone>333</phone></item>
  </address-book>
  <presence status="available"/>
  <devices>
    <device id="cell" network="wireless"/>
    <device id="office" network="pstn"/>
  </devices>
</user>`)

func TestSelect(t *testing.T) {
	cases := []struct {
		path string
		want int
	}{
		{"/user", 1},
		{"/user[@id='arnaud']", 1},
		{"/user[@id='bob']", 0},
		{"/user/address-book", 1},
		{"/user/address-book/item", 3},
		{"/user/address-book/item[@type='corporate']", 2},
		{"/user/address-book/item[@type='personal']", 1},
		{"/user/address-book/item[@name='rick'][@type='corporate']", 1},
		{"/user/address-book/item[@name='rick'][@type='personal']", 0},
		{"/user/*", 3},
		{"/user/*/item", 3},
		{"/user/devices/device[@network='pstn']", 1},
		{"/nope", 0},
		{"/user/address-book/item[@missing]", 0},
		{"/user/presence[@status]", 1},
	}
	for _, c := range cases {
		got := Select(doc, MustParse(c.path))
		if len(got) != c.want {
			t.Errorf("Select(%s) = %d nodes, want %d", c.path, len(got), c.want)
		}
	}
}

func TestSelectAttr(t *testing.T) {
	vals := SelectAttr(doc, MustParse("/user/devices/device/@id"))
	if len(vals) != 2 || vals[0] != "cell" || vals[1] != "office" {
		t.Errorf("SelectAttr = %v", vals)
	}
	if SelectAttr(doc, MustParse("/user/devices/device")) != nil {
		t.Errorf("SelectAttr without attr axis should be nil")
	}
}

func TestSelectNilRoot(t *testing.T) {
	if Select(nil, MustParse("/a")) != nil {
		t.Error("Select(nil) should be nil")
	}
}

func TestExtract(t *testing.T) {
	got := Extract(doc, MustParse("/user/address-book/item[@type='personal']"))
	if got == nil {
		t.Fatal("Extract returned nil")
	}
	if got.Name != "user" {
		t.Errorf("extract root = %q", got.Name)
	}
	items := got.Child("address-book").ChildrenNamed("item")
	if len(items) != 1 {
		t.Fatalf("extracted items = %d, want 1\n%s", len(items), got.Indent())
	}
	if v, _ := items[0].Attr("name"); v != "dan" {
		t.Errorf("extracted wrong item: %s", items[0])
	}
	// Spine keeps attributes.
	if v, _ := got.Attr("id"); v != "arnaud" {
		t.Errorf("spine lost attributes")
	}
	// Sibling subtrees are pruned.
	if got.Child("presence") != nil || got.Child("devices") != nil {
		t.Errorf("extract kept sibling subtrees")
	}
	// No match → nil.
	if Extract(doc, MustParse("/user/zzz")) != nil {
		t.Errorf("Extract(no match) should be nil")
	}
	// Whole document.
	whole := Extract(doc, MustParse("/user"))
	if !whole.Equal(doc) {
		t.Errorf("Extract(/user) != doc")
	}
}

func TestReplaceAt(t *testing.T) {
	d := doc.Clone()
	repl := xmltree.MustParse(`<presence status="busy"/>`)
	n := ReplaceAt(d, MustParse("/user/presence"), repl)
	if n != 1 {
		t.Fatalf("replacements = %d", n)
	}
	if v, _ := d.Child("presence").Attr("status"); v != "busy" {
		t.Errorf("replace did not apply: %s", d.Child("presence"))
	}
	// Delete with nil.
	n = ReplaceAt(d, MustParse("/user/address-book/item[@type='corporate']"), nil)
	if n != 2 {
		t.Fatalf("deletions = %d, want 2", n)
	}
	if got := len(d.Child("address-book").ChildrenNamed("item")); got != 1 {
		t.Errorf("items after delete = %d", got)
	}
	// Replace root.
	root := xmltree.MustParse(`<user id="x"/>`)
	if n := ReplaceAt(d, MustParse("/user"), root); n != 1 {
		t.Fatalf("root replace = %d", n)
	}
	if v, _ := d.Attr("id"); v != "x" {
		t.Errorf("root replace did not apply")
	}
}

func TestContains(t *testing.T) {
	cases := []struct {
		p, q string
		want bool
	}{
		{"/user", "/user", true},
		{"/user", "/user[@id='a']", true},
		{"/user[@id='a']", "/user", false},
		{"/user[@id='a']", "/user[@id='a']", true},
		{"/user[@id='a']", "/user[@id='b']", false},
		{"/*", "/user", true},
		{"/user", "/*", false},
		{"/user/address-book", "/user[@id='a']/address-book", true},
		{"/user/address-book", "/user/address-book/item", false}, // different depth
		{"/user[@id]", "/user[@id='a']", true},
		{"/user[@id='a']", "/user[@id]", false},
		{"/a/@x", "/a/@x", true},
		{"/a/@x", "/a/@y", false},
		{"/a/@x", "/a", false},
		{"/a/b[@x='1'][@y='2']", "/a/b[@x='1']", false},
		{"/a/b[@x='1']", "/a/b[@x='1'][@y='2']", true},
		// q unsatisfiable → contained in anything.
		{"/zz", "/a[@x='1'][@x='2']", true},
	}
	for _, c := range cases {
		if got := Contains(MustParse(c.p), MustParse(c.q)); got != c.want {
			t.Errorf("Contains(%s, %s) = %v, want %v", c.p, c.q, got, c.want)
		}
	}
}

func TestCovers(t *testing.T) {
	cases := []struct {
		reg, req string
		want     CoverRelation
	}{
		// Exact registration.
		{"/user[@id='a']/address-book", "/user[@id='a']/address-book", CoverFull},
		// Registration above the request.
		{"/user[@id='a']", "/user[@id='a']/address-book", CoverFull},
		{"/user[@id='a']/address-book", "/user[@id='a']/address-book/item[@type='personal']", CoverFull},
		// Figure 9: registration below the request → partial.
		{"/user[@id='a']/address-book/item[@type='personal']", "/user[@id='a']/address-book", CoverPartial},
		{"/user[@id='a']/address-book/item[@type='corporate']", "/user[@id='a']/address-book", CoverPartial},
		// Wrong user.
		{"/user[@id='b']/address-book", "/user[@id='a']/address-book", CoverNone},
		// Sibling component.
		{"/user[@id='a']/presence", "/user[@id='a']/address-book", CoverNone},
		// More general request user (no id) is not covered by specific reg…
		{"/user[@id='a']/address-book", "/user/address-book", CoverPartial},
		// …but general registration covers specific request.
		{"/user/address-book", "/user[@id='a']/address-book", CoverFull},
		// Attribute-axis request covered by element registration.
		{"/user[@id='a']", "/user[@id='a']/devices/device/@id", CoverFull},
		// Attribute-axis registration fully covers only the identical
		// request; against the enclosing element request it holds a piece.
		{"/user[@id='a']/@id", "/user[@id='a']/@id", CoverFull},
		{"/user[@id='a']/@id", "/user[@id='a']", CoverPartial},
	}
	for _, c := range cases {
		if got := Covers(MustParse(c.reg), MustParse(c.req)); got != c.want {
			t.Errorf("Covers(reg=%s, req=%s) = %v, want %v", c.reg, c.req, got, c.want)
		}
	}
}

func TestRemainder(t *testing.T) {
	r := MustParse("/user[@id='a']/address-book")
	q := MustParse("/user[@id='a']/address-book/item[@type='personal']")
	rem := Remainder(r, q)
	if rem.String() != "/address-book/item[@type='personal']" {
		t.Errorf("Remainder = %s", rem)
	}
	// Remainder applied to the extracted component selects the same content.
	comp := Extract(doc, MustParse("/user/address-book")).Child("address-book")
	sel := Select(comp, rem)
	if len(sel) != 1 {
		t.Errorf("remainder select = %d nodes", len(sel))
	}
	// Equal depth → remainder is the last step.
	rem2 := Remainder(q, q)
	if rem2.String() != "/item[@type='personal']" {
		t.Errorf("Remainder(q,q) = %s", rem2)
	}
}

func TestCoverRelationString(t *testing.T) {
	if CoverFull.String() != "full" || CoverPartial.String() != "partial" || CoverNone.String() != "none" {
		t.Error("CoverRelation strings")
	}
}

func TestEmptyPath(t *testing.T) {
	if !MustParse("/a[@x='1'][@x='2']").Empty() {
		t.Error("contradictory predicates should be Empty")
	}
	if MustParse("/a[@x='1'][@y='2']").Empty() {
		t.Error("consistent predicates should not be Empty")
	}
	if MustParse("/a[@x='1'][@x]").Empty() {
		t.Error("existence + equality is satisfiable")
	}
}

func TestChildAndPrefix(t *testing.T) {
	p := MustParse("/user[@id='a']/address-book")
	c := p.Child(Step{Name: "item"})
	if c.String() != "/user[@id='a']/address-book/item" {
		t.Errorf("Child = %s", c)
	}
	if p.String() != "/user[@id='a']/address-book" {
		t.Errorf("Child mutated receiver: %s", p)
	}
	pre := c.Prefix(1)
	if pre.String() != "/user[@id='a']" {
		t.Errorf("Prefix = %s", pre)
	}
	if got := c.Prefix(99); got.Depth() != 3 {
		t.Errorf("Prefix(99) depth = %d", got.Depth())
	}
}

// Property: containment is consistent with evaluation — if Contains(p, q)
// then every node selected by q is also selected by p, on randomized
// documents and paths drawn from a small alphabet.
func TestContainmentSoundness(t *testing.T) {
	names := []string{"a", "b", "c"}
	attrs := []string{"x", "y"}
	vals := []string{"1", "2"}

	buildDoc := func(seed int64) *xmltree.Node {
		rng := newRand(seed)
		var build func(depth int) *xmltree.Node
		build = func(depth int) *xmltree.Node {
			n := xmltree.New(names[rng.next()%len(names)])
			if rng.next()%2 == 0 {
				n.SetAttr(attrs[rng.next()%len(attrs)], vals[rng.next()%len(vals)])
			}
			if depth < 3 {
				kids := rng.next() % 3
				for i := 0; i < kids; i++ {
					n.Add(build(depth + 1))
				}
			}
			return n
		}
		return build(0)
	}
	buildPath := func(seed int64) Path {
		rng := newRand(seed)
		depth := 1 + rng.next()%3
		var p Path
		for i := 0; i < depth; i++ {
			s := Step{Name: names[rng.next()%len(names)]}
			if rng.next()%4 == 0 {
				s.Name = "*"
			}
			if rng.next()%3 == 0 {
				pr := Pred{Attr: attrs[rng.next()%len(attrs)]}
				if rng.next()%2 == 0 {
					pr.HasValue = true
					pr.Value = vals[rng.next()%len(vals)]
				}
				s.Preds = append(s.Preds, pr)
			}
			p.Steps = append(p.Steps, s)
		}
		return p
	}

	prop := func(docSeed, pSeed, qSeed int64) bool {
		d := buildDoc(docSeed)
		p, q := buildPath(pSeed), buildPath(qSeed)
		if !Contains(p, q) {
			return true
		}
		selP := map[*xmltree.Node]bool{}
		for _, n := range Select(d, p) {
			selP[n] = true
		}
		for _, n := range Select(d, q) {
			if !selP[n] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// Property: Covers(reg, req) == CoverFull implies every node selected by req
// lies inside a subtree selected by reg.
func TestCoversSoundness(t *testing.T) {
	reg := MustParse("/user/address-book")
	reqs := []string{
		"/user[@id='arnaud']/address-book",
		"/user/address-book/item[@type='corporate']",
		"/user/address-book/item/phone",
	}
	regSel := Select(doc, reg)
	inside := map[*xmltree.Node]bool{}
	for _, r := range regSel {
		r.Walk(func(n *xmltree.Node) bool { inside[n] = true; return true })
	}
	for _, rq := range reqs {
		q := MustParse(rq)
		if Covers(reg, q) != CoverFull {
			t.Errorf("Covers(%s, %s) != full", reg, q)
			continue
		}
		for _, n := range Select(doc, q) {
			if !inside[n] {
				t.Errorf("node selected by %s outside registered subtree", rq)
			}
		}
	}
}

// tiny deterministic PRNG so property tests don't depend on math/rand API.
type miniRand struct{ state uint64 }

func newRand(seed int64) *miniRand {
	s := uint64(seed)
	if s == 0 {
		s = 0x9e3779b97f4a7c15
	}
	return &miniRand{state: s}
}

func (r *miniRand) next() int {
	r.state ^= r.state << 13
	r.state ^= r.state >> 7
	r.state ^= r.state << 17
	return int(r.state>>1) & 0x7fffffff
}

func TestParseWhitespaceRejected(t *testing.T) {
	if _, err := Parse("/a /b"); err == nil {
		t.Error("embedded space should fail")
	}
	if !strings.Contains(MustParse("/a").String(), "/a") {
		t.Error("sanity")
	}
}
