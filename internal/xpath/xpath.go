// Package xpath implements the XPath fragment the GUPster paper adopts for
// expressing schema coverage (§4.5): absolute paths over the child axis with
// an optional final attribute axis and limited predicates — attribute
// existence tests and attribute/value equality tests. The fragment excludes
// the descendant axis, positional predicates, and functions, which is what
// keeps containment decidable in polynomial time (cf. Deutsch & Tannen,
// "Containment and Integrity Constraints for XPath Fragments").
//
// Grammar:
//
//	path  = "/" step { "/" step } [ "/@" name ]
//	step  = ( name | "*" ) { pred }
//	pred  = "[" "@" name [ "=" "'" value "'" ] "]"
//
// Examples from the paper:
//
//	/user[@id='arnaud']/address-book
//	/user[@id='arnaud']/address-book/item[@type='personal']
package xpath

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"gupster/internal/xmltree"
)

// Pred is one predicate in a step: an attribute existence test (@a) or an
// attribute equality test (@a='v').
type Pred struct {
	Attr     string
	Value    string
	HasValue bool
}

func (p Pred) String() string {
	if p.HasValue {
		return fmt.Sprintf("[@%s='%s']", p.Attr, p.Value)
	}
	return fmt.Sprintf("[@%s]", p.Attr)
}

// matches reports whether a node satisfies the predicate.
func (p Pred) matches(n *xmltree.Node) bool {
	v, ok := n.Attr(p.Attr)
	if !ok {
		return false
	}
	return !p.HasValue || v == p.Value
}

// implies reports whether p being true guarantees q is true.
func (p Pred) implies(q Pred) bool {
	if p.Attr != q.Attr {
		return false
	}
	if !q.HasValue {
		return true // any test on @a implies existence of @a
	}
	return p.HasValue && p.Value == q.Value
}

// Step is one location step: an element name test (or "*") plus predicates.
type Step struct {
	Name  string // element name, or "*" for any element
	Preds []Pred
}

func (s Step) String() string {
	var b strings.Builder
	b.WriteString(s.Name)
	for _, p := range sortedPreds(s.Preds) {
		b.WriteString(p.String())
	}
	return b.String()
}

func sortedPreds(ps []Pred) []Pred {
	out := make([]Pred, len(ps))
	copy(out, ps)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Attr != out[j].Attr {
			return out[i].Attr < out[j].Attr
		}
		if out[i].HasValue != out[j].HasValue {
			return !out[i].HasValue
		}
		return out[i].Value < out[j].Value
	})
	return out
}

// Matches reports whether a node satisfies the step's name test and every
// predicate.
func (s Step) Matches(n *xmltree.Node) bool {
	if s.Name != "*" && s.Name != n.Name {
		return false
	}
	for _, p := range s.Preds {
		if !p.matches(n) {
			return false
		}
	}
	return true
}

// Contains reports whether s matches every node that t matches — i.e. t is
// at least as restrictive as s. s="*" subsumes any name; every predicate of
// s must be implied by some predicate of t.
func (s Step) Contains(t Step) bool {
	if s.Name != "*" && s.Name != t.Name {
		return false
	}
	for _, sp := range s.Preds {
		implied := false
		for _, tp := range t.Preds {
			if tp.implies(sp) {
				implied = true
				break
			}
		}
		if !implied {
			return false
		}
	}
	return true
}

// unsatisfiable reports whether the step's predicates contradict each other
// (two different required values for the same attribute). An unsatisfiable
// step matches no node, so the whole path is empty.
func (s Step) unsatisfiable() bool {
	vals := make(map[string]string)
	for _, p := range s.Preds {
		if !p.HasValue {
			continue
		}
		if v, ok := vals[p.Attr]; ok && v != p.Value {
			return true
		}
		vals[p.Attr] = p.Value
	}
	return false
}

// Path is a parsed expression of the coverage fragment.
type Path struct {
	Steps []Step
	// Attr, when non-empty, selects the named attribute of the nodes the
	// element path reaches (final attribute axis).
	Attr string
}

// String renders the canonical form: predicates within each step are sorted,
// so two equivalent parses render identically. Parse(p.String()) == p.
func (p Path) String() string {
	var b strings.Builder
	for _, s := range p.Steps {
		b.WriteByte('/')
		b.WriteString(s.String())
	}
	if p.Attr != "" {
		b.WriteString("/@")
		b.WriteString(p.Attr)
	}
	return b.String()
}

// IsZero reports whether the path is empty (unparsed zero value).
func (p Path) IsZero() bool { return len(p.Steps) == 0 && p.Attr == "" }

// Depth returns the number of element steps.
func (p Path) Depth() int { return len(p.Steps) }

// Empty reports whether the path can match no node regardless of document
// (some step carries contradictory equality predicates).
func (p Path) Empty() bool {
	for _, s := range p.Steps {
		if s.unsatisfiable() {
			return true
		}
	}
	return false
}

// Child returns p extended by one step.
func (p Path) Child(s Step) Path {
	steps := make([]Step, len(p.Steps)+1)
	copy(steps, p.Steps)
	steps[len(p.Steps)] = s
	return Path{Steps: steps, Attr: p.Attr}
}

// Prefix returns the path truncated to its first n element steps, with no
// attribute selection.
func (p Path) Prefix(n int) Path {
	if n > len(p.Steps) {
		n = len(p.Steps)
	}
	steps := make([]Step, n)
	copy(steps, p.Steps[:n])
	return Path{Steps: steps}
}

// ErrSyntax wraps all parse failures.
var ErrSyntax = errors.New("xpath: syntax error")

// Parse parses an expression of the coverage fragment.
func Parse(expr string) (Path, error) {
	p := &parser{in: expr}
	path, err := p.parse()
	if err != nil {
		return Path{}, fmt.Errorf("%w: %s in %q", ErrSyntax, err, expr)
	}
	return path, nil
}

// MustParse parses or panics; for tests and static fixtures.
func MustParse(expr string) Path {
	p, err := Parse(expr)
	if err != nil {
		panic(err)
	}
	return p
}

type parser struct {
	in  string
	pos int
}

func (p *parser) parse() (Path, error) {
	var path Path
	if !p.eat('/') {
		return Path{}, errors.New("path must be absolute (start with '/')")
	}
	for {
		if p.peek() == '@' {
			p.pos++
			name, err := p.name()
			if err != nil {
				return Path{}, err
			}
			path.Attr = name
			break
		}
		step, err := p.step()
		if err != nil {
			return Path{}, err
		}
		path.Steps = append(path.Steps, step)
		if p.pos >= len(p.in) {
			break
		}
		if !p.eat('/') {
			return Path{}, fmt.Errorf("unexpected %q at offset %d", p.peek(), p.pos)
		}
	}
	if len(path.Steps) == 0 {
		return Path{}, errors.New("path has no steps")
	}
	if p.pos != len(p.in) {
		return Path{}, fmt.Errorf("trailing input at offset %d", p.pos)
	}
	return path, nil
}

func (p *parser) step() (Step, error) {
	var s Step
	if p.peek() == '*' {
		p.pos++
		s.Name = "*"
	} else {
		name, err := p.name()
		if err != nil {
			return Step{}, err
		}
		s.Name = name
	}
	for p.peek() == '[' {
		pred, err := p.pred()
		if err != nil {
			return Step{}, err
		}
		s.Preds = append(s.Preds, pred)
	}
	return s, nil
}

func (p *parser) pred() (Pred, error) {
	p.pos++ // '['
	if !p.eat('@') {
		return Pred{}, errors.New("predicate must test an attribute (@name)")
	}
	attr, err := p.name()
	if err != nil {
		return Pred{}, err
	}
	pred := Pred{Attr: attr}
	if p.eat('=') {
		if !p.eat('\'') {
			return Pred{}, errors.New("predicate value must be single-quoted")
		}
		start := p.pos
		for p.pos < len(p.in) && p.in[p.pos] != '\'' {
			p.pos++
		}
		if p.pos >= len(p.in) {
			return Pred{}, errors.New("unterminated string literal")
		}
		pred.Value = p.in[start:p.pos]
		pred.HasValue = true
		p.pos++ // closing quote
	}
	if !p.eat(']') {
		return Pred{}, errors.New("missing ']'")
	}
	return pred, nil
}

func (p *parser) name() (string, error) {
	start := p.pos
	for p.pos < len(p.in) && isNameChar(p.in[p.pos]) {
		p.pos++
	}
	if p.pos == start {
		return "", fmt.Errorf("expected name at offset %d", start)
	}
	return p.in[start:p.pos], nil
}

func isNameChar(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9' ||
		c == '-' || c == '_' || c == '.' || c == ':'
}

func (p *parser) eat(c byte) bool {
	if p.pos < len(p.in) && p.in[p.pos] == c {
		p.pos++
		return true
	}
	return false
}

func (p *parser) peek() byte {
	if p.pos < len(p.in) {
		return p.in[p.pos]
	}
	return 0
}
