package xpath

import (
	"testing"

	"gupster/internal/xmltree"
)

func TestIntersect(t *testing.T) {
	cases := []struct {
		p, q string
		want string // "" means no intersection
	}{
		// Identical paths.
		{"/user/address-book", "/user/address-book", "/user/address-book"},
		// Pinned vs unpinned: predicates merge.
		{"/user[@id='a']/address-book", "/user/address-book", "/user[@id='a']/address-book"},
		// Deep unpinned registration vs shallow pinned request — the
		// testbed's devices placement.
		{"/user/devices/device[@network='pstn']", "/user[@id='a']/devices",
			"/user[@id='a']/devices/device[@network='pstn']"},
		// Both sides contribute predicates at the same step.
		{"/user/address-book/item[@type='personal']", "/user/address-book/item[@name='rick']",
			"/user/address-book/item[@name='rick'][@type='personal']"},
		// Wildcards resolve to the concrete name.
		{"/user/*/item", "/user/address-book", "/user/address-book/item"},
		{"/*", "/user", "/user"},
		// Conflicting names: empty.
		{"/user/presence", "/user/calendar", ""},
		// Conflicting equality predicates: empty.
		{"/user[@id='a']", "/user[@id='b']", ""},
		{"/user/address-book/item[@type='x']", "/user/address-book/item[@type='y']", ""},
		// Attribute axes: equal depth with same attr composes.
		{"/user/@id", "/user[@id='a']/@id", "/user[@id='a']/@id"},
		// Different attrs: empty.
		{"/user/@id", "/user/@name", ""},
		// Attribute axis on the shallower path cannot compose with a
		// deeper element path.
		{"/user/@id", "/user/devices", ""},
		// Attribute axis on the deeper path survives.
		{"/user/devices/device/@id", "/user[@id='a']", "/user[@id='a']/devices/device/@id"},
	}
	for _, c := range cases {
		got, ok := Intersect(MustParse(c.p), MustParse(c.q))
		if c.want == "" {
			if ok {
				t.Errorf("Intersect(%s, %s) = %s, want none", c.p, c.q, got)
			}
			continue
		}
		if !ok {
			t.Errorf("Intersect(%s, %s) = none, want %s", c.p, c.q, c.want)
			continue
		}
		if got.String() != c.want {
			t.Errorf("Intersect(%s, %s) = %s, want %s", c.p, c.q, got, c.want)
		}
		// Symmetry up to equivalence.
		rev, ok2 := Intersect(MustParse(c.q), MustParse(c.p))
		if !ok2 || !Equivalent(got, rev) {
			t.Errorf("Intersect not symmetric for (%s, %s): %s vs %s", c.p, c.q, got, rev)
		}
	}
}

// Property: a node inside both subtrees is inside the intersection's
// subtree, checked on a concrete document.
func TestIntersectSoundOnDocument(t *testing.T) {
	d := xmltree.MustParse(`
<user id="a">
  <devices>
    <device id="cell" network="wireless"/>
    <device id="office" network="pstn"/>
  </devices>
</user>`)
	r := MustParse("/user/devices/device[@network='pstn']")
	q := MustParse("/user[@id='a']/devices")
	inter, ok := Intersect(r, q)
	if !ok {
		t.Fatal("no intersection")
	}
	sel := Select(d, inter)
	if len(sel) != 1 {
		t.Fatalf("intersection selected %d nodes", len(sel))
	}
	if v, _ := sel[0].Attr("id"); v != "office" {
		t.Errorf("selected %s", sel[0])
	}
}

func TestCoversMixedGenerality(t *testing.T) {
	// Deep unpinned registration vs shallow pinned request: partial.
	r := MustParse("/user/devices/device[@network='pstn']")
	q := MustParse("/user[@id='a']/devices")
	if got := Covers(r, q); got != CoverPartial {
		t.Errorf("Covers = %v, want partial", got)
	}
	// And the reverse direction: shallow pinned registration fully covers
	// deep pinned request for the same user.
	if got := Covers(MustParse("/user[@id='a']"), MustParse("/user[@id='a']/devices/device[@network='pstn']")); got != CoverFull {
		t.Errorf("reverse = %v, want full", got)
	}
}
