package adapter

import (
	"errors"
	"testing"

	"gupster/internal/schema"
	"gupster/internal/xmltree"
	"gupster/internal/xpath"
)

func seedDirectory() *Directory {
	d := NewDirectory()
	d.Add(Entry{DN: "uid=arnaud,ou=people,o=lucent", Attrs: map[string][]string{
		"objectClass":     {"inetOrgPerson"},
		"cn":              {"Arnaud Sahuguet"},
		"mail":            {"sahuguet@lucent.com"},
		"telephoneNumber": {"908-582-0001"},
		"o":               {"Lucent Technologies"},
	}})
	d.Add(Entry{DN: "cn=Rick Hull,ou=contacts,uid=arnaud,o=lucent", Attrs: map[string][]string{
		"objectClass":     {"person"},
		"cn":              {"Rick Hull"},
		"telephoneNumber": {"908-582-0002"},
		"mail":            {"hull@lucent.com"},
		"category":        {"corporate"},
	}})
	d.Add(Entry{DN: "cn=Mom,ou=contacts,uid=arnaud,o=lucent", Attrs: map[string][]string{
		"objectClass":     {"person"},
		"cn":              {"Mom"},
		"telephoneNumber": {"555-0100"},
		"category":        {"personal"},
	}})
	return d
}

func TestDirectoryBasics(t *testing.T) {
	d := seedDirectory()
	if d.Len() != 3 {
		t.Errorf("Len = %d", d.Len())
	}
	e, err := d.Get("uid=arnaud,ou=people,o=lucent")
	if err != nil || e.Attr("cn") != "Arnaud Sahuguet" {
		t.Errorf("Get: %v / %v", e, err)
	}
	if _, err := d.Get("uid=ghost"); !errors.Is(err, ErrNoEntry) {
		t.Errorf("missing entry err = %v", err)
	}
	// Search is subtree, sorted, excludes base itself.
	res := d.Search("ou=contacts,uid=arnaud,o=lucent")
	if len(res) != 2 || res[0].Attr("cn") != "Mom" {
		t.Errorf("Search = %v", res)
	}
	// Directory copies entries defensively.
	e.Attrs["cn"][0] = "HACKED"
	e2, _ := d.Get("uid=arnaud,ou=people,o=lucent")
	if e2.Attr("cn") != "Arnaud Sahuguet" {
		t.Error("directory aliases caller memory")
	}
	d.Delete("cn=Mom,ou=contacts,uid=arnaud,o=lucent")
	if d.Len() != 2 {
		t.Errorf("Len after delete = %d", d.Len())
	}
	d.Delete("cn=Mom,ou=contacts,uid=arnaud,o=lucent") // idempotent
}

func TestSelfFromLDAP(t *testing.T) {
	d := seedDirectory()
	self, err := SelfFromLDAP(d, "uid=arnaud,ou=people,o=lucent")
	if err != nil {
		t.Fatalf("SelfFromLDAP: %v", err)
	}
	if self.ChildText("name") != "Arnaud Sahuguet" ||
		self.ChildText("email") != "sahuguet@lucent.com" ||
		self.ChildText("employer") != "Lucent Technologies" {
		t.Errorf("self = %s", self.Indent())
	}
	// The produced component validates against the GUP schema.
	if err := schema.GUP().ValidateComponent(xpath.MustParse("/user/self"), self); err != nil {
		t.Errorf("schema: %v", err)
	}
	if _, err := SelfFromLDAP(d, "uid=ghost"); err == nil {
		t.Error("missing DN accepted")
	}
}

func TestAddressBookLDAPRoundTrip(t *testing.T) {
	d := seedDirectory()
	base := "ou=contacts,uid=arnaud,o=lucent"
	book := AddressBookFromLDAP(d, base)
	items := book.ChildrenNamed("item")
	if len(items) != 2 {
		t.Fatalf("items = %d\n%s", len(items), book.Indent())
	}
	if err := schema.GUP().ValidateComponent(xpath.MustParse("/user/address-book"), book); err != nil {
		t.Errorf("schema: %v", err)
	}

	// Edit the component and push it back.
	book.Add(xmltree.MustParse(`<item name="Dan Lieuwen" type="corporate"><phone>908-582-0003</phone></item>`))
	n, err := AddressBookToLDAP(d, base, book)
	if err != nil || n != 3 {
		t.Fatalf("AddressBookToLDAP = %d, %v", n, err)
	}
	// Round trip reproduces the component (order by DN ≈ by cn).
	back := AddressBookFromLDAP(d, base)
	if len(back.ChildrenNamed("item")) != 3 {
		t.Errorf("round trip items = %d", len(back.ChildrenNamed("item")))
	}
	want := map[string]bool{"Rick Hull": true, "Mom": true, "Dan Lieuwen": true}
	for _, it := range back.ChildrenNamed("item") {
		name, _ := it.Attr("name")
		if !want[name] {
			t.Errorf("unexpected item %q", name)
		}
		delete(want, name)
	}
	if len(want) != 0 {
		t.Errorf("missing items: %v", want)
	}
	// Bad inputs.
	if _, err := AddressBookToLDAP(d, base, xmltree.New("calendar")); err == nil {
		t.Error("wrong fragment accepted")
	}
	if _, err := AddressBookToLDAP(d, base, xmltree.MustParse(`<address-book><item/></address-book>`)); err == nil {
		t.Error("nameless item accepted")
	}
}

func TestTableBasics(t *testing.T) {
	tb := NewTable("contacts", "name", "kind", "phone", "email")
	if err := tb.Insert("Rick", "corporate", "1", "r@x"); err != nil {
		t.Fatal(err)
	}
	if err := tb.Insert("too", "few"); err == nil {
		t.Error("arity violation accepted")
	}
	if tb.Len() != 1 {
		t.Errorf("Len = %d", tb.Len())
	}
	rows := tb.Rows()
	if rows[0]["name"] != "Rick" || rows[0]["email"] != "r@x" {
		t.Errorf("rows = %v", rows)
	}
}

var contactsMapping = RowMapping{
	Component:    "address-book",
	Element:      "item",
	AttrColumns:  map[string]string{"name": "name", "kind": "type"},
	ChildColumns: map[string]string{"phone": "phone", "email": "email"},
	ChildOrder:   []string{"phone", "email"},
}

func TestRelationalRoundTrip(t *testing.T) {
	tb := NewTable("contacts", "name", "kind", "phone", "email")
	tb.Insert("Rick", "corporate", "908-1", "r@lucent.com")
	tb.Insert("Mom", "personal", "555-1", "")

	comp := ComponentFromTable(tb, contactsMapping)
	if err := schema.GUP().ValidateComponent(xpath.MustParse("/user/address-book"), comp); err != nil {
		t.Fatalf("schema: %v\n%s", err, comp.Indent())
	}
	items := comp.ChildrenNamed("item")
	if len(items) != 2 {
		t.Fatalf("items = %d", len(items))
	}
	if v, _ := items[0].Attr("type"); v != "corporate" {
		t.Errorf("item attrs: %s", items[0])
	}
	if items[1].Child("email") != nil {
		t.Errorf("empty column should be omitted: %s", items[1])
	}

	// Mutate the XML view and push down.
	items[0].Child("phone").Text = "908-2"
	comp.Add(xmltree.MustParse(`<item name="Ming" type="corporate"><phone>908-3</phone></item>`))
	if err := TableFromComponent(tb, contactsMapping, comp); err != nil {
		t.Fatalf("pushdown: %v", err)
	}
	if tb.Len() != 3 {
		t.Errorf("rows after pushdown = %d", tb.Len())
	}
	byName := map[string]map[string]string{}
	for _, r := range tb.Rows() {
		byName[r["name"]] = r
	}
	if byName["Rick"]["phone"] != "908-2" {
		t.Errorf("update lost: %v", byName["Rick"])
	}
	if byName["Ming"]["kind"] != "corporate" {
		t.Errorf("insert lost: %v", byName["Ming"])
	}
	// Wrong fragment rejected.
	if err := TableFromComponent(tb, contactsMapping, xmltree.New("presence")); err == nil {
		t.Error("wrong fragment accepted")
	}
}

func TestChildOrderIsStable(t *testing.T) {
	tb := NewTable("contacts", "name", "kind", "phone", "email")
	tb.Insert("A", "", "1", "a@x")
	m := contactsMapping
	m.ChildOrder = []string{"email", "phone"}
	comp := ComponentFromTable(tb, m)
	item := comp.ChildrenNamed("item")[0]
	if item.Children[0].Name != "email" || item.Children[1].Name != "phone" {
		t.Errorf("child order: %s", item)
	}
}

func TestEscapeDN(t *testing.T) {
	d := NewDirectory()
	base := "ou=c,o=x"
	book := xmltree.MustParse(`<address-book><item name="Doe, John=Jr"><phone>1</phone></item></address-book>`)
	if _, err := AddressBookToLDAP(d, base, book); err != nil {
		t.Fatal(err)
	}
	back := AddressBookFromLDAP(d, base)
	if got := len(back.ChildrenNamed("item")); got != 1 {
		t.Fatalf("items = %d", got)
	}
	if v, _ := back.ChildrenNamed("item")[0].Attr("name"); v != "Doe, John=Jr" {
		t.Errorf("name = %q", v)
	}
}
