// Package adapter implements the wrappers that GUP-enable legacy profile
// sources (paper §2.3 requirement 3 and §4.2: "an adapter is put on top of
// the data store to offer a GUP-compliant interface"). Two source shapes
// are covered, matching the paper's related-work discussion (§6):
//
//   - an LDAP-style directory — flat entries of multi-valued name/value
//     pairs arranged in a DIT, the shape of Netscape roaming profiles and
//     DEN schemas, which the paper plans "to provide tools to wrap",
//   - a relational source — tables published as XML views, the
//     SilkRoute/Xperanto lineage.
//
// Both directions are supported: source → GUP XML component (fetch path)
// and GUP XML component → source mutations (the integrated-update path the
// paper notes no prior system handled).
package adapter

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"

	"gupster/internal/xmltree"
)

// Entry is one LDAP-style directory entry: a distinguished name plus
// multi-valued attributes. Attribute values are flat strings — exactly the
// limitation (no nesting) the paper holds against LDAP.
type Entry struct {
	DN    string
	Attrs map[string][]string
}

// Attr returns the first value of an attribute, or "".
func (e Entry) Attr(name string) string {
	if vs := e.Attrs[name]; len(vs) > 0 {
		return vs[0]
	}
	return ""
}

// ErrNoEntry is returned for lookups of absent DNs.
var ErrNoEntry = errors.New("adapter: no such entry")

// Directory is a minimal LDAP-style DIT. Safe for concurrent use.
type Directory struct {
	mu      sync.RWMutex
	entries map[string]Entry
}

// NewDirectory returns an empty directory.
func NewDirectory() *Directory {
	return &Directory{entries: make(map[string]Entry)}
}

// Add inserts or replaces an entry.
func (d *Directory) Add(e Entry) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.entries[e.DN] = copyEntry(e)
}

// Get fetches a copy of one entry by DN.
func (d *Directory) Get(dn string) (Entry, error) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	e, ok := d.entries[dn]
	if !ok {
		return Entry{}, fmt.Errorf("%w: %s", ErrNoEntry, dn)
	}
	return copyEntry(e), nil
}

func copyEntry(e Entry) Entry {
	cp := Entry{DN: e.DN, Attrs: make(map[string][]string, len(e.Attrs))}
	for k, vs := range e.Attrs {
		cp.Attrs[k] = append([]string(nil), vs...)
	}
	return cp
}

// Delete removes an entry; deleting an absent DN is a no-op.
func (d *Directory) Delete(dn string) {
	d.mu.Lock()
	defer d.mu.Unlock()
	delete(d.entries, dn)
}

// Search returns entries whose DN ends with base (one-level and subtree
// semantics collapse in this simplified DIT), sorted by DN.
func (d *Directory) Search(base string) []Entry {
	d.mu.RLock()
	defer d.mu.RUnlock()
	var out []Entry
	for dn, e := range d.entries {
		if dn != base && strings.HasSuffix(dn, ","+base) {
			out = append(out, copyEntry(e))
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].DN < out[j].DN })
	return out
}

// Len reports the number of entries.
func (d *Directory) Len() int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return len(d.entries)
}

// SelfFromLDAP maps an inetOrgPerson-style entry to the GUP <self>
// component.
func SelfFromLDAP(d *Directory, dn string) (*xmltree.Node, error) {
	e, err := d.Get(dn)
	if err != nil {
		return nil, err
	}
	self := xmltree.New("self")
	for _, m := range []struct{ ldap, gup string }{
		{"cn", "name"},
		{"postalAddress", "address"},
		{"mail", "email"},
		{"telephoneNumber", "phone"},
		{"o", "employer"},
	} {
		if v := e.Attr(m.ldap); v != "" {
			self.Add(xmltree.NewText(m.gup, v))
		}
	}
	return self, nil
}

// AddressBookFromLDAP maps contact entries under a base DN to the GUP
// <address-book> component. Each entry contributes one <item> keyed by its
// cn.
func AddressBookFromLDAP(d *Directory, base string) *xmltree.Node {
	book := xmltree.New("address-book")
	for _, e := range d.Search(base) {
		cn := e.Attr("cn")
		if cn == "" {
			continue
		}
		item := xmltree.New("item").SetAttr("name", cn)
		if t := e.Attr("category"); t != "" {
			item.SetAttr("type", t)
		}
		if v := e.Attr("telephoneNumber"); v != "" {
			item.Add(xmltree.NewText("phone", v))
		}
		if v := e.Attr("mail"); v != "" {
			item.Add(xmltree.NewText("email", v))
		}
		if v := e.Attr("postalAddress"); v != "" {
			item.Add(xmltree.NewText("address", v))
		}
		book.Add(item)
	}
	return book
}

// AddressBookToLDAP writes a GUP <address-book> component back into the
// directory under base, replacing the contact subtree (the integrated
// update direction). It returns the number of entries written.
func AddressBookToLDAP(d *Directory, base string, book *xmltree.Node) (int, error) {
	if book == nil || book.Name != "address-book" {
		return 0, errors.New("adapter: fragment is not an <address-book>")
	}
	// Replace semantics: clear existing contacts below base.
	for _, e := range d.Search(base) {
		d.Delete(e.DN)
	}
	n := 0
	for _, item := range book.ChildrenNamed("item") {
		cn, ok := item.Attr("name")
		if !ok || cn == "" {
			return n, errors.New("adapter: address book item without name")
		}
		attrs := map[string][]string{
			"objectClass": {"person"},
			"cn":          {cn},
		}
		if t, ok := item.Attr("type"); ok {
			attrs["category"] = []string{t}
		}
		if v := item.ChildText("phone"); v != "" {
			attrs["telephoneNumber"] = []string{v}
		}
		if v := item.ChildText("email"); v != "" {
			attrs["mail"] = []string{v}
		}
		if v := item.ChildText("address"); v != "" {
			attrs["postalAddress"] = []string{v}
		}
		d.Add(Entry{DN: "cn=" + escapeDN(cn) + "," + base, Attrs: attrs})
		n++
	}
	return n, nil
}

func escapeDN(s string) string {
	r := strings.NewReplacer(",", "\\,", "=", "\\=")
	return r.Replace(s)
}
