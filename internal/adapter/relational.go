package adapter

import (
	"errors"
	"fmt"
	"sync"

	"gupster/internal/xmltree"
)

// Table is a minimal relational table: named columns and string-typed rows.
// Safe for concurrent use.
type Table struct {
	Name    string
	Columns []string

	mu   sync.RWMutex
	rows [][]string
}

// NewTable declares a table.
func NewTable(name string, columns ...string) *Table {
	return &Table{Name: name, Columns: columns}
}

// Insert appends a row; it must match the column count.
func (t *Table) Insert(values ...string) error {
	if len(values) != len(t.Columns) {
		return fmt.Errorf("adapter: table %s expects %d columns, got %d", t.Name, len(t.Columns), len(values))
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.rows = append(t.rows, append([]string(nil), values...))
	return nil
}

// Rows materializes all rows as column→value maps.
func (t *Table) Rows() []map[string]string {
	t.mu.RLock()
	defer t.mu.RUnlock()
	out := make([]map[string]string, len(t.rows))
	for i, r := range t.rows {
		m := make(map[string]string, len(t.Columns))
		for j, c := range t.Columns {
			m[c] = r[j]
		}
		out[i] = m
	}
	return out
}

// Replace swaps the table contents for the given rows (update pushdown).
func (t *Table) Replace(rows []map[string]string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.rows = t.rows[:0]
	for _, m := range rows {
		r := make([]string, len(t.Columns))
		for j, c := range t.Columns {
			r[j] = m[c]
		}
		t.rows = append(t.rows, r)
	}
}

// Len reports the row count.
func (t *Table) Len() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return len(t.rows)
}

// RowMapping declares how a table row becomes a repeated element of a GUP
// component — a miniature SilkRoute view definition.
type RowMapping struct {
	// Component is the wrapping component element ("address-book").
	Component string
	// Element is the per-row element ("item").
	Element string
	// AttrColumns maps columns to attributes of Element.
	AttrColumns map[string]string
	// ChildColumns maps columns to text child elements of Element.
	ChildColumns map[string]string
	// ChildOrder fixes the serialization order of child elements (schema
	// order); columns absent from it append alphabetically last.
	ChildOrder []string
}

// ComponentFromTable publishes the table as a GUP component under the
// mapping. Rows with an empty value for a column simply omit that attribute
// or child.
func ComponentFromTable(t *Table, m RowMapping) *xmltree.Node {
	comp := xmltree.New(m.Component)
	for _, row := range t.Rows() {
		el := xmltree.New(m.Element)
		for col, attr := range m.AttrColumns {
			if v := row[col]; v != "" {
				el.SetAttr(attr, v)
			}
		}
		emitted := map[string]bool{}
		emit := func(col string) {
			child, ok := m.ChildColumns[col]
			if !ok || emitted[col] {
				return
			}
			emitted[col] = true
			if v := row[col]; v != "" {
				el.Add(xmltree.NewText(child, v))
			}
		}
		for _, col := range m.ChildOrder {
			emit(col)
		}
		for _, col := range t.Columns {
			emit(col)
		}
		comp.Add(el)
	}
	return comp
}

// TableFromComponent pushes a GUP component back into the table (update
// direction): every Element child becomes one row.
func TableFromComponent(t *Table, m RowMapping, comp *xmltree.Node) error {
	if comp == nil || comp.Name != m.Component {
		return errors.New("adapter: fragment does not match the mapping's component")
	}
	var rows []map[string]string
	for _, el := range comp.ChildrenNamed(m.Element) {
		row := make(map[string]string)
		for col, attr := range m.AttrColumns {
			if v, ok := el.Attr(attr); ok {
				row[col] = v
			}
		}
		for col, child := range m.ChildColumns {
			if v := el.ChildText(child); v != "" {
				row[col] = v
			}
		}
		rows = append(rows, row)
	}
	t.Replace(rows)
	return nil
}
