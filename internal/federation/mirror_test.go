package federation_test

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"gupster/internal/core"
	"gupster/internal/federation"
	"gupster/internal/policy"
	"gupster/internal/token"
	"gupster/internal/wire"
	"gupster/internal/xmltree"
	"gupster/internal/xpath"
)

// constellation builds n fully-meshed mirrors, each with its own MDM.
func constellation(t *testing.T, n int) ([]*core.MDM, []*wire.Server, []string) {
	t.Helper()
	mdms := make([]*core.MDM, n)
	mirrors := make([]*federation.Mirror, n)
	servers := make([]*wire.Server, n)
	addrs := make([]string, n)
	for i := 0; i < n; i++ {
		mdms[i] = newMDM(t)
		mirrors[i] = federation.NewMirror(mdms[i])
		srv, err := mirrors[i].Serve("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		servers[i] = srv
		addrs[i] = srv.Addr()
		i := i
		t.Cleanup(func() { srv.Close(); mirrors[i].Close() })
	}
	if err := federation.Join(mirrors, addrs); err != nil {
		t.Fatal(err)
	}
	return mdms, servers, addrs
}

func TestMirrorReplication(t *testing.T) {
	mdms, _, addrs := constellation(t, 3)
	st := newStore(t, "s1")
	st.Engine.Put("alice", xpath.MustParse("/user[@id='alice']/presence"), xmltree.MustParse(`<presence status="on"/>`))

	// A store registers coverage at mirror 0 only.
	reg, err := wire.Dial(addrs[0])
	if err != nil {
		t.Fatal(err)
	}
	defer reg.Close()
	err = reg.Call(context.Background(), wire.TypeRegister, &wire.RegisterRequest{
		Store: "s1", Address: st.Addr(), Path: "/user[@id='alice']/presence",
	}, nil)
	if err != nil {
		t.Fatal(err)
	}

	// Every mirror can now resolve the request.
	req := &wire.ResolveRequest{
		Path:    "/user[@id='alice']/presence",
		Context: policy.Context{Requester: "alice"},
		Verb:    token.VerbFetch,
	}
	for i := range mdms {
		resp, err := mdms[i].Resolve(context.Background(), req)
		if err != nil {
			t.Fatalf("mirror %d: %v", i, err)
		}
		if len(resp.Alternatives) != 1 {
			t.Fatalf("mirror %d: %+v", i, resp.Alternatives)
		}
	}

	// A shield rule provisioned at mirror 1 applies at mirror 2.
	err = callAt(t, addrs[1], wire.TypePutRule, &wire.PutRuleRequest{
		Owner: "alice",
		Rule: wire.RulePayload{
			ID: "fam", Path: "/user[@id='alice']/presence",
			Effect: "permit", Cond: "role=family",
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	famReq := &wire.ResolveRequest{
		Path:    "/user[@id='alice']/presence",
		Context: policy.Context{Requester: "mom", Role: "family"},
		Verb:    token.VerbFetch,
	}
	if _, err := mdms[2].Resolve(context.Background(), famReq); err != nil {
		t.Fatalf("rule did not replicate to mirror 2: %v", err)
	}
	// Deleting it at mirror 2 removes it everywhere.
	err = callAt(t, addrs[2], wire.TypeDeleteRule, &wire.DeleteRuleRequest{Owner: "alice", RuleID: "fam"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := mdms[0].Resolve(context.Background(), famReq); err == nil {
		t.Fatal("rule deletion did not replicate to mirror 0")
	}
	// Unregistration replicates too.
	err = reg.Call(context.Background(), wire.TypeUnregister, &wire.UnregisterRequest{
		Store: "s1", Path: "/user[@id='alice']/presence",
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := mdms[2].Resolve(context.Background(), req); err == nil {
		t.Fatal("unregistration did not replicate")
	}
}

func callAt(t *testing.T, addr, msgType string, req any) error {
	t.Helper()
	c, err := wire.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	return c.Call(context.Background(), msgType, req, nil)
}

func TestMirrorClientFailover(t *testing.T) {
	_, servers, addrs := constellation(t, 3)
	st := newStore(t, "s1")
	st.Engine.Put("u", xpath.MustParse("/user[@id='u']/presence"), xmltree.MustParse(`<presence/>`))
	if err := callAt(t, addrs[0], wire.TypeRegister, &wire.RegisterRequest{
		Store: "s1", Address: st.Addr(), Path: "/user[@id='u']/presence",
	}); err != nil {
		t.Fatal(err)
	}

	mc, err := federation.DialMirrors(addrs)
	if err != nil {
		t.Fatal(err)
	}
	defer mc.Close()
	req := &wire.ResolveRequest{
		Path:    "/user[@id='u']/presence",
		Context: policy.Context{Requester: "u"},
		Verb:    token.VerbFetch,
	}
	if _, err := mc.Resolve(context.Background(), req); err != nil {
		t.Fatalf("initial resolve: %v", err)
	}

	// Kill the first two mirrors; the client fails over to the third.
	servers[0].Close()
	servers[1].Close()

	if _, err := mc.Resolve(context.Background(), req); err != nil {
		t.Fatalf("failover resolve: %v", err)
	}
	// Application-level errors do not trigger failover.
	_, err = mc.Resolve(context.Background(), &wire.ResolveRequest{
		Path:    "/user[@id='u']/wallet",
		Context: policy.Context{Requester: "eve"},
	})
	if err == nil || !strings.Contains(err.Error(), "denied") {
		t.Fatalf("expected denial, got %v", err)
	}
}

func TestAllMirrorsDown(t *testing.T) {
	if _, err := federation.DialMirrors([]string{"127.0.0.1:1", "127.0.0.1:2"}); !errors.Is(err, federation.ErrAllMirrorsDown) {
		t.Fatalf("err = %v", err)
	}
	if _, err := federation.DialMirrors(nil); err == nil {
		t.Fatal("empty address list accepted")
	}
}

// KeepPeer anti-entropy: a peer that dies and restarts empty is re-peered
// and receives the surviving mirror's full meta-data snapshot, without any
// store re-registering.
func TestKeepPeerResyncsRestartedPeer(t *testing.T) {
	mdmA := newMDM(t)
	mirrorA := federation.NewMirror(mdmA)
	srvA, err := mirrorA.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { mirrorA.Close(); srvA.Close() })

	mdmB := newMDM(t)
	mirrorB := federation.NewMirror(mdmB)
	srvB, err := mirrorB.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addrB := srvB.Addr()

	mirrorA.KeepPeer(addrB, 25*time.Millisecond)

	// Coverage registered at A replicates to B once the peering is up.
	if err := callAt(t, srvA.Addr(), wire.TypeRegister, &wire.RegisterRequest{
		Store: "s1", Address: "127.0.0.1:7101", Path: "/user[@id='u']/presence",
	}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "initial replication to B", func() bool {
		return mdmB.Registry.StoreCount("s1") == 1
	})

	// B dies and restarts empty on the same address.
	mirrorB.Close()
	srvB.Close()
	mdmB2 := newMDM(t)
	mirrorB2 := federation.NewMirror(mdmB2)
	var srvB2 *wire.Server
	waitFor(t, "restart B's listener", func() bool {
		s, err := mirrorB2.Serve(addrB)
		if err != nil {
			return false
		}
		srvB2 = s
		return true
	})
	t.Cleanup(func() { mirrorB2.Close(); srvB2.Close() })

	// KeepPeer notices the dead link, re-peers, and replays A's snapshot:
	// B2 recovers the registration although no store re-registered.
	waitFor(t, "anti-entropy resync of restarted B", func() bool {
		return mdmB2.Registry.StoreCount("s1") == 1
	})
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(15 * time.Millisecond)
	}
}
