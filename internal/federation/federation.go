// Package federation implements the architectural variants of §5.1 of the
// paper — the alternatives to a single centralized meta-data manager:
//
//   - WhitePages: the "UDDI-like universally available white pages" that map
//     a personal identifier to the MDM managing that user's meta-data, with
//     support for "unlisted" pointers (§5.1.2, user-level distributed MDM),
//   - Node: a hierarchical MDM that manages most of a user's meta-data
//     itself but delegates designated profile subtrees to other MDMs (the
//     bank holds the wallet meta-data, the portal holds gaming), knowing
//     that the delegated meta-data exists but nothing about it,
//   - Locator: the client-side discovery flow — ask the white pages, dial
//     the user's MDM, resolve, following delegations transparently.
package federation

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"gupster/internal/core"
	"gupster/internal/wire"
	"gupster/internal/xpath"
)

// Discovery errors.
var (
	// ErrUnlisted means the user exists but chose not to publish an MDM
	// pointer; applications must learn the address out of band (§5.1.2).
	ErrUnlisted = errors.New("federation: user is unlisted")
	// ErrUnknownUser means the white pages have no entry at all.
	ErrUnknownUser = errors.New("federation: unknown user")
)

// WhitePages maps user identities to the MDM managing their meta-data.
// Safe for concurrent use.
type WhitePages struct {
	mu      sync.RWMutex
	entries map[string]wpEntry
}

type wpEntry struct {
	addr     string
	unlisted bool
}

// NewWhitePages returns an empty directory.
func NewWhitePages() *WhitePages {
	return &WhitePages{entries: make(map[string]wpEntry)}
}

// Set publishes (or, with unlisted=true, hides) a user's MDM pointer.
func (w *WhitePages) Set(user, addr string, unlisted bool) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.entries[user] = wpEntry{addr: addr, unlisted: unlisted}
}

// Lookup resolves a user to an MDM address.
func (w *WhitePages) Lookup(user string) (string, error) {
	w.mu.RLock()
	defer w.mu.RUnlock()
	e, ok := w.entries[user]
	if !ok {
		return "", fmt.Errorf("%w: %s", ErrUnknownUser, user)
	}
	if e.unlisted {
		return "", fmt.Errorf("%w: %s", ErrUnlisted, user)
	}
	return e.addr, nil
}

// Serve exposes the white pages over the wire protocol (who-has).
func (w *WhitePages) Serve(addr string) (*wire.Server, error) {
	return wire.Serve(addr, wire.HandlerFunc(func(c *wire.ServerConn, m *wire.Message) {
		if m.Type != wire.TypeWhoHas {
			_ = c.ReplyError(m, fmt.Errorf("white pages: unknown message type %q", m.Type))
			return
		}
		var req wire.WhoHasRequest
		if err := wire.Unmarshal(m.Payload, &req); err != nil {
			_ = c.ReplyError(m, err)
			return
		}
		a, err := w.Lookup(req.User)
		switch {
		case errors.Is(err, ErrUnlisted):
			_ = c.Reply(m, wire.WhoHasResponse{Unlisted: true})
		case err != nil:
			_ = c.ReplyError(m, err)
		default:
			_ = c.Reply(m, wire.WhoHasResponse{Address: a})
		}
	}))
}

// Delegation hands meta-data management for a profile subtree to another
// MDM node.
type Delegation struct {
	// Path scopes the delegation (e.g. /user[@id='alice']/wallet).
	Path xpath.Path
	// Addr is the delegate MDM's wire address.
	Addr string
}

// Node is a hierarchical MDM: a local core.MDM plus delegations. A request
// whose path falls inside a delegated subtree is forwarded; everything else
// resolves locally. The node knows *that* delegated meta-data exists but
// none of its content — the privacy property §5.1.2 asks for.
type Node struct {
	Local *core.MDM

	mu          sync.RWMutex
	delegations []Delegation

	clientMu sync.Mutex
	clients  map[string]*wire.Client
}

// NewNode wraps a local MDM.
func NewNode(local *core.MDM) *Node {
	return &Node{Local: local, clients: make(map[string]*wire.Client)}
}

// Delegate routes requests under path to the MDM at addr.
func (n *Node) Delegate(path xpath.Path, addr string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.delegations = append(n.delegations, Delegation{Path: path, Addr: addr})
}

// Delegations lists the node's delegations.
func (n *Node) Delegations() []Delegation {
	n.mu.RLock()
	defer n.mu.RUnlock()
	return append([]Delegation(nil), n.delegations...)
}

func (n *Node) delegateFor(p xpath.Path) (Delegation, bool) {
	n.mu.RLock()
	defer n.mu.RUnlock()
	for _, d := range n.delegations {
		if xpath.Covers(d.Path, p) == xpath.CoverFull {
			return d, true
		}
	}
	return Delegation{}, false
}

func (n *Node) client(addr string) (*wire.Client, error) {
	n.clientMu.Lock()
	defer n.clientMu.Unlock()
	if c, ok := n.clients[addr]; ok {
		return c, nil
	}
	c, err := wire.Dial(addr)
	if err != nil {
		return nil, err
	}
	n.clients[addr] = c
	return c, nil
}

// Resolve answers a request, forwarding into the hierarchy when a
// delegation covers the path. The response's Hops field counts forwards.
func (n *Node) Resolve(ctx context.Context, req *wire.ResolveRequest) (*wire.ResolveResponse, error) {
	p, err := xpath.Parse(req.Path)
	if err != nil {
		return nil, fmt.Errorf("federation: %w", err)
	}
	if d, ok := n.delegateFor(p); ok {
		c, err := n.client(d.Addr)
		if err != nil {
			return nil, fmt.Errorf("federation: delegate %s unreachable: %w", d.Addr, err)
		}
		var resp wire.ResolveResponse
		if err := c.Call(ctx, wire.TypeResolve, req, &resp); err != nil {
			return nil, err
		}
		resp.Hops++
		return &resp, nil
	}
	return n.Local.Resolve(ctx, req)
}

// Serve exposes the node over the wire protocol. It answers resolve (with
// delegation), and defers every other message type to a plain core server
// for the local MDM.
func (n *Node) Serve(addr string) (*wire.Server, error) {
	inner := core.NewServer(n.Local)
	return wire.Serve(addr, wire.HandlerFunc(func(c *wire.ServerConn, m *wire.Message) {
		if m.Type == wire.TypeResolve {
			var req wire.ResolveRequest
			if err := wire.Unmarshal(m.Payload, &req); err != nil {
				_ = c.ReplyError(m, err)
				return
			}
			resp, err := n.Resolve(context.Background(), &req)
			if err != nil {
				_ = c.ReplyError(m, err)
				return
			}
			_ = c.Reply(m, resp)
			return
		}
		inner.Handle(c, m)
	}))
}

// Close releases delegate connections.
func (n *Node) Close() {
	n.clientMu.Lock()
	defer n.clientMu.Unlock()
	for addr, c := range n.clients {
		c.Close()
		delete(n.clients, addr)
	}
}

// Locator is the client-side discovery flow for user-level distributed
// MDMs: white pages first, then the user's MDM.
type Locator struct {
	wp *wire.Client

	mu      sync.Mutex
	clients map[string]*wire.Client
}

// NewLocator dials the white pages.
func NewLocator(whitePagesAddr string) (*Locator, error) {
	c, err := wire.Dial(whitePagesAddr)
	if err != nil {
		return nil, err
	}
	return &Locator{wp: c, clients: make(map[string]*wire.Client)}, nil
}

// Close tears down all connections.
func (l *Locator) Close() {
	l.mu.Lock()
	defer l.mu.Unlock()
	for addr, c := range l.clients {
		c.Close()
		delete(l.clients, addr)
	}
	l.wp.Close()
}

// WhoHas asks the white pages for a user's MDM address.
func (l *Locator) WhoHas(ctx context.Context, user string) (string, error) {
	var resp wire.WhoHasResponse
	if err := l.wp.Call(ctx, wire.TypeWhoHas, &wire.WhoHasRequest{User: user}, &resp); err != nil {
		return "", err
	}
	if resp.Unlisted {
		return "", fmt.Errorf("%w: %s", ErrUnlisted, user)
	}
	return resp.Address, nil
}

// Resolve discovers the user's MDM and resolves there (one extra hop for
// the discovery itself is not counted in Hops — it is a directory lookup,
// not an MDM forward).
func (l *Locator) Resolve(ctx context.Context, user string, req *wire.ResolveRequest) (*wire.ResolveResponse, error) {
	addr, err := l.WhoHas(ctx, user)
	if err != nil {
		return nil, err
	}
	l.mu.Lock()
	c, ok := l.clients[addr]
	if !ok {
		c, err = wire.Dial(addr)
		if err != nil {
			l.mu.Unlock()
			return nil, err
		}
		l.clients[addr] = c
	}
	l.mu.Unlock()
	var resp wire.ResolveResponse
	if err := c.Call(ctx, wire.TypeResolve, req, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}
