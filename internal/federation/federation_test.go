package federation_test

import (
	"context"
	"errors"
	"testing"
	"time"

	"gupster/internal/core"
	"gupster/internal/coverage"
	"gupster/internal/federation"
	"gupster/internal/policy"
	"gupster/internal/schema"
	"gupster/internal/store"
	"gupster/internal/token"
	"gupster/internal/wire"
	"gupster/internal/xmltree"
	"gupster/internal/xpath"
)

var key = []byte("federation-test-key")

func newMDM(t *testing.T) *core.MDM {
	t.Helper()
	m := core.New(core.Config{
		Schema:   schema.GUP(),
		Signer:   token.NewSigner(key),
		GrantTTL: time.Minute,
	})
	t.Cleanup(m.Close)
	return m
}

func newStore(t *testing.T, id string) *store.Server {
	t.Helper()
	eng := store.NewEngine(id)
	srv := store.NewServer(eng, token.NewSigner(key))
	if err := srv.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv
}

func TestWhitePages(t *testing.T) {
	wp := federation.NewWhitePages()
	wp.Set("alice", "10.0.0.1:99", false)
	wp.Set("bob", "10.0.0.2:99", true) // unlisted

	if a, err := wp.Lookup("alice"); err != nil || a != "10.0.0.1:99" {
		t.Errorf("alice: %q, %v", a, err)
	}
	if _, err := wp.Lookup("bob"); !errors.Is(err, federation.ErrUnlisted) {
		t.Errorf("bob: %v", err)
	}
	if _, err := wp.Lookup("ghost"); !errors.Is(err, federation.ErrUnknownUser) {
		t.Errorf("ghost: %v", err)
	}
	// Re-listing flips the flag.
	wp.Set("bob", "10.0.0.2:99", false)
	if _, err := wp.Lookup("bob"); err != nil {
		t.Errorf("relisted bob: %v", err)
	}
}

func TestWhitePagesOverWire(t *testing.T) {
	wp := federation.NewWhitePages()
	wp.Set("alice", "addr-a", false)
	wp.Set("carol", "addr-c", true)
	srv, err := wp.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	loc, err := federation.NewLocator(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer loc.Close()

	if a, err := loc.WhoHas(context.Background(), "alice"); err != nil || a != "addr-a" {
		t.Errorf("alice: %q, %v", a, err)
	}
	if _, err := loc.WhoHas(context.Background(), "carol"); !errors.Is(err, federation.ErrUnlisted) {
		t.Errorf("carol: %v", err)
	}
	if _, err := loc.WhoHas(context.Background(), "ghost"); err == nil {
		t.Error("ghost resolved")
	}
}

// User-level distributed MDM (§5.1.2): alice and bob use different MDMs;
// the locator finds each user's MDM through the white pages and resolves
// there.
func TestUserLevelDistributedMDM(t *testing.T) {
	mdmA := newMDM(t)
	srvA := core.NewServer(mdmA)
	if err := srvA.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer srvA.Close()
	mdmB := newMDM(t)
	srvB := core.NewServer(mdmB)
	if err := srvB.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer srvB.Close()

	stA := newStore(t, "store-a")
	stB := newStore(t, "store-b")
	stA.Engine.Put("alice", xpath.MustParse("/user[@id='alice']/presence"), xmltree.MustParse(`<presence status="A"/>`))
	stB.Engine.Put("bob", xpath.MustParse("/user[@id='bob']/presence"), xmltree.MustParse(`<presence status="B"/>`))
	mdmA.Register(coverage.StoreID("store-a"), stA.Addr(), xpath.MustParse("/user[@id='alice']/presence"))
	mdmB.Register(coverage.StoreID("store-b"), stB.Addr(), xpath.MustParse("/user[@id='bob']/presence"))

	wp := federation.NewWhitePages()
	wp.Set("alice", srvA.Addr(), false)
	wp.Set("bob", srvB.Addr(), false)
	wpSrv, err := wp.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer wpSrv.Close()

	loc, err := federation.NewLocator(wpSrv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer loc.Close()

	for _, tc := range []struct{ user, path string }{
		{"alice", "/user[@id='alice']/presence"},
		{"bob", "/user[@id='bob']/presence"},
	} {
		resp, err := loc.Resolve(context.Background(), tc.user, &wire.ResolveRequest{
			Path:    tc.path,
			Context: policy.Context{Requester: tc.user},
			Verb:    token.VerbFetch,
		})
		if err != nil {
			t.Fatalf("%s: %v", tc.user, err)
		}
		if len(resp.Alternatives) != 1 || resp.Hops != 0 {
			t.Errorf("%s: %+v", tc.user, resp)
		}
	}
	// Alice's MDM knows nothing about bob.
	if _, err := mdmA.Resolve(context.Background(), &wire.ResolveRequest{
		Path:    "/user[@id='bob']/presence",
		Context: policy.Context{Requester: "bob"},
	}); err == nil {
		t.Error("wrong MDM answered")
	}
}

// Hierarchical MDM (§5.1.2): the wireless provider is alice's primary MDM;
// wallet meta-data is delegated to the bank's MDM, which alone knows where
// the wallet lives.
func TestHierarchicalDelegation(t *testing.T) {
	// Bank MDM with the wallet coverage.
	bank := newMDM(t)
	bankNode := federation.NewNode(bank)
	defer bankNode.Close()
	bankSrv, err := bankNode.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer bankSrv.Close()
	bankStore := newStore(t, "gup.bank.com")
	bankStore.Engine.Put("alice", xpath.MustParse("/user[@id='alice']/wallet"),
		xmltree.MustParse(`<wallet><card id="visa"><number>4111</number></card></wallet>`))
	bank.Register("gup.bank.com", bankStore.Addr(), xpath.MustParse("/user[@id='alice']/wallet"))

	// Primary (WSP) MDM with presence coverage, delegating the wallet.
	wsp := newMDM(t)
	wspNode := federation.NewNode(wsp)
	defer wspNode.Close()
	wspSrv, err := wspNode.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer wspSrv.Close()
	wspStore := newStore(t, "gup.wsp.com")
	wspStore.Engine.Put("alice", xpath.MustParse("/user[@id='alice']/presence"), xmltree.MustParse(`<presence status="on"/>`))
	wsp.Register("gup.wsp.com", wspStore.Addr(), xpath.MustParse("/user[@id='alice']/presence"))
	wspNode.Delegate(xpath.MustParse("/user[@id='alice']/wallet"), bankSrv.Addr())

	// Local resolve stays local (0 hops).
	resp, err := wspNode.Resolve(context.Background(), &wire.ResolveRequest{
		Path:    "/user[@id='alice']/presence",
		Context: policy.Context{Requester: "alice"},
		Verb:    token.VerbFetch,
	})
	if err != nil || resp.Hops != 0 {
		t.Fatalf("local: %+v, %v", resp, err)
	}
	// Wallet resolve forwards to the bank (1 hop) and comes back with the
	// bank store's referral.
	resp, err = wspNode.Resolve(context.Background(), &wire.ResolveRequest{
		Path:    "/user[@id='alice']/wallet",
		Context: policy.Context{Requester: "alice"},
		Verb:    token.VerbFetch,
	})
	if err != nil {
		t.Fatalf("delegated: %v", err)
	}
	if resp.Hops != 1 {
		t.Errorf("hops = %d, want 1", resp.Hops)
	}
	if len(resp.Alternatives) != 1 || resp.Alternatives[0].Referrals[0].Query.Store != "gup.bank.com" {
		t.Errorf("referral = %+v", resp.Alternatives)
	}
	// A request deeper inside the delegated subtree also forwards.
	resp, err = wspNode.Resolve(context.Background(), &wire.ResolveRequest{
		Path:    "/user[@id='alice']/wallet/card[@id='visa']",
		Context: policy.Context{Requester: "alice"},
		Verb:    token.VerbFetch,
	})
	if err != nil || resp.Hops != 1 {
		t.Errorf("deep delegated: %+v, %v", resp, err)
	}
	// The WSP's own MDM holds no wallet coverage — "knows nothing about it".
	if _, err := wsp.Resolve(context.Background(), &wire.ResolveRequest{
		Path:    "/user[@id='alice']/wallet",
		Context: policy.Context{Requester: "alice"},
	}); err == nil {
		t.Error("primary MDM leaked delegated coverage")
	}
}

// Two-level chain: device MDM → employer MDM → bank MDM.
func TestTwoLevelDelegationChain(t *testing.T) {
	bank := federation.NewNode(newMDM(t))
	defer bank.Close()
	bankSrv, _ := bank.Serve("127.0.0.1:0")
	defer bankSrv.Close()
	st := newStore(t, "deep-store")
	st.Engine.Put("u", xpath.MustParse("/user[@id='u']/wallet"), xmltree.MustParse(`<wallet/>`))
	bank.Local.Register("deep-store", st.Addr(), xpath.MustParse("/user[@id='u']/wallet"))

	mid := federation.NewNode(newMDM(t))
	defer mid.Close()
	mid.Delegate(xpath.MustParse("/user[@id='u']/wallet"), bankSrv.Addr())
	midSrv, _ := mid.Serve("127.0.0.1:0")
	defer midSrv.Close()

	top := federation.NewNode(newMDM(t))
	defer top.Close()
	top.Delegate(xpath.MustParse("/user[@id='u']/wallet"), midSrv.Addr())

	resp, err := top.Resolve(context.Background(), &wire.ResolveRequest{
		Path:    "/user[@id='u']/wallet",
		Context: policy.Context{Requester: "u"},
		Verb:    token.VerbFetch,
	})
	if err != nil {
		t.Fatalf("chain: %v", err)
	}
	if resp.Hops != 2 {
		t.Errorf("hops = %d, want 2", resp.Hops)
	}
}

func TestDelegateUnreachable(t *testing.T) {
	n := federation.NewNode(newMDM(t))
	defer n.Close()
	n.Delegate(xpath.MustParse("/user[@id='u']/wallet"), "127.0.0.1:1")
	_, err := n.Resolve(context.Background(), &wire.ResolveRequest{
		Path:    "/user[@id='u']/wallet",
		Context: policy.Context{Requester: "u"},
	})
	if err == nil {
		t.Error("unreachable delegate ignored")
	}
	if got := len(n.Delegations()); got != 1 {
		t.Errorf("delegations = %d", got)
	}
}

func TestNodeServeRejectsGarbagePath(t *testing.T) {
	n := federation.NewNode(newMDM(t))
	defer n.Close()
	if _, err := n.Resolve(context.Background(), &wire.ResolveRequest{Path: "///"}); err == nil {
		t.Error("garbage path accepted")
	}
}
