package federation

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"gupster/internal/core"
	"gupster/internal/flight"
	"gupster/internal/resilience"
	"gupster/internal/trace"
	"gupster/internal/wire"
)

// This file implements the paper's reliability architecture (§4.2: the
// central repository "may be implemented as a constellation of connected
// servers … a family of mirrored servers"; §5.3: "Reliability will be
// achieved by having the logical single entry point be implemented by a
// constellation of GUPster servers"):
//
//   - Mirror fronts a local MDM and replicates every meta-data mutation
//     (coverage registrations, privacy-shield rules, change notices) to its
//     peer mirrors, so any mirror can answer any resolve,
//   - MirrorClient gives applications the logical single entry point: it
//     talks to one mirror and fails over to the next when it dies.
//
// Replication is best-effort fan-out on the mutation path — exactly the
// UDDI-style mirroring the paper invokes; peers that are down miss updates
// until re-registration (stores re-announce coverage on reconnect, so the
// registry is self-healing).

// peerHello marks a connection as a mirror-to-mirror link so forwarded
// mutations are not forwarded again (no loops).
const typePeerHello = "peer-hello"

// mutating message types that replicate across the constellation.
var mirroredTypes = map[string]bool{
	wire.TypeRegister:   true,
	wire.TypeUnregister: true,
	wire.TypePutRule:    true,
	wire.TypeDeleteRule: true,
	wire.TypeChanged:    true,
	// A heartbeat to any mirror renews the store's lease constellation-wide;
	// otherwise each mirror would quarantine every store heartbeating a
	// different member.
	wire.TypeHeartbeat: true,
}

// Mirror is one member of an MDM constellation.
type Mirror struct {
	mdm   *core.MDM
	local *core.Server

	mu    sync.Mutex
	peers map[string]*wire.Client // address → connection

	// peerConns tracks inbound connections that identified as peers.
	peerMu    sync.Mutex
	peerConns map[*wire.ServerConn]bool

	// keepers are the KeepPeer anti-entropy goroutines.
	keepStop chan struct{}
	keepOnce sync.Once
	keepG    sync.WaitGroup

	ws *wire.Server
}

// NewMirror fronts a local MDM.
func NewMirror(local *core.MDM) *Mirror {
	return &Mirror{
		mdm:       local,
		local:     core.NewServer(local),
		peers:     make(map[string]*wire.Client),
		peerConns: make(map[*wire.ServerConn]bool),
		keepStop:  make(chan struct{}),
	}
}

// Serve starts the mirror's listener.
func (m *Mirror) Serve(addr string) (*wire.Server, error) {
	ws, err := wire.Serve(addr, wire.HandlerFunc(m.handle))
	if err != nil {
		return nil, err
	}
	m.ws = ws
	return ws, nil
}

// AddPeer connects this mirror to a peer mirror; mutations will be
// forwarded there, and this mirror's current meta-data (coverage and
// shields) is replayed to the peer so late joiners catch up. Peering is
// directional — call on both sides (or use Join).
func (m *Mirror) AddPeer(addr string) error {
	c, err := wire.Dial(addr)
	if err != nil {
		return err
	}
	if err := c.Call(context.Background(), typePeerHello, wire.Empty{}, nil); err != nil {
		c.Close()
		return err
	}
	// Install the peer first so concurrent mutations start forwarding, then
	// replay the snapshot — replays are idempotent, so overlap is harmless.
	m.mu.Lock()
	if old, ok := m.peers[addr]; ok {
		old.Close()
	}
	m.peers[addr] = c
	m.mu.Unlock()
	for _, reg := range m.mdm.CoverageSnapshot() {
		_ = c.Call(context.Background(), wire.TypeRegister, &reg, nil)
	}
	for _, rule := range m.mdm.ShieldSnapshot() {
		_ = c.Call(context.Background(), wire.TypePutRule, &rule, nil)
	}
	return nil
}

// KeepPeer maintains the peering with anti-entropy: it establishes the
// link as soon as the peer is reachable, probes it every interval, and —
// when the probe fails (the peer died or restarted) — re-peers and
// replays this mirror's full meta-data snapshot, so a restarted peer
// recovers the directory it lost without waiting for stores to
// re-register. Runs until Close.
func (m *Mirror) KeepPeer(addr string, interval time.Duration) {
	if interval <= 0 {
		interval = time.Second
	}
	m.keepG.Add(1)
	go func() {
		defer m.keepG.Done()
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			m.ensurePeer(addr, interval)
			select {
			case <-m.keepStop:
				return
			case <-t.C:
			}
		}
	}()
}

// ensurePeer probes an existing peer link, or (re-)establishes it. A dead
// link is dropped and re-peered via AddPeer, whose snapshot replay is the
// anti-entropy: idempotent at the receiver, complete for a peer that
// restarted empty.
func (m *Mirror) ensurePeer(addr string, timeout time.Duration) {
	m.mu.Lock()
	c := m.peers[addr]
	m.mu.Unlock()
	if c != nil {
		ctx, cancel := context.WithTimeout(context.Background(), timeout)
		err := c.Call(ctx, typePeerHello, wire.Empty{}, nil)
		cancel()
		if err == nil {
			return
		}
		m.mu.Lock()
		if m.peers[addr] == c {
			delete(m.peers, addr)
		}
		m.mu.Unlock()
		c.Close()
	}
	_ = m.AddPeer(addr)
}

// Join wires a set of mirrors into a full mesh.
func Join(mirrors []*Mirror, addrs []string) error {
	if len(mirrors) != len(addrs) {
		return errors.New("federation: mirrors/addrs length mismatch")
	}
	for i, m := range mirrors {
		for j, addr := range addrs {
			if i == j {
				continue
			}
			if err := m.AddPeer(addr); err != nil {
				return fmt.Errorf("federation: peering %d→%d: %w", i, j, err)
			}
		}
	}
	return nil
}

// Close stops the KeepPeer goroutines and shuts down peer links (the
// listener is closed by its owner).
func (m *Mirror) Close() {
	m.keepOnce.Do(func() { close(m.keepStop) })
	m.keepG.Wait()
	m.mu.Lock()
	defer m.mu.Unlock()
	for addr, c := range m.peers {
		c.Close()
		delete(m.peers, addr)
	}
}

func (m *Mirror) handle(c *wire.ServerConn, msg *wire.Message) {
	if msg.Type == typePeerHello {
		m.peerMu.Lock()
		m.peerConns[c] = true
		m.peerMu.Unlock()
		c.OnClose(func() {
			m.peerMu.Lock()
			delete(m.peerConns, c)
			m.peerMu.Unlock()
		})
		_ = c.Reply(msg, wire.Empty{})
		return
	}
	// Replicate mutations that originated from clients or stores — not
	// ones that arrived over a peer link — synchronously, before the local
	// apply replies to the caller: when the caller's acknowledgement
	// arrives, the constellation has converged.
	if mirroredTypes[msg.Type] {
		m.peerMu.Lock()
		fromPeer := m.peerConns[c]
		m.peerMu.Unlock()
		if !fromPeer {
			m.mu.Lock()
			peers := make([]*wire.Client, 0, len(m.peers))
			for _, p := range m.peers {
				peers = append(peers, p)
			}
			m.mu.Unlock()
			// A traced mutation records the replication fan-out as a span in
			// the local MDM's collector (recording directly there, not on the
			// request frame — the local apply below owns the reply).
			rctx := context.Background()
			var rsp *trace.Active
			if msg.Trace != nil {
				rctx = trace.WithRemote(rctx, msg.Trace, "mirror", m.mdm.Tracer())
				rctx, rsp = trace.Start(rctx, "mirror.replicate")
			}
			// Fan the mutation out to all peers concurrently (bounded pool)
			// instead of peer by peer: convergence latency is the slowest
			// peer, not the sum. Best-effort: a dead peer misses the update;
			// stores re-register on reconnect.
			_ = flight.ForEach(rctx, len(peers), flight.DefaultWorkers, func(i int) error {
				_ = peers[i].Call(rctx, msg.Type, msg.Payload, nil)
				return nil
			})
			rsp.Finish(nil)
		}
	}
	// Apply locally (the local core server replies to the caller).
	m.local.Handle(c, msg)
}

// ErrAllMirrorsDown reports that no member of the constellation answered.
var ErrAllMirrorsDown = errors.New("federation: all mirrors unreachable")

// MirrorClient is the application's logical single entry point to a
// constellation: calls go to the current mirror and fail over to the next
// on connection errors. Per-mirror circuit breakers remember which
// members are dead so reconnects skip them while any peer is healthy,
// and full failover passes are separated by capped, jittered backoff so
// a blinking constellation is not hammered. Safe for concurrent use.
type MirrorClient struct {
	addrs []string
	res   *resilience.Group

	mu       sync.Mutex
	cur      int
	conn     *wire.Client
	connAddr string
}

// DialMirrors creates a failover client over the constellation's addresses.
func DialMirrors(addrs []string) (*MirrorClient, error) {
	if len(addrs) == 0 {
		return nil, errors.New("federation: no mirror addresses")
	}
	mc := &MirrorClient{
		addrs: append([]string(nil), addrs...),
		res: resilience.NewGroup(
			resilience.Policy{MaxAttempts: 2, BaseDelay: 20 * time.Millisecond, MaxDelay: 200 * time.Millisecond},
			resilience.BreakerConfig{},
			nil,
		),
	}
	if _, _, err := mc.connection(); err != nil {
		return nil, err
	}
	return mc, nil
}

// Resilience exposes the failover client's breaker states and retry
// counters.
func (mc *MirrorClient) Resilience() *resilience.Group { return mc.res }

// connection returns the live connection, dialing forward through the
// address list as needed. Mirrors whose breakers are open are skipped
// while at least one member still accepts traffic.
func (mc *MirrorClient) connection() (*wire.Client, string, error) {
	mc.mu.Lock()
	defer mc.mu.Unlock()
	if mc.conn != nil {
		return mc.conn, mc.connAddr, nil
	}
	anyAvailable := false
	for _, a := range mc.addrs {
		if mc.res.Available(a) {
			anyAvailable = true
			break
		}
	}
	for range mc.addrs {
		addr := mc.addrs[mc.cur%len(mc.addrs)]
		if anyAvailable && !mc.res.Available(addr) {
			mc.cur++
			continue
		}
		c, err := wire.Dial(addr)
		if err == nil {
			mc.conn, mc.connAddr = c, addr
			return c, addr, nil
		}
		mc.res.Failure(addr)
		mc.cur++
	}
	return nil, "", ErrAllMirrorsDown
}

// drop discards the current connection and advances to the next mirror.
func (mc *MirrorClient) drop() {
	mc.mu.Lock()
	defer mc.mu.Unlock()
	if mc.conn != nil {
		mc.conn.Close()
		mc.conn = nil
		mc.connAddr = ""
	}
	mc.cur++
}

// rehome points the client at the constellation's current leader after a
// not-leader redirect. A leader address outside the configured list is
// adopted (the constellation knows its membership better than our
// config); an empty one — mid-election — just advances to the next
// member like a failed connection would.
func (mc *MirrorClient) rehome(leaderAddr string) {
	mc.mu.Lock()
	defer mc.mu.Unlock()
	if mc.conn != nil {
		mc.conn.Close()
		mc.conn = nil
		mc.connAddr = ""
	}
	if leaderAddr == "" {
		mc.cur++
		return
	}
	for i, a := range mc.addrs {
		if a == leaderAddr {
			mc.cur = i
			return
		}
	}
	mc.addrs = append(mc.addrs, leaderAddr)
	mc.cur = len(mc.addrs) - 1
}

// Call invokes one MDM operation with failover: connection-level failures
// advance to the next mirror and retry (once per mirror and pass, with
// backoff between passes). Application-level errors (denials, spurious
// queries) are returned as-is — they would fail identically everywhere.
func (mc *MirrorClient) Call(ctx context.Context, msgType string, req, resp any) error {
	var lastErr error
	for pass := 0; pass < mc.res.Policy.MaxAttempts; pass++ {
		if pass > 0 {
			mc.res.Stats.Retries.Add(1)
			if resilience.Sleep(ctx, mc.res.Backoff(pass-1)) != nil {
				return lastErr
			}
		}
		for range mc.addrs {
			c, addr, err := mc.connection()
			if err != nil {
				lastErr = err
				break // everyone down this pass; back off and re-try
			}
			mc.res.Stats.Attempts.Add(1)
			err = c.Call(ctx, msgType, req, resp)
			if err == nil {
				mc.res.Success(addr)
				return nil
			}
			var notLeader *wire.NotLeaderError
			if errors.As(err, &notLeader) {
				// A replicated constellation redirected us: re-home to the
				// leader and retry there. The member that answered is
				// healthy — no breaker failure.
				mc.res.Success(addr)
				mc.rehome(notLeader.LeaderAddr)
				lastErr = err
				continue
			}
			var wrongShard *wire.WrongShardError
			if errors.As(err, &wrongShard) && wrongShard.Addr != "" {
				// A sharded directory redirected us to the owner's home
				// shard: same treatment as a leader redirect.
				mc.res.Success(addr)
				mc.rehome(wrongShard.Addr)
				lastErr = err
				continue
			}
			var remote *wire.RemoteError
			if errors.As(err, &remote) {
				return err // the MDM answered; failing over cannot help
			}
			lastErr = err
			mc.res.Failure(addr)
			mc.drop()
		}
		if err := ctx.Err(); err != nil {
			break
		}
	}
	if lastErr == nil {
		lastErr = ErrAllMirrorsDown
	}
	return lastErr
}

// Resolve is the common operation, with failover.
func (mc *MirrorClient) Resolve(ctx context.Context, req *wire.ResolveRequest) (*wire.ResolveResponse, error) {
	var resp wire.ResolveResponse
	if err := mc.Call(ctx, wire.TypeResolve, req, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Close tears down the current connection.
func (mc *MirrorClient) Close() {
	mc.mu.Lock()
	defer mc.mu.Unlock()
	if mc.conn != nil {
		mc.conn.Close()
		mc.conn = nil
	}
}
