package sipreg

import (
	"errors"
	"testing"
	"time"
)

func fixed(t time.Time) func() time.Time { return func() time.Time { return t } }

var t0 = time.Date(2026, 7, 6, 12, 0, 0, 0, time.UTC)

func TestRegisterAndLookup(t *testing.T) {
	r := New().WithClock(fixed(t0))
	r.Register("sip:alice@lucent.com", "sip:alice@10.0.0.7", time.Hour, 1.0)
	r.Register("sip:alice@lucent.com", "sip:alice@laptop.local", time.Hour, 0.5)

	bs, err := r.Lookup("sip:alice@lucent.com")
	if err != nil {
		t.Fatalf("Lookup: %v", err)
	}
	if len(bs) != 2 || bs[0].Contact != "sip:alice@10.0.0.7" {
		t.Errorf("bindings = %+v", bs)
	}
	got, err := r.Route("sip:alice@lucent.com")
	if err != nil || got != "sip:alice@10.0.0.7" {
		t.Errorf("Route = %q, %v", got, err)
	}
	if !r.Online("sip:alice@lucent.com") {
		t.Error("alice should be online")
	}
	if r.Online("sip:bob@lucent.com") {
		t.Error("bob should be offline")
	}
}

func TestRefreshReplacesBinding(t *testing.T) {
	r := New().WithClock(fixed(t0))
	r.Register("a", "contact1", time.Minute, 1.0)
	r.Register("a", "contact1", time.Hour, 0.9) // refresh, not duplicate
	bs, _ := r.Lookup("a")
	if len(bs) != 1 {
		t.Fatalf("bindings = %+v", bs)
	}
	if bs[0].Q != 0.9 || !bs[0].Expires.Equal(t0.Add(time.Hour)) {
		t.Errorf("refresh did not replace: %+v", bs[0])
	}
}

func TestZeroTTLDeregisters(t *testing.T) {
	r := New().WithClock(fixed(t0))
	r.Register("a", "c1", time.Hour, 1.0)
	r.Register("a", "c1", 0, 0)
	if _, err := r.Lookup("a"); !errors.Is(err, ErrNoBinding) {
		t.Errorf("err = %v", err)
	}
}

func TestExpiry(t *testing.T) {
	clock := t0
	r := New().WithClock(func() time.Time { return clock })
	r.Register("a", "c-short", time.Minute, 1.0)
	r.Register("a", "c-long", time.Hour, 0.5)

	clock = t0.Add(30 * time.Minute)
	bs, err := r.Lookup("a")
	if err != nil || len(bs) != 1 || bs[0].Contact != "c-long" {
		t.Errorf("after partial expiry: %+v, %v", bs, err)
	}
	clock = t0.Add(2 * time.Hour)
	if _, err := r.Lookup("a"); !errors.Is(err, ErrNoBinding) {
		t.Errorf("after full expiry: %v", err)
	}
	if r.Online("a") {
		t.Error("expired AOR online")
	}
}

func TestAORs(t *testing.T) {
	clock := t0
	r := New().WithClock(func() time.Time { return clock })
	r.Register("b", "c1", time.Hour, 1)
	r.Register("a", "c2", time.Minute, 1)
	got := r.AORs()
	if len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Errorf("AORs = %v", got)
	}
	clock = t0.Add(10 * time.Minute)
	got = r.AORs()
	if len(got) != 1 || got[0] != "b" {
		t.Errorf("AORs after expiry = %v", got)
	}
}

func TestDeviceComponent(t *testing.T) {
	r := New().WithClock(fixed(t0))
	r.Register("a", "sip:a@host1", time.Hour, 1.0)
	r.Register("a", "sip:a@host2", time.Hour, 0.2)
	devs := r.DeviceComponent("a")
	if devs == nil || len(devs.ChildrenNamed("device")) != 2 {
		t.Fatalf("devices = %v", devs)
	}
	first := devs.ChildrenNamed("device")[0]
	if first.ChildText("number") != "sip:a@host1" {
		t.Errorf("preference order lost: %s", first)
	}
	if n, _ := first.Attr("network"); n != "voip" {
		t.Errorf("network = %q", n)
	}
	if r.DeviceComponent("ghost") != nil {
		t.Error("ghost component should be nil")
	}
}
