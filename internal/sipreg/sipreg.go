// Package sipreg simulates the VoIP network's profile plane (paper §3.1.3,
// Figure 4): a SIP registrar storing bindings from an address-of-record
// (the VoIP phone number) to the contact addresses of the user's endpoints,
// with expiry, plus the proxy-side lookup that routes calls. Per the paper,
// VoIP keeps most intelligence at the endpoints; the registrar is the only
// network-resident profile store, and it exports its bindings as GUP
// components so the VoIP network can join the GUPster federation.
package sipreg

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"gupster/internal/xmltree"
)

// Registrar errors.
var (
	ErrNoBinding = errors.New("sipreg: no active binding")
)

// Binding maps an AOR to one endpoint contact.
type Binding struct {
	AOR     string
	Contact string // e.g. "sip:alice@192.168.1.7:5060"
	Expires time.Time
	Q       float64 // preference weight, higher first
}

// Registrar stores AOR → contact bindings. Safe for concurrent use.
type Registrar struct {
	mu       sync.Mutex
	bindings map[string][]Binding // AOR → bindings
	now      func() time.Time
}

// New returns an empty registrar.
func New() *Registrar {
	return &Registrar{bindings: make(map[string][]Binding), now: time.Now}
}

// WithClock injects a clock for tests.
func (r *Registrar) WithClock(now func() time.Time) *Registrar {
	r.now = now
	return r
}

// Register adds or refreshes a binding with the given time-to-live. A TTL
// of zero removes the binding (RFC 3261 semantics).
func (r *Registrar) Register(aor, contact string, ttl time.Duration, q float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	list := r.bindings[aor]
	// Remove any existing binding for the same contact.
	kept := list[:0]
	for _, b := range list {
		if b.Contact != contact {
			kept = append(kept, b)
		}
	}
	if ttl > 0 {
		kept = append(kept, Binding{AOR: aor, Contact: contact, Expires: r.now().Add(ttl), Q: q})
	}
	if len(kept) == 0 {
		delete(r.bindings, aor)
		return
	}
	r.bindings[aor] = kept
}

// Lookup returns the live bindings for an AOR, highest preference first.
// Expired bindings are pruned as a side effect.
func (r *Registrar) Lookup(aor string) ([]Binding, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	list := r.bindings[aor]
	now := r.now()
	kept := list[:0]
	for _, b := range list {
		if b.Expires.After(now) {
			kept = append(kept, b)
		}
	}
	if len(kept) == 0 {
		delete(r.bindings, aor)
		return nil, fmt.Errorf("%w: %s", ErrNoBinding, aor)
	}
	r.bindings[aor] = kept
	out := append([]Binding(nil), kept...)
	sort.Slice(out, func(i, j int) bool { return out[i].Q > out[j].Q })
	return out, nil
}

// Route is the proxy behaviour: resolve an AOR to the best contact.
func (r *Registrar) Route(aor string) (string, error) {
	bs, err := r.Lookup(aor)
	if err != nil {
		return "", err
	}
	return bs[0].Contact, nil
}

// Online reports whether the AOR has any live binding (the presence-ish
// signal reach-me uses for VoIP).
func (r *Registrar) Online(aor string) bool {
	_, err := r.Lookup(aor)
	return err == nil
}

// AORs lists registered addresses-of-record (live ones only).
func (r *Registrar) AORs() []string {
	r.mu.Lock()
	now := r.now()
	var out []string
	for aor, list := range r.bindings {
		for _, b := range list {
			if b.Expires.After(now) {
				out = append(out, aor)
				break
			}
		}
	}
	r.mu.Unlock()
	sort.Strings(out)
	return out
}

// DeviceComponent exports an AOR's endpoints as GUP <device> elements
// wrapped in a <devices> fragment.
func (r *Registrar) DeviceComponent(aor string) *xmltree.Node {
	bs, err := r.Lookup(aor)
	if err != nil {
		return nil
	}
	devs := xmltree.New("devices")
	for i, b := range bs {
		dev := xmltree.New("device").
			SetAttr("id", fmt.Sprintf("voip-%d", i)).
			SetAttr("network", "voip").
			SetAttr("type", "softphone")
		dev.Add(xmltree.NewText("number", b.Contact))
		devs.Add(dev)
	}
	return devs
}
