package syncml_test

import (
	"context"
	"testing"

	"gupster/internal/schema"
	"gupster/internal/store"
	. "gupster/internal/syncml"
	"gupster/internal/wire"
	"gupster/internal/xmltree"
	"gupster/internal/xpath"
)

// The schema adjunct supplies the reconciliation policy when the device
// does not name one: address books are annotated "merge", so a
// doubly-modified item keeps both sides' fields.
func TestAdjunctDefaultPolicy(t *testing.T) {
	eng := store.NewEngine("s1")
	srv := &Server{Store: eng, Keys: xmltree.DefaultKeys, Adjuncts: schema.GUPAdjuncts()}
	path := xpath.MustParse("/user[@id='u']/address-book")
	tr := &adjTransport{srv: srv, path: path}

	eng.Put("u", path, xmltree.MustParse(
		`<address-book><item name="rick"><phone>1</phone></item></address-book>`))
	dev := NewDevice(xmltree.DefaultKeys)
	// Policy "" → the server consults the adjunct.
	if _, err := dev.Sync(context.Background(), tr, ""); err != nil {
		t.Fatal(err)
	}
	// Device adds an email; server changes the phone — a conflict.
	dev.Edit(func(local *xmltree.Node) *xmltree.Node {
		local.ChildrenNamed("item")[0].Add(xmltree.NewText("email", "r@x"))
		return local
	})
	comp, _, _ := eng.GetComponent("u", path)
	comp.ChildrenNamed("item")[0].Child("phone").Text = "2"
	eng.Put("u", path, comp)

	st, err := dev.Sync(context.Background(), tr, "")
	if err != nil {
		t.Fatal(err)
	}
	if st.Conflicts != 1 {
		t.Fatalf("conflicts = %d", st.Conflicts)
	}
	serverComp, _, _ := eng.GetComponent("u", path)
	item := serverComp.ChildrenNamed("item")[0]
	// Merge semantics (from the adjunct): both edits survive.
	if item.ChildText("email") != "r@x" || item.ChildText("phone") != "2" {
		t.Errorf("adjunct merge not applied: %s", item)
	}
}

// An explicit request policy overrides the adjunct.
func TestExplicitPolicyBeatsAdjunct(t *testing.T) {
	eng := store.NewEngine("s1")
	srv := &Server{Store: eng, Keys: xmltree.DefaultKeys, Adjuncts: schema.GUPAdjuncts()}
	path := xpath.MustParse("/user[@id='u']/address-book")
	tr := &adjTransport{srv: srv, path: path}

	eng.Put("u", path, xmltree.MustParse(
		`<address-book><item name="rick"><phone>ORIG</phone></item></address-book>`))
	dev := NewDevice(xmltree.DefaultKeys)
	dev.Sync(context.Background(), tr, ServerWins)
	dev.Edit(func(local *xmltree.Node) *xmltree.Node {
		local.ChildrenNamed("item")[0].Children[0].Text = "DEVICE"
		return local
	})
	comp, _, _ := eng.GetComponent("u", path)
	comp.ChildrenNamed("item")[0].Children[0].Text = "SERVER"
	eng.Put("u", path, comp)

	if _, err := dev.Sync(context.Background(), tr, ServerWins); err != nil {
		t.Fatal(err)
	}
	serverComp, _, _ := eng.GetComponent("u", path)
	if serverComp.ChildrenNamed("item")[0].ChildText("phone") != "SERVER" {
		t.Errorf("explicit server-wins ignored: %s", serverComp)
	}
}

type adjTransport struct {
	srv  *Server
	path xpath.Path
}

func (t *adjTransport) SyncStart(_ context.Context, lastAnchor uint64) (*wire.SyncStartResponse, error) {
	return t.srv.HandleStart("u", t.path, lastAnchor)
}

func (t *adjTransport) SyncDelta(_ context.Context, req *wire.SyncDeltaRequest) (*wire.SyncDeltaResponse, error) {
	return t.srv.HandleDelta("u", t.path, req)
}
