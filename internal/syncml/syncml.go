// Package syncml implements GUPster's component synchronization protocol
// (paper §2.3 requirement 7 and §3.2.2 — GUP adopted SyncML as its sync
// transport, and §5.3 notes that the transport alone leaves the
// "synchronization semantics" open; this package supplies them):
//
//   - anchor-based sessions: a device remembers the store version it last
//     reconciled with; matching anchors enable a fast (delta) sync, anything
//     else falls back to a slow (full transfer) sync,
//   - two-way fast sync at item granularity, exchanging only the edits each
//     side made since the shared anchor,
//   - conflict detection (the same item edited on both sides) with
//     user-provisionable reconciliation policies (§2.3 requirement 6).
//
// The server half operates over any ComponentStore (the data-store engine
// satisfies it); the Device type is the client half, maintaining the shadow
// copy a handheld would keep.
package syncml

import (
	"errors"
	"fmt"

	"gupster/internal/wire"
	"gupster/internal/xmltree"
)

// Policy names a reconciliation policy for conflicting edits.
type Policy string

// Reconciliation policies (§5.3 "Reconciliation can be handled by
// prioritizing sites or by some more sophisticated method").
const (
	// ServerWins drops the client's conflicting edit.
	ServerWins Policy = "server-wins"
	// ClientWins applies the client's conflicting edit over the server's.
	ClientWins Policy = "client-wins"
	// Merge deep-unions the two versions of a doubly-modified item; for
	// add/remove conflicts it behaves like ServerWins.
	Merge Policy = "merge"
)

// ErrBadPolicy rejects unknown policy names.
var ErrBadPolicy = errors.New("syncml: unknown reconciliation policy")

// ParsePolicy validates a wire policy string ("" means ServerWins).
func ParsePolicy(s string) (Policy, error) {
	switch Policy(s) {
	case "":
		return ServerWins, nil
	case ServerWins, ClientWins, Merge:
		return Policy(s), nil
	default:
		return "", fmt.Errorf("%w: %q", ErrBadPolicy, s)
	}
}

// EncodeOps converts item edits to their wire form.
func EncodeOps(ops []xmltree.Op) []wire.SyncOp {
	out := make([]wire.SyncOp, len(ops))
	for i, op := range ops {
		w := wire.SyncOp{Kind: op.Kind.String(), Key: op.Key}
		if op.Node != nil {
			w.XML = op.Node.String()
		}
		out[i] = w
	}
	return out
}

// DecodeOps parses wire ops back into item edits.
func DecodeOps(ws []wire.SyncOp) ([]xmltree.Op, error) {
	out := make([]xmltree.Op, len(ws))
	for i, w := range ws {
		var kind xmltree.OpKind
		switch w.Kind {
		case "add":
			kind = xmltree.OpAdd
		case "remove":
			kind = xmltree.OpRemove
		case "modify":
			kind = xmltree.OpModify
		default:
			return nil, fmt.Errorf("syncml: unknown op kind %q", w.Kind)
		}
		op := xmltree.Op{Kind: kind, Key: w.Key}
		if w.XML != "" {
			n, err := xmltree.ParseString(w.XML)
			if err != nil {
				return nil, fmt.Errorf("syncml: op %d: %w", i, err)
			}
			op.Node = n
		}
		out[i] = op
	}
	return out, nil
}

// opKeys collects the item keys an op list touches.
func opKeys(ops []xmltree.Op) map[string]bool {
	m := make(map[string]bool, len(ops))
	for _, op := range ops {
		m[op.Key] = true
	}
	return m
}

// Reconcile applies the client's ops onto the server state given the
// server-side ops since the shared anchor, resolving conflicts by policy.
// It returns the reconciled component and the number of conflicts resolved.
// Neither input tree is modified.
func Reconcile(server *xmltree.Node, serverOps, clientOps []xmltree.Op, pol Policy, keys xmltree.KeySpec) (*xmltree.Node, int) {
	serverTouched := opKeys(serverOps)
	result := server.Clone()
	conflicts := 0
	for _, op := range clientOps {
		if serverTouched[op.Key] {
			conflicts++
			switch pol {
			case ClientWins:
				result = xmltree.Patch(result, []xmltree.Op{op}, keys)
			case Merge:
				if op.Kind == xmltree.OpModify && op.Node != nil {
					merged := mergeItem(result, op, keys)
					result = xmltree.Patch(result, []xmltree.Op{merged}, keys)
				}
				// add/remove conflicts: keep server's outcome.
			default: // ServerWins: drop the client op.
			}
			continue
		}
		result = xmltree.Patch(result, []xmltree.Op{op}, keys)
	}
	return result, conflicts
}

// mergeItem deep-unions the server's current version of a doubly-modified
// item with the client's version, server priority: fields the client left
// untouched keep the server's edit, while fields only the client added or
// set survive the union. (A field both sides changed resolves to the
// server's value — a true three-way merge would need the shared base, which
// the store no longer has.)
func mergeItem(server *xmltree.Node, op xmltree.Op, keys xmltree.KeySpec) xmltree.Op {
	for _, c := range server.Children {
		if k, ok := keyOf(c, keys); ok && k == op.Key {
			return xmltree.Op{
				Kind: xmltree.OpModify,
				Key:  op.Key,
				Node: xmltree.DeepUnion(c, op.Node, keys),
			}
		}
	}
	return op
}

func keyOf(n *xmltree.Node, keys xmltree.KeySpec) (string, bool) {
	attr, ok := keys[n.Name]
	if !ok {
		return "", false
	}
	v, ok := n.Attr(attr)
	if !ok {
		return "", false
	}
	return n.Name + "\x00" + v, true
}

// ReconcileSlow merges full client state with full server state by policy.
// Conflicts are keyed items present on both sides with different content.
func ReconcileSlow(server, client *xmltree.Node, pol Policy, keys xmltree.KeySpec) (*xmltree.Node, int) {
	conflicts := countItemConflicts(server, client, keys)
	switch pol {
	case ClientWins, Merge:
		return xmltree.DeepUnion(client, server, keys), conflicts
	default:
		return xmltree.DeepUnion(server, client, keys), conflicts
	}
}

func countItemConflicts(a, b *xmltree.Node, keys xmltree.KeySpec) int {
	if a == nil || b == nil {
		return 0
	}
	index := make(map[string]*xmltree.Node)
	for _, c := range a.Children {
		if k, ok := keyOf(c, keys); ok {
			index[k] = c
		}
	}
	n := 0
	for _, c := range b.Children {
		if k, ok := keyOf(c, keys); ok {
			if other, exists := index[k]; exists && !other.Equal(c) {
				n++
			}
		}
	}
	return n
}
