// The tests live outside the package because they exercise the protocol
// against the real store engine, which itself links syncml.
package syncml_test

import (
	"context"
	"fmt"
	"testing"

	"gupster/internal/store"
	. "gupster/internal/syncml"
	"gupster/internal/wire"
	"gupster/internal/xmltree"
	"gupster/internal/xpath"
)

var bookPath = xpath.MustParse("/user[@id='alice']/address-book")

// localTransport plugs a Device directly into a Server, in process.
type localTransport struct {
	srv  *Server
	user string
	path xpath.Path
}

func (t *localTransport) SyncStart(_ context.Context, lastAnchor uint64) (*wire.SyncStartResponse, error) {
	return t.srv.HandleStart(t.user, t.path, lastAnchor)
}

func (t *localTransport) SyncDelta(_ context.Context, req *wire.SyncDeltaRequest) (*wire.SyncDeltaResponse, error) {
	return t.srv.HandleDelta(t.user, t.path, req)
}

func newRig(t *testing.T) (*store.Engine, *localTransport) {
	t.Helper()
	eng := store.NewEngine("s1")
	srv := &Server{Store: eng, Keys: xmltree.DefaultKeys}
	return eng, &localTransport{srv: srv, user: "alice", path: bookPath}
}

func book(entries ...string) *xmltree.Node {
	b := xmltree.New("address-book")
	for i := 0; i < len(entries); i += 2 {
		item := xmltree.New("item").SetAttr("name", entries[i])
		item.Add(xmltree.NewText("phone", entries[i+1]))
		b.Add(item)
	}
	return b
}

func names(b *xmltree.Node) map[string]string {
	out := map[string]string{}
	for _, it := range b.ChildrenNamed("item") {
		n, _ := it.Attr("name")
		out[n] = it.ChildText("phone")
	}
	return out
}

func TestFirstSyncAdoptsServerState(t *testing.T) {
	eng, tr := newRig(t)
	eng.Put("alice", bookPath, book("rick", "111", "dan", "222"))

	d := NewDevice(xmltree.DefaultKeys)
	st, err := d.Sync(context.Background(), tr, ServerWins)
	if err != nil {
		t.Fatalf("Sync: %v", err)
	}
	if !st.Slow {
		t.Error("first sync should be slow")
	}
	if got := names(d.Local); len(got) != 2 || got["rick"] != "111" {
		t.Errorf("device state = %v", got)
	}
	if d.Anchor == 0 {
		t.Error("anchor not set")
	}
	if d.Dirty() {
		t.Error("freshly synced device should be clean")
	}
}

func TestFirstSyncUploadsDeviceState(t *testing.T) {
	eng, tr := newRig(t)
	d := NewDevice(xmltree.DefaultKeys)
	d.Local = book("mom", "999")
	st, err := d.Sync(context.Background(), tr, ServerWins)
	if err != nil {
		t.Fatalf("Sync: %v", err)
	}
	if !st.Slow || st.BytesUp == 0 {
		t.Errorf("stats = %+v", st)
	}
	comp, _, err := eng.GetComponent("alice", bookPath)
	if err != nil {
		t.Fatalf("server state: %v", err)
	}
	if got := names(comp); got["mom"] != "999" {
		t.Errorf("server state = %v", got)
	}
}

func TestBothEmptySync(t *testing.T) {
	_, tr := newRig(t)
	d := NewDevice(xmltree.DefaultKeys)
	st, err := d.Sync(context.Background(), tr, ServerWins)
	if err != nil {
		t.Fatalf("Sync: %v", err)
	}
	if !st.Slow || d.Local != nil {
		t.Errorf("st=%+v local=%v", st, d.Local)
	}
}

func TestFastSyncMovesOnlyDeltas(t *testing.T) {
	eng, tr := newRig(t)
	// Seed with a large book.
	entries := []string{}
	for i := 0; i < 100; i++ {
		entries = append(entries, fmt.Sprintf("person%03d", i), fmt.Sprintf("555-%04d", i))
	}
	eng.Put("alice", bookPath, book(entries...))

	d := NewDevice(xmltree.DefaultKeys)
	first, _ := d.Sync(context.Background(), tr, ServerWins)

	// Server adds one entry.
	comp, _, _ := eng.GetComponent("alice", bookPath)
	comp.Add(xmltree.New("item").SetAttr("name", "newguy").Add(xmltree.NewText("phone", "777")))
	eng.Put("alice", bookPath, comp)

	st, err := d.Sync(context.Background(), tr, ServerWins)
	if err != nil {
		t.Fatalf("second sync: %v", err)
	}
	if st.Slow {
		t.Fatal("second sync should be fast")
	}
	if st.OpsReceived != 1 || st.OpsSent != 0 {
		t.Errorf("ops = %+v", st)
	}
	if st.BytesDown >= first.BytesDown/4 {
		t.Errorf("fast sync moved %d bytes; slow moved %d — deltas not small", st.BytesDown, first.BytesDown)
	}
	if got := names(d.Local); got["newguy"] != "777" || len(got) != 101 {
		t.Errorf("device missed server add: %d entries", len(got))
	}
}

func TestTwoWayFastSync(t *testing.T) {
	eng, tr := newRig(t)
	eng.Put("alice", bookPath, book("rick", "111", "dan", "222"))
	d := NewDevice(xmltree.DefaultKeys)
	d.Sync(context.Background(), tr, ServerWins)

	// Device edits one item and adds another; server removes a third party.
	d.Edit(func(local *xmltree.Node) *xmltree.Node {
		for _, it := range local.ChildrenNamed("item") {
			if n, _ := it.Attr("name"); n == "rick" {
				it.Children[0].Text = "111-NEW"
			}
		}
		local.Add(xmltree.New("item").SetAttr("name", "ming").Add(xmltree.NewText("phone", "333")))
		return local
	})
	if !d.Dirty() {
		t.Fatal("device should be dirty")
	}
	comp, _, _ := eng.GetComponent("alice", bookPath)
	for _, it := range comp.ChildrenNamed("item") {
		if n, _ := it.Attr("name"); n == "dan" {
			comp.RemoveChild(it)
		}
	}
	eng.Put("alice", bookPath, comp)

	st, err := d.Sync(context.Background(), tr, ServerWins)
	if err != nil {
		t.Fatalf("Sync: %v", err)
	}
	if st.Slow || st.Conflicts != 0 {
		t.Errorf("stats = %+v", st)
	}
	want := map[string]string{"rick": "111-NEW", "ming": "333"}
	if got := names(d.Local); len(got) != 2 || got["rick"] != want["rick"] || got["ming"] != want["ming"] {
		t.Errorf("device = %v", got)
	}
	serverComp, _, _ := eng.GetComponent("alice", bookPath)
	if got := names(serverComp); len(got) != 2 || got["rick"] != "111-NEW" {
		t.Errorf("server = %v", got)
	}
	// Device and server agree.
	if !d.Local.Equal(serverComp) && fmt.Sprint(names(d.Local)) != fmt.Sprint(names(serverComp)) {
		t.Errorf("divergence:\n%s\n%s", d.Local, serverComp)
	}
}

func conflictRig(t *testing.T, pol Policy) (deviceVal, serverVal string, st Stats) {
	t.Helper()
	eng, tr := newRig(t)
	eng.Put("alice", bookPath, book("rick", "ORIG"))
	d := NewDevice(xmltree.DefaultKeys)
	d.Sync(context.Background(), tr, pol)

	// Both sides edit rick.
	d.Edit(func(local *xmltree.Node) *xmltree.Node {
		local.ChildrenNamed("item")[0].Children[0].Text = "DEVICE"
		return local
	})
	comp, _, _ := eng.GetComponent("alice", bookPath)
	comp.ChildrenNamed("item")[0].Children[0].Text = "SERVER"
	eng.Put("alice", bookPath, comp)

	st, err := d.Sync(context.Background(), tr, pol)
	if err != nil {
		t.Fatalf("Sync: %v", err)
	}
	serverComp, _, _ := eng.GetComponent("alice", bookPath)
	return names(d.Local)["rick"], names(serverComp)["rick"], st
}

func TestConflictServerWins(t *testing.T) {
	dev, srv, st := conflictRig(t, ServerWins)
	if st.Conflicts != 1 {
		t.Errorf("conflicts = %d", st.Conflicts)
	}
	if dev != "SERVER" || srv != "SERVER" {
		t.Errorf("dev=%q srv=%q", dev, srv)
	}
}

func TestConflictClientWins(t *testing.T) {
	dev, srv, st := conflictRig(t, ClientWins)
	if st.Conflicts != 1 {
		t.Errorf("conflicts = %d", st.Conflicts)
	}
	if dev != "DEVICE" || srv != "DEVICE" {
		t.Errorf("dev=%q srv=%q", dev, srv)
	}
}

func TestConflictMergeKeepsBothFields(t *testing.T) {
	eng, tr := newRig(t)
	eng.Put("alice", bookPath, xmltree.MustParse(
		`<address-book><item name="rick"><phone>1</phone></item></address-book>`))
	d := NewDevice(xmltree.DefaultKeys)
	d.Sync(context.Background(), tr, Merge)

	// Device adds an email to rick; server changes the phone.
	d.Edit(func(local *xmltree.Node) *xmltree.Node {
		local.ChildrenNamed("item")[0].Add(xmltree.NewText("email", "r@x"))
		return local
	})
	comp, _, _ := eng.GetComponent("alice", bookPath)
	comp.ChildrenNamed("item")[0].Child("phone").Text = "2"
	eng.Put("alice", bookPath, comp)

	st, err := d.Sync(context.Background(), tr, Merge)
	if err != nil {
		t.Fatalf("Sync: %v", err)
	}
	if st.Conflicts != 1 {
		t.Errorf("conflicts = %d", st.Conflicts)
	}
	serverComp, _, _ := eng.GetComponent("alice", bookPath)
	item := serverComp.ChildrenNamed("item")[0]
	if item.ChildText("email") != "r@x" {
		t.Errorf("merge lost device's email: %s", item)
	}
	if item.ChildText("phone") == "1" {
		t.Errorf("merge lost server's phone change: %s", item)
	}
	if !d.Local.Equal(serverComp) {
		t.Errorf("device and server diverged after merge:\n%s\n%s", d.Local.Indent(), serverComp.Indent())
	}
}

func TestConcurrentWriterForcesAuthoritativeState(t *testing.T) {
	eng, tr := newRig(t)
	eng.Put("alice", bookPath, book("rick", "111"))
	d := NewDevice(xmltree.DefaultKeys)
	d.Sync(context.Background(), tr, ServerWins)
	d.Edit(func(local *xmltree.Node) *xmltree.Node {
		local.Add(xmltree.New("item").SetAttr("name", "dev").Add(xmltree.NewText("phone", "5")))
		return local
	})

	// Interpose a transport that injects a server write between start and
	// delta.
	racy := &racingTransport{inner: tr, eng: eng}
	_, err := d.Sync(context.Background(), racy, ServerWins)
	if err != nil {
		t.Fatalf("Sync: %v", err)
	}
	serverComp, _, _ := eng.GetComponent("alice", bookPath)
	if !d.Local.Equal(serverComp) {
		t.Errorf("device diverged from server after race:\ndevice: %s\nserver: %s", d.Local, serverComp)
	}
	if got := names(d.Local); got["racer"] == "" || got["dev"] == "" {
		t.Errorf("missing edits after race: %v", got)
	}
}

type racingTransport struct {
	inner *localTransport
	eng   *store.Engine
	raced bool
}

func (r *racingTransport) SyncStart(ctx context.Context, a uint64) (*wire.SyncStartResponse, error) {
	return r.inner.SyncStart(ctx, a)
}

func (r *racingTransport) SyncDelta(ctx context.Context, req *wire.SyncDeltaRequest) (*wire.SyncDeltaResponse, error) {
	if !r.raced {
		r.raced = true
		comp, _, _ := r.eng.GetComponent("alice", bookPath)
		comp.Add(xmltree.New("item").SetAttr("name", "racer").Add(xmltree.NewText("phone", "9")))
		r.eng.Put("alice", bookPath, comp)
	}
	return r.inner.SyncDelta(ctx, req)
}

func TestEncodeDecodeOps(t *testing.T) {
	ops := []xmltree.Op{
		{Kind: xmltree.OpAdd, Key: "item\x00x", Node: xmltree.MustParse(`<item name="x"/>`)},
		{Kind: xmltree.OpRemove, Key: "item\x00y", Node: xmltree.MustParse(`<item name="y"/>`)},
		{Kind: xmltree.OpModify, Key: "item\x00z", Node: xmltree.MustParse(`<item name="z"><phone>1</phone></item>`)},
	}
	back, err := DecodeOps(EncodeOps(ops))
	if err != nil {
		t.Fatalf("DecodeOps: %v", err)
	}
	if len(back) != 3 {
		t.Fatalf("len = %d", len(back))
	}
	for i := range ops {
		if back[i].Kind != ops[i].Kind || back[i].Key != ops[i].Key || !back[i].Node.Equal(ops[i].Node) {
			t.Errorf("op %d mismatch", i)
		}
	}
	if _, err := DecodeOps([]wire.SyncOp{{Kind: "explode"}}); err == nil {
		t.Error("bad kind accepted")
	}
	if _, err := DecodeOps([]wire.SyncOp{{Kind: "add", XML: "<broken"}}); err == nil {
		t.Error("bad XML accepted")
	}
}

func TestParsePolicy(t *testing.T) {
	if p, err := ParsePolicy(""); err != nil || p != ServerWins {
		t.Errorf("empty policy: %v %v", p, err)
	}
	for _, s := range []string{"server-wins", "client-wins", "merge"} {
		if _, err := ParsePolicy(s); err != nil {
			t.Errorf("ParsePolicy(%q): %v", s, err)
		}
	}
	if _, err := ParsePolicy("coin-flip"); err == nil {
		t.Error("bad policy accepted")
	}
}

func TestHandleDeltaBadInputs(t *testing.T) {
	eng, _ := newRig(t)
	srv := &Server{Store: eng, Keys: xmltree.DefaultKeys}
	if _, err := srv.HandleDelta("alice", bookPath, &wire.SyncDeltaRequest{Policy: "bogus"}); err == nil {
		t.Error("bad policy accepted")
	}
	if _, err := srv.HandleDelta("alice", bookPath, &wire.SyncDeltaRequest{XML: "<broken"}); err == nil {
		t.Error("bad XML accepted")
	}
	if _, err := srv.HandleDelta("alice", bookPath, &wire.SyncDeltaRequest{
		Ops: []wire.SyncOp{{Kind: "zap"}},
	}); err == nil {
		t.Error("bad ops accepted")
	}
}

func TestRepeatedSyncIdempotent(t *testing.T) {
	eng, tr := newRig(t)
	eng.Put("alice", bookPath, book("a", "1", "b", "2"))
	d := NewDevice(xmltree.DefaultKeys)
	d.Sync(context.Background(), tr, ServerWins)
	before := d.Local.String()
	for i := 0; i < 3; i++ {
		st, err := d.Sync(context.Background(), tr, ServerWins)
		if err != nil {
			t.Fatalf("sync %d: %v", i, err)
		}
		if st.Slow || st.OpsSent != 0 || st.OpsReceived != 0 {
			t.Errorf("idle sync %d did work: %+v", i, st)
		}
	}
	if d.Local.String() != before {
		t.Error("idle syncs changed state")
	}
}

// Slow sync with data on both sides exercises ReconcileSlow: overlapping
// items count as conflicts and resolve by policy.
func TestSlowSyncReconciliation(t *testing.T) {
	for _, tc := range []struct {
		pol       Policy
		wantPhone string
	}{
		{ServerWins, "SERVER"},
		{ClientWins, "CLIENT"},
		{Merge, "CLIENT"}, // merge prefers the client side for slow sync
	} {
		eng, tr := newRig(t)
		eng.Put("alice", bookPath, book("rick", "SERVER", "serverOnly", "1"))

		d := NewDevice(xmltree.DefaultKeys)
		d.Local = book("rick", "CLIENT", "clientOnly", "2")
		// Anchor 0 forces the slow path even though the server has state.
		st, err := d.Sync(context.Background(), tr, tc.pol)
		if err != nil {
			t.Fatalf("%s: %v", tc.pol, err)
		}
		if !st.Slow {
			t.Fatalf("%s: expected slow sync", tc.pol)
		}
		if st.Conflicts != 1 {
			t.Errorf("%s: conflicts = %d, want 1 (rick)", tc.pol, st.Conflicts)
		}
		got := names(d.Local)
		if len(got) != 3 {
			t.Fatalf("%s: merged = %v", tc.pol, got)
		}
		if got["rick"] != tc.wantPhone {
			t.Errorf("%s: rick = %q, want %q", tc.pol, got["rick"], tc.wantPhone)
		}
		if got["serverOnly"] != "1" || got["clientOnly"] != "2" {
			t.Errorf("%s: union lost items: %v", tc.pol, got)
		}
		// Device and server agree after the slow sync.
		serverComp, _, _ := eng.GetComponent("alice", bookPath)
		if fmt.Sprint(names(serverComp)) != fmt.Sprint(got) {
			t.Errorf("%s: divergence: %v vs %v", tc.pol, names(serverComp), got)
		}
	}
}
