package syncml_test

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"gupster/internal/store"
	. "gupster/internal/syncml"
	"gupster/internal/wire"
	"gupster/internal/xmltree"
	"gupster/internal/xpath"
)

// Property: after any interleaving of random device-side edits, server-side
// edits, and sync rounds, one final sync converges device and server to an
// identical item set (server-wins policy). This is the core invariant of
// §2.3 requirement 7.
func TestQuickSyncConvergence(t *testing.T) {
	path := xpath.MustParse("/user[@id='u']/address-book")

	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		eng := store.NewEngine("s")
		srv := &Server{Store: eng, Keys: xmltree.DefaultKeys}
		tr := &propTransport{srv: srv, path: path}

		// Seed server state.
		eng.Put("u", path, randBook(rng, 6))
		dev := NewDevice(xmltree.DefaultKeys)
		if _, err := dev.Sync(context.Background(), tr, ServerWins); err != nil {
			return false
		}

		// Random interleaving of edits and syncs.
		steps := 3 + rng.Intn(6)
		for i := 0; i < steps; i++ {
			switch rng.Intn(3) {
			case 0: // device edit
				dev.Edit(func(local *xmltree.Node) *xmltree.Node {
					return mutateBook(rng, local)
				})
			case 1: // server edit
				comp, _, err := eng.GetComponent("u", path)
				if err != nil {
					comp = xmltree.New("address-book")
				}
				eng.Put("u", path, mutateBook(rng, comp))
			case 2: // sync
				if _, err := dev.Sync(context.Background(), tr, ServerWins); err != nil {
					return false
				}
			}
		}
		// Final reconciliation.
		if _, err := dev.Sync(context.Background(), tr, ServerWins); err != nil {
			return false
		}
		serverComp, _, err := eng.GetComponent("u", path)
		if err != nil {
			return false
		}
		return sameItems(dev.Local, serverComp)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: convergence also holds under the client-wins and merge
// policies (the sides may disagree with server-wins outcomes, but never
// with each other).
func TestQuickSyncConvergenceAllPolicies(t *testing.T) {
	path := xpath.MustParse("/user[@id='u']/address-book")
	for _, pol := range []Policy{ServerWins, ClientWins, Merge} {
		pol := pol
		prop := func(seed int64) bool {
			rng := rand.New(rand.NewSource(seed))
			eng := store.NewEngine("s")
			srv := &Server{Store: eng, Keys: xmltree.DefaultKeys}
			tr := &propTransport{srv: srv, path: path}
			eng.Put("u", path, randBook(rng, 5))
			dev := NewDevice(xmltree.DefaultKeys)
			if _, err := dev.Sync(context.Background(), tr, pol); err != nil {
				return false
			}
			// Conflicting edits on both sides.
			dev.Edit(func(local *xmltree.Node) *xmltree.Node { return mutateBook(rng, local) })
			comp, _, _ := eng.GetComponent("u", path)
			eng.Put("u", path, mutateBook(rng, comp))
			if _, err := dev.Sync(context.Background(), tr, pol); err != nil {
				return false
			}
			serverComp, _, err := eng.GetComponent("u", path)
			if err != nil {
				return false
			}
			return sameItems(dev.Local, serverComp)
		}
		if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
			t.Errorf("policy %s: %v", pol, err)
		}
	}
}

type propTransport struct {
	srv  *Server
	path xpath.Path
}

func (t *propTransport) SyncStart(_ context.Context, lastAnchor uint64) (*wire.SyncStartResponse, error) {
	return t.srv.HandleStart("u", t.path, lastAnchor)
}

func (t *propTransport) SyncDelta(_ context.Context, req *wire.SyncDeltaRequest) (*wire.SyncDeltaResponse, error) {
	return t.srv.HandleDelta("u", t.path, req)
}

func randBook(rng *rand.Rand, maxItems int) *xmltree.Node {
	book := xmltree.New("address-book")
	used := map[string]bool{}
	for i := 0; i < rng.Intn(maxItems+1); i++ {
		name := fmt.Sprintf("p%d", rng.Intn(2*maxItems))
		if used[name] {
			continue
		}
		used[name] = true
		item := xmltree.New("item").SetAttr("name", name)
		item.Add(xmltree.NewText("phone", fmt.Sprintf("%05d", rng.Intn(100000))))
		book.Add(item)
	}
	return book
}

// mutateBook adds, removes, or modifies a random item.
func mutateBook(rng *rand.Rand, book *xmltree.Node) *xmltree.Node {
	out := book.Clone()
	items := out.ChildrenNamed("item")
	switch op := rng.Intn(3); {
	case op == 0 || len(items) == 0: // add
		name := fmt.Sprintf("p%d", rng.Intn(20))
		for _, it := range items {
			if v, _ := it.Attr("name"); v == name {
				name = fmt.Sprintf("new%d", rng.Intn(1000))
				break
			}
		}
		item := xmltree.New("item").SetAttr("name", name)
		item.Add(xmltree.NewText("phone", fmt.Sprintf("%05d", rng.Intn(100000))))
		out.Add(item)
	case op == 1: // remove
		out.RemoveChild(items[rng.Intn(len(items))])
	default: // modify
		it := items[rng.Intn(len(items))]
		if len(it.Children) > 0 {
			it.Children[0].Text = fmt.Sprintf("%05d", rng.Intn(100000))
		}
	}
	return out
}

func sameItems(a, b *xmltree.Node) bool {
	if a == nil || b == nil {
		return a == b
	}
	index := func(n *xmltree.Node) []string {
		var out []string
		for _, it := range n.ChildrenNamed("item") {
			out = append(out, it.String())
		}
		sort.Strings(out)
		return out
	}
	ia, ib := index(a), index(b)
	if len(ia) != len(ib) {
		return false
	}
	for i := range ia {
		if ia[i] != ib[i] {
			return false
		}
	}
	return true
}
