package syncml

import (
	"context"
	"errors"
	"fmt"

	"gupster/internal/schema"
	"gupster/internal/wire"
	"gupster/internal/xmltree"
	"gupster/internal/xpath"
)

// ComponentStore is the storage interface the server half of the protocol
// needs; *store.Engine satisfies it.
type ComponentStore interface {
	GetComponent(user string, path xpath.Path) (*xmltree.Node, uint64, error)
	Put(user string, path xpath.Path, frag *xmltree.Node) (uint64, error)
	ChangesSince(user string, path xpath.Path, since uint64) ([]xmltree.Op, bool)
	ComponentVersion(user string, path xpath.Path) uint64
}

// Server is the store-side sync endpoint for one engine.
type Server struct {
	Store ComponentStore
	Keys  xmltree.KeySpec
	// Adjuncts, when non-nil, supplies the default reconciliation policy
	// for components whose sync request names none — the Schema Adjunct
	// Framework integration (paper requirement 8: meta-data carries "rules
	// for data reconciliation").
	Adjuncts *schema.Adjuncts
}

// policyFor resolves the effective reconciliation policy: an explicit
// request policy wins; otherwise the schema adjunct for the component;
// otherwise server-wins.
func (s *Server) policyFor(path xpath.Path, requested string) (Policy, error) {
	if requested != "" {
		return ParsePolicy(requested)
	}
	if s.Adjuncts != nil {
		if adj, ok := s.Adjuncts.Lookup(path); ok && adj.ReconcilePolicy != "" {
			return ParsePolicy(adj.ReconcilePolicy)
		}
	}
	return ServerWins, nil
}

// HandleStart answers a sync-start: fast (delta) when the change log covers
// the device's anchor, slow (full transfer) otherwise.
func (s *Server) HandleStart(user string, path xpath.Path, lastAnchor uint64) (*wire.SyncStartResponse, error) {
	cur := s.Store.ComponentVersion(user, path)
	if lastAnchor != 0 && cur != 0 {
		if ops, ok := s.Store.ChangesSince(user, path, lastAnchor); ok {
			return &wire.SyncStartResponse{
				Slow:      false,
				ServerOps: EncodeOps(ops),
				Anchor:    cur,
			}, nil
		}
	}
	comp, v, err := s.Store.GetComponent(user, path)
	if err != nil {
		// Nothing stored yet: a slow sync against an empty component.
		return &wire.SyncStartResponse{Slow: true, Anchor: cur}, nil
	}
	return &wire.SyncStartResponse{Slow: true, Anchor: v, XML: comp.String()}, nil
}

// HandleDelta concludes a session: it reconciles the device's edits (fast)
// or full state (slow) with the store and persists the result.
func (s *Server) HandleDelta(user string, path xpath.Path, req *wire.SyncDeltaRequest) (*wire.SyncDeltaResponse, error) {
	pol, err := s.policyFor(path, req.Policy)
	if err != nil {
		return nil, err
	}
	if req.XML != "" {
		// Slow sync: full client state.
		client, err := xmltree.ParseString(req.XML)
		if err != nil {
			return nil, fmt.Errorf("syncml: client state: %w", err)
		}
		server, _, gerr := s.Store.GetComponent(user, path)
		var result *xmltree.Node
		conflicts := 0
		if gerr != nil {
			result = client
		} else {
			result, conflicts = ReconcileSlow(server, client, pol, s.Keys)
		}
		v, err := s.Store.Put(user, path, result)
		if err != nil {
			return nil, err
		}
		return &wire.SyncDeltaResponse{Anchor: v, XML: result.String(), Conflicts: conflicts}, nil
	}

	// Fast sync: item edits against the shared anchor.
	clientOps, err := DecodeOps(req.Ops)
	if err != nil {
		return nil, err
	}
	serverOps, ok := s.Store.ChangesSince(user, path, req.LastAnchor)
	if !ok {
		return nil, errors.New("syncml: anchor no longer serviceable; restart with slow sync")
	}
	server, _, err := s.Store.GetComponent(user, path)
	if err != nil {
		return nil, err
	}
	// If another writer advanced the component after SyncStart, the device
	// replayed a stale server-op stream; it must take our authoritative
	// state instead of reconstructing its own.
	raced := req.StartAnchor != 0 && s.Store.ComponentVersion(user, path) != req.StartAnchor
	if len(clientOps) == 0 {
		resp := &wire.SyncDeltaResponse{Anchor: s.Store.ComponentVersion(user, path)}
		if raced {
			resp.XML = server.String()
		}
		return resp, nil
	}
	result, conflicts := Reconcile(server, serverOps, clientOps, pol, s.Keys)
	v, err := s.Store.Put(user, path, result)
	if err != nil {
		return nil, err
	}
	resp := &wire.SyncDeltaResponse{Anchor: v, Conflicts: conflicts}
	if conflicts > 0 || raced {
		// The device cannot predict the resolution; ship the full state.
		resp.XML = result.String()
	}
	return resp, nil
}

// Transport abstracts how a device reaches its store; the store client
// implements it over the wire protocol, and tests implement it in-process.
type Transport interface {
	SyncStart(ctx context.Context, lastAnchor uint64) (*wire.SyncStartResponse, error)
	SyncDelta(ctx context.Context, req *wire.SyncDeltaRequest) (*wire.SyncDeltaResponse, error)
}

// Stats reports what one sync session did and cost.
type Stats struct {
	// Slow reports whether the session fell back to full transfer.
	Slow bool
	// Conflicts resolved by policy.
	Conflicts int
	// BytesUp and BytesDown approximate payload volume (serialized ops and
	// component XML), the quantity benchmark E5 tracks.
	BytesUp, BytesDown int
	// OpsSent and OpsReceived count item edits exchanged.
	OpsSent, OpsReceived int
}

// Device is the client half: it keeps the live local component, the shadow
// copy from the last reconciliation, and the anchor.
type Device struct {
	// Keys drives item identity.
	Keys xmltree.KeySpec
	// Local is the device's live component state (may be edited freely
	// between syncs).
	Local *xmltree.Node
	// base is the shadow: the reconciled state at Anchor.
	base *xmltree.Node
	// Anchor is the store version of the last reconciliation.
	Anchor uint64
}

// NewDevice returns a device with empty state that will slow-sync first.
func NewDevice(keys xmltree.KeySpec) *Device {
	return &Device{Keys: keys}
}

// Edit applies fn to the device's local state.
func (d *Device) Edit(fn func(local *xmltree.Node) *xmltree.Node) {
	d.Local = fn(d.Local)
}

// Dirty reports whether local edits exist since the last reconciliation.
func (d *Device) Dirty() bool {
	return len(xmltree.Diff(d.base, d.Local, d.Keys)) > 0
}

// Sync runs one complete session over the transport and reconciles the
// device to the store.
func (d *Device) Sync(ctx context.Context, t Transport, pol Policy) (Stats, error) {
	var st Stats
	start, err := t.SyncStart(ctx, d.Anchor)
	if err != nil {
		return st, err
	}
	st.BytesDown += len(start.XML)
	for _, op := range start.ServerOps {
		st.BytesDown += len(op.XML) + len(op.Key) + len(op.Kind)
	}
	st.OpsReceived = len(start.ServerOps)

	if start.Slow {
		st.Slow = true
		req := &wire.SyncDeltaRequest{LastAnchor: d.Anchor, Policy: string(pol)}
		if d.Local != nil {
			req.XML = d.Local.String()
		} else if start.XML != "" {
			// Nothing local: adopt server state without an upload.
			server, perr := xmltree.ParseString(start.XML)
			if perr != nil {
				return st, perr
			}
			d.Local = server
			d.base = server.Clone()
			d.Anchor = start.Anchor
			return st, nil
		} else {
			// Both sides empty.
			d.Anchor = start.Anchor
			return st, nil
		}
		st.BytesUp += len(req.XML)
		resp, err := t.SyncDelta(ctx, req)
		if err != nil {
			return st, err
		}
		st.BytesDown += len(resp.XML)
		st.Conflicts = resp.Conflicts
		final, err := xmltree.ParseString(resp.XML)
		if err != nil {
			return st, fmt.Errorf("syncml: reconciled state: %w", err)
		}
		d.Local = final
		d.base = final.Clone()
		d.Anchor = resp.Anchor
		return st, nil
	}

	// Fast sync.
	serverOps, err := DecodeOps(start.ServerOps)
	if err != nil {
		return st, err
	}
	clientOps := xmltree.Diff(d.base, d.Local, d.Keys)
	req := &wire.SyncDeltaRequest{
		LastAnchor:  d.Anchor,
		StartAnchor: start.Anchor,
		Ops:         EncodeOps(clientOps),
		Policy:      string(pol),
	}
	st.OpsSent = len(clientOps)
	for _, op := range req.Ops {
		st.BytesUp += len(op.XML) + len(op.Key) + len(op.Kind)
	}
	resp, err := t.SyncDelta(ctx, req)
	if err != nil {
		return st, err
	}
	st.BytesDown += len(resp.XML)
	st.Conflicts = resp.Conflicts

	var final *xmltree.Node
	if resp.XML != "" {
		final, err = xmltree.ParseString(resp.XML)
		if err != nil {
			return st, fmt.Errorf("syncml: reconciled state: %w", err)
		}
	} else {
		// No conflicts: replay both edit streams over the shadow.
		final = xmltree.Patch(d.base, serverOps, d.Keys)
		final = xmltree.Patch(final, clientOps, d.Keys)
	}
	d.Local = final
	d.base = final.Clone()
	d.Anchor = resp.Anchor
	return st, nil
}
