package xmltree

import (
	"encoding/xml"
	"errors"
	"fmt"
	"io"
	"strings"
)

// ErrEmpty is returned by Parse when the input contains no element.
var ErrEmpty = errors.New("xmltree: no element in input")

// Parse reads one XML element tree from r. Namespaces are flattened to local
// names, comments and processing instructions are skipped, and text runs are
// whitespace-trimmed and concatenated.
func Parse(r io.Reader) (*Node, error) {
	dec := xml.NewDecoder(r)
	for {
		tok, err := dec.Token()
		if err == io.EOF {
			return nil, ErrEmpty
		}
		if err != nil {
			return nil, fmt.Errorf("xmltree: %w", err)
		}
		if start, ok := tok.(xml.StartElement); ok {
			return parseElement(dec, start)
		}
	}
}

// ParseString is Parse over an in-memory document.
func ParseString(s string) (*Node, error) {
	return Parse(strings.NewReader(s))
}

// MustParse is ParseString that panics on malformed input; it is intended
// for tests and static fixtures.
func MustParse(s string) *Node {
	n, err := ParseString(s)
	if err != nil {
		panic(err)
	}
	return n
}

func parseElement(dec *xml.Decoder, start xml.StartElement) (*Node, error) {
	n := &Node{Name: start.Name.Local}
	for _, a := range start.Attr {
		if a.Name.Space == "xmlns" || a.Name.Local == "xmlns" {
			continue
		}
		n.SetAttr(a.Name.Local, a.Value)
	}
	var text strings.Builder
	for {
		tok, err := dec.Token()
		if err != nil {
			return nil, fmt.Errorf("xmltree: unterminated element <%s>: %w", n.Name, err)
		}
		switch t := tok.(type) {
		case xml.StartElement:
			child, err := parseElement(dec, t)
			if err != nil {
				return nil, err
			}
			n.Children = append(n.Children, child)
		case xml.EndElement:
			n.Text = strings.TrimSpace(text.String())
			return n, nil
		case xml.CharData:
			text.Write(t)
		}
	}
}
