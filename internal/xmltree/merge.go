package xmltree

import "sort"

// KeySpec names, per element name, the attribute that identifies an element
// instance for merging and diffing. This realizes the "Keys for XML" idea
// the paper cites: two <item> elements denote the same logical entry when
// their key attributes are equal.
//
// Elements without an entry in the spec are matched positionally by DeepUnion
// and treated as atomic by Diff.
type KeySpec map[string]string

// DefaultKeys is the key spec used by GUP profile components: entries and
// devices are identified by their id attribute, address book items by name.
var DefaultKeys = KeySpec{
	"item":    "name",
	"entry":   "id",
	"device":  "id",
	"user":    "id",
	"rule":    "id",
	"contact": "name",
	"event":   "id",
}

// keyOf returns the merge identity of a node under the spec: element name
// plus the key attribute's value when the spec defines one. The second
// result reports whether the node is keyed.
func (ks KeySpec) keyOf(n *Node) (string, bool) {
	attr, ok := ks[n.Name]
	if !ok {
		return "", false
	}
	v, ok := n.Attr(attr)
	if !ok {
		return "", false
	}
	return n.Name + "\x00" + v, true
}

// DeepUnion merges two component trees into a new tree, following the
// deterministic model for semistructured data (Buneman, Deutsch, Tan): keyed
// children with equal identity are merged recursively; all other children
// are concatenated, a's first. On conflicting text or attribute values at a
// merged node, a (the first argument) wins — callers encode source priority
// by argument order.
//
// Neither input is modified.
func DeepUnion(a, b *Node, keys KeySpec) *Node {
	if a == nil {
		return b.Clone()
	}
	if b == nil {
		return a.Clone()
	}
	out := &Node{Name: a.Name, Text: a.Text}
	if out.Text == "" {
		out.Text = b.Text
	}
	for k, v := range b.Attrs {
		out.SetAttr(k, v)
	}
	for k, v := range a.Attrs {
		out.SetAttr(k, v) // a wins on conflict
	}

	merged := make(map[string]*Node)
	var order []string
	var unkeyedA, unkeyedB []*Node
	for _, c := range a.Children {
		if k, ok := keys.keyOf(c); ok {
			if _, seen := merged[k]; !seen {
				order = append(order, k)
			}
			merged[k] = c.Clone()
		} else {
			unkeyedA = append(unkeyedA, c)
		}
	}
	for _, c := range b.Children {
		if k, ok := keys.keyOf(c); ok {
			if prev, seen := merged[k]; seen {
				merged[k] = DeepUnion(prev, c, keys)
			} else {
				order = append(order, k)
				merged[k] = c.Clone()
			}
		} else {
			unkeyedB = append(unkeyedB, c)
		}
	}

	// Unkeyed children with the same name that appear exactly once on each
	// side are merged structurally (e.g. a singleton <preferences> section);
	// everything else concatenates.
	singlesA := singletonsByName(unkeyedA)
	singlesB := singletonsByName(unkeyedB)
	usedB := make(map[*Node]bool)
	for _, c := range unkeyedA {
		if m, ok := singlesA[c.Name]; ok && m == c {
			if bc, ok := singlesB[c.Name]; ok {
				out.Children = append(out.Children, DeepUnion(c, bc, keys))
				usedB[bc] = true
				continue
			}
		}
		out.Children = append(out.Children, c.Clone())
	}
	for _, c := range unkeyedB {
		if !usedB[c] {
			out.Children = append(out.Children, c.Clone())
		}
	}
	for _, k := range order {
		out.Children = append(out.Children, merged[k])
	}
	return out
}

func singletonsByName(nodes []*Node) map[string]*Node {
	count := make(map[string]int)
	first := make(map[string]*Node)
	for _, n := range nodes {
		count[n.Name]++
		if count[n.Name] == 1 {
			first[n.Name] = n
		}
	}
	for name, c := range count {
		if c != 1 {
			delete(first, name)
		}
	}
	return first
}

// MergeAll deep-unions components in priority order: earlier arguments win
// conflicts. Nil entries are skipped; the result is nil when all are nil.
func MergeAll(keys KeySpec, components ...*Node) *Node {
	var out *Node
	for _, c := range components {
		if c == nil {
			continue
		}
		if out == nil {
			out = c.Clone()
			continue
		}
		out = DeepUnion(out, c, keys)
	}
	return out
}

// OpKind classifies a Diff edit.
type OpKind int

const (
	// OpAdd means the item exists only in the newer tree.
	OpAdd OpKind = iota
	// OpRemove means the item exists only in the older tree.
	OpRemove
	// OpModify means a keyed item exists in both trees with different content.
	OpModify
)

func (k OpKind) String() string {
	switch k {
	case OpAdd:
		return "add"
	case OpRemove:
		return "remove"
	case OpModify:
		return "modify"
	default:
		return "unknown"
	}
}

// Op is one item-granularity edit between two versions of a component. Key
// is the merge identity ("" for unkeyed structural changes rooted at the
// component itself); Node carries the new content for add/modify and the old
// content for remove.
type Op struct {
	Kind OpKind
	Key  string
	Node *Node
}

// Diff computes item-granularity edits that transform old into new, matching
// keyed children of the component root by identity. Unkeyed structural or
// text changes are reported as a single OpModify with an empty key carrying
// the whole new tree — the sync layer falls back to full transfer for those.
func Diff(oldT, newT *Node, keys KeySpec) []Op {
	var ops []Op
	if oldT == nil && newT == nil {
		return nil
	}
	if oldT == nil {
		return []Op{{Kind: OpModify, Node: newT.Clone()}}
	}
	if newT == nil {
		return []Op{{Kind: OpModify, Node: nil}}
	}

	oldKeyed, oldRest := splitKeyed(oldT, keys)
	newKeyed, newRest := splitKeyed(newT, keys)

	// Any difference outside the keyed children means the component shell
	// changed; report as a full modify.
	if !shellEqual(oldT, newT) || !unkeyedEqual(oldRest, newRest) {
		return []Op{{Kind: OpModify, Node: newT.Clone()}}
	}

	var addedKeys []string
	for k := range newKeyed {
		if _, ok := oldKeyed[k]; !ok {
			addedKeys = append(addedKeys, k)
		}
	}
	sort.Strings(addedKeys)
	for _, k := range addedKeys {
		ops = append(ops, Op{Kind: OpAdd, Key: k, Node: newKeyed[k].Clone()})
	}

	var removedKeys, modifiedKeys []string
	for k, o := range oldKeyed {
		n, ok := newKeyed[k]
		if !ok {
			removedKeys = append(removedKeys, k)
		} else if !o.Equal(n) {
			modifiedKeys = append(modifiedKeys, k)
		}
	}
	sort.Strings(removedKeys)
	sort.Strings(modifiedKeys)
	for _, k := range removedKeys {
		ops = append(ops, Op{Kind: OpRemove, Key: k, Node: oldKeyed[k].Clone()})
	}
	for _, k := range modifiedKeys {
		ops = append(ops, Op{Kind: OpModify, Key: k, Node: newKeyed[k].Clone()})
	}
	return ops
}

// Patch applies ops (as produced by Diff) to a clone of base and returns the
// result. A full-modify op (empty key) replaces the entire tree.
func Patch(base *Node, ops []Op, keys KeySpec) *Node {
	out := base.Clone()
	for _, op := range ops {
		if op.Key == "" {
			if op.Node == nil {
				return nil
			}
			out = op.Node.Clone()
			continue
		}
		switch op.Kind {
		case OpAdd:
			if out == nil {
				out = &Node{Name: op.Node.Name}
			}
			out.Children = append(out.Children, op.Node.Clone())
		case OpRemove:
			removeKeyed(out, op.Key, keys)
		case OpModify:
			if !replaceKeyed(out, op.Key, op.Node, keys) {
				out.Children = append(out.Children, op.Node.Clone())
			}
		}
	}
	return out
}

func splitKeyed(n *Node, keys KeySpec) (map[string]*Node, []*Node) {
	keyed := make(map[string]*Node)
	var rest []*Node
	for _, c := range n.Children {
		if k, ok := keys.keyOf(c); ok {
			keyed[k] = c
		} else {
			rest = append(rest, c)
		}
	}
	return keyed, rest
}

func shellEqual(a, b *Node) bool {
	if a.Name != b.Name || a.Text != b.Text || len(a.Attrs) != len(b.Attrs) {
		return false
	}
	for k, v := range a.Attrs {
		if bv, ok := b.Attrs[k]; !ok || bv != v {
			return false
		}
	}
	return true
}

func unkeyedEqual(a, b []*Node) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !a[i].Equal(b[i]) {
			return false
		}
	}
	return true
}

func removeKeyed(n *Node, key string, keys KeySpec) {
	for i, c := range n.Children {
		if k, ok := keys.keyOf(c); ok && k == key {
			n.Children = append(n.Children[:i], n.Children[i+1:]...)
			return
		}
	}
}

func replaceKeyed(n *Node, key string, repl *Node, keys KeySpec) bool {
	for i, c := range n.Children {
		if k, ok := keys.keyOf(c); ok && k == key {
			n.Children[i] = repl.Clone()
			return true
		}
	}
	return false
}
