package xmltree

import (
	"strings"
	"testing"
)

func TestParseRoundTrip(t *testing.T) {
	in := `<user id="arnaud"><address-book><item name="rick"><phone>908-582-1234</phone></item></address-book></user>`
	n, err := ParseString(in)
	if err != nil {
		t.Fatalf("ParseString: %v", err)
	}
	if n.Name != "user" {
		t.Errorf("root name = %q, want user", n.Name)
	}
	if id, _ := n.Attr("id"); id != "arnaud" {
		t.Errorf("id = %q, want arnaud", id)
	}
	out := n.String()
	n2, err := ParseString(out)
	if err != nil {
		t.Fatalf("reparse: %v", err)
	}
	if !n.Equal(n2) {
		t.Errorf("round trip mismatch:\n%s\n%s", n.Indent(), n2.Indent())
	}
}

func TestParseEmpty(t *testing.T) {
	if _, err := ParseString("   "); err != ErrEmpty {
		t.Errorf("err = %v, want ErrEmpty", err)
	}
}

func TestParseMalformed(t *testing.T) {
	for _, in := range []string{"<a><b></a>", "<a", "<a></b>"} {
		if _, err := ParseString(in); err == nil {
			t.Errorf("ParseString(%q): want error", in)
		}
	}
}

func TestParseSkipsCommentsAndDecls(t *testing.T) {
	in := `<?xml version="1.0"?><!-- profile --><p><!-- inner --><q>x</q></p>`
	n, err := ParseString(in)
	if err != nil {
		t.Fatalf("ParseString: %v", err)
	}
	if n.Name != "p" || n.ChildText("q") != "x" {
		t.Errorf("got %s", n)
	}
}

func TestEscaping(t *testing.T) {
	n := New("a").SetAttr("v", `x<y&"z"`)
	n.Add(NewText("t", "1 < 2 & 3 > 2"))
	out := n.String()
	n2, err := ParseString(out)
	if err != nil {
		t.Fatalf("reparse escaped: %v (doc %q)", err, out)
	}
	if v, _ := n2.Attr("v"); v != `x<y&"z"` {
		t.Errorf("attr = %q", v)
	}
	if n2.ChildText("t") != "1 < 2 & 3 > 2" {
		t.Errorf("text = %q", n2.ChildText("t"))
	}
}

func TestCanonicalAttrOrder(t *testing.T) {
	a := New("e").SetAttr("b", "2").SetAttr("a", "1")
	b := New("e").SetAttr("a", "1").SetAttr("b", "2")
	if a.String() != b.String() {
		t.Errorf("canonical forms differ: %q vs %q", a, b)
	}
	if !strings.Contains(a.String(), `a="1" b="2"`) {
		t.Errorf("attrs not sorted: %q", a)
	}
}

func TestCloneIndependence(t *testing.T) {
	n := MustParse(`<a x="1"><b>t</b></a>`)
	c := n.Clone()
	c.SetAttr("x", "2")
	c.Children[0].Text = "u"
	if v, _ := n.Attr("x"); v != "1" {
		t.Errorf("clone mutated original attr")
	}
	if n.Children[0].Text != "t" {
		t.Errorf("clone mutated original child")
	}
}

func TestEqual(t *testing.T) {
	cases := []struct {
		a, b string
		want bool
	}{
		{`<a/>`, `<a/>`, true},
		{`<a/>`, `<b/>`, false},
		{`<a x="1"/>`, `<a x="1"/>`, true},
		{`<a x="1"/>`, `<a x="2"/>`, false},
		{`<a><b/><c/></a>`, `<a><b/><c/></a>`, true},
		{`<a><b/><c/></a>`, `<a><c/><b/></a>`, false},
		{`<a>t</a>`, `<a>u</a>`, false},
	}
	for _, c := range cases {
		if got := MustParse(c.a).Equal(MustParse(c.b)); got != c.want {
			t.Errorf("Equal(%s, %s) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestChildHelpers(t *testing.T) {
	n := MustParse(`<a><b>1</b><c/><b>2</b></a>`)
	if n.Child("b").Text != "1" {
		t.Errorf("Child returned wrong node")
	}
	if n.Child("zz") != nil {
		t.Errorf("Child(zz) should be nil")
	}
	if got := len(n.ChildrenNamed("b")); got != 2 {
		t.Errorf("ChildrenNamed(b) = %d, want 2", got)
	}
	if n.ChildText("c") != "" {
		t.Errorf("ChildText(c) = %q", n.ChildText("c"))
	}
	c := n.Child("c")
	if !n.RemoveChild(c) {
		t.Errorf("RemoveChild failed")
	}
	if n.RemoveChild(c) {
		t.Errorf("RemoveChild succeeded twice")
	}
	if len(n.Children) != 2 {
		t.Errorf("children after remove = %d", len(n.Children))
	}
}

func TestWalkAndCount(t *testing.T) {
	n := MustParse(`<a><b><c/></b><d/></a>`)
	if n.Count() != 4 {
		t.Errorf("Count = %d, want 4", n.Count())
	}
	// Skipping b's subtree should visit a, b, d only.
	visited := 0
	n.Walk(func(m *Node) bool {
		visited++
		return m.Name != "b"
	})
	if visited != 3 {
		t.Errorf("visited = %d, want 3", visited)
	}
}

func TestDeepUnionKeyed(t *testing.T) {
	a := MustParse(`<address-book><item name="rick"><phone>111</phone></item><item name="dan"><phone>222</phone></item></address-book>`)
	b := MustParse(`<address-book><item name="rick"><email>r@x</email></item><item name="ming"><phone>333</phone></item></address-book>`)
	u := DeepUnion(a, b, DefaultKeys)
	if got := len(u.ChildrenNamed("item")); got != 3 {
		t.Fatalf("union items = %d, want 3\n%s", got, u.Indent())
	}
	var rick *Node
	for _, it := range u.ChildrenNamed("item") {
		if v, _ := it.Attr("name"); v == "rick" {
			rick = it
		}
	}
	if rick == nil {
		t.Fatal("rick missing from union")
	}
	if rick.ChildText("phone") != "111" || rick.ChildText("email") != "r@x" {
		t.Errorf("rick not merged: %s", rick)
	}
}

func TestDeepUnionConflictFirstWins(t *testing.T) {
	a := MustParse(`<item name="rick"><phone>AAA</phone></item>`)
	b := MustParse(`<item name="rick"><phone>BBB</phone></item>`)
	u := DeepUnion(a, b, DefaultKeys)
	if u.ChildText("phone") != "AAA" {
		t.Errorf("phone = %q, want AAA (first argument priority)", u.ChildText("phone"))
	}
	// Attribute conflicts too.
	x := MustParse(`<pref ring="loud"/>`)
	y := MustParse(`<pref ring="silent" lang="fr"/>`)
	u2 := DeepUnion(x, y, DefaultKeys)
	if v, _ := u2.Attr("ring"); v != "loud" {
		t.Errorf("ring = %q, want loud", v)
	}
	if v, _ := u2.Attr("lang"); v != "fr" {
		t.Errorf("lang = %q, want fr", v)
	}
}

func TestDeepUnionNil(t *testing.T) {
	n := MustParse(`<a/>`)
	if u := DeepUnion(nil, n, nil); !u.Equal(n) {
		t.Errorf("DeepUnion(nil, n) != n")
	}
	if u := DeepUnion(n, nil, nil); !u.Equal(n) {
		t.Errorf("DeepUnion(n, nil) != n")
	}
}

func TestDeepUnionDoesNotMutateInputs(t *testing.T) {
	a := MustParse(`<address-book><item name="r"><phone>1</phone></item></address-book>`)
	b := MustParse(`<address-book><item name="r"><email>e</email></item></address-book>`)
	aCopy, bCopy := a.Clone(), b.Clone()
	DeepUnion(a, b, DefaultKeys)
	if !a.Equal(aCopy) || !b.Equal(bCopy) {
		t.Errorf("DeepUnion mutated an input")
	}
}

func TestDeepUnionSingletonSections(t *testing.T) {
	a := MustParse(`<profile><prefs><ring>loud</ring></prefs></profile>`)
	b := MustParse(`<profile><prefs><lang>fr</lang></prefs></profile>`)
	u := DeepUnion(a, b, DefaultKeys)
	if got := len(u.ChildrenNamed("prefs")); got != 1 {
		t.Fatalf("prefs sections = %d, want 1 (singleton merge)\n%s", got, u.Indent())
	}
	p := u.Child("prefs")
	if p.ChildText("ring") != "loud" || p.ChildText("lang") != "fr" {
		t.Errorf("prefs not merged: %s", p)
	}
}

func TestMergeAllPriority(t *testing.T) {
	hi := MustParse(`<item name="r"><phone>HI</phone></item>`)
	lo := MustParse(`<item name="r"><phone>LO</phone><email>e</email></item>`)
	u := MergeAll(DefaultKeys, hi, nil, lo)
	if u.ChildText("phone") != "HI" {
		t.Errorf("phone = %q, want HI", u.ChildText("phone"))
	}
	if u.ChildText("email") != "e" {
		t.Errorf("email missing")
	}
	if MergeAll(DefaultKeys, nil, nil) != nil {
		t.Errorf("MergeAll(nil,nil) should be nil")
	}
}

func TestDiffAndPatch(t *testing.T) {
	oldT := MustParse(`<address-book><item name="rick"><phone>1</phone></item><item name="dan"><phone>2</phone></item></address-book>`)
	newT := MustParse(`<address-book><item name="rick"><phone>9</phone></item><item name="ming"><phone>3</phone></item></address-book>`)
	ops := Diff(oldT, newT, DefaultKeys)
	kinds := map[OpKind]int{}
	for _, op := range ops {
		kinds[op.Kind]++
	}
	if kinds[OpAdd] != 1 || kinds[OpRemove] != 1 || kinds[OpModify] != 1 {
		t.Fatalf("ops = %+v", ops)
	}
	patched := Patch(oldT, ops, DefaultKeys)
	// Patched must contain exactly new's items (order may differ).
	if !MergeAll(DefaultKeys, patched).Equal(MergeAll(DefaultKeys, patched)) {
		t.Fatal("sanity")
	}
	if got := len(patched.ChildrenNamed("item")); got != 2 {
		t.Fatalf("patched items = %d\n%s", got, patched.Indent())
	}
	byName := map[string]*Node{}
	for _, it := range patched.ChildrenNamed("item") {
		v, _ := it.Attr("name")
		byName[v] = it
	}
	if byName["rick"] == nil || byName["rick"].ChildText("phone") != "9" {
		t.Errorf("rick not modified")
	}
	if byName["ming"] == nil {
		t.Errorf("ming not added")
	}
	if byName["dan"] != nil {
		t.Errorf("dan not removed")
	}
}

func TestDiffIdentical(t *testing.T) {
	n := MustParse(`<address-book><item name="r"><phone>1</phone></item></address-book>`)
	if ops := Diff(n, n.Clone(), DefaultKeys); len(ops) != 0 {
		t.Errorf("Diff(identical) = %+v", ops)
	}
}

func TestDiffShellChangeFallsBackToFull(t *testing.T) {
	oldT := MustParse(`<book owner="a"><item name="r"/></book>`)
	newT := MustParse(`<book owner="b"><item name="r"/></book>`)
	ops := Diff(oldT, newT, DefaultKeys)
	if len(ops) != 1 || ops[0].Key != "" || ops[0].Kind != OpModify {
		t.Fatalf("ops = %+v", ops)
	}
	patched := Patch(oldT, ops, DefaultKeys)
	if !patched.Equal(newT) {
		t.Errorf("full patch mismatch")
	}
}

func TestDiffNilCases(t *testing.T) {
	n := MustParse(`<a/>`)
	if ops := Diff(nil, n, nil); len(ops) != 1 || ops[0].Node == nil {
		t.Errorf("Diff(nil, n) = %+v", ops)
	}
	if ops := Diff(n, nil, nil); len(ops) != 1 || ops[0].Node != nil {
		t.Errorf("Diff(n, nil) = %+v", ops)
	}
	if ops := Diff(nil, nil, nil); ops != nil {
		t.Errorf("Diff(nil, nil) = %+v", ops)
	}
}

func TestOpKindString(t *testing.T) {
	if OpAdd.String() != "add" || OpRemove.String() != "remove" || OpModify.String() != "modify" || OpKind(99).String() != "unknown" {
		t.Error("OpKind.String mismatch")
	}
}

func TestSizePositive(t *testing.T) {
	n := MustParse(`<a><b>x</b></a>`)
	if n.Size() != len(n.String()) {
		t.Errorf("Size != len(String)")
	}
}
