// Package xmltree implements the XML data model underlying GUP profile
// components: an ordered tree of elements with attributes and text, plus the
// operations the GUPster framework needs on top of plain parsing —
// canonicalization, structural equality, deep union (Buneman et al.'s
// deterministic merge), key-based diffing, and path navigation.
//
// The model is deliberately simpler than full XML: no namespaces, no
// processing instructions, no mixed content beyond a single text run per
// element. That matches the paper's use of XML as a nested data model for
// profile components rather than as a document format.
package xmltree

import (
	"sort"
	"strings"
)

// Node is one element in a profile component tree. The zero value is an
// unnamed empty element, which is rarely useful; build trees with New or
// Parse.
type Node struct {
	// Name is the element name, e.g. "address-book".
	Name string
	// Attrs holds the element's attributes. Serialization orders keys
	// lexicographically so canonical output is deterministic.
	Attrs map[string]string
	// Text is the element's text content. Elements with children normally
	// have empty Text; if both are present, Text serializes first.
	Text string
	// Children are the ordered child elements.
	Children []*Node
}

// New returns a named element with no attributes or children.
func New(name string) *Node {
	return &Node{Name: name}
}

// NewText returns a named element holding only text content.
func NewText(name, text string) *Node {
	return &Node{Name: name, Text: text}
}

// Attr returns the value of the named attribute and whether it is present.
func (n *Node) Attr(name string) (string, bool) {
	v, ok := n.Attrs[name]
	return v, ok
}

// SetAttr sets an attribute, allocating the map on first use, and returns n
// for chaining.
func (n *Node) SetAttr(name, value string) *Node {
	if n.Attrs == nil {
		n.Attrs = make(map[string]string)
	}
	n.Attrs[name] = value
	return n
}

// Add appends children and returns n for chaining.
func (n *Node) Add(children ...*Node) *Node {
	n.Children = append(n.Children, children...)
	return n
}

// Child returns the first child with the given name, or nil.
func (n *Node) Child(name string) *Node {
	for _, c := range n.Children {
		if c.Name == name {
			return c
		}
	}
	return nil
}

// ChildText returns the text of the first child with the given name, or "".
func (n *Node) ChildText(name string) string {
	if c := n.Child(name); c != nil {
		return c.Text
	}
	return ""
}

// ChildrenNamed returns all children with the given name, in order.
func (n *Node) ChildrenNamed(name string) []*Node {
	var out []*Node
	for _, c := range n.Children {
		if c.Name == name {
			out = append(out, c)
		}
	}
	return out
}

// RemoveChild removes the first child identical (by pointer) to c and
// reports whether it was found.
func (n *Node) RemoveChild(c *Node) bool {
	for i, ch := range n.Children {
		if ch == c {
			n.Children = append(n.Children[:i], n.Children[i+1:]...)
			return true
		}
	}
	return false
}

// Clone returns a deep copy of the subtree rooted at n.
func (n *Node) Clone() *Node {
	if n == nil {
		return nil
	}
	out := &Node{Name: n.Name, Text: n.Text}
	if len(n.Attrs) > 0 {
		out.Attrs = make(map[string]string, len(n.Attrs))
		for k, v := range n.Attrs {
			out.Attrs[k] = v
		}
	}
	if len(n.Children) > 0 {
		out.Children = make([]*Node, len(n.Children))
		for i, c := range n.Children {
			out.Children[i] = c.Clone()
		}
	}
	return out
}

// Equal reports deep structural equality: same name, attributes, text, and
// the same children in the same order.
func (n *Node) Equal(m *Node) bool {
	if n == nil || m == nil {
		return n == m
	}
	if n.Name != m.Name || n.Text != m.Text || len(n.Attrs) != len(m.Attrs) || len(n.Children) != len(m.Children) {
		return false
	}
	for k, v := range n.Attrs {
		if mv, ok := m.Attrs[k]; !ok || mv != v {
			return false
		}
	}
	for i := range n.Children {
		if !n.Children[i].Equal(m.Children[i]) {
			return false
		}
	}
	return true
}

// Walk visits n and every descendant in document order. If fn returns false
// the walk skips that node's subtree (the walk itself continues elsewhere).
func (n *Node) Walk(fn func(*Node) bool) {
	if n == nil {
		return
	}
	if !fn(n) {
		return
	}
	for _, c := range n.Children {
		c.Walk(fn)
	}
}

// Count returns the number of elements in the subtree rooted at n.
func (n *Node) Count() int {
	total := 0
	n.Walk(func(*Node) bool { total++; return true })
	return total
}

// sortedAttrKeys returns attribute names in lexicographic order.
func (n *Node) sortedAttrKeys() []string {
	keys := make([]string, 0, len(n.Attrs))
	for k := range n.Attrs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// String renders the subtree as compact XML with lexicographically ordered
// attributes, suitable for hashing and comparison.
func (n *Node) String() string {
	var b strings.Builder
	n.write(&b, -1, 0)
	return b.String()
}

// Indent renders the subtree as indented XML for human consumption.
func (n *Node) Indent() string {
	var b strings.Builder
	n.write(&b, 0, 0)
	return b.String()
}

func (n *Node) write(b *strings.Builder, indent, depth int) {
	pad := func() {
		if indent >= 0 {
			for i := 0; i < depth*2; i++ {
				b.WriteByte(' ')
			}
		}
	}
	nl := func() {
		if indent >= 0 {
			b.WriteByte('\n')
		}
	}
	pad()
	b.WriteByte('<')
	b.WriteString(n.Name)
	for _, k := range n.sortedAttrKeys() {
		b.WriteByte(' ')
		b.WriteString(k)
		b.WriteString(`="`)
		b.WriteString(escapeAttr(n.Attrs[k]))
		b.WriteByte('"')
	}
	if n.Text == "" && len(n.Children) == 0 {
		b.WriteString("/>")
		nl()
		return
	}
	b.WriteByte('>')
	if n.Text != "" {
		b.WriteString(escapeText(n.Text))
	}
	if len(n.Children) > 0 {
		nl()
		for _, c := range n.Children {
			c.write(b, indent, depth+1)
		}
		pad()
	}
	b.WriteString("</")
	b.WriteString(n.Name)
	b.WriteByte('>')
	nl()
}

// The replacers are package-level: a strings.Replacer builds its matching
// machinery on first use, so constructing one per escape call rebuilt that
// machinery for every attribute and text node serialized — pure allocation
// churn on the fetch hot path.
var (
	textEscaper = strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;")
	attrEscaper = strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
)

func escapeText(s string) string { return textEscaper.Replace(s) }

func escapeAttr(s string) string { return attrEscaper.Replace(s) }

// Size returns the length in bytes of the compact serialization. It is the
// unit used by benchmarks when reporting bytes moved.
func (n *Node) Size() int {
	return len(n.String())
}
