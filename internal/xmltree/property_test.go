package xmltree

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

// genBook builds a random keyed address book: item names drawn from a
// small space (forcing key collisions across books), each with random
// phone/email children.
func genBook(rng *rand.Rand, maxItems int) *Node {
	book := New("address-book")
	n := rng.Intn(maxItems + 1)
	used := map[string]bool{}
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("p%d", rng.Intn(2*maxItems))
		if used[name] {
			continue
		}
		used[name] = true
		item := New("item").SetAttr("name", name)
		if rng.Intn(2) == 0 {
			item.SetAttr("type", []string{"personal", "corporate"}[rng.Intn(2)])
		}
		item.Add(NewText("phone", fmt.Sprintf("%06d", rng.Intn(1000000))))
		if rng.Intn(3) == 0 {
			item.Add(NewText("email", fmt.Sprintf("e%d@x", rng.Intn(100))))
		}
		book.Add(item)
	}
	return book
}

func itemKeys(n *Node) []string {
	var ks []string
	for _, it := range n.ChildrenNamed("item") {
		v, _ := it.Attr("name")
		ks = append(ks, v)
	}
	sort.Strings(ks)
	return ks
}

// Property: serialization round-trips for arbitrary generated trees.
func TestQuickSerializationRoundTrip(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := genBook(rng, 8)
		back, err := ParseString(n.String())
		if err != nil {
			return false
		}
		return n.Equal(back)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: DeepUnion is idempotent on keyed trees — u(a, a) has the same
// item set and content as a.
func TestQuickDeepUnionIdempotent(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := genBook(rng, 8)
		u := DeepUnion(a, a, DefaultKeys)
		if len(u.ChildrenNamed("item")) != len(a.ChildrenNamed("item")) {
			return false
		}
		ka, ku := itemKeys(a), itemKeys(u)
		for i := range ka {
			if ka[i] != ku[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: the union contains exactly the key-set union of its inputs.
func TestQuickDeepUnionKeyUnion(t *testing.T) {
	prop := func(seedA, seedB int64) bool {
		a := genBook(rand.New(rand.NewSource(seedA)), 8)
		b := genBook(rand.New(rand.NewSource(seedB)), 8)
		u := DeepUnion(a, b, DefaultKeys)
		want := map[string]bool{}
		for _, k := range itemKeys(a) {
			want[k] = true
		}
		for _, k := range itemKeys(b) {
			want[k] = true
		}
		got := itemKeys(u)
		if len(got) != len(want) {
			return false
		}
		for _, k := range got {
			if !want[k] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: union is commutative up to item order and first-wins conflict
// resolution — the key sets agree in both directions, and for items present
// on only one side, content agrees too.
func TestQuickDeepUnionCommutativeKeySet(t *testing.T) {
	prop := func(seedA, seedB int64) bool {
		a := genBook(rand.New(rand.NewSource(seedA)), 8)
		b := genBook(rand.New(rand.NewSource(seedB)), 8)
		ab := DeepUnion(a, b, DefaultKeys)
		ba := DeepUnion(b, a, DefaultKeys)
		ka, kb := itemKeys(ab), itemKeys(ba)
		if len(ka) != len(kb) {
			return false
		}
		for i := range ka {
			if ka[i] != kb[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: Patch(old, Diff(old, new)) reproduces new's keyed item set and
// per-item content (order may differ).
func TestQuickDiffPatchRoundTrip(t *testing.T) {
	prop := func(seedA, seedB int64) bool {
		oldT := genBook(rand.New(rand.NewSource(seedA)), 8)
		newT := genBook(rand.New(rand.NewSource(seedB)), 8)
		patched := Patch(oldT, Diff(oldT, newT, DefaultKeys), DefaultKeys)
		if patched == nil {
			return newT == nil
		}
		// Compare keyed items as sets.
		index := func(n *Node) map[string]string {
			m := map[string]string{}
			for _, it := range n.ChildrenNamed("item") {
				k, _ := it.Attr("name")
				m[k] = it.String()
			}
			return m
		}
		want, got := index(newT), index(patched)
		if len(want) != len(got) {
			return false
		}
		for k, v := range want {
			if got[k] != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: Diff of a tree against itself is empty, and applying an empty
// diff changes nothing.
func TestQuickDiffSelfEmpty(t *testing.T) {
	prop := func(seed int64) bool {
		n := genBook(rand.New(rand.NewSource(seed)), 8)
		ops := Diff(n, n.Clone(), DefaultKeys)
		if len(ops) != 0 {
			return false
		}
		return Patch(n, nil, DefaultKeys).Equal(n)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: Clone is deep — mutating the clone never changes the original.
func TestQuickCloneIsolation(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := genBook(rng, 8)
		before := n.String()
		c := n.Clone()
		c.SetAttr("mutated", "yes")
		for _, it := range c.ChildrenNamed("item") {
			it.Text = "zap"
			if len(it.Children) > 0 {
				it.Children[0].Text = "zap"
			}
		}
		return n.String() == before
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
