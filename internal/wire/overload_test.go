package wire

import (
	"bytes"
	"context"
	"errors"
	"net"
	"strings"
	"testing"
	"time"
)

// FuzzOverloadedReply is the property test that TypeOverloaded replies are
// well-formed frames whatever the hint and reason: they round-trip through
// the framing, keep the correlation ID, carry a decodable payload, and
// always set Error so old clients terminate cleanly.
func FuzzOverloadedReply(f *testing.F) {
	f.Add(uint64(1), int64(250), "admission queue full")
	f.Add(uint64(0), int64(0), "")
	f.Add(uint64(1<<63), int64(-5), "queue wait exceeded")
	f.Add(uint64(42), int64(1<<40), "budget expired on arrival\x00\xff")
	f.Fuzz(func(t *testing.T, id uint64, retryMillis int64, reason string) {
		cli, srv := net.Pipe()
		defer cli.Close()
		sc := &ServerConn{conn: srv}
		req := &Message{Type: TypeResolve, ID: id}

		done := make(chan error, 1)
		go func() {
			done <- sc.ReplyOverloaded(req, time.Duration(retryMillis)*time.Millisecond, reason)
		}()
		reply, err := ReadFrame(cli)
		if err != nil {
			// A reason that JSON cannot encode is a marshal panic upstream,
			// not a framing bug; only framing-level failures matter here.
			t.Fatalf("overloaded reply unreadable: %v", err)
		}
		if werr := <-done; werr != nil {
			t.Fatalf("ReplyOverloaded: %v", werr)
		}
		if reply.Type != TypeOverloaded {
			t.Fatalf("reply type %q, want %q", reply.Type, TypeOverloaded)
		}
		if reply.ID != id {
			t.Fatalf("reply ID %d, want %d (correlation broken)", reply.ID, id)
		}
		if reply.Error == "" {
			t.Fatal("overloaded reply without Error: old clients would hang on it")
		}
		var p OverloadedPayload
		if err := Unmarshal(reply.Payload, &p); err != nil {
			t.Fatalf("overloaded payload undecodable: %v", err)
		}
		if want := (time.Duration(retryMillis) * time.Millisecond).Milliseconds(); p.RetryAfterMillis != want {
			t.Fatalf("retry-after hint %d, want %d", p.RetryAfterMillis, want)
		}
		// The frame itself must re-frame: a shed reply that cannot be
		// relayed would poison proxies.
		var buf bytes.Buffer
		if err := WriteFrame(&buf, reply); err != nil {
			t.Fatalf("re-frame: %v", err)
		}
		again, err := ReadFrame(&buf)
		if err != nil || again.Type != TypeOverloaded || again.ID != id {
			t.Fatalf("re-framed reply corrupt: %+v, %v", again, err)
		}
	})
}

func TestBudgetRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, &Message{Type: TypeResolve, ID: 7, BudgetMillis: 1234}); err != nil {
		t.Fatal(err)
	}
	m, err := ReadFrame(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if m.BudgetMillis != 1234 {
		t.Fatalf("BudgetMillis = %d, want 1234", m.BudgetMillis)
	}
	// Absent budget marshals away entirely (old-peer compatibility).
	buf.Reset()
	if err := WriteFrame(&buf, &Message{Type: TypeResolve, ID: 8}); err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(buf.Bytes(), []byte("budget_ms")) {
		t.Fatalf("zero budget serialized: %s", buf.Bytes())
	}
}

func TestBudgetContext(t *testing.T) {
	// No message / no budget: parent unchanged.
	parent := context.Background()
	for _, m := range []*Message{nil, {}, {BudgetMillis: -3}} {
		ctx, cancel := BudgetContext(parent, m)
		if _, ok := ctx.Deadline(); ok {
			t.Fatalf("budget-less message produced a deadline (%+v)", m)
		}
		cancel()
	}
	// Positive budget: a deadline about that far out.
	ctx, cancel := BudgetContext(parent, &Message{BudgetMillis: 5000})
	defer cancel()
	d, ok := ctx.Deadline()
	if !ok {
		t.Fatal("budgeted message produced no deadline")
	}
	if rem := time.Until(d); rem <= 0 || rem > 5001*time.Millisecond {
		t.Fatalf("budgeted deadline %v out, want ~5s", rem)
	}
	// The budget also floors under a tighter parent deadline.
	tight, tcancel := context.WithTimeout(parent, time.Millisecond)
	defer tcancel()
	ctx2, cancel2 := BudgetContext(tight, &Message{BudgetMillis: 60000})
	defer cancel2()
	if d2, _ := ctx2.Deadline(); time.Until(d2) > 2*time.Millisecond {
		t.Fatal("budget context extended past the parent deadline")
	}
}

// TestCallStampsBudget drives a Call with a context deadline through a real
// server and asserts the server-side frame carries the remaining budget —
// and that a deadline-less call carries none.
func TestCallStampsBudget(t *testing.T) {
	got := make(chan int64, 2)
	srv, err := Serve("127.0.0.1:0", HandlerFunc(func(c *ServerConn, m *Message) {
		got <- m.BudgetMillis
		_ = c.Reply(m, Empty{})
	}))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cli, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 800*time.Millisecond)
	if err := cli.Call(ctx, TypeStats, nil, nil); err != nil {
		t.Fatalf("budgeted call: %v", err)
	}
	cancel()
	if b := <-got; b <= 0 || b > 800 {
		t.Fatalf("server saw budget %dms, want (0, 800]", b)
	}
	if err := cli.Call(context.Background(), TypeStats, nil, nil); err != nil {
		t.Fatalf("deadline-less call: %v", err)
	}
	if b := <-got; b != 0 {
		t.Fatalf("deadline-less call stamped budget %dms", b)
	}
}

// TestCallFailsFastOnSpentBudget: a context whose deadline already passed
// must not ship a doomed frame.
func TestCallFailsFastOnSpentBudget(t *testing.T) {
	srv, err := Serve("127.0.0.1:0", HandlerFunc(func(c *ServerConn, m *Message) {
		t.Error("doomed frame reached the server")
		_ = c.Reply(m, Empty{})
	}))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cli, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	err = cli.Call(ctx, TypeStats, nil, nil)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("spent-budget call: got %v, want DeadlineExceeded", err)
	}
	// Give an erroneously shipped frame time to surface via t.Error.
	time.Sleep(50 * time.Millisecond)
}

// TestOverloadedErrorDecoding: a ReplyOverloaded surfaces client-side as a
// typed *OverloadedError carrying the hint, not as a RemoteError.
func TestOverloadedErrorDecoding(t *testing.T) {
	srv, err := Serve("127.0.0.1:0", HandlerFunc(func(c *ServerConn, m *Message) {
		_ = c.ReplyOverloaded(m, 750*time.Millisecond, "admission queue full")
	}))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cli, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	err = cli.Call(context.Background(), TypeResolve, &ResolveRequest{Path: "/user/x"}, nil)
	var ov *OverloadedError
	if !errors.As(err, &ov) {
		t.Fatalf("got %v (%T), want *OverloadedError", err, err)
	}
	if ov.RetryAfter != 750*time.Millisecond {
		t.Fatalf("RetryAfter = %v, want 750ms", ov.RetryAfter)
	}
	if ov.Reason != "admission queue full" {
		t.Fatalf("Reason = %q", ov.Reason)
	}
	var re *RemoteError
	if errors.As(err, &re) {
		t.Fatal("overloaded reply also decoded as RemoteError")
	}
	if !strings.Contains(ov.Error(), "overloaded") {
		t.Fatalf("error text %q does not say overloaded", ov.Error())
	}
}
