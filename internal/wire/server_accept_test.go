package wire

import (
	"context"
	"errors"
	"net"
	"sync/atomic"
	"testing"
	"time"
)

// flakyListener wraps a real listener and fails the first n Accept calls
// with a transient error, simulating fd exhaustion (EMFILE) or an
// ECONNABORTED race.
type flakyListener struct {
	net.Listener
	failures atomic.Int64 // remaining Accepts to fail
	seen     atomic.Int64 // failed Accepts observed
}

var errTransient = errors.New("accept: too many open files")

func (l *flakyListener) Accept() (net.Conn, error) {
	if l.failures.Add(-1) >= 0 {
		l.seen.Add(1)
		return nil, errTransient
	}
	return l.Listener.Accept()
}

// TestAcceptLoopSurvivesTransientErrors is the regression test for the
// accept loop returning permanently on any transient Accept error: after a
// burst of failures the server must still accept and serve connections.
func TestAcceptLoopSurvivesTransientErrors(t *testing.T) {
	inner, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	fl := &flakyListener{Listener: inner}
	fl.failures.Store(5)

	srv := ServeListener(fl, HandlerFunc(func(c *ServerConn, m *Message) {
		_ = c.Reply(m, Empty{})
	}))
	defer srv.Close()

	cli, err := Dial(inner.Addr().String())
	if err != nil {
		t.Fatalf("dial after transient accept failures: %v", err)
	}
	defer cli.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := cli.Call(ctx, TypeStats, nil, nil); err != nil {
		t.Fatalf("call after transient accept failures: %v", err)
	}
	if got := fl.seen.Load(); got != 5 {
		t.Fatalf("injected failures consumed = %d, want 5", got)
	}
}

// TestAcceptLoopCloseDuringBackoff verifies Close returns promptly while
// the accept loop is sleeping out a backoff, instead of waiting the sleep
// out (or worse, spinning on a listener that fails forever).
func TestAcceptLoopCloseDuringBackoff(t *testing.T) {
	inner, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	fl := &flakyListener{Listener: inner}
	fl.failures.Store(1 << 30) // effectively fails forever

	srv := ServeListener(fl, HandlerFunc(func(c *ServerConn, m *Message) {}))
	// Let the loop hit several failures so the backoff has grown.
	deadline := time.Now().Add(2 * time.Second)
	for fl.seen.Load() < 4 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	done := make(chan struct{})
	go func() {
		srv.Close()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(3 * time.Second):
		t.Fatal("Close did not return while accept loop was backing off")
	}
}
