package wire

import (
	"bytes"
	"context"
	"errors"
	"net"
	"strings"
	"testing"
)

// FuzzWrongShardReply is the property test that TypeWrongShard replies are
// well-formed frames whatever the owner, shard and address: they round-trip
// through the framing, keep the correlation ID, carry a decodable payload,
// and always set Error so shard-unaware clients terminate cleanly.
func FuzzWrongShardReply(f *testing.F) {
	f.Add(uint64(1), "alice", "shard-b", "10.0.0.2:7000", uint64(3))
	f.Add(uint64(0), "", "", "", uint64(0))
	f.Add(uint64(1<<63), "owner with spaces", "s\x00", "addr\xff", uint64(1<<50))
	f.Add(uint64(42), "bob@example.com", "east-2", "[::1]:9", uint64(1))
	f.Fuzz(func(t *testing.T, id uint64, owner, shardID, addr string, version uint64) {
		cli, srv := net.Pipe()
		defer cli.Close()
		sc := &ServerConn{conn: srv}
		req := &Message{Type: TypeResolve, ID: id}

		var mp *ShardMap
		if version != 0 {
			mp = &ShardMap{Version: version, Shards: []ShardInfo{{ID: shardID, Addr: addr}}}
		}
		done := make(chan error, 1)
		go func() {
			done <- sc.ReplyWrongShard(req, WrongShardPayload{
				Owner: owner, ShardID: shardID, Addr: addr, Map: mp,
			})
		}()
		reply, err := ReadFrame(cli)
		if err != nil {
			t.Fatalf("wrong-shard reply unreadable: %v", err)
		}
		if werr := <-done; werr != nil {
			t.Fatalf("ReplyWrongShard: %v", werr)
		}
		if reply.Type != TypeWrongShard {
			t.Fatalf("reply type %q, want %q", reply.Type, TypeWrongShard)
		}
		if reply.ID != id {
			t.Fatalf("reply ID %d, want %d (correlation broken)", reply.ID, id)
		}
		if reply.Error == "" {
			t.Fatal("wrong-shard reply without Error: old clients would treat it as success")
		}
		var p WrongShardPayload
		if err := Unmarshal(reply.Payload, &p); err != nil {
			t.Fatalf("wrong-shard payload undecodable: %v", err)
		}
		// Strings may be sanitized through JSON, but structure must hold:
		// a map in means a map out, with the version intact.
		if (p.Map == nil) != (mp == nil) {
			t.Fatalf("map presence changed in flight: sent %v, got %v", mp, p.Map)
		}
		if mp != nil && p.Map.Version != version {
			t.Fatalf("map version %d, want %d", p.Map.Version, version)
		}
		var buf bytes.Buffer
		if err := WriteFrame(&buf, reply); err != nil {
			t.Fatalf("re-frame: %v", err)
		}
		again, err := ReadFrame(&buf)
		if err != nil || again.Type != TypeWrongShard || again.ID != id {
			t.Fatalf("re-framed reply corrupt: %+v, %v", again, err)
		}
	})
}

// TestWrongShardErrorDecoding: a ReplyWrongShard surfaces client-side as a
// typed *WrongShardError carrying the redirect target and map, not as a
// RemoteError.
func TestWrongShardErrorDecoding(t *testing.T) {
	srv, err := Serve("127.0.0.1:0", HandlerFunc(func(c *ServerConn, m *Message) {
		mp := &ShardMap{Version: 4, Shards: []ShardInfo{
			{ID: "a", Addr: "10.0.0.1:7000"},
			{ID: "b", Addr: "10.0.0.2:7000", Members: []string{"10.0.0.2:7000", "10.0.0.3:7000"}},
		}}
		_ = c.ReplyWrongShard(m, WrongShardPayload{
			Owner: "alice", ShardID: "b", Addr: "10.0.0.2:7000",
			Members: []string{"10.0.0.2:7000", "10.0.0.3:7000"}, Map: mp,
		})
	}))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cli, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	err = cli.Call(context.Background(), TypeResolve, &ResolveRequest{Path: "/user[@id='alice']/presence"}, nil)
	var ws *WrongShardError
	if !errors.As(err, &ws) {
		t.Fatalf("got %v (%T), want *WrongShardError", err, err)
	}
	if ws.Owner != "alice" || ws.ShardID != "b" || ws.Addr != "10.0.0.2:7000" {
		t.Fatalf("redirect fields = %q/%q/%q", ws.Owner, ws.ShardID, ws.Addr)
	}
	if len(ws.Members) != 2 {
		t.Fatalf("Members = %v, want both constellation members", ws.Members)
	}
	if ws.Map == nil || ws.Map.Version != 4 || len(ws.Map.Shards) != 2 {
		t.Fatalf("Map = %+v, want the full v4 map", ws.Map)
	}
	var re *RemoteError
	if errors.As(err, &re) {
		t.Fatal("wrong-shard reply also decoded as RemoteError")
	}
	if !strings.Contains(ws.Error(), "b") {
		t.Fatalf("error text %q names no shard", ws.Error())
	}
}
